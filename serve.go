package tango

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/resilience"
	"tango/internal/serve"
)

// This file implements the embedding API of the serving subsystem: a Server
// owns one dynamic-batching scheduler per benchmark, so concurrent
// independent Classify / Forecast requests are coalesced into ClassifyBatch /
// ForecastBatch calls and the batched engine is what runs under load.  The
// cmd/tango-serve binary wraps a Server in an HTTP frontend (see Handler).
//
// Each served benchmark separates cheap identity (name, kind, input shape —
// resolved at construction from the network registry) from its expensive
// engine (synthesized weights, resolved plan, prewarmed scratch, running
// batcher).  The engine loads eagerly by default, on demand under
// WithOnDemandLoading, and is evicted in LRU order when a WithModelBudget
// byte budget is exceeded — serving counters survive eviction and reload.

// ServerConfig sets the batching policy of a Server.  The zero value is a
// usable default (batches of up to 16, greedy flush, queue depth 256,
// single-worker engine).  ServerConfig is the compatibility configuration
// surface: it lowers onto the equivalent ServeOptions (see
// ServerConfig.options), and options passed to NewServer apply after it.
type ServerConfig struct {
	// MaxBatch is the largest batch formed per benchmark; a forming batch
	// is flushed as soon as it reaches MaxBatch requests.  <1 selects the
	// default (16).
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for the
	// batch to fill before being flushed anyway.  Zero flushes as soon as
	// the queue is momentarily empty (greedy batching, no added latency).
	// Under TargetP99 it becomes the adaptive window's ceiling instead.
	MaxDelay time.Duration
	// QueueDepth is the per-benchmark bounded queue capacity; requests
	// beyond it are rejected immediately with ErrQueueFull.  <1 selects
	// the default (256).
	QueueDepth int
	// Parallelism is the compute-engine worker count used for batch runs,
	// exactly as WithParallelism: 0 keeps the single-worker engine,
	// negative selects one worker per CPU.  Batching composes with engine
	// parallelism: the batch amortizes weight traffic, the workers split
	// each batch's GEMM row panels.
	Parallelism int
	// RequestTimeout bounds each request's end-to-end time (queue wait +
	// batch compute) with a context deadline; requests whose caller context
	// carries a tighter deadline keep the tighter one.  Zero means no
	// server-imposed deadline.
	RequestTimeout time.Duration
	// BreakerThreshold is the number of consecutive engine failures that
	// trips a benchmark's circuit breaker into the open state (requests
	// then fail fast with ErrDegraded until a cooldown probe succeeds).
	// <1 selects the resilience default (5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// probe request test recovery.  <=0 selects the resilience default (2s).
	BreakerCooldown time.Duration
	// Numerics selects the compute-engine numerics tier for every served
	// benchmark: "" or "reference" (default, bit-exact), "fast"
	// (WithFastMath) or "int8" (WithInt8).  Under a fast tier, served
	// results preserve each request's top-1 class but are no longer
	// bit-identical to single-sample Classify / Forecast.
	Numerics string
	// TargetP99 is the per-request p99 latency SLO; non-zero enables
	// adaptive batching exactly as WithSLO.
	TargetP99 time.Duration
	// ModelBudgetBytes caps total resident engine bytes exactly as
	// WithModelBudget (implies on-demand loading).  Zero means unlimited.
	ModelBudgetBytes int64
	// OnDemand defers engine loads to first request, as
	// WithOnDemandLoading.
	OnDemand bool
}

// Server coalesces concurrent inference requests into batched engine runs.
// Create one with NewServer, embed it directly (Classify / Forecast) or
// mount its Handler on an HTTP server, and Close it to drain.
//
// Under the default ("reference") numerics tier, results are bit-identical
// to calling Benchmark.Classify / Forecast on the same inputs: batching
// changes scheduling, never numerics.
type Server struct {
	opts     serveOptions
	batchCfg serve.Config
	simOpts  []SimOption
	models   map[string]*serverModel
	order    []string
	// lifeMu serializes engine load and evict transitions across all
	// models, so budget accounting sees a consistent resident set.
	lifeMu sync.Mutex
	// draining flips once Close begins; /healthz reports it so load
	// balancers stop routing here while queued work finishes.
	draining atomic.Bool
}

// serverModel is one served benchmark: its registry identity (always
// present) plus a loadable engine and the admission state — circuit breaker,
// in-flight and shed counters — that outlives engine evictions.
type serverModel struct {
	name       string
	kind       networks.Kind
	inputShape []int
	inputLen   int

	// eng is the loaded engine, nil while cold.  Load/evict transitions
	// are serialized by Server.lifeMu; readers take the pointer lock-free.
	eng atomic.Pointer[modelEngine]
	// statsMu guards baseStats, the merged counters of evicted engines.
	statsMu   sync.Mutex
	baseStats serve.Stats
	// lastUsed is the unix-nano admission timestamp driving LRU eviction.
	lastUsed  atomic.Int64
	loads     atomic.Uint64
	evictions atomic.Uint64

	// breaker trips after consecutive engine failures so a broken backend
	// fails fast (ErrDegraded) instead of queueing doomed work.
	breaker *resilience.Breaker
	// inFlight counts admitted requests that have not yet resolved.
	inFlight atomic.Int64
	// shedLoad counts occupancy-based rejections; shedBreaker counts
	// breaker-based ones.
	shedLoad    atomic.Uint64
	shedBreaker atomic.Uint64
}

// modelEngine is the expensive, evictable half of a served benchmark: the
// loaded workload and its running request batcher (classify for CNNs,
// forecast for RNNs).
type modelEngine struct {
	bench    *Benchmark
	classify *serve.Batcher[[]float32, BatchClassification]
	forecast *serve.Batcher[[]float64, float64]
}

func (e *modelEngine) close() {
	if e.classify != nil {
		e.classify.Close()
	}
	if e.forecast != nil {
		e.forecast.Close()
	}
}

func (e *modelEngine) stats() serve.Stats {
	if e.classify != nil {
		return e.classify.Stats()
	}
	return e.forecast.Stats()
}

func (e *modelEngine) queue() (int, int) {
	if e.classify != nil {
		return e.classify.QueueLen(), e.classify.QueueCap()
	}
	return e.forecast.QueueLen(), e.forecast.QueueCap()
}

// NewServer validates and registers the named benchmarks and starts one
// dynamic-batching scheduler per benchmark.  Configuration is the lowered
// ServerConfig plus any ServeOptions, applied in that order.  By default
// every engine loads eagerly — weight plan resolved, scratch pools grown, so
// the first request is served at steady-state speed; under on-demand loading
// (or a model budget) construction only validates names and kinds and the
// first request pays the load.  The caller must Close the server to stop the
// scheduler goroutines.
func NewServer(benchmarks []string, cfg ServerConfig, options ...ServeOption) (*Server, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("tango: NewServer needs at least one benchmark")
	}
	var o serveOptions
	for _, opt := range cfg.options() {
		opt(&o)
	}
	for _, opt := range options {
		opt(&o)
	}
	if o.modelBudget > 0 {
		o.onDemand = true
	}
	var simOpts []SimOption
	if o.parallelism != 0 {
		simOpts = append(simOpts, WithParallelism(o.parallelism))
	}
	if o.numerics != "" {
		// An explicit config pins the tier even when TANGO_NUMERICS is
		// set; an empty tier leaves the environment default in effect
		// (resolved per run by nativeSettings).
		mode, err := nn.ParseNumerics(o.numerics)
		if err != nil {
			return nil, fmt.Errorf("tango: NewServer: %w", err)
		}
		switch mode {
		case nn.NumericsFast:
			simOpts = append(simOpts, WithFastMath())
		case nn.NumericsInt8:
			simOpts = append(simOpts, WithInt8())
		default:
			simOpts = append(simOpts, WithReferenceNumerics())
		}
	}
	s := &Server{
		opts: o,
		batchCfg: serve.Config{
			MaxBatch:   o.maxBatch,
			MaxDelay:   o.maxDelay,
			QueueDepth: o.queueDepth,
			SLO:        o.slo,
		}.WithDefaults(),
		simOpts: simOpts,
		models:  make(map[string]*serverModel, len(benchmarks)),
	}
	for _, name := range benchmarks {
		if _, ok := s.models[name]; ok {
			continue
		}
		// Identity comes from the registry, not a loaded benchmark:
		// construction validates every name and kind without synthesizing
		// weights, so on-demand servers still fail fast on a bad name.
		net, err := networks.New(name)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("tango: %w", err)
		}
		m := &serverModel{
			name:       name,
			kind:       net.Kind,
			inputShape: net.InputShape,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: o.breakerThreshold,
				Cooldown:  o.breakerCooldown,
			}),
		}
		switch net.Kind {
		case networks.KindCNN, networks.KindRNN:
		default:
			s.close()
			return nil, fmt.Errorf("tango: %s has unsupported kind %s", name, net.Kind)
		}
		m.inputLen = 1
		for _, d := range net.InputShape {
			m.inputLen *= d
		}
		s.models[name] = m
		s.order = append(s.order, name)
	}
	if !o.onDemand {
		for _, name := range s.order {
			if _, err := s.engine(s.models[name]); err != nil {
				s.close()
				return nil, err
			}
		}
	}
	return s, nil
}

// engine returns the model's loaded engine, loading it first if cold.
func (s *Server) engine(m *serverModel) (*modelEngine, error) {
	if e := m.eng.Load(); e != nil {
		return e, nil
	}
	return s.loadEngine(m)
}

// loadEngine performs the cold-start load of one model under the lifecycle
// lock: benchmark load, batch-geometry prewarm, batcher start, then budget
// enforcement (which may evict other idle models).
func (s *Server) loadEngine(m *serverModel) (*modelEngine, error) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if e := m.eng.Load(); e != nil {
		return e, nil
	}
	if s.draining.Load() {
		return nil, fmt.Errorf("tango: %s: %w", m.name, ErrServerClosed)
	}
	b, err := LoadBenchmark(m.name)
	if err != nil {
		return nil, err
	}
	e := &modelEngine{bench: b}
	effMaxBatch := s.batchCfg.MaxBatch
	opts := s.simOpts
	switch m.kind {
	case networks.KindCNN:
		// Prewarm: resolve the plan and grow the scratch to the
		// configured batch geometry outside any request latency.
		if _, err := b.ClassifySampleBatch(0, effMaxBatch, opts...); err != nil {
			return nil, fmt.Errorf("tango: prewarm %s: %w", m.name, err)
		}
		e.classify = serve.NewBatcher(s.batchCfg, func(images [][]float32) ([]BatchClassification, error) {
			return b.ClassifyBatch(images, opts...)
		})
	default:
		// Prewarm the batched recurrent path at full batch width.
		history, err := b.SampleHistory(0)
		if err != nil {
			return nil, fmt.Errorf("tango: prewarm %s: %w", m.name, err)
		}
		warm := make([][]float64, effMaxBatch)
		for i := range warm {
			warm[i] = history
		}
		if _, err := b.ForecastBatch(warm, opts...); err != nil {
			return nil, fmt.Errorf("tango: prewarm %s: %w", m.name, err)
		}
		e.forecast = serve.NewBatcher(s.batchCfg, func(histories [][]float64) ([]float64, error) {
			return forecastGrouped(b, histories, opts)
		})
	}
	m.eng.Store(e)
	m.loads.Add(1)
	s.enforceBudgetLocked(m)
	return e, nil
}

// enforceBudgetLocked evicts idle engines in least-recently-used order until
// the resident set fits the byte budget.  The just-loaded model (keep) and
// any model with in-flight or queued work are never evicted; if only active
// models remain, the budget is allowed to overshoot rather than stall
// serving.  Caller holds lifeMu.
func (s *Server) enforceBudgetLocked(keep *serverModel) {
	if s.opts.modelBudget <= 0 {
		return
	}
	for s.residentBytesLocked() > s.opts.modelBudget {
		var victim *serverModel
		for _, name := range s.order {
			m := s.models[name]
			if m == keep || m.eng.Load() == nil {
				continue
			}
			if m.inFlight.Load() != 0 {
				continue
			}
			if q, _ := m.eng.Load().queue(); q != 0 {
				continue
			}
			if victim == nil || m.lastUsed.Load() < victim.lastUsed.Load() {
				victim = m
			}
		}
		if victim == nil {
			return
		}
		s.evictLocked(victim)
	}
}

// evictLocked unloads one idle model: the engine pointer clears first (new
// requests re-load instead of racing the teardown), the batcher drains, and
// its final counters fold into the model's base stats so lifetime totals
// survive the eviction.  Caller holds lifeMu.
func (s *Server) evictLocked(m *serverModel) {
	e := m.eng.Load()
	if e == nil {
		return
	}
	m.eng.Store(nil)
	e.close()
	st := e.stats()
	m.statsMu.Lock()
	m.baseStats = serve.Merge(m.baseStats, st)
	m.statsMu.Unlock()
	m.evictions.Add(1)
}

// residentBytesLocked sums resident engine bytes.  Caller holds lifeMu (or
// tolerates a racy snapshot, as Stats does).
func (s *Server) residentBytesLocked() int64 {
	var total int64
	for _, name := range s.order {
		m := s.models[name]
		if e := m.eng.Load(); e != nil {
			total += e.bench.MemStats().Total()
		}
	}
	return total
}

// forecastGrouped runs a formed forecast batch.  ForecastBatch requires
// equal-length histories (the recurrent gates advance the batch in
// lockstep), but independent requests may carry different lengths, so the
// batch is partitioned into equal-length groups, each run as one batched
// call.  Grouping never changes numerics: batched results are bit-identical
// to per-sample Forecast regardless of how the batch is split.
func forecastGrouped(b *Benchmark, histories [][]float64, opts []SimOption) ([]float64, error) {
	n := len(histories)
	out := make([]float64, n)
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		steps := len(histories[i])
		idx := []int{i}
		for j := i + 1; j < n; j++ {
			if !done[j] && len(histories[j]) == steps {
				idx = append(idx, j)
			}
		}
		group := make([][]float64, len(idx))
		for k, j := range idx {
			group[k] = histories[j]
		}
		preds, err := b.ForecastBatch(group, opts...)
		if err != nil {
			return nil, err
		}
		for k, j := range idx {
			out[j] = preds[k]
			done[j] = true
		}
	}
	return out, nil
}

// Benchmarks returns the served benchmark names in configuration order.
func (s *Server) Benchmarks() []string { return append([]string(nil), s.order...) }

// errWrongKind is the single rejection for a request that reached a model
// through the wrong entry point (Classify on an RNN or Forecast on a CNN),
// shared by the embedding API and the HTTP seed path so both report the
// same wrapped ErrShape.
func (m *serverModel) errWrongKind(benchmark string) error {
	use := "Classify (/v1/classify)"
	if m.kind != networks.KindCNN {
		use = "Forecast (/v1/forecast)"
	}
	return fmt.Errorf("tango: %s is a %s benchmark; %w: use %s",
		benchmark, m.kind, ErrShape, use)
}

// sampleImage resolves the deterministic sample image for a seed-based
// classify request against a served CNN benchmark.
func (s *Server) sampleImage(benchmark string, seed uint64) ([]float32, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return nil, err
	}
	if m.kind != networks.KindCNN {
		return nil, m.errWrongKind(benchmark)
	}
	e, err := s.engine(m)
	if err != nil {
		return nil, err
	}
	img, _, err := e.bench.SampleImage(seed)
	return img, err
}

// sampleHistory resolves the deterministic sample history for a seed-based
// forecast request against a served RNN benchmark.
func (s *Server) sampleHistory(benchmark string, seed uint64) ([]float64, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return nil, err
	}
	if m.kind != networks.KindRNN {
		return nil, m.errWrongKind(benchmark)
	}
	e, err := s.engine(m)
	if err != nil {
		return nil, err
	}
	return e.bench.SampleHistory(seed)
}

// model resolves a served benchmark by name.
func (s *Server) model(name string) (*serverModel, error) {
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (serving %v)", ErrNotServed, name, s.order)
	}
	return m, nil
}

// submitRetries bounds how often a request re-loads and re-submits after
// losing the race with an engine eviction (the batcher closed between the
// pointer read and the enqueue).
const submitRetries = 3

// Classify submits one image to a served CNN benchmark and blocks until its
// batch has run or ctx is done.  The image must be a flat CHW float32 slice
// of the benchmark's input shape; wrong lengths are rejected up front with a
// wrapped ErrShape so one bad request never poisons a batch.  Under load,
// concurrent calls share batched engine runs; under the default numerics
// tier the result is bit-identical to Benchmark.Classify on the same image.
// A cold (on-demand or evicted) model loads transparently.  The image slice
// is retained until its batch runs: callers must not mutate it before
// Classify returns.
func (s *Server) Classify(ctx context.Context, benchmark string, image []float32) (BatchClassification, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return BatchClassification{}, err
	}
	if m.kind != networks.KindCNN {
		return BatchClassification{}, m.errWrongKind(benchmark)
	}
	if len(image) != m.inputLen {
		return BatchClassification{}, fmt.Errorf("tango: %s: %w: image has %d elements, want %d (input shape %v)",
			benchmark, ErrShape, len(image), m.inputLen, m.inputShape)
	}
	if err := s.admit(ctx, m); err != nil {
		return BatchClassification{}, err
	}
	ctx, cancel := resilience.WithBudget(ctx, s.opts.requestTimeout)
	defer cancel()
	m.touch()
	m.inFlight.Add(1)
	var res BatchClassification
	for attempt := 0; ; attempt++ {
		var e *modelEngine
		if e, err = s.engine(m); err != nil {
			break
		}
		if res, err = e.classify.Do(ctx, image); !s.retrySubmit(err, attempt) {
			break
		}
	}
	m.inFlight.Add(-1)
	m.recordOutcome(err)
	return res, err
}

// Forecast submits one history of scalar observations to a served RNN
// benchmark and blocks until its batch has run or ctx is done.  Histories of
// different lengths may be submitted concurrently; the scheduler groups
// equal lengths per engine call.  Under the default numerics tier the result
// is bit-identical to Benchmark.Forecast on the same history.  A cold
// (on-demand or evicted) model loads transparently.  The history slice is
// retained until its batch runs: callers must not mutate it before Forecast
// returns.
func (s *Server) Forecast(ctx context.Context, benchmark string, history []float64) (float64, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return 0, err
	}
	if m.kind != networks.KindRNN {
		return 0, m.errWrongKind(benchmark)
	}
	if len(history) == 0 {
		return 0, fmt.Errorf("tango: %s: %w: empty history", benchmark, ErrShape)
	}
	if err := s.admit(ctx, m); err != nil {
		return 0, err
	}
	ctx, cancel := resilience.WithBudget(ctx, s.opts.requestTimeout)
	defer cancel()
	m.touch()
	m.inFlight.Add(1)
	var pred float64
	for attempt := 0; ; attempt++ {
		var e *modelEngine
		if e, err = s.engine(m); err != nil {
			break
		}
		if pred, err = e.forecast.Do(ctx, history); !s.retrySubmit(err, attempt) {
			break
		}
	}
	m.inFlight.Add(-1)
	m.recordOutcome(err)
	return pred, err
}

// retrySubmit reports whether a failed submission should re-load the engine
// and try again: only when the batcher was closed under the request by an
// eviction (not a server drain), and only a bounded number of times.
func (s *Server) retrySubmit(err error, attempt int) bool {
	return errors.Is(err, serve.ErrClosed) && !s.draining.Load() && attempt < submitRetries
}

// touch stamps the model's LRU clock.
func (m *serverModel) touch() { m.lastUsed.Store(time.Now().UnixNano()) }

// Close stops accepting requests, serves everything already queued
// (graceful drain), and stops the scheduler goroutines.  It is idempotent.
// Requests submitted after Close begins fail with ErrServerClosed.
func (s *Server) Close() { s.close() }

func (s *Server) close() {
	s.draining.Store(true)
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	for _, name := range s.order {
		if e := s.models[name].eng.Load(); e != nil {
			e.close()
		}
	}
}

// MemStats is a benchmark's resident-memory breakdown, the accounting unit
// behind WithModelBudget and the per-model byte series on /metrics.
type MemStats struct {
	// WeightBytes is the synthesized parameter footprint.
	WeightBytes int64 `json:"weight_bytes"`
	// PackedBytes is the fast-tier weight panels built so far (zero under
	// the reference tier).
	PackedBytes int64 `json:"packed_bytes"`
	// ScratchBytes is the high-water footprint of one pooled compute
	// scratch (arena plus staging buffers); multi-worker engines resident
	// several scratches peak at a multiple of this.
	ScratchBytes int64 `json:"scratch_bytes"`
}

// Total returns the total resident estimate.
func (m MemStats) Total() int64 { return m.WeightBytes + m.PackedBytes + m.ScratchBytes }

// MemStats reports the benchmark's current resident-memory breakdown.
func (b *Benchmark) MemStats() MemStats {
	ms := b.inner.MemStats()
	return MemStats{
		WeightBytes:  ms.WeightBytes,
		PackedBytes:  ms.PackedBytes,
		ScratchBytes: ms.ScratchBytes,
	}
}

// BenchmarkServeStats is the per-benchmark slice of a Server stats snapshot.
// Latencies are end-to-end (queue wait + batch compute); the percentile pair
// is over a recent window, the histogram is cumulative since load (bucket
// upper bounds in LatencyBucketsMicros, final slot +Inf).  Counters span the
// model's lifetime: they survive engine eviction and reload.
type BenchmarkServeStats struct {
	Benchmark         string   `json:"benchmark"`
	Kind              string   `json:"kind"`
	Submitted         uint64   `json:"submitted"`
	Completed         uint64   `json:"completed"`
	Canceled          uint64   `json:"canceled"`
	RejectedQueueFull uint64   `json:"rejected_queue_full"`
	RejectedClosed    uint64   `json:"rejected_closed"`
	Batches           uint64   `json:"batches"`
	BatchErrors       uint64   `json:"batch_errors"`
	Bisections        uint64   `json:"bisections"`
	Isolated          uint64   `json:"isolated"`
	ShedLoad          uint64   `json:"shed_load"`
	ShedBreaker       uint64   `json:"shed_breaker"`
	InFlight          int64    `json:"in_flight"`
	QueueLen          int      `json:"queue_len"`
	QueueCap          int      `json:"queue_cap"`
	BreakerState      string   `json:"breaker_state"`
	MeanBatchSize     float64  `json:"mean_batch_size"`
	BatchSizeHist     []uint64 `json:"batch_size_hist"`
	LatencyP50Micros  float64  `json:"latency_p50_us"`
	LatencyP99Micros  float64  `json:"latency_p99_us"`
	LatencyHist       []uint64 `json:"latency_hist"`
	LatencySumMicros  float64  `json:"latency_sum_us"`
	// BatchWindowMicros is the batch window currently in effect: the fixed
	// MaxDelay, or the adaptive controller's live window under an SLO.
	BatchWindowMicros float64 `json:"batch_window_us"`
	// Resident reports whether the model's engine is currently loaded;
	// the byte fields break down its footprint (zero while cold).
	Resident      bool   `json:"resident"`
	ResidentBytes int64  `json:"resident_bytes"`
	WeightBytes   int64  `json:"weight_bytes"`
	PackedBytes   int64  `json:"packed_bytes"`
	ScratchBytes  int64  `json:"scratch_bytes"`
	Loads         uint64 `json:"loads"`
	Evictions     uint64 `json:"evictions"`
}

// ServerStats is a point-in-time snapshot of a Server's counters, served as
// JSON by GET /v1/stats and rendered as Prometheus text by GET /metrics.
type ServerStats struct {
	// Aggregates over every served benchmark.
	Requests          uint64  `json:"requests"`
	Completed         uint64  `json:"completed"`
	RejectedQueueFull uint64  `json:"rejected_queue_full"`
	Shed              uint64  `json:"shed"`
	InFlight          int64   `json:"in_flight"`
	Batches           uint64  `json:"batches"`
	MeanBatchSize     float64 `json:"mean_batch_size"`

	// Engine-level configuration and footprint.
	NumericsTier     string  `json:"numerics_tier"`
	TargetP99Micros  float64 `json:"target_p99_us,omitempty"`
	ModelBudgetBytes int64   `json:"model_budget_bytes,omitempty"`
	ResidentModels   int     `json:"resident_models"`
	ResidentBytes    int64   `json:"resident_bytes"`

	Benchmarks map[string]BenchmarkServeStats `json:"benchmarks"`
}

// LatencyBucketsMicros returns the request-latency histogram bucket upper
// bounds in microseconds; BenchmarkServeStats.LatencyHist has one count per
// bound plus a final +Inf slot.
func LatencyBucketsMicros() []float64 {
	out := make([]float64, len(serve.LatencyBuckets))
	for i, d := range serve.LatencyBuckets {
		out[i] = float64(d) / float64(time.Microsecond)
	}
	return out
}

// batcherStats returns the model's lifetime scheduler stats: the live
// engine's snapshot (when resident) merged onto the counters carried over
// from evicted engines.
func (m *serverModel) batcherStats() serve.Stats {
	m.statsMu.Lock()
	base := m.baseStats
	m.statsMu.Unlock()
	if e := m.eng.Load(); e != nil {
		return serve.Merge(base, e.stats())
	}
	return serve.Merge(base, serve.Stats{})
}

// Stats snapshots the server's counters: request totals, rejections,
// batches formed, batch-size and latency histograms, latency percentiles,
// adaptive batch windows and per-model residency.
func (s *Server) Stats() ServerStats {
	out := ServerStats{
		NumericsTier:     s.numericsTier(),
		TargetP99Micros:  float64(s.opts.slo) / float64(time.Microsecond),
		ModelBudgetBytes: s.opts.modelBudget,
		Benchmarks:       make(map[string]BenchmarkServeStats, len(s.models)),
	}
	var batchedRequests uint64
	for _, name := range s.order {
		m := s.models[name]
		st := m.batcherStats()
		shedLoad, shedBreaker := m.shedLoad.Load(), m.shedBreaker.Load()
		inFlight := m.inFlight.Load()
		q, c := s.queueState(m)
		bs := BenchmarkServeStats{
			Benchmark:         name,
			Kind:              m.kind.String(),
			Submitted:         st.Submitted,
			Completed:         st.Completed,
			Canceled:          st.Canceled,
			RejectedQueueFull: st.RejectedQueueFull,
			RejectedClosed:    st.RejectedClosed,
			Batches:           st.Batches,
			BatchErrors:       st.BatchErrors,
			Bisections:        st.Bisections,
			Isolated:          st.Isolated,
			ShedLoad:          shedLoad,
			ShedBreaker:       shedBreaker,
			InFlight:          inFlight,
			QueueLen:          q,
			QueueCap:          c,
			BreakerState:      m.breaker.State().String(),
			MeanBatchSize:     st.MeanBatchSize,
			BatchSizeHist:     st.BatchSizeHist,
			LatencyP50Micros:  float64(st.LatencyP50) / float64(time.Microsecond),
			LatencyP99Micros:  float64(st.LatencyP99) / float64(time.Microsecond),
			LatencyHist:       st.LatencyHist,
			LatencySumMicros:  float64(st.LatencySum) / float64(time.Microsecond),
			BatchWindowMicros: float64(st.CurrentDelay) / float64(time.Microsecond),
			Loads:             m.loads.Load(),
			Evictions:         m.evictions.Load(),
		}
		if e := m.eng.Load(); e != nil {
			ms := e.bench.MemStats()
			bs.Resident = true
			bs.WeightBytes = ms.WeightBytes
			bs.PackedBytes = ms.PackedBytes
			bs.ScratchBytes = ms.ScratchBytes
			bs.ResidentBytes = ms.Total()
			out.ResidentModels++
			out.ResidentBytes += bs.ResidentBytes
		}
		out.Benchmarks[name] = bs
		out.Requests += st.Submitted
		out.Completed += st.Completed
		out.RejectedQueueFull += st.RejectedQueueFull
		out.Shed += shedLoad + shedBreaker
		out.InFlight += inFlight
		out.Batches += st.Batches
		// Every completed request went through exactly one executed batch,
		// so Completed is also the batched-request total.
		batchedRequests += st.Completed
	}
	if out.Batches > 0 {
		out.MeanBatchSize = float64(batchedRequests) / float64(out.Batches)
	}
	return out
}

// numericsTier reports the serving numerics tier: the configured tier, or
// "reference" when unset (the engine's default absent TANGO_NUMERICS).
func (s *Server) numericsTier() string {
	if s.opts.numerics != "" {
		return s.opts.numerics
	}
	return nn.NumericsReference.String()
}

// queueState returns the model's request-queue length and capacity; a cold
// model has an empty queue at the configured capacity.
func (s *Server) queueState(m *serverModel) (int, int) {
	if e := m.eng.Load(); e != nil {
		return e.queue()
	}
	return 0, s.batchCfg.QueueDepth
}
