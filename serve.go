package tango

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/resilience"
	"tango/internal/serve"
)

// This file implements the embedding API of the serving subsystem: a Server
// owns one dynamic-batching scheduler per benchmark, so concurrent
// independent Classify / Forecast requests are coalesced into ClassifyBatch /
// ForecastBatch calls and the batched engine is what runs under load.  The
// cmd/tango-serve binary wraps a Server in an HTTP frontend (see Handler).

// ServerConfig sets the batching policy of a Server.  The zero value is a
// usable default (batches of up to 16, greedy flush, queue depth 256,
// single-worker engine).
type ServerConfig struct {
	// MaxBatch is the largest batch formed per benchmark; a forming batch
	// is flushed as soon as it reaches MaxBatch requests.  <1 selects the
	// default (16).
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for the
	// batch to fill before being flushed anyway.  Zero flushes as soon as
	// the queue is momentarily empty (greedy batching, no added latency).
	MaxDelay time.Duration
	// QueueDepth is the per-benchmark bounded queue capacity; requests
	// beyond it are rejected immediately with ErrQueueFull.  <1 selects
	// the default (256).
	QueueDepth int
	// Parallelism is the compute-engine worker count used for batch runs,
	// exactly as WithParallelism: 0 keeps the single-worker engine,
	// negative selects one worker per CPU.  Batching composes with engine
	// parallelism: the batch amortizes weight traffic, the workers split
	// each batch's GEMM row panels.
	Parallelism int
	// RequestTimeout bounds each request's end-to-end time (queue wait +
	// batch compute) with a context deadline; requests whose caller context
	// carries a tighter deadline keep the tighter one.  Zero means no
	// server-imposed deadline.
	RequestTimeout time.Duration
	// BreakerThreshold is the number of consecutive engine failures that
	// trips a benchmark's circuit breaker into the open state (requests
	// then fail fast with ErrDegraded until a cooldown probe succeeds).
	// <1 selects the resilience default (5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// probe request test recovery.  <=0 selects the resilience default (2s).
	BreakerCooldown time.Duration
	// Numerics selects the compute-engine numerics tier for every served
	// benchmark: "" or "reference" (default, bit-exact), "fast"
	// (WithFastMath) or "int8" (WithInt8).  Under a fast tier, served
	// results preserve each request's top-1 class but are no longer
	// bit-identical to single-sample Classify / Forecast.
	Numerics string
}

// Server coalesces concurrent inference requests into batched engine runs.
// Create one with NewServer, embed it directly (Classify / Forecast) or
// mount its Handler on an HTTP server, and Close it to drain.
//
// Results are bit-identical to calling Benchmark.Classify / Forecast on the
// same inputs: batching changes scheduling, never numerics.
type Server struct {
	cfg    ServerConfig
	models map[string]*serverModel
	order  []string
	// draining flips once Close begins; /healthz reports it so load
	// balancers stop routing here while queued work finishes.
	draining atomic.Bool
}

// serverModel is one served benchmark: the loaded workload plus its
// request batcher (classify for CNNs, forecast for RNNs), circuit breaker
// and admission counters.
type serverModel struct {
	name     string
	bench    *Benchmark
	inputLen int
	classify *serve.Batcher[[]float32, BatchClassification]
	forecast *serve.Batcher[[]float64, float64]
	// breaker trips after consecutive engine failures so a broken backend
	// fails fast (ErrDegraded) instead of queueing doomed work.
	breaker *resilience.Breaker
	// inFlight counts admitted requests that have not yet resolved.
	inFlight atomic.Int64
	// shedLoad counts occupancy-based rejections; shedBreaker counts
	// breaker-based ones.
	shedLoad    atomic.Uint64
	shedBreaker atomic.Uint64
}

// NewServer loads the named benchmarks and starts one dynamic-batching
// scheduler per benchmark.  Each benchmark is prewarmed (weight plan
// resolved, scratch pools grown) so the first request is served at
// steady-state speed.  The caller must Close the server to stop the
// scheduler goroutines.
func NewServer(benchmarks []string, cfg ServerConfig) (*Server, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("tango: NewServer needs at least one benchmark")
	}
	scfg := serve.Config{
		MaxBatch:   cfg.MaxBatch,
		MaxDelay:   cfg.MaxDelay,
		QueueDepth: cfg.QueueDepth,
	}
	effMaxBatch := scfg.WithDefaults().MaxBatch
	var opts []SimOption
	if cfg.Parallelism != 0 {
		opts = append(opts, WithParallelism(cfg.Parallelism))
	}
	if cfg.Numerics != "" {
		// An explicit config pins the tier even when TANGO_NUMERICS is
		// set; an empty Numerics leaves the environment default in
		// effect (resolved per run by nativeSettings).
		mode, err := nn.ParseNumerics(cfg.Numerics)
		if err != nil {
			return nil, fmt.Errorf("tango: NewServer: %w", err)
		}
		switch mode {
		case nn.NumericsFast:
			opts = append(opts, WithFastMath())
		case nn.NumericsInt8:
			opts = append(opts, WithInt8())
		default:
			opts = append(opts, WithReferenceNumerics())
		}
	}
	s := &Server{cfg: cfg, models: make(map[string]*serverModel, len(benchmarks))}
	for _, name := range benchmarks {
		if _, ok := s.models[name]; ok {
			continue
		}
		b, err := LoadBenchmark(name)
		if err != nil {
			s.close()
			return nil, err
		}
		m := &serverModel{
			name:  name,
			bench: b,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
			}),
		}
		switch b.inner.Kind() {
		case networks.KindCNN:
			m.inputLen = 1
			for _, d := range b.inner.Network.InputShape {
				m.inputLen *= d
			}
			// Prewarm: resolve the plan and grow the scratch to the
			// configured batch geometry outside any request latency.
			if _, err := b.ClassifySampleBatch(0, effMaxBatch, opts...); err != nil {
				s.close()
				return nil, fmt.Errorf("tango: prewarm %s: %w", name, err)
			}
			m.classify = serve.NewBatcher(scfg, func(images [][]float32) ([]BatchClassification, error) {
				return b.ClassifyBatch(images, opts...)
			})
		case networks.KindRNN:
			// Prewarm the batched recurrent path at full batch width.
			history, err := b.SampleHistory(0)
			if err != nil {
				s.close()
				return nil, fmt.Errorf("tango: prewarm %s: %w", name, err)
			}
			warm := make([][]float64, effMaxBatch)
			for i := range warm {
				warm[i] = history
			}
			if _, err := b.ForecastBatch(warm, opts...); err != nil {
				s.close()
				return nil, fmt.Errorf("tango: prewarm %s: %w", name, err)
			}
			m.forecast = serve.NewBatcher(scfg, func(histories [][]float64) ([]float64, error) {
				return forecastGrouped(b, histories, opts)
			})
		default:
			s.close()
			return nil, fmt.Errorf("tango: %s has unsupported kind %s", name, b.Kind())
		}
		s.models[name] = m
		s.order = append(s.order, name)
	}
	return s, nil
}

// forecastGrouped runs a formed forecast batch.  ForecastBatch requires
// equal-length histories (the recurrent gates advance the batch in
// lockstep), but independent requests may carry different lengths, so the
// batch is partitioned into equal-length groups, each run as one batched
// call.  Grouping never changes numerics: batched results are bit-identical
// to per-sample Forecast regardless of how the batch is split.
func forecastGrouped(b *Benchmark, histories [][]float64, opts []SimOption) ([]float64, error) {
	n := len(histories)
	out := make([]float64, n)
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		steps := len(histories[i])
		idx := []int{i}
		for j := i + 1; j < n; j++ {
			if !done[j] && len(histories[j]) == steps {
				idx = append(idx, j)
			}
		}
		group := make([][]float64, len(idx))
		for k, j := range idx {
			group[k] = histories[j]
		}
		preds, err := b.ForecastBatch(group, opts...)
		if err != nil {
			return nil, err
		}
		for k, j := range idx {
			out[j] = preds[k]
			done[j] = true
		}
	}
	return out, nil
}

// Benchmarks returns the served benchmark names in configuration order.
func (s *Server) Benchmarks() []string { return append([]string(nil), s.order...) }

// errWrongKind is the single rejection for a request that reached a model
// through the wrong entry point (Classify on an RNN or Forecast on a CNN),
// shared by the embedding API and the HTTP seed path so both report the
// same wrapped ErrShape.
func (m *serverModel) errWrongKind(benchmark string) error {
	use := "Classify (/v1/classify)"
	if m.classify == nil {
		use = "Forecast (/v1/forecast)"
	}
	return fmt.Errorf("tango: %s is a %s benchmark; %w: use %s",
		benchmark, m.bench.Kind(), ErrShape, use)
}

// sampleImage resolves the deterministic sample image for a seed-based
// classify request against a served CNN benchmark.
func (s *Server) sampleImage(benchmark string, seed uint64) ([]float32, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return nil, err
	}
	if m.classify == nil {
		return nil, m.errWrongKind(benchmark)
	}
	img, _, err := m.bench.SampleImage(seed)
	return img, err
}

// sampleHistory resolves the deterministic sample history for a seed-based
// forecast request against a served RNN benchmark.
func (s *Server) sampleHistory(benchmark string, seed uint64) ([]float64, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return nil, err
	}
	if m.forecast == nil {
		return nil, m.errWrongKind(benchmark)
	}
	return m.bench.SampleHistory(seed)
}

// model resolves a served benchmark by name.
func (s *Server) model(name string) (*serverModel, error) {
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (serving %v)", ErrNotServed, name, s.order)
	}
	return m, nil
}

// Classify submits one image to a served CNN benchmark and blocks until its
// batch has run or ctx is done.  The image must be a flat CHW float32 slice
// of the benchmark's input shape; wrong lengths are rejected up front with a
// wrapped ErrShape so one bad request never poisons a batch.  Under load,
// concurrent calls share batched engine runs; the result is bit-identical
// to Benchmark.Classify on the same image.  The image slice is retained
// until its batch runs: callers must not mutate it before Classify returns.
func (s *Server) Classify(ctx context.Context, benchmark string, image []float32) (BatchClassification, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return BatchClassification{}, err
	}
	if m.classify == nil {
		return BatchClassification{}, m.errWrongKind(benchmark)
	}
	if len(image) != m.inputLen {
		return BatchClassification{}, fmt.Errorf("tango: %s: %w: image has %d elements, want %d (input shape %v)",
			benchmark, ErrShape, len(image), m.inputLen, m.bench.inner.Network.InputShape)
	}
	if err := s.admit(ctx, m); err != nil {
		return BatchClassification{}, err
	}
	ctx, cancel := resilience.WithBudget(ctx, s.cfg.RequestTimeout)
	defer cancel()
	m.inFlight.Add(1)
	res, err := m.classify.Do(ctx, image)
	m.inFlight.Add(-1)
	m.recordOutcome(err)
	return res, err
}

// Forecast submits one history of scalar observations to a served RNN
// benchmark and blocks until its batch has run or ctx is done.  Histories of
// different lengths may be submitted concurrently; the scheduler groups
// equal lengths per engine call.  The result is bit-identical to
// Benchmark.Forecast on the same history.  The history slice is retained
// until its batch runs: callers must not mutate it before Forecast returns.
func (s *Server) Forecast(ctx context.Context, benchmark string, history []float64) (float64, error) {
	m, err := s.model(benchmark)
	if err != nil {
		return 0, err
	}
	if m.forecast == nil {
		return 0, m.errWrongKind(benchmark)
	}
	if len(history) == 0 {
		return 0, fmt.Errorf("tango: %s: %w: empty history", benchmark, ErrShape)
	}
	if err := s.admit(ctx, m); err != nil {
		return 0, err
	}
	ctx, cancel := resilience.WithBudget(ctx, s.cfg.RequestTimeout)
	defer cancel()
	m.inFlight.Add(1)
	pred, err := m.forecast.Do(ctx, history)
	m.inFlight.Add(-1)
	m.recordOutcome(err)
	return pred, err
}

// Close stops accepting requests, serves everything already queued
// (graceful drain), and stops the scheduler goroutines.  It is idempotent.
// Requests submitted after Close begins fail with ErrServerClosed.
func (s *Server) Close() { s.close() }

func (s *Server) close() {
	s.draining.Store(true)
	for _, name := range s.order {
		m := s.models[name]
		if m.classify != nil {
			m.classify.Close()
		}
		if m.forecast != nil {
			m.forecast.Close()
		}
	}
}

// BenchmarkServeStats is the per-benchmark slice of a Server stats snapshot.
// Latencies are end-to-end (queue wait + batch compute) percentiles over a
// recent window.
type BenchmarkServeStats struct {
	Benchmark         string   `json:"benchmark"`
	Kind              string   `json:"kind"`
	Submitted         uint64   `json:"submitted"`
	Completed         uint64   `json:"completed"`
	Canceled          uint64   `json:"canceled"`
	RejectedQueueFull uint64   `json:"rejected_queue_full"`
	RejectedClosed    uint64   `json:"rejected_closed"`
	Batches           uint64   `json:"batches"`
	BatchErrors       uint64   `json:"batch_errors"`
	Bisections        uint64   `json:"bisections"`
	Isolated          uint64   `json:"isolated"`
	ShedLoad          uint64   `json:"shed_load"`
	ShedBreaker       uint64   `json:"shed_breaker"`
	InFlight          int64    `json:"in_flight"`
	BreakerState      string   `json:"breaker_state"`
	MeanBatchSize     float64  `json:"mean_batch_size"`
	BatchSizeHist     []uint64 `json:"batch_size_hist"`
	LatencyP50Micros  float64  `json:"latency_p50_us"`
	LatencyP99Micros  float64  `json:"latency_p99_us"`
}

// ServerStats is a point-in-time snapshot of a Server's counters, as
// served by GET /metrics.
type ServerStats struct {
	// Aggregates over every served benchmark.
	Requests          uint64  `json:"requests"`
	Completed         uint64  `json:"completed"`
	RejectedQueueFull uint64  `json:"rejected_queue_full"`
	Shed              uint64  `json:"shed"`
	InFlight          int64   `json:"in_flight"`
	Batches           uint64  `json:"batches"`
	MeanBatchSize     float64 `json:"mean_batch_size"`

	Benchmarks map[string]BenchmarkServeStats `json:"benchmarks"`
}

// Stats snapshots the server's counters: request totals, rejections,
// batches formed, batch-size histograms and latency percentiles.
func (s *Server) Stats() ServerStats {
	out := ServerStats{Benchmarks: make(map[string]BenchmarkServeStats, len(s.models))}
	var batchedRequests uint64
	for _, name := range s.order {
		m := s.models[name]
		st := m.batcherStats()
		shedLoad, shedBreaker := m.shedLoad.Load(), m.shedBreaker.Load()
		inFlight := m.inFlight.Load()
		bs := BenchmarkServeStats{
			Benchmark:         name,
			Kind:              m.bench.Kind(),
			Submitted:         st.Submitted,
			Completed:         st.Completed,
			Canceled:          st.Canceled,
			RejectedQueueFull: st.RejectedQueueFull,
			RejectedClosed:    st.RejectedClosed,
			Batches:           st.Batches,
			BatchErrors:       st.BatchErrors,
			Bisections:        st.Bisections,
			Isolated:          st.Isolated,
			ShedLoad:          shedLoad,
			ShedBreaker:       shedBreaker,
			InFlight:          inFlight,
			BreakerState:      m.breaker.State().String(),
			MeanBatchSize:     st.MeanBatchSize,
			BatchSizeHist:     st.BatchSizeHist,
			LatencyP50Micros:  float64(st.LatencyP50) / float64(time.Microsecond),
			LatencyP99Micros:  float64(st.LatencyP99) / float64(time.Microsecond),
		}
		out.Benchmarks[name] = bs
		out.Requests += st.Submitted
		out.Completed += st.Completed
		out.RejectedQueueFull += st.RejectedQueueFull
		out.Shed += shedLoad + shedBreaker
		out.InFlight += inFlight
		out.Batches += st.Batches
		// Every completed request went through exactly one executed batch,
		// so Completed is also the batched-request total.
		batchedRequests += st.Completed
	}
	if out.Batches > 0 {
		out.MeanBatchSize = float64(batchedRequests) / float64(out.Batches)
	}
	return out
}
