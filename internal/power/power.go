// Package power implements an activity-based GPU power model in the spirit
// of GPUWattch: every micro-architectural event reported by the simulator
// (register-file accesses, pipeline operations, cache and DRAM accesses,
// instruction fetches) is charged a per-event energy, static and idle-core
// power are added, and per-kernel power is derived from the event rates over
// the kernel's estimated execution time.
//
// Peak power additionally scales with the kernel's achievable occupancy —
// kernels too small to fill the device's SMs cannot light up the whole chip —
// which reproduces the paper's Observation 3 (bigger layers draw higher peak
// power).
package power

import (
	"fmt"

	"tango/internal/device"
	"tango/internal/gpusim"
)

// Component identifies one power consumer, following the GPUWattch breakdown
// the paper plots in Figure 5.
type Component uint8

// Power components.
const (
	CompIBuffer      Component = iota // IBP: instruction buffer
	CompICache                        // ICP: instruction cache
	CompL1D                           // DCP: L1 data cache
	CompTexture                       // TCP: texture cache
	CompConst                         // CCP: constant cache
	CompShared                        // SHRDP: shared memory
	CompRegFile                       // RFP: register file
	CompSP                            // SPP: integer/simple pipelines
	CompSFU                           // SFUP: special function units
	CompFPU                           // FPUP: floating-point pipelines
	CompSched                         // SCHEDP: warp schedulers
	CompL2                            // L2CP: L2 cache
	CompMC                            // MCP: memory controllers
	CompNOC                           // NOCP: on-chip interconnect
	CompDRAM                          // DRAMP: device memory
	CompPipeline                      // PIPEP: pipeline registers / control
	CompIdleCore                      // IDLE_COREP: idle SM power
	CompConstDynamic                  // CONST_DYNAMICP: constant dynamic overhead
	// NumComponents is the number of defined components.
	NumComponents
)

var componentNames = [NumComponents]string{
	CompIBuffer:      "IBP",
	CompICache:       "ICP",
	CompL1D:          "DCP",
	CompTexture:      "TCP",
	CompConst:        "CCP",
	CompShared:       "SHRDP",
	CompRegFile:      "RFP",
	CompSP:           "SPP",
	CompSFU:          "SFUP",
	CompFPU:          "FPUP",
	CompSched:        "SCHEDP",
	CompL2:           "L2CP",
	CompMC:           "MCP",
	CompNOC:          "NOCP",
	CompDRAM:         "DRAMP",
	CompPipeline:     "PIPEP",
	CompIdleCore:     "IDLE_COREP",
	CompConstDynamic: "CONST_DYNAMICP",
}

// String returns the GPUWattch-style component label.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("comp(%d)", uint8(c))
}

// Components lists all components in display order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Energies holds per-event dynamic energies in nanojoules.
type Energies struct {
	RegAccess   float64 // per operand read/write per lane
	SPOp        float64 // per lane
	FPUOp       float64 // per lane
	SFUOp       float64 // per lane
	SharedAcc   float64 // per lane
	ConstAcc    float64 // per warp access
	InstFetch   float64 // per fetch group
	SchedIssue  float64 // per issued instruction
	PipelineOp  float64 // per issued instruction
	L1Access    float64 // per 128B transaction
	L2Access    float64 // per 128B transaction
	NOCTransfer float64 // per L2 transaction
	MCRequest   float64 // per DRAM request
	DRAMAccess  float64 // per DRAM request (128B)
}

// DefaultEnergies returns the calibration used for the GPGPU-Sim-class
// results.  Values are effective energies (they fold in clocking and leakage
// overheads proportional to activity) chosen so that full-occupancy CNN
// kernels land in the power envelope the paper reports for a discrete GPU.
func DefaultEnergies() Energies {
	return Energies{
		RegAccess:   0.030,
		SPOp:        0.015,
		FPUOp:       0.030,
		SFUOp:       0.100,
		SharedAcc:   0.020,
		ConstAcc:    0.015,
		InstFetch:   0.150,
		SchedIssue:  0.010,
		PipelineOp:  0.020,
		L1Access:    0.300,
		L2Access:    0.800,
		NOCTransfer: 0.350,
		MCRequest:   0.400,
		DRAMAccess:  3.000,
	}
}

// Breakdown is the per-component power of one kernel.
type Breakdown struct {
	// Kernel names the kernel.
	Kernel string
	// Class is the kernel's reporting class.
	Class string
	// Watts holds per-component power.
	Watts [NumComponents]float64
	// TotalWatts is the sum over components.
	TotalWatts float64
	// EnergyJoules is TotalWatts times Seconds.
	EnergyJoules float64
	// Seconds is the kernel's estimated execution time.
	Seconds float64
	// Occupancy is the fraction of the device's warp slots the kernel can
	// fill (bounds dynamic power).
	Occupancy float64
}

// Model computes power for kernels simulated on a particular device.
type Model struct {
	dev      device.GPU
	energies Energies
}

// NewModel returns a power model for the device with default calibration.
func NewModel(dev device.GPU) *Model {
	return &Model{dev: dev, energies: DefaultEnergies()}
}

// NewModelWithEnergies returns a power model with explicit calibration.
func NewModelWithEnergies(dev device.GPU, e Energies) *Model {
	return &Model{dev: dev, energies: e}
}

// Device returns the modelled device.
func (m *Model) Device() device.GPU { return m.dev }

// occupancy returns the fraction of the device's warp capacity the kernel can
// keep resident.
func (m *Model) occupancy(ks *gpusim.KernelStats) float64 {
	capacity := float64(m.dev.SMs * m.dev.MaxWarpsPerSM)
	if capacity <= 0 {
		return 1
	}
	warps := float64((ks.Kernel.Launch.TotalThreads() + 31) / 32)
	occ := warps / capacity
	if occ > 1 {
		occ = 1
	}
	if occ < 0.02 {
		occ = 0.02
	}
	return occ
}

// KernelPower computes the power breakdown of one simulated kernel.
func (m *Model) KernelPower(ks *gpusim.KernelStats) Breakdown {
	e := m.energies
	b := Breakdown{
		Kernel:  ks.Kernel.Name,
		Class:   ks.Kernel.Class,
		Seconds: ks.Seconds,
	}
	if b.Seconds <= 0 {
		b.Seconds = 1e-9
	}
	occ := m.occupancy(ks)
	b.Occupancy = occ

	a := ks.Activity
	nJ := func(events int64, perEvent float64) float64 { return float64(events) * perEvent }

	// Dynamic energy per component in nanojoules.
	var energy [NumComponents]float64
	energy[CompRegFile] = nJ(a.RegReads+a.RegWrites, e.RegAccess)
	energy[CompSP] = nJ(a.SPOps, e.SPOp)
	energy[CompFPU] = nJ(a.FPUOps, e.FPUOp)
	energy[CompSFU] = nJ(a.SFUOps, e.SFUOp)
	energy[CompShared] = nJ(a.SharedAccesses, e.SharedAcc)
	energy[CompConst] = nJ(a.ConstAccesses, e.ConstAcc)
	energy[CompICache] = nJ(a.InstFetches, e.InstFetch) * 0.6
	energy[CompIBuffer] = nJ(a.InstFetches, e.InstFetch) * 0.4
	energy[CompSched] = nJ(a.IssuedInstructions, e.SchedIssue)
	energy[CompPipeline] = nJ(a.IssuedInstructions, e.PipelineOp)
	energy[CompL1D] = nJ(ks.L1.Accesses, e.L1Access)
	energy[CompTexture] = 0
	energy[CompL2] = nJ(ks.L2.Accesses, e.L2Access)
	energy[CompNOC] = nJ(ks.L2.Accesses, e.NOCTransfer)
	energy[CompMC] = nJ(ks.DRAM.Requests, e.MCRequest)
	energy[CompDRAM] = nJ(ks.DRAM.Requests, e.DRAMAccess)

	// Convert to watts over the kernel's duration, bounded by occupancy: a
	// kernel that cannot fill the device cannot light up all of its SMs.
	for c := range energy {
		b.Watts[c] = energy[c] * 1e-9 / b.Seconds * occ
	}

	// Static contributions.
	b.Watts[CompIdleCore] = m.dev.IdleWatts * (1 - 0.5*occ)
	b.Watts[CompConstDynamic] = 0.08 * m.dev.TDPWatts * occ

	total := 0.0
	for _, w := range b.Watts {
		total += w
	}
	// The board power limit caps sustained draw.
	if total > m.dev.TDPWatts {
		scale := m.dev.TDPWatts / total
		for c := range b.Watts {
			b.Watts[c] *= scale
		}
		total = m.dev.TDPWatts
	}
	b.TotalWatts = total
	b.EnergyJoules = total * b.Seconds
	return b
}

// NetworkPower aggregates per-kernel power over a network run.
type NetworkPower struct {
	// Network is the benchmark name.
	Network string
	// PerKernel holds per-kernel breakdowns in layer order.
	PerKernel []Breakdown
	// PeakWatts is the highest per-kernel total power (Figure 3).
	PeakWatts float64
	// PeakKernel names the kernel drawing the peak power.
	PeakKernel string
	// AvgWatts is the time-weighted average power.
	AvgWatts float64
	// TotalEnergyJoules is the total energy of one inference.
	TotalEnergyJoules float64
	// TotalSeconds is the summed kernel time.
	TotalSeconds float64
	// ByClassWatts is the average power per layer class (Figure 4).
	ByClassWatts map[string]float64
	// ByComponentWatts is the time-weighted average per component (Figure 5).
	ByComponentWatts [NumComponents]float64
}

// NetworkPower computes power statistics for a whole simulated network.
func (m *Model) NetworkPower(rs *gpusim.RunStats) NetworkPower {
	np := NetworkPower{
		Network:      rs.Network,
		ByClassWatts: make(map[string]float64),
	}
	classEnergy := make(map[string]float64)
	classTime := make(map[string]float64)
	for _, ks := range rs.Kernels {
		b := m.KernelPower(ks)
		np.PerKernel = append(np.PerKernel, b)
		if b.TotalWatts > np.PeakWatts {
			np.PeakWatts = b.TotalWatts
			np.PeakKernel = b.Kernel
		}
		np.TotalEnergyJoules += b.EnergyJoules
		np.TotalSeconds += b.Seconds
		classEnergy[b.Class] += b.EnergyJoules
		classTime[b.Class] += b.Seconds
		for c := range b.Watts {
			np.ByComponentWatts[c] += b.Watts[c] * b.Seconds
		}
	}
	if np.TotalSeconds > 0 {
		np.AvgWatts = np.TotalEnergyJoules / np.TotalSeconds
		for c := range np.ByComponentWatts {
			np.ByComponentWatts[c] /= np.TotalSeconds
		}
	}
	for class, e := range classEnergy {
		if classTime[class] > 0 {
			np.ByClassWatts[class] = e / classTime[class]
		}
	}
	return np
}
