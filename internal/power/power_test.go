package power_test

import (
	"testing"

	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/networks"
	"tango/internal/power"
)

func simulate(t *testing.T, name string) *gpusim.RunStats {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gpusim.New(gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.RunNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestComponentNames(t *testing.T) {
	if len(power.Components()) != int(power.NumComponents) {
		t.Error("Components() should enumerate every component")
	}
	if power.CompRegFile.String() != "RFP" || power.CompIdleCore.String() != "IDLE_COREP" {
		t.Error("unexpected component labels")
	}
	for _, c := range power.Components() {
		if c.String() == "" {
			t.Errorf("component %d has no label", c)
		}
	}
}

func TestKernelPowerBasics(t *testing.T) {
	rs := simulate(t, "CifarNet")
	m := power.NewModel(device.PascalGP102())
	for _, ks := range rs.Kernels {
		b := m.KernelPower(ks)
		if b.TotalWatts <= 0 {
			t.Errorf("%s: non-positive power", ks.Kernel.Name)
		}
		if b.TotalWatts > m.Device().TDPWatts+1e-9 {
			t.Errorf("%s: power %v exceeds TDP %v", ks.Kernel.Name, b.TotalWatts, m.Device().TDPWatts)
		}
		if b.EnergyJoules <= 0 || b.Seconds <= 0 {
			t.Errorf("%s: energy/time must be positive", ks.Kernel.Name)
		}
		if b.Occupancy <= 0 || b.Occupancy > 1 {
			t.Errorf("%s: occupancy %v out of range", ks.Kernel.Name, b.Occupancy)
		}
		var sum float64
		for _, w := range b.Watts {
			if w < 0 {
				t.Errorf("%s: negative component power", ks.Kernel.Name)
			}
			sum += w
		}
		if diff := sum - b.TotalWatts; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: component sum %v != total %v", ks.Kernel.Name, sum, b.TotalWatts)
		}
		// The idle-core and register-file components the paper highlights
		// must be present.
		if b.Watts[power.CompIdleCore] <= 0 {
			t.Errorf("%s: idle core power missing", ks.Kernel.Name)
		}
		if b.Watts[power.CompRegFile] <= 0 {
			t.Errorf("%s: register file power missing", ks.Kernel.Name)
		}
	}
}

func TestNetworkPowerAggregation(t *testing.T) {
	rs := simulate(t, "CifarNet")
	m := power.NewModel(device.PascalGP102())
	np := m.NetworkPower(rs)
	if np.Network != "CifarNet" {
		t.Errorf("network name %q", np.Network)
	}
	if len(np.PerKernel) != len(rs.Kernels) {
		t.Errorf("per-kernel entries %d, want %d", len(np.PerKernel), len(rs.Kernels))
	}
	if np.PeakWatts <= 0 || np.PeakKernel == "" {
		t.Error("peak power should be identified")
	}
	if np.AvgWatts <= 0 || np.AvgWatts > np.PeakWatts+1e-9 {
		t.Errorf("average power %v should be positive and <= peak %v", np.AvgWatts, np.PeakWatts)
	}
	if np.TotalEnergyJoules <= 0 || np.TotalSeconds <= 0 {
		t.Error("energy and time should be positive")
	}
	if len(np.ByClassWatts) == 0 {
		t.Error("per-class power should be populated")
	}
	if np.ByClassWatts[networks.ClassConv] <= 0 {
		t.Error("conv class power missing")
	}
	var compSum float64
	for _, w := range np.ByComponentWatts {
		compSum += w
	}
	if compSum <= 0 {
		t.Error("per-component averages should be populated")
	}
}

func TestPeakPowerGrowsWithLayerSize(t *testing.T) {
	// Observation 3: networks with larger layers draw higher peak power.
	if testing.Short() {
		t.Skip("multi-network power comparison skipped in -short mode")
	}
	m := power.NewModel(device.PascalGP102())
	cifar := m.NetworkPower(simulate(t, "CifarNet"))
	alex := m.NetworkPower(simulate(t, "AlexNet"))
	if alex.PeakWatts <= cifar.PeakWatts {
		t.Errorf("AlexNet peak power (%v W) should exceed CifarNet's (%v W)", alex.PeakWatts, cifar.PeakWatts)
	}
	gru := m.NetworkPower(simulate(t, "GRU"))
	if gru.PeakWatts >= cifar.PeakWatts {
		t.Errorf("GRU peak power (%v W) should be below CifarNet's (%v W)", gru.PeakWatts, cifar.PeakWatts)
	}
}

func TestPowerMoreBalancedThanTime(t *testing.T) {
	// Observation 4: convolution dominates time far more than it dominates
	// power.  Compare conv's share of cycles against its share of per-class
	// average power mass.
	rs := simulate(t, "CifarNet")
	m := power.NewModel(device.PascalGP102())
	np := m.NetworkPower(rs)

	cycles := rs.CyclesByClass()
	var cycleTotal int64
	for _, c := range cycles {
		cycleTotal += c
	}
	convCycleShare := float64(cycles[networks.ClassConv]) / float64(cycleTotal)

	var powerTotal float64
	for _, w := range np.ByClassWatts {
		powerTotal += w
	}
	convPowerShare := np.ByClassWatts[networks.ClassConv] / powerTotal

	if convPowerShare >= convCycleShare {
		t.Errorf("conv power share (%.2f) should be below conv time share (%.2f)", convPowerShare, convCycleShare)
	}
}

func TestTX1PowerBelowServerGPU(t *testing.T) {
	rs := simulate(t, "CifarNet")
	server := power.NewModel(device.GK210()).NetworkPower(rs)
	mobile := power.NewModel(device.TX1()).NetworkPower(rs)
	if mobile.PeakWatts >= server.PeakWatts {
		t.Errorf("TX1 peak (%v W) should be below GK210 peak (%v W)", mobile.PeakWatts, server.PeakWatts)
	}
	if mobile.PeakWatts > device.TX1().TDPWatts {
		t.Errorf("TX1 peak %v exceeds its TDP", mobile.PeakWatts)
	}
}

func TestCustomEnergiesChangeResult(t *testing.T) {
	rs := simulate(t, "GRU")
	base := power.NewModel(device.PascalGP102()).NetworkPower(rs)
	hot := power.DefaultEnergies()
	hot.RegAccess *= 10
	scaled := power.NewModelWithEnergies(device.PascalGP102(), hot).NetworkPower(rs)
	if scaled.PerKernel[0].Watts[power.CompRegFile] <= base.PerKernel[0].Watts[power.CompRegFile] {
		t.Error("raising the register-file energy should raise its power share")
	}
}
