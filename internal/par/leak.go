package par

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// CheckLeaks snapshots the goroutine count and returns a function that
// verifies the count has settled back to (or below) the snapshot, polling
// for up to two seconds so goroutines that are mid-exit are not false
// positives.  Intended use, from any test in the repo:
//
//	defer par.CheckLeaks()(t)
//
// where t is any *testing.T-like Errorf sink.  The helper lives here (not
// in a _test.go file) so concurrency tests in other packages — sweeps,
// serving, the store — can share it.
func CheckLeaks() func(t interface{ Errorf(string, ...any) }) {
	before := runtime.NumGoroutine()
	return func(t interface{ Errorf(string, ...any) }) {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, goroutineDump())
		}
	}
}

// goroutineDump returns the all-goroutine stack dump, truncated so a
// failure message stays readable.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	if parts := strings.SplitAfter(s, "\n\n"); len(parts) > 25 {
		s = strings.Join(parts[:25], "") + fmt.Sprintf("... (%d more goroutines)", len(parts)-25)
	}
	return s
}
