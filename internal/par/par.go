// Package par provides the deterministic worker-pool primitive shared by the
// simulator's kernel-level parallelism and the experiment drivers' matrix
// fan-out, plus the goroutine-leak check helper used by concurrency tests
// across the repo.
package par

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"tango/internal/resilience"
)

// PointTask is the fault-injection site fired before every worker task; a
// chaos plan can make any fan-out (sweep cells, kernel simulations, figure
// prewarms) fail, stall or panic.
var PointTask = resilience.Register("par.task", "before each worker-pool task (ForEach / ForEachCtx)")

// PanicError is a panic recovered from a worker task, converted to an
// error so one panicking task fails its own slot instead of killing the
// process (the pool's goroutines have no recovery above them).
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// ForEach runs fn(i) for every i in [0, n) and returns the first error in
// index order, regardless of completion order — so callers see the same
// error a serial loop would report.  With workers <= 1 the calls run
// serially (short-circuiting on the first error); otherwise they are fanned
// out across min(workers, n) goroutines.  fn must be safe for concurrent
// invocation when workers > 1.  A panicking task is recovered into a
// *PanicError for its slot; it never crashes the process.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach bounded by a context: once ctx is done, no new
// tasks are started and the call returns promptly — after only the tasks
// already in flight finish (workers are never killed mid-task).  When the
// run was cut short by ctx, the first task error in index order still
// wins; ctx's error is returned only if every completed task succeeded.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = protect(i, fn)
			}
		}()
	}
	done := ctx.Done() // nil for Background: the select arm never fires
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// protect runs one task, converting a panic into a *PanicError and giving
// the fault-injection plan its shot first.
func protect(i int, fn func(int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: debug.Stack()}
		}
	}()
	if err := resilience.Fire(PointTask); err != nil {
		return err
	}
	return fn(i)
}
