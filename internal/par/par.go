// Package par provides the deterministic worker-pool primitive shared by the
// simulator's kernel-level parallelism and the experiment drivers' matrix
// fan-out.
package par

import "sync"

// ForEach runs fn(i) for every i in [0, n) and returns the first error in
// index order, regardless of completion order — so callers see the same
// error a serial loop would report.  With workers <= 1 the calls run
// serially (short-circuiting on the first error); otherwise they are fanned
// out across min(workers, n) goroutines.  fn must be safe for concurrent
// invocation when workers > 1.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
