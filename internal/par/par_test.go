package par_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tango/internal/par"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var ran [17]int32
		if err := par.ForEach(workers, len(ran), func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReportsFirstErrorInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := par.ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestForEachSerialShortCircuits(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	err := par.ForEach(1, 10, func(i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("serial run made %d calls after error at index 2, want 3", calls)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := par.ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := par.ForEach(workers, 8, func(i int) error {
			if i == 5 {
				panic("kernel bug")
			}
			return nil
		})
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 5 || pe.Value != "kernel bug" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = index %d value %v (stack %d bytes)",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

func TestForEachPanicLosesToEarlierError(t *testing.T) {
	// Index-order error semantics hold across failure kinds: the error at
	// index 2 beats the panic at index 6.
	err := par.ForEach(4, 8, func(i int) error {
		switch i {
		case 2:
			return errors.New("plain failure")
		case 6:
			panic("later panic")
		}
		return nil
	})
	if err == nil || err.Error() != "plain failure" {
		t.Fatalf("err = %v, want index 2's plain failure", err)
	}
}

func TestForEachCtxPreCanceled(t *testing.T) {
	defer par.CheckLeaks()(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	for _, workers := range []int{1, 4} {
		err := par.ForEachCtx(ctx, workers, 100, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// The parallel path may admit up to `workers` tasks racing the cancel
	// check; it must not run anywhere near the full job count.
	if n := calls.Load(); n > 8 {
		t.Errorf("pre-canceled ForEachCtx ran %d tasks", n)
	}
}

func TestForEachCtxCancelMidRun(t *testing.T) {
	defer par.CheckLeaks()(t)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- par.ForEachCtx(ctx, 2, 1000, func(i int) error {
			started.Add(1)
			<-release
			return nil
		})
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release) // let the two in-flight tasks finish
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Only the tasks in flight at cancel time (plus at most one racing
	// dispatch per worker) may have run.
	if n := started.Load(); n > 6 {
		t.Errorf("%d tasks ran after mid-run cancel", n)
	}
}

func TestForEachCtxErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := par.ForEachCtx(ctx, 2, 4, func(i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error to win over ctx.Err()", err)
	}
}

func TestCheckLeaksDetectsLeak(t *testing.T) {
	check := par.CheckLeaks()
	stop := make(chan struct{})
	go func() { <-stop }()
	var sink errorfRecorder
	check(&sink)
	close(stop)
	if !sink.called {
		t.Error("CheckLeaks missed a deliberately leaked goroutine")
	}
}

type errorfRecorder struct{ called bool }

func (r *errorfRecorder) Errorf(string, ...any) { r.called = true }
