package par_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tango/internal/par"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var ran [17]int32
		if err := par.ForEach(workers, len(ran), func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachReportsFirstErrorInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := par.ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestForEachSerialShortCircuits(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	err := par.ForEach(1, 10, func(i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("serial run made %d calls after error at index 2, want 3", calls)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := par.ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
}
