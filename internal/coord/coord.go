// Package coord implements the distributed characterization sweep: a
// coordinator shards the {network × target × variant} cell matrix across
// worker processes that serve cells over HTTP, and merges the returned
// results into the same deterministic dataset a single-process sweep
// produces.
//
// The protocol is one POST per cell.  The request names the cell by its
// content-addressed run key (target.RunKey) plus the registry name,
// network and variant needed to recompute it; the response body is the
// distcache record encoding of the result (the disk-cache and wire
// formats are the same versioned schema).  The worker recomputes the key
// from its own registry and refuses mismatches, so a coordinator and a
// worker built from different device tables can never silently exchange
// wrong results — the coordinator just falls back to local execution.
//
// Worker-side, cells run through a serve.Batcher (bounded queue, fast
// 429 rejection when full, graceful drain on shutdown) fanned out over a
// par worker pool.  Coordinator-side, each worker is wrapped in a
// resilience circuit breaker and bounded retry; any per-cell failure —
// connection refused, breaker open, queue full, key mismatch, corrupt
// response — falls back to computing the cell locally, so a dead worker
// degrades throughput, never correctness.  Every result, remote or
// local, enters the two-tier run cache through the same store path.
package coord

import (
	"tango/internal/gpusim"
	"tango/internal/sched"
	"tango/internal/target"
)

// CellRequest is the wire form of one sweep-cell assignment.
type CellRequest struct {
	// Key is the coordinator's content-addressed run key for the cell.
	// The worker recomputes the key from its own registry and rejects the
	// request if they differ (mismatched builds or device tables).
	Key string `json:"key"`
	// Network and Target name the cell; Target is a registry name.
	Network string `json:"network"`
	Target  string `json:"target"`
	// Variant is the cell's configuration point.
	Variant CellVariant `json:"variant"`
}

// CellVariant is target.Variant flattened for the wire.
type CellVariant struct {
	Key          string `json:"variant_key"`
	L1Bytes      int    `json:"l1_bytes"`
	L1Set        bool   `json:"l1_set"`
	Scheduler    string `json:"scheduler"`
	MaxCTAs      int    `json:"max_ctas"`
	MaxLoopIters int    `json:"max_loop_iters"`
}

// WireVariant flattens a variant for a CellRequest.
func WireVariant(v target.Variant) CellVariant {
	return CellVariant{
		Key:          v.Key,
		L1Bytes:      v.L1Bytes,
		L1Set:        v.L1Set,
		Scheduler:    string(v.Scheduler),
		MaxCTAs:      v.Sampling.MaxCTAs,
		MaxLoopIters: v.Sampling.MaxLoopIters,
	}
}

// Variant rebuilds the target.Variant a CellVariant describes.
func (cv CellVariant) Variant() target.Variant {
	return target.Variant{
		Key:       cv.Key,
		L1Bytes:   cv.L1Bytes,
		L1Set:     cv.L1Set,
		Scheduler: sched.Kind(cv.Scheduler),
		Sampling:  gpusim.Sampling{MaxCTAs: cv.MaxCTAs, MaxLoopIters: cv.MaxLoopIters},
	}
}
