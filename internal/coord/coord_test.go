package coord_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"tango/internal/coord"
	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/resilience"
	"tango/internal/target"
)

// fakeTarget is a cheap deterministic backend whose RunStats carry a GPU
// payload derived from the trace, so tests exercise the full wire
// encode/decode/relink path.
type fakeTarget struct {
	name string
	salt int64 // perturbs results so differently-configured fakes disagree
	runs atomic.Int64
}

func (f *fakeTarget) Name() string        { return f.name }
func (f *fakeTarget) Class() device.Class { return device.ClassGPU }
func (f *fakeTarget) Role() string        { return "Test" }
func (f *fakeTarget) Description() string { return "coord stub" }
func (f *fakeTarget) CacheKey(v Variant) string {
	return fmt.Sprintf("salt=%d|l1set=%v|l1=%d", f.salt, v.L1Set, v.L1Bytes)
}

// Variant aliases target.Variant for the method signature above.
type Variant = target.Variant

func (f *fakeTarget) Run(tr *target.Trace, v Variant) (*target.RunStats, error) {
	f.runs.Add(1)
	run := &gpusim.RunStats{Network: tr.Network}
	for i, k := range tr.Kernels {
		ks := &gpusim.KernelStats{
			Kernel:                  k,
			Cycles:                  f.salt + int64(100+i),
			Seconds:                 float64(i+1) * 0.25,
			TotalThreadInstructions: int64(1000 + i),
		}
		ks.OpCounts[0] = f.salt + int64(i)
		ks.Stalls[0] = int64(2 * i)
		run.Kernels = append(run.Kernels, ks)
	}
	return &target.RunStats{
		Network: tr.Network,
		Target:  f.name,
		Class:   device.ClassGPU,
		Cycles:  f.salt + 777,
		Seconds: 0.5,
		GPU:     run,
	}, nil
}

// newTestWorker wires a fake target into a private registry and serves it
// from an httptest server.
func newTestWorker(t *testing.T, salt int64) (*coord.Worker, *fakeTarget, *httptest.Server) {
	t.Helper()
	reg := target.NewRegistry()
	ft := &fakeTarget{name: "fake", salt: salt}
	if err := reg.Register(ft); err != nil {
		t.Fatal(err)
	}
	w := coord.NewWorker(coord.WorkerConfig{
		Registry:    reg,
		Store:       target.NewStore(),
		Parallelism: 2,
	})
	srv := httptest.NewServer(w)
	t.Cleanup(func() { srv.Close(); w.Close() })
	return w, ft, srv
}

// TestPoolFetchMatchesLocalRun: a cell fetched from a worker decodes to
// the same result a local run produces, kernels rebound to the
// coordinator's trace.
func TestPoolFetchMatchesLocalRun(t *testing.T) {
	_, ft, srv := newTestWorker(t, 0)
	pool, err := coord.NewPool([]string{srv.URL}, coord.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := target.Extract("GRU")
	if err != nil {
		t.Fatal(err)
	}
	local := &fakeTarget{name: "fake", salt: 0}
	v := target.DefaultVariant(gpusim.FastSampling())

	got, err := pool.Fetch(context.Background(), 0, local, "GRU", v, tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Run(tr, v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remote result differs from local:\ngot  %+v\nwant %+v", got, want)
	}
	for i, ks := range got.GPU.Kernels {
		if ks.Kernel != tr.Kernels[i] {
			t.Fatalf("kernel %d not rebound to the coordinator's trace", i)
		}
	}
	if ft.runs.Load() != 1 {
		t.Fatalf("worker ran the cell %d times, want 1", ft.runs.Load())
	}

	// The worker's own store serves a repeat of the same cell from cache.
	if _, err := pool.Fetch(context.Background(), 0, local, "GRU", v, tr); err != nil {
		t.Fatal(err)
	}
	if ft.runs.Load() != 1 {
		t.Fatalf("worker recomputed a cached cell (%d runs)", ft.runs.Load())
	}
}

// TestPoolRejectsMismatchedBuilds: a coordinator whose target resolves a
// different cache key than the worker's same-named target must get an
// error, never a silently-wrong result.
func TestPoolRejectsMismatchedBuilds(t *testing.T) {
	_, _, srv := newTestWorker(t, 0)
	pool, err := coord.NewPool([]string{srv.URL}, coord.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := target.Extract("GRU")
	if err != nil {
		t.Fatal(err)
	}
	// salt=9 changes the coordinator-side cache key; the worker recomputes
	// the key from its own salt=0 registry and refuses.
	skewed := &fakeTarget{name: "fake", salt: 9}
	_, err = pool.Fetch(context.Background(), 0, skewed, "GRU", target.DefaultVariant(gpusim.FastSampling()), tr)
	if err == nil || !strings.Contains(err.Error(), "key mismatch") {
		t.Fatalf("Fetch across mismatched builds = %v, want key mismatch error", err)
	}
}

// TestPoolUnknownTargetFails: the worker reports a target its registry
// cannot resolve; the coordinator falls back rather than hanging.
func TestPoolUnknownTargetFails(t *testing.T) {
	_, _, srv := newTestWorker(t, 0)
	pool, err := coord.NewPool([]string{srv.URL}, coord.PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := target.Extract("GRU")
	if err != nil {
		t.Fatal(err)
	}
	other := &fakeTarget{name: "unregistered"}
	if _, err := pool.Fetch(context.Background(), 0, other, "GRU", target.DefaultVariant(gpusim.FastSampling()), tr); err == nil {
		t.Fatal("unknown worker-side target must fail the fetch")
	}
}

// TestPoolDeadWorkerFailsFast: an unreachable worker yields an error (the
// sweep's local fallback path) and repeated failures trip the breaker so
// later cells shed the dead worker without a connect attempt.
func TestPoolDeadWorkerFailsFast(t *testing.T) {
	pool, err := coord.NewPool([]string{"127.0.0.1:1"}, coord.PoolConfig{
		Attempts: 1,
		Breaker:  resilience.BreakerConfig{Threshold: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := target.Extract("GRU")
	if err != nil {
		t.Fatal(err)
	}
	local := &fakeTarget{name: "fake"}
	v := target.DefaultVariant(gpusim.FastSampling())
	for i := 0; i < 2; i++ {
		if _, err := pool.Fetch(context.Background(), i, local, "GRU", v, tr); err == nil {
			t.Fatal("fetch from a dead worker must fail")
		}
	}
	_, err = pool.Fetch(context.Background(), 2, local, "GRU", v, tr)
	if err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("tripped breaker should shed the call, got %v", err)
	}
}

// TestWorkerSheddingWhenQueueFull: a full worker queue answers 429 — the
// coordinator treats it as any other failure and computes locally.
func TestWorkerHTTPSurface(t *testing.T) {
	_, _, srv := newTestWorker(t, 0)

	resp, err := http.Get(srv.URL + coord.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + coord.CellPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET cell = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+coord.CellPath, "application/json", strings.NewReader("{bad json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", resp.StatusCode)
	}
}
