package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"tango/internal/distcache"
	"tango/internal/par"
	"tango/internal/serve"
	"tango/internal/target"
)

// CellPath and HealthPath are the worker's HTTP endpoints.
const (
	CellPath   = "/v1/cell"
	HealthPath = "/healthz"
)

// cellOut is the worker-side terminal state of one cell: the encoded
// record on success, the failure message otherwise.  Per-cell failures
// ride inside the batch result — one poisoned cell must not fail the
// batch it shared a queue flush with.
type cellOut struct {
	data []byte
	err  string
}

// Worker serves sweep cells over HTTP.  Cells enter a serve.Batcher —
// the same bounded-queue/backpressure scheduler behind tango-serve — and
// each flushed batch fans out over a par worker pool, so a worker's
// concurrency is bounded and a full queue rejects fast with 429 instead
// of stacking goroutines.  Every cell runs through the worker's own
// store, so a worker pointed at a cache directory serves repeated cells
// from cache.
type Worker struct {
	reg     *target.Registry
	store   *target.Store
	batcher *serve.Batcher[CellRequest, cellOut]
}

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Registry resolves target names; nil selects target.Builtin().
	Registry *target.Registry
	// Store caches the worker's traces and runs; nil selects the
	// process-wide target.Shared().
	Store *target.Store
	// Parallelism bounds concurrent cell computations; values below 1
	// select GOMAXPROCS.
	Parallelism int
	// QueueDepth bounds the cell queue; values below 1 use the serve
	// default.
	QueueDepth int
	// CacheDir, when non-empty, attaches a persistent disk cache to the
	// worker's store (best effort: an unopenable directory is ignored).
	CacheDir string
	// CacheMaxMB bounds the disk cache's size in MiB; 0 leaves it
	// unbounded.  Old records are evicted oldest-first once the bound is
	// exceeded.
	CacheMaxMB int
}

// NewWorker starts a worker with the given policy.  Callers must Close it
// to drain the queue and stop the scheduler.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Registry == nil {
		cfg.Registry = target.Builtin()
	}
	if cfg.Store == nil {
		cfg.Store = target.Shared()
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheDir != "" {
		if d, err := distcache.Open(cfg.CacheDir); err == nil {
			if cfg.CacheMaxMB > 0 {
				d.SetMaxBytes(int64(cfg.CacheMaxMB) << 20)
			}
			cfg.Store.SetDisk(d)
		}
	}
	w := &Worker{reg: cfg.Registry, store: cfg.Store}
	w.batcher = serve.NewBatcher(serve.Config{
		MaxBatch:   cfg.Parallelism,
		QueueDepth: cfg.QueueDepth,
	}, func(reqs []CellRequest) ([]cellOut, error) {
		outs := make([]cellOut, len(reqs))
		// Cells are independent; fan them out and always report batch
		// success so a failed cell degrades only its own slot (the error
		// travels in cellOut, not up through the batcher's bisection).
		par.ForEach(cfg.Parallelism, len(reqs), func(i int) error {
			outs[i] = w.runCell(reqs[i])
			return nil
		})
		return outs, nil
	})
	return w
}

// runCell resolves, verifies and computes one cell, returning the encoded
// record or the failure message.
func (w *Worker) runCell(req CellRequest) cellOut {
	t, err := w.reg.Lookup(req.Target)
	if err != nil {
		return cellOut{err: err.Error()}
	}
	v := req.Variant.Variant()
	key := target.RunKey(t, req.Network, v)
	if key != req.Key {
		return cellOut{err: fmt.Sprintf(
			"coord: key mismatch for %s on %s (%s): coordinator and worker disagree on the cell's content key (different builds or device tables?)",
			req.Network, req.Target, v.Key)}
	}
	rs, err := w.store.Run(t, req.Network, v)
	if err != nil {
		return cellOut{err: err.Error()}
	}
	data, err := distcache.Encode(key, rs)
	if err != nil {
		return cellOut{err: err.Error()}
	}
	return cellOut{data: data}
}

// ServeHTTP routes the worker's endpoints: POST CellPath runs one cell
// and returns its encoded record; GET HealthPath reports liveness.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case HealthPath:
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	case CellPath:
		w.serveCell(rw, r)
	default:
		http.NotFound(rw, r)
	}
}

func (w *Worker) serveCell(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req CellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad cell request: "+err.Error(), http.StatusBadRequest)
		return
	}
	out, err := w.batcher.Do(r.Context(), req)
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		http.Error(rw, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, serve.ErrClosed):
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	case out.err != "":
		http.Error(rw, out.err, http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(out.data)
}

// Store returns the worker's run store (for stats reporting).
func (w *Worker) Store() *target.Store { return w.store }

// Close drains the cell queue and stops the scheduler.
func (w *Worker) Close() { w.batcher.Close() }
