package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"tango/internal/distcache"
	"tango/internal/resilience"
	"tango/internal/target"
)

// PoolConfig tunes a coordinator's worker pool.
type PoolConfig struct {
	// Attempts is how many times one cell fetch is tried against its
	// worker before the caller falls back to local execution; values below
	// 1 select 2 (one retry).
	Attempts int
	// Breaker tunes the per-worker circuit breaker (zero value = the
	// resilience defaults: trip after 5 consecutive failures, 2s cooldown).
	Breaker resilience.BreakerConfig
	// Client issues the HTTP requests; nil selects http.DefaultClient.
	// Per-request deadlines come from the caller's context.
	Client *http.Client
}

// workerClient is one remote worker: its base URL plus the circuit
// breaker that sheds calls to it while it is failing.
type workerClient struct {
	addr    string
	base    string
	breaker *resilience.Breaker
}

// Pool is a coordinator's view of its workers.  Fetch shards cells by
// index (round-robin), so for a fixed worker list every cell has one home
// worker and a warm worker-side cache is hit deterministically.  All
// methods are safe for concurrent use.
type Pool struct {
	cfg     PoolConfig
	workers []*workerClient
}

// NewPool returns a pool over the given worker addresses (host:port or
// full http:// URLs).
func NewPool(addrs []string, cfg PoolConfig) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("coord: no worker addresses")
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 2
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	p := &Pool{cfg: cfg}
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		p.workers = append(p.workers, &workerClient{
			addr:    addr,
			base:    strings.TrimRight(base, "/"),
			breaker: resilience.NewBreaker(cfg.Breaker),
		})
	}
	if len(p.workers) == 0 {
		return nil, fmt.Errorf("coord: no worker addresses")
	}
	return p, nil
}

// Len returns the number of workers.
func (p *Pool) Len() int { return len(p.workers) }

// Fetch runs one cell on its home worker (cell index modulo pool size)
// and decodes the returned record against the coordinator's trace.  Any
// failure — breaker open, transport error, worker-side failure, key or
// trace mismatch — is returned for the caller to fall back on local
// execution; Fetch itself never computes.
func (p *Pool) Fetch(ctx context.Context, idx int, t target.Target, network string, v target.Variant, tr *target.Trace) (*target.RunStats, error) {
	w := p.workers[idx%len(p.workers)]
	if err := w.breaker.Allow(); err != nil {
		return nil, fmt.Errorf("coord: worker %s: %w", w.addr, err)
	}
	key := target.RunKey(t, network, v)
	var rs *target.RunStats
	err := resilience.Retry(ctx, resilience.Backoff{Attempts: p.cfg.Attempts}, func(ctx context.Context) error {
		var err error
		rs, err = p.fetchOnce(ctx, w, key, t, network, v, tr)
		return err
	})
	if err != nil && ctx.Err() != nil {
		// The caller gave up; the worker got no fair shot at the call, so
		// the breaker must not count it either way.
		w.breaker.Forgive()
		return nil, err
	}
	w.breaker.Record(err)
	if err != nil {
		return nil, fmt.Errorf("coord: worker %s: %w", w.addr, err)
	}
	return rs, nil
}

// fetchOnce is one HTTP round trip: POST the cell request, decode and
// verify the returned record.
func (p *Pool) fetchOnce(ctx context.Context, w *workerClient, key string, t target.Target, network string, v target.Variant, tr *target.Trace) (*target.RunStats, error) {
	body, err := json.Marshal(CellRequest{
		Key:     key,
		Network: network,
		Target:  t.Name(),
		Variant: WireVariant(v),
	})
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+CellPath, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 300 {
			msg = msg[:300] + "..."
		}
		return nil, fmt.Errorf("cell %s: HTTP %d: %s", v.Key, resp.StatusCode, msg)
	}
	return distcache.Decode(data, key, tr)
}
