// Package device describes the hardware platforms the paper evaluates: the
// Kepler GK210 server GPU, the Tegra X1 mobile GPU, the Pascal GP102
// configuration used with the architecture simulator (Table II) and the
// Xilinx PynQ-Z1 FPGA board (Table IV).
package device

import "fmt"

// Class distinguishes GPUs from FPGAs.
type Class uint8

// Device classes.
const (
	ClassGPU Class = iota
	ClassFPGA
)

// String returns the class name.
func (c Class) String() string {
	if c == ClassFPGA {
		return "FPGA"
	}
	return "GPU"
}

// GPU describes one GPU platform (Table II).
type GPU struct {
	// Name is the marketing name, e.g. "Tesla K80 (GK210)".
	Name string
	// Architecture is the GPU architecture, e.g. "Kepler", "Maxwell", "Pascal".
	Architecture string
	// Role is the evaluation role in the paper: "Server", "Mobile" or "Simulator".
	Role string
	// CUDACores is the total CUDA core count.
	CUDACores int
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoreClockMHz is the SM clock.
	CoreClockMHz int
	// MemClockMHz is the memory clock.
	MemClockMHz int
	// GlobalMemBytes is the device memory capacity.
	GlobalMemBytes int64
	// SharedMemPerBlockBytes is the shared memory available per block.
	SharedMemPerBlockBytes int
	// L1DBytes is the default per-SM L1 data cache size.
	L1DBytes int
	// L2Bytes is the shared L2 cache size.
	L2Bytes int
	// RegistersPerSM is the per-SM register file size in 32-bit registers.
	RegistersPerSM int
	// MaxWarpsPerSM bounds resident warps per SM.
	MaxWarpsPerSM int
	// MemBandwidthGBs is the peak DRAM bandwidth.
	MemBandwidthGBs float64
	// TDPWatts is the board power limit, used to calibrate the power model.
	TDPWatts float64
	// IdleWatts is the measured idle power of the board.
	IdleWatts float64
	// HostCPU and OS document the evaluation platform (Table II).
	HostCPU string
	OS      string
}

// Validate checks the configuration for plausibility.
func (g GPU) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("device: unnamed GPU")
	}
	if g.SMs <= 0 || g.CUDACores <= 0 {
		return fmt.Errorf("device: %s: SMs and CUDA cores must be positive", g.Name)
	}
	if g.CUDACores%g.SMs != 0 {
		return fmt.Errorf("device: %s: %d cores do not divide evenly across %d SMs", g.Name, g.CUDACores, g.SMs)
	}
	if g.CoreClockMHz <= 0 || g.MemBandwidthGBs <= 0 {
		return fmt.Errorf("device: %s: clock and bandwidth must be positive", g.Name)
	}
	if g.L2Bytes <= 0 || g.RegistersPerSM <= 0 {
		return fmt.Errorf("device: %s: cache and register file sizes must be positive", g.Name)
	}
	return nil
}

// CoresPerSM returns CUDA cores per SM.
func (g GPU) CoresPerSM() int { return g.CUDACores / g.SMs }

// RegisterFileBytesPerSM returns the per-SM register file size in bytes.
func (g GPU) RegisterFileBytesPerSM() int { return g.RegistersPerSM * 4 }

// FPGA describes the PynQ-Z1 platform (Table IV).
type FPGA struct {
	Name string
	// Processor is the hard CPU complex.
	Processor string
	// ProcessorClockMHz is the ARM core clock.
	ProcessorClockMHz int
	// FabricClockMHz is the programmable-logic clock used by the HLS kernels.
	FabricClockMHz int
	// MemBytes is the board DRAM.
	MemBytes int64
	// StorageBytes is the SD-card storage.
	StorageBytes int64
	// LogicSlices is the programmable logic capacity.
	LogicSlices int
	// BRAMBytes is the on-chip block RAM capacity.
	BRAMBytes int
	// DSPSlices is the number of DSP48 multiply-accumulate slices.
	DSPSlices int
	// IdleWatts and PeakWatts bound the board power envelope.
	IdleWatts float64
	PeakWatts float64
}

// Validate checks the configuration for plausibility.
func (f FPGA) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("device: unnamed FPGA")
	}
	if f.LogicSlices <= 0 || f.BRAMBytes <= 0 || f.DSPSlices <= 0 {
		return fmt.Errorf("device: %s: fabric resources must be positive", f.Name)
	}
	if f.FabricClockMHz <= 0 {
		return fmt.Errorf("device: %s: fabric clock must be positive", f.Name)
	}
	return nil
}

// GK210 returns the server GPU of Table II: one GK210 die of a Tesla K80.
func GK210() GPU {
	return GPU{
		Name:                   "NVIDIA GK210 (Tesla K80)",
		Architecture:           "Kepler",
		Role:                   "Server",
		CUDACores:              2880,
		SMs:                    15,
		CoreClockMHz:           745,
		MemClockMHz:            2505,
		GlobalMemBytes:         24 << 30,
		SharedMemPerBlockBytes: 128 << 10,
		L1DBytes:               48 << 10,
		L2Bytes:                1536 << 10,
		RegistersPerSM:         65536,
		MaxWarpsPerSM:          64,
		MemBandwidthGBs:        240,
		TDPWatts:               300,
		IdleWatts:              62,
		HostCPU:                "Intel Xeon E5-2623 3.0 GHz",
		OS:                     "Ubuntu 14.04.1",
	}
}

// TX1 returns the mobile GPU of Table II: the Jetson TX1's Maxwell GPU.
func TX1() GPU {
	return GPU{
		Name:                   "NVIDIA Tegra X1",
		Architecture:           "Maxwell",
		Role:                   "Mobile",
		CUDACores:              256,
		SMs:                    2,
		CoreClockMHz:           998,
		MemClockMHz:            1600,
		GlobalMemBytes:         4 << 30,
		SharedMemPerBlockBytes: 48 << 10,
		L1DBytes:               48 << 10,
		L2Bytes:                256 << 10,
		RegistersPerSM:         32768,
		MaxWarpsPerSM:          64,
		MemBandwidthGBs:        25.6,
		TDPWatts:               15,
		IdleWatts:              1.5,
		HostCPU:                "ARM Cortex-A57 1.9 GHz",
		OS:                     "Ubuntu 14.04.3 LTS",
	}
}

// PascalGP102 returns the simulator configuration of Table II: a Pascal GP102
// as modelled by the development branch of GPGPU-Sim.
func PascalGP102() GPU {
	return GPU{
		Name:                   "Pascal GP102 (simulator)",
		Architecture:           "Pascal",
		Role:                   "Simulator",
		CUDACores:              3584,
		SMs:                    28,
		CoreClockMHz:           1480,
		MemClockMHz:            5505,
		GlobalMemBytes:         11 << 30,
		SharedMemPerBlockBytes: 96 << 10,
		L1DBytes:               64 << 10,
		L2Bytes:                3 << 20,
		RegistersPerSM:         65536,
		MaxWarpsPerSM:          64,
		MemBandwidthGBs:        484,
		TDPWatts:               250,
		IdleWatts:              55,
		HostCPU:                "Intel Xeon E5-2623 3.0 GHz",
		OS:                     "Ubuntu 14.04.1",
	}
}

// PynQZ1 returns the FPGA platform of Table IV.
func PynQZ1() FPGA {
	return FPGA{
		Name:              "Xilinx PynQ-Z1",
		Processor:         "Dual-core ARM Cortex-A9",
		ProcessorClockMHz: 650,
		FabricClockMHz:    100,
		MemBytes:          512 << 20,
		StorageBytes:      32 << 30,
		LogicSlices:       13300,
		BRAMBytes:         630 << 10,
		DSPSlices:         220,
		IdleWatts:         1.2,
		PeakWatts:         6,
	}
}

// GPUs returns the three GPU platforms of Table II keyed by role.
func GPUs() map[string]GPU {
	return map[string]GPU{
		"Server":    GK210(),
		"Mobile":    TX1(),
		"Simulator": PascalGP102(),
	}
}
