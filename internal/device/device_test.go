package device

import "testing"

func TestTableIIConfigs(t *testing.T) {
	gk := GK210()
	if gk.CUDACores != 2880 {
		t.Errorf("GK210 cores = %d, want 2880 (Table II)", gk.CUDACores)
	}
	if gk.GlobalMemBytes != 24<<30 {
		t.Errorf("GK210 memory = %d, want 24 GB", gk.GlobalMemBytes)
	}
	if gk.RegistersPerSM != 65536 {
		t.Errorf("GK210 registers per SM = %d, want 65536", gk.RegistersPerSM)
	}

	tx1 := TX1()
	if tx1.CUDACores != 256 {
		t.Errorf("TX1 cores = %d, want 256 (Table II)", tx1.CUDACores)
	}
	if tx1.GlobalMemBytes != 4<<30 {
		t.Errorf("TX1 memory = %d, want 4 GB", tx1.GlobalMemBytes)
	}
	if tx1.RegistersPerSM != 32768 {
		t.Errorf("TX1 registers per SM = %d, want 32768", tx1.RegistersPerSM)
	}

	gp := PascalGP102()
	if gp.CUDACores != 3584 {
		t.Errorf("GP102 cores = %d, want 3584 (Table II)", gp.CUDACores)
	}
	if gp.L1DBytes != 64<<10 {
		t.Errorf("GP102 default L1D = %d, want 64KB (Table II)", gp.L1DBytes)
	}
	if gp.GlobalMemBytes != 11<<30 {
		t.Errorf("GP102 memory = %d, want 11 GB", gp.GlobalMemBytes)
	}
}

func TestTableIVConfig(t *testing.T) {
	p := PynQZ1()
	if p.LogicSlices != 13300 {
		t.Errorf("PynQ logic slices = %d, want 13300 (Table IV)", p.LogicSlices)
	}
	if p.BRAMBytes != 630<<10 {
		t.Errorf("PynQ BRAM = %d, want 630KB (Table IV)", p.BRAMBytes)
	}
	if p.ProcessorClockMHz != 650 {
		t.Errorf("PynQ ARM clock = %d, want 650 MHz (Table IV)", p.ProcessorClockMHz)
	}
	if p.MemBytes != 512<<20 {
		t.Errorf("PynQ memory = %d, want 512MB (Table IV)", p.MemBytes)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("PynQ config invalid: %v", err)
	}
}

func TestAllGPUsValid(t *testing.T) {
	for role, g := range GPUs() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", role, err)
		}
		if g.Role != role {
			t.Errorf("GPU %s has role %q, keyed as %q", g.Name, g.Role, role)
		}
		if g.CoresPerSM() <= 0 {
			t.Errorf("%s: cores per SM = %d", g.Name, g.CoresPerSM())
		}
		if g.RegisterFileBytesPerSM() != g.RegistersPerSM*4 {
			t.Errorf("%s: register file bytes mismatch", g.Name)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := GK210()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("unnamed GPU should fail")
	}
	bad = GK210()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SMs should fail")
	}
	bad = GK210()
	bad.SMs = 7 // 2880 % 7 != 0
	if err := bad.Validate(); err == nil {
		t.Error("uneven core split should fail")
	}
	bad = GK210()
	bad.MemBandwidthGBs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}

	badF := PynQZ1()
	badF.BRAMBytes = 0
	if err := badF.Validate(); err == nil {
		t.Error("zero BRAM should fail")
	}
	badF = PynQZ1()
	badF.Name = ""
	if err := badF.Validate(); err == nil {
		t.Error("unnamed FPGA should fail")
	}
}

func TestClassString(t *testing.T) {
	if ClassGPU.String() != "GPU" || ClassFPGA.String() != "FPGA" {
		t.Error("unexpected class names")
	}
}
