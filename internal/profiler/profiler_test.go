package profiler_test

import (
	"math"
	"testing"

	"tango/internal/gpusim"
	"tango/internal/networks"
	"tango/internal/profiler"
)

func simulate(t *testing.T, name string) *gpusim.RunStats {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gpusim.New(gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.RunNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestMemoryFootprint(t *testing.T) {
	cases := []struct {
		name  string
		maxKB float64
		minKB float64
	}{
		// Observation 9 / Figure 11: RNNs below 500KB, CNNs at least 1MB.
		{"GRU", 500, 1},
		{"LSTM", 500, 1},
		{"AlexNet", 1 << 20, 1024},
		{"ResNet", 1 << 20, 1024},
		{"SqueezeNet", 1 << 20, 1024},
	}
	for _, c := range cases {
		n, err := networks.New(c.name)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := profiler.MemoryFootprint(n)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Network != c.name {
			t.Errorf("%s: wrong network name %q", c.name, fp.Network)
		}
		if fp.TotalBytes != fp.WeightBytes+fp.ActivationBytes+fp.WorkspaceBytes {
			t.Errorf("%s: footprint components do not sum", c.name)
		}
		if fp.KB() < c.minKB || fp.KB() > c.maxKB {
			t.Errorf("%s: footprint %.1f KB outside [%v, %v]", c.name, fp.KB(), c.minKB, c.maxKB)
		}
	}
	if _, err := profiler.MemoryFootprint(nil); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := profiler.MemoryFootprint(&networks.Network{Name: "x"}); err == nil {
		t.Error("unbuilt network should fail")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// Model size ordering: SqueezeNet (designed for few parameters) must be
	// far smaller than AlexNet.
	alex, err := networks.NewAlexNet()
	if err != nil {
		t.Fatal(err)
	}
	squeeze, err := networks.NewSqueezeNet()
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := profiler.MemoryFootprint(alex)
	if err != nil {
		t.Fatal(err)
	}
	fpS, err := profiler.MemoryFootprint(squeeze)
	if err != nil {
		t.Fatal(err)
	}
	if fpS.WeightBytes*10 > fpA.WeightBytes {
		t.Errorf("SqueezeNet weights (%d) should be well under a tenth of AlexNet's (%d)",
			fpS.WeightBytes, fpA.WeightBytes)
	}
}

func TestRegisters(t *testing.T) {
	rs := simulate(t, "CifarNet")
	reg := profiler.Registers(rs)
	if reg.MaxAllocatedBytes <= 0 || reg.MaxLiveBytes <= 0 {
		t.Fatal("register usage should be positive")
	}
	if reg.MaxLiveBytes > reg.MaxAllocatedBytes {
		t.Error("live registers cannot exceed allocated registers")
	}
	if reg.KBAllocated() <= 0 || reg.KBLive() <= 0 {
		t.Error("KB conversions should be positive")
	}
	// Observation 10: the 256KB per-SM register file is under-utilized by the
	// small networks.
	if reg.KBAllocated() > 256 {
		t.Errorf("CifarNet register allocation %.1f KB should be below the 256KB register file", reg.KBAllocated())
	}
}

func TestOpBreakdownSharesSumToOne(t *testing.T) {
	rs := simulate(t, "CifarNet")
	shares := profiler.OpBreakdown(rs)
	if len(shares) == 0 {
		t.Fatal("no op shares")
	}
	sum := 0.0
	for i, s := range shares {
		if s.Share <= 0 {
			t.Errorf("share %d not positive", i)
		}
		if i > 0 && s.Share > shares[i-1].Share {
			t.Error("shares must be sorted descending")
		}
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

func TestTopOpsCoverage(t *testing.T) {
	// Observation 7: the top 10 operations cover ~95% of execution.
	rs := simulate(t, "CifarNet")
	top10 := profiler.TopOpsCoverage(rs, 10)
	if top10 < 0.85 {
		t.Errorf("top-10 coverage %.2f, want >= 0.85", top10)
	}
	all := profiler.TopOpsCoverage(rs, 100)
	if math.Abs(all-1) > 1e-9 {
		t.Errorf("full coverage %v, want 1", all)
	}
	if profiler.TopOpsCoverage(rs, 4) >= top10 {
		t.Error("coverage must grow with n")
	}
}

func TestMergedOpBreakdown(t *testing.T) {
	a := simulate(t, "GRU")
	b := simulate(t, "CifarNet")
	merged := profiler.MergedOpBreakdown([]*gpusim.RunStats{a, b})
	if len(merged) == 0 {
		t.Fatal("merged breakdown empty")
	}
	sum := 0.0
	for _, s := range merged {
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("merged shares sum to %v", sum)
	}
	if profiler.MergedOpBreakdown(nil) != nil {
		t.Error("empty merge should return nil")
	}
}

func TestTypeTimelineAndIntegerShare(t *testing.T) {
	rs := simulate(t, "CifarNet")
	timeline := profiler.TypeTimeline(rs)
	if len(timeline) != len(rs.Kernels) {
		t.Errorf("timeline has %d entries for %d kernels", len(timeline), len(rs.Kernels))
	}
	for _, lt := range timeline {
		sum := 0.0
		for _, v := range lt.Shares {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("layer %s type shares sum to %v", lt.Layer, sum)
		}
	}
	// Observation 8: integer types dominate.
	intShare := profiler.IntegerShare(rs)
	if intShare <= 0.5 {
		t.Errorf("integer share %.2f, want > 0.5", intShare)
	}
	if intShare >= 1 {
		t.Errorf("integer share %.2f should leave room for f32", intShare)
	}
}

func TestStallBreakdowns(t *testing.T) {
	rs := simulate(t, "CifarNet")
	byClass := profiler.StallBreakdownByClass(rs)
	if len(byClass) == 0 {
		t.Fatal("no stall classes")
	}
	for class, shares := range byClass {
		sum := 0.0
		for _, v := range shares {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("class %s stall shares sum to %v", class, sum)
		}
	}
	if _, ok := byClass[networks.ClassConv]; !ok {
		t.Error("conv class missing from stall breakdown")
	}
	total := profiler.StallBreakdownTotal(rs)
	sum := 0.0
	for _, v := range total {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("total stall shares sum to %v", sum)
	}
}
