// Package profiler extracts nvprof-style reports from simulation results and
// network descriptions: device memory footprints, register-file utilization,
// operation and data-type mixes, and stall-cycle breakdowns.  The packages
// internal/bench and the public API use it to regenerate the paper's figures.
package profiler

import (
	"fmt"
	"sort"

	"tango/internal/gpusim"
	"tango/internal/isa"
	"tango/internal/networks"
)

// Footprint summarizes the device memory demand of one network (Figure 11).
type Footprint struct {
	// Network is the benchmark name.
	Network string
	// WeightBytes is the pre-trained model size.
	WeightBytes int64
	// ActivationBytes is the total size of per-layer output buffers.
	ActivationBytes int64
	// WorkspaceBytes covers the input image and per-kernel scratch buffers.
	WorkspaceBytes int64
	// TotalBytes is the maximum device memory in use.
	TotalBytes int64
}

// KB returns the footprint in kilobytes, the unit of Figure 11.
func (f Footprint) KB() float64 { return float64(f.TotalBytes) / 1024 }

// MemoryFootprint computes the device memory footprint of a built network.
func MemoryFootprint(n *networks.Network) (Footprint, error) {
	if n == nil || !n.Built() {
		return Footprint{}, fmt.Errorf("profiler: network must be built")
	}
	wb, err := n.WeightBytes()
	if err != nil {
		return Footprint{}, err
	}
	ab, err := n.ActivationBytes()
	if err != nil {
		return Footprint{}, err
	}
	// Workspace: the input buffer plus a CUDA-context-style fixed overhead
	// per resident kernel (device code, launch parameters).
	workspace := int64(len(n.Layers))*4096 + 1<<16
	return Footprint{
		Network:         n.Name,
		WeightBytes:     wb,
		ActivationBytes: ab,
		WorkspaceBytes:  workspace,
		TotalBytes:      wb + ab + workspace,
	}, nil
}

// RegisterUsage summarizes per-SM register-file utilization (Figure 12).
type RegisterUsage struct {
	// Network is the benchmark name.
	Network string
	// MaxAllocatedBytes is the peak per-SM register allocation (compiler
	// allocation x resident threads).
	MaxAllocatedBytes int64
	// MaxLiveBytes is the peak per-SM live register footprint.
	MaxLiveBytes int64
}

// KBAllocated returns the allocation in KB.
func (r RegisterUsage) KBAllocated() float64 { return float64(r.MaxAllocatedBytes) / 1024 }

// KBLive returns the live footprint in KB.
func (r RegisterUsage) KBLive() float64 { return float64(r.MaxLiveBytes) / 1024 }

// Registers computes register-file usage from a simulated run.
func Registers(rs *gpusim.RunStats) RegisterUsage {
	out := RegisterUsage{Network: rs.Network}
	for _, ks := range rs.Kernels {
		alloc := int64(ks.AllocatedRegsPerSM) * 4
		live := int64(ks.LiveRegsPerSM) * 4
		if alloc > out.MaxAllocatedBytes {
			out.MaxAllocatedBytes = alloc
		}
		if live > out.MaxLiveBytes {
			out.MaxLiveBytes = live
		}
	}
	return out
}

// OpShare is one entry of an operation-mix breakdown.
type OpShare struct {
	// Op is the mnemonic.
	Op string
	// Share is the fraction of dynamic instructions.
	Share float64
}

// OpBreakdown returns the per-opcode dynamic instruction shares of a run,
// sorted by descending share (Figures 8 and 9).
func OpBreakdown(rs *gpusim.RunStats) []OpShare {
	totals := rs.OpTotals()
	var sum int64
	for _, c := range totals {
		sum += c
	}
	if sum == 0 {
		return nil
	}
	var out []OpShare
	for op, c := range totals {
		if c == 0 {
			continue
		}
		out = append(out, OpShare{Op: isa.Opcode(op).String(), Share: float64(c) / float64(sum)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// TopOpsCoverage returns the combined share of the n most executed
// operations.
func TopOpsCoverage(rs *gpusim.RunStats, n int) float64 {
	shares := OpBreakdown(rs)
	if n > len(shares) {
		n = len(shares)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += shares[i].Share
	}
	return total
}

// MergedOpBreakdown merges several runs (the "all networks" mix of Figure 9).
func MergedOpBreakdown(runs []*gpusim.RunStats) []OpShare {
	var totals [isa.NumOpcodes]int64
	var sum int64
	for _, rs := range runs {
		t := rs.OpTotals()
		for op, c := range t {
			totals[op] += c
			sum += c
		}
	}
	if sum == 0 {
		return nil
	}
	var out []OpShare
	for op, c := range totals {
		if c == 0 {
			continue
		}
		out = append(out, OpShare{Op: isa.Opcode(op).String(), Share: float64(c) / float64(sum)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// TypeShares maps data-type names to dynamic instruction shares.
type TypeShares map[string]float64

// LayerTypes is the data-type mix of one kernel (one bar of Figure 10).
type LayerTypes struct {
	// Layer is the kernel/layer name in invocation order.
	Layer string
	// Shares is the per-data-type fraction.
	Shares TypeShares
}

// TypeTimeline returns the per-layer data-type breakdown in invocation order.
func TypeTimeline(rs *gpusim.RunStats) []LayerTypes {
	var out []LayerTypes
	for _, ks := range rs.Kernels {
		var sum int64
		for _, c := range ks.TypeCounts {
			sum += c
		}
		if sum == 0 {
			continue
		}
		shares := make(TypeShares)
		for dt, c := range ks.TypeCounts {
			if c == 0 {
				continue
			}
			shares[isa.DType(dt).String()] = float64(c) / float64(sum)
		}
		out = append(out, LayerTypes{Layer: ks.Kernel.LayerName, Shares: shares})
	}
	return out
}

// IntegerShare returns the total share of integer-typed instructions in a run
// (Observation 8).
func IntegerShare(rs *gpusim.RunStats) float64 {
	var integer, total int64
	for _, ks := range rs.Kernels {
		for dt, c := range ks.TypeCounts {
			total += c
			switch isa.DType(dt) {
			case isa.TypeU32, isa.TypeU16, isa.TypeS32, isa.TypeS16:
				integer += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(integer) / float64(total)
}

// StallShares maps stall reasons to fractions per layer class (Figure 7).
type StallShares map[gpusim.StallReason]float64

// StallBreakdownByClass normalizes stall counts per layer class.
func StallBreakdownByClass(rs *gpusim.RunStats) map[string]StallShares {
	raw := rs.StallsByClass()
	out := make(map[string]StallShares, len(raw))
	for class, counts := range raw {
		var total int64
		for _, v := range counts {
			total += v
		}
		if total == 0 {
			continue
		}
		shares := make(StallShares)
		for r, v := range counts {
			if v == 0 {
				continue
			}
			shares[gpusim.StallReason(r)] = float64(v) / float64(total)
		}
		out[class] = shares
	}
	return out
}

// StallBreakdownTotal normalizes stall counts over the whole run (the
// per-network summary bars of Figure 7).
func StallBreakdownTotal(rs *gpusim.RunStats) StallShares {
	var counts [gpusim.NumStallReasons]int64
	var total int64
	for _, ks := range rs.Kernels {
		for r, v := range ks.Stalls {
			counts[r] += v
			total += v
		}
	}
	if total == 0 {
		return nil
	}
	out := make(StallShares)
	for r, v := range counts {
		if v == 0 {
			continue
		}
		out[gpusim.StallReason(r)] = float64(v) / float64(total)
	}
	return out
}
