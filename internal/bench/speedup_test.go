package bench

import (
	"testing"
	"time"

	"tango/internal/gpusim"
	"tango/internal/target"
)

// TestTraceStoreRepeatSpeedup is the benchmark-backed guard on the pipeline's
// reuse: a second session over the same store must render the full report at
// least 1.5x faster than the first, because every repeated-device figure
// derives from the store instead of re-simulating (the PR 4 baseline kept the
// simulation cache per-session, so a new session re-ran the entire matrix).
// In practice the warm run is orders of magnitude faster; 1.5x keeps the
// assertion robust on slow, noisy CI machines.
func TestTraceStoreRepeatSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based test skipped in -short mode")
	}
	opts := Options{
		Networks: []string{"GRU", "LSTM", "CifarNet"},
		Sampling: gpusim.FastSampling(),
		Store:    target.NewStore(),
	}

	start := time.Now()
	cold, err := NewSession(opts).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	coldTime := time.Since(start)

	start = time.Now()
	warm, err := NewSession(opts).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	warmTime := time.Since(start)

	if len(cold) != len(warm) {
		t.Fatalf("table counts differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i].String() != warm[i].String() {
			t.Errorf("%s: warm rendering differs from cold", cold[i].ID)
		}
	}
	if coldTime < warmTime*3/2 {
		t.Errorf("shared store should make a repeat RunAll >= 1.5x faster: cold %v, warm %v (%.1fx)",
			coldTime, warmTime, float64(coldTime)/float64(warmTime))
	}
	t.Logf("cold %v, warm %v (%.1fx)", coldTime, warmTime, float64(coldTime)/float64(warmTime))
}
