package bench

import (
	"testing"

	"tango/internal/gpusim"
)

// TestPrewarmForCoversExperiments guards the experimentKeys mapping: after
// PrewarmFor(id), rendering the experiment must hit the cache only — no new
// simulation cells may appear.  Each experiment gets a fresh session so
// cells warmed for one cannot mask a gap in another.  The network filter
// keeps the sweep fast but must include a CNN from Fig6's
// {CifarNet, SqueezeNet} set, otherwise the fig6 check is vacuous.
func TestPrewarmForCoversExperiments(t *testing.T) {
	for _, e := range Experiments() {
		s := NewSession(Options{
			Networks: []string{"GRU", "CifarNet"},
			Sampling: gpusim.FastSampling(),
		})
		if err := s.PrewarmFor(e.ID, 2); err != nil {
			t.Fatalf("%s: prewarm: %v", e.ID, err)
		}
		warmed := len(s.runs)
		if _, err := s.Run(e.ID); err != nil {
			t.Fatalf("%s: run: %v", e.ID, err)
		}
		if got := len(s.runs); got != warmed {
			t.Errorf("%s: render simulated %d cells PrewarmFor missed (warmed %d)",
				e.ID, got-warmed, warmed)
		}
	}
}

// TestPrewarmForScopesWork verifies the single-experiment prewarm simulates
// strictly fewer cells than the full matrix for a sim-free table and a
// single-configuration figure.
func TestPrewarmForScopesWork(t *testing.T) {
	opts := Options{Networks: []string{"GRU"}, Sampling: gpusim.FastSampling()}

	s := NewSession(opts)
	if err := s.PrewarmFor("table3", 2); err != nil {
		t.Fatal(err)
	}
	if len(s.runs) != 0 {
		t.Errorf("table3 needs no simulation, prewarmed %d cells", len(s.runs))
	}

	s = NewSession(opts)
	if err := s.PrewarmFor("fig1", 2); err != nil {
		t.Fatal(err)
	}
	full := len(NewSession(opts).matrix())
	if len(s.runs) != 1 {
		t.Errorf("fig1 needs 1 cell, prewarmed %d (full matrix %d)", len(s.runs), full)
	}
	if len(s.runs) >= full {
		t.Errorf("scoped prewarm (%d) must be smaller than the full matrix (%d)", len(s.runs), full)
	}
}
