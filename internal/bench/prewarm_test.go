package bench

import (
	"testing"

	"tango/internal/gpusim"
	"tango/internal/target"
)

// TestPrewarmForCoversExperiments guards the experimentTags mapping: after
// PrewarmFor(id), rendering the experiment must hit the run store only — no
// new run cells may appear.  Each experiment gets a fresh session with a
// private store so cells warmed for one cannot mask a gap in another.  The
// network filter keeps the sweep fast but must include a CNN from Fig6's
// {CifarNet, SqueezeNet} set, otherwise the fig6 check is vacuous.
func TestPrewarmForCoversExperiments(t *testing.T) {
	for _, e := range Experiments() {
		s := NewSession(Options{
			Networks: []string{"GRU", "CifarNet"},
			Sampling: gpusim.FastSampling(),
			Store:    target.NewStore(),
		})
		if err := s.PrewarmFor(e.ID, 2); err != nil {
			t.Fatalf("%s: prewarm: %v", e.ID, err)
		}
		warmed := s.store.Stats().Runs
		if _, err := s.Run(e.ID); err != nil {
			t.Fatalf("%s: run: %v", e.ID, err)
		}
		if got := s.store.Stats().Runs; got != warmed {
			t.Errorf("%s: render computed %d cells PrewarmFor missed (warmed %d)",
				e.ID, got-warmed, warmed)
		}
	}
}

// TestPrewarmForScopesWork verifies the single-experiment prewarm computes
// strictly fewer cells than the full matrix for a run-free table and a
// single-configuration figure.
func TestPrewarmForScopesWork(t *testing.T) {
	opts := func() Options {
		return Options{
			Networks: []string{"GRU"},
			Sampling: gpusim.FastSampling(),
			Store:    target.NewStore(),
		}
	}

	s := NewSession(opts())
	if err := s.PrewarmFor("table3", 2); err != nil {
		t.Fatal(err)
	}
	if got := s.store.Stats().Runs; got != 0 {
		t.Errorf("table3 needs no runs, prewarmed %d cells", got)
	}

	s = NewSession(opts())
	if err := s.PrewarmFor("fig1", 2); err != nil {
		t.Fatal(err)
	}
	full := len(NewSession(opts()).matrix())
	if got := s.store.Stats().Runs; got != 1 {
		t.Errorf("fig1 needs 1 cell, prewarmed %d (full matrix %d)", got, full)
	}
	if got := s.store.Stats().Runs; got >= full {
		t.Errorf("scoped prewarm (%d) must be smaller than the full matrix (%d)", got, full)
	}
}
