package bench

import (
	"fmt"

	"tango/internal/gpusim"
	"tango/internal/isa"
	"tango/internal/power"
	"tango/internal/profiler"
	"tango/internal/report"
	"tango/internal/sched"
	"tango/internal/target"
)

// figureCNNs is the CNN subset the paper's per-layer-type figures use.
func (s *Session) figureCNNs() []string {
	return s.opts.filter([]string{"CifarNet", "AlexNet", "SqueezeNet", "ResNet"})
}

// allNetworks is the full suite, filtered by the options.
func (s *Session) allNetworks() []string {
	return s.opts.filter(suiteNames())
}

// Fig1 reproduces Figure 1: execution-time breakdown per layer type.
func (s *Session) Fig1() (*report.Table, error) {
	nets := s.figureCNNs()
	byNet := make(map[string]map[string]int64, len(nets))
	for _, name := range nets {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		byNet[name] = rs.CyclesByClass()
	}
	var maps []map[string]int64
	for _, name := range nets {
		maps = append(maps, byNet[name])
	}
	classes := presentClasses(maps...)
	t := &report.Table{
		ID:      "fig1",
		Title:   "Execution time breakdown w.r.t. layer type (Figure 1)",
		Columns: append([]string{"Network"}, classes...),
	}
	for _, name := range nets {
		var total int64
		for _, v := range byNet[name] {
			total += v
		}
		row := []interface{}{name}
		for _, c := range classes {
			row = append(row, report.FormatPercent(safeDiv(byNet[name][c], total)))
		}
		t.AddRow(row...)
	}
	t.AddNote("convolution (plus fire modules for SqueezeNet) dominates execution time; see Observation 1")
	return t, nil
}

// Fig2 reproduces Figure 2: normalized execution time under different L1D
// sizes (bypassed, 64KB, 128KB, 256KB), normalized to the bypassed run.
func (s *Session) Fig2() (*report.Table, error) {
	sizes := []struct {
		key   string
		bytes int
		label string
	}{
		{"nol1", 0, "No L1"},
		{"l1", 64 << 10, "L1 (64KB)"},
		{"l1x2", 128 << 10, "2xL1"},
		{"l1x4", 256 << 10, "4xL1"},
	}
	t := &report.Table{
		ID:      "fig2",
		Title:   "Normalized execution time with various L1D sizes (Figure 2)",
		Columns: []string{"Network", "No L1 (cycles)", "No L1", "L1", "2xL1", "4xL1"},
	}
	for _, name := range s.allNetworks() {
		var base int64
		row := []interface{}{name}
		var norms []interface{}
		for _, sz := range sizes {
			rs, err := s.simulate(name, sz.key)
			if err != nil {
				return nil, err
			}
			cycles := rs.TotalCycles()
			if sz.bytes == 0 {
				base = cycles
				row = append(row, cycles)
			}
			norms = append(norms, fmt.Sprintf("%.3f", float64(cycles)/float64(base)))
		}
		row = append(row, norms...)
		t.AddRow(row...)
	}
	t.AddNote("CNNs speed up substantially with an L1D while RNNs are insensitive beyond the default size (Observation 2)")
	return t, nil
}

// powerModel returns the power model for the session's device.
func (s *Session) powerModel() *power.Model {
	return power.NewModel(s.opts.Device)
}

// Fig3 reproduces Figure 3: peak power consumption across layers.
func (s *Session) Fig3() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig3",
		Title:   "Peak power consumption across layers in Watt (Figure 3)",
		Columns: []string{"Network", "Peak power (W)", "Peak layer"},
	}
	m := s.powerModel()
	for _, name := range s.allNetworks() {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		np := m.NetworkPower(rs)
		t.AddRow(name, np.PeakWatts, np.PeakKernel)
	}
	t.AddNote("networks with larger layers draw higher peak power (Observation 3)")
	return t, nil
}

// Fig4 reproduces Figure 4: average power per layer type (share of the
// per-class average power).
func (s *Session) Fig4() (*report.Table, error) {
	nets := s.figureCNNs()
	m := s.powerModel()
	perNet := make(map[string]map[string]float64, len(nets))
	classSet := make(map[string]int64)
	for _, name := range nets {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		np := m.NetworkPower(rs)
		perNet[name] = np.ByClassWatts
		for c := range np.ByClassWatts {
			classSet[c] = 1
		}
	}
	classes := presentClasses(classSet)
	t := &report.Table{
		ID:      "fig4",
		Title:   "Average power consumption per layer type (Figure 4)",
		Columns: append([]string{"Network"}, classes...),
	}
	for _, name := range nets {
		total := 0.0
		for _, w := range perNet[name] {
			total += w
		}
		row := []interface{}{name}
		for _, c := range classes {
			if total > 0 {
				row = append(row, report.FormatPercent(perNet[name][c]/total))
			} else {
				row = append(row, "0%")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("power is distributed across layer types far more evenly than execution time (Observation 4)")
	return t, nil
}

// Fig5 reproduces Figure 5: the per-component power breakdown.
func (s *Session) Fig5() (*report.Table, error) {
	nets := s.allNetworks()
	t := &report.Table{
		ID:      "fig5",
		Title:   "Breakdown of average power consumption (Figure 5)",
		Columns: append([]string{"Component"}, nets...),
	}
	m := s.powerModel()
	byNet := make(map[string]power.NetworkPower, len(nets))
	for _, name := range nets {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		byNet[name] = m.NetworkPower(rs)
	}
	for _, comp := range power.Components() {
		row := []interface{}{comp.String()}
		visible := false
		for _, name := range nets {
			np := byNet[name]
			total := 0.0
			for _, w := range np.ByComponentWatts {
				total += w
			}
			share := 0.0
			if total > 0 {
				share = np.ByComponentWatts[comp] / total
			}
			if share >= 0.0005 {
				visible = true
			}
			row = append(row, report.FormatPercent(share))
		}
		if visible {
			t.AddRow(row...)
		}
	}
	t.AddNote("register file, L2 cache and idle-core power are the key consumers (Section IV-B)")
	return t, nil
}

// Fig6 reproduces Figure 6: energy on the embedded GPU (TX1) versus the
// embedded FPGA (PynQ) for CifarNet and SqueezeNet.  Both platforms run
// through the target registry, deriving from the same shared traces.
func (s *Session) Fig6() (*report.Table, error) {
	nets := s.opts.filter([]string{"CifarNet", "SqueezeNet"})
	t := &report.Table{
		ID:      "fig6",
		Title:   "Energy consumption on embedded GPU (TX1) vs embedded FPGA (PynQ) (Figure 6)",
		Columns: []string{"Network", "Platform", "Peak power (W)", "Exec time (s)", "Energy (J)", "Normalized energy"},
	}
	v := target.DefaultVariant(s.opts.Sampling)
	for _, name := range nets {
		gpu, err := s.runOn(s.tx1, name, v)
		if err != nil {
			return nil, err
		}
		// The paper computes energy as peak power times execution time.
		gpuEnergy := gpu.PeakWatts * gpu.Seconds

		fp, err := s.runOn(s.fpga, name, v)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "TX1", gpu.PeakWatts, gpu.Seconds, gpuEnergy, fmt.Sprintf("%.2f", gpuEnergy/fp.EnergyJoules))
		t.AddRow(name, "PynQ", fp.PeakWatts, fp.Seconds, fp.EnergyJoules, "1.00")
	}
	t.AddNote("TX1 draws higher peak power but finishes faster; its total energy still exceeds the PynQ's (Section IV-B3)")
	return t, nil
}

// Fig7 reproduces Figure 7: the stall-cycle breakdown per layer type and per
// network.
func (s *Session) Fig7() (*report.Table, error) {
	reasons := gpusim.StallReasons()
	cols := []string{"Network", "Layer type"}
	for _, r := range reasons {
		cols = append(cols, r.String())
	}
	t := &report.Table{
		ID:      "fig7",
		Title:   "Breakdown of stall cycles (Figure 7)",
		Columns: cols,
	}
	addRow := func(network, class string, shares profiler.StallShares) {
		row := []interface{}{network, class}
		for _, r := range reasons {
			row = append(row, report.FormatPercent(shares[r]))
		}
		t.AddRow(row...)
	}
	for _, name := range s.allNetworks() {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		byClass := profiler.StallBreakdownByClass(rs)
		classCounts := make(map[string]int64, len(byClass))
		for c := range byClass {
			classCounts[c] = 1
		}
		for _, class := range presentClasses(classCounts) {
			addRow(name, class, byClass[class])
		}
		addRow(name, "Summary", profiler.StallBreakdownTotal(rs))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: the per-network operation-type breakdown.
func (s *Session) Fig8() (*report.Table, error) {
	nets := s.allNetworks()
	shares := make(map[string][]profiler.OpShare, len(nets))
	opSet := map[string]bool{}
	for _, name := range nets {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		shares[name] = profiler.OpBreakdown(rs)
		for _, sh := range shares[name] {
			if sh.Share >= 0.01 {
				opSet[sh.Op] = true
			}
		}
	}
	// Stable op column order: ISA order, only ops above 1% anywhere.
	var ops []string
	for op := isa.Opcode(0); op < isa.NumOpcodes; op++ {
		if opSet[op.String()] {
			ops = append(ops, op.String())
		}
	}
	t := &report.Table{
		ID:      "fig8",
		Title:   "Operation type breakdown (Figure 8)",
		Columns: append(append([]string{"Network"}, ops...), "others"),
	}
	for _, name := range nets {
		byOp := map[string]float64{}
		for _, sh := range shares[name] {
			byOp[sh.Op] = sh.Share
		}
		row := []interface{}{name}
		covered := 0.0
		for _, op := range ops {
			row = append(row, report.FormatPercent(byOp[op]))
			covered += byOp[op]
		}
		row = append(row, report.FormatPercent(1-covered))
		t.AddRow(row...)
	}
	t.AddNote("RNNs and CNNs each show a characteristic mix dominated by add/mad/mul/shl/ld (Observation 6)")
	return t, nil
}

// Fig9 reproduces Figure 9: the top-10 operations across all networks.
func (s *Session) Fig9() (*report.Table, error) {
	var runs []*gpusim.RunStats
	for _, name := range s.allNetworks() {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rs)
	}
	merged := profiler.MergedOpBreakdown(runs)
	t := &report.Table{
		ID:      "fig9",
		Title:   "Total operations breakdown used by all networks (Figure 9)",
		Columns: []string{"Rank", "Operation", "Share"},
	}
	top := 10
	if top > len(merged) {
		top = len(merged)
	}
	covered := 0.0
	for i := 0; i < top; i++ {
		t.AddRow(i+1, merged[i].Op, report.FormatPercent(merged[i].Share))
		covered += merged[i].Share
	}
	t.AddRow("-", "Others", report.FormatPercent(1-covered))
	t.AddNote("top 10 operations cover %.1f%% of all executed instructions (Observation 7)", covered*100)
	return t, nil
}

// Fig10 reproduces Figure 10: the instruction data-type breakdown layer by
// layer for ResNet.
func (s *Session) Fig10() (*report.Table, error) {
	nets := s.opts.filter([]string{"ResNet"})
	t := &report.Table{
		ID:      "fig10",
		Title:   "Instruction data-type breakdown throughout execution (Figure 10, ResNet)",
		Columns: []string{"Layer", "f32", "u32", "u16", "s32", "s16"},
	}
	for _, name := range nets {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		for _, lt := range profiler.TypeTimeline(rs) {
			t.AddRow(lt.Layer,
				report.FormatPercent(lt.Shares["f32"]),
				report.FormatPercent(lt.Shares["u32"]),
				report.FormatPercent(lt.Shares["u16"]),
				report.FormatPercent(lt.Shares["s32"]),
				report.FormatPercent(lt.Shares["s16"]))
		}
		t.AddNote("%s integer-typed instruction share: %.1f%% (Observation 8)", name,
			profiler.IntegerShare(rs)*100)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: the device-memory footprint per network.
func (s *Session) Fig11() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig11",
		Title:   "Memory footprint (Figure 11)",
		Columns: []string{"Network", "Weights (KB)", "Activations (KB)", "Total (KB)"},
	}
	for _, name := range s.allNetworks() {
		tr, err := s.trace(name)
		if err != nil {
			return nil, err
		}
		fp, err := profiler.MemoryFootprint(tr.Net)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, float64(fp.WeightBytes)/1024, float64(fp.ActivationBytes)/1024, fp.KB())
	}
	t.AddNote("RNNs fit in well under 500KB while CNNs need megabytes (Observation 9)")
	return t, nil
}

// Fig12 reproduces Figure 12: per-SM register file usage.
func (s *Session) Fig12() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig12",
		Title:   "Register file usage in KB (Figure 12)",
		Columns: []string{"Network", "Max allocated (KB)", "Max live (KB)"},
	}
	for _, name := range s.allNetworks() {
		rs, err := s.simulateDefault(name)
		if err != nil {
			return nil, err
		}
		reg := profiler.Registers(rs)
		t.AddRow(name, reg.KBAllocated(), reg.KBLive())
	}
	t.AddNote("the 256KB per-SM register file is significantly under-utilized (Observation 10)")
	return t, nil
}

// Fig13 reproduces Figure 13: total L2 misses per layer type with the L1D
// bypassed.
func (s *Session) Fig13() (*report.Table, error) {
	return s.l2ByClassTable("fig13", "Total L2 misses per layer type without L1D (Figure 13)", false)
}

// Fig14 reproduces Figure 14: the L2 miss ratio per layer type with the L1D
// bypassed.
func (s *Session) Fig14() (*report.Table, error) {
	return s.l2ByClassTable("fig14", "L2 miss ratio per layer type without L1D (Figure 14)", true)
}

func (s *Session) l2ByClassTable(id, title string, ratio bool) (*report.Table, error) {
	nets := s.figureCNNs()
	perNet := make(map[string]map[string]int64, len(nets))
	statsPerNet := make(map[string]map[string]float64, len(nets))
	for _, name := range nets {
		rs, err := s.simulate(name, "nol1")
		if err != nil {
			return nil, err
		}
		byClass := rs.L2ByClass()
		counts := make(map[string]int64, len(byClass))
		vals := make(map[string]float64, len(byClass))
		for c, st := range byClass {
			counts[c] = st.Misses + st.MergedMiss
			if ratio {
				vals[c] = st.MissRatio()
			} else {
				vals[c] = float64(st.Misses + st.MergedMiss)
			}
		}
		perNet[name] = counts
		statsPerNet[name] = vals
	}
	var maps []map[string]int64
	for _, name := range nets {
		maps = append(maps, perNet[name])
	}
	classes := presentClasses(maps...)
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"Network"}, classes...),
	}
	for _, name := range nets {
		row := []interface{}{name}
		for _, c := range classes {
			v := statsPerNet[name][c]
			if ratio {
				row = append(row, fmt.Sprintf("%.4f", v))
			} else {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		t.AddRow(row...)
	}
	if ratio {
		t.AddNote("convolution layers have far lower L2 miss ratios than fully-connected layers (Observation 11)")
	} else {
		t.AddNote("convolution and fully-connected layers are the most data-intensive layer types")
	}
	return t, nil
}

// Fig15 reproduces Figure 15: execution time under the GTO, LRR and TLV warp
// schedulers, normalized to GTO.
func (s *Session) Fig15() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig15",
		Title:   "Warp scheduler sensitivity (Figure 15)",
		Columns: []string{"Network", "GTO (cycles)", "GTO", "LRR", "TLV"},
	}
	for _, name := range s.allNetworks() {
		cycles := map[sched.Kind]int64{}
		for _, kind := range sched.Kinds() {
			tag := "sched-" + string(kind)
			if kind == sched.GTO {
				tag = "default"
			}
			rs, err := s.simulate(name, tag)
			if err != nil {
				return nil, err
			}
			cycles[kind] = rs.TotalCycles()
		}
		base := cycles[sched.GTO]
		t.AddRow(name, base,
			fmt.Sprintf("%.3f", 1.0),
			fmt.Sprintf("%.3f", float64(cycles[sched.LRR])/float64(base)),
			fmt.Sprintf("%.3f", float64(cycles[sched.TLV])/float64(base)))
	}
	t.AddNote("the plain round-robin scheduler is competitive with or better than GTO for conv-heavy CNNs (Observation 12)")
	return t, nil
}

// Fig16 reproduces Figure 16: per-layer scheduler sensitivity for AlexNet.
func (s *Session) Fig16() (*report.Table, error) {
	nets := s.opts.filter([]string{"AlexNet"})
	t := &report.Table{
		ID:      "fig16",
		Title:   "Per-layer warp scheduler sensitivity of AlexNet (Figure 16)",
		Columns: []string{"Layer", "GTO (cycles)", "GTO", "LRR", "TLV"},
	}
	for _, name := range nets {
		perSched := map[sched.Kind]*gpusim.RunStats{}
		for _, kind := range sched.Kinds() {
			tag := "sched-" + string(kind)
			if kind == sched.GTO {
				tag = "default"
			}
			rs, err := s.simulate(name, tag)
			if err != nil {
				return nil, err
			}
			perSched[kind] = rs
		}
		gto := perSched[sched.GTO]
		for i := range gto.Kernels {
			base := gto.Kernels[i].Cycles
			lrr := perSched[sched.LRR].Kernels[i].Cycles
			tlv := perSched[sched.TLV].Kernels[i].Cycles
			t.AddRow(gto.Kernels[i].Kernel.LayerName, base,
				fmt.Sprintf("%.3f", 1.0),
				fmt.Sprintf("%.3f", float64(lrr)/float64(base)),
				fmt.Sprintf("%.3f", float64(tlv)/float64(base)))
		}
	}
	return t, nil
}

// safeDiv returns a/b as a float fraction, or 0 when b is zero.
func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
