// Package bench contains one experiment driver per table and figure of the
// paper's evaluation section.  Each driver is a pure projection of the
// characterization pipeline: networks are lowered to layer traces once, every
// accelerator target derives its statistics from those shared traces through
// the target.Store, and the drivers render the same rows or series the paper
// reports as a report.Table from the cached runs.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/networks"
	"tango/internal/report"
	"tango/internal/sched"
	"tango/internal/target"
)

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	// ID is the experiment key, e.g. "table3" or "fig2".
	ID string
	// Title summarizes what the paper's table/figure shows.
	Title string
}

// Experiments lists every reproducible experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Input/output and pre-trained models used by the networks"},
		{"table2", "GPU architectures used for evaluation"},
		{"table3", "Network configuration and SRAM usage (launch geometry per kernel)"},
		{"table4", "FPGA platform used for evaluation"},
		{"fig1", "Execution time breakdown w.r.t. layer type"},
		{"fig2", "Normalized execution time with various L1D sizes"},
		{"fig3", "Peak power consumption across layers (W)"},
		{"fig4", "Average power consumption per layer type"},
		{"fig5", "Breakdown of average power consumption (HW components)"},
		{"fig6", "Energy consumption on embedded GPU (TX1) vs embedded FPGA (PynQ)"},
		{"fig7", "Breakdown of stall cycles"},
		{"fig8", "Operation type breakdown"},
		{"fig9", "Total operations breakdown used by all networks (top 10)"},
		{"fig10", "Instruction data-type breakdown throughout execution (ResNet)"},
		{"fig11", "Memory footprint (KB)"},
		{"fig12", "Register file usage (KB per SM)"},
		{"fig13", "Total L2 misses per layer type without L1D"},
		{"fig14", "L2 miss ratio per layer type without L1D"},
		{"fig15", "Warp scheduler sensitivity"},
		{"fig16", "Per-layer warp scheduler sensitivity of AlexNet"},
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// Options tunes how experiments are run.
type Options struct {
	// Sampling is the simulator sampling level; zero value selects the
	// characterization default.
	Sampling gpusim.Sampling
	// Networks restricts the benchmarks an experiment covers (nil = the
	// experiment's full set).  Useful for quick runs and tests.
	Networks []string
	// Device is the simulated GPU; zero value selects the Pascal GP102
	// configuration the paper uses.
	Device device.GPU
	// Parallelism is the number of worker goroutines RunAll uses to warm the
	// session's network x configuration simulation matrix before rendering.
	// Zero or one keeps execution fully serial.  Rendered tables are
	// identical either way.
	Parallelism int
	// Store is the trace/run store backing the session; nil selects the
	// process-wide shared store, so repeated sessions reuse each other's
	// traces and runs.  Tests use a private store for isolation.
	Store *target.Store
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Sampling == (gpusim.Sampling{}) {
		o.Sampling = gpusim.DefaultSampling()
	}
	if o.Device.Name == "" {
		o.Device = device.PascalGP102()
	}
	return o
}

// filter intersects the experiment's network list with the options filter.
func (o Options) filter(names []string) []string {
	if len(o.Networks) == 0 {
		return names
	}
	allowed := make(map[string]bool, len(o.Networks))
	for _, n := range o.Networks {
		allowed[n] = true
	}
	var out []string
	for _, n := range names {
		if allowed[n] {
			out = append(out, n)
		}
	}
	return out
}

// Session projects experiments from the shared characterization pipeline:
// layer traces are extracted once per network and every (target,
// configuration) run is computed once in the backing store, so a full report
// run — and any later session sharing the store — never repeats work.
type Session struct {
	opts  Options
	store *target.Store

	// gpu is the session's default GPU target (Options.Device); tx1 and
	// fpga are the fixed embedded targets of Figure 6.
	gpu  target.Target
	tx1  target.Target
	fpga target.Target
}

// NewSession creates a session with the given options.
func NewSession(opts Options) *Session {
	opts = opts.withDefaults()
	store := opts.Store
	if store == nil {
		store = target.Shared()
	}
	reg := target.Builtin()
	tx1, err := reg.Lookup("tx1")
	if err != nil {
		panic(err) // builtin registry always has tx1
	}
	fp, err := reg.Lookup("pynq")
	if err != nil {
		panic(err) // builtin registry always has pynq
	}
	return &Session{
		opts:  opts,
		store: store,
		gpu:   target.ForGPU(opts.Device),
		tx1:   tx1,
		fpga:  fp,
	}
}

// Options returns the session's effective options.
func (s *Session) Options() Options { return s.opts }

// Store returns the session's backing trace/run store.
func (s *Session) Store() *target.Store { return s.store }

// variant resolves one of the session's configuration tags to a variant of
// the default GPU target.  experimentTags and matrix use the same tags, so
// prewarming covers exactly the cells the renderers consume
// (TestPrewarmForCoversExperiments guards this).
func (s *Session) variant(tag string) (target.Variant, error) {
	v := target.DefaultVariant(s.opts.Sampling)
	switch tag {
	case "default":
		return v, nil
	case "nol1":
		return v.WithL1(tag, 0), nil
	case "l1":
		return v.WithL1(tag, 64<<10), nil
	case "l1x2":
		return v.WithL1(tag, 128<<10), nil
	case "l1x4":
		return v.WithL1(tag, 256<<10), nil
	case "sched-" + string(sched.LRR):
		return v.WithScheduler(tag, sched.LRR), nil
	case "sched-" + string(sched.TLV):
		return v.WithScheduler(tag, sched.TLV), nil
	default:
		return v, fmt.Errorf("bench: unknown configuration tag %q", tag)
	}
}

// trace returns the network's layer trace from the store.
func (s *Session) trace(network string) (*target.Trace, error) {
	return s.store.Trace(network)
}

// runOn derives the statistics of one network on an explicit target.
func (s *Session) runOn(t target.Target, network string, v target.Variant) (*target.RunStats, error) {
	return s.store.Run(t, network, v)
}

// simulate runs (or returns the cached run of) a network on the session's
// GPU target under the configuration tag.
func (s *Session) simulate(network, tag string) (*gpusim.RunStats, error) {
	v, err := s.variant(tag)
	if err != nil {
		return nil, err
	}
	ts, err := s.runOn(s.gpu, network, v)
	if err != nil {
		return nil, err
	}
	return ts.GPU, nil
}

// simulateDefault runs a network under the session's default configuration.
func (s *Session) simulateDefault(network string) (*gpusim.RunStats, error) {
	return s.simulate(network, "default")
}

// Run executes one experiment by id.
func (s *Session) Run(id string) (*report.Table, error) {
	switch strings.ToLower(id) {
	case "table1":
		return s.Table1()
	case "table2":
		return s.Table2()
	case "table3":
		return s.Table3()
	case "table4":
		return s.Table4()
	case "fig1":
		return s.Fig1()
	case "fig2":
		return s.Fig2()
	case "fig3":
		return s.Fig3()
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "fig13":
		return s.Fig13()
	case "fig14":
		return s.Fig14()
	case "fig15":
		return s.Fig15()
	case "fig16":
		return s.Fig16()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, IDs())
	}
}

// RunAll executes every experiment and returns the tables in paper order.
// With Options.Parallelism > 1 the simulation matrix is computed concurrently
// first; rendering always happens serially from the store, so the returned
// tables are byte-identical to a serial run.
func (s *Session) RunAll() ([]*report.Table, error) {
	if s.opts.Parallelism > 1 {
		// Errors are deliberately ignored here: any cell that failed stays
		// uncached and the serial render below re-encounters it in the same
		// deterministic order a serial run would.
		_ = s.Prewarm(s.opts.Parallelism)
	}
	var out []*report.Table
	for _, e := range Experiments() {
		t, err := s.Run(e.ID)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// suiteNames returns the full benchmark suite in suite order.
func suiteNames() []string { return networks.Names() }

// classOrder is the stacking order the paper's layer-type figures use.
var classOrder = []string{
	networks.ClassConv,
	networks.ClassPooling,
	networks.ClassFC,
	networks.ClassNorm,
	networks.ClassFireSqueeze,
	networks.ClassFireExpand,
	networks.ClassEltwise,
	networks.ClassScale,
	networks.ClassBatchNorm,
	networks.ClassReLU,
	networks.ClassRNN,
	networks.ClassOther,
}

// presentClasses returns the classes (in canonical order) that appear in any
// of the maps.
func presentClasses(maps ...map[string]int64) []string {
	present := map[string]bool{}
	for _, m := range maps {
		for c, v := range m {
			if v != 0 {
				present[c] = true
			}
		}
	}
	var out []string
	for _, c := range classOrder {
		if present[c] {
			out = append(out, c)
		}
	}
	// Any class not in the canonical order goes last, sorted.
	var extra []string
	for c := range present {
		known := false
		for _, k := range classOrder {
			if k == c {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
