package bench_test

import (
	"strings"
	"testing"

	"tango/internal/bench"
	"tango/internal/gpusim"
)

// quickSession restricts experiments to small networks with coarse sampling
// so the whole experiment matrix stays fast enough for unit tests.
func quickSession() *bench.Session {
	return bench.NewSession(bench.Options{
		Sampling: gpusim.FastSampling(),
		Networks: []string{"GRU", "LSTM", "CifarNet"},
	})
}

func TestExperimentsList(t *testing.T) {
	exps := bench.Experiments()
	if len(exps) != 20 {
		t.Fatalf("expected 20 experiments (4 tables + 16 figures), got %d", len(exps))
	}
	ids := bench.IDs()
	if len(ids) != len(exps) {
		t.Fatal("IDs and Experiments disagree")
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "table4", "fig1", "fig16"} {
		if !seen[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := quickSession()
	if _, err := s.Run("fig99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestStaticTables(t *testing.T) {
	s := bench.NewSession(bench.Options{Sampling: gpusim.FastSampling()})
	t1, err := s.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 7 {
		t.Errorf("table1 should list 7 networks, got %d", len(t1.Rows))
	}
	t2, err := s.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 3 {
		t.Errorf("table2 should list 3 GPUs, got %d", len(t2.Rows))
	}
	if !strings.Contains(t2.String(), "2880") {
		t.Error("table2 should report the GK210's 2880 CUDA cores")
	}
	t4, err := s.Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4.String(), "13300") {
		t.Error("table4 should report the PynQ's 13300 logic slices")
	}
}

func TestTable3LaunchGeometry(t *testing.T) {
	s := quickSession()
	tab, err := s.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	// One row per kernel of the three selected networks: GRU(2) + LSTM(2) +
	// CifarNet(9).
	if len(tab.Rows) != 13 {
		t.Errorf("table3 rows = %d, want 13", len(tab.Rows))
	}
	text := tab.String()
	if !strings.Contains(text, "(10,10,1)") || !strings.Contains(text, "(100,1,1)") {
		t.Error("table3 should contain the GRU and LSTM block geometries from Table III")
	}
}

func TestFigureDriversProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix skipped in -short mode")
	}
	s := quickSession()
	// Exclude the experiments pinned to networks outside the quick set
	// (fig10 ResNet, fig16 AlexNet are covered separately).
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15"} {
		tab, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id {
			t.Errorf("%s: table id %q", id, tab.ID)
		}
		if len(tab.Columns) == 0 {
			t.Errorf("%s: no columns", id)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if tab.String() == "" || tab.CSV() == "" {
			t.Errorf("%s: empty rendering", id)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	s := quickSession()
	tab, err := s.Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Three networks, each with a normalized "No L1" value of exactly 1.000.
	if len(tab.Rows) != 3 {
		t.Fatalf("fig2 rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "1.000" {
			t.Errorf("No-L1 column should be the normalization base, got %q", row[2])
		}
	}
}

func TestFig6CoversBothPlatforms(t *testing.T) {
	s := bench.NewSession(bench.Options{
		Sampling: gpusim.FastSampling(),
		Networks: []string{"CifarNet"},
	})
	tab, err := s.Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("fig6 rows = %d, want 2 (TX1 + PynQ)", len(tab.Rows))
	}
	text := tab.String()
	if !strings.Contains(text, "TX1") || !strings.Contains(text, "PynQ") {
		t.Error("fig6 should compare TX1 against PynQ")
	}
}

func TestFig9TopTen(t *testing.T) {
	s := quickSession()
	tab, err := s.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	// Ten ranked ops plus the Others row.
	if len(tab.Rows) != 11 {
		t.Errorf("fig9 rows = %d, want 11", len(tab.Rows))
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "top 10") {
		t.Error("fig9 should note the top-10 coverage")
	}
}

func TestFig15NormalizedToGTO(t *testing.T) {
	s := quickSession()
	tab, err := s.Run("fig15")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "1.000" {
			t.Errorf("GTO column must be 1.000, got %q", row[2])
		}
	}
}

func TestSessionCachingAvoidsRecomputation(t *testing.T) {
	s := quickSession()
	if _, err := s.Run("fig1"); err != nil {
		t.Fatal(err)
	}
	// fig3 uses the same default-config runs; with caching this second call
	// should be nearly instant, and more importantly produce consistent data.
	a, err := s.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("repeated experiment runs should be identical")
	}
}

func TestOptionsFilterRestrictsNetworks(t *testing.T) {
	s := bench.NewSession(bench.Options{
		Sampling: gpusim.FastSampling(),
		Networks: []string{"GRU"},
	})
	tab, err := s.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "GRU" {
		t.Errorf("filter should restrict fig11 to GRU, got %v", tab.Rows)
	}
}

func TestTablesHaveConsistentRowWidths(t *testing.T) {
	s := quickSession()
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig11", "fig12"} {
		tab, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s row %d has %d cells for %d columns", id, i, len(row), len(tab.Columns))
			}
		}
	}
}
