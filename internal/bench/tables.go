package bench

import (
	"fmt"

	"tango/internal/core"
	"tango/internal/device"
	"tango/internal/fpga"
	"tango/internal/report"
)

// Table1 reproduces Table I: input data, pre-trained model provenance and
// output of every benchmark.
func (s *Session) Table1() (*report.Table, error) {
	t := &report.Table{
		ID:      "table1",
		Title:   "Input/Output and Pre-trained Models used by networks (Table I)",
		Columns: []string{"Network", "Input Data", "Pre-trained Model", "Output"},
	}
	keep := map[string]bool{}
	for _, n := range s.opts.filter(suiteNames()) {
		keep[n] = true
	}
	for _, r := range core.ReferenceInputs() {
		if !keep[r.Network] {
			continue
		}
		t.AddRow(r.Network, r.InputData, r.Pretrained, r.Output)
	}
	t.AddNote("pre-trained model files are replaced by deterministic synthetic weights with reference shapes")
	return t, nil
}

// Table2 reproduces Table II: the GPU platforms used for evaluation.
func (s *Session) Table2() (*report.Table, error) {
	t := &report.Table{
		ID:      "table2",
		Title:   "GPU architectures used for evaluation (Table II)",
		Columns: []string{"Role", "Architecture", "CUDA cores", "SMs", "Global memory", "L1D (default)", "L2", "Registers/SM", "Clock MHz", "Host CPU", "OS"},
	}
	for _, role := range []string{"Server", "Mobile", "Simulator"} {
		g := device.GPUs()[role]
		t.AddRow(role, g.Architecture, g.CUDACores, g.SMs,
			formatBytes(g.GlobalMemBytes), formatBytes(int64(g.L1DBytes)), formatBytes(int64(g.L2Bytes)),
			g.RegistersPerSM, g.CoreClockMHz, g.HostCPU, g.OS)
	}
	t.AddNote("simulator runs sweep the L1D over bypassed/64KB/128KB/256KB and the gto/lrr/tlv warp schedulers")
	return t, nil
}

// Table3 reproduces Table III: per-kernel launch geometry and SRAM usage for
// every network in the suite.
func (s *Session) Table3() (*report.Table, error) {
	t := &report.Table{
		ID:      "table3",
		Title:   "Network configuration and SRAM usage (Table III)",
		Columns: []string{"Network", "Layer", "gridDim", "blockDim", "regs", "smem", "cmem"},
	}
	for _, name := range s.opts.filter(suiteNames()) {
		tr, err := s.trace(name)
		if err != nil {
			return nil, err
		}
		for _, k := range tr.Kernels {
			lc := k.Launch
			t.AddRow(name, k.LayerName,
				fmt.Sprintf("(%d,%d,%d)", lc.Grid[0], lc.Grid[1], lc.Grid[2]),
				fmt.Sprintf("(%d,%d,%d)", lc.Block[0], lc.Block[1], lc.Block[2]),
				lc.Regs, lc.SmemBytes, lc.CmemBytes)
		}
	}
	return t, nil
}

// Table4 reproduces Table IV: the FPGA platform.
func (s *Session) Table4() (*report.Table, error) {
	board := fpga.DefaultConfig().Board
	t := &report.Table{
		ID:      "table4",
		Title:   "FPGA platform used for evaluation (Table IV)",
		Columns: []string{"Field", "Value"},
	}
	t.AddRow("Board", board.Name)
	t.AddRow("Processor", fmt.Sprintf("%s @ %d MHz", board.Processor, board.ProcessorClockMHz))
	t.AddRow("Memory", formatBytes(board.MemBytes))
	t.AddRow("Storage", formatBytes(board.StorageBytes))
	t.AddRow("Programmable logic", fmt.Sprintf("Xilinx Zynq Z7020, %d logic slices", board.LogicSlices))
	t.AddRow("BRAM", formatBytes(int64(board.BRAMBytes)))
	t.AddRow("DSP slices", board.DSPSlices)
	t.AddRow("Fabric clock", fmt.Sprintf("%d MHz", board.FabricClockMHz))
	return t, nil
}

// formatBytes renders a byte count with a binary suffix.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%d GB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%d MB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%d KB", b>>10)
	default:
		return fmt.Sprintf("%d B", b)
	}
}
