package bench

import (
	"strings"

	"tango/internal/par"
	"tango/internal/sched"
	"tango/internal/target"
)

// cell names one (target, network, variant) cell of the experiment matrix,
// tagged with the session configuration tag the renderers look it up under.
type cell struct {
	t       target.Target
	network string
	v       target.Variant
	tag     string
}

// gpuTags are the session GPU target's configuration tags: the default
// configuration, the Figure 2 L1 sweep (whose "nol1" runs also feed Figures
// 13 and 14) and the Figure 15/16 scheduler sweep.
var gpuTags = []string{
	"default",
	"nol1", "l1", "l1x2", "l1x4",
	"sched-" + string(sched.LRR), "sched-" + string(sched.TLV),
}

// matrix enumerates every run the session's experiments need: the GPU tags
// over the experiment's network set plus the Figure 6 embedded-platform runs
// (TX1 and PynQ) over its CNN pair.  The experiment drivers hit the store for
// all of these, so warming the matrix up front makes a full report run
// embarrassingly parallel.
func (s *Session) matrix() []cell {
	all := s.allNetworks()
	var cells []cell
	for _, tag := range gpuTags {
		v, err := s.variant(tag)
		if err != nil {
			continue // unreachable: gpuTags and variant are defined together
		}
		for _, n := range all {
			cells = append(cells, cell{t: s.gpu, network: n, v: v, tag: tag})
		}
	}
	// Figure 6: the embedded GPU and FPGA runs.
	v := target.DefaultVariant(s.opts.Sampling)
	for _, n := range s.opts.filter([]string{"CifarNet", "SqueezeNet"}) {
		cells = append(cells, cell{t: s.tx1, network: n, v: v, tag: "tx1"})
		cells = append(cells, cell{t: s.fpga, network: n, v: v, tag: "pynq"})
	}
	return cells
}

// Prewarm computes the session's full target x network x configuration matrix
// on n concurrent workers, populating the run store.  Runs are keyed exactly
// as the serial experiment drivers request them, so subsequent Run/RunAll
// calls render identical tables from store hits.  The first error in matrix
// order is returned; cells that failed stay uncached and will be re-attempted
// (and re-reported deterministically) by the serial render path.
func (s *Session) Prewarm(n int) error {
	return s.prewarmCells(s.matrix(), n)
}

// experimentTags returns the matrix tags the given experiment's renderer
// consumes; nil means it renders without running targets (the GPU tables).
// TestPrewarmForCoversExperiments guards this mapping against drift.
func experimentTags(id string) []string {
	switch strings.ToLower(id) {
	case "fig2":
		return []string{"nol1", "l1", "l1x2", "l1x4"}
	case "fig6":
		return []string{"tx1", "pynq"}
	case "fig13", "fig14":
		return []string{"nol1"}
	case "fig15", "fig16":
		return []string{"default", "sched-" + string(sched.LRR), "sched-" + string(sched.TLV)}
	case "fig1", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig12":
		return []string{"default"}
	default:
		return nil
	}
}

// PrewarmFor warms only the matrix cells the given experiment consumes, on n
// concurrent workers — the single-experiment counterpart of Prewarm, used by
// tango-char so one figure does not simulate the whole report matrix.
// Unknown ids and the run-free tables warm nothing; error semantics match
// Prewarm.
func (s *Session) PrewarmFor(id string, n int) error {
	tags := experimentTags(id)
	if len(tags) == 0 {
		return nil
	}
	want := make(map[string]bool, len(tags))
	for _, t := range tags {
		want[t] = true
	}
	var cells []cell
	for _, c := range s.matrix() {
		if want[c.tag] {
			cells = append(cells, c)
		}
	}
	return s.prewarmCells(cells, n)
}

// prewarmCells computes the given matrix cells on n concurrent workers.
// Trace extraction is shared through the store's singleflight, so concurrent
// cells of one network never lower it twice.
func (s *Session) prewarmCells(cells []cell, n int) error {
	return par.ForEach(n, len(cells), func(i int) error {
		c := cells[i]
		_, err := s.store.Run(c.t, c.network, c.v)
		return err
	})
}
