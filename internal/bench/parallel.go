package bench

import (
	"strings"

	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/par"
	"tango/internal/sched"
)

// simJob names one (network, configuration) cell of the experiment matrix.
type simJob struct {
	network string
	key     string
	cfg     gpusim.Config
}

// matrix enumerates every simulation the session's experiments need: the
// default configuration, the Figure 2 L1 sweep, the Figure 6 TX1 runs and
// the Figure 15/16 scheduler sweep, each over the experiment's network set.
// The experiment drivers hit the session cache for all of these, so warming
// the matrix up front makes a full report run embarrassingly parallel.
func (s *Session) matrix() []simJob {
	base := s.baseConfig()
	all := s.allNetworks()
	var jobs []simJob
	add := func(nets []string, key string, cfg gpusim.Config) {
		for _, n := range nets {
			jobs = append(jobs, simJob{network: n, key: key, cfg: cfg})
		}
	}
	add(all, "default", base)
	// Figure 2: L1 sweep (the "nol1" runs also feed Figures 13 and 14).
	add(all, "nol1", base.WithL1Size(0))
	add(all, "l1", base.WithL1Size(64<<10))
	add(all, "l1x2", base.WithL1Size(128<<10))
	add(all, "l1x4", base.WithL1Size(256<<10))
	// Figure 6: the embedded-GPU runs.
	add(s.opts.filter([]string{"CifarNet", "SqueezeNet"}), "tx1",
		gpusim.ConfigFor(device.TX1()).WithSampling(s.opts.Sampling))
	// Figures 15 and 16: the non-default schedulers.
	add(all, "sched-"+string(sched.LRR), base.WithScheduler(sched.LRR))
	add(all, "sched-"+string(sched.TLV), base.WithScheduler(sched.TLV))
	return jobs
}

// Prewarm simulates the session's full network x configuration matrix on n
// concurrent workers, populating the result cache.  Simulation results are
// keyed and cached exactly as the serial experiment drivers would compute
// them, so subsequent Run/RunAll calls render identical tables from cache
// hits.  The first error in matrix order is returned; cells that failed stay
// uncached and will be re-attempted (and re-reported deterministically) by
// the serial render path.
func (s *Session) Prewarm(n int) error {
	return s.prewarmJobs(s.matrix(), n)
}

// experimentKeys returns the simulation-cache keys the given experiment's
// renderer consumes; nil means it renders without simulating (the tables).
// TestPrewarmForCoversExperiments guards this mapping against drift.
func experimentKeys(id string) []string {
	switch strings.ToLower(id) {
	case "fig2":
		return []string{"nol1", "l1", "l1x2", "l1x4"}
	case "fig6":
		return []string{"tx1"}
	case "fig13", "fig14":
		return []string{"nol1"}
	case "fig15", "fig16":
		return []string{"default", "sched-" + string(sched.LRR), "sched-" + string(sched.TLV)}
	case "fig1", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12":
		return []string{"default"}
	default:
		return nil
	}
}

// PrewarmFor warms only the matrix cells the given experiment consumes, on n
// concurrent workers — the single-experiment counterpart of Prewarm, used by
// tango-char so one figure does not simulate the whole report matrix.
// Unknown ids and the simulation-free tables warm nothing; error semantics
// match Prewarm.
func (s *Session) PrewarmFor(id string, n int) error {
	keys := experimentKeys(id)
	if len(keys) == 0 {
		return nil
	}
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	var jobs []simJob
	for _, j := range s.matrix() {
		if want[j.key] {
			jobs = append(jobs, j)
		}
	}
	return s.prewarmJobs(jobs, n)
}

// prewarmJobs simulates the given matrix cells on n concurrent workers.
func (s *Session) prewarmJobs(jobs []simJob, n int) error {
	// Load the benchmarks up front: the suite cache is shared state, and
	// loading each network once on one goroutine keeps the workers purely
	// compute-bound.
	loaded := map[string]bool{}
	for _, j := range jobs {
		if loaded[j.network] {
			continue
		}
		if _, err := s.suite.Benchmark(j.network); err != nil {
			return err
		}
		loaded[j.network] = true
	}

	return par.ForEach(n, len(jobs), func(i int) error {
		j := jobs[i]
		_, err := s.simulate(j.network, j.key, j.cfg)
		return err
	})
}
