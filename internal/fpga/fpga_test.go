package fpga_test

import (
	"testing"

	"tango/internal/fpga"
	"tango/internal/networks"
)

func estimate(t *testing.T, name string) *fpga.Result {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fpga.New(fpga.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.EstimateNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	if err := fpga.DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := fpga.DefaultConfig()
	bad.DSPEfficiency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero efficiency should fail")
	}
	bad = fpga.DefaultConfig()
	bad.DSPEfficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("efficiency > 1 should fail")
	}
	bad = fpga.DefaultConfig()
	bad.DDRBandwidthMBs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
	bad = fpga.DefaultConfig()
	bad.Board.BRAMBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid board should fail")
	}
	if _, err := fpga.New(bad); err == nil {
		t.Error("New should reject invalid configs")
	}
}

func TestEstimateRequiresBuiltNetwork(t *testing.T) {
	m, err := fpga.New(fpga.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstimateNetwork(nil); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := m.EstimateNetwork(&networks.Network{Name: "x"}); err == nil {
		t.Error("unbuilt network should fail")
	}
}

func TestEstimateCifarNet(t *testing.T) {
	res := estimate(t, "CifarNet")
	if res.Seconds <= 0 {
		t.Error("execution time must be positive")
	}
	if res.PeakWatts <= fpga.DefaultConfig().Board.IdleWatts {
		t.Error("peak power should exceed idle power")
	}
	if res.PeakWatts > fpga.DefaultConfig().Board.PeakWatts {
		t.Errorf("peak power %v exceeds the board envelope", res.PeakWatts)
	}
	if res.AvgWatts > res.PeakWatts {
		t.Error("average power cannot exceed peak power")
	}
	if res.EnergyJoules <= 0 {
		t.Error("energy must be positive")
	}
	if len(res.Layers) != 9 {
		t.Errorf("CifarNet has 9 layers, estimate covered %d", len(res.Layers))
	}
	for _, l := range res.Layers {
		if l.Seconds <= 0 || l.Ops <= 0 || l.Partitions < 1 {
			t.Errorf("layer %s has implausible cost %+v", l.Layer, l)
		}
	}
}

func TestLargeLayersArePartitioned(t *testing.T) {
	// SqueezeNet's large early layers exceed the PynQ's 630KB BRAM, so the
	// model must split them into multiple sub-kernels, as the paper reports.
	res := estimate(t, "SqueezeNet")
	if res.TotalPartitions <= len(res.Layers) {
		t.Errorf("expected some multi-partition layers: %d partitions for %d layers",
			res.TotalPartitions, len(res.Layers))
	}
	conv1Partitions := 0
	for _, l := range res.Layers {
		if l.Layer == "conv1" {
			conv1Partitions = l.Partitions
		}
	}
	if conv1Partitions < 2 {
		t.Errorf("SqueezeNet conv1 working set should not fit in BRAM (partitions=%d)", conv1Partitions)
	}
}

func TestRNNFitsWithoutPartitioning(t *testing.T) {
	// GRU and LSTM fit on the PynQ without partitioning (Observation 9).
	for _, name := range []string{"GRU", "LSTM"} {
		res := estimate(t, name)
		for _, l := range res.Layers {
			if l.Partitions != 1 {
				t.Errorf("%s layer %s should fit in BRAM, got %d partitions", name, l.Layer, l.Partitions)
			}
		}
	}
}

func TestBiggerNetworkTakesLonger(t *testing.T) {
	cifar := estimate(t, "CifarNet")
	squeeze := estimate(t, "SqueezeNet")
	if squeeze.Seconds <= cifar.Seconds {
		t.Errorf("SqueezeNet (%.4fs) should take longer than CifarNet (%.4fs)", squeeze.Seconds, cifar.Seconds)
	}
	if squeeze.EnergyJoules <= cifar.EnergyJoules {
		t.Error("SqueezeNet should use more energy than CifarNet")
	}
}

func TestLowPowerEnvelope(t *testing.T) {
	// The PynQ's whole envelope is single-digit watts, far below any GPU.
	for _, name := range []string{"CifarNet", "SqueezeNet"} {
		res := estimate(t, name)
		if res.PeakWatts > 6 {
			t.Errorf("%s peak power %v W exceeds the PynQ envelope", name, res.PeakWatts)
		}
		if res.PeakWatts < 1 {
			t.Errorf("%s peak power %v W is implausibly low", name, res.PeakWatts)
		}
	}
}
