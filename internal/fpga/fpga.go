// Package fpga models the execution of the benchmark networks on the Xilinx
// PynQ-Z1 board (Table IV) the paper evaluates its OpenCL kernels on.
//
// The model follows the structure of a Vivado HLS dataflow implementation:
// each layer is mapped to a multiply-accumulate pipeline built from the
// fabric's DSP slices running at the programmable-logic clock.  The board's
// 630KB of block RAM cannot hold the working set of most CNN layers, so
// layers are partitioned into sub-kernels that are loaded and executed over
// multiple iterations (the paper notes the same limitation); every partition
// pays a reload penalty over the board's DDR interface plus a fixed
// reconfiguration/code-load overhead.  Power is a small static draw plus a
// dynamic component proportional to DSP utilization, giving the low peak
// power but longer execution times the paper measures relative to the TX1.
package fpga

import (
	"fmt"

	"tango/internal/device"
	"tango/internal/networks"
)

// Config tunes the HLS dataflow model.
type Config struct {
	// Board is the FPGA platform.
	Board device.FPGA
	// DSPEfficiency is the fraction of DSP slices doing useful MACs per cycle.
	DSPEfficiency float64
	// DDRBandwidthMBs is the effective DDR bandwidth for streaming weights
	// and activations.
	DDRBandwidthMBs float64
	// PartitionOverheadSeconds is the fixed cost of loading one sub-kernel
	// (bitstream region / code load, the "slower code loading time" the paper
	// reports).
	PartitionOverheadSeconds float64
	// DynamicWattsPerDSP is the dynamic power of one active DSP slice.
	DynamicWattsPerDSP float64
}

// DefaultConfig returns the PynQ-Z1 model used in the experiments.
func DefaultConfig() Config {
	return Config{
		Board:                    device.PynQZ1(),
		DSPEfficiency:            0.85,
		DDRBandwidthMBs:          600,
		PartitionOverheadSeconds: 150e-6,
		DynamicWattsPerDSP:       0.013,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Board.Validate(); err != nil {
		return err
	}
	if c.DSPEfficiency <= 0 || c.DSPEfficiency > 1 {
		return fmt.Errorf("fpga: DSP efficiency must be in (0, 1], got %v", c.DSPEfficiency)
	}
	if c.DDRBandwidthMBs <= 0 || c.PartitionOverheadSeconds < 0 || c.DynamicWattsPerDSP <= 0 {
		return fmt.Errorf("fpga: bandwidth, overhead and per-DSP power must be positive")
	}
	return nil
}

// LayerCost is the estimated cost of one layer on the FPGA.
type LayerCost struct {
	// Layer is the source layer name.
	Layer string
	// Class is the reporting class.
	Class string
	// Ops is the number of multiply-accumulate-equivalent operations.
	Ops int64
	// WorkingSetBytes is weights + input + output of the layer.
	WorkingSetBytes int64
	// Partitions is the number of sub-kernels the layer is split into to fit
	// the board's BRAM.
	Partitions int
	// Seconds is the estimated execution time including reload overheads.
	Seconds float64
}

// Result is the estimated execution of a whole network on the FPGA.
type Result struct {
	// Network is the benchmark name.
	Network string
	// Layers holds per-layer costs in layer order.
	Layers []LayerCost
	// Seconds is the total execution time.
	Seconds float64
	// PeakWatts is the peak board power.
	PeakWatts float64
	// AvgWatts is the average board power.
	AvgWatts float64
	// EnergyJoules is PeakWatts x Seconds, matching the paper's
	// peak-power-times-time energy methodology for Figure 6.
	EnergyJoules float64
	// TotalPartitions counts sub-kernel launches.
	TotalPartitions int
}

// Model estimates network execution on the FPGA.
type Model struct {
	cfg Config
}

// New constructs a model, validating the configuration.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// layerOps estimates multiply-accumulate-equivalent operations of a layer.
func layerOps(n *networks.Network, li int) int64 {
	l := &n.Layers[li]
	inShape := n.InputShape
	if l.Inputs[0] != networks.InputRef {
		inShape = n.Layers[l.Inputs[0]].OutShape
	}
	outElems := int64(1)
	for _, d := range l.OutShape {
		outElems *= int64(d)
	}
	switch l.Type {
	case networks.LayerConv:
		return l.Conv.MACs(inShape[1], inShape[2])
	case networks.LayerFC:
		inElems := int64(1)
		for _, d := range inShape {
			inElems *= int64(d)
		}
		return inElems * int64(l.FCOut)
	case networks.LayerPool:
		return outElems * int64(l.Pool.KernelH*l.Pool.KernelW)
	case networks.LayerLRN:
		return outElems * int64(l.LRN.LocalSize*2)
	case networks.LayerGlobalPool:
		inElems := int64(1)
		for _, d := range inShape {
			inElems *= int64(d)
		}
		return inElems
	case networks.LayerLSTM:
		h, in := int64(l.Hidden), int64(l.InSize)
		return 4 * (h*in + h*h) * int64(maxInt(n.SeqLen, 1))
	case networks.LayerGRU:
		h, in := int64(l.Hidden), int64(l.InSize)
		return 3 * (h*in + h*h) * int64(maxInt(n.SeqLen, 1))
	default:
		// Element-wise layers: one op per output element.
		return outElems
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// layerWorkingSet returns weights + input + output bytes of a layer.
func layerWorkingSet(n *networks.Network, li int, weightBytes map[string]int64) int64 {
	l := &n.Layers[li]
	inElems := int64(0)
	for idx := range l.Inputs {
		shape := n.InputShape
		if l.Inputs[idx] != networks.InputRef {
			shape = n.Layers[l.Inputs[idx]].OutShape
		}
		e := int64(1)
		for _, d := range shape {
			e *= int64(d)
		}
		inElems += e
	}
	outElems := int64(1)
	for _, d := range l.OutShape {
		outElems *= int64(d)
	}
	return inElems*4 + outElems*4 + weightBytes[l.Name]
}

// EstimateNetwork estimates the execution of a built network on the FPGA.
func (m *Model) EstimateNetwork(n *networks.Network) (*Result, error) {
	if n == nil || !n.Built() {
		return nil, fmt.Errorf("fpga: network must be built")
	}
	specs, err := n.WeightSpecs()
	if err != nil {
		return nil, err
	}
	weightBytes := make(map[string]int64)
	for _, s := range specs {
		weightBytes[s.Layer] += int64(s.Count) * 4
	}

	cfg := m.cfg
	macsPerSecond := float64(cfg.Board.DSPSlices) * cfg.DSPEfficiency * float64(cfg.Board.FabricClockMHz) * 1e6
	ddrBytesPerSecond := cfg.DDRBandwidthMBs * 1e6
	res := &Result{Network: n.Name}

	maxDSPUtil := 0.0
	for li := range n.Layers {
		l := &n.Layers[li]
		ops := layerOps(n, li)
		ws := layerWorkingSet(n, li, weightBytes)
		partitions := 1
		if ws > int64(cfg.Board.BRAMBytes) {
			partitions = int(ws/int64(cfg.Board.BRAMBytes)) + 1
		}
		compute := float64(ops) / macsPerSecond
		transfer := float64(ws) / ddrBytesPerSecond
		overhead := float64(partitions) * cfg.PartitionOverheadSeconds
		seconds := compute + transfer + overhead

		// DSP utilization of the layer: MAC-heavy layers use the whole array.
		util := 1.0
		if ops < int64(cfg.Board.DSPSlices) {
			util = float64(ops) / float64(cfg.Board.DSPSlices)
		}
		if util > maxDSPUtil {
			maxDSPUtil = util
		}

		res.Layers = append(res.Layers, LayerCost{
			Layer:           l.Name,
			Class:           l.EffectiveClass(),
			Ops:             ops,
			WorkingSetBytes: ws,
			Partitions:      partitions,
			Seconds:         seconds,
		})
		res.Seconds += seconds
		res.TotalPartitions += partitions
	}

	dynamic := maxDSPUtil * float64(cfg.Board.DSPSlices) * cfg.DynamicWattsPerDSP
	res.PeakWatts = cfg.Board.IdleWatts + dynamic
	if res.PeakWatts > cfg.Board.PeakWatts {
		res.PeakWatts = cfg.Board.PeakWatts
	}
	res.AvgWatts = cfg.Board.IdleWatts + 0.6*dynamic
	// The paper computes energy as peak power times total execution time
	// (a Wattsup meter cannot integrate energy directly).
	res.EnergyJoules = res.PeakWatts * res.Seconds
	return res, nil
}
