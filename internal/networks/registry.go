package networks

import (
	"fmt"
	"sort"
)

// Constructor builds one of the suite's networks.
type Constructor func() (*Network, error)

// registry maps canonical benchmark names to constructors.  The seven entries
// are the networks the paper's benchmark suite ships.
var registry = map[string]Constructor{
	"CifarNet":   NewCifarNet,
	"AlexNet":    NewAlexNet,
	"SqueezeNet": NewSqueezeNet,
	"ResNet":     NewResNet50,
	"VGGNet":     NewVGGNet,
	"GRU":        NewGRU,
	"LSTM":       NewLSTM,
	// Extension benchmarks beyond the paper's seven-network suite.
	"MobileNet": NewMobileNet,
}

// Names returns the benchmark names in the order the paper lists them:
// the two RNNs first in Table III, but the canonical suite ordering used in
// the figures is CNNs by size followed by RNNs.
func Names() []string {
	return []string{"GRU", "LSTM", "CifarNet", "AlexNet", "SqueezeNet", "ResNet", "VGGNet"}
}

// CNNNames returns only the convolutional benchmarks, in figure order.
func CNNNames() []string {
	return []string{"CifarNet", "AlexNet", "SqueezeNet", "ResNet", "VGGNet"}
}

// RNNNames returns only the recurrent benchmarks.
func RNNNames() []string {
	return []string{"GRU", "LSTM"}
}

// ExtensionNames returns benchmarks provided beyond the paper's suite (the
// paper lists MobileNet as the next network under development).  They are
// loadable by name but excluded from the figure-reproduction set.
func ExtensionNames() []string {
	return []string{"MobileNet"}
}

// New constructs a network by name.
func New(name string) (*Network, error) {
	c, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("networks: unknown benchmark %q (known: %v)", name, known)
	}
	return c()
}

// All constructs every network in the suite, in Names() order.
func All() ([]*Network, error) {
	nets := make([]*Network, 0, len(registry))
	for _, name := range Names() {
		n, err := New(name)
		if err != nil {
			return nil, err
		}
		nets = append(nets, n)
	}
	return nets, nil
}
