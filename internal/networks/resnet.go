package networks

import (
	"fmt"

	"tango/internal/nn"
)

// NewResNet50 returns the ResNet-50 workload: a 7x7 stem convolution followed
// by 16 bottleneck residual blocks (3+4+6+3) with batch-norm/scale/ReLU
// sub-layers and element-wise shortcut additions, then global average pooling
// and a single fully-connected classifier over 1000 ImageNet classes, as in
// the Caffe reference model the paper uses.
func NewResNet50() (*Network, error) {
	n := &Network{
		Name:       "ResNet",
		Kind:       KindCNN,
		InputShape: []int{3, 224, 224},
		NumClasses: 1000,
	}
	idx := func() int { return len(n.Layers) - 1 }
	prev := InputRef

	addSeq := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = idx()
		return prev
	}
	// convBNScale appends conv -> batchnorm -> scale reading from `from` and
	// returns the index of the scale layer.  ReLU is appended separately so
	// that the per-layer-type statistics include Relu entries as Table III
	// does for ResNet.
	convBNScale := func(name string, from int, p nn.ConvParams) int {
		n.Layers = append(n.Layers, Layer{Name: name, Type: LayerConv, Inputs: []int{from}, Conv: p})
		conv := idx()
		n.Layers = append(n.Layers, Layer{Name: "bn_" + name, Type: LayerBatchNorm, Inputs: []int{conv}})
		bn := idx()
		n.Layers = append(n.Layers, Layer{Name: "scale_" + name, Type: LayerScale, Inputs: []int{bn}})
		return idx()
	}
	relu := func(name string, from int) int {
		n.Layers = append(n.Layers, Layer{Name: name, Type: LayerReLU, Inputs: []int{from}})
		return idx()
	}

	// Stem: conv1 64 filters 7x7 stride 2 pad 3 -> 64x112x112.
	stem := convBNScale("conv1", InputRef, nn.ConvParams{
		InChannels: 3, OutChannels: 64, KernelH: 7, KernelW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3,
	})
	prev = relu("conv1_relu", stem)
	// pool1: max 3x3 stride 2 (ceil) -> 64x56x56.
	addSeq(Layer{Name: "pool1", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true,
	}})

	// bottleneck appends one residual block.  mid is the 1x1/3x3 width, out
	// the block output width; stride applies to the first 1x1 convolution of
	// blocks that downsample; project selects a convolutional shortcut.
	inCh := 64
	bottleneck := func(name string, mid, out, stride int, project bool) error {
		if inCh <= 0 {
			return fmt.Errorf("networks: resnet block %s has no input channels", name)
		}
		blockIn := prev

		shortcut := blockIn
		if project {
			shortcut = convBNScale(name+"_branch1", blockIn, nn.ConvParams{
				InChannels: inCh, OutChannels: out, KernelH: 1, KernelW: 1, StrideH: stride, StrideW: stride,
			})
		}

		a := convBNScale(name+"_branch2a", blockIn, nn.ConvParams{
			InChannels: inCh, OutChannels: mid, KernelH: 1, KernelW: 1, StrideH: stride, StrideW: stride,
		})
		a = relu(name+"_branch2a_relu", a)
		b := convBNScale(name+"_branch2b", a, nn.ConvParams{
			InChannels: mid, OutChannels: mid, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		})
		b = relu(name+"_branch2b_relu", b)
		c := convBNScale(name+"_branch2c", b, nn.ConvParams{
			InChannels: mid, OutChannels: out, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		})

		n.Layers = append(n.Layers, Layer{Name: name, Type: LayerEltwise, Inputs: []int{c, shortcut}})
		sum := idx()
		prev = relu(name+"_relu", sum)
		inCh = out
		return nil
	}

	type stage struct {
		prefix string
		blocks int
		mid    int
		out    int
		stride int
	}
	stages := []stage{
		{"res2", 3, 64, 256, 1},
		{"res3", 4, 128, 512, 2},
		{"res4", 6, 256, 1024, 2},
		{"res5", 3, 512, 2048, 2},
	}
	for _, st := range stages {
		for b := 0; b < st.blocks; b++ {
			name := fmt.Sprintf("%s%c", st.prefix, 'a'+b)
			stride := 1
			project := false
			if b == 0 {
				stride = st.stride
				project = true
			}
			if err := bottleneck(name, st.mid, st.out, stride, project); err != nil {
				return nil, err
			}
		}
	}

	// Head: global average pooling over the 7x7 maps, then the single
	// fully-connected classifier.
	addSeq(Layer{Name: "pool5", Type: LayerGlobalPool})
	addSeq(Layer{Name: "fc1000", Type: LayerFC, FCOut: 1000})
	addSeq(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
