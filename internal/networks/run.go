package networks

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tango/internal/nn"
	"tango/internal/tensor"
)

// Result carries the outputs of one native inference run.
//
// When the run used a non-nil nn.Scratch, Output and LayerOutputs alias the
// scratch arena: they are valid until the next run on the same Scratch.
// Runs without a Scratch return freshly allocated tensors.
type Result struct {
	// Output is the final layer's output tensor.
	Output *tensor.Tensor
	// PredictedClass is the arg-max of the final output (CNN classifiers);
	// -1 for regression outputs.
	PredictedClass int
	// LayerOutputs holds every layer's output tensor, indexed like
	// Network.Layers.
	LayerOutputs []*tensor.Tensor
}

// planLayer holds one layer of a Plan with its parameter tensors resolved.
type planLayer struct {
	l              *Layer
	w, b           *tensor.Tensor // conv / fc
	mean, variance *tensor.Tensor // batchnorm
	gamma, beta    *tensor.Tensor // scale
	lstm           *nn.LSTMWeights
	gru            *nn.GRUWeights
}

// Plan is a network bound to a resolved weight set: every parameter tensor
// is looked up and validated once, so repeated runs skip the per-layer
// weight resolution entirely.  A Plan is safe for concurrent use; per-run
// mutable state lives in the nn.Scratch passed to Run/RunSequence, and the
// lazily built fast-tier weight panels are guarded by a sync.Once per mode.
type Plan struct {
	net    *Network
	layers []planLayer

	fastOnce  sync.Once
	int8Once  sync.Once
	fastPacks atomic.Pointer[planPacks]
	int8Packs atomic.Pointer[planPacks]
}

// planPacks holds one numerics mode's prepacked weight panels, indexed like
// Plan.layers (nil entries for layers without packable weights).
type planPacks struct {
	conv []*nn.ConvPack
	fc   []*nn.FCPack
	rnn  []*nn.RNNPack
}

func (pp *planPacks) convAt(li int) *nn.ConvPack {
	if pp == nil {
		return nil
	}
	return pp.conv[li]
}

func (pp *planPacks) fcAt(li int) *nn.FCPack {
	if pp == nil {
		return nil
	}
	return pp.fc[li]
}

func (pp *planPacks) rnnAt(li int) *nn.RNNPack {
	if pp == nil {
		return nil
	}
	return pp.rnn[li]
}

// Pack builds the fast-numerics weight panels for mode, once per Plan:
// subsequent calls (and every run under that mode) reuse them with no
// further packing or allocation.  NumericsReference needs no packing.  Runs
// pack lazily on first use, so calling Pack up front only moves the one-time
// cost out of the first inference.
func (p *Plan) Pack(mode nn.Numerics) {
	switch mode {
	case nn.NumericsFast:
		p.fastOnce.Do(func() { p.fastPacks.Store(p.buildPacks(mode)) })
	case nn.NumericsInt8:
		p.int8Once.Do(func() { p.int8Packs.Store(p.buildPacks(mode)) })
	}
}

// packsFor returns the weight panels for mode, building them on first use.
func (p *Plan) packsFor(mode nn.Numerics) *planPacks {
	p.Pack(mode)
	switch mode {
	case nn.NumericsFast:
		return p.fastPacks.Load()
	case nn.NumericsInt8:
		return p.int8Packs.Load()
	}
	return nil
}

func (p *Plan) buildPacks(mode nn.Numerics) *planPacks {
	pp := &planPacks{
		conv: make([]*nn.ConvPack, len(p.layers)),
		fc:   make([]*nn.FCPack, len(p.layers)),
		rnn:  make([]*nn.RNNPack, len(p.layers)),
	}
	for li := range p.layers {
		pl := &p.layers[li]
		switch pl.l.Type {
		case LayerConv:
			pp.conv[li] = nn.PackConv(pl.w, pl.l.Conv, mode)
		case LayerFC:
			pp.fc[li] = nn.PackFC(pl.w, pl.l.FCOut, pl.w.Len()/pl.l.FCOut, mode)
		case LayerLSTM:
			pp.rnn[li] = nn.PackLSTM(pl.lstm, mode)
		case LayerGRU:
			pp.rnn[li] = nn.PackGRU(pl.gru, mode)
		}
	}
	return pp
}

// NewPlan resolves every layer's parameters from w and returns a reusable
// execution plan.  Build must have been called on the network.
func (n *Network) NewPlan(w Weights) (*Plan, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: NewPlan before Build", n.Name)
	}
	p := &Plan{net: n, layers: make([]planLayer, len(n.Layers))}
	for li := range n.Layers {
		l := &n.Layers[li]
		pl := planLayer{l: l}
		var err error
		switch l.Type {
		case LayerConv:
			if pl.w, err = w.Get(l.Name, "weights", l.Conv.WeightCount()); err == nil {
				pl.b, err = w.Get(l.Name, "bias", l.Conv.OutChannels)
			}
		case LayerFC:
			in, ierr := n.inputShapeOf(li, 0)
			if ierr != nil {
				return nil, ierr
			}
			if pl.w, err = w.Get(l.Name, "weights", l.FCOut*elems(in)); err == nil {
				pl.b, err = w.Get(l.Name, "bias", l.FCOut)
			}
		case LayerBatchNorm:
			c := l.OutShape[0]
			if pl.mean, err = w.Get(l.Name, "mean", c); err == nil {
				pl.variance, err = w.Get(l.Name, "variance", c)
			}
		case LayerScale:
			c := l.OutShape[0]
			if pl.gamma, err = w.Get(l.Name, "gamma", c); err == nil {
				pl.beta, err = w.Get(l.Name, "beta", c)
			}
		case LayerLSTM:
			if pl.lstm, err = loadLSTMWeights(l, w); err == nil {
				err = pl.lstm.Validate()
			}
		case LayerGRU:
			if pl.gru, err = loadGRUWeights(l, w); err == nil {
				err = pl.gru.Validate()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
		}
		p.layers[li] = pl
	}
	return p, nil
}

// Network returns the plan's network.
func (p *Plan) Network() *Network { return p.net }

// PackedBytes returns the storage held by the fast-tier weight panels built
// so far (zero until a fast or int8 run packs them).  The raw weight
// tensors the packs alias are accounted by the weight set, not here.
func (p *Plan) PackedBytes() int64 {
	var n int64
	for _, pp := range []*planPacks{p.fastPacks.Load(), p.int8Packs.Load()} {
		if pp == nil {
			continue
		}
		for li := range p.layers {
			n += pp.conv[li].Bytes() + pp.fc[li].Bytes() + pp.rnn[li].Bytes()
		}
	}
	return n
}

// Run executes a CNN natively on the given CHW input and returns the
// per-layer outputs.  A non-nil Scratch supplies the compute engine's
// reusable buffers, worker count and numerics tier; nil runs serially with
// fresh allocations.  Under the default reference tier results are
// bit-identical for any Scratch configuration; a fast tier
// (nn.Scratch.SetNumerics) runs the prepacked fast kernels under the
// tolerance contract described in the nn package.
func (p *Plan) Run(input *tensor.Tensor, s *nn.Scratch) (*Result, error) {
	n := p.net
	if n.Kind != KindCNN {
		return nil, fmt.Errorf("networks: %s is an RNN; use RunSequence", n.Name)
	}
	if input == nil || !equalShape(input.Shape(), n.InputShape) {
		got := []int(nil)
		if input != nil {
			got = input.Shape()
		}
		return nil, fmt.Errorf("networks: %s expects input shape %v, got %v", n.Name, n.InputShape, got)
	}
	s.BeginRun()
	pks := p.packsFor(s.Numerics())
	outs := s.LayerOutputs(len(n.Layers))
	for li := range p.layers {
		pl := &p.layers[li]
		out, err := p.runLayer(s, li, pl, input, outs, pks)
		if err != nil {
			return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, pl.l.Name, err)
		}
		if pl.l.FusedReLU {
			nn.ReLUInPlace(out)
		}
		outs[li] = out
	}
	final := outs[len(outs)-1]
	return &Result{Output: final, PredictedClass: final.MaxIndex(), LayerOutputs: outs}, nil
}

// resolveInput returns the tensor feeding input slot idx of layer li.
func (p *Plan) resolveInput(li, idx int, input *tensor.Tensor, outs []*tensor.Tensor) *tensor.Tensor {
	ref := p.net.Layers[li].Inputs[idx]
	if ref == InputRef {
		return input
	}
	return outs[ref]
}

// runLayer executes a single non-recurrent layer on the engine.
func (p *Plan) runLayer(s *nn.Scratch, li int, pl *planLayer, input *tensor.Tensor, outs []*tensor.Tensor, pks *planPacks) (*tensor.Tensor, error) {
	l := pl.l
	in0 := p.resolveInput(li, 0, input, outs)
	switch l.Type {
	case LayerConv:
		return s.Conv2DPacked(in0, pl.w, pl.b, l.Conv, pks.convAt(li))
	case LayerPool:
		return s.Pool2D(in0, l.Pool)
	case LayerFC:
		return s.FullyConnectedPacked(in0, pl.w, pl.b, l.FCOut, pks.fcAt(li))
	case LayerLRN:
		return s.LRN(in0, l.LRN)
	case LayerBatchNorm:
		return s.BatchNorm(in0, nn.BatchNormParams{Mean: pl.mean, Variance: pl.variance})
	case LayerScale:
		return s.Scale(in0, pl.gamma, pl.beta)
	case LayerReLU:
		return s.ReLU(in0)
	case LayerEltwise:
		return s.EltwiseAdd(in0, p.resolveInput(li, 1, input, outs))
	case LayerConcat:
		if len(l.Inputs) == 2 {
			return s.ConcatChannels(p.resolveInput(li, 0, input, outs), p.resolveInput(li, 1, input, outs))
		}
		parts := make([]*tensor.Tensor, len(l.Inputs))
		for i := range l.Inputs {
			parts[i] = p.resolveInput(li, i, input, outs)
		}
		return s.ConcatChannels(parts...)
	case LayerSoftmax:
		return s.Softmax(in0)
	case LayerGlobalPool:
		return s.GlobalAvgPool(in0)
	default:
		return nil, fmt.Errorf("unsupported layer type %v in CNN graph", l.Type)
	}
}

// RunSequence executes an RNN natively over a sequence of input vectors
// (each of length InputShape[0]) and returns the final output.  The networks
// in the suite end with a fully-connected regression head that projects the
// final hidden state to the predicted value.  Scratch semantics match Run.
func (p *Plan) RunSequence(seq []*tensor.Tensor, s *nn.Scratch) (*Result, error) {
	n := p.net
	if n.Kind != KindRNN {
		return nil, fmt.Errorf("networks: %s is a CNN; use Run", n.Name)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("networks: %s: empty input sequence", n.Name)
	}
	inSize := n.InputShape[0]
	for i, x := range seq {
		if x == nil || x.Len() != inSize {
			return nil, fmt.Errorf("networks: %s: sequence element %d must have %d features", n.Name, i, inSize)
		}
	}

	s.BeginRun()
	pks := p.packsFor(s.Numerics())
	outs := s.LayerOutputs(len(n.Layers))
	var current *tensor.Tensor
	for li := range p.layers {
		pl := &p.layers[li]
		l := pl.l
		switch l.Type {
		case LayerLSTM:
			st := nn.LSTMState{H: zeroed1(s, l.Hidden), C: zeroed1(s, l.Hidden)}
			for _, x := range seq {
				if err := s.LSTMStep(pl.lstm, st, x); err != nil {
					return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
				}
			}
			current = st.H
		case LayerGRU:
			h := zeroed1(s, l.Hidden)
			for _, x := range seq {
				if err := s.GRUStep(pl.gru, h, x); err != nil {
					return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
				}
			}
			current = h
		case LayerFC:
			if current == nil {
				return nil, fmt.Errorf("networks: %s layer %q: FC before recurrent layer", n.Name, l.Name)
			}
			var err error
			current, err = s.FullyConnectedPacked(current, pl.w, pl.b, l.FCOut, pks.fcAt(li))
			if err != nil {
				return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
			}
		default:
			return nil, fmt.Errorf("networks: %s layer %q: unsupported layer type %v in RNN graph", n.Name, l.Name, l.Type)
		}
		if l.FusedReLU && current != nil {
			nn.ReLUInPlace(current)
		}
		outs[li] = current
	}
	return &Result{Output: current, PredictedClass: -1, LayerOutputs: outs}, nil
}

// zeroed1 returns a zero-filled rank-1 tensor of length n from the scratch
// arena (arena tensors carry the previous run's state).
func zeroed1(s *nn.Scratch, n int) *tensor.Tensor {
	t := s.Arena1(n)
	t.Zero()
	return t
}

// Run executes a CNN natively on the given CHW input using the supplied
// weights and returns the per-layer outputs.  For RNNs use RunSequence.
// It builds a throwaway Plan; callers running repeatedly should hold a Plan
// (and an nn.Scratch) instead.
func (n *Network) Run(input *tensor.Tensor, w Weights) (*Result, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: Run before Build", n.Name)
	}
	p, err := n.NewPlan(w)
	if err != nil {
		return nil, err
	}
	return p.Run(input, nil)
}

// RunSequence executes an RNN natively over a sequence of input vectors
// using the supplied weights.  It builds a throwaway Plan; callers running
// repeatedly should hold a Plan (and an nn.Scratch) instead.
func (n *Network) RunSequence(seq []*tensor.Tensor, w Weights) (*Result, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: RunSequence before Build", n.Name)
	}
	p, err := n.NewPlan(w)
	if err != nil {
		return nil, err
	}
	return p.RunSequence(seq, nil)
}

func loadLSTMWeights(l *Layer, w Weights) (*nn.LSTMWeights, error) {
	h, in := l.Hidden, l.InSize
	get := func(p string, count int) (*tensor.Tensor, error) { return w.Get(l.Name, p, count) }
	var err error
	lw := &nn.LSTMWeights{Hidden: h, Input: in}
	if lw.Wi, err = get("Wi", h*in); err != nil {
		return nil, err
	}
	if lw.Wf, err = get("Wf", h*in); err != nil {
		return nil, err
	}
	if lw.Wo, err = get("Wo", h*in); err != nil {
		return nil, err
	}
	if lw.Wc, err = get("Wc", h*in); err != nil {
		return nil, err
	}
	if lw.Ui, err = get("Ui", h*h); err != nil {
		return nil, err
	}
	if lw.Uf, err = get("Uf", h*h); err != nil {
		return nil, err
	}
	if lw.Uo, err = get("Uo", h*h); err != nil {
		return nil, err
	}
	if lw.Uc, err = get("Uc", h*h); err != nil {
		return nil, err
	}
	if lw.Bi, err = get("Bi", h); err != nil {
		return nil, err
	}
	if lw.Bf, err = get("Bf", h); err != nil {
		return nil, err
	}
	if lw.Bo, err = get("Bo", h); err != nil {
		return nil, err
	}
	if lw.Bc, err = get("Bc", h); err != nil {
		return nil, err
	}
	return lw, nil
}

func loadGRUWeights(l *Layer, w Weights) (*nn.GRUWeights, error) {
	h, in := l.Hidden, l.InSize
	get := func(p string, count int) (*tensor.Tensor, error) { return w.Get(l.Name, p, count) }
	var err error
	gw := &nn.GRUWeights{Hidden: h, Input: in}
	if gw.Wr, err = get("Wr", h*in); err != nil {
		return nil, err
	}
	if gw.Wz, err = get("Wz", h*in); err != nil {
		return nil, err
	}
	if gw.Wh, err = get("Wh", h*in); err != nil {
		return nil, err
	}
	if gw.Ur, err = get("Ur", h*h); err != nil {
		return nil, err
	}
	if gw.Uz, err = get("Uz", h*h); err != nil {
		return nil, err
	}
	if gw.Uh, err = get("Uh", h*h); err != nil {
		return nil, err
	}
	if gw.Br, err = get("Br", h); err != nil {
		return nil, err
	}
	if gw.Bz, err = get("Bz", h); err != nil {
		return nil, err
	}
	if gw.Bh, err = get("Bh", h); err != nil {
		return nil, err
	}
	return gw, nil
}
