package networks

import (
	"fmt"

	"tango/internal/nn"
	"tango/internal/tensor"
)

// Result carries the outputs of one native inference run.
type Result struct {
	// Output is the final layer's output tensor.
	Output *tensor.Tensor
	// PredictedClass is the arg-max of the final output (CNN classifiers);
	// -1 for regression outputs.
	PredictedClass int
	// LayerOutputs holds every layer's output tensor, indexed like
	// Network.Layers.
	LayerOutputs []*tensor.Tensor
}

// Run executes a CNN natively on the given CHW input using the supplied
// weights and returns the per-layer outputs.  For RNNs use RunSequence.
func (n *Network) Run(input *tensor.Tensor, w Weights) (*Result, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: Run before Build", n.Name)
	}
	if n.Kind != KindCNN {
		return nil, fmt.Errorf("networks: %s is an RNN; use RunSequence", n.Name)
	}
	if input == nil || !equalShape(input.Shape(), n.InputShape) {
		got := []int(nil)
		if input != nil {
			got = input.Shape()
		}
		return nil, fmt.Errorf("networks: %s expects input shape %v, got %v", n.Name, n.InputShape, got)
	}
	outs := make([]*tensor.Tensor, len(n.Layers))
	resolve := func(li, idx int) *tensor.Tensor {
		ref := n.Layers[li].Inputs[idx]
		if ref == InputRef {
			return input
		}
		return outs[ref]
	}
	for li := range n.Layers {
		l := &n.Layers[li]
		in0 := resolve(li, 0)
		out, err := n.runLayer(li, l, in0, func(idx int) *tensor.Tensor { return resolve(li, idx) }, w)
		if err != nil {
			return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
		}
		if l.FusedReLU {
			nn.ReLUInPlace(out)
		}
		outs[li] = out
	}
	final := outs[len(outs)-1]
	return &Result{Output: final, PredictedClass: final.MaxIndex(), LayerOutputs: outs}, nil
}

// runLayer executes a single non-recurrent layer.
func (n *Network) runLayer(li int, l *Layer, in0 *tensor.Tensor, input func(int) *tensor.Tensor, w Weights) (*tensor.Tensor, error) {
	switch l.Type {
	case LayerConv:
		wt, err := w.Get(l.Name, "weights", l.Conv.WeightCount())
		if err != nil {
			return nil, err
		}
		b, err := w.Get(l.Name, "bias", l.Conv.OutChannels)
		if err != nil {
			return nil, err
		}
		return nn.Conv2D(in0, wt, b, l.Conv)
	case LayerPool:
		return nn.Pool2D(in0, l.Pool)
	case LayerFC:
		inCount := in0.Len()
		wt, err := w.Get(l.Name, "weights", l.FCOut*inCount)
		if err != nil {
			return nil, err
		}
		b, err := w.Get(l.Name, "bias", l.FCOut)
		if err != nil {
			return nil, err
		}
		return nn.FullyConnected(in0, wt, b, l.FCOut)
	case LayerLRN:
		return nn.LRN(in0, l.LRN)
	case LayerBatchNorm:
		c := l.OutShape[0]
		mean, err := w.Get(l.Name, "mean", c)
		if err != nil {
			return nil, err
		}
		variance, err := w.Get(l.Name, "variance", c)
		if err != nil {
			return nil, err
		}
		return nn.BatchNorm(in0, nn.BatchNormParams{Mean: mean, Variance: variance})
	case LayerScale:
		c := l.OutShape[0]
		gamma, err := w.Get(l.Name, "gamma", c)
		if err != nil {
			return nil, err
		}
		beta, err := w.Get(l.Name, "beta", c)
		if err != nil {
			return nil, err
		}
		return nn.Scale(in0, gamma, beta)
	case LayerReLU:
		return nn.ReLU(in0), nil
	case LayerEltwise:
		return nn.EltwiseAdd(in0, input(1))
	case LayerConcat:
		parts := make([]*tensor.Tensor, len(l.Inputs))
		for i := range l.Inputs {
			parts[i] = input(i)
		}
		return nn.ConcatChannels(parts...)
	case LayerSoftmax:
		return nn.Softmax(in0), nil
	case LayerGlobalPool:
		return nn.GlobalAvgPool(in0)
	default:
		return nil, fmt.Errorf("unsupported layer type %v in CNN graph", l.Type)
	}
}

// RunSequence executes an RNN natively over a sequence of input vectors
// (each of length InputShape[0]) and returns the final output.  The networks
// in the suite end with a fully-connected regression head that projects the
// final hidden state to the predicted value.
func (n *Network) RunSequence(seq []*tensor.Tensor, w Weights) (*Result, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: RunSequence before Build", n.Name)
	}
	if n.Kind != KindRNN {
		return nil, fmt.Errorf("networks: %s is a CNN; use Run", n.Name)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("networks: %s: empty input sequence", n.Name)
	}
	inSize := n.InputShape[0]
	for i, x := range seq {
		if x == nil || x.Len() != inSize {
			return nil, fmt.Errorf("networks: %s: sequence element %d must have %d features", n.Name, i, inSize)
		}
	}

	outs := make([]*tensor.Tensor, len(n.Layers))
	var current *tensor.Tensor
	for li := range n.Layers {
		l := &n.Layers[li]
		switch l.Type {
		case LayerLSTM:
			lw, err := loadLSTMWeights(l, w)
			if err != nil {
				return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
			}
			st := nn.NewLSTMState(l.Hidden)
			for _, x := range seq {
				st, err = nn.LSTMCell(lw, st, x)
				if err != nil {
					return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
				}
			}
			current = st.H
		case LayerGRU:
			gw, err := loadGRUWeights(l, w)
			if err != nil {
				return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
			}
			h := tensor.New(l.Hidden)
			for _, x := range seq {
				h, err = nn.GRUCell(gw, h, x)
				if err != nil {
					return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
				}
			}
			current = h
		case LayerFC:
			if current == nil {
				return nil, fmt.Errorf("networks: %s layer %q: FC before recurrent layer", n.Name, l.Name)
			}
			wt, err := w.Get(l.Name, "weights", l.FCOut*current.Len())
			if err != nil {
				return nil, err
			}
			b, err := w.Get(l.Name, "bias", l.FCOut)
			if err != nil {
				return nil, err
			}
			current, err = nn.FullyConnected(current, wt, b, l.FCOut)
			if err != nil {
				return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
			}
		default:
			return nil, fmt.Errorf("networks: %s layer %q: unsupported layer type %v in RNN graph", n.Name, l.Name, l.Type)
		}
		if l.FusedReLU && current != nil {
			nn.ReLUInPlace(current)
		}
		outs[li] = current
	}
	return &Result{Output: current, PredictedClass: -1, LayerOutputs: outs}, nil
}

func loadLSTMWeights(l *Layer, w Weights) (*nn.LSTMWeights, error) {
	h, in := l.Hidden, l.InSize
	get := func(p string, count int) (*tensor.Tensor, error) { return w.Get(l.Name, p, count) }
	var err error
	lw := &nn.LSTMWeights{Hidden: h, Input: in}
	if lw.Wi, err = get("Wi", h*in); err != nil {
		return nil, err
	}
	if lw.Wf, err = get("Wf", h*in); err != nil {
		return nil, err
	}
	if lw.Wo, err = get("Wo", h*in); err != nil {
		return nil, err
	}
	if lw.Wc, err = get("Wc", h*in); err != nil {
		return nil, err
	}
	if lw.Ui, err = get("Ui", h*h); err != nil {
		return nil, err
	}
	if lw.Uf, err = get("Uf", h*h); err != nil {
		return nil, err
	}
	if lw.Uo, err = get("Uo", h*h); err != nil {
		return nil, err
	}
	if lw.Uc, err = get("Uc", h*h); err != nil {
		return nil, err
	}
	if lw.Bi, err = get("Bi", h); err != nil {
		return nil, err
	}
	if lw.Bf, err = get("Bf", h); err != nil {
		return nil, err
	}
	if lw.Bo, err = get("Bo", h); err != nil {
		return nil, err
	}
	if lw.Bc, err = get("Bc", h); err != nil {
		return nil, err
	}
	return lw, nil
}

func loadGRUWeights(l *Layer, w Weights) (*nn.GRUWeights, error) {
	h, in := l.Hidden, l.InSize
	get := func(p string, count int) (*tensor.Tensor, error) { return w.Get(l.Name, p, count) }
	var err error
	gw := &nn.GRUWeights{Hidden: h, Input: in}
	if gw.Wr, err = get("Wr", h*in); err != nil {
		return nil, err
	}
	if gw.Wz, err = get("Wz", h*in); err != nil {
		return nil, err
	}
	if gw.Wh, err = get("Wh", h*in); err != nil {
		return nil, err
	}
	if gw.Ur, err = get("Ur", h*h); err != nil {
		return nil, err
	}
	if gw.Uz, err = get("Uz", h*h); err != nil {
		return nil, err
	}
	if gw.Uh, err = get("Uh", h*h); err != nil {
		return nil, err
	}
	if gw.Br, err = get("Br", h); err != nil {
		return nil, err
	}
	if gw.Bz, err = get("Bz", h); err != nil {
		return nil, err
	}
	if gw.Bh, err = get("Bh", h); err != nil {
		return nil, err
	}
	return gw, nil
}
