package networks_test

import (
	"math"
	"testing"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
)

// Golden accuracy tests of the fast-numerics tiers: every network must
// produce the same top-1 class (CNNs) and an output within a relative-error
// bound of the bit-exact reference path.

// relErr returns max_i |got_i - want_i| / max_i |want_i|.
func relErr(got, want []float32) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := math.Abs(float64(want[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

// maxULPDist returns the largest ULP distance between corresponding
// elements, treating float32 bit patterns as lexicographically ordered
// integers (the standard monotone mapping).
func maxULPDist(got, want []float32) uint32 {
	toOrd := func(f float32) int64 {
		b := int64(int32(math.Float32bits(f)))
		if b < 0 {
			b = math.MinInt32 - b
		}
		return b
	}
	var worst uint32
	for i := range want {
		d := toOrd(got[i]) - toOrd(want[i])
		if d < 0 {
			d = -d
		}
		if d > math.MaxUint32 {
			d = math.MaxUint32
		}
		if uint32(d) > worst {
			worst = uint32(d)
		}
	}
	return worst
}

func numericsScratch(mode nn.Numerics) *nn.Scratch {
	s := nn.NewScratch()
	s.SetNumerics(mode)
	return s
}

// goldenPair holds one tier-comparison run: the copied reference output and
// the fast-tier result (whose Output aliases its scratch arena).
type goldenPair struct {
	refOut   []float32
	refClass int
	gotOut   []float32
	gotClass int
}

// runGoldenPair runs a network on the reference tier and under mode.
func runGoldenPair(t *testing.T, name string, mode nn.Numerics) goldenPair {
	t.Helper()
	p := buildPlan(t, name)
	run := func(s *nn.Scratch) *networks.Result {
		t.Helper()
		var res *networks.Result
		var err error
		if p.Network().Kind == networks.KindRNN {
			res, err = p.RunSequence(rnnSequence(p, 11), s)
		} else {
			res, err = p.Run(cnnInput(p, 11), s)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nn.NewScratch())
	refOut := append([]float32(nil), ref.Output.Data()...)
	got := run(numericsScratch(mode))
	return goldenPair{
		refOut: refOut, refClass: ref.PredictedClass,
		gotOut: got.Output.Data(), gotClass: got.PredictedClass,
	}
}

func TestFastMathGoldenAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			g := runGoldenPair(t, name, nn.NumericsFast)
			if g.refClass != g.gotClass {
				t.Fatalf("top-1 disagreement: reference %d, fast %d", g.refClass, g.gotClass)
			}
			if re := relErr(g.gotOut, g.refOut); re > 1e-3 {
				t.Fatalf("fast output relative error %.3g exceeds 1e-3", re)
			}
			t.Logf("relErr=%.3g maxULP=%d", relErr(g.gotOut, g.refOut), maxULPDist(g.gotOut, g.refOut))
		})
	}
}

func TestInt8GoldenAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			g := runGoldenPair(t, name, nn.NumericsInt8)
			if g.refClass != g.gotClass {
				t.Fatalf("top-1 disagreement: reference %d, int8 %d", g.refClass, g.gotClass)
			}
			re := relErr(g.gotOut, g.refOut)
			if re > 0.25 {
				t.Fatalf("int8 output relative error %.3g exceeds 0.25", re)
			}
			t.Logf("relErr=%.3g", re)
		})
	}
}

// TestFastMathBatchTop1 checks that the batched fast path agrees with the
// bit-exact reference on every sample's top-1 class (batched and
// single-sample fast outputs may differ in low bits; the accuracy contract
// is tolerance plus class agreement).
func TestFastMathBatchTop1(t *testing.T) {
	for _, name := range []string{"CifarNet", "SqueezeNet"} {
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			const nImg = 3
			shape := append([]int{nImg}, p.Network().InputShape...)
			batch := tensor.New(shape...)
			batch.FillUniform(tensor.NewRNG(23), 0, 1)
			refBatch, err := p.RunBatch(batch, nn.NewScratch())
			if err != nil {
				t.Fatal(err)
			}
			refPreds := append([]int(nil), refBatch.PredictedClasses...)
			for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
				got, err := p.RunBatch(batch, numericsScratch(mode))
				if err != nil {
					t.Fatal(err)
				}
				for i, want := range refPreds {
					if got.PredictedClasses[i] != want {
						t.Fatalf("%v: sample %d top-1 %d, reference %d",
							mode, i, got.PredictedClasses[i], want)
					}
				}
			}
		})
	}
}

// TestFastMathSteadyStateAllocs proves the packed-weight fast tier reaches a
// zero-alloc steady state: after the first run packs the weight panels and
// grows the scratch arena, repeat inference must stay within 2 allocations
// per run (the Result object itself).  The CI fastmath job runs this guard.
func TestFastMathSteadyStateAllocs(t *testing.T) {
	for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
		t.Run(mode.String(), func(t *testing.T) {
			p := buildPlan(t, "CifarNet")
			s := numericsScratch(mode)
			in := cnnInput(p, 11)
			if _, err := p.Run(in, s); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := p.Run(in, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("steady-state fast inference allocates %.0f/run, want <= 2", allocs)
			}
		})
	}
}

// runBatchGolden runs a plan's batched path with nImg samples (sequences
// for RNNs) under the given scratch.
func runBatchGolden(t *testing.T, p *networks.Plan, s *nn.Scratch, nImg int) *networks.BatchResult {
	t.Helper()
	n := p.Network()
	var res *networks.BatchResult
	var err error
	if n.Kind == networks.KindRNN {
		steps := n.SeqLen
		if steps <= 0 {
			steps = 2
		}
		seq := tensor.New(steps, nImg, n.InputShape[0])
		seq.FillUniform(tensor.NewRNG(uint64(31+nImg)), 0, 1)
		res, err = p.RunSequenceBatch(seq, s)
	} else {
		shape := append([]int{nImg}, n.InputShape...)
		batch := tensor.New(shape...)
		batch.FillUniform(tensor.NewRNG(uint64(31+nImg)), 0, 1)
		res, err = p.RunBatch(batch, s)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFusedBatchGoldenAllNetworks is the fused batched path's accuracy
// contract across the whole suite: for every network, batch size (including
// ragged sequence batches for the forecast RNNs) and worker count, the
// fast tier must stay within 1e-3 relative error of the batched reference
// and the int8 tier within 0.25, with every sample's top-1 class preserved
// on the CNNs.  Heavy networks skip under -short like the single-sample
// goldens; batch 8 runs only on the light CNNs to keep the suite quick.
func TestFusedBatchGoldenAllNetworks(t *testing.T) {
	modes := []struct {
		mode nn.Numerics
		tol  float64
	}{
		{nn.NumericsFast, 1e-3},
		{nn.NumericsInt8, 0.25},
	}
	for _, name := range networks.Names() {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			isRNN := p.Network().Kind == networks.KindRNN
			batches := []int{1, 3}
			if isRNN {
				batches = append(batches, 5) // ragged forecast batch
			} else if name == "CifarNet" || name == "SqueezeNet" {
				batches = append(batches, 8)
			}
			for _, nImg := range batches {
				ref := runBatchGolden(t, p, nn.NewScratch(), nImg)
				refOut := append([]float32(nil), ref.Output.Data()...)
				refPreds := append([]int(nil), ref.PredictedClasses...)
				for _, m := range modes {
					for _, workers := range []int{1, 3} {
						s := numericsScratch(m.mode)
						s.SetWorkers(workers)
						got := runBatchGolden(t, p, s, nImg)
						if re := relErr(got.Output.Data(), refOut); re > m.tol {
							t.Fatalf("%v batch %d workers %d: relative error %.3g exceeds %.3g",
								m.mode, nImg, workers, re, m.tol)
						}
						if !isRNN {
							for i, want := range refPreds {
								if got.PredictedClasses[i] != want {
									t.Fatalf("%v batch %d workers %d: sample %d top-1 %d, reference %d",
										m.mode, nImg, workers, i, got.PredictedClasses[i], want)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestFusedBatchWorkerDeterminism: the fused batched path's panel grid is
// fixed per image, so the output bytes must not depend on the worker
// fan-out — fast tier because each element is produced by exactly one
// panel's FMA chain, int8 because integer accumulation is exact.
func TestFusedBatchWorkerDeterminism(t *testing.T) {
	for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
		t.Run(mode.String(), func(t *testing.T) {
			p := buildPlan(t, "CifarNet")
			shape := append([]int{3}, p.Network().InputShape...)
			batch := tensor.New(shape...)
			batch.FillUniform(tensor.NewRNG(41), 0, 1)
			base, err := p.RunBatch(batch, numericsScratch(mode))
			if err != nil {
				t.Fatal(err)
			}
			baseOut := append([]float32(nil), base.Output.Data()...)
			for _, workers := range []int{2, 5} {
				s := numericsScratch(mode)
				s.SetWorkers(workers)
				got, err := p.RunBatch(batch, s)
				if err != nil {
					t.Fatal(err)
				}
				for i := range baseOut {
					if math.Float32bits(got.Output.Data()[i]) != math.Float32bits(baseOut[i]) {
						t.Fatalf("workers=%d: element %d differs: %v vs %v",
							workers, i, got.Output.Data()[i], baseOut[i])
					}
				}
			}
		})
	}
}

// TestFastMathBatchSteadyStateAllocs: the fused batched path must also
// reach a near-zero-alloc steady state — no staged colT buffer, panels and
// quantization scratch reused from the arena, so repeat batched inference
// stays within 2 allocations per run (the BatchResult object).
func TestFastMathBatchSteadyStateAllocs(t *testing.T) {
	for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
		t.Run(mode.String(), func(t *testing.T) {
			p := buildPlan(t, "CifarNet")
			s := numericsScratch(mode)
			shape := append([]int{3}, p.Network().InputShape...)
			batch := tensor.New(shape...)
			batch.FillUniform(tensor.NewRNG(43), 0, 1)
			if _, err := p.RunBatch(batch, s); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := p.RunBatch(batch, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("steady-state batched fast inference allocates %.0f/run, want <= 2", allocs)
			}
		})
	}
}

// TestFastMathBatchSequence checks the batched fast recurrent path against
// the reference within tolerance.
func TestFastMathBatchSequence(t *testing.T) {
	for _, name := range networks.RNNNames() {
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			n := p.Network()
			steps := n.SeqLen
			if steps <= 0 {
				steps = 2
			}
			const nSeq = 3
			seq := tensor.New(steps, nSeq, n.InputShape[0])
			seq.FillUniform(tensor.NewRNG(29), 0, 1)
			ref, err := p.RunSequenceBatch(seq, nn.NewScratch())
			if err != nil {
				t.Fatal(err)
			}
			refOut := append([]float32(nil), ref.Output.Data()...)
			fast, err := p.RunSequenceBatch(seq, numericsScratch(nn.NumericsFast))
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(fast.Output.Data(), refOut); re > 1e-3 {
				t.Fatalf("fast batch output relative error %.3g exceeds 1e-3", re)
			}
		})
	}
}
