package networks_test

import (
	"math"
	"testing"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
)

// Golden accuracy tests of the fast-numerics tiers: every network must
// produce the same top-1 class (CNNs) and an output within a relative-error
// bound of the bit-exact reference path.

// relErr returns max_i |got_i - want_i| / max_i |want_i|.
func relErr(got, want []float32) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := math.Abs(float64(want[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

// maxULPDist returns the largest ULP distance between corresponding
// elements, treating float32 bit patterns as lexicographically ordered
// integers (the standard monotone mapping).
func maxULPDist(got, want []float32) uint32 {
	toOrd := func(f float32) int64 {
		b := int64(int32(math.Float32bits(f)))
		if b < 0 {
			b = math.MinInt32 - b
		}
		return b
	}
	var worst uint32
	for i := range want {
		d := toOrd(got[i]) - toOrd(want[i])
		if d < 0 {
			d = -d
		}
		if d > math.MaxUint32 {
			d = math.MaxUint32
		}
		if uint32(d) > worst {
			worst = uint32(d)
		}
	}
	return worst
}

func numericsScratch(mode nn.Numerics) *nn.Scratch {
	s := nn.NewScratch()
	s.SetNumerics(mode)
	return s
}

// goldenPair holds one tier-comparison run: the copied reference output and
// the fast-tier result (whose Output aliases its scratch arena).
type goldenPair struct {
	refOut   []float32
	refClass int
	gotOut   []float32
	gotClass int
}

// runGoldenPair runs a network on the reference tier and under mode.
func runGoldenPair(t *testing.T, name string, mode nn.Numerics) goldenPair {
	t.Helper()
	p := buildPlan(t, name)
	run := func(s *nn.Scratch) *networks.Result {
		t.Helper()
		var res *networks.Result
		var err error
		if p.Network().Kind == networks.KindRNN {
			res, err = p.RunSequence(rnnSequence(p, 11), s)
		} else {
			res, err = p.Run(cnnInput(p, 11), s)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nn.NewScratch())
	refOut := append([]float32(nil), ref.Output.Data()...)
	got := run(numericsScratch(mode))
	return goldenPair{
		refOut: refOut, refClass: ref.PredictedClass,
		gotOut: got.Output.Data(), gotClass: got.PredictedClass,
	}
}

func TestFastMathGoldenAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			g := runGoldenPair(t, name, nn.NumericsFast)
			if g.refClass != g.gotClass {
				t.Fatalf("top-1 disagreement: reference %d, fast %d", g.refClass, g.gotClass)
			}
			if re := relErr(g.gotOut, g.refOut); re > 1e-3 {
				t.Fatalf("fast output relative error %.3g exceeds 1e-3", re)
			}
			t.Logf("relErr=%.3g maxULP=%d", relErr(g.gotOut, g.refOut), maxULPDist(g.gotOut, g.refOut))
		})
	}
}

func TestInt8GoldenAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			g := runGoldenPair(t, name, nn.NumericsInt8)
			if g.refClass != g.gotClass {
				t.Fatalf("top-1 disagreement: reference %d, int8 %d", g.refClass, g.gotClass)
			}
			re := relErr(g.gotOut, g.refOut)
			if re > 0.25 {
				t.Fatalf("int8 output relative error %.3g exceeds 0.25", re)
			}
			t.Logf("relErr=%.3g", re)
		})
	}
}

// TestFastMathBatchTop1 checks that the batched fast path agrees with the
// bit-exact reference on every sample's top-1 class (batched and
// single-sample fast outputs may differ in low bits; the accuracy contract
// is tolerance plus class agreement).
func TestFastMathBatchTop1(t *testing.T) {
	for _, name := range []string{"CifarNet", "SqueezeNet"} {
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			const nImg = 3
			shape := append([]int{nImg}, p.Network().InputShape...)
			batch := tensor.New(shape...)
			batch.FillUniform(tensor.NewRNG(23), 0, 1)
			refBatch, err := p.RunBatch(batch, nn.NewScratch())
			if err != nil {
				t.Fatal(err)
			}
			refPreds := append([]int(nil), refBatch.PredictedClasses...)
			for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
				got, err := p.RunBatch(batch, numericsScratch(mode))
				if err != nil {
					t.Fatal(err)
				}
				for i, want := range refPreds {
					if got.PredictedClasses[i] != want {
						t.Fatalf("%v: sample %d top-1 %d, reference %d",
							mode, i, got.PredictedClasses[i], want)
					}
				}
			}
		})
	}
}

// TestFastMathSteadyStateAllocs proves the packed-weight fast tier reaches a
// zero-alloc steady state: after the first run packs the weight panels and
// grows the scratch arena, repeat inference must stay within 2 allocations
// per run (the Result object itself).  The CI fastmath job runs this guard.
func TestFastMathSteadyStateAllocs(t *testing.T) {
	for _, mode := range []nn.Numerics{nn.NumericsFast, nn.NumericsInt8} {
		t.Run(mode.String(), func(t *testing.T) {
			p := buildPlan(t, "CifarNet")
			s := numericsScratch(mode)
			in := cnnInput(p, 11)
			if _, err := p.Run(in, s); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := p.Run(in, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("steady-state fast inference allocates %.0f/run, want <= 2", allocs)
			}
		})
	}
}

// TestFastMathBatchSequence checks the batched fast recurrent path against
// the reference within tolerance.
func TestFastMathBatchSequence(t *testing.T) {
	for _, name := range networks.RNNNames() {
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			n := p.Network()
			steps := n.SeqLen
			if steps <= 0 {
				steps = 2
			}
			const nSeq = 3
			seq := tensor.New(steps, nSeq, n.InputShape[0])
			seq.FillUniform(tensor.NewRNG(29), 0, 1)
			ref, err := p.RunSequenceBatch(seq, nn.NewScratch())
			if err != nil {
				t.Fatal(err)
			}
			refOut := append([]float32(nil), ref.Output.Data()...)
			fast, err := p.RunSequenceBatch(seq, numericsScratch(nn.NumericsFast))
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(fast.Output.Data(), refOut); re > 1e-3 {
				t.Fatalf("fast batch output relative error %.3g exceeds 1e-3", re)
			}
		})
	}
}
