package networks

// rnnHidden is the hidden-state width of the suite's GRU and LSTM models.
// Table III lists one kernel of 100 threads per recurrent layer (blockDim
// (10,10,1) for GRU and (100,1,1) for LSTM), i.e. one thread per hidden
// neuron.
const rnnHidden = 100

// rnnSeqLen is the number of time steps: the models predict the next bitcoin
// price from the past two days' prices (Table I).
const rnnSeqLen = 2

// NewGRU returns the GRU workload: a single gated-recurrent-unit layer of 100
// hidden neurons unrolled over two time steps, followed by a fully-connected
// regression head that projects the final hidden state to the predicted
// price.
func NewGRU() (*Network, error) {
	n := &Network{
		Name:       "GRU",
		Kind:       KindRNN,
		InputShape: []int{1},
		SeqLen:     rnnSeqLen,
		Layers: []Layer{
			{Name: "gru1", Type: LayerGRU, Inputs: []int{InputRef}, Hidden: rnnHidden, InSize: 1},
			{Name: "fc_out", Type: LayerFC, Inputs: []int{0}, FCOut: 1},
		},
	}
	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}

// NewLSTM returns the LSTM workload: a single long-short-term-memory layer of
// 100 hidden neurons unrolled over two time steps, followed by a
// fully-connected regression head.
func NewLSTM() (*Network, error) {
	n := &Network{
		Name:       "LSTM",
		Kind:       KindRNN,
		InputShape: []int{1},
		SeqLen:     rnnSeqLen,
		Layers: []Layer{
			{Name: "lstm1", Type: LayerLSTM, Inputs: []int{InputRef}, Hidden: rnnHidden, InSize: 1},
			{Name: "fc_out", Type: LayerFC, Inputs: []int{0}, FCOut: 1},
		},
	}
	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
