package networks_test

import (
	"strings"
	"testing"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
	"tango/internal/weights"
)

func TestNamesCoverRegistry(t *testing.T) {
	names := networks.Names()
	if len(names) != 7 {
		t.Fatalf("suite should have 7 benchmarks, got %d: %v", len(names), names)
	}
	for _, name := range names {
		n, err := networks.New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if n.Name != name {
			t.Errorf("New(%q).Name = %q", name, n.Name)
		}
		if !n.Built() {
			t.Errorf("%s should be built by its constructor", name)
		}
	}
	if len(networks.CNNNames())+len(networks.RNNNames()) != len(names) {
		t.Error("CNN + RNN names should partition the suite")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := networks.New("NoSuchNet"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestAll(t *testing.T) {
	nets, err := networks.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 7 {
		t.Fatalf("All() returned %d networks", len(nets))
	}
}

func TestKindStrings(t *testing.T) {
	if networks.KindCNN.String() != "CNN" || networks.KindRNN.String() != "RNN" {
		t.Error("unexpected kind names")
	}
}

func TestLayerTypeStrings(t *testing.T) {
	if networks.LayerConv.String() != "conv" || networks.LayerLSTM.String() != "lstm" {
		t.Error("unexpected layer type names")
	}
}

func TestCifarNetStructure(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: three convolutional layers and two fully-connected layers.
	convs, fcs := 0, 0
	for _, l := range n.Layers {
		switch l.Type {
		case networks.LayerConv:
			convs++
		case networks.LayerFC:
			fcs++
		}
	}
	if convs != 3 || fcs != 2 {
		t.Errorf("CifarNet has %d conv and %d fc layers, want 3 and 2", convs, fcs)
	}
	if n.NumClasses != 9 {
		t.Errorf("CifarNet classes = %d, want 9 (traffic signals)", n.NumClasses)
	}
	final := n.Layers[len(n.Layers)-1]
	if got := final.OutShape; len(got) != 1 || got[0] != 9 {
		t.Errorf("CifarNet output shape %v, want [9]", got)
	}
}

func TestAlexNetStructure(t *testing.T) {
	n, err := networks.NewAlexNet()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: five convolutional layers and three fully-connected layers.
	convs, fcs, norms := 0, 0, 0
	for _, l := range n.Layers {
		switch l.Type {
		case networks.LayerConv:
			convs++
		case networks.LayerFC:
			fcs++
		case networks.LayerLRN:
			norms++
		}
	}
	if convs != 5 || fcs != 3 || norms != 2 {
		t.Errorf("AlexNet has %d conv, %d fc, %d norm layers; want 5, 3, 2", convs, fcs, norms)
	}
	// Reference feature map sizes.
	cases := map[string][]int{
		"conv1": {96, 55, 55},
		"pool1": {96, 27, 27},
		"conv2": {256, 27, 27},
		"pool2": {256, 13, 13},
		"conv5": {256, 13, 13},
		"pool5": {256, 6, 6},
		"fc8":   {1000},
	}
	for name, want := range cases {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("AlexNet missing layer %q", name)
			continue
		}
		if !shapeEq(l.OutShape, want) {
			t.Errorf("AlexNet %s output %v, want %v", name, l.OutShape, want)
		}
	}
}

func TestSqueezeNetStructure(t *testing.T) {
	n, err := networks.NewSqueezeNet()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: two convolutional layers, eight fire modules, one global pool.
	fires := map[string]bool{}
	plainConvs := 0
	globalPools := 0
	for _, l := range n.Layers {
		if strings.HasPrefix(l.Name, "fire") {
			fires[strings.SplitN(l.Name, "/", 2)[0]] = true
			continue
		}
		switch l.Type {
		case networks.LayerConv:
			plainConvs++
		case networks.LayerGlobalPool:
			globalPools++
		}
	}
	if len(fires) != 8 {
		t.Errorf("SqueezeNet has %d fire modules, want 8", len(fires))
	}
	if plainConvs != 2 {
		t.Errorf("SqueezeNet has %d plain conv layers, want 2 (conv1, conv10)", plainConvs)
	}
	if globalPools != 1 {
		t.Errorf("SqueezeNet has %d global pooling layers, want 1", globalPools)
	}
	cases := map[string][]int{
		"conv1":        {96, 111, 111},
		"pool1":        {96, 55, 55},
		"fire2/concat": {128, 55, 55},
		"fire4/concat": {256, 55, 55},
		"pool4":        {256, 27, 27},
		"fire8/concat": {512, 27, 27},
		"pool8":        {512, 13, 13},
		"fire9/concat": {512, 13, 13},
		"conv10":       {1000, 13, 13},
		"pool10":       {1000},
	}
	for name, want := range cases {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("SqueezeNet missing layer %q", name)
			continue
		}
		if !shapeEq(l.OutShape, want) {
			t.Errorf("SqueezeNet %s output %v, want %v", name, l.OutShape, want)
		}
	}
	// Fire squeeze/expand layers must be classified for the figures.
	if n.Layer("fire2/squeeze1x1").EffectiveClass() != networks.ClassFireSqueeze {
		t.Error("fire squeeze layers must carry the Fire_Squeeze class")
	}
	if n.Layer("fire2/expand3x3").EffectiveClass() != networks.ClassFireExpand {
		t.Error("fire expand layers must carry the Fire_Expand class")
	}
}

func TestResNet50Structure(t *testing.T) {
	n, err := networks.NewResNet50()
	if err != nil {
		t.Fatal(err)
	}
	convs, fcs, eltwise, relus := 0, 0, 0, 0
	projections := 0
	for _, l := range n.Layers {
		switch l.Type {
		case networks.LayerConv:
			convs++
			if strings.Contains(l.Name, "branch1") {
				projections++
			}
		case networks.LayerFC:
			fcs++
		case networks.LayerEltwise:
			eltwise++
		case networks.LayerReLU:
			relus++
		}
	}
	// Paper: "ResNet uses 49 convolution layers and one fully-connected
	// layer"; the Caffe model adds 4 projection shortcuts, giving 53 conv
	// kernels in total.
	if convs-projections != 49 {
		t.Errorf("ResNet main-path conv layers = %d, want 49", convs-projections)
	}
	if projections != 4 {
		t.Errorf("ResNet projection shortcuts = %d, want 4", projections)
	}
	if fcs != 1 {
		t.Errorf("ResNet fc layers = %d, want 1", fcs)
	}
	if eltwise != 16 {
		t.Errorf("ResNet eltwise layers = %d, want 16 (one per bottleneck)", eltwise)
	}
	if relus == 0 {
		t.Error("ResNet should expose standalone ReLU layers")
	}
	cases := map[string][]int{
		"conv1":  {64, 112, 112},
		"pool1":  {64, 56, 56},
		"res2c":  {256, 56, 56},
		"res3d":  {512, 28, 28},
		"res4f":  {1024, 14, 14},
		"res5c":  {2048, 7, 7},
		"pool5":  {2048},
		"fc1000": {1000},
	}
	for name, want := range cases {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("ResNet missing layer %q", name)
			continue
		}
		if !shapeEq(l.OutShape, want) {
			t.Errorf("ResNet %s output %v, want %v", name, l.OutShape, want)
		}
	}
}

func TestVGGNetStructure(t *testing.T) {
	n, err := networks.NewVGGNet()
	if err != nil {
		t.Fatal(err)
	}
	convs, fcs, pools := 0, 0, 0
	for _, l := range n.Layers {
		switch l.Type {
		case networks.LayerConv:
			convs++
			if l.Conv.KernelH != 3 || l.Conv.KernelW != 3 {
				t.Errorf("VGG conv %s kernel %dx%d, want 3x3", l.Name, l.Conv.KernelH, l.Conv.KernelW)
			}
		case networks.LayerFC:
			fcs++
		case networks.LayerPool:
			pools++
		}
	}
	// Paper: 13 convolution, 3 fully-connected, 5 pooling layers.
	if convs != 13 || fcs != 3 || pools != 5 {
		t.Errorf("VGGNet has %d conv, %d fc, %d pool; want 13, 3, 5", convs, fcs, pools)
	}
	cases := map[string][]int{
		"conv1_2": {64, 224, 224},
		"pool1":   {64, 112, 112},
		"conv3_3": {256, 56, 56},
		"pool5":   {512, 7, 7},
		"fc6":     {4096},
		"fc8":     {1000},
	}
	for name, want := range cases {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("VGGNet missing layer %q", name)
			continue
		}
		if !shapeEq(l.OutShape, want) {
			t.Errorf("VGGNet %s output %v, want %v", name, l.OutShape, want)
		}
	}
}

func TestRNNStructures(t *testing.T) {
	for _, name := range networks.RNNNames() {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kind != networks.KindRNN {
			t.Errorf("%s kind = %v, want RNN", name, n.Kind)
		}
		if n.SeqLen != 2 {
			t.Errorf("%s sequence length = %d, want 2 (past two days' prices)", name, n.SeqLen)
		}
		rec := n.Layers[0]
		if rec.Hidden != 100 {
			t.Errorf("%s hidden size = %d, want 100 (Table III: 100 threads)", name, rec.Hidden)
		}
		out := n.Layers[len(n.Layers)-1]
		if out.Type != networks.LayerFC || out.FCOut != 1 {
			t.Errorf("%s should end with a 1-output regression head", name)
		}
	}
}

func TestWeightSpecsAndBytes(t *testing.T) {
	// AlexNet parameter count is ~61M (60,965,224 in the reference model with
	// grouped convolutions); verify we land on the exact reference number.
	n, err := networks.NewAlexNet()
	if err != nil {
		t.Fatal(err)
	}
	specs, err := n.WeightSpecs()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range specs {
		if s.Count <= 0 {
			t.Errorf("parameter %s has non-positive count %d", s.Key(), s.Count)
		}
		total += s.Count
	}
	if total != 60965224 {
		t.Errorf("AlexNet parameter count = %d, want 60965224", total)
	}
	wb, err := n.WeightBytes()
	if err != nil {
		t.Fatal(err)
	}
	if wb != int64(total)*4 {
		t.Errorf("WeightBytes = %d, want %d", wb, int64(total)*4)
	}
}

func TestRNNFootprintSmall(t *testing.T) {
	// Paper Observation 9 / Figure 11: GRU and LSTM use well under 500 KB.
	for _, name := range networks.RNNNames() {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := n.WeightBytes()
		if err != nil {
			t.Fatal(err)
		}
		ab, err := n.ActivationBytes()
		if err != nil {
			t.Fatal(err)
		}
		if wb+ab >= 500*1024 {
			t.Errorf("%s footprint %d bytes, want < 500KB", name, wb+ab)
		}
	}
}

func TestCNNFootprintLarge(t *testing.T) {
	// Paper Observation 9: most CNNs use at least 1 MB.
	for _, name := range []string{"AlexNet", "SqueezeNet", "ResNet", "VGGNet"} {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := n.WeightBytes()
		if err != nil {
			t.Fatal(err)
		}
		ab, err := n.ActivationBytes()
		if err != nil {
			t.Fatal(err)
		}
		if wb+ab < 1<<20 {
			t.Errorf("%s footprint %d bytes, want >= 1MB", name, wb+ab)
		}
	}
}

func TestBuildRejectsBadGraphs(t *testing.T) {
	cases := []*networks.Network{
		// No input shape.
		{Name: "bad", Layers: []networks.Layer{{Name: "x", Type: networks.LayerReLU, Inputs: []int{networks.InputRef}}}},
		// Unnamed layer.
		{Name: "bad", InputShape: []int{1, 4, 4}, Layers: []networks.Layer{{Type: networks.LayerReLU, Inputs: []int{networks.InputRef}}}},
		// Duplicate names.
		{Name: "bad", InputShape: []int{1, 4, 4}, Layers: []networks.Layer{
			{Name: "a", Type: networks.LayerReLU, Inputs: []int{networks.InputRef}},
			{Name: "a", Type: networks.LayerReLU, Inputs: []int{0}},
		}},
		// Forward reference.
		{Name: "bad", InputShape: []int{1, 4, 4}, Layers: []networks.Layer{
			{Name: "a", Type: networks.LayerReLU, Inputs: []int{1}},
			{Name: "b", Type: networks.LayerReLU, Inputs: []int{networks.InputRef}},
		}},
		// Conv channel mismatch.
		{Name: "bad", InputShape: []int{3, 8, 8}, Layers: []networks.Layer{
			{Name: "c", Type: networks.LayerConv, Inputs: []int{networks.InputRef}, Conv: nn.ConvParams{
				InChannels: 4, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}},
		}},
		// Eltwise with one input.
		{Name: "bad", InputShape: []int{3, 8, 8}, Layers: []networks.Layer{
			{Name: "e", Type: networks.LayerEltwise, Inputs: []int{networks.InputRef}},
		}},
		// FC without output size.
		{Name: "bad", InputShape: []int{3, 8, 8}, Layers: []networks.Layer{
			{Name: "f", Type: networks.LayerFC, Inputs: []int{networks.InputRef}},
		}},
		// Layer with no inputs.
		{Name: "bad", InputShape: []int{3, 8, 8}, Layers: []networks.Layer{
			{Name: "r", Type: networks.LayerReLU},
		}},
	}
	for i, n := range cases {
		if err := n.Build(); err == nil {
			t.Errorf("case %d: Build should have failed", i)
		}
	}
}

func TestRunCifarNetEndToEnd(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	input := tensor.New(n.InputShape...)
	input.FillUniform(tensor.NewRNG(99), 0, 1)
	res, err := n.Run(input, ws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 9 {
		t.Fatalf("CifarNet output length %d, want 9", res.Output.Len())
	}
	// Softmax output: a probability distribution.
	sum := res.Output.Sum()
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("CifarNet softmax output sums to %v, want 1", sum)
	}
	if res.PredictedClass < 0 || res.PredictedClass > 8 {
		t.Errorf("predicted class %d out of range", res.PredictedClass)
	}
	if len(res.LayerOutputs) != len(n.Layers) {
		t.Errorf("LayerOutputs has %d entries, want %d", len(res.LayerOutputs), len(n.Layers))
	}
	// Determinism: the same input and weights give the same prediction.
	res2, err := n.Run(input, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ApproxEqual(res.Output, res2.Output, 0) {
		t.Error("inference must be deterministic")
	}
}

func TestRunRejectsWrongUsage(t *testing.T) {
	cifar, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(cifar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cifar.Run(tensor.New(3, 16, 16), ws); err == nil {
		t.Error("wrong input shape should fail")
	}
	if _, err := cifar.Run(nil, ws); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := cifar.RunSequence([]*tensor.Tensor{tensor.New(1)}, ws); err == nil {
		t.Error("RunSequence on a CNN should fail")
	}

	gru, err := networks.NewGRU()
	if err != nil {
		t.Fatal(err)
	}
	gws, err := weights.Synthesize(gru)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gru.Run(tensor.New(1), gws); err != nil == false {
		t.Error("Run on an RNN should fail")
	}
	if _, err := gru.RunSequence(nil, gws); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := gru.RunSequence([]*tensor.Tensor{tensor.New(3)}, gws); err == nil {
		t.Error("wrong feature count should fail")
	}
}

func TestRunRNNEndToEnd(t *testing.T) {
	for _, name := range networks.RNNNames() {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := weights.Synthesize(n)
		if err != nil {
			t.Fatal(err)
		}
		// Two normalized "bitcoin prices".
		day1 := tensor.New(1)
		day1.Fill(0.42)
		day2 := tensor.New(1)
		day2.Fill(0.45)
		res, err := n.RunSequence([]*tensor.Tensor{day1, day2}, ws)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Output.Len() != 1 {
			t.Errorf("%s output length %d, want 1", name, res.Output.Len())
		}
		if res.PredictedClass != -1 {
			t.Errorf("%s is a regressor; PredictedClass should be -1", name)
		}
		// The prediction must depend on the input sequence.
		day2b := tensor.New(1)
		day2b.Fill(0.9)
		res2, err := n.RunSequence([]*tensor.Tensor{day1, day2b}, ws)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output.Data()[0] == res2.Output.Data()[0] {
			t.Errorf("%s prediction should change with the input sequence", name)
		}
	}
}

func TestEffectiveClassDefaults(t *testing.T) {
	cases := map[networks.LayerType]string{
		networks.LayerConv:       networks.ClassConv,
		networks.LayerPool:       networks.ClassPooling,
		networks.LayerGlobalPool: networks.ClassPooling,
		networks.LayerFC:         networks.ClassFC,
		networks.LayerLRN:        networks.ClassNorm,
		networks.LayerBatchNorm:  networks.ClassBatchNorm,
		networks.LayerScale:      networks.ClassScale,
		networks.LayerReLU:       networks.ClassReLU,
		networks.LayerEltwise:    networks.ClassEltwise,
		networks.LayerLSTM:       networks.ClassRNN,
		networks.LayerGRU:        networks.ClassRNN,
		networks.LayerSoftmax:    networks.ClassOther,
		networks.LayerConcat:     networks.ClassOther,
	}
	for lt, want := range cases {
		l := networks.Layer{Type: lt}
		if got := l.EffectiveClass(); got != want {
			t.Errorf("EffectiveClass(%v) = %q, want %q", lt, got, want)
		}
	}
	override := networks.Layer{Type: networks.LayerConv, Class: networks.ClassFireExpand}
	if override.EffectiveClass() != networks.ClassFireExpand {
		t.Error("explicit class should win")
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
