package networks_test

import (
	"testing"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
	"tango/internal/weights"
)

// buildPlan loads a network with its synthesized weights and returns the
// resolved plan.
func buildPlan(t testing.TB, name string) *networks.Plan {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := n.NewPlan(ws)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cnnInput builds a deterministic input for a CNN plan.
func cnnInput(p *networks.Plan, seed uint64) *tensor.Tensor {
	in := tensor.New(p.Network().InputShape...)
	in.FillUniform(tensor.NewRNG(seed), 0, 1)
	return in
}

// rnnSequence builds a deterministic input sequence for an RNN plan.
func rnnSequence(p *networks.Plan, seed uint64) []*tensor.Tensor {
	n := p.Network()
	steps := n.SeqLen
	if steps <= 0 {
		steps = 2
	}
	r := tensor.NewRNG(seed)
	seq := make([]*tensor.Tensor, steps)
	for i := range seq {
		x := tensor.New(n.InputShape...)
		x.Fill(0.3 + 0.4*r.Float32())
		seq[i] = x
	}
	return seq
}

// requireBitEqual fails unless a and b are bit-identical tensors.
func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape(), want.Shape())
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("%s: element %d = %g, want %g (bit-exact)", label, i, got.Data()[i], v)
		}
	}
}

// TestPlanGoldenEquivalence validates the compute engine end to end on every
// network of the suite (and the MobileNet extension): the GEMM path — serial
// and parallel, with and without a scratch — must reproduce the direct
// reference kernels bit for bit on every layer output.
func TestPlanGoldenEquivalence(t *testing.T) {
	names := append(append([]string{}, networks.Names()...), networks.ExtensionNames()...)
	for _, name := range names {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			t.Logf("skipping %s in -short mode (direct reference is slow)", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)

			direct := nn.NewScratch()
			direct.SetDirect(true)
			serial := nn.NewScratch()
			parallel := nn.NewScratch()
			parallel.SetWorkers(4)

			run := func(s *nn.Scratch) (*networks.Result, error) {
				if p.Network().Kind == networks.KindCNN {
					return p.Run(cnnInput(p, 42), s)
				}
				return p.RunSequence(rnnSequence(p, 42), s)
			}

			ref, err := run(direct)
			if err != nil {
				t.Fatal(err)
			}
			// Direct-mode outputs alias the direct scratch's arena, which no
			// other run below touches, so they stay valid for comparison.
			for _, c := range []struct {
				label string
				s     *nn.Scratch
			}{{"engine", serial}, {"parallel", parallel}, {"no-scratch", nil}} {
				got, err := run(c.s)
				if err != nil {
					t.Fatalf("%s: %v", c.label, err)
				}
				if got.PredictedClass != ref.PredictedClass {
					t.Fatalf("%s: predicted class %d, want %d", c.label, got.PredictedClass, ref.PredictedClass)
				}
				for li := range ref.LayerOutputs {
					requireBitEqual(t, c.label+"/"+p.Network().Layers[li].Name,
						got.LayerOutputs[li], ref.LayerOutputs[li])
				}
			}
		})
	}
}

// TestPlanScratchReuseIsDeterministic verifies that repeated runs on one
// scratch (arena reuse) keep producing identical outputs.
func TestPlanScratchReuseIsDeterministic(t *testing.T) {
	p := buildPlan(t, "CifarNet")
	s := nn.NewScratch()
	in := cnnInput(p, 7)
	first, err := p.Run(in, s)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Output.Clone()
	for i := 0; i < 3; i++ {
		res, err := p.Run(in, s)
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, "rerun", res.Output, want)
	}
}

// TestPlanRunAllocations guards the steady-state allocation budget of the
// compute engine: after warm-up, a CNN inference run with a reused scratch
// must stay within a handful of small allocations (the Result header).
func TestPlanRunAllocations(t *testing.T) {
	p := buildPlan(t, "CifarNet")
	s := nn.NewScratch()
	in := cnnInput(p, 3)
	if _, err := p.Run(in, s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := p.Run(in, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state CNN run allocated %v times, want <= 2", allocs)
	}
}

// TestPlanRunSequenceAllocations guards the RNN steady-state allocation
// budget.
func TestPlanRunSequenceAllocations(t *testing.T) {
	for _, name := range networks.RNNNames() {
		p := buildPlan(t, name)
		s := nn.NewScratch()
		seq := rnnSequence(p, 3)
		if _, err := p.RunSequence(seq, s); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := p.RunSequence(seq, s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 2 {
			t.Fatalf("%s: steady-state RNN run allocated %v times, want <= 2", name, allocs)
		}
	}
}

// TestNewPlanErrors covers plan construction failure modes.
func TestNewPlanErrors(t *testing.T) {
	n, err := networks.New("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	empty := weights.NewSet("CifarNet")
	if _, err := n.NewPlan(empty); err == nil {
		t.Fatal("NewPlan with empty weights must fail")
	}
	unbuilt := &networks.Network{Name: "x", InputShape: []int{1}}
	if _, err := unbuilt.NewPlan(empty); err == nil {
		t.Fatal("NewPlan before Build must fail")
	}
}

// TestPlanKindMismatch verifies Run/RunSequence reject the wrong workload
// kind.
func TestPlanKindMismatch(t *testing.T) {
	cnn := buildPlan(t, "CifarNet")
	if _, err := cnn.RunSequence(rnnSequence(cnn, 1), nil); err == nil {
		t.Fatal("RunSequence on a CNN plan must fail")
	}
	rnn := buildPlan(t, "GRU")
	if _, err := rnn.Run(tensor.New(1), nil); err == nil {
		t.Fatal("Run on an RNN plan must fail")
	}
}
