package networks

import "tango/internal/nn"

// NewCifarNet returns the CifarNet workload: three convolution layers and two
// fully-connected layers over 3x32x32 inputs, classifying nine traffic-signal
// classes as in the paper's pre-trained model (Table I).
func NewCifarNet() (*Network, error) {
	n := &Network{
		Name:       "CifarNet",
		Kind:       KindCNN,
		InputShape: []int{3, 32, 32},
		NumClasses: 9,
	}
	prev := InputRef
	add := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = len(n.Layers) - 1
		return prev
	}

	// conv1: 32 filters 5x5, pad 2 -> 32x32x32, fused ReLU.
	add(Layer{Name: "conv1", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 3, OutChannels: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
	}})
	// pool1: max 3x3 stride 2 -> 32x16x16.
	add(Layer{Name: "pool1", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
	}})
	// conv2: 32 filters 5x5, pad 2 -> 32x16x16, fused ReLU.
	add(Layer{Name: "conv2", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 32, OutChannels: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
	}})
	// pool2: avg 3x3 stride 2 -> 32x8x8.
	add(Layer{Name: "pool2", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.AvgPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
	}})
	// conv3: 64 filters 5x5, pad 2 -> 64x8x8, fused ReLU.
	add(Layer{Name: "conv3", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 32, OutChannels: 64, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
	}})
	// pool3: avg 3x3 stride 2 -> 64x4x4.
	add(Layer{Name: "pool3", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.AvgPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
	}})
	// fc1: 64 outputs (Table III: blockDim (64,1,1)).
	add(Layer{Name: "fc1", Type: LayerFC, FCOut: 64, FusedReLU: true})
	// fc2: 9 traffic-signal classes.
	add(Layer{Name: "fc2", Type: LayerFC, FCOut: 9})
	// softmax converts scores to class probabilities.
	add(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
