package networks

import (
	"fmt"
	"math"

	"tango/internal/nn"
	"tango/internal/tensor"
)

// BatchResult carries the outputs of one batched native inference run.
//
// When the run used a non-nil nn.Scratch, Output and PredictedClasses alias
// the scratch's reusable storage: they are valid until the next run on the
// same Scratch.  Runs without a Scratch return freshly allocated storage.
type BatchResult struct {
	// N is the batch size.
	N int
	// Output is the final layer's batched output, one sample per leading
	// row: rank-2 (N, classes) for the suite's CNN classifiers and
	// (N, 1) for the RNN regression heads.
	Output *tensor.Tensor
	// PredictedClasses holds the arg-max class per sample for CNN
	// classifiers; nil for regression outputs.
	PredictedClasses []int
}

// RunBatch executes a CNN natively over a batch of inputs stacked along a
// leading dimension: input is rank-4 (N, C, H, W) with each sample a
// contiguous CHW block.  The heavy layers fold the batch into their GEMM
// column dimension (see the nn batched engine), so results are bit-identical
// to calling Run on each sample separately, for any Scratch configuration
// and worker count.
func (p *Plan) RunBatch(input *tensor.Tensor, s *nn.Scratch) (*BatchResult, error) {
	n := p.net
	if n.Kind != KindCNN {
		return nil, fmt.Errorf("networks: %s is an RNN; use RunSequenceBatch", n.Name)
	}
	if input == nil || input.Rank() != 4 || !equalShape(input.Shape()[1:], n.InputShape) {
		got := []int(nil)
		if input != nil {
			got = input.Shape()
		}
		return nil, fmt.Errorf("networks: %s batch: %w: expects shape (N, %v), got %v",
			n.Name, tensor.ErrShape, n.InputShape, got)
	}
	nImg := input.Dim(0)

	s.BeginRun()
	pks := p.packsFor(s.Numerics())
	outs := s.LayerOutputs(len(n.Layers))
	for li := range p.layers {
		pl := &p.layers[li]
		out, err := p.runLayerBatch(s, li, pl, input, outs, pks)
		if err != nil {
			return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, pl.l.Name, err)
		}
		if pl.l.FusedReLU {
			nn.ReLUInPlace(out)
		}
		outs[li] = out
	}
	final := outs[len(outs)-1]
	return batchResult(s, final, nImg, true), nil
}

// runLayerBatch executes a single non-recurrent layer on the batched engine.
func (p *Plan) runLayerBatch(s *nn.Scratch, li int, pl *planLayer, input *tensor.Tensor, outs []*tensor.Tensor, pks *planPacks) (*tensor.Tensor, error) {
	l := pl.l
	in0 := p.resolveInput(li, 0, input, outs)
	switch l.Type {
	case LayerConv:
		return s.Conv2DBatchPacked(in0, pl.w, pl.b, l.Conv, pks.convAt(li))
	case LayerPool:
		return s.Pool2DBatch(in0, l.Pool)
	case LayerFC:
		return s.FullyConnectedBatchPacked(in0, pl.w, pl.b, l.FCOut, pks.fcAt(li))
	case LayerLRN:
		return s.LRNBatch(in0, l.LRN)
	case LayerBatchNorm:
		return s.BatchNormBatch(in0, nn.BatchNormParams{Mean: pl.mean, Variance: pl.variance})
	case LayerScale:
		return s.ScaleBatch(in0, pl.gamma, pl.beta)
	case LayerReLU:
		return s.ReLUBatch(in0)
	case LayerEltwise:
		return s.EltwiseAddBatch(in0, p.resolveInput(li, 1, input, outs))
	case LayerConcat:
		if len(l.Inputs) == 2 {
			return s.ConcatChannelsBatch(p.resolveInput(li, 0, input, outs), p.resolveInput(li, 1, input, outs))
		}
		parts := make([]*tensor.Tensor, len(l.Inputs))
		for i := range l.Inputs {
			parts[i] = p.resolveInput(li, i, input, outs)
		}
		return s.ConcatChannelsBatch(parts...)
	case LayerSoftmax:
		return s.SoftmaxBatch(in0)
	case LayerGlobalPool:
		return s.GlobalAvgPoolBatch(in0)
	default:
		return nil, fmt.Errorf("unsupported layer type %v in CNN graph", l.Type)
	}
}

// RunSequenceBatch executes an RNN natively over a batch of equal-length
// sequences.  seq is rank-3 (steps, N, features): time-major with each step
// a contiguous sample-major block.  The recurrent gates run as batched GEMMs
// with per-sample hidden (and cell) state, so results are bit-identical to
// calling RunSequence on each sequence separately.
func (p *Plan) RunSequenceBatch(seq *tensor.Tensor, s *nn.Scratch) (*BatchResult, error) {
	n := p.net
	if n.Kind != KindRNN {
		return nil, fmt.Errorf("networks: %s is a CNN; use RunBatch", n.Name)
	}
	inSize := n.InputShape[0]
	if seq == nil || seq.Rank() != 3 || seq.Dim(2) != inSize {
		got := []int(nil)
		if seq != nil {
			got = seq.Shape()
		}
		return nil, fmt.Errorf("networks: %s batch: %w: expects shape (steps, N, %d), got %v",
			n.Name, tensor.ErrShape, inSize, got)
	}
	steps, nSeq := seq.Dim(0), seq.Dim(1)

	s.BeginRun()
	pks := p.packsFor(s.Numerics())
	outs := s.LayerOutputs(len(n.Layers))
	var current *tensor.Tensor
	for li := range p.layers {
		pl := &p.layers[li]
		l := pl.l
		var err error
		switch l.Type {
		case LayerLSTM:
			current, err = s.LSTMSeqBatchPacked(pl.lstm, pks.rnnAt(li), seq.Data(), nSeq, steps)
		case LayerGRU:
			current, err = s.GRUSeqBatchPacked(pl.gru, pks.rnnAt(li), seq.Data(), nSeq, steps)
		case LayerFC:
			if current == nil {
				err = fmt.Errorf("FC before recurrent layer")
				break
			}
			current, err = s.FullyConnectedBatchPacked(current, pl.w, pl.b, l.FCOut, pks.fcAt(li))
		default:
			err = fmt.Errorf("unsupported layer type %v in RNN graph", l.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("networks: %s layer %q: %w", n.Name, l.Name, err)
		}
		if l.FusedReLU && current != nil {
			nn.ReLUInPlace(current)
		}
		outs[li] = current
	}
	return batchResult(s, current, nSeq, false), nil
}

// batchResult assembles a BatchResult, computing per-sample arg-max classes
// for classifiers into the scratch's reusable prediction slice.
func batchResult(s *nn.Scratch, final *tensor.Tensor, nSamples int, classify bool) *BatchResult {
	res := &BatchResult{N: nSamples, Output: final}
	if !classify {
		return res
	}
	preds := s.Ints(nSamples)
	f := final.Len() / nSamples
	data := final.Data()
	for i := 0; i < nSamples; i++ {
		preds[i] = argmaxRow(data[i*f : (i+1)*f])
	}
	res.PredictedClasses = preds
	return res
}

// argmaxRow returns the index of the largest element with exactly the
// comparison sequence of tensor.MaxIndex (start at -Inf, ties and NaNs
// resolve identically), so batched predictions match the single-sample path
// on every input.
func argmaxRow(row []float32) int {
	best := 0
	bestV := float32(math.Inf(-1))
	for i, v := range row {
		if v > bestV {
			bestV = v
			best = i
		}
	}
	return best
}
