package networks_test

import (
	"strings"
	"testing"

	"tango/internal/networks"
)

func TestExtensionNames(t *testing.T) {
	exts := networks.ExtensionNames()
	if len(exts) != 1 || exts[0] != "MobileNet" {
		t.Fatalf("ExtensionNames() = %v, want [MobileNet]", exts)
	}
	// Extensions must not leak into the paper's seven-network suite.
	for _, name := range networks.Names() {
		if name == "MobileNet" {
			t.Error("MobileNet must not be part of the figure-reproduction set")
		}
	}
}

func TestMobileNetStructure(t *testing.T) {
	n, err := networks.New("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != networks.KindCNN || n.NumClasses != 1000 {
		t.Errorf("MobileNet identity wrong: %v %d", n.Kind, n.NumClasses)
	}
	depthwise, pointwise := 0, 0
	for _, l := range n.Layers {
		if l.Type != networks.LayerConv {
			continue
		}
		if strings.HasSuffix(l.Name, "/dw") {
			depthwise++
			if l.Conv.Groups != l.Conv.InChannels {
				t.Errorf("%s: depthwise conv must have one group per channel", l.Name)
			}
		}
		if strings.HasSuffix(l.Name, "/pw") {
			pointwise++
			if l.Conv.KernelH != 1 || l.Conv.KernelW != 1 {
				t.Errorf("%s: pointwise conv must be 1x1", l.Name)
			}
		}
	}
	// MobileNet v1 has 13 depthwise-separable blocks.
	if depthwise != 13 || pointwise != 13 {
		t.Errorf("MobileNet has %d depthwise and %d pointwise convs, want 13 each", depthwise, pointwise)
	}
	cases := map[string][]int{
		"conv1":    {32, 112, 112},
		"sep02/pw": {64, 112, 112},
		"sep03/pw": {128, 56, 56},
		"sep07/pw": {512, 14, 14},
		"sep13/pw": {1024, 7, 7},
		"sep14/pw": {1024, 7, 7},
		"pool":     {1024},
		"fc1000":   {1000},
	}
	for name, want := range cases {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("MobileNet missing layer %q", name)
			continue
		}
		if !shapeEq(l.OutShape, want) {
			t.Errorf("MobileNet %s output %v, want %v", name, l.OutShape, want)
		}
	}
	// MobileNet's point is parameter efficiency: far fewer weights than VGG.
	wb, err := n.WeightBytes()
	if err != nil {
		t.Fatal(err)
	}
	if wb > 25<<20 {
		t.Errorf("MobileNet weights %d bytes, expected ~17MB (4.2M parameters)", wb)
	}
}
