package networks

import "tango/internal/nn"

// NewAlexNet returns the AlexNet workload: five convolution layers, two
// local-response-normalization layers, three max-pooling layers and three
// fully-connected layers over 3x227x227 inputs, classifying the 1000 ImageNet
// classes of the reference pre-trained model.
func NewAlexNet() (*Network, error) {
	n := &Network{
		Name:       "AlexNet",
		Kind:       KindCNN,
		InputShape: []int{3, 227, 227},
		NumClasses: 1000,
	}
	prev := InputRef
	add := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = len(n.Layers) - 1
		return prev
	}

	// conv1: 96 filters 11x11 stride 4 -> 96x55x55.
	add(Layer{Name: "conv1", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 3, OutChannels: 96, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4,
	}})
	// norm1: local response normalization across channels.
	add(Layer{Name: "norm1", Type: LayerLRN, LRN: nn.DefaultLRN()})
	// pool1: max 3x3 stride 2 -> 96x27x27.
	add(Layer{Name: "pool1", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
	}})
	// conv2: 256 filters 5x5 pad 2, 2 groups -> 256x27x27.
	add(Layer{Name: "conv2", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 96, OutChannels: 256, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, Groups: 2,
	}})
	// norm2.
	add(Layer{Name: "norm2", Type: LayerLRN, LRN: nn.DefaultLRN()})
	// pool2: max 3x3 stride 2 -> 256x13x13.
	add(Layer{Name: "pool2", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
	}})
	// conv3: 384 filters 3x3 pad 1 -> 384x13x13.
	add(Layer{Name: "conv3", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 256, OutChannels: 384, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}})
	// conv4: 384 filters 3x3 pad 1, 2 groups -> 384x13x13.
	add(Layer{Name: "conv4", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 384, OutChannels: 384, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2,
	}})
	// conv5: 256 filters 3x3 pad 1, 2 groups -> 256x13x13.
	add(Layer{Name: "conv5", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 384, OutChannels: 256, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2,
	}})
	// pool5: max 3x3 stride 2 -> 256x6x6.
	add(Layer{Name: "pool5", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2,
	}})
	// fc6, fc7: 4096 outputs; fc8: 1000 ImageNet classes.
	add(Layer{Name: "fc6", Type: LayerFC, FCOut: 4096, FusedReLU: true})
	add(Layer{Name: "fc7", Type: LayerFC, FCOut: 4096, FusedReLU: true})
	add(Layer{Name: "fc8", Type: LayerFC, FCOut: 1000})
	add(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
