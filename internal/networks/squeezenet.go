package networks

import (
	"fmt"

	"tango/internal/nn"
)

// fireSpec describes the channel counts of one SqueezeNet fire module.
type fireSpec struct {
	name      string
	squeeze   int
	expand1x1 int
	expand3x3 int
}

// NewSqueezeNet returns the SqueezeNet v1.0 workload: two convolution layers,
// eight fire modules and a global average pooling layer over 3x227x227
// inputs, classifying 1000 ImageNet classes.  Each fire module contributes a
// squeeze 1x1 convolution and two expand convolutions (1x1 and 3x3) followed
// by a channel concatenation, matching Table III's per-kernel decomposition.
func NewSqueezeNet() (*Network, error) {
	n := &Network{
		Name:       "SqueezeNet",
		Kind:       KindCNN,
		InputShape: []int{3, 227, 227},
		NumClasses: 1000,
	}
	idx := func() int { return len(n.Layers) - 1 }
	prev := InputRef

	addSeq := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = idx()
		return prev
	}

	// conv1: 96 filters 7x7 stride 2 -> 96x111x111.
	addSeq(Layer{Name: "conv1", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 3, OutChannels: 96, KernelH: 7, KernelW: 7, StrideH: 2, StrideW: 2,
	}})
	// pool1: max 3x3 stride 2 (ceil) -> 96x55x55.
	addSeq(Layer{Name: "pool1", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true,
	}})

	inCh := 96
	addFire := func(f fireSpec) error {
		if inCh <= 0 {
			return fmt.Errorf("networks: fire module %s has no input channels", f.name)
		}
		squeezeIn := prev
		n.Layers = append(n.Layers, Layer{
			Name: f.name + "/squeeze1x1", Type: LayerConv, Class: ClassFireSqueeze, FusedReLU: true,
			Inputs: []int{squeezeIn},
			Conv: nn.ConvParams{InChannels: inCh, OutChannels: f.squeeze,
				KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1},
		})
		squeezeOut := idx()
		n.Layers = append(n.Layers, Layer{
			Name: f.name + "/expand1x1", Type: LayerConv, Class: ClassFireExpand, FusedReLU: true,
			Inputs: []int{squeezeOut},
			Conv: nn.ConvParams{InChannels: f.squeeze, OutChannels: f.expand1x1,
				KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1},
		})
		e1 := idx()
		n.Layers = append(n.Layers, Layer{
			Name: f.name + "/expand3x3", Type: LayerConv, Class: ClassFireExpand, FusedReLU: true,
			Inputs: []int{squeezeOut},
			Conv: nn.ConvParams{InChannels: f.squeeze, OutChannels: f.expand3x3,
				KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		})
		e3 := idx()
		n.Layers = append(n.Layers, Layer{
			Name: f.name + "/concat", Type: LayerConcat, Class: ClassOther,
			Inputs: []int{e1, e3},
		})
		prev = idx()
		inCh = f.expand1x1 + f.expand3x3
		return nil
	}

	fires := []fireSpec{
		{"fire2", 16, 64, 64},
		{"fire3", 16, 64, 64},
		{"fire4", 32, 128, 128},
	}
	for _, f := range fires {
		if err := addFire(f); err != nil {
			return nil, err
		}
	}
	// pool4: max 3x3 stride 2 (ceil) -> 27x27.
	addSeq(Layer{Name: "pool4", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true,
	}})
	fires = []fireSpec{
		{"fire5", 32, 128, 128},
		{"fire6", 48, 192, 192},
		{"fire7", 48, 192, 192},
		{"fire8", 64, 256, 256},
	}
	for _, f := range fires {
		if err := addFire(f); err != nil {
			return nil, err
		}
	}
	// pool8: max 3x3 stride 2 (ceil) -> 13x13.
	addSeq(Layer{Name: "pool8", Type: LayerPool, Pool: nn.PoolParams{
		Kind: nn.MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true,
	}})
	if err := addFire(fireSpec{"fire9", 64, 256, 256}); err != nil {
		return nil, err
	}
	// conv10: 1000 filters 1x1 -> 1000x13x13 (the paper notes this is the
	// longest layer of SqueezeNet).
	addSeq(Layer{Name: "conv10", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
		InChannels: 512, OutChannels: 1000, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
	}})
	// Global average pooling reduces each class map to one score.
	addSeq(Layer{Name: "pool10", Type: LayerGlobalPool})
	addSeq(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
