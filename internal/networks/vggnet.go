package networks

import (
	"fmt"

	"tango/internal/nn"
)

// NewVGGNet returns the 16-layer VGGNet workload: thirteen 3x3 convolution
// layers, five max-pooling layers, three fully-connected layers and a softmax
// over 3x224x224 inputs with 1000 ImageNet classes.
func NewVGGNet() (*Network, error) {
	n := &Network{
		Name:       "VGGNet",
		Kind:       KindCNN,
		InputShape: []int{3, 224, 224},
		NumClasses: 1000,
	}
	prev := InputRef
	add := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = len(n.Layers) - 1
		return prev
	}
	conv := func(name string, inC, outC int) {
		add(Layer{Name: name, Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
			InChannels: inC, OutChannels: outC, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		}})
	}
	pool := func(name string) {
		add(Layer{Name: name, Type: LayerPool, Pool: nn.PoolParams{
			Kind: nn.MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2,
		}})
	}

	type block struct {
		convs int
		width int
	}
	blocks := []block{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	inC := 3
	for bi, b := range blocks {
		for c := 0; c < b.convs; c++ {
			conv(fmt.Sprintf("conv%d_%d", bi+1, c+1), inC, b.width)
			inC = b.width
		}
		pool(fmt.Sprintf("pool%d", bi+1))
	}

	add(Layer{Name: "fc6", Type: LayerFC, FCOut: 4096, FusedReLU: true})
	add(Layer{Name: "fc7", Type: LayerFC, FCOut: 4096, FusedReLU: true})
	add(Layer{Name: "fc8", Type: LayerFC, FCOut: 1000})
	add(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}
