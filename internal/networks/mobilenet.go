package networks

import "tango/internal/nn"

// NewMobileNet returns the MobileNet v1 workload built from depthwise
// separable convolutions (a 3x3 depthwise convolution followed by a 1x1
// pointwise convolution).  The paper lists MobileNet as the next network
// being added to the suite; it is provided here as an extension benchmark and
// is not part of the seven-network figure set.
func NewMobileNet() (*Network, error) {
	n := &Network{
		Name:       "MobileNet",
		Kind:       KindCNN,
		InputShape: []int{3, 224, 224},
		NumClasses: 1000,
	}
	prev := InputRef
	add := func(l Layer) int {
		l.Inputs = []int{prev}
		n.Layers = append(n.Layers, l)
		prev = len(n.Layers) - 1
		return prev
	}
	conv := func(name string, inC, outC, stride int) {
		add(Layer{Name: name, Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
			InChannels: inC, OutChannels: outC,
			KernelH: 3, KernelW: 3, StrideH: stride, StrideW: stride, PadH: 1, PadW: 1,
		}})
	}
	// depthwise 3x3 (one filter per channel) then pointwise 1x1.
	separable := func(name string, inC, outC, stride int) {
		add(Layer{Name: name + "/dw", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
			InChannels: inC, OutChannels: inC, Groups: inC,
			KernelH: 3, KernelW: 3, StrideH: stride, StrideW: stride, PadH: 1, PadW: 1,
		}})
		add(Layer{Name: name + "/pw", Type: LayerConv, FusedReLU: true, Conv: nn.ConvParams{
			InChannels: inC, OutChannels: outC,
			KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
		}})
	}

	// Stem: 3x224x224 -> 32x112x112.
	conv("conv1", 3, 32, 2)
	type block struct {
		in, out, stride int
	}
	blocks := []block{
		{32, 64, 1},
		{64, 128, 2},
		{128, 128, 1},
		{128, 256, 2},
		{256, 256, 1},
		{256, 512, 2},
		{512, 512, 1},
		{512, 512, 1},
		{512, 512, 1},
		{512, 512, 1},
		{512, 512, 1},
		{512, 1024, 2},
		{1024, 1024, 1},
	}
	for i, bl := range blocks {
		separable(layerName("sep", i+2), bl.in, bl.out, bl.stride)
	}
	add(Layer{Name: "pool", Type: LayerGlobalPool})
	add(Layer{Name: "fc1000", Type: LayerFC, FCOut: 1000})
	add(Layer{Name: "softmax", Type: LayerSoftmax, Class: ClassOther})

	if err := n.Build(); err != nil {
		return nil, err
	}
	return n, nil
}

func layerName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
