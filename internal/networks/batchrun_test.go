package networks_test

import (
	"errors"
	"math"
	"testing"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
)

// cnnBatch stacks n deterministic sample images into a rank-4 batch whose
// sample i equals cnnInput(p, seed+i).
func cnnBatch(p *networks.Plan, seed uint64, n int) *tensor.Tensor {
	shape := p.Network().InputShape
	batch := tensor.New(append([]int{n}, shape...)...)
	sample := batch.Len() / n
	for i := 0; i < n; i++ {
		in := cnnInput(p, seed+uint64(i))
		copy(batch.Data()[i*sample:(i+1)*sample], in.Data())
	}
	return batch
}

// rnnBatch stacks n deterministic sample sequences into a rank-3
// (steps, n, features) batch whose sequence i equals rnnSequence(p, seed+i).
func rnnBatch(p *networks.Plan, seed uint64, n int) *tensor.Tensor {
	inSize := p.Network().InputShape[0]
	steps := p.Network().SeqLen
	if steps <= 0 {
		steps = 2
	}
	batch := tensor.New(steps, n, inSize)
	for i := 0; i < n; i++ {
		seq := rnnSequence(p, seed+uint64(i))
		for t, x := range seq {
			copy(batch.Data()[(t*n+i)*inSize:(t*n+i+1)*inSize], x.Data())
		}
	}
	return batch
}

// requireSampleBits fails unless row i of the batched output is bit-identical
// to the single-sample output tensor.
func requireSampleBits(t *testing.T, label string, batch *tensor.Tensor, i, n int, want *tensor.Tensor) {
	t.Helper()
	sample := batch.Len() / n
	if sample != want.Len() {
		t.Fatalf("%s: batched sample has %d elements, single has %d", label, sample, want.Len())
	}
	got := batch.Data()[i*sample : (i+1)*sample]
	for j, v := range want.Data() {
		if math.Float32bits(got[j]) != math.Float32bits(v) {
			t.Fatalf("%s: sample %d element %d = %x, want %x (bit-exact)",
				label, i, j, math.Float32bits(got[j]), math.Float32bits(v))
		}
	}
}

// TestRunBatchGoldenEquivalence is the batched-inference golden test: for
// every network of the suite (and the MobileNet extension), a batched run —
// serial and parallel — must reproduce the single-sample engine bit for bit
// on every sample, including the predicted classes.
func TestRunBatchGoldenEquivalence(t *testing.T) {
	names := append(append([]string{}, networks.Names()...), networks.ExtensionNames()...)
	for _, name := range names {
		if testing.Short() && (name == "ResNet" || name == "VGGNet") {
			t.Logf("skipping %s in -short mode (largest engine runs)", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			p := buildPlan(t, name)
			isCNN := p.Network().Kind == networks.KindCNN
			batchN := 3
			if isCNN && len(p.Network().Layers) > 12 {
				batchN = 2 // keep the deep CNNs affordable
			}

			serial := nn.NewScratch()
			parallel := nn.NewScratch()
			parallel.SetWorkers(4)

			// Single-sample references via the established engine path.
			singles := make([]*networks.Result, batchN)
			for i := 0; i < batchN; i++ {
				var err error
				if isCNN {
					singles[i], err = p.Run(cnnInput(p, 42+uint64(i)), nil)
				} else {
					singles[i], err = p.RunSequence(rnnSequence(p, 42+uint64(i)), nil)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			for _, c := range []struct {
				label string
				s     *nn.Scratch
			}{{"serial", serial}, {"parallel", parallel}, {"no-scratch", nil}} {
				var res *networks.BatchResult
				var err error
				if isCNN {
					res, err = p.RunBatch(cnnBatch(p, 42, batchN), c.s)
				} else {
					res, err = p.RunSequenceBatch(rnnBatch(p, 42, batchN), c.s)
				}
				if err != nil {
					t.Fatalf("%s: %v", c.label, err)
				}
				if res.N != batchN {
					t.Fatalf("%s: batch result N = %d, want %d", c.label, res.N, batchN)
				}
				for i := 0; i < batchN; i++ {
					requireSampleBits(t, c.label, res.Output, i, batchN, singles[i].Output)
					if isCNN && res.PredictedClasses[i] != singles[i].PredictedClass {
						t.Fatalf("%s: sample %d predicted %d, want %d",
							c.label, i, res.PredictedClasses[i], singles[i].PredictedClass)
					}
				}
			}
		})
	}
}

// TestRunBatchOfOneMatchesSingle pins the batch-of-1 degenerate case: it
// must traverse the batched path and still equal the single-sample result
// bit for bit.
func TestRunBatchOfOneMatchesSingle(t *testing.T) {
	p := buildPlan(t, "CifarNet")
	single, err := p.Run(cnnInput(p, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunBatch(cnnBatch(p, 9, 1), nn.NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	requireSampleBits(t, "batch-of-1", res.Output, 0, 1, single.Output)
	if res.PredictedClasses[0] != single.PredictedClass {
		t.Fatalf("predicted %d, want %d", res.PredictedClasses[0], single.PredictedClass)
	}
}

// TestRunBatchScratchReuse verifies batched runs reuse scratch storage
// deterministically.
func TestRunBatchScratchReuse(t *testing.T) {
	p := buildPlan(t, "CifarNet")
	s := nn.NewScratch()
	in := cnnBatch(p, 5, 4)
	first, err := p.RunBatch(in, s)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Output.Clone()
	for i := 0; i < 3; i++ {
		res, err := p.RunBatch(in, s)
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, "rerun", res.Output, want)
	}
}

// TestRunBatchAllocations guards the steady-state allocation budget of
// batched inference: after warm-up, a batched run with a reused scratch must
// stay within the same <= 2 allocations as the single-sample path.
func TestRunBatchAllocations(t *testing.T) {
	p := buildPlan(t, "CifarNet")
	s := nn.NewScratch()
	in := cnnBatch(p, 3, 4)
	if _, err := p.RunBatch(in, s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := p.RunBatch(in, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state batched CNN run allocated %v times, want <= 2", allocs)
	}

	rp := buildPlan(t, "LSTM")
	rs := nn.NewScratch()
	seq := rnnBatch(rp, 3, 4)
	if _, err := rp.RunSequenceBatch(seq, rs); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := rp.RunSequenceBatch(seq, rs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state batched RNN run allocated %v times, want <= 2", allocs)
	}
}

// TestRunBatchErrors covers the batched validation paths.
func TestRunBatchErrors(t *testing.T) {
	cnn := buildPlan(t, "CifarNet")
	rnn := buildPlan(t, "LSTM")

	if _, err := cnn.RunBatch(nil, nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("nil batch: got %v, want ErrShape", err)
	}
	if _, err := cnn.RunBatch(tensor.New(3, 32, 32), nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("rank-3 batch: got %v, want ErrShape", err)
	}
	if _, err := cnn.RunBatch(tensor.New(2, 3, 16, 16), nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("wrong sample shape: got %v, want ErrShape", err)
	}
	if _, err := cnn.RunSequenceBatch(tensor.New(2, 2, 1), nil); err == nil {
		t.Fatal("RunSequenceBatch on a CNN must fail")
	}
	if _, err := rnn.RunBatch(tensor.New(1, 3, 32, 32), nil); err == nil {
		t.Fatal("RunBatch on an RNN must fail")
	}
	if _, err := rnn.RunSequenceBatch(tensor.New(2, 2, 5), nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("wrong feature width: got %v, want ErrShape", err)
	}
	if _, err := rnn.RunSequenceBatch(nil, nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("nil sequence batch: got %v, want ErrShape", err)
	}
}
