// Package networks defines the seven DNN workloads of the Tango benchmark
// suite — CifarNet, AlexNet, SqueezeNet, ResNet-50, VGGNet-16 (CNNs) and GRU,
// LSTM (RNNs) — as explicit layer graphs with reference-model shapes, and
// provides a native inference runner that executes them with the fundamental
// math kernels in package nn.
package networks

import (
	"fmt"

	"tango/internal/nn"
	"tango/internal/tensor"
)

// Kind distinguishes convolutional from recurrent workloads.
type Kind uint8

// Workload kinds.
const (
	KindCNN Kind = iota
	KindRNN
)

// String returns "CNN" or "RNN".
func (k Kind) String() string {
	if k == KindRNN {
		return "RNN"
	}
	return "CNN"
}

// LayerType identifies the computation a layer performs.
type LayerType uint8

// Layer types used across the seven networks.
const (
	LayerConv LayerType = iota
	LayerPool
	LayerFC
	LayerLRN
	LayerBatchNorm
	LayerScale
	LayerReLU
	LayerEltwise
	LayerConcat
	LayerSoftmax
	LayerGlobalPool
	LayerLSTM
	LayerGRU
	// NumLayerTypes is the number of defined layer types.
	NumLayerTypes
)

var layerTypeNames = [NumLayerTypes]string{
	LayerConv:       "conv",
	LayerPool:       "pool",
	LayerFC:         "fc",
	LayerLRN:        "norm",
	LayerBatchNorm:  "batchnorm",
	LayerScale:      "scale",
	LayerReLU:       "relu",
	LayerEltwise:    "eltwise",
	LayerConcat:     "concat",
	LayerSoftmax:    "softmax",
	LayerGlobalPool: "globalpool",
	LayerLSTM:       "lstm",
	LayerGRU:        "gru",
}

// String returns the lower-case layer type name.
func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("layer(%d)", uint8(t))
}

// Reporting classes used by the paper's per-layer-type breakdowns
// (Figures 1, 4, 7, 13, 14).
const (
	ClassConv        = "Conv"
	ClassPooling     = "Pooling"
	ClassFC          = "FC"
	ClassNorm        = "Norm"
	ClassFireSqueeze = "Fire_Squeeze"
	ClassFireExpand  = "Fire_Expand"
	ClassReLU        = "Relu"
	ClassScale       = "Scale"
	ClassEltwise     = "Eltwise"
	ClassBatchNorm   = "BatchNorm"
	ClassRNN         = "RNN"
	ClassOther       = "Others"
)

// InputRef marks a layer input that reads the network input tensor rather
// than another layer's output.
const InputRef = -1

// Layer is one node of a network graph.  Exactly the fields relevant to its
// Type are meaningful.
type Layer struct {
	// Name is unique within the network (e.g. "conv1", "fire2/squeeze1x1").
	Name string
	// Type selects the computation.
	Type LayerType
	// Class is the reporting group used by the paper's figures; empty means
	// derive it from Type.
	Class string
	// Inputs are indices of producer layers in Network.Layers, or InputRef.
	Inputs []int

	// Conv holds parameters for LayerConv.
	Conv nn.ConvParams
	// Pool holds parameters for LayerPool.
	Pool nn.PoolParams
	// FCOut is the output feature count for LayerFC.
	FCOut int
	// LRN holds parameters for LayerLRN.
	LRN nn.LRNParams
	// FusedReLU applies a ReLU to the layer output in the same kernel
	// (conv+relu and fc+relu fusion used by most of the networks).
	FusedReLU bool

	// Hidden and InSize configure LayerLSTM / LayerGRU.
	Hidden int
	InSize int

	// OutShape is computed by Network.Build.
	OutShape []int
}

// EffectiveClass returns the reporting class, deriving it from the layer type
// when Class is unset.
func (l *Layer) EffectiveClass() string {
	if l.Class != "" {
		return l.Class
	}
	switch l.Type {
	case LayerConv:
		return ClassConv
	case LayerPool, LayerGlobalPool:
		return ClassPooling
	case LayerFC:
		return ClassFC
	case LayerLRN:
		return ClassNorm
	case LayerBatchNorm:
		return ClassBatchNorm
	case LayerScale:
		return ClassScale
	case LayerReLU:
		return ClassReLU
	case LayerEltwise:
		return ClassEltwise
	case LayerLSTM, LayerGRU:
		return ClassRNN
	default:
		return ClassOther
	}
}

// Network is a complete workload: an input shape, a layer graph and, for
// RNNs, the sequence length.
type Network struct {
	// Name is the benchmark name, e.g. "AlexNet".
	Name string
	// Kind is CNN or RNN.
	Kind Kind
	// InputShape is CHW for CNNs and [features] per time step for RNNs.
	InputShape []int
	// NumClasses is the classifier output width (CNNs).
	NumClasses int
	// SeqLen is the number of time steps an RNN processes.
	SeqLen int
	// Layers is the topologically ordered layer graph.
	Layers []Layer

	built bool
}

// Built reports whether Build has completed successfully.
func (n *Network) Built() bool { return n.built }

// Layer returns the layer with the given name, or nil.
func (n *Network) Layer(name string) *Layer {
	for i := range n.Layers {
		if n.Layers[i].Name == name {
			return &n.Layers[i]
		}
	}
	return nil
}

// inputShapeOf resolves the output shape feeding input slot idx of layer li.
func (n *Network) inputShapeOf(li, idx int) ([]int, error) {
	ref := n.Layers[li].Inputs[idx]
	if ref == InputRef {
		return n.InputShape, nil
	}
	if ref < 0 || ref >= li {
		return nil, fmt.Errorf("networks: layer %q input %d references layer %d (must precede it)", n.Layers[li].Name, idx, ref)
	}
	return n.Layers[ref].OutShape, nil
}

// Build validates the graph and computes every layer's output shape.  It must
// be called (directly or via the constructors) before Run or WeightSpecs.
func (n *Network) Build() error {
	if len(n.InputShape) == 0 {
		return fmt.Errorf("networks: %s has no input shape", n.Name)
	}
	seen := make(map[string]bool, len(n.Layers))
	for li := range n.Layers {
		l := &n.Layers[li]
		if l.Name == "" {
			return fmt.Errorf("networks: %s layer %d has no name", n.Name, li)
		}
		if seen[l.Name] {
			return fmt.Errorf("networks: %s has duplicate layer name %q", n.Name, l.Name)
		}
		seen[l.Name] = true
		if len(l.Inputs) == 0 {
			return fmt.Errorf("networks: layer %q has no inputs", l.Name)
		}
		in0, err := n.inputShapeOf(li, 0)
		if err != nil {
			return err
		}
		switch l.Type {
		case LayerConv:
			if len(in0) != 3 {
				return fmt.Errorf("networks: conv layer %q needs CHW input, got %v", l.Name, in0)
			}
			if err := l.Conv.Validate(); err != nil {
				return fmt.Errorf("layer %q: %w", l.Name, err)
			}
			if l.Conv.InChannels != in0[0] {
				return fmt.Errorf("networks: conv layer %q expects %d channels, input has %d", l.Name, l.Conv.InChannels, in0[0])
			}
			h, w := l.Conv.OutputDims(in0[1], in0[2])
			if h <= 0 || w <= 0 {
				return fmt.Errorf("networks: conv layer %q output %dx%d not positive", l.Name, h, w)
			}
			l.OutShape = []int{l.Conv.OutChannels, h, w}
		case LayerPool:
			if len(in0) != 3 {
				return fmt.Errorf("networks: pool layer %q needs CHW input, got %v", l.Name, in0)
			}
			if err := l.Pool.Validate(); err != nil {
				return fmt.Errorf("layer %q: %w", l.Name, err)
			}
			h, w := l.Pool.OutputDims(in0[1], in0[2])
			if h <= 0 || w <= 0 {
				return fmt.Errorf("networks: pool layer %q output %dx%d not positive", l.Name, h, w)
			}
			l.OutShape = []int{in0[0], h, w}
		case LayerFC:
			if l.FCOut <= 0 {
				return fmt.Errorf("networks: fc layer %q needs positive output size", l.Name)
			}
			l.OutShape = []int{l.FCOut}
		case LayerLRN:
			if err := l.LRN.Validate(); err != nil {
				return fmt.Errorf("layer %q: %w", l.Name, err)
			}
			l.OutShape = append([]int(nil), in0...)
		case LayerBatchNorm, LayerScale, LayerReLU, LayerSoftmax:
			l.OutShape = append([]int(nil), in0...)
		case LayerEltwise:
			if len(l.Inputs) != 2 {
				return fmt.Errorf("networks: eltwise layer %q needs exactly 2 inputs", l.Name)
			}
			in1, err := n.inputShapeOf(li, 1)
			if err != nil {
				return err
			}
			if !equalShape(in0, in1) {
				return fmt.Errorf("networks: eltwise layer %q input shapes differ: %v vs %v", l.Name, in0, in1)
			}
			l.OutShape = append([]int(nil), in0...)
		case LayerConcat:
			if len(in0) != 3 {
				return fmt.Errorf("networks: concat layer %q needs CHW inputs", l.Name)
			}
			c := 0
			for idx := range l.Inputs {
				s, err := n.inputShapeOf(li, idx)
				if err != nil {
					return err
				}
				if len(s) != 3 || s[1] != in0[1] || s[2] != in0[2] {
					return fmt.Errorf("networks: concat layer %q spatial mismatch: %v vs %v", l.Name, s, in0)
				}
				c += s[0]
			}
			l.OutShape = []int{c, in0[1], in0[2]}
		case LayerGlobalPool:
			if len(in0) != 3 {
				return fmt.Errorf("networks: global pool layer %q needs CHW input", l.Name)
			}
			l.OutShape = []int{in0[0]}
		case LayerLSTM, LayerGRU:
			if l.Hidden <= 0 || l.InSize <= 0 {
				return fmt.Errorf("networks: recurrent layer %q needs positive hidden/input sizes", l.Name)
			}
			l.OutShape = []int{l.Hidden}
		default:
			return fmt.Errorf("networks: layer %q has unknown type %d", l.Name, l.Type)
		}
	}
	n.built = true
	return nil
}

func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// elems returns the element count of a shape.
func elems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// WeightSpec names one parameter tensor a layer requires.
type WeightSpec struct {
	// Layer is the owning layer name.
	Layer string
	// Param is the parameter role, e.g. "weights", "bias", "gamma", "Wi".
	Param string
	// Count is the number of float32 elements.
	Count int
}

// Key returns the canonical "layer/param" identifier of the parameter.
func (w WeightSpec) Key() string { return w.Layer + "/" + w.Param }

// WeightSpecs enumerates every parameter tensor the network needs, in layer
// order.  Build must have been called.
func (n *Network) WeightSpecs() ([]WeightSpec, error) {
	if !n.built {
		return nil, fmt.Errorf("networks: %s: WeightSpecs before Build", n.Name)
	}
	var specs []WeightSpec
	add := func(layer, param string, count int) {
		specs = append(specs, WeightSpec{Layer: layer, Param: param, Count: count})
	}
	for li := range n.Layers {
		l := &n.Layers[li]
		switch l.Type {
		case LayerConv:
			add(l.Name, "weights", l.Conv.WeightCount())
			add(l.Name, "bias", l.Conv.OutChannels)
		case LayerFC:
			in, err := n.inputShapeOf(li, 0)
			if err != nil {
				return nil, err
			}
			add(l.Name, "weights", l.FCOut*elems(in))
			add(l.Name, "bias", l.FCOut)
		case LayerBatchNorm:
			c := l.OutShape[0]
			add(l.Name, "mean", c)
			add(l.Name, "variance", c)
		case LayerScale:
			c := l.OutShape[0]
			add(l.Name, "gamma", c)
			add(l.Name, "beta", c)
		case LayerLSTM:
			h, in := l.Hidden, l.InSize
			for _, p := range []string{"Wi", "Wf", "Wo", "Wc"} {
				add(l.Name, p, h*in)
			}
			for _, p := range []string{"Ui", "Uf", "Uo", "Uc"} {
				add(l.Name, p, h*h)
			}
			for _, p := range []string{"Bi", "Bf", "Bo", "Bc"} {
				add(l.Name, p, h)
			}
		case LayerGRU:
			h, in := l.Hidden, l.InSize
			for _, p := range []string{"Wr", "Wz", "Wh"} {
				add(l.Name, p, h*in)
			}
			for _, p := range []string{"Ur", "Uz", "Uh"} {
				add(l.Name, p, h*h)
			}
			for _, p := range []string{"Br", "Bz", "Bh"} {
				add(l.Name, p, h)
			}
		}
	}
	return specs, nil
}

// WeightBytes returns the total parameter footprint in bytes.
func (n *Network) WeightBytes() (int64, error) {
	specs, err := n.WeightSpecs()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range specs {
		total += int64(s.Count) * 4
	}
	return total, nil
}

// ActivationBytes returns the total bytes of all layer outputs for one
// inference (every activation is materialized once, as the benchmark kernels
// do with per-layer device buffers).
func (n *Network) ActivationBytes() (int64, error) {
	if !n.built {
		return 0, fmt.Errorf("networks: %s: ActivationBytes before Build", n.Name)
	}
	total := int64(elems(n.InputShape)) * 4
	if n.Kind == KindRNN {
		total *= int64(maxInt(n.SeqLen, 1))
	}
	for i := range n.Layers {
		total += int64(elems(n.Layers[i].OutShape)) * 4
	}
	return total, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Weights supplies parameter tensors to the inference runner.
type Weights interface {
	// Get returns the parameter tensor for layer/param with exactly count
	// elements.
	Get(layer, param string, count int) (*tensor.Tensor, error)
}
