package kernel

import (
	"fmt"

	"tango/internal/networks"
)

// Generate lowers every layer of a built network into a kernel, in layer
// order.  The result is the simulator's workload and the source of the
// Table III launch-geometry report.
func Generate(n *networks.Network) ([]*Kernel, error) {
	if n == nil || !n.Built() {
		return nil, fmt.Errorf("kernel: network must be built before lowering")
	}
	specs, err := n.WeightSpecs()
	if err != nil {
		return nil, err
	}
	weightBytesByLayer := make(map[string]int64)
	for _, s := range specs {
		weightBytesByLayer[s.Layer] += int64(s.Count) * 4
	}

	kernels := make([]*Kernel, 0, len(n.Layers))
	for li := range n.Layers {
		l := &n.Layers[li]
		inShape := layerInputShape(n, li)
		inputBytes := int64(shapeElems(inShape)) * 4
		if l.Type == networks.LayerEltwise || l.Type == networks.LayerConcat {
			// These read every producer.
			total := int64(0)
			for idx := range l.Inputs {
				total += int64(shapeElems(inputShapeAt(n, li, idx))) * 4
			}
			inputBytes = total
		}
		outputBytes := int64(shapeElems(l.OutShape)) * 4

		ctx := genContext{
			layer:       l,
			inShape:     inShape,
			outShape:    l.OutShape,
			inputBytes:  inputBytes,
			weightBytes: weightBytesByLayer[l.Name],
			outputBytes: outputBytes,
		}
		prog, err := generateProgram(ctx)
		if err != nil {
			return nil, fmt.Errorf("kernel: %s/%s: %w", n.Name, l.Name, err)
		}
		grid, block := launchGeometry(l, l.OutShape)
		regs, smem, cmem := staticResources(l, prog)

		k := &Kernel{
			Name:        n.Name + "/" + l.Name,
			Network:     n.Name,
			LayerName:   l.Name,
			LayerType:   l.Type,
			Class:       l.EffectiveClass(),
			Launch:      LaunchConfig{Grid: grid, Block: block, Regs: regs, SmemBytes: smem, CmemBytes: cmem},
			Program:     prog,
			InputBytes:  inputBytes,
			WeightBytes: weightBytesByLayer[l.Name],
			OutputBytes: outputBytes,
		}
		if err := k.Validate(); err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	return kernels, nil
}

// layerInputShape resolves the primary input shape of layer li.
func layerInputShape(n *networks.Network, li int) []int {
	return inputShapeAt(n, li, 0)
}

// inputShapeAt resolves the shape feeding input slot idx of layer li.
func inputShapeAt(n *networks.Network, li, idx int) []int {
	ref := n.Layers[li].Inputs[idx]
	if ref == networks.InputRef {
		return n.InputShape
	}
	return n.Layers[ref].OutShape
}

func shapeElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
