package kernel_test

import (
	"testing"

	"tango/internal/kernel"
	"tango/internal/networks"
)

func TestDialects(t *testing.T) {
	// The paper implements all seven networks in CUDA C and additionally
	// provides OpenCL versions of CifarNet and AlexNet (Section III).
	for _, name := range networks.Names() {
		ds := kernel.Dialects(name)
		if len(ds) == 0 || ds[0] != kernel.DialectCUDA {
			t.Errorf("%s: every benchmark must have a CUDA dialect, got %v", name, ds)
		}
		wantOpenCL := name == "CifarNet" || name == "AlexNet"
		if kernel.HasOpenCL(name) != wantOpenCL {
			t.Errorf("%s: HasOpenCL = %v, want %v", name, kernel.HasOpenCL(name), wantOpenCL)
		}
		if wantOpenCL && len(ds) != 2 {
			t.Errorf("%s: expected CUDA and OpenCL dialects, got %v", name, ds)
		}
	}
	if kernel.HasOpenCL("MobileNet") {
		t.Error("the MobileNet extension has no OpenCL variant")
	}
}
