// Package kernel lowers network layers into GPU kernels: a launch
// configuration (grid and block dimensions, register, shared- and
// constant-memory usage, reproducing Table III of the paper) and a per-thread
// instruction program over the PTX-like ISA that the architecture simulator
// executes.
package kernel

import (
	"fmt"

	"tango/internal/isa"
	"tango/internal/networks"
)

// LaunchConfig is the CUDA-style launch geometry and static resource usage of
// one kernel.
type LaunchConfig struct {
	// Grid and Block are the kernel launch dimensions (x, y, z).
	Grid  [3]int
	Block [3]int
	// Regs is the number of registers allocated per thread.
	Regs int
	// SmemBytes is the static shared memory per block in bytes.
	SmemBytes int
	// CmemBytes is the constant memory referenced by the kernel in bytes.
	CmemBytes int
}

// ThreadsPerBlock returns the block size in threads.
func (c LaunchConfig) ThreadsPerBlock() int { return c.Block[0] * c.Block[1] * c.Block[2] }

// Blocks returns the total number of thread blocks.
func (c LaunchConfig) Blocks() int { return c.Grid[0] * c.Grid[1] * c.Grid[2] }

// TotalThreads returns the total number of threads the kernel launches.
func (c LaunchConfig) TotalThreads() int { return c.ThreadsPerBlock() * c.Blocks() }

// WarpsPerBlock returns the number of 32-thread warps per block (rounded up).
func (c LaunchConfig) WarpsPerBlock() int { return (c.ThreadsPerBlock() + 31) / 32 }

// String formats the geometry like the paper's Table III.
func (c LaunchConfig) String() string {
	return fmt.Sprintf("grid(%d,%d,%d) block(%d,%d,%d) regs=%d smem=%d cmem=%d",
		c.Grid[0], c.Grid[1], c.Grid[2], c.Block[0], c.Block[1], c.Block[2],
		c.Regs, c.SmemBytes, c.CmemBytes)
}

// Loop is a counted inner loop of a thread program.  The simulator may sample
// a subset of the iterations and scale the resulting statistics.
type Loop struct {
	// Body is executed Trip times.
	Body []isa.Instruction
	// Trip is the iteration count (>= 0).
	Trip int
}

// Program is the per-thread instruction template of a kernel: a prologue,
// zero or more counted loops, and an epilogue.  Every thread of the kernel
// executes the same template; memory instructions derive per-thread addresses
// from their access patterns.
type Program struct {
	Prologue []isa.Instruction
	Loops    []Loop
	Epilogue []isa.Instruction
}

// DynamicInstructions returns the number of dynamic instructions one thread
// executes.
func (p Program) DynamicInstructions() int64 {
	n := int64(len(p.Prologue)) + int64(len(p.Epilogue))
	for _, l := range p.Loops {
		n += int64(len(l.Body)) * int64(l.Trip)
	}
	return n
}

// OpCounts returns the dynamic per-opcode instruction counts of one thread.
func (p Program) OpCounts() [isa.NumOpcodes]int64 {
	var counts [isa.NumOpcodes]int64
	accum := func(ins []isa.Instruction, mult int64) {
		for _, i := range ins {
			counts[i.Op] += mult
		}
	}
	accum(p.Prologue, 1)
	for _, l := range p.Loops {
		accum(l.Body, int64(l.Trip))
	}
	accum(p.Epilogue, 1)
	return counts
}

// TypeCounts returns the dynamic per-data-type instruction counts of one
// thread.
func (p Program) TypeCounts() [isa.NumDTypes]int64 {
	var counts [isa.NumDTypes]int64
	accum := func(ins []isa.Instruction, mult int64) {
		for _, i := range ins {
			counts[i.Type] += mult
		}
	}
	accum(p.Prologue, 1)
	for _, l := range p.Loops {
		accum(l.Body, int64(l.Trip))
	}
	accum(p.Epilogue, 1)
	return counts
}

// MaxRegister returns the highest register index referenced by the program
// plus one, i.e. the per-thread register demand.
func (p Program) MaxRegister() int {
	max := 0
	scan := func(ins []isa.Instruction) {
		for _, i := range ins {
			if i.Dst != isa.NoReg && int(i.Dst)+1 > max {
				max = int(i.Dst) + 1
			}
			for s := 0; s < int(i.NSrcs); s++ {
				if i.Srcs[s] != isa.NoReg && int(i.Srcs[s])+1 > max {
					max = int(i.Srcs[s]) + 1
				}
			}
		}
	}
	scan(p.Prologue)
	for _, l := range p.Loops {
		scan(l.Body)
	}
	scan(p.Epilogue)
	return max
}

// Kernel is one launchable unit of work: a layer of a network lowered to a
// launch configuration and a thread program.
type Kernel struct {
	// Name identifies the kernel, e.g. "AlexNet/conv1".
	Name string
	// Network is the owning benchmark name.
	Network string
	// LayerName is the source layer.
	LayerName string
	// LayerType is the source layer type.
	LayerType networks.LayerType
	// Class is the reporting class used in per-layer-type figures.
	Class string
	// Launch is the launch geometry and static resources.
	Launch LaunchConfig
	// Program is the per-thread instruction template.
	Program Program
	// InputBytes, WeightBytes and OutputBytes size the kernel's global-memory
	// regions; the simulator lays them out and bounds access footprints.
	InputBytes  int64
	WeightBytes int64
	OutputBytes int64
}

// DynamicInstructions returns the total dynamic instruction count across all
// threads of the kernel.
func (k *Kernel) DynamicInstructions() int64 {
	return k.Program.DynamicInstructions() * int64(k.Launch.TotalThreads())
}

// Validate performs internal consistency checks.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel: unnamed kernel")
	}
	if k.Launch.TotalThreads() <= 0 {
		return fmt.Errorf("kernel %s: no threads", k.Name)
	}
	if k.Launch.ThreadsPerBlock() > 1024 {
		return fmt.Errorf("kernel %s: %d threads per block exceeds 1024", k.Name, k.Launch.ThreadsPerBlock())
	}
	if k.Program.DynamicInstructions() <= 0 {
		return fmt.Errorf("kernel %s: empty program", k.Name)
	}
	if k.Launch.Regs < k.Program.MaxRegister() {
		return fmt.Errorf("kernel %s: launch reports %d registers but program uses %d",
			k.Name, k.Launch.Regs, k.Program.MaxRegister())
	}
	check := func(ins isa.Instruction) error {
		if ins.IsMem() && ins.Space == isa.SpaceGlobal && ins.Pattern.Region == isa.RegionNone {
			return fmt.Errorf("kernel %s: global memory access without region", k.Name)
		}
		return nil
	}
	for _, i := range k.Program.Prologue {
		if err := check(i); err != nil {
			return err
		}
	}
	for _, l := range k.Program.Loops {
		if l.Trip < 0 {
			return fmt.Errorf("kernel %s: negative loop trip count", k.Name)
		}
		for _, i := range l.Body {
			if err := check(i); err != nil {
				return err
			}
		}
	}
	for _, i := range k.Program.Epilogue {
		if err := check(i); err != nil {
			return err
		}
	}
	return nil
}
