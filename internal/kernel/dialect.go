package kernel

// Dialect identifies the source language a kernel of the original suite is
// written in.  The generated instruction templates are language-agnostic —
// the CUDA and OpenCL variants of a layer execute the same math with the same
// launch geometry — so the dialect only tags provenance, mirroring the
// paper's statement that all seven networks are implemented in CUDA C while
// CifarNet and AlexNet additionally ship OpenCL versions for the FPGA flow.
type Dialect string

// Kernel dialects of the original benchmark suite.
const (
	DialectCUDA   Dialect = "CUDA"
	DialectOpenCL Dialect = "OpenCL"
)

// openCLNetworks lists the benchmarks the paper also implements in OpenCL.
var openCLNetworks = map[string]bool{
	"CifarNet": true,
	"AlexNet":  true,
}

// Dialects returns the source dialects available for a benchmark.
func Dialects(network string) []Dialect {
	if openCLNetworks[network] {
		return []Dialect{DialectCUDA, DialectOpenCL}
	}
	return []Dialect{DialectCUDA}
}

// HasOpenCL reports whether the benchmark ships an OpenCL implementation,
// making it deployable on the FPGA flow of Section III-D.
func HasOpenCL(network string) bool { return openCLNetworks[network] }
