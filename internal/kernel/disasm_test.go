package kernel_test

import (
	"bytes"
	"strings"
	"testing"

	"tango/internal/kernel"
	"tango/internal/networks"
)

func TestWriteDisassembly(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kernel.WriteDisassembly(&buf, ks[0]); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"kernel CifarNet/conv1",
		"prologue:",
		"loop0:",
		"epilogue:",
		"mad.f32",
		"ld.f32.global",
		"st.f32.global",
		"// 75 iterations", // 3 channels x 5x5 kernel
	} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
	if err := kernel.WriteDisassembly(&buf, nil); err == nil {
		t.Error("nil kernel should fail")
	}
}

func TestDisassemblyCoversAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := kernel.Generate(n)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, k := range ks {
			buf.Reset()
			if err := kernel.WriteDisassembly(&buf, k); err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s: empty disassembly", k.Name)
			}
		}
	}
}
