package kernel

import (
	"fmt"

	"tango/internal/isa"
	"tango/internal/networks"
	"tango/internal/nn"
)

// genContext carries everything a layer code generator needs.
type genContext struct {
	layer    *networks.Layer
	inShape  []int
	outShape []int

	inputBytes  int64
	weightBytes int64
	outputBytes int64
}

// Register naming convention used by the generators.  The exact indices only
// matter for dependence tracking in the simulator and for the per-thread
// register counts reported in Table III.
const (
	rTid   isa.Reg = 0  // thread index x
	rTidY  isa.Reg = 1  // thread index y
	rCta   isa.Reg = 2  // block index
	rIdx0  isa.Reg = 3  // index scratch
	rIdx1  isa.Reg = 4  // index scratch
	rIdx2  isa.Reg = 5  // index scratch
	rIdx3  isa.Reg = 6  // index scratch
	rPred  isa.Reg = 7  // bounds predicate
	rAcc   isa.Reg = 8  // f32 accumulator
	rVal   isa.Reg = 9  // loaded input value
	rWgt   isa.Reg = 10 // loaded weight value
	rBias  isa.Reg = 11 // loaded bias value
	rTmp0  isa.Reg = 12 // f32 scratch
	rTmp1  isa.Reg = 13 // f32 scratch
	rTmp2  isa.Reg = 14 // f32 scratch
	rOutA  isa.Reg = 15 // output address
	rLoop  isa.Reg = 16 // loop counter
	rTmp3  isa.Reg = 17 // extra scratch
	rTmp4  isa.Reg = 18 // extra scratch
	rGate0 isa.Reg = 19 // RNN gate accumulators
	rGate1 isa.Reg = 20
	rGate2 isa.Reg = 21
	rGate3 isa.Reg = 22
)

func alu(op isa.Opcode, t isa.DType, dst isa.Reg, srcs ...isa.Reg) isa.Instruction {
	return isa.NewALU(op, t, dst, srcs...)
}

// threadIndexPrologue is the common index-computation preamble: every kernel
// derives its global thread / neuron index from the block and thread ids with
// warp-unit shifts, which the paper identifies as a major source of integer
// work (Observation 8).
func threadIndexPrologue() []isa.Instruction {
	return []isa.Instruction{
		alu(isa.OpMov, isa.TypeU32, rTid),
		alu(isa.OpMov, isa.TypeU32, rTidY),
		alu(isa.OpMov, isa.TypeU32, rCta),
		alu(isa.OpShl, isa.TypeU32, rIdx0, rCta),                 // blockIdx * blockDim (warp-unit shift)
		alu(isa.OpMad24, isa.TypeU32, rIdx1, rTidY, rIdx0, rTid), // global linear index
		alu(isa.OpShl, isa.TypeU32, rIdx2, rIdx1),                // byte offset
		alu(isa.OpSet, isa.TypeU32, rPred, rIdx1),                // bounds guard
	}
}

// loopClose ends a loop body: advance the induction variable and branch back.
func loopClose() []isa.Instruction {
	return []isa.Instruction{
		alu(isa.OpAdd, isa.TypeU32, rLoop, rLoop),
		alu(isa.OpSet, isa.TypeU32, rPred, rLoop),
		alu(isa.OpBra, isa.TypeNone, isa.NoReg),
	}
}

// storeEpilogue computes the output address and stores the accumulator.
func storeEpilogue(src isa.Reg, outBytes int64, fusedReLU bool) []isa.Instruction {
	var eps []isa.Instruction
	if fusedReLU {
		// ReLU as a compare-select against zero.
		eps = append(eps,
			alu(isa.OpSet, isa.TypeF32, rPred, src),
			alu(isa.OpMax, isa.TypeF32, src, src),
		)
	}
	eps = append(eps,
		alu(isa.OpMad24, isa.TypeU32, rOutA, rIdx1, rIdx2, rIdx0),
		isa.NewStore(isa.TypeF32, src, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionOutput,
			ThreadStride: 4,
			BlockStride:  128,
			Footprint:    uint64(outBytes),
		}),
		alu(isa.OpExit, isa.TypeNone, isa.NoReg),
	)
	return eps
}

// genConv lowers a convolution layer: each thread produces one output element
// by iterating over inChannels/groups x kernelH x kernelW input/weight pairs.
func genConv(ctx genContext) Program {
	p := ctx.layer.Conv
	groups := p.Groups
	if groups <= 0 {
		groups = 1
	}
	trip := (p.InChannels / groups) * p.KernelH * p.KernelW
	inW := ctx.inShape[2]

	prologue := append(threadIndexPrologue(),
		// Per-output-channel bias from constant memory.
		isa.NewLoad(isa.TypeF32, rBias, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionBias, ThreadStride: 0, BlockStride: 4, Footprint: uint64(4 * p.OutChannels),
		}),
		alu(isa.OpMov, isa.TypeF32, rAcc, rBias),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)

	// The loop body mirrors the instruction mix of the original CUDA kernels
	// (Figure 9): decomposing the filter position from the induction variable
	// and rebuilding the input and weight offsets takes a chain of
	// mul/mad/shl/add/mov integer work around the two loads and the f32
	// multiply-accumulate, guarded by padding bounds checks with an ssy
	// before the divergent region.
	body := []isa.Instruction{
		alu(isa.OpSsy, isa.TypeNone, isa.NoReg), // divergence point for the padding guard
		// Decompose the induction variable into (ic, ky, kx).
		alu(isa.OpMul, isa.TypeU32, rIdx2, rLoop, rIdx0),
		alu(isa.OpShr, isa.TypeU32, rIdx3, rIdx2),
		alu(isa.OpMad24, isa.TypeU32, rIdx3, rIdx3, rIdx0, rTid),
		alu(isa.OpMov, isa.TypeU32, rTmp3, rIdx3),
		// Input offset: ((ic*inH + iy)*inW + ix) with warp-unit shifts.
		alu(isa.OpMul, isa.TypeU32, rIdx2, rTmp3, rIdx1),
		alu(isa.OpShl, isa.TypeU32, rIdx2, rIdx2),
		alu(isa.OpAdd, isa.TypeU32, rIdx2, rIdx2, rIdx1),
		alu(isa.OpSet, isa.TypeU16, rPred, rIdx2), // padding bounds check (y)
		alu(isa.OpSet, isa.TypeU16, rPred, rIdx2), // padding bounds check (x)
		alu(isa.OpNop, isa.TypeNone, isa.NoReg),   // predicated-off slot
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionInput,
			ThreadStride: int64(4 * p.StrideW),
			IterStride:   4,
			BlockStride:  int64(4 * inW),
			Footprint:    uint64(ctx.inputBytes),
		}),
		// Weight offset and load; the address is uniform across the warp.
		alu(isa.OpMul, isa.TypeU32, rIdx3, rLoop, rCta),
		alu(isa.OpShl, isa.TypeU32, rIdx3, rIdx3),
		alu(isa.OpAdd, isa.TypeU32, rIdx3, rIdx3, rIdx0),
		alu(isa.OpMad24, isa.TypeU32, rIdx3, rIdx3, rCta, rIdx0),
		alu(isa.OpMov, isa.TypeU32, rTmp4, rIdx3),
		isa.NewLoad(isa.TypeF32, rWgt, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionWeights,
			ThreadStride: 0,
			IterStride:   4,
			BlockStride:  int64(4 * trip),
			Footprint:    uint64(ctx.weightBytes),
		}),
		alu(isa.OpMad, isa.TypeF32, rAcc, rVal, rWgt, rAcc),
		alu(isa.OpAdd, isa.TypeU32, rIdx1, rIdx1, rIdx0),
	}
	body = append(body, loopClose()...)

	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: trip}},
		Epilogue: storeEpilogue(rAcc, ctx.outputBytes, ctx.layer.FusedReLU),
	}
}

// genPool lowers a pooling layer: each thread reduces a kernelH x kernelW
// window with max or add, creating the tight load-compare dependence chains
// the paper attributes pooling's data-dependency stalls to.
func genPool(ctx genContext) Program {
	p := ctx.layer.Pool
	trip := p.KernelH * p.KernelW
	inW := ctx.inShape[2]

	prologue := append(threadIndexPrologue(),
		alu(isa.OpMov, isa.TypeF32, rAcc),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)
	reduce := isa.OpMax
	if p.Kind == nn.AvgPool {
		reduce = isa.OpAdd
	}
	body := []isa.Instruction{
		alu(isa.OpMad24, isa.TypeU32, rIdx2, rLoop, rIdx0, rTid),
		alu(isa.OpSet, isa.TypeU16, rPred, rIdx2),
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionInput,
			ThreadStride: int64(4 * p.StrideW),
			IterStride:   4,
			BlockStride:  int64(4 * inW),
			Footprint:    uint64(ctx.inputBytes),
		}),
		alu(reduce, isa.TypeF32, rAcc, rAcc, rVal),
	}
	body = append(body, loopClose()...)

	epilogue := []isa.Instruction{}
	if p.Kind == nn.AvgPool {
		// Average: multiply by 1/window.
		epilogue = append(epilogue, alu(isa.OpMul, isa.TypeF32, rAcc, rAcc, rTmp0))
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: trip}},
		Epilogue: epilogue,
	}
}

// genFC lowers a fully-connected layer: each thread computes one output
// neuron as a dot product over the whole flattened input.  The weight matrix
// is stored input-major (weight[i*out + neuron]) as the original CUDA kernels
// do, so simultaneous threads read consecutive addresses, while the matrix as
// a whole is streamed exactly once — which is what gives FC layers their high
// L2 miss ratios relative to convolutions (Observation 11).  The inner loop
// is unrolled four ways, mirroring the instruction-level parallelism the CUDA
// compiler extracts, so independent weight loads overlap their latency.
func genFC(ctx genContext) Program {
	inFeatures := 1
	for _, d := range ctx.inShape {
		inFeatures *= d
	}
	outFeatures := ctx.layer.FCOut
	rowBytes := int64(outFeatures) * 4 // one input element's weights across all neurons

	prologue := append(threadIndexPrologue(),
		isa.NewLoad(isa.TypeF32, rBias, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionBias, ThreadStride: 4, Footprint: uint64(4 * ctx.layer.FCOut),
		}),
		alu(isa.OpMov, isa.TypeF32, rAcc, rBias),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)

	const unroll = 4
	valRegs := [unroll]isa.Reg{rVal, rTmp0, rTmp1, rTmp2}
	wgtRegs := [unroll]isa.Reg{rWgt, rTmp3, rTmp4, rGate0}
	xLoad := func(dst isa.Reg, lane int) isa.Instruction {
		return isa.NewLoad(isa.TypeF32, dst, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionInput,
			Base:         uint64(4 * lane),
			ThreadStride: 0, // the input vector is shared by every neuron
			IterStride:   4 * unroll,
			Footprint:    uint64(ctx.inputBytes),
		})
	}
	wLoad := func(dst isa.Reg, u int) isa.Instruction {
		return isa.NewLoad(isa.TypeF32, dst, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionWeights,
			Base:         uint64(u) * uint64(rowBytes),
			ThreadStride: 4, // weight[i*out + neuron]: coalesced across the warp
			IterStride:   rowBytes * unroll,
			BlockStride:  4, // neighbouring blocks own neighbouring neurons
			Footprint:    uint64(ctx.weightBytes),
		})
	}

	body := []isa.Instruction{
		alu(isa.OpAdd, isa.TypeU32, rIdx2, rIdx2, rLoop),
		alu(isa.OpMad24, isa.TypeU32, rIdx3, rTid, rIdx0, rLoop),
	}
	// Independent loads first so their latencies overlap, then the dependent
	// multiply-accumulates.
	for u := 0; u < unroll; u++ {
		body = append(body, xLoad(valRegs[u], u), wLoad(wgtRegs[u], u))
	}
	for u := 0; u < unroll; u++ {
		body = append(body, alu(isa.OpMad, isa.TypeF32, rAcc, valRegs[u], wgtRegs[u], rAcc))
	}
	body = append(body, loopClose()...)

	trip := (inFeatures + unroll - 1) / unroll
	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: trip}},
		Epilogue: storeEpilogue(rAcc, ctx.outputBytes, ctx.layer.FusedReLU),
	}
}

// genLRN lowers local response normalization: each thread normalizes one
// element by the sum of squares over a window of neighbouring channels, using
// SFU instructions for the power computation.
func genLRN(ctx genContext) Program {
	h, w := ctx.inShape[1], ctx.inShape[2]
	channelStride := int64(4 * h * w)
	trip := ctx.layer.LRN.LocalSize

	prologue := append(threadIndexPrologue(),
		alu(isa.OpMov, isa.TypeF32, rAcc),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)
	body := []isa.Instruction{
		alu(isa.OpMad24, isa.TypeU32, rIdx2, rLoop, rIdx0, rTid),
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionInput,
			ThreadStride: 4,
			IterStride:   channelStride,
			Footprint:    uint64(ctx.inputBytes),
		}),
		alu(isa.OpMul, isa.TypeF32, rTmp0, rVal, rVal),
		alu(isa.OpAdd, isa.TypeF32, rAcc, rAcc, rTmp0),
	}
	body = append(body, loopClose()...)

	epilogue := []isa.Instruction{
		// denom = (k + alpha/n * sum)^beta via exp2/log2-style SFU ops.
		alu(isa.OpMad, isa.TypeF32, rTmp1, rAcc, rTmp0, rBias),
		alu(isa.OpEx2, isa.TypeF32, rTmp2, rTmp1),
		alu(isa.OpRcp, isa.TypeF32, rTmp2, rTmp2),
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpMul, isa.TypeF32, rAcc, rVal, rTmp2),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: trip}},
		Epilogue: epilogue,
	}
}

// genBatchNorm lowers inference batch normalization: one element per thread,
// normalized with per-channel statistics from constant memory.
func genBatchNorm(ctx genContext) Program {
	prologue := append(threadIndexPrologue(),
		isa.NewLoad(isa.TypeF32, rTmp0, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionWeights, BlockStride: 4, Footprint: uint64(ctx.weightBytes),
		}),
		isa.NewLoad(isa.TypeF32, rTmp1, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionWeights, Base: uint64(ctx.weightBytes / 2), BlockStride: 4, Footprint: uint64(ctx.weightBytes),
		}),
		alu(isa.OpRsqrt, isa.TypeF32, rTmp1, rTmp1),
	)
	epilogue := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, BlockStride: 128, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpAdd, isa.TypeF32, rTmp2, rVal, rTmp0),
		alu(isa.OpMul, isa.TypeF32, rAcc, rTmp2, rTmp1),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{Prologue: prologue, Epilogue: epilogue}
}

// genScale lowers the per-channel affine scale layer.
func genScale(ctx genContext) Program {
	prologue := append(threadIndexPrologue(),
		isa.NewLoad(isa.TypeF32, rTmp0, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionWeights, BlockStride: 4, Footprint: uint64(ctx.weightBytes),
		}),
		isa.NewLoad(isa.TypeF32, rTmp1, isa.SpaceConst, isa.AccessPattern{
			Region: isa.RegionBias, BlockStride: 4, Footprint: uint64(4 * ctx.outShape[0]),
		}),
	)
	epilogue := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, BlockStride: 128, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpMad, isa.TypeF32, rAcc, rVal, rTmp0, rTmp1),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{Prologue: prologue, Epilogue: epilogue}
}

// genReLU lowers a standalone ReLU layer.
func genReLU(ctx genContext) Program {
	prologue := threadIndexPrologue()
	epilogue := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, BlockStride: 128, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpMax, isa.TypeF32, rAcc, rVal),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{Prologue: prologue, Epilogue: epilogue}
}

// genEltwise lowers the element-wise shortcut addition of residual blocks.
func genEltwise(ctx genContext) Program {
	prologue := threadIndexPrologue()
	epilogue := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, BlockStride: 128, Footprint: uint64(ctx.inputBytes),
		}),
		isa.NewLoad(isa.TypeF32, rWgt, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, Base: uint64(ctx.inputBytes / 2), ThreadStride: 4, BlockStride: 128,
			Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpAdd, isa.TypeF32, rAcc, rVal, rWgt),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{Prologue: prologue, Epilogue: epilogue}
}

// genConcat lowers a channel concatenation as a strided copy.
func genConcat(ctx genContext) Program {
	prologue := threadIndexPrologue()
	epilogue := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, BlockStride: 128, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpMov, isa.TypeF32, rAcc, rVal),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{Prologue: prologue, Epilogue: epilogue}
}

// genSoftmax lowers the classifier softmax: each thread accumulates the
// exponential sum and normalizes its own class score.
func genSoftmax(ctx genContext) Program {
	classes := 1
	for _, d := range ctx.inShape {
		classes *= d
	}
	prologue := append(threadIndexPrologue(),
		alu(isa.OpMov, isa.TypeF32, rAcc),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)
	body := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 0, IterStride: 4, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpEx2, isa.TypeF32, rTmp0, rVal),
		alu(isa.OpAdd, isa.TypeF32, rAcc, rAcc, rTmp0),
	}
	body = append(body, loopClose()...)
	epilogue := []isa.Instruction{
		alu(isa.OpRcp, isa.TypeF32, rTmp1, rAcc),
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 4, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpEx2, isa.TypeF32, rTmp2, rVal),
		alu(isa.OpMul, isa.TypeF32, rAcc, rTmp2, rTmp1),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: classes}},
		Epilogue: epilogue,
	}
}

// genGlobalPool lowers global average pooling: one thread per channel.
func genGlobalPool(ctx genContext) Program {
	area := ctx.inShape[1] * ctx.inShape[2]
	prologue := append(threadIndexPrologue(),
		alu(isa.OpMov, isa.TypeF32, rAcc),
		alu(isa.OpMov, isa.TypeU32, rLoop),
	)
	body := []isa.Instruction{
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region:       isa.RegionInput,
			ThreadStride: int64(4 * area), // each thread owns one channel
			IterStride:   4,
			Footprint:    uint64(ctx.inputBytes),
		}),
		alu(isa.OpAdd, isa.TypeF32, rAcc, rAcc, rVal),
	}
	body = append(body, loopClose()...)
	epilogue := []isa.Instruction{
		alu(isa.OpMul, isa.TypeF32, rAcc, rAcc, rTmp0),
	}
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)
	return Program{
		Prologue: prologue,
		Loops:    []Loop{{Body: body, Trip: area}},
		Epilogue: epilogue,
	}
}

// genRecurrent lowers a GRU or LSTM layer.  One thread owns one hidden neuron
// and, per time step, accumulates the gate pre-activations over the input and
// recurrent weight rows, then applies the gate nonlinearities.  LSTM runs
// four gates against GRU's three and has a longer element-wise epilogue,
// which is why the paper finds it exhibits more data-dependency stalls.
func genRecurrent(ctx genContext) Program {
	l := ctx.layer
	gates := 3
	if l.Type == networks.LayerLSTM {
		gates = 4
	}
	hidden := l.Hidden
	inSize := l.InSize
	seq := 2 // the suite's models consume the past two days' prices

	prologue := append(threadIndexPrologue(),
		alu(isa.OpMov, isa.TypeF32, rGate0),
		alu(isa.OpMov, isa.TypeF32, rGate1),
		alu(isa.OpMov, isa.TypeF32, rGate2),
	)
	if gates == 4 {
		prologue = append(prologue, alu(isa.OpMov, isa.TypeF32, rGate3))
	}
	prologue = append(prologue, alu(isa.OpMov, isa.TypeU32, rLoop))

	rowBytes := int64(hidden) * 4
	gateBody := []isa.Instruction{
		alu(isa.OpAdd, isa.TypeU32, rIdx2, rIdx2, rLoop),
		isa.NewLoad(isa.TypeF32, rVal, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionInput, ThreadStride: 0, IterStride: 4, Footprint: uint64(ctx.inputBytes),
		}),
		alu(isa.OpMad24, isa.TypeU32, rIdx3, rTid, rIdx0, rLoop),
		isa.NewLoad(isa.TypeF32, rWgt, isa.SpaceGlobal, isa.AccessPattern{
			Region: isa.RegionWeights, ThreadStride: rowBytes, IterStride: 4, Footprint: uint64(ctx.weightBytes),
		}),
		alu(isa.OpMad, isa.TypeF32, rGate0, rVal, rWgt, rGate0),
	}
	gateBody = append(gateBody, loopClose()...)

	// Gate nonlinearities and state update per time step.
	epilogue := []isa.Instruction{}
	for g := 0; g < gates; g++ {
		dst := []isa.Reg{rGate0, rGate1, rGate2, rGate3}[g]
		epilogue = append(epilogue,
			alu(isa.OpEx2, isa.TypeF32, rTmp0, dst),
			alu(isa.OpAdd, isa.TypeF32, rTmp1, rTmp0, rBias),
			alu(isa.OpRcp, isa.TypeF32, dst, rTmp1),
		)
	}
	// Element-wise state combination (longer chain for LSTM: cell update plus
	// the output tanh).
	epilogue = append(epilogue,
		alu(isa.OpMul, isa.TypeF32, rTmp2, rGate0, rGate1),
		alu(isa.OpMul, isa.TypeF32, rTmp3, rGate1, rGate2),
		alu(isa.OpAdd, isa.TypeF32, rAcc, rTmp2, rTmp3),
	)
	if l.Type == networks.LayerLSTM {
		epilogue = append(epilogue,
			alu(isa.OpEx2, isa.TypeF32, rTmp4, rAcc),
			alu(isa.OpRcp, isa.TypeF32, rTmp4, rTmp4),
			alu(isa.OpMul, isa.TypeF32, rAcc, rTmp4, rGate3),
		)
	}
	epilogue = append(epilogue,
		alu(isa.OpBar, isa.TypeNone, isa.NoReg), // synchronize hidden state across the block
	)
	epilogue = append(epilogue, storeEpilogue(rAcc, ctx.outputBytes, false)...)

	return Program{
		Prologue: prologue,
		Loops: []Loop{
			// Input contributions for every gate and time step.
			{Body: gateBody, Trip: gates * inSize * seq},
			// Recurrent contributions for every gate and time step.
			{Body: gateBody, Trip: gates * hidden * seq},
		},
		Epilogue: epilogue,
	}
}

// generateProgram dispatches to the per-layer-type generator.
func generateProgram(ctx genContext) (Program, error) {
	switch ctx.layer.Type {
	case networks.LayerConv:
		return genConv(ctx), nil
	case networks.LayerPool:
		return genPool(ctx), nil
	case networks.LayerFC:
		return genFC(ctx), nil
	case networks.LayerLRN:
		return genLRN(ctx), nil
	case networks.LayerBatchNorm:
		return genBatchNorm(ctx), nil
	case networks.LayerScale:
		return genScale(ctx), nil
	case networks.LayerReLU:
		return genReLU(ctx), nil
	case networks.LayerEltwise:
		return genEltwise(ctx), nil
	case networks.LayerConcat:
		return genConcat(ctx), nil
	case networks.LayerSoftmax:
		return genSoftmax(ctx), nil
	case networks.LayerGlobalPool:
		return genGlobalPool(ctx), nil
	case networks.LayerGRU, networks.LayerLSTM:
		return genRecurrent(ctx), nil
	default:
		return Program{}, fmt.Errorf("kernel: no code generator for layer type %v", ctx.layer.Type)
	}
}
