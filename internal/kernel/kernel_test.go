package kernel_test

import (
	"testing"

	"tango/internal/isa"
	"tango/internal/kernel"
	"tango/internal/networks"
)

func generate(t *testing.T, name string) []*kernel.Kernel {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestGenerateAllNetworks(t *testing.T) {
	for _, name := range networks.Names() {
		ks := generate(t, name)
		if len(ks) == 0 {
			t.Errorf("%s produced no kernels", name)
			continue
		}
		for _, k := range ks {
			if err := k.Validate(); err != nil {
				t.Errorf("%s: %v", k.Name, err)
			}
			if k.DynamicInstructions() <= 0 {
				t.Errorf("%s: no dynamic instructions", k.Name)
			}
			if k.Class == "" {
				t.Errorf("%s: missing reporting class", k.Name)
			}
		}
	}
}

func TestGenerateRequiresBuiltNetwork(t *testing.T) {
	if _, err := kernel.Generate(nil); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := kernel.Generate(&networks.Network{Name: "x"}); err == nil {
		t.Error("unbuilt network should fail")
	}
}

func TestGenerateOneKernelPerLayer(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(n.Layers) {
		t.Errorf("generated %d kernels for %d layers", len(ks), len(n.Layers))
	}
	for i, k := range ks {
		if k.LayerName != n.Layers[i].Name {
			t.Errorf("kernel %d is %q, want %q", i, k.LayerName, n.Layers[i].Name)
		}
	}
}

func TestLaunchGeometryTableIII(t *testing.T) {
	// Spot-check launch geometry against Table III of the paper.
	cases := []struct {
		net   string
		layer string
		block [3]int
		grid  [3]int
	}{
		// CifarNet conv layers run one 32x32 block.
		{"CifarNet", "conv1", [3]int{32, 32, 1}, [3]int{32, 1, 1}},
		// CifarNet FC layers: one block of (64,1,1) / (9,1,1) threads.
		{"CifarNet", "fc1", [3]int{64, 1, 1}, [3]int{1, 1, 1}},
		// AlexNet conv2 runs 256 blocks of 27x27 threads.
		{"AlexNet", "conv2", [3]int{27, 27, 1}, [3]int{256, 1, 1}},
		// AlexNet fc6: 4096 blocks of one thread (Table III).
		{"AlexNet", "fc6", [3]int{1, 1, 1}, [3]int{4096, 1, 1}},
		// SqueezeNet fire6 squeeze: 48 channels of 27x27.
		{"SqueezeNet", "fire6/squeeze1x1", [3]int{27, 27, 1}, [3]int{48, 1, 1}},
		// GRU: a single (10,10,1) block; LSTM: a single (100,1,1) block.
		{"GRU", "gru1", [3]int{10, 10, 1}, [3]int{1, 1, 1}},
		{"LSTM", "lstm1", [3]int{100, 1, 1}, [3]int{1, 1, 1}},
	}
	kernelsByNet := map[string][]*kernel.Kernel{}
	for _, c := range cases {
		ks, ok := kernelsByNet[c.net]
		if !ok {
			ks = generate(t, c.net)
			kernelsByNet[c.net] = ks
		}
		var found *kernel.Kernel
		for _, k := range ks {
			if k.LayerName == c.layer {
				found = k
				break
			}
		}
		if found == nil {
			t.Errorf("%s: no kernel for layer %s", c.net, c.layer)
			continue
		}
		if found.Launch.Block != c.block || found.Launch.Grid != c.grid {
			t.Errorf("%s/%s launch = %v, want block %v grid %v",
				c.net, c.layer, found.Launch, c.block, c.grid)
		}
	}
}

func TestLaunchBlockLimit(t *testing.T) {
	for _, name := range networks.Names() {
		for _, k := range generate(t, name) {
			if k.Launch.ThreadsPerBlock() > 1024 {
				t.Errorf("%s: %d threads per block exceeds the CUDA limit", k.Name, k.Launch.ThreadsPerBlock())
			}
			if k.Launch.TotalThreads() <= 0 {
				t.Errorf("%s: no threads", k.Name)
			}
		}
	}
}

func TestLaunchCoversOutputNeurons(t *testing.T) {
	// One thread per neuron: the launch must provide at least as many threads
	// as output elements (it may round up to tile boundaries).
	for _, name := range []string{"CifarNet", "AlexNet", "SqueezeNet", "VGGNet"} {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := kernel.Generate(n)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range ks {
			out := n.Layers[i].OutShape
			elems := 1
			for _, d := range out {
				elems *= d
			}
			if k.Launch.TotalThreads() < elems {
				t.Errorf("%s: %d threads for %d output elements", k.Name, k.Launch.TotalThreads(), elems)
			}
		}
	}
}

func TestRegisterCountsMatchTableIIIRanges(t *testing.T) {
	// Table III reports per-thread register counts between 5 and 31; our
	// launch configs must stay within a plausible GPU range and cover the
	// registers the program actually uses.
	for _, name := range networks.Names() {
		for _, k := range generate(t, name) {
			if k.Launch.Regs < 5 || k.Launch.Regs > 64 {
				t.Errorf("%s: %d registers per thread is implausible", k.Name, k.Launch.Regs)
			}
			if k.Launch.Regs < k.Program.MaxRegister() {
				t.Errorf("%s: launch regs %d < program demand %d", k.Name, k.Launch.Regs, k.Program.MaxRegister())
			}
		}
	}
}

func TestRNNResourceUsage(t *testing.T) {
	// Table III: GRU uses 504 bytes of shared memory and 56 of constant
	// memory; LSTM uses 936 and 60.
	gru := generate(t, "GRU")[0]
	if gru.Launch.SmemBytes != 504 || gru.Launch.CmemBytes != 56 {
		t.Errorf("GRU resources smem=%d cmem=%d, want 504/56", gru.Launch.SmemBytes, gru.Launch.CmemBytes)
	}
	lstm := generate(t, "LSTM")[0]
	if lstm.Launch.SmemBytes != 936 || lstm.Launch.CmemBytes != 60 {
		t.Errorf("LSTM resources smem=%d cmem=%d, want 936/60", lstm.Launch.SmemBytes, lstm.Launch.CmemBytes)
	}
	if lstm.Launch.Regs <= gru.Launch.Regs {
		t.Errorf("LSTM (%d regs) should use more registers than GRU (%d)", lstm.Launch.Regs, gru.Launch.Regs)
	}
}

func TestConvKernelInstructionMix(t *testing.T) {
	// The convolution kernel's dynamic instruction mix must be dominated by
	// the add/mad/mul/shl/ld family (Observation 7).
	ks := generate(t, "AlexNet")
	var conv *kernel.Kernel
	for _, k := range ks {
		if k.LayerName == "conv2" {
			conv = k
			break
		}
	}
	if conv == nil {
		t.Fatal("AlexNet conv2 kernel not found")
	}
	ops := conv.Program.OpCounts()
	var total int64
	for _, c := range ops {
		total += c
	}
	top4 := ops[isa.OpAdd] + ops[isa.OpMad] + ops[isa.OpMad24] + ops[isa.OpMul] + ops[isa.OpShl]
	if total == 0 || float64(top4)/float64(total) < 0.4 {
		t.Errorf("add/mad/mul/shl cover %d/%d dynamic instructions, want > 40%%", top4, total)
	}
	if ops[isa.OpLd] == 0 || ops[isa.OpSt] == 0 {
		t.Error("conv kernel must load inputs and store outputs")
	}
}

func TestConvLoopTripMatchesReduction(t *testing.T) {
	ks := generate(t, "CifarNet")
	for _, k := range ks {
		if k.LayerType != networks.LayerConv {
			continue
		}
		n, err := networks.NewCifarNet()
		if err != nil {
			t.Fatal(err)
		}
		l := n.Layer(k.LayerName)
		want := l.Conv.InChannels * l.Conv.KernelH * l.Conv.KernelW
		if len(k.Program.Loops) != 1 || k.Program.Loops[0].Trip != want {
			t.Errorf("%s: loop trip %d, want %d", k.Name, k.Program.Loops[0].Trip, want)
		}
	}
}

func TestIntegerHeavyDataTypes(t *testing.T) {
	// Observation 8: integer data types dominate even in floating-point
	// networks because of index computation.
	for _, name := range []string{"ResNet", "AlexNet"} {
		var f32, integer int64
		for _, k := range generate(t, name) {
			types := k.Program.TypeCounts()
			perThread := [isa.NumDTypes]int64{}
			for dt, c := range types {
				perThread[dt] = c * int64(k.Launch.TotalThreads())
			}
			f32 += perThread[isa.TypeF32]
			integer += perThread[isa.TypeU32] + perThread[isa.TypeU16] + perThread[isa.TypeS32] + perThread[isa.TypeS16]
		}
		if integer <= f32 {
			t.Errorf("%s: integer-typed instructions (%d) should outnumber f32 (%d)", name, integer, f32)
		}
	}
}

func TestFCUsesStridedWeightAccess(t *testing.T) {
	// FC weight loads must stream per-thread rows (large thread stride),
	// while conv weight loads are uniform across the warp.  This asymmetry
	// drives the paper's L2 miss-ratio contrast (Observation 11).
	ks := generate(t, "AlexNet")
	var fcStride, convStride int64 = -1, -1
	for _, k := range ks {
		var isFC bool
		switch k.LayerName {
		case "fc6":
			isFC = true
		case "conv3":
			isFC = false
		default:
			continue
		}
		for _, l := range k.Program.Loops {
			for _, ins := range l.Body {
				if ins.IsLoad() && ins.Pattern.Region == isa.RegionWeights {
					if isFC {
						fcStride = ins.Pattern.ThreadStride
					} else {
						convStride = ins.Pattern.ThreadStride
					}
				}
			}
		}
	}
	if fcStride <= 0 {
		t.Fatalf("fc weight loads should have a positive thread stride, got %d", fcStride)
	}
	if convStride != 0 {
		t.Fatalf("conv weight loads should be warp-uniform, got stride %d", convStride)
	}
}

func TestKernelValidateCatchesErrors(t *testing.T) {
	good := generate(t, "CifarNet")[0]

	bad := *good
	bad.Launch.Block = [3]int{64, 32, 1} // 2048 threads per block
	if err := bad.Validate(); err == nil {
		t.Error("over-limit block should fail validation")
	}

	bad = *good
	bad.Launch.Regs = 1
	if err := bad.Validate(); err == nil {
		t.Error("register underflow should fail validation")
	}

	bad = *good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("unnamed kernel should fail validation")
	}

	bad = *good
	bad.Program = kernel.Program{}
	if err := bad.Validate(); err == nil {
		t.Error("empty program should fail validation")
	}
}

func TestLaunchConfigHelpers(t *testing.T) {
	c := kernel.LaunchConfig{Grid: [3]int{4, 2, 1}, Block: [3]int{32, 4, 1}}
	if c.ThreadsPerBlock() != 128 {
		t.Errorf("ThreadsPerBlock = %d, want 128", c.ThreadsPerBlock())
	}
	if c.Blocks() != 8 {
		t.Errorf("Blocks = %d, want 8", c.Blocks())
	}
	if c.TotalThreads() != 1024 {
		t.Errorf("TotalThreads = %d, want 1024", c.TotalThreads())
	}
	if c.WarpsPerBlock() != 4 {
		t.Errorf("WarpsPerBlock = %d, want 4", c.WarpsPerBlock())
	}
	if c.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestProgramAccounting(t *testing.T) {
	p := kernel.Program{
		Prologue: []isa.Instruction{isa.NewALU(isa.OpMov, isa.TypeU32, 1)},
		Loops: []kernel.Loop{{
			Body: []isa.Instruction{
				isa.NewALU(isa.OpMad, isa.TypeF32, 2, 1, 1, 2),
				isa.NewALU(isa.OpBra, isa.TypeNone, isa.NoReg),
			},
			Trip: 10,
		}},
		Epilogue: []isa.Instruction{isa.NewALU(isa.OpExit, isa.TypeNone, isa.NoReg)},
	}
	if got := p.DynamicInstructions(); got != 22 {
		t.Errorf("DynamicInstructions = %d, want 22", got)
	}
	ops := p.OpCounts()
	if ops[isa.OpMad] != 10 || ops[isa.OpBra] != 10 || ops[isa.OpMov] != 1 || ops[isa.OpExit] != 1 {
		t.Errorf("unexpected op counts: %v", ops)
	}
	types := p.TypeCounts()
	if types[isa.TypeF32] != 10 || types[isa.TypeU32] != 1 {
		t.Errorf("unexpected type counts: %v", types)
	}
	if p.MaxRegister() != 3 {
		t.Errorf("MaxRegister = %d, want 3", p.MaxRegister())
	}
}

func TestRNNDynamicInstructionsSmall(t *testing.T) {
	// RNN kernels are tiny compared to CNN kernels (they motivate the paper's
	// observation that RNNs are insensitive to cache size).
	gru := generate(t, "GRU")
	alex := generate(t, "AlexNet")
	var gruTotal, alexTotal int64
	for _, k := range gru {
		gruTotal += k.DynamicInstructions()
	}
	for _, k := range alex {
		alexTotal += k.DynamicInstructions()
	}
	if gruTotal*100 > alexTotal {
		t.Errorf("GRU dynamic instructions (%d) should be <1%% of AlexNet's (%d)", gruTotal, alexTotal)
	}
}
