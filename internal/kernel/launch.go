package kernel

import (
	"tango/internal/networks"
)

// maxThreadsPerBlock is the CUDA block-size limit the launch heuristics obey.
const maxThreadsPerBlock = 1024

// planeTiles are the square tile widths the launch heuristic tries, largest
// first, when a feature-map plane exceeds one thread block.  The values mirror
// the tilings the original suite uses (e.g. VGGNet's 14x14 blocks over
// 224x224 maps).
var planeTiles = []int{32, 28, 16, 14, 8, 7, 4, 2, 1}

// launchGeometry derives grid and block dimensions for a layer with the given
// output shape, following the paper's one-thread-per-neuron mapping.
func launchGeometry(l *networks.Layer, outShape []int) (grid, block [3]int) {
	switch l.Type {
	case networks.LayerGRU:
		// Table III: GRU layer runs one block of (10,10,1) threads.
		side := intSqrt(l.Hidden)
		if side*side != l.Hidden {
			return [3]int{1, 1, 1}, [3]int{l.Hidden, 1, 1}
		}
		return [3]int{1, 1, 1}, [3]int{side, side, 1}
	case networks.LayerLSTM:
		// Table III: LSTM layer runs one block of (100,1,1) threads.
		return [3]int{1, 1, 1}, [3]int{l.Hidden, 1, 1}
	}

	if len(outShape) == 3 {
		c, h, w := outShape[0], outShape[1], outShape[2]
		if h*w <= maxThreadsPerBlock {
			// One block per output channel, one thread per output pixel
			// (AlexNet / SqueezeNet / ResNet style in Table III).
			return [3]int{c, 1, 1}, [3]int{w, h, 1}
		}
		// Tile the plane (VGGNet style in Table III).
		t := 1
		for _, cand := range planeTiles {
			if cand*cand <= maxThreadsPerBlock && cand <= h && cand <= w {
				t = cand
				break
			}
		}
		return [3]int{ceilDiv(h, t), ceilDiv(w, t), c}, [3]int{t, t, 1}
	}

	// Rank-1 outputs (FC, global pooling, softmax, RNN heads).
	n := 1
	for _, d := range outShape {
		n *= d
	}
	if n <= maxThreadsPerBlock {
		return [3]int{1, 1, 1}, [3]int{n, 1, 1}
	}
	// Table III: AlexNet's fully-connected layers launch one thread per
	// block, grid (4096,1,1) block (1,1,1).
	return [3]int{n, 1, 1}, [3]int{1, 1, 1}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// minRegsByType gives the lower bound on reported per-thread register counts
// per layer type, matching the ranges of Table III.
var minRegsByType = map[networks.LayerType]int{
	networks.LayerConv:       18,
	networks.LayerPool:       12,
	networks.LayerFC:         8,
	networks.LayerLRN:        13,
	networks.LayerBatchNorm:  12,
	networks.LayerScale:      12,
	networks.LayerReLU:       8,
	networks.LayerEltwise:    11,
	networks.LayerConcat:     8,
	networks.LayerSoftmax:    10,
	networks.LayerGlobalPool: 14,
	networks.LayerGRU:        12,
	networks.LayerLSTM:       22,
}

// smemByType gives the static shared-memory footprint per block in bytes per
// layer type, matching Table III.
var smemByType = map[networks.LayerType]int{
	networks.LayerConv:       56,
	networks.LayerPool:       60,
	networks.LayerFC:         58,
	networks.LayerLRN:        64,
	networks.LayerBatchNorm:  52,
	networks.LayerScale:      52,
	networks.LayerReLU:       32,
	networks.LayerEltwise:    48,
	networks.LayerConcat:     40,
	networks.LayerSoftmax:    40,
	networks.LayerGlobalPool: 40,
	networks.LayerGRU:        504,
	networks.LayerLSTM:       936,
}

// staticResources derives register, shared-memory and constant-memory usage
// for a lowered layer from its program and parameters.
func staticResources(l *networks.Layer, prog Program) (regs, smem, cmem int) {
	regs = prog.MaxRegister()
	if min, ok := minRegsByType[l.Type]; ok && regs < min {
		regs = min
	}
	smem = smemByType[l.Type]
	if smem == 0 {
		smem = 40
	}

	// Constant memory holds per-kernel scalars plus small broadcast
	// parameters such as biases; Table III reports 0-308 bytes.
	switch l.Type {
	case networks.LayerConv:
		cmem = clamp(4*l.Conv.OutChannels/8+12, 12, 308)
	case networks.LayerFC:
		cmem = 204
	case networks.LayerLRN:
		cmem = 308
	case networks.LayerPool:
		cmem = 20
	case networks.LayerGRU:
		cmem = 56
	case networks.LayerLSTM:
		cmem = 60
	case networks.LayerBatchNorm:
		cmem = 12
	case networks.LayerScale, networks.LayerGlobalPool:
		cmem = 4
	case networks.LayerEltwise, networks.LayerReLU:
		cmem = 8
	default:
		cmem = 4
	}
	return regs, smem, cmem
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
