package kernel

import (
	"fmt"
	"io"

	"tango/internal/isa"
)

// WriteDisassembly writes a human-readable PTX-like listing of the kernel's
// thread program to w: the launch geometry header, the prologue, each counted
// loop with its trip count, and the epilogue.  It is the equivalent of
// inspecting the original suite's .ptx files and is used by tools and tests
// to audit the generated instruction mix.
func WriteDisassembly(w io.Writer, k *Kernel) error {
	if k == nil {
		return fmt.Errorf("kernel: nil kernel")
	}
	if _, err := fmt.Fprintf(w, "// kernel %s  class=%s\n// launch %s\n", k.Name, k.Class, k.Launch); err != nil {
		return err
	}
	write := func(label string, instrs []isa.Instruction) error {
		if len(instrs) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(w, "%s:\n", label); err != nil {
			return err
		}
		for i, ins := range instrs {
			if err := writeInstruction(w, i, ins); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("prologue", k.Program.Prologue); err != nil {
		return err
	}
	for li, loop := range k.Program.Loops {
		if _, err := fmt.Fprintf(w, "loop%d: // %d iterations\n", li, loop.Trip); err != nil {
			return err
		}
		for i, ins := range loop.Body {
			if err := writeInstruction(w, i, ins); err != nil {
				return err
			}
		}
	}
	return write("epilogue", k.Program.Epilogue)
}

func writeInstruction(w io.Writer, idx int, ins isa.Instruction) error {
	operands := ""
	if ins.Dst != isa.NoReg {
		operands = fmt.Sprintf(" r%d", ins.Dst)
	}
	for s := 0; s < int(ins.NSrcs); s++ {
		if ins.Srcs[s] == isa.NoReg {
			continue
		}
		sep := ", "
		if operands == "" {
			sep = " "
		}
		operands += fmt.Sprintf("%sr%d", sep, ins.Srcs[s])
	}
	suffix := ""
	if ins.IsMem() && ins.Space == isa.SpaceGlobal {
		p := ins.Pattern
		suffix = fmt.Sprintf("  // %s base=%d tstride=%d istride=%d", p.Region, p.Base, p.ThreadStride, p.IterStride)
	}
	_, err := fmt.Fprintf(w, "  %3d: %-16s%s%s\n", idx, ins.String(), operands, suffix)
	return err
}
