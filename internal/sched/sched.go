// Package sched implements the warp schedulers the paper sweeps in its
// scheduler-sensitivity experiments (Figures 15 and 16): GTO
// (greedy-then-oldest), LRR (loose round-robin) and TLV (two-level).
package sched

import (
	"fmt"
	"strings"
)

// Candidate describes one schedulable warp at the current cycle.  The
// simulator presents candidates sorted by ascending ID; schedulers may rely
// on that ordering.
type Candidate struct {
	// ID is the warp's stable identifier within its SM.
	ID int
	// Ready reports whether the warp's next instruction can issue this cycle.
	Ready bool
	// Age is the cycle the warp was launched (smaller = older).
	Age int64
	// WaitingOnMemory reports whether the warp is blocked on an outstanding
	// memory access (used by the two-level scheduler to demote warps).
	WaitingOnMemory bool
}

// Scheduler selects which ready warp issues next.
type Scheduler interface {
	// Name returns the scheduler's short name ("gto", "lrr", "tlv").
	Name() string
	// Pick returns the index into candidates of the warp to issue, or -1 if
	// no candidate is ready.
	Pick(candidates []Candidate, cycle int64) int
	// Reset clears internal state between kernels.
	Reset()
}

// Kind names a scheduler implementation.
type Kind string

// Scheduler kinds, matching the GPGPU-Sim options the paper uses.
const (
	GTO Kind = "gto"
	LRR Kind = "lrr"
	TLV Kind = "tlv"
)

// Kinds returns all scheduler kinds in the paper's order.
func Kinds() []Kind { return []Kind{GTO, LRR, TLV} }

// New constructs a scheduler of the given kind.
func New(kind Kind) (Scheduler, error) {
	switch Kind(strings.ToLower(string(kind))) {
	case GTO:
		return &gtoScheduler{lastWarp: -1}, nil
	case LRR:
		return &lrrScheduler{}, nil
	case TLV:
		return &tlvScheduler{activeLimit: 8}, nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %q (want gto, lrr or tlv)", kind)
	}
}

// gtoScheduler keeps issuing from the most recently issued warp until it
// stalls, then falls back to the oldest ready warp.
type gtoScheduler struct {
	lastWarp int
}

func (g *gtoScheduler) Name() string { return string(GTO) }

func (g *gtoScheduler) Reset() { g.lastWarp = -1 }

func (g *gtoScheduler) Pick(candidates []Candidate, _ int64) int {
	// Greedy: continue with the last issued warp if it is still ready.
	if g.lastWarp >= 0 {
		if i := find(candidates, g.lastWarp); i >= 0 && candidates[i].Ready {
			return i
		}
	}
	// Oldest ready warp.
	best := -1
	for i, c := range candidates {
		if !c.Ready {
			continue
		}
		if best == -1 || c.Age < candidates[best].Age ||
			(c.Age == candidates[best].Age && c.ID < candidates[best].ID) {
			best = i
		}
	}
	if best >= 0 {
		g.lastWarp = candidates[best].ID
	}
	return best
}

// lrrScheduler rotates through warps in ID order, starting after the last
// issued warp.
type lrrScheduler struct {
	lastID int
	seeded bool
}

func (l *lrrScheduler) Name() string { return string(LRR) }

func (l *lrrScheduler) Reset() { l.lastID = 0; l.seeded = false }

func (l *lrrScheduler) Pick(candidates []Candidate, _ int64) int {
	if len(candidates) == 0 {
		return -1
	}
	start := 0
	if l.seeded {
		// Find the first candidate with ID greater than the last issued one.
		for i, c := range candidates {
			if c.ID > l.lastID {
				start = i
				break
			}
		}
	}
	for off := 0; off < len(candidates); off++ {
		i := (start + off) % len(candidates)
		if candidates[i].Ready {
			l.lastID = candidates[i].ID
			l.seeded = true
			return i
		}
	}
	return -1
}

// tlvScheduler is a two-level scheduler: only a bounded active set of warps
// is considered each cycle (round-robin within it); warps that block on
// memory are demoted to the pending set and replaced by pending warps.
type tlvScheduler struct {
	activeLimit int
	active      []int
	rrPointer   int
}

func (t *tlvScheduler) Name() string { return string(TLV) }

func (t *tlvScheduler) Reset() { t.active = nil; t.rrPointer = 0 }

// find returns the index of the candidate with the given ID via binary
// search over the ID-sorted candidate list, or -1 when absent.
func find(candidates []Candidate, id int) int {
	lo, hi := 0, len(candidates)
	for lo < hi {
		mid := (lo + hi) / 2
		if candidates[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(candidates) && candidates[lo].ID == id {
		return lo
	}
	return -1
}

func (t *tlvScheduler) Pick(candidates []Candidate, _ int64) int {
	if len(candidates) == 0 {
		return -1
	}

	// Drop departed or memory-blocked warps from the active set.
	kept := t.active[:0]
	for _, id := range t.active {
		i := find(candidates, id)
		if i < 0 || candidates[i].WaitingOnMemory {
			continue
		}
		kept = append(kept, id)
	}
	t.active = kept

	// Refill the active set with non-blocked warps not already active,
	// oldest first (stable: candidates arrive in ID order).
	for _, c := range candidates {
		if len(t.active) >= t.activeLimit {
			break
		}
		if c.WaitingOnMemory {
			continue
		}
		already := false
		for _, id := range t.active {
			if id == c.ID {
				already = true
				break
			}
		}
		if !already {
			t.active = append(t.active, c.ID)
		}
	}
	if len(t.active) == 0 {
		return -1
	}

	// Round-robin within the active set.
	for off := 0; off < len(t.active); off++ {
		slot := (t.rrPointer + off) % len(t.active)
		i := find(candidates, t.active[slot])
		if i >= 0 && candidates[i].Ready {
			t.rrPointer = (slot + 1) % len(t.active)
			return i
		}
	}
	return -1
}
