package sched

import (
	"testing"
)

func TestNewKinds(t *testing.T) {
	for _, kind := range Kinds() {
		s, err := New(kind)
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if s.Name() != string(kind) {
			t.Errorf("Name() = %q, want %q", s.Name(), kind)
		}
	}
	if _, err := New("fifo"); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := New("GTO"); err != nil {
		t.Errorf("kind lookup should be case-insensitive: %v", err)
	}
	if len(Kinds()) != 3 {
		t.Errorf("expected 3 scheduler kinds, got %d", len(Kinds()))
	}
}

func cands(ready ...bool) []Candidate {
	cs := make([]Candidate, len(ready))
	for i, r := range ready {
		cs[i] = Candidate{ID: i, Ready: r, Age: int64(i)}
	}
	return cs
}

func TestAllSchedulersPickOnlyReady(t *testing.T) {
	for _, kind := range Kinds() {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		// Nothing ready.
		if got := s.Pick(cands(false, false, false), 0); got != -1 {
			t.Errorf("%s: Pick with nothing ready = %d, want -1", kind, got)
		}
		// Only warp 2 ready.
		if got := s.Pick(cands(false, false, true), 1); got != 2 {
			t.Errorf("%s: Pick = %d, want 2", kind, got)
		}
		// Empty candidate list.
		if got := s.Pick(nil, 2); got != -1 {
			t.Errorf("%s: Pick(nil) = %d, want -1", kind, got)
		}
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	s, err := New(GTO)
	if err != nil {
		t.Fatal(err)
	}
	// First pick: the oldest ready warp (all same readiness, warp 0 oldest).
	c := []Candidate{
		{ID: 0, Ready: true, Age: 5},
		{ID: 1, Ready: true, Age: 3},
		{ID: 2, Ready: true, Age: 9},
	}
	if got := s.Pick(c, 0); got != 1 {
		t.Fatalf("GTO first pick = %d, want oldest (index 1)", got)
	}
	// Greedy: warp 1 stays ready, so GTO sticks with it.
	if got := s.Pick(c, 1); got != 1 {
		t.Errorf("GTO should stay greedy on warp 1, picked %d", got)
	}
	// Warp 1 stalls; GTO falls back to the oldest remaining ready warp (0).
	c[1].Ready = false
	if got := s.Pick(c, 2); got != 0 {
		t.Errorf("GTO fallback = %d, want 0", got)
	}
	s.Reset()
	if got := s.Pick(c, 3); got != 0 {
		t.Errorf("after reset GTO should pick oldest ready, got %d", got)
	}
}

func TestLRRRotates(t *testing.T) {
	s, err := New(LRR)
	if err != nil {
		t.Fatal(err)
	}
	c := cands(true, true, true)
	order := []int{}
	for i := 0; i < 6; i++ {
		got := s.Pick(c, int64(i))
		order = append(order, got)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LRR issue order %v, want %v", order, want)
		}
	}
	// Skips non-ready warps.
	c[1].Ready = false
	if got := s.Pick(c, 7); got != 1 && got != 0 && got != 2 {
		t.Fatalf("unexpected pick %d", got)
	}
}

func TestLRRSkipsStalled(t *testing.T) {
	s, err := New(LRR)
	if err != nil {
		t.Fatal(err)
	}
	c := cands(true, false, true)
	first := s.Pick(c, 0)
	second := s.Pick(c, 1)
	if first != 0 || second != 2 {
		t.Errorf("LRR should rotate over ready warps 0 and 2, got %d then %d", first, second)
	}
}

func TestTLVBoundsActiveSet(t *testing.T) {
	s, err := New(TLV)
	if err != nil {
		t.Fatal(err)
	}
	// 16 ready warps: the two-level scheduler only rotates within its active
	// set of 8, so warps 8..15 never issue while 0..7 stay ready.
	c := make([]Candidate, 16)
	for i := range c {
		c[i] = Candidate{ID: i, Ready: true, Age: int64(i)}
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		got := s.Pick(c, int64(i))
		if got < 0 {
			t.Fatal("TLV should always find a ready warp")
		}
		seen[c[got].ID] = true
	}
	if len(seen) != 8 {
		t.Errorf("TLV issued from %d distinct warps, want 8 (active set)", len(seen))
	}
	for id := 8; id < 16; id++ {
		if seen[id] {
			t.Errorf("warp %d issued despite being outside the active set", id)
		}
	}
}

func TestTLVDemotesMemoryBlockedWarps(t *testing.T) {
	s, err := New(TLV)
	if err != nil {
		t.Fatal(err)
	}
	c := make([]Candidate, 10)
	for i := range c {
		c[i] = Candidate{ID: i, Ready: true, Age: int64(i)}
	}
	// Fill the active set with warps 0..7.
	for i := 0; i < 8; i++ {
		s.Pick(c, int64(i))
	}
	// Warps 0..3 block on memory: they leave the active set and 8, 9 join.
	for i := 0; i < 4; i++ {
		c[i].Ready = false
		c[i].WaitingOnMemory = true
	}
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		got := s.Pick(c, int64(8+i))
		if got >= 0 {
			seen[c[got].ID] = true
		}
	}
	if !seen[8] || !seen[9] {
		t.Errorf("pending warps should be promoted into the active set, saw %v", seen)
	}
	for id := 0; id < 4; id++ {
		if seen[id] {
			t.Errorf("memory-blocked warp %d should not issue", id)
		}
	}
	s.Reset()
}

func TestTLVAllBlocked(t *testing.T) {
	s, err := New(TLV)
	if err != nil {
		t.Fatal(err)
	}
	c := []Candidate{
		{ID: 0, Ready: false, WaitingOnMemory: true},
		{ID: 1, Ready: false, WaitingOnMemory: true},
	}
	if got := s.Pick(c, 0); got != -1 {
		t.Errorf("all-blocked pick = %d, want -1", got)
	}
}
