package core_test

import (
	"testing"

	"tango/internal/core"
	"tango/internal/gpusim"
	"tango/internal/networks"
)

func TestLoadBenchmark(t *testing.T) {
	b, err := core.Load("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "CifarNet" || b.Kind() != networks.KindCNN {
		t.Errorf("unexpected identity: %s %v", b.Name(), b.Kind())
	}
	if len(b.Kernels) != len(b.Network.Layers) {
		t.Errorf("kernels %d, layers %d", len(b.Kernels), len(b.Network.Layers))
	}
	if b.Weights == nil || len(b.Weights.Keys()) == 0 {
		t.Error("weights should be synthesized")
	}
	if _, err := core.Load("NoSuchNet"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestSampleInputAndInference(t *testing.T) {
	b, err := core.Load("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.SampleInput(1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 3*32*32 {
		t.Errorf("sample input has %d elements", in.Len())
	}
	res, err := b.RunInference(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedClass < 0 || res.PredictedClass >= 9 {
		t.Errorf("predicted class %d out of range", res.PredictedClass)
	}
	// Determinism of sample inputs.
	in2, err := b.SampleInput(1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Data()[0] != in2.Data()[0] {
		t.Error("sample inputs with the same seed must match")
	}
	in3, err := b.SampleInput(2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Data()[0] == in3.Data()[0] {
		t.Error("different seeds should give different inputs")
	}
	if _, err := b.SampleSequence(1); err == nil {
		t.Error("SampleSequence on a CNN should fail")
	}
}

func TestSampleSequenceAndRNNInference(t *testing.T) {
	b, err := core.Load("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := b.SampleSequence(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Errorf("sequence length %d, want 2", len(seq))
	}
	res, err := b.RunSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 1 {
		t.Errorf("RNN output length %d, want 1", res.Output.Len())
	}
	if _, err := b.SampleInput(1); err == nil {
		t.Error("SampleInput on an RNN should fail")
	}
}

func TestBenchmarkSimulate(t *testing.T) {
	b, err := core.Load("GRU")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := b.Simulate(gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()))
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalCycles() <= 0 || len(rs.Kernels) != len(b.Kernels) {
		t.Errorf("unexpected simulation result: %d cycles, %d kernels", rs.TotalCycles(), len(rs.Kernels))
	}
	if _, err := b.Simulate(gpusim.Config{}); err == nil {
		t.Error("invalid simulation config should fail")
	}
}

func TestReferenceInputsTableI(t *testing.T) {
	refs := core.ReferenceInputs()
	if len(refs) != 7 {
		t.Fatalf("Table I should list 7 networks, got %d", len(refs))
	}
	names := map[string]bool{}
	for _, r := range refs {
		names[r.Network] = true
		if r.InputData == "" || r.Pretrained == "" || r.Output == "" {
			t.Errorf("%s: incomplete Table I entry", r.Network)
		}
	}
	for _, want := range networks.Names() {
		if !names[want] {
			t.Errorf("Table I missing %s", want)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	s := core.NewSuite()
	if len(s.Names()) != 7 {
		t.Fatalf("suite should expose 7 names")
	}
	if len(s.Loaded()) != 0 {
		t.Error("nothing should be loaded initially")
	}
	a, err := s.Benchmark("GRU")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Benchmark("GRU")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("suite should cache benchmarks")
	}
	if got := s.Loaded(); len(got) != 1 || got[0] != "GRU" {
		t.Errorf("Loaded() = %v", got)
	}
	if _, err := s.Benchmark("nope"); err == nil {
		t.Error("unknown name should fail")
	}
	if len(s.CNNNames())+len(s.RNNNames()) != len(s.Names()) {
		t.Error("CNN and RNN names should partition the suite")
	}
}

func TestSuiteAllLoadsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("loading all seven benchmarks skipped in -short mode")
	}
	s := core.NewSuite()
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("All() returned %d benchmarks", len(all))
	}
	if len(s.Loaded()) != 7 {
		t.Error("All() should cache every benchmark")
	}
}
