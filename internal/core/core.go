// Package core ties the Tango benchmark suite together: it couples each of
// the seven networks with its synthesized weights and lowered kernels,
// provides native inference and simulated execution entry points, and
// supplies deterministic sample inputs standing in for the suite's reference
// images and price series (Table I).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tango/internal/gpusim"
	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
	"tango/internal/weights"
)

// Benchmark is one workload of the suite, ready to run natively or on the
// simulator.
type Benchmark struct {
	// Network is the layer graph with reference shapes.
	Network *networks.Network
	// Weights is the synthesized parameter set.
	Weights *weights.Set
	// Kernels is the lowered kernel list (Table III geometry).
	Kernels []*kernel.Kernel

	// planOnce resolves the weight plan for the native compute engine on
	// first use; the plan is immutable and shared by all runs.  planReady
	// lets accounting observe whether the plan exists without building it.
	planOnce  sync.Once
	plan      *networks.Plan
	planErr   error
	planReady atomic.Bool
	// scratch pools per-goroutine compute engine state so steady-state
	// inference reuses its buffers.
	scratch sync.Pool
	// scratchHW tracks the largest single-scratch footprint ever released
	// back to the pool: the high-water mark of the compute engine's
	// per-goroutine working set, reported through MemStats.
	scratchHW atomic.Int64
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.Network.Name }

// Kind returns CNN or RNN.
func (b *Benchmark) Kind() networks.Kind { return b.Network.Kind }

// Load builds one benchmark by name.
func Load(name string) (*Benchmark, error) {
	n, err := networks.New(name)
	if err != nil {
		return nil, err
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	return &Benchmark{Network: n, Weights: ws, Kernels: ks}, nil
}

// SampleInput returns a deterministic synthetic input image for a CNN
// benchmark, standing in for the reference inputs of Table I (cat image,
// speed-limit sign, killer whale).
func (b *Benchmark) SampleInput(seed uint64) (*tensor.Tensor, error) {
	if b.Network.Kind != networks.KindCNN {
		return nil, fmt.Errorf("core: %s is an RNN; use SampleSequence", b.Name())
	}
	in := tensor.New(b.Network.InputShape...)
	in.FillUniform(tensor.NewRNG(seed^0x7A4C0), 0, 1)
	return in, nil
}

// SampleSequence returns a deterministic synthetic price sequence for an RNN
// benchmark, standing in for the bitcoin price history of Table I.
func (b *Benchmark) SampleSequence(seed uint64) ([]*tensor.Tensor, error) {
	if b.Network.Kind != networks.KindRNN {
		return nil, fmt.Errorf("core: %s is a CNN; use SampleInput", b.Name())
	}
	r := tensor.NewRNG(seed ^ 0xB17C01)
	steps := b.Network.SeqLen
	if steps <= 0 {
		steps = 2
	}
	seq := make([]*tensor.Tensor, steps)
	price := 0.4 + 0.2*r.Float32()
	for i := range seq {
		x := tensor.New(b.Network.InputShape...)
		// A normalized random walk, like scaled daily closing prices.
		price += (r.Float32() - 0.5) * 0.05
		x.Fill(price)
		seq[i] = x
	}
	return seq, nil
}

// SampleInputBatch returns a deterministic batch of n synthetic input images
// stacked along a leading dimension; sample i is bit-identical to
// SampleInput(seed + i), so batched runs can be validated against the
// single-sample path.
func (b *Benchmark) SampleInputBatch(seed uint64, n int) (*tensor.Tensor, error) {
	if b.Network.Kind != networks.KindCNN {
		return nil, fmt.Errorf("core: %s is an RNN; use SampleSequenceBatch", b.Name())
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: %s: %w: batch size must be positive, got %d",
			b.Name(), tensor.ErrShape, n)
	}
	batch := tensor.New(append([]int{n}, b.Network.InputShape...)...)
	sample := batch.Len() / n
	for i := 0; i < n; i++ {
		in, err := b.SampleInput(seed + uint64(i))
		if err != nil {
			return nil, err
		}
		copy(batch.Data()[i*sample:(i+1)*sample], in.Data())
	}
	return batch, nil
}

// SampleSequenceBatch returns a deterministic batch of n synthetic price
// sequences in the time-major (steps, n, features) layout RunSequenceBatch
// expects; sequence i is bit-identical to SampleSequence(seed + i).
func (b *Benchmark) SampleSequenceBatch(seed uint64, n int) (*tensor.Tensor, error) {
	if b.Network.Kind != networks.KindRNN {
		return nil, fmt.Errorf("core: %s is a CNN; use SampleInputBatch", b.Name())
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: %s: %w: batch size must be positive, got %d",
			b.Name(), tensor.ErrShape, n)
	}
	steps := b.Network.SeqLen
	if steps <= 0 {
		steps = 2
	}
	inSize := b.Network.InputShape[0]
	batch := tensor.New(steps, n, inSize)
	for i := 0; i < n; i++ {
		seq, err := b.SampleSequence(seed + uint64(i))
		if err != nil {
			return nil, err
		}
		for t, x := range seq {
			copy(batch.Data()[(t*n+i)*inSize:(t*n+i+1)*inSize], x.Data())
		}
	}
	return batch, nil
}

// Plan returns the benchmark's resolved execution plan for the native
// compute engine, building it on first use.
func (b *Benchmark) Plan() (*networks.Plan, error) {
	b.planOnce.Do(func() {
		b.plan = nil
		b.plan, b.planErr = b.Network.NewPlan(b.Weights)
		b.planReady.Store(true)
	})
	return b.plan, b.planErr
}

// AcquireScratch returns a pooled compute-engine scratch configured for the
// given worker count.  Release it with ReleaseScratch once every tensor of
// the run's Result has been consumed: results produced with a scratch alias
// its arena and are overwritten by the next run that reuses it.
func (b *Benchmark) AcquireScratch(workers int) *nn.Scratch {
	return b.AcquireScratchNumerics(workers, nn.NumericsReference)
}

// AcquireScratchNumerics is AcquireScratch with an explicit numerics tier;
// every configurable scratch knob is reset so a pooled scratch never leaks a
// previous caller's mode.
func (b *Benchmark) AcquireScratchNumerics(workers int, mode nn.Numerics) *nn.Scratch {
	s, ok := b.scratch.Get().(*nn.Scratch)
	if !ok {
		s = nn.NewScratch()
	}
	s.SetWorkers(workers)
	s.SetDirect(false)
	s.SetNumerics(mode)
	return s
}

// PrepareNumerics eagerly builds the plan and packs its weights for the
// given numerics tier, so the first fast-tier inference doesn't pay the
// one-time packing cost.  Packing is idempotent and otherwise happens
// lazily on the first run that uses the tier.
func (b *Benchmark) PrepareNumerics(mode nn.Numerics) error {
	p, err := b.Plan()
	if err != nil {
		return err
	}
	p.Pack(mode)
	return nil
}

// ReleaseScratch returns a scratch to the benchmark's pool.
func (b *Benchmark) ReleaseScratch(s *nn.Scratch) {
	if s != nil {
		if n := s.Bytes(); n > b.scratchHW.Load() {
			// Racy max is fine: a lost update is one release's worth of
			// under-reporting, corrected by the next release at that size.
			b.scratchHW.Store(n)
		}
		b.scratch.Put(s)
	}
}

// MemStats is a benchmark's resident-memory breakdown, the accounting
// surface behind per-model memory budgets and the resident-bytes series on
// /metrics.
type MemStats struct {
	// WeightBytes is the synthesized parameter footprint.
	WeightBytes int64
	// PackedBytes is the fast-tier weight panels built so far.
	PackedBytes int64
	// ScratchBytes is the high-water footprint of one pooled compute
	// scratch (arena + staging buffers).
	ScratchBytes int64
}

// Total returns the benchmark's total resident estimate.
func (m MemStats) Total() int64 { return m.WeightBytes + m.PackedBytes + m.ScratchBytes }

// MemStats reports the benchmark's current resident-memory breakdown.  The
// packed-panel term only counts tiers already packed; the scratch term is
// the per-goroutine high-water mark, so multi-worker servers see at least
// this much per concurrently running batch.
func (b *Benchmark) MemStats() MemStats {
	m := MemStats{ScratchBytes: b.scratchHW.Load()}
	if b.Weights != nil {
		m.WeightBytes = b.Weights.TotalBytes()
	}
	// Only an already-built plan contributes packs; don't force a build
	// just to report zero.
	if b.planReady.Load() {
		if p, err := b.Plan(); err == nil && p != nil {
			m.PackedBytes = p.PackedBytes()
		}
	}
	return m
}

// RunInference executes the CNN natively and returns the classification.
// Results are freshly allocated; for steady-state inference use Plan with an
// AcquireScratch scratch.
func (b *Benchmark) RunInference(input *tensor.Tensor) (*networks.Result, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.Run(input, nil)
}

// RunInferenceScratch executes the CNN natively on the compute engine with
// the given scratch.  The Result's tensors alias the scratch arena.
func (b *Benchmark) RunInferenceScratch(input *tensor.Tensor, s *nn.Scratch) (*networks.Result, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.Run(input, s)
}

// RunSequence executes the RNN natively over a price sequence.  Results are
// freshly allocated; for steady-state inference use Plan with an
// AcquireScratch scratch.
func (b *Benchmark) RunSequence(seq []*tensor.Tensor) (*networks.Result, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.RunSequence(seq, nil)
}

// RunSequenceScratch executes the RNN natively on the compute engine with
// the given scratch.  The Result's tensors alias the scratch arena.
func (b *Benchmark) RunSequenceScratch(seq []*tensor.Tensor, s *nn.Scratch) (*networks.Result, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.RunSequence(seq, s)
}

// RunBatchScratch executes the CNN natively over a rank-4 (N, C, H, W)
// batch on the compute engine with the given scratch, folding the batch into
// the GEMM dimensions for throughput.  The BatchResult's storage aliases the
// scratch.  Results are bit-identical to N single-sample runs.
func (b *Benchmark) RunBatchScratch(input *tensor.Tensor, s *nn.Scratch) (*networks.BatchResult, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.RunBatch(input, s)
}

// RunSequenceBatchScratch executes the RNN natively over a rank-3
// (steps, N, features) batch of equal-length sequences with the given
// scratch.  The BatchResult's storage aliases the scratch.
func (b *Benchmark) RunSequenceBatchScratch(seq *tensor.Tensor, s *nn.Scratch) (*networks.BatchResult, error) {
	p, err := b.Plan()
	if err != nil {
		return nil, err
	}
	return p.RunSequenceBatch(seq, s)
}

// Simulate runs every kernel of the benchmark on the architecture simulator.
func (b *Benchmark) Simulate(cfg gpusim.Config) (*gpusim.RunStats, error) {
	sim, err := gpusim.New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunKernels(b.Name(), b.Kernels)
}

// ReferenceInput documents the input, pre-trained model and output of each
// benchmark, reproducing Table I of the paper.
type ReferenceInput struct {
	Network    string
	InputData  string
	Pretrained string
	Output     string
}

// ReferenceInputs returns the Table I entries in suite order.
func ReferenceInputs() []ReferenceInput {
	return []ReferenceInput{
		{"GRU", "Bitcoin stock price values of past two days (scaled)",
			"Trained on the Kaggle bitcoin price prediction dataset (synthetic stand-in)",
			"Projected next stock price"},
		{"LSTM", "Bitcoin stock price values of past two days (scaled)",
			"Trained on the Kaggle bitcoin price prediction dataset (synthetic stand-in)",
			"Projected next stock price"},
		{"CifarNet", "Speed limit 35 sign image (3x32x32)",
			"Traffic-signal model, 9 classes (synthetic stand-in)",
			"Confidence level for all 9 classes"},
		{"AlexNet", "Cat image (3x227x227)",
			"BVLC reference AlexNet, 1000 ImageNet classes (synthetic stand-in)",
			"Recognized class id"},
		{"SqueezeNet", "Cat image (3x227x227)",
			"SqueezeNet v1.0, 1000 ImageNet classes (synthetic stand-in)",
			"Recognized class id"},
		{"ResNet", "Cat image (3x224x224)",
			"ResNet-50 (MSRA), 1000 ImageNet classes (synthetic stand-in)",
			"Recognized class id"},
		{"VGGNet", "Killer whale image (3x224x224)",
			"VGG-16 (Oxford), 1000 ImageNet classes (synthetic stand-in)",
			"Recognized class id"},
	}
}

// Suite lazily loads and caches the seven benchmarks.
type Suite struct {
	mu    sync.Mutex
	cache map[string]*Benchmark
}

// NewSuite returns an empty suite.
func NewSuite() *Suite {
	return &Suite{cache: make(map[string]*Benchmark)}
}

// Names returns the benchmark names in suite order.
func (s *Suite) Names() []string { return networks.Names() }

// CNNNames returns the convolutional benchmark names.
func (s *Suite) CNNNames() []string { return networks.CNNNames() }

// RNNNames returns the recurrent benchmark names.
func (s *Suite) RNNNames() []string { return networks.RNNNames() }

// Benchmark returns the named benchmark, loading it on first use.
func (s *Suite) Benchmark(name string) (*Benchmark, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.cache[name]; ok {
		return b, nil
	}
	b, err := Load(name)
	if err != nil {
		return nil, err
	}
	s.cache[name] = b
	return b, nil
}

// All returns every benchmark, loading any not yet cached.
func (s *Suite) All() ([]*Benchmark, error) {
	out := make([]*Benchmark, 0, len(s.Names()))
	for _, name := range s.Names() {
		b, err := s.Benchmark(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Loaded returns the names of already-loaded benchmarks, sorted.
func (s *Suite) Loaded() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.cache))
	for n := range s.cache {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
