// Package cli holds the small flag-parsing helpers the command-line tools
// share, so the CLIs cannot drift apart on list syntax or worker defaults.
package cli

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(v); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, v := range SplitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", v, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// Workers maps a -parallel flag value onto a worker count: 0 (and negatives)
// select one worker per available CPU, matching the experiment options.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
