package cli

import (
	"reflect"
	"runtime"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":             nil,
		"a":            {"a"},
		"a,b":          {"a", "b"},
		" a , ,b, ":    {"a", "b"},
		",,":           nil,
		"GRU,CifarNet": {"GRU", "CifarNet"},
	}
	for in, want := range cases {
		if got := SplitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitList(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("0, 64,256")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 64, 256}) {
		t.Errorf("ParseInts = %v", got)
	}
	if out, err := ParseInts(""); err != nil || out != nil {
		t.Errorf("empty list should parse to nil, got %v, %v", out, err)
	}
	if _, err := ParseInts("64,x"); err == nil {
		t.Error("non-integer entry should fail")
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}
