// Package weights synthesizes and stores the per-layer parameter tensors of
// the benchmark networks.
//
// The original benchmark suite ships pre-trained Caffe/Keras model files
// partitioned into per-layer weight blobs (Table I).  Those proprietary blobs
// are not redistributable here, so this package generates deterministic
// synthetic parameters with the exact shapes of the reference models: the
// architectural behaviour the paper characterizes (instruction mix, memory
// traffic, footprints) depends on tensor shapes and layer structure, not on
// the trained values.  Generated sets can be saved to and loaded from a
// simple binary container so that the same "model file" workflow is
// preserved.
package weights

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"tango/internal/networks"
	"tango/internal/tensor"
)

// Set holds named parameter tensors for one network.  It implements
// networks.Weights.
type Set struct {
	network string

	mu      sync.Mutex
	tensors map[string]*tensor.Tensor
}

var _ networks.Weights = (*Set)(nil)

// NewSet returns an empty parameter set for the named network.
func NewSet(network string) *Set {
	return &Set{network: network, tensors: make(map[string]*tensor.Tensor)}
}

// Network returns the owning network name.
func (s *Set) Network() string { return s.network }

// Put stores a tensor under layer/param, replacing any previous value.
func (s *Set) Put(layer, param string, t *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tensors[layer+"/"+param] = t
}

// Get returns the tensor for layer/param and validates its element count.
// It satisfies networks.Weights.
func (s *Set) Get(layer, param string, count int) (*tensor.Tensor, error) {
	s.mu.Lock()
	t, ok := s.tensors[layer+"/"+param]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("weights: %s: no parameter %s/%s", s.network, layer, param)
	}
	if t.Len() != count {
		return nil, fmt.Errorf("weights: %s: parameter %s/%s has %d elements, want %d",
			s.network, layer, param, t.Len(), count)
	}
	return t, nil
}

// Keys returns the sorted parameter keys present in the set.
func (s *Set) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.tensors))
	for k := range s.tensors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TotalBytes returns the total parameter storage in bytes.
func (s *Set) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, t := range s.tensors {
		total += t.Bytes()
	}
	return total
}

// Synthesize generates a full deterministic parameter set for the network.
// The same network always produces bit-identical parameters, and every
// layer's values depend only on the network name and the parameter key, so
// adding layers does not perturb existing ones.
func Synthesize(n *networks.Network) (*Set, error) {
	specs, err := n.WeightSpecs()
	if err != nil {
		return nil, err
	}
	s := NewSet(n.Name)
	for _, spec := range specs {
		t := tensor.New(spec.Count)
		fillParam(t, n.Name, spec)
		s.Put(spec.Layer, spec.Param, t)
	}
	return s, nil
}

// fillParam fills one parameter tensor with values appropriate to its role.
func fillParam(t *tensor.Tensor, network string, spec networks.WeightSpec) {
	seed := keySeed(network + ":" + spec.Key())
	r := tensor.NewRNG(seed)
	switch spec.Param {
	case "bias", "beta", "mean",
		"Bi", "Bf", "Bo", "Bc", "Br", "Bz", "Bh":
		// Small offsets around zero.
		t.FillNormal(r, 0.01)
	case "variance":
		// Positive variances around one.
		for i := range t.Data() {
			v := 0.5 + r.Float32()
			t.Data()[i] = v
		}
	case "gamma":
		// Scales around one.
		for i := range t.Data() {
			t.Data()[i] = 0.9 + 0.2*r.Float32()
		}
	default:
		// Filter / matrix weights: Xavier-style scaling keeps activations in
		// a numerically reasonable range through deep networks.  A uniform
		// distribution with matched variance is used because the largest
		// models carry >100M parameters and generation cost matters.
		std := math.Sqrt(2.0 / float64(fanIn(spec.Count)))
		half := float32(std * math.Sqrt(3.0))
		t.FillUniform(r, -half, half)
	}
}

// fanIn approximates the fan-in of a weight tensor from its element count.
func fanIn(count int) int {
	if count < 16 {
		return count + 1
	}
	// Treat the tensor as square-ish; this only needs to be a stable,
	// order-of-magnitude-correct scale factor.
	return int(math.Sqrt(float64(count))) + 1
}

// keySeed derives a stable 64-bit seed from a parameter key.
func keySeed(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// File format: a small binary container, little-endian.
//
//	magic   [8]byte  "TANGOWTS"
//	version uint32   (1)
//	count   uint32   number of entries
//	entries:
//	  keyLen uint32, key bytes, elemCount uint32, elemCount float32 values

var fileMagic = [8]byte{'T', 'A', 'N', 'G', 'O', 'W', 'T', 'S'}

const fileVersion = 1

// Save writes the parameter set to w.
func (s *Set) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("weights: save: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(fileVersion)); err != nil {
		return fmt.Errorf("weights: save: %w", err)
	}
	keys := s.Keys()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(keys))); err != nil {
		return fmt.Errorf("weights: save: %w", err)
	}
	for _, k := range keys {
		s.mu.Lock()
		t := s.tensors[k]
		s.mu.Unlock()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(k))); err != nil {
			return fmt.Errorf("weights: save %s: %w", k, err)
		}
		if _, err := bw.WriteString(k); err != nil {
			return fmt.Errorf("weights: save %s: %w", k, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.Len())); err != nil {
			return fmt.Errorf("weights: save %s: %w", k, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, t.Data()); err != nil {
			return fmt.Errorf("weights: save %s: %w", k, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the parameter set to the named file.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("weights: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a parameter set for the named network from r.
func Load(network string, r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("weights: load: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("weights: load: bad magic %q", magic[:])
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("weights: load: %w", err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("weights: load: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("weights: load: %w", err)
	}
	s := NewSet(network)
	for i := uint32(0); i < count; i++ {
		var keyLen uint32
		if err := binary.Read(br, binary.LittleEndian, &keyLen); err != nil {
			return nil, fmt.Errorf("weights: load entry %d: %w", i, err)
		}
		if keyLen == 0 || keyLen > 4096 {
			return nil, fmt.Errorf("weights: load entry %d: implausible key length %d", i, keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("weights: load entry %d: %w", i, err)
		}
		var elems uint32
		if err := binary.Read(br, binary.LittleEndian, &elems); err != nil {
			return nil, fmt.Errorf("weights: load %s: %w", key, err)
		}
		data := make([]float32, elems)
		if err := binary.Read(br, binary.LittleEndian, data); err != nil {
			return nil, fmt.Errorf("weights: load %s: %w", key, err)
		}
		t, err := tensor.FromSlice(data, int(elems))
		if err != nil {
			return nil, fmt.Errorf("weights: load %s: %w", key, err)
		}
		layer, param, err := splitKey(string(key))
		if err != nil {
			return nil, err
		}
		s.Put(layer, param, t)
	}
	return s, nil
}

// LoadFile reads a parameter set from the named file.
func LoadFile(network, path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	defer f.Close()
	return Load(network, f)
}

// splitKey splits "layer/param" on the final slash so layer names may
// themselves contain slashes (e.g. "fire2/squeeze1x1/weights").
func splitKey(key string) (layer, param string, err error) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			if i == 0 || i == len(key)-1 {
				break
			}
			return key[:i], key[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("weights: malformed parameter key %q", key)
}
