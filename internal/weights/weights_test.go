package weights_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"tango/internal/networks"
	"tango/internal/tensor"
	"tango/internal/weights"
)

func TestSynthesizeCoversAllSpecs(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := n.WeightSpecs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		got, err := ws.Get(s.Layer, s.Param, s.Count)
		if err != nil {
			t.Errorf("missing parameter %s: %v", s.Key(), err)
			continue
		}
		if got.Len() != s.Count {
			t.Errorf("parameter %s has %d elements, want %d", s.Key(), got.Len(), s.Count)
		}
	}
	if len(ws.Keys()) != len(specs) {
		t.Errorf("set has %d keys, want %d", len(ws.Keys()), len(specs))
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	a, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := a.Get("conv1", "weights", 32*3*5*5)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b.Get("conv1", "weights", 32*3*5*5)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ApproxEqual(w1, w2, 0) {
		t.Error("synthesized weights must be deterministic")
	}
}

func TestSynthesizedVariancesPositive(t *testing.T) {
	n, err := networks.NewResNet50()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ws.Get("bn_conv1", "variance", 64)
	if err != nil {
		t.Fatal(err)
	}
	if v.Min() <= 0 {
		t.Errorf("variance parameters must be positive, min %v", v.Min())
	}
	g, err := ws.Get("scale_conv1", "gamma", 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Min() <= 0 {
		t.Errorf("gamma parameters should be positive, min %v", g.Min())
	}
}

func TestGetErrors(t *testing.T) {
	s := weights.NewSet("X")
	if _, err := s.Get("a", "weights", 4); err == nil {
		t.Error("missing parameter should fail")
	}
	s.Put("a", "weights", tensor.New(3))
	if _, err := s.Get("a", "weights", 4); err == nil {
		t.Error("element count mismatch should fail")
	}
	if _, err := s.Get("a", "weights", 3); err != nil {
		t.Errorf("matching get failed: %v", err)
	}
	if s.Network() != "X" {
		t.Errorf("Network() = %q", s.Network())
	}
}

func TestTotalBytes(t *testing.T) {
	s := weights.NewSet("X")
	s.Put("a", "weights", tensor.New(10))
	s.Put("a", "bias", tensor.New(5))
	if s.TotalBytes() != 60 {
		t.Errorf("TotalBytes = %d, want 60", s.TotalBytes())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, err := networks.NewGRU()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ws.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := weights.Load("GRU", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Keys()) != len(ws.Keys()) {
		t.Fatalf("loaded %d keys, want %d", len(loaded.Keys()), len(ws.Keys()))
	}
	orig, err := ws.Get("gru1", "Wr", 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Get("gru1", "Wr", 100)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ApproxEqual(orig, got, 0) {
		t.Error("round-tripped weights differ")
	}
}

func TestSaveLoadFile(t *testing.T) {
	n, err := networks.NewLSTM()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lstm.tangowts")
	if err := ws.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := weights.LoadFile("LSTM", path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalBytes() != ws.TotalBytes() {
		t.Errorf("loaded %d bytes, want %d", loaded.TotalBytes(), ws.TotalBytes())
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	if _, err := weights.Load("X", bytes.NewReader([]byte("not a weights file"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := weights.Load("X", bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Valid magic but truncated header.
	if _, err := weights.Load("X", bytes.NewReader([]byte("TANGOWTS"))); err == nil {
		t.Error("truncated header should fail")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := weights.LoadFile("X", filepath.Join(t.TempDir(), "missing.tangowts")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSynthesizeLayerNamesWithSlashes(t *testing.T) {
	// SqueezeNet layer names contain slashes; the save format must keep the
	// layer/param split unambiguous.
	n, err := networks.NewSqueezeNet()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := weights.Synthesize(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ws.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := weights.Load("SqueezeNet", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Get("fire2/squeeze1x1", "weights", 16*96); err != nil {
		t.Errorf("slash-named layer lost in round trip: %v", err)
	}
}
