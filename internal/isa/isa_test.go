package isa

import (
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		OpNop:   "nop",
		OpAdd:   "add",
		OpMad:   "mad",
		OpMad24: "mad24",
		OpShl:   "shl",
		OpShr:   "shr",
		OpLd:    "ld",
		OpSt:    "st",
		OpSsy:   "ssy",
		OpRsqrt: "rsqrt",
		OpEx2:   "ex2",
		OpXor:   "xor",
		OpExit:  "exit",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Opcode(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpcodeStringAllDefined(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty mnemonic", op)
		}
		if !op.Valid() {
			t.Errorf("opcode %d should be valid", op)
		}
	}
	if Opcode(NumOpcodes).Valid() {
		t.Error("NumOpcodes should not be a valid opcode")
	}
}

func TestParseOpcodeRoundTrip(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		parsed, err := ParseOpcode(op.String())
		if err != nil {
			t.Fatalf("ParseOpcode(%q): %v", op.String(), err)
		}
		if parsed != op {
			t.Errorf("ParseOpcode(%q) = %v, want %v", op.String(), parsed, op)
		}
	}
	if _, err := ParseOpcode("bogus"); err == nil {
		t.Error("ParseOpcode(bogus) should fail")
	}
}

func TestDTypeBytes(t *testing.T) {
	cases := map[DType]int{
		TypeF32:  4,
		TypeU32:  4,
		TypeS32:  4,
		TypeU16:  2,
		TypeS16:  2,
		TypeNone: 0,
	}
	for dt, want := range cases {
		if got := dt.Bytes(); got != want {
			t.Errorf("%v.Bytes() = %d, want %d", dt, got, want)
		}
	}
}

func TestDTypeStrings(t *testing.T) {
	want := map[DType]string{
		TypeF32: "f32", TypeU32: "u32", TypeU16: "u16",
		TypeS32: "s32", TypeS16: "s16", TypeNone: "none",
	}
	for dt, s := range want {
		if dt.String() != s {
			t.Errorf("%d.String() = %q, want %q", dt, dt.String(), s)
		}
		if !dt.Valid() {
			t.Errorf("dtype %v should be valid", dt)
		}
	}
}

func TestUnitClassification(t *testing.T) {
	cases := map[Opcode]FuncUnit{
		OpLd:    UnitMem,
		OpSt:    UnitMem,
		OpRcp:   UnitSFU,
		OpRsqrt: UnitSFU,
		OpEx2:   UnitSFU,
		OpBra:   UnitCtrl,
		OpBar:   UnitCtrl,
		OpSsy:   UnitCtrl,
		OpExit:  UnitCtrl,
		OpNop:   UnitNone,
		OpAdd:   UnitSP,
		OpMad:   UnitSP,
		OpShl:   UnitSP,
	}
	for op, want := range cases {
		if got := Unit(op); got != want {
			t.Errorf("Unit(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestUnitForFloatGoesToFPU(t *testing.T) {
	fmad := NewALU(OpMad, TypeF32, 1, 2, 3, 4)
	if UnitFor(fmad) != UnitFPU {
		t.Errorf("f32 mad should execute on FPU, got %v", UnitFor(fmad))
	}
	imad := NewALU(OpMad, TypeU32, 1, 2, 3, 4)
	if UnitFor(imad) != UnitSP {
		t.Errorf("u32 mad should execute on SP, got %v", UnitFor(imad))
	}
	frcp := NewALU(OpRcp, TypeF32, 1, 2)
	if UnitFor(frcp) != UnitSFU {
		t.Errorf("rcp should stay on SFU, got %v", UnitFor(frcp))
	}
}

func TestNewALUOperands(t *testing.T) {
	ins := NewALU(OpMad, TypeF32, 7, 1, 2, 3)
	if ins.Dst != 7 || ins.NSrcs != 3 {
		t.Fatalf("unexpected operands: %+v", ins)
	}
	if ins.Srcs != [3]Reg{1, 2, 3} {
		t.Fatalf("unexpected sources: %+v", ins.Srcs)
	}
	two := NewALU(OpAdd, TypeU32, 4, 5, 6)
	if two.NSrcs != 2 || two.Srcs[2] != NoReg {
		t.Fatalf("unused source slot should be NoReg: %+v", two)
	}
}

func TestNewLoadStoreDefaults(t *testing.T) {
	ld := NewLoad(TypeF32, 3, SpaceGlobal, AccessPattern{Base: 64, ThreadStride: 4})
	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() {
		t.Fatalf("load classification wrong: %+v", ld)
	}
	if ld.Pattern.Bytes != 4 {
		t.Errorf("load access width should default to dtype width, got %d", ld.Pattern.Bytes)
	}
	if ld.Space != SpaceGlobal {
		t.Errorf("space = %v, want global", ld.Space)
	}

	st := NewStore(TypeU16, 2, SpaceShared, AccessPattern{})
	if !st.IsStore() || st.IsLoad() {
		t.Fatalf("store classification wrong: %+v", st)
	}
	if st.Pattern.Bytes != 2 {
		t.Errorf("store access width should default to 2, got %d", st.Pattern.Bytes)
	}
	if st.Dst != NoReg {
		t.Errorf("store should have no destination register")
	}
}

func TestInstructionString(t *testing.T) {
	ld := NewLoad(TypeF32, 1, SpaceGlobal, AccessPattern{})
	if got := ld.String(); got != "ld.f32.global" {
		t.Errorf("String() = %q, want %q", got, "ld.f32.global")
	}
	add := NewALU(OpAdd, TypeU32, 1, 2, 3)
	if got := add.String(); got != "add.u32" {
		t.Errorf("String() = %q, want %q", got, "add.u32")
	}
	bra := NewALU(OpBra, TypeNone, NoReg)
	if got := bra.String(); got != "bra" {
		t.Errorf("String() = %q, want %q", got, "bra")
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		ins := NewALU(op, TypeF32, 1, 2, 3)
		if l := Latency(ins); l <= 0 {
			t.Errorf("Latency(%v) = %d, must be positive", op, l)
		}
		if c := ThroughputCPI(ins); c <= 0 {
			t.Errorf("ThroughputCPI(%v) = %d, must be positive", op, c)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	sfu := NewALU(OpRcp, TypeF32, 1, 2)
	alu := NewALU(OpAdd, TypeU32, 1, 2, 3)
	if Latency(sfu) <= Latency(alu) {
		t.Errorf("SFU latency (%d) should exceed ALU latency (%d)", Latency(sfu), Latency(alu))
	}
	mem := NewLoad(TypeF32, 1, SpaceGlobal, AccessPattern{})
	if Latency(mem) <= Latency(alu) {
		t.Errorf("memory latency (%d) should exceed ALU latency (%d)", Latency(mem), Latency(alu))
	}
}

func TestControlClassification(t *testing.T) {
	for _, op := range []Opcode{OpBra, OpBar, OpSsy, OpExit, OpRetp, OpCallp} {
		ins := NewALU(op, TypeNone, NoReg)
		if !ins.IsControl() {
			t.Errorf("%v should be a control instruction", op)
		}
	}
	if NewALU(OpAdd, TypeU32, 1, 2).IsControl() {
		t.Error("add should not be a control instruction")
	}
}

// Property: operand slots beyond NSrcs are always NoReg regardless of how the
// constructor is invoked.
func TestQuickNewALUUnusedSlots(t *testing.T) {
	f := func(op uint8, dt uint8, dst uint8, srcs []uint8) bool {
		o := Opcode(op % uint8(NumOpcodes))
		d := DType(dt % uint8(NumDTypes))
		regs := make([]Reg, len(srcs))
		for i, s := range srcs {
			regs[i] = Reg(s)
		}
		ins := NewALU(o, d, Reg(dst), regs...)
		for i := int(ins.NSrcs); i < 3; i++ {
			if ins.Srcs[i] != NoReg {
				return false
			}
		}
		return int(ins.NSrcs) <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every opcode maps to exactly one functional unit and that unit is
// in range.
func TestQuickUnitTotal(t *testing.T) {
	f := func(op uint8) bool {
		o := Opcode(op % uint8(NumOpcodes))
		u := Unit(o)
		return u < NumFuncUnits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
