// Package isa defines the PTX-like instruction set used by the Tango kernel
// code generators and by the GPU architecture simulator.
//
// The opcode vocabulary mirrors the operation types reported by the paper
// (Figure 8): abs, add, and, bar, bra, callp, cvt, ex2, exit, ld, mad, mad24,
// max, min, mov, mul, or, rcp, retp, rsqrt, set, shl, shr, ssy, st, xor and
// nop.  Every instruction carries a data type drawn from the set the paper
// reports in Figure 10 (f32, u32, u16, s32, s16) plus a predicate/none type
// for control instructions.
package isa

import "fmt"

// Opcode identifies one machine operation.
type Opcode uint8

// The full opcode vocabulary.  The order is stable so opcodes can be used as
// array indices in statistics tables.
const (
	OpNop Opcode = iota
	OpAbs
	OpAdd
	OpAnd
	OpBar
	OpBra
	OpCallp
	OpCvt
	OpEx2
	OpExit
	OpLd
	OpMad
	OpMad24
	OpMax
	OpMin
	OpMov
	OpMul
	OpOr
	OpRcp
	OpRetp
	OpRsqrt
	OpSet
	OpShl
	OpShr
	OpSsy
	OpSt
	OpXor
	// NumOpcodes is the number of defined opcodes.
	NumOpcodes
)

var opcodeNames = [NumOpcodes]string{
	OpNop:   "nop",
	OpAbs:   "abs",
	OpAdd:   "add",
	OpAnd:   "and",
	OpBar:   "bar",
	OpBra:   "bra",
	OpCallp: "callp",
	OpCvt:   "cvt",
	OpEx2:   "ex2",
	OpExit:  "exit",
	OpLd:    "ld",
	OpMad:   "mad",
	OpMad24: "mad24",
	OpMax:   "max",
	OpMin:   "min",
	OpMov:   "mov",
	OpMul:   "mul",
	OpOr:    "or",
	OpRcp:   "rcp",
	OpRetp:  "retp",
	OpRsqrt: "rsqrt",
	OpSet:   "set",
	OpShl:   "shl",
	OpShr:   "shr",
	OpSsy:   "ssy",
	OpSt:    "st",
	OpXor:   "xor",
}

// String returns the PTX-style mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o < NumOpcodes }

// ParseOpcode maps a mnemonic back to its Opcode.
func ParseOpcode(name string) (Opcode, error) {
	for i, n := range opcodeNames {
		if n == name {
			return Opcode(i), nil
		}
	}
	return OpNop, fmt.Errorf("isa: unknown opcode %q", name)
}

// DType is the operand data type of an instruction.
type DType uint8

// Data types observed in the paper's instruction-type breakdown (Figure 10).
const (
	TypeNone DType = iota // control instructions, predicates
	TypeF32
	TypeU32
	TypeU16
	TypeS32
	TypeS16
	// NumDTypes is the number of defined data types.
	NumDTypes
)

var dtypeNames = [NumDTypes]string{
	TypeNone: "none",
	TypeF32:  "f32",
	TypeU32:  "u32",
	TypeU16:  "u16",
	TypeS32:  "s32",
	TypeS16:  "s16",
}

// String returns the PTX-style type suffix.
func (t DType) String() string {
	if int(t) < len(dtypeNames) {
		return dtypeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is a defined data type.
func (t DType) Valid() bool { return t < NumDTypes }

// Bytes returns the operand width in bytes (0 for TypeNone).
func (t DType) Bytes() int {
	switch t {
	case TypeF32, TypeU32, TypeS32:
		return 4
	case TypeU16, TypeS16:
		return 2
	default:
		return 0
	}
}

// MemSpace is the memory space addressed by a load or store.
type MemSpace uint8

// Memory spaces of the GPU programming model.
const (
	SpaceNone MemSpace = iota
	SpaceGlobal
	SpaceShared
	SpaceConst
	SpaceLocal
	SpaceParam
	// NumMemSpaces is the number of defined memory spaces.
	NumMemSpaces
)

var memSpaceNames = [NumMemSpaces]string{
	SpaceNone:   "none",
	SpaceGlobal: "global",
	SpaceShared: "shared",
	SpaceConst:  "const",
	SpaceLocal:  "local",
	SpaceParam:  "param",
}

// String returns the space name.
func (s MemSpace) String() string {
	if int(s) < len(memSpaceNames) {
		return memSpaceNames[s]
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// FuncUnit is the execution pipeline an opcode is issued to.
type FuncUnit uint8

// Execution pipelines of a streaming multiprocessor.
const (
	UnitNone FuncUnit = iota // nop, exit and other zero-latency control
	UnitSP                   // integer / simple ALU pipeline
	UnitFPU                  // single-precision floating-point pipeline
	UnitSFU                  // special function unit (rcp, rsqrt, ex2)
	UnitMem                  // load/store unit
	UnitCtrl                 // branch / barrier / call pipeline
	// NumFuncUnits is the number of defined functional units.
	NumFuncUnits
)

var funcUnitNames = [NumFuncUnits]string{
	UnitNone: "none",
	UnitSP:   "sp",
	UnitFPU:  "fpu",
	UnitSFU:  "sfu",
	UnitMem:  "mem",
	UnitCtrl: "ctrl",
}

// String returns the unit name.
func (u FuncUnit) String() string {
	if int(u) < len(funcUnitNames) {
		return funcUnitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Reg is a virtual register index inside a thread's register frame.
type Reg uint8

// NoReg marks an unused register operand slot.
const NoReg Reg = 0xFF

// Instruction is one static instruction of a thread program.  Memory
// instructions additionally carry an access pattern that the simulator uses
// to derive per-thread addresses.
type Instruction struct {
	Op    Opcode
	Type  DType
	Dst   Reg
	Srcs  [3]Reg
	NSrcs uint8

	// Space is the memory space for OpLd / OpSt, SpaceNone otherwise.
	Space MemSpace

	// Pattern describes address generation for OpLd / OpSt.
	Pattern AccessPattern
}

// Region identifies which logical buffer of a kernel a memory access targets.
// The simulator assigns a device address range to each region per kernel.
type Region uint8

// Logical kernel buffers.
const (
	RegionNone Region = iota
	RegionInput
	RegionWeights
	RegionBias
	RegionOutput
	RegionScratch
	// NumRegions is the number of defined regions.
	NumRegions
)

var regionNames = [NumRegions]string{
	RegionNone:    "none",
	RegionInput:   "input",
	RegionWeights: "weights",
	RegionBias:    "bias",
	RegionOutput:  "output",
	RegionScratch: "scratch",
}

// String returns the region name.
func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// AccessPattern describes how a memory instruction's address varies across
// threads and loop iterations.  Addresses are byte addresses relative to the
// start of the addressed Region; the simulator adds a per-kernel region base.
type AccessPattern struct {
	// Region is the logical buffer the access targets.
	Region Region
	// Base is the byte offset of the first accessed element.
	Base uint64
	// ThreadStride is the address delta between consecutive threads of a warp.
	ThreadStride int64
	// IterStride is the address delta between consecutive loop iterations.
	IterStride int64
	// BlockStride is the address delta between consecutive thread blocks.
	BlockStride int64
	// Footprint bounds the region touched by the pattern; addresses wrap
	// modulo Footprint when it is non-zero, modelling data reuse.
	Footprint uint64
	// Bytes is the access width per thread (defaults to the dtype width).
	Bytes int
}

// NewALU returns a non-memory instruction.
func NewALU(op Opcode, t DType, dst Reg, srcs ...Reg) Instruction {
	ins := Instruction{Op: op, Type: t, Dst: dst}
	n := len(srcs)
	if n > 3 {
		n = 3
	}
	for i := 0; i < n; i++ {
		ins.Srcs[i] = srcs[i]
	}
	for i := n; i < 3; i++ {
		ins.Srcs[i] = NoReg
	}
	ins.NSrcs = uint8(n)
	return ins
}

// NewLoad returns a load instruction with the given access pattern.
func NewLoad(t DType, dst Reg, space MemSpace, pat AccessPattern) Instruction {
	ins := NewALU(OpLd, t, dst)
	ins.Space = space
	if pat.Bytes == 0 {
		pat.Bytes = t.Bytes()
	}
	ins.Pattern = pat
	return ins
}

// NewStore returns a store instruction with the given access pattern.
func NewStore(t DType, src Reg, space MemSpace, pat AccessPattern) Instruction {
	ins := NewALU(OpSt, t, NoReg, src)
	ins.Space = space
	if pat.Bytes == 0 {
		pat.Bytes = t.Bytes()
	}
	ins.Pattern = pat
	return ins
}

// IsMem reports whether the instruction accesses memory.
func (i Instruction) IsMem() bool { return i.Op == OpLd || i.Op == OpSt }

// IsLoad reports whether the instruction is a load.
func (i Instruction) IsLoad() bool { return i.Op == OpLd }

// IsStore reports whether the instruction is a store.
func (i Instruction) IsStore() bool { return i.Op == OpSt }

// IsControl reports whether the instruction executes on the control pipeline.
func (i Instruction) IsControl() bool { return Unit(i.Op) == UnitCtrl }

// String renders a compact PTX-like disassembly of the instruction.
func (i Instruction) String() string {
	s := i.Op.String()
	if i.Type != TypeNone {
		s += "." + i.Type.String()
	}
	if i.Space != SpaceNone {
		s += "." + i.Space.String()
	}
	return s
}

// Unit returns the functional unit that executes the opcode for f32 and
// integer types.  Floating-point arithmetic goes to the FPU, transcendental
// ops to the SFU, memory ops to the LSU and the rest to the SP pipeline.
func Unit(op Opcode) FuncUnit {
	switch op {
	case OpLd, OpSt:
		return UnitMem
	case OpRcp, OpRsqrt, OpEx2:
		return UnitSFU
	case OpBra, OpBar, OpSsy, OpCallp, OpRetp, OpExit:
		return UnitCtrl
	case OpNop:
		return UnitNone
	default:
		return UnitSP
	}
}

// UnitFor returns the execution unit for an instruction, accounting for the
// data type: arithmetic on f32 operands executes on the FPU pipeline.
func UnitFor(ins Instruction) FuncUnit {
	u := Unit(ins.Op)
	if u == UnitSP && ins.Type == TypeF32 {
		switch ins.Op {
		case OpAdd, OpMul, OpMad, OpMad24, OpMax, OpMin, OpAbs, OpSet, OpCvt:
			return UnitFPU
		}
	}
	return u
}

// Latency returns the result latency in cycles for an instruction, i.e. the
// number of cycles before a dependent instruction may issue.
func Latency(ins Instruction) int {
	switch Unit(ins.Op) {
	case UnitSFU:
		return 16
	case UnitMem:
		// Memory latency is determined dynamically by the memory system;
		// this is the minimum shared-memory / cache-hit pipeline latency.
		return 24
	case UnitCtrl, UnitNone:
		return 1
	}
	if ins.Type == TypeF32 {
		if ins.Op == OpMad || ins.Op == OpMad24 {
			return 6
		}
		return 4
	}
	return 4
}

// ThroughputCPI returns the issue interval (cycles per instruction) of the
// functional unit executing the instruction, modelling pipeline width.
func ThroughputCPI(ins Instruction) int {
	switch UnitFor(ins) {
	case UnitSFU:
		return 4
	case UnitMem:
		return 2
	default:
		return 1
	}
}
