package target

import (
	"context"
	"errors"
	"sync"
	"testing"

	"tango/internal/gpusim"
)

// fakeDisk is an in-memory DiskCache double: it stores RunStats by value
// (no serialization) and can be made to fail writes.
type fakeDisk struct {
	mu       sync.Mutex
	m        map[string]*RunStats
	failPut  bool
	loads    int
	puts     int
	putFails int
}

func newFakeDisk() *fakeDisk { return &fakeDisk{m: make(map[string]*RunStats)} }

func (d *fakeDisk) Load(key string, tr *Trace) (*RunStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loads++
	rs, ok := d.m[key]
	return rs, ok
}

func (d *fakeDisk) Store(key string, rs *RunStats) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failPut {
		d.putFails++
		return errors.New("disk full")
	}
	d.puts++
	d.m[key] = rs
	return nil
}

// TestStoreWritesThroughAndWarmStoreSkipsCompute: a computed cell is
// written to the disk tier, and a fresh store over the same disk serves
// the cell without invoking the target — the cross-process warm path.
func TestStoreWritesThroughAndWarmStoreSkipsCompute(t *testing.T) {
	disk := newFakeDisk()
	v := DefaultVariant(gpusim.FastSampling())

	cold := NewStore()
	cold.SetDisk(disk)
	tgt := &countingTarget{name: "stub"}
	if _, err := cold.Run(tgt, "GRU", v); err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Computes != 1 || st.DiskMisses != 1 || st.DiskWrites != 1 {
		t.Fatalf("cold store stats = %+v", st)
	}

	warm := NewStore()
	warm.SetDisk(disk)
	tgt2 := &countingTarget{name: "stub"}
	rs, err := warm.Run(tgt2, "GRU", v)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Seconds != 1 {
		t.Fatalf("warm result = %+v", rs)
	}
	if n := tgt2.runs.Load(); n != 0 {
		t.Fatalf("warm store ran the target %d times, want 0", n)
	}
	st = warm.Stats()
	if st.Computes != 0 || st.DiskHits != 1 {
		t.Fatalf("warm store stats = %+v", st)
	}

	// Second lookup in the warm store hits memory, not disk.
	loads := disk.loads
	if _, err := warm.Run(tgt2, "GRU", v); err != nil {
		t.Fatal(err)
	}
	if disk.loads != loads {
		t.Fatalf("memory hit consulted the disk (%d -> %d loads)", loads, disk.loads)
	}
}

// evictingDisk is a fakeDisk that also reports an eviction count, like
// distcache.Cache does when size-bounded.
type evictingDisk struct {
	fakeDisk
	evictions int64
}

func (d *evictingDisk) EvictionCount() int64 { return d.evictions }

// TestStoreStatsSurfacesDiskEvictions: a disk tier exposing EvictionCount
// shows up in StoreStats.DiskEvictions; one without the method reports 0.
func TestStoreStatsSurfacesDiskEvictions(t *testing.T) {
	store := NewStore()
	disk := &evictingDisk{evictions: 7}
	disk.m = make(map[string]*RunStats)
	store.SetDisk(disk)
	if st := store.Stats(); st.DiskEvictions != 7 {
		t.Fatalf("DiskEvictions = %d, want 7", st.DiskEvictions)
	}
	plain := NewStore()
	plain.SetDisk(newFakeDisk())
	if st := plain.Stats(); st.DiskEvictions != 0 {
		t.Fatalf("DiskEvictions without the method = %d, want 0", st.DiskEvictions)
	}
}

// TestStoreDiskWriteFailureIsSoft: a failing disk tier costs a counter,
// not the run.
func TestStoreDiskWriteFailureIsSoft(t *testing.T) {
	disk := newFakeDisk()
	disk.failPut = true
	store := NewStore()
	store.SetDisk(disk)
	tgt := &countingTarget{name: "stub"}
	rs, err := store.Run(tgt, "GRU", DefaultVariant(gpusim.FastSampling()))
	if err != nil || rs == nil {
		t.Fatalf("Run with failing disk = %+v, %v", rs, err)
	}
	if st := store.Stats(); st.DiskErrors != 1 || st.DiskWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreLRUEvicts: the memory tier is bounded; the least recently used
// completed entry is evicted and recomputed on return (or re-read from
// disk when one is attached).
func TestStoreLRUEvicts(t *testing.T) {
	store := NewStore()
	store.SetMemoryBounds(2, 0)
	tgt := &countingTarget{name: "stub"}
	s := gpusim.FastSampling()
	variants := []Variant{
		DefaultVariant(s).WithL1("a", 1<<10),
		DefaultVariant(s).WithL1("b", 2<<10),
		DefaultVariant(s).WithL1("c", 3<<10),
	}
	for _, v := range variants {
		if _, err := store.Run(tgt, "GRU", v); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if st.Runs != 2 || st.RunEvictions != 1 {
		t.Fatalf("after 3 inserts with bound 2: %+v", st)
	}
	// Variant "a" was evicted; it recomputes.  "c" is still resident.
	if _, err := store.Run(tgt, "GRU", variants[0]); err != nil {
		t.Fatal(err)
	}
	if n := tgt.runs.Load(); n != 4 {
		t.Fatalf("target ran %d times, want 4 (3 cold + 1 re-fill)", n)
	}
	if _, err := store.Run(tgt, "GRU", variants[2]); err != nil {
		t.Fatal(err)
	}
	if n := tgt.runs.Load(); n != 4 {
		t.Fatalf("resident entry recomputed (runs = %d)", n)
	}
}

// TestStoreLRUHitRefreshesRecency: touching an old entry protects it from
// the next eviction.
func TestStoreLRUHitRefreshesRecency(t *testing.T) {
	store := NewStore()
	store.SetMemoryBounds(2, 0)
	tgt := &countingTarget{name: "stub"}
	s := gpusim.FastSampling()
	a := DefaultVariant(s).WithL1("a", 1<<10)
	b := DefaultVariant(s).WithL1("b", 2<<10)
	c := DefaultVariant(s).WithL1("c", 3<<10)
	for _, v := range []Variant{a, b} {
		if _, err := store.Run(tgt, "GRU", v); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now the LRU entry, then insert "c".
	if _, err := store.Run(tgt, "GRU", a); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Run(tgt, "GRU", c); err != nil {
		t.Fatal(err)
	}
	runs := tgt.runs.Load()
	if _, err := store.Run(tgt, "GRU", a); err != nil {
		t.Fatal(err)
	}
	if tgt.runs.Load() != runs {
		t.Fatal("refreshed entry was evicted instead of the LRU one")
	}
	if _, err := store.Run(tgt, "GRU", b); err != nil {
		t.Fatal(err)
	}
	if tgt.runs.Load() != runs+1 {
		t.Fatal("LRU entry should have been the one evicted")
	}
}

// TestRunViaRemoteComputeFillsBothTiers: a caller-supplied ComputeFunc
// (the coordinator's remote fetch) feeds the memory LRU and the disk tier
// exactly like a local run, without ever invoking the target.
func TestRunViaRemoteComputeFillsBothTiers(t *testing.T) {
	disk := newFakeDisk()
	store := NewStore()
	store.SetDisk(disk)
	tgt := &countingTarget{name: "stub"}
	v := DefaultVariant(gpusim.FastSampling())

	remote := &RunStats{Network: "GRU", Target: "stub", Seconds: 42}
	calls := 0
	rs, err := store.RunVia(context.Background(), tgt, "GRU", v, func(tr *Trace) (*RunStats, error) {
		calls++
		if tr == nil || tr.Network != "GRU" {
			t.Errorf("compute got trace %+v", tr)
		}
		return remote, nil
	})
	if err != nil || rs != remote {
		t.Fatalf("RunVia = %+v, %v", rs, err)
	}
	if calls != 1 || tgt.runs.Load() != 0 {
		t.Fatalf("remote compute calls=%d target runs=%d", calls, tgt.runs.Load())
	}
	st := store.Stats()
	if st.Computes != 0 || st.DiskWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The result is now cached: a plain Run serves it without computing.
	rs2, err := store.Run(tgt, "GRU", v)
	if err != nil || rs2 != remote {
		t.Fatalf("cached RunVia result not served: %+v, %v", rs2, err)
	}
	if tgt.runs.Load() != 0 {
		t.Fatal("cached remote result recomputed locally")
	}

	// A failing ComputeFunc is not cached; the next caller retries.
	bad := DefaultVariant(gpusim.FastSampling()).WithL1("bad", 1<<10)
	if _, err := store.RunVia(context.Background(), tgt, "GRU", bad, func(*Trace) (*RunStats, error) {
		return nil, errors.New("worker down")
	}); err == nil {
		t.Fatal("remote failure should surface")
	}
	if rs3, err := store.Run(tgt, "GRU", bad); err != nil || rs3 == nil {
		t.Fatalf("retry after remote failure = %+v, %v", rs3, err)
	}
	if tgt.runs.Load() != 1 {
		t.Fatalf("local retry should compute once, runs = %d", tgt.runs.Load())
	}
}
