package target

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tango/internal/device"
	"tango/internal/gpusim"
)

// countingTarget wraps a cheap fake backend and counts Run invocations, so
// the tests can prove the store coalesces concurrent work.
type countingTarget struct {
	name string
	runs atomic.Int64
	fail atomic.Bool
}

func (c *countingTarget) Name() string        { return c.name }
func (c *countingTarget) Class() device.Class { return device.ClassGPU }
func (c *countingTarget) Role() string        { return "Test" }
func (c *countingTarget) Description() string { return "counting stub" }
func (c *countingTarget) CacheKey(v Variant) string {
	return fmt.Sprintf("l1set=%v|l1=%d", v.L1Set, v.L1Bytes)
}

func (c *countingTarget) Run(tr *Trace, _ Variant) (*RunStats, error) {
	c.runs.Add(1)
	if c.fail.Load() {
		return nil, errors.New("injected failure")
	}
	return &RunStats{Network: tr.Network, Target: c.name, Seconds: 1}, nil
}

// TestStoreCoalescesConcurrentWork hammers one (target, network, variant)
// cell plus the underlying trace from many goroutines and asserts exactly one
// extraction and one run happen, with every caller seeing the same result.
// Run under -race this also validates the store's synchronization.
func TestStoreCoalescesConcurrentWork(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	v := DefaultVariant(gpusim.FastSampling())

	const goroutines = 32
	results := make([]*RunStats, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = store.Run(tgt, "GRU", v)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different result pointer", i)
		}
	}
	if got := tgt.runs.Load(); got != 1 {
		t.Errorf("store ran the target %d times, want 1", got)
	}
	st := store.Stats()
	if st.Runs != 1 || st.Traces != 1 {
		t.Errorf("store should hold 1 run and 1 trace, got %+v", st)
	}
	if st.RunMisses != 1 || st.RunHits != goroutines-1 {
		t.Errorf("want 1 miss and %d hits, got %+v", goroutines-1, st)
	}
}

// TestStoreSharesTracesAcrossTargets asserts two targets derive from one
// extraction of the same network.
func TestStoreSharesTracesAcrossTargets(t *testing.T) {
	store := NewStore()
	a := &countingTarget{name: "a"}
	b := &countingTarget{name: "b"}
	v := DefaultVariant(gpusim.FastSampling())
	if _, err := store.Run(a, "GRU", v); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Run(b, "GRU", v); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Traces != 1 {
		t.Errorf("two targets over one network should share 1 trace, got %d", st.Traces)
	}
	if st.Runs != 2 {
		t.Errorf("distinct targets must not share runs, got %d", st.Runs)
	}
}

// TestStoreCanonicalVariantsShareRuns asserts variants with equal cache keys
// hit one run while differing keys compute separately.
func TestStoreCanonicalVariantsShareRuns(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	s := gpusim.FastSampling()
	if _, err := store.Run(tgt, "GRU", DefaultVariant(s)); err != nil {
		t.Fatal(err)
	}
	// Key differs only in Variant.Key, which must not affect caching.
	renamed := DefaultVariant(s)
	renamed.Key = "renamed"
	if _, err := store.Run(tgt, "GRU", renamed); err != nil {
		t.Fatal(err)
	}
	if got := tgt.runs.Load(); got != 1 {
		t.Errorf("equal cache keys should share one run, got %d", got)
	}
	if _, err := store.Run(tgt, "GRU", DefaultVariant(s).WithL1("nol1", 0)); err != nil {
		t.Fatal(err)
	}
	if got := tgt.runs.Load(); got != 2 {
		t.Errorf("distinct cache keys should compute separately, got %d runs", got)
	}
}

// TestStoreDoesNotCacheErrors asserts a failed run (and a failed extraction)
// is retried by the next request, matching the serial render path's
// deterministic error reporting.
func TestStoreDoesNotCacheErrors(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	v := DefaultVariant(gpusim.FastSampling())

	tgt.fail.Store(true)
	if _, err := store.Run(tgt, "GRU", v); err == nil {
		t.Fatal("injected failure should surface")
	}
	if st := store.Stats(); st.Runs != 0 {
		t.Errorf("failed run must not stay cached, store holds %d runs", st.Runs)
	}
	tgt.fail.Store(false)
	if _, err := store.Run(tgt, "GRU", v); err != nil {
		t.Fatalf("retry after failure should succeed, got %v", err)
	}
	if got := tgt.runs.Load(); got != 2 {
		t.Errorf("expected 2 target runs (failure + retry), got %d", got)
	}

	if _, err := store.Trace("NoSuchNet"); err == nil {
		t.Fatal("unknown network should fail")
	}
	if st := store.Stats(); st.Traces != 1 {
		t.Errorf("failed extraction must not stay cached, store holds %d traces", st.Traces)
	}
	if _, err := store.Run(tgt, "NoSuchNet", v); err == nil {
		t.Error("run of an unknown network should fail")
	}
}

// TestSharedStoreIsProcessWide asserts Shared returns one store.
func TestSharedStoreIsProcessWide(t *testing.T) {
	if Shared() != Shared() {
		t.Error("Shared must return the process-wide store")
	}
}

// blockingTarget parks every Run until released, standing in for a hung
// simulator cell.
type blockingTarget struct {
	name    string
	started chan struct{} // signaled when a Run begins
	release chan struct{} // Runs return when closed
	runs    atomic.Int64
}

func (b *blockingTarget) Name() string            { return b.name }
func (b *blockingTarget) Class() device.Class     { return device.ClassGPU }
func (b *blockingTarget) Role() string            { return "Test" }
func (b *blockingTarget) Description() string     { return "blocking stub" }
func (b *blockingTarget) CacheKey(Variant) string { return "k" }
func (b *blockingTarget) Run(tr *Trace, _ Variant) (*RunStats, error) {
	b.runs.Add(1)
	b.started <- struct{}{}
	<-b.release
	return &RunStats{Network: tr.Network, Target: b.name, Seconds: 1}, nil
}

// TestRunCtxPreCanceledTouchesNothing: a caller whose context is already
// done must neither compute nor cache anything — a canceled sweep leaves
// the store exactly as it found it.
func TestRunCtxPreCanceledTouchesNothing(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := store.RunCtx(ctx, tgt, "GRU", DefaultVariant(gpusim.FastSampling())); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if n := tgt.runs.Load(); n != 0 {
		t.Fatalf("canceled caller ran the target %d times", n)
	}
	st := store.Stats()
	if st.Traces != 0 || st.Runs != 0 || st.RunMisses != 0 {
		t.Fatalf("canceled caller mutated the store: %+v", st)
	}
}

// TestRunCtxTimeoutAbandonsHungCell: a deadline-bearing caller waits only
// its budget for a hung cell; the abandoned computation finishes in the
// background and its (complete) result serves the retry.
func TestRunCtxTimeoutAbandonsHungCell(t *testing.T) {
	store := NewStore()
	tgt := &blockingTarget{name: "hung", started: make(chan struct{}, 8), release: make(chan struct{})}
	v := DefaultVariant(gpusim.FastSampling())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := store.RunCtx(ctx, tgt, "GRU", v)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx on hung cell = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("caller waited %v, want ~its 50ms budget", waited)
	}

	// A retry while the cell is still hung joins the same computation
	// (no duplicate run) and times out the same way.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := store.RunCtx(ctx2, tgt, "GRU", v); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry on hung cell = %v, want DeadlineExceeded", err)
	}
	if n := tgt.runs.Load(); n != 1 {
		t.Fatalf("hung cell was computed %d times, want 1 (singleflight)", n)
	}

	// Unblock the backend: the abandoned computation completes, caches,
	// and a fresh caller gets the full result instantly.
	close(tgt.release)
	rs, err := store.RunCtx(context.Background(), tgt, "GRU", v)
	if err != nil || rs == nil || rs.Seconds != 1 {
		t.Fatalf("post-release RunCtx = %+v, %v", rs, err)
	}
	if n := tgt.runs.Load(); n != 1 {
		t.Fatalf("released cell recomputed: %d runs", n)
	}
}

// TestRunCtxWithoutDeadlineStaysSynchronous: no deadline means the
// pre-existing synchronous path — the computation runs on the caller's
// goroutine and a plain Run is unaffected by the ctx plumbing.
func TestRunCtxWithoutDeadlineStaysSynchronous(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "sync"}
	rs, err := store.RunCtx(context.Background(), tgt, "GRU", DefaultVariant(gpusim.FastSampling()))
	if err != nil || rs == nil {
		t.Fatalf("RunCtx = %+v, %v", rs, err)
	}
	if n := tgt.runs.Load(); n != 1 {
		t.Fatalf("runs = %d", n)
	}
}

// panicTarget panics on its first Run, standing in for a backend bug.
type panicTarget struct {
	name  string
	calls atomic.Int64
}

func (p *panicTarget) Name() string            { return p.name }
func (p *panicTarget) Class() device.Class     { return device.ClassGPU }
func (p *panicTarget) Role() string            { return "Test" }
func (p *panicTarget) Description() string     { return "panicking stub" }
func (p *panicTarget) CacheKey(Variant) string { return "k" }
func (p *panicTarget) Run(tr *Trace, _ Variant) (*RunStats, error) {
	if p.calls.Add(1) == 1 {
		panic("backend bug")
	}
	return &RunStats{Network: tr.Network, Target: p.name, Seconds: 1}, nil
}

// TestRunPanicIsolatedAndNotCached: a panicking backend becomes a cell
// error (not a process crash), is not cached, and the retry succeeds.
func TestRunPanicIsolatedAndNotCached(t *testing.T) {
	store := NewStore()
	tgt := &panicTarget{name: "flaky"}
	v := DefaultVariant(gpusim.FastSampling())
	_, err := store.Run(tgt, "GRU", v)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("first Run = %v, want recovered panic error", err)
	}
	rs, err := store.Run(tgt, "GRU", v)
	if err != nil || rs == nil {
		t.Fatalf("retry after panic = %+v, %v", rs, err)
	}
	if st := store.Stats(); st.Runs != 1 {
		t.Fatalf("store entries after panic+retry = %+v", st)
	}
}
