package target

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tango/internal/device"
	"tango/internal/gpusim"
)

// countingTarget wraps a cheap fake backend and counts Run invocations, so
// the tests can prove the store coalesces concurrent work.
type countingTarget struct {
	name string
	runs atomic.Int64
	fail atomic.Bool
}

func (c *countingTarget) Name() string        { return c.name }
func (c *countingTarget) Class() device.Class { return device.ClassGPU }
func (c *countingTarget) Role() string        { return "Test" }
func (c *countingTarget) Description() string { return "counting stub" }
func (c *countingTarget) CacheKey(v Variant) string {
	return fmt.Sprintf("l1set=%v|l1=%d", v.L1Set, v.L1Bytes)
}

func (c *countingTarget) Run(tr *Trace, _ Variant) (*RunStats, error) {
	c.runs.Add(1)
	if c.fail.Load() {
		return nil, errors.New("injected failure")
	}
	return &RunStats{Network: tr.Network, Target: c.name, Seconds: 1}, nil
}

// TestStoreCoalescesConcurrentWork hammers one (target, network, variant)
// cell plus the underlying trace from many goroutines and asserts exactly one
// extraction and one run happen, with every caller seeing the same result.
// Run under -race this also validates the store's synchronization.
func TestStoreCoalescesConcurrentWork(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	v := DefaultVariant(gpusim.FastSampling())

	const goroutines = 32
	results := make([]*RunStats, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = store.Run(tgt, "GRU", v)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different result pointer", i)
		}
	}
	if got := tgt.runs.Load(); got != 1 {
		t.Errorf("store ran the target %d times, want 1", got)
	}
	st := store.Stats()
	if st.Runs != 1 || st.Traces != 1 {
		t.Errorf("store should hold 1 run and 1 trace, got %+v", st)
	}
	if st.RunMisses != 1 || st.RunHits != goroutines-1 {
		t.Errorf("want 1 miss and %d hits, got %+v", goroutines-1, st)
	}
}

// TestStoreSharesTracesAcrossTargets asserts two targets derive from one
// extraction of the same network.
func TestStoreSharesTracesAcrossTargets(t *testing.T) {
	store := NewStore()
	a := &countingTarget{name: "a"}
	b := &countingTarget{name: "b"}
	v := DefaultVariant(gpusim.FastSampling())
	if _, err := store.Run(a, "GRU", v); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Run(b, "GRU", v); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Traces != 1 {
		t.Errorf("two targets over one network should share 1 trace, got %d", st.Traces)
	}
	if st.Runs != 2 {
		t.Errorf("distinct targets must not share runs, got %d", st.Runs)
	}
}

// TestStoreCanonicalVariantsShareRuns asserts variants with equal cache keys
// hit one run while differing keys compute separately.
func TestStoreCanonicalVariantsShareRuns(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	s := gpusim.FastSampling()
	if _, err := store.Run(tgt, "GRU", DefaultVariant(s)); err != nil {
		t.Fatal(err)
	}
	// Key differs only in Variant.Key, which must not affect caching.
	renamed := DefaultVariant(s)
	renamed.Key = "renamed"
	if _, err := store.Run(tgt, "GRU", renamed); err != nil {
		t.Fatal(err)
	}
	if got := tgt.runs.Load(); got != 1 {
		t.Errorf("equal cache keys should share one run, got %d", got)
	}
	if _, err := store.Run(tgt, "GRU", DefaultVariant(s).WithL1("nol1", 0)); err != nil {
		t.Fatal(err)
	}
	if got := tgt.runs.Load(); got != 2 {
		t.Errorf("distinct cache keys should compute separately, got %d runs", got)
	}
}

// TestStoreDoesNotCacheErrors asserts a failed run (and a failed extraction)
// is retried by the next request, matching the serial render path's
// deterministic error reporting.
func TestStoreDoesNotCacheErrors(t *testing.T) {
	store := NewStore()
	tgt := &countingTarget{name: "stub"}
	v := DefaultVariant(gpusim.FastSampling())

	tgt.fail.Store(true)
	if _, err := store.Run(tgt, "GRU", v); err == nil {
		t.Fatal("injected failure should surface")
	}
	if st := store.Stats(); st.Runs != 0 {
		t.Errorf("failed run must not stay cached, store holds %d runs", st.Runs)
	}
	tgt.fail.Store(false)
	if _, err := store.Run(tgt, "GRU", v); err != nil {
		t.Fatalf("retry after failure should succeed, got %v", err)
	}
	if got := tgt.runs.Load(); got != 2 {
		t.Errorf("expected 2 target runs (failure + retry), got %d", got)
	}

	if _, err := store.Trace("NoSuchNet"); err == nil {
		t.Fatal("unknown network should fail")
	}
	if st := store.Stats(); st.Traces != 1 {
		t.Errorf("failed extraction must not stay cached, store holds %d traces", st.Traces)
	}
	if _, err := store.Run(tgt, "NoSuchNet", v); err == nil {
		t.Error("run of an unknown network should fail")
	}
}

// TestSharedStoreIsProcessWide asserts Shared returns one store.
func TestSharedStoreIsProcessWide(t *testing.T) {
	if Shared() != Shared() {
		t.Error("Shared must return the process-wide store")
	}
}
