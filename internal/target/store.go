package target

import (
	"context"
	"fmt"
	"sync"

	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/resilience"
)

// PointRun is the fault-injection site fired before each cell computation
// (after the trace is resolved, before Target.Run).  Fire labels carry
// "network/target/variantKey", so a chaos plan can fail one exact sweep
// cell with only=.
var PointRun = resilience.Register("target.run", "before each store cell computation (label network/target/variant)")

// Trace is the extracted characterization input of one network: the built
// layer graph plus the lowered kernel list (launch geometry and per-thread
// programs).  Extraction is backend-independent — every target derives its
// statistics from the same trace — and deliberately skips weight synthesis,
// which only the native inference path needs.
type Trace struct {
	// Network is the benchmark name.
	Network string
	// Net is the built layer graph with reference shapes.
	Net *networks.Network
	// Kernels is the lowered kernel list in layer order (Table III geometry).
	Kernels []*kernel.Kernel
}

// Extract lowers a network to its layer trace.
func Extract(name string) (*Trace, error) {
	n, err := networks.New(name)
	if err != nil {
		return nil, err
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		return nil, err
	}
	return &Trace{Network: n.Name, Net: n, Kernels: ks}, nil
}

// StoreStats counts the store's cached entries and cache traffic.
type StoreStats struct {
	// Traces and Runs are the cached entry counts.
	Traces int
	Runs   int
	// TraceHits/TraceMisses and RunHits/RunMisses count lookups.  A miss is
	// the lookup that created an entry and computed it; a hit is a lookup
	// served from an existing entry, including waiting on one still being
	// computed (singleflight waiters are hits — the work happened once).
	TraceHits, TraceMisses int64
	RunHits, RunMisses     int64
}

// entry is one singleflight cell: done is closed once val/err are final.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Store memoizes layer traces and per-target runs so that every figure,
// config variant and sweep over the same (network, target, configuration)
// cell computes it exactly once.  The store is safe for concurrent use:
// concurrent requests for one cell are coalesced onto a single computation
// (singleflight) and everyone waits for its result.  Failed computations are
// not cached — the next request retries, so serial render paths re-encounter
// and report errors exactly as they would without the store.
type Store struct {
	mu     sync.Mutex
	traces map[string]*entry[*Trace]
	runs   map[string]*entry[*RunStats]
	stats  StoreStats
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		traces: make(map[string]*entry[*Trace]),
		runs:   make(map[string]*entry[*RunStats]),
	}
}

// shared is the process-wide store: sessions, sweeps and commands share it by
// default, so repeated characterization of the same cells is free.
var shared = NewStore()

// Shared returns the process-wide store.
func Shared() *Store { return shared }

// Trace returns the network's layer trace, extracting it on first use.
func (s *Store) Trace(network string) (*Trace, error) {
	s.mu.Lock()
	if e, ok := s.traces[network]; ok {
		s.stats.TraceHits++
		s.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	s.stats.TraceMisses++
	e := &entry[*Trace]{done: make(chan struct{})}
	s.traces[network] = e
	s.mu.Unlock()

	e.val, e.err = Extract(network)
	if e.err != nil {
		s.mu.Lock()
		delete(s.traces, network)
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Run returns the statistics of running the network's trace on the target
// under the variant, computing them on first use.  Results are keyed by the
// target's canonical variant key, so variants that resolve to the same
// effective configuration share one run.
func (s *Store) Run(t Target, network string, v Variant) (*RunStats, error) {
	return s.RunCtx(context.Background(), t, network, v)
}

// RunCtx is Run bounded by a context.  A context that is done before any
// computation starts touches nothing — the store never caches on behalf
// of a canceled caller.  When ctx carries a deadline, the cell is
// computed on a separate goroutine and the caller waits only until ctx
// expires: a hung or slow cell costs the caller its timeout, not the
// whole sweep.  The abandoned computation keeps running to completion —
// a finished result is cached for the retry (or the next sweep), a
// failure is dropped as usual, and a genuinely wedged backend parks one
// goroutine on the poisoned cell instead of wedging every future caller.
// Concurrent callers of one cell still coalesce onto a single
// computation; each waits under its own context.
func (s *Store) RunCtx(ctx context.Context, t Target, network string, v Variant) (*RunStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := t.Name() + "\x00" + network + "\x00" + t.CacheKey(v)
	s.mu.Lock()
	if e, ok := s.runs[key]; ok {
		s.stats.RunHits++
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.stats.RunMisses++
	e := &entry[*RunStats]{done: make(chan struct{})}
	s.runs[key] = e
	s.mu.Unlock()

	compute := func() {
		e.val, e.err = s.computeCell(t, network, v)
		if e.err != nil {
			s.mu.Lock()
			delete(s.runs, key)
			s.mu.Unlock()
		}
		close(e.done)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		// No budget to enforce: compute on the caller's goroutine (the
		// pre-existing synchronous fast path, no goroutine per cell).
		compute()
		return e.val, e.err
	}
	go compute()
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// computeCell resolves the trace and runs the target, converting a panic
// in the backend (or an injected one) into an error: cell computations
// run on store callers' goroutines or detached singleflight goroutines,
// where an escaped panic would kill the whole process instead of the one
// cell.
func (s *Store) computeCell(t Target, network string, v Variant) (rs *RunStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, fmt.Errorf("target: %s on %s panicked: %v", network, t.Name(), p)
		}
	}()
	tr, err := s.Trace(network)
	if err != nil {
		return nil, err
	}
	if err := resilience.FireLabeled(PointRun, network+"/"+t.Name()+"/"+v.Key); err != nil {
		return nil, err
	}
	return t.Run(tr, v)
}

// Stats returns a snapshot of the store's entry counts and cache traffic.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Traces = len(s.traces)
	st.Runs = len(s.runs)
	return st
}
