package target

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"unsafe"

	"tango/internal/fpga"
	"tango/internal/gpusim"
	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/resilience"
)

// PointRun is the fault-injection site fired before each cell computation
// (after the trace is resolved, before Target.Run).  Fire labels carry
// "network/target/variantKey", so a chaos plan can fail one exact sweep
// cell with only=.
var PointRun = resilience.Register("target.run", "before each store cell computation (label network/target/variant)")

// Trace is the extracted characterization input of one network: the built
// layer graph plus the lowered kernel list (launch geometry and per-thread
// programs).  Extraction is backend-independent — every target derives its
// statistics from the same trace — and deliberately skips weight synthesis,
// which only the native inference path needs.
type Trace struct {
	// Network is the benchmark name.
	Network string
	// Net is the built layer graph with reference shapes.
	Net *networks.Network
	// Kernels is the lowered kernel list in layer order (Table III geometry).
	Kernels []*kernel.Kernel
}

// Extract lowers a network to its layer trace.
func Extract(name string) (*Trace, error) {
	n, err := networks.New(name)
	if err != nil {
		return nil, err
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		return nil, err
	}
	return &Trace{Network: n.Name, Net: n, Kernels: ks}, nil
}

// RunKey is the composite cache key of one sweep cell: the target's
// canonical registry name, the network, and the target's canonicalized
// variant key.  It identifies a run's content across every cache tier —
// the in-memory LRU, the disk cache (which hashes it to a filename and
// echoes it in-band), and the distributed sweep protocol.
func RunKey(t Target, network string, v Variant) string {
	return t.Name() + "\x00" + network + "\x00" + t.CacheKey(v)
}

// DiskCache is the persistent tier under a Store's in-memory LRU.  It is
// implemented by distcache.Cache; the interface lives here so the store
// does not depend on the cache's serialization details.  Load returns the
// cached run rebound to the trace, or false for any miss (absent, corrupt,
// stale — the store recomputes either way).  Implementations must be safe
// for concurrent use.
type DiskCache interface {
	Load(key string, tr *Trace) (*RunStats, bool)
	Store(key string, rs *RunStats) error
}

// StoreStats counts the store's cached entries and cache traffic.
type StoreStats struct {
	// Traces and Runs are the cached entry counts.
	Traces int
	Runs   int
	// TraceHits/TraceMisses and RunHits/RunMisses count lookups.  A miss is
	// the lookup that created an entry and computed it; a hit is a lookup
	// served from an existing entry, including waiting on one still being
	// computed (singleflight waiters are hits — the work happened once).
	TraceHits, TraceMisses int64
	RunHits, RunMisses     int64
	// Computes counts actual Target.Run invocations: a run miss served from
	// the disk tier or a remote worker fills the memory tier without
	// computing, so Computes ≤ RunMisses.  A warm sweep asserts Computes==0.
	Computes int64
	// DiskHits/DiskMisses count disk-tier lookups on memory misses;
	// DiskWrites/DiskErrors count write-backs.  Disk failures are soft —
	// an error never fails the run that produced the result.
	DiskHits, DiskMisses   int64
	DiskWrites, DiskErrors int64
	// DiskEvictions counts records the disk tier's size bound removed
	// (zero when the tier is unbounded or absent).
	DiskEvictions int64
	// RunBytes is the estimated size of the cached run results;
	// RunEvictions counts entries dropped by the memory bounds.  Evicted
	// entries remain on disk when a disk tier is attached.
	RunBytes     int64
	RunEvictions int64
}

// entry is one singleflight cell: done is closed once val/err are final.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// runEntry is one run cell: a singleflight entry plus its LRU bookkeeping.
// elem is nil while the cell is being computed — in-flight cells are not
// in the LRU list and cannot be evicted; they join the list (and the byte
// accounting) only on successful completion.
type runEntry struct {
	entry[*RunStats]
	key   string
	bytes int64
	elem  *list.Element
}

// Store memoizes layer traces and per-target runs so that every figure,
// config variant and sweep over the same (network, target, configuration)
// cell computes it exactly once.  Run results live in a bounded in-memory
// LRU (entries and estimated bytes) over an optional persistent disk tier
// (SetDisk): a memory miss consults the disk before computing, and every
// computed result is written back, so warm sweeps survive process
// restarts.  The store is safe for concurrent use: concurrent requests for
// one cell are coalesced onto a single computation (singleflight) and
// everyone waits for its result — including the disk lookup, which happens
// inside the singleflight slot, so one decode serves all waiters.  Failed
// computations are not cached — the next request retries, so serial render
// paths re-encounter and report errors exactly as they would without the
// store.
type Store struct {
	mu     sync.Mutex
	traces map[string]*entry[*Trace]
	runs   map[string]*runEntry
	lru    *list.List // of *runEntry, front = most recent
	stats  StoreStats

	maxEntries int
	maxBytes   int64
	disk       DiskCache
}

// Default memory bounds: generous enough that no realistic sweep matrix
// thrashes, small enough to bound a long-lived serving process.
const (
	defaultMaxEntries = 4096
	defaultMaxBytes   = 1 << 30 // 1 GiB of estimated result payload
)

// NewStore returns an empty store with default memory bounds and no disk
// tier.
func NewStore() *Store {
	return &Store{
		traces:     make(map[string]*entry[*Trace]),
		runs:       make(map[string]*runEntry),
		lru:        list.New(),
		maxEntries: defaultMaxEntries,
		maxBytes:   defaultMaxBytes,
	}
}

// shared is the process-wide store: sessions, sweeps and commands share it by
// default, so repeated characterization of the same cells is free.
var shared = NewStore()

// Shared returns the process-wide store.
func Shared() *Store { return shared }

// SetDisk attaches (or, with nil, detaches) the persistent tier.  Cells
// already cached in memory are unaffected; subsequent memory misses
// consult d before computing and write computed results back to it.
func (s *Store) SetDisk(d DiskCache) {
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
}

// SetMemoryBounds overrides the in-memory LRU bounds.  Non-positive
// values keep the corresponding default.  Shrinking the bounds evicts
// immediately.
func (s *Store) SetMemoryBounds(entries int, bytes int64) {
	s.mu.Lock()
	if entries > 0 {
		s.maxEntries = entries
	}
	if bytes > 0 {
		s.maxBytes = bytes
	}
	s.evictLocked()
	s.mu.Unlock()
}

// Trace returns the network's layer trace, extracting it on first use.
func (s *Store) Trace(network string) (*Trace, error) {
	s.mu.Lock()
	if e, ok := s.traces[network]; ok {
		s.stats.TraceHits++
		s.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	s.stats.TraceMisses++
	e := &entry[*Trace]{done: make(chan struct{})}
	s.traces[network] = e
	s.mu.Unlock()

	e.val, e.err = Extract(network)
	if e.err != nil {
		s.mu.Lock()
		delete(s.traces, network)
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Run returns the statistics of running the network's trace on the target
// under the variant, computing them on first use.  Results are keyed by the
// target's canonical variant key, so variants that resolve to the same
// effective configuration share one run.
func (s *Store) Run(t Target, network string, v Variant) (*RunStats, error) {
	return s.RunCtx(context.Background(), t, network, v)
}

// RunCtx is Run bounded by a context.  A context that is done before any
// computation starts touches nothing — the store never caches on behalf
// of a canceled caller.  When ctx carries a deadline, the cell is
// computed on a separate goroutine and the caller waits only until ctx
// expires: a hung or slow cell costs the caller its timeout, not the
// whole sweep.  The abandoned computation keeps running to completion —
// a finished result is cached for the retry (or the next sweep), a
// failure is dropped as usual, and a genuinely wedged backend parks one
// goroutine on the poisoned cell instead of wedging every future caller.
// Concurrent callers of one cell still coalesce onto a single
// computation; each waits under its own context.
func (s *Store) RunCtx(ctx context.Context, t Target, network string, v Variant) (*RunStats, error) {
	return s.RunVia(ctx, t, network, v, nil)
}

// ComputeFunc produces one cell's result from its resolved trace, in
// place of the target's local Run — the distributed sweep coordinator
// uses it to fetch cells from remote workers.  It runs inside the cell's
// singleflight slot, after both cache tiers have missed; a successful
// result enters the memory LRU and is written back to the disk tier
// exactly as a local computation would be.
type ComputeFunc func(tr *Trace) (*RunStats, error)

// RunVia is RunCtx with the cell's computation supplied by the caller.  A
// nil compute means the target's own Run (the local path).  All caching,
// coalescing and context semantics are identical to RunCtx.
func (s *Store) RunVia(ctx context.Context, t Target, network string, v Variant, compute ComputeFunc) (*RunStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := RunKey(t, network, v)
	s.mu.Lock()
	if e, ok := s.runs[key]; ok {
		s.stats.RunHits++
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.stats.RunMisses++
	e := &runEntry{entry: entry[*RunStats]{done: make(chan struct{})}, key: key}
	s.runs[key] = e
	s.mu.Unlock()

	fill := func() {
		e.val, e.err = s.fillCell(key, t, network, v, compute)
		s.finishCell(e)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		// No budget to enforce: compute on the caller's goroutine (the
		// pre-existing synchronous fast path, no goroutine per cell).
		fill()
		return e.val, e.err
	}
	go fill()
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// fillCell resolves one memory miss inside its singleflight slot: resolve
// the trace, consult the disk tier, then compute (locally or via the
// caller's ComputeFunc) and write the result back to disk.  Disk failures
// on either side are soft — counted, never fatal to the run.
func (s *Store) fillCell(key string, t Target, network string, v Variant, compute ComputeFunc) (*RunStats, error) {
	tr, err := s.Trace(network)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	d := s.disk
	s.mu.Unlock()
	if d != nil {
		if rs, ok := d.Load(key, tr); ok {
			s.bump(func(st *StoreStats) { st.DiskHits++ })
			return rs, nil
		}
		s.bump(func(st *StoreStats) { st.DiskMisses++ })
	}
	var rs *RunStats
	if compute != nil {
		rs, err = compute(tr)
	} else {
		rs, err = s.ComputeCell(tr, t, v)
	}
	if err != nil {
		return nil, err
	}
	if d != nil {
		if err := d.Store(key, rs); err != nil {
			s.bump(func(st *StoreStats) { st.DiskErrors++ })
		} else {
			s.bump(func(st *StoreStats) { st.DiskWrites++ })
		}
	}
	return rs, nil
}

// finishCell publishes a completed cell: failures leave the cache (the
// next request retries), successes join the LRU list and byte accounting,
// evicting older entries if the bounds are now exceeded.
func (s *Store) finishCell(e *runEntry) {
	s.mu.Lock()
	if e.err != nil {
		delete(s.runs, e.key)
	} else {
		e.bytes = estimateBytes(e.val)
		e.elem = s.lru.PushFront(e)
		s.stats.RunBytes += e.bytes
		s.evictLocked()
	}
	s.mu.Unlock()
	close(e.done)
}

// evictLocked drops least-recently-used completed entries until both
// memory bounds hold.  Callers waiting on an evicted entry are unaffected
// — they hold the entry pointer, not the map slot.
func (s *Store) evictLocked() {
	for s.lru.Len() > s.maxEntries || s.stats.RunBytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		old := back.Value.(*runEntry)
		s.lru.Remove(back)
		old.elem = nil
		delete(s.runs, old.key)
		s.stats.RunBytes -= old.bytes
		s.stats.RunEvictions++
	}
}

// bump applies one stats mutation under the store lock.
func (s *Store) bump(f func(*StoreStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// ComputeCell runs the target on an already-resolved trace, converting a
// panic in the backend (or an injected one) into an error: cell
// computations run on store callers' goroutines or detached singleflight
// goroutines, where an escaped panic would kill the whole process instead
// of the one cell.  It increments Computes — the counter warm-cache
// acceptance tests assert stays zero — and fires the PointRun
// fault-injection site.  It does not touch the caches; it is exported for
// the sweep coordinator's local-fallback path, which feeds results through
// the cache via RunVia.
func (s *Store) ComputeCell(tr *Trace, t Target, v Variant) (rs *RunStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, fmt.Errorf("target: %s on %s panicked: %v", tr.Network, t.Name(), p)
		}
	}()
	s.bump(func(st *StoreStats) { st.Computes++ })
	if err := resilience.FireLabeled(PointRun, tr.Network+"/"+t.Name()+"/"+v.Key); err != nil {
		return nil, err
	}
	return t.Run(tr, v)
}

// Stats returns a snapshot of the store's entry counts and cache traffic.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Traces = len(s.traces)
	st.Runs = len(s.runs)
	// The disk tier tracks its own eviction count; the DiskCache interface
	// stays minimal, so discover it through an optional method.
	if ev, ok := s.disk.(interface{ EvictionCount() int64 }); ok {
		st.DiskEvictions = ev.EvictionCount()
	}
	return st
}

// estimateBytes approximates a run result's resident size for the LRU
// byte bound.  Struct sizes dominate (the big payload is the per-kernel
// counter arrays, which are fixed-size); string headers and slice
// capacity slack are ignored.
func estimateBytes(rs *RunStats) int64 {
	if rs == nil {
		return 0
	}
	n := int64(unsafe.Sizeof(*rs))
	if rs.GPU != nil {
		n += int64(unsafe.Sizeof(*rs.GPU))
		n += int64(len(rs.GPU.Kernels)) * int64(unsafe.Sizeof(gpusim.KernelStats{}))
	}
	if rs.FPGA != nil {
		n += int64(unsafe.Sizeof(*rs.FPGA))
		n += int64(len(rs.FPGA.Layers)) * int64(unsafe.Sizeof(fpga.LayerCost{}))
	}
	return n
}
