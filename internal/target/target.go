// Package target abstracts the accelerator backends the characterization
// pipeline runs on.  A Target wraps one hardware model — the GPU architecture
// simulator (gpusim), the HLS dataflow FPGA model (fpga) or an edge-GPU
// simulator configuration — behind a single trace-once/derive-many contract:
// a network is lowered to its layer trace exactly once (see Trace and Store)
// and every target derives its timing, power and memory statistics from that
// shared trace under any number of configuration variants.
package target

import (
	"fmt"

	"tango/internal/device"
	"tango/internal/fpga"
	"tango/internal/gpusim"
	"tango/internal/power"
	"tango/internal/sched"
)

// Variant selects one configuration point of a sweep: an optional L1D size
// override, an optional warp-scheduler override and the simulator sampling
// level.  The zero value (plus a sampling level) is the target's default
// configuration.
type Variant struct {
	// Key names the variant in sweep output, e.g. "default", "nol1" or
	// "sched-lrr".  It does not participate in result caching: two variants
	// that resolve to the same effective configuration share one run.
	Key string
	// L1Bytes overrides the per-SM L1D size when L1Set is true; zero bypasses
	// the L1 entirely.  GPU-only.
	L1Bytes int
	L1Set   bool
	// Scheduler overrides the warp scheduler when non-empty.  GPU-only.
	Scheduler sched.Kind
	// Sampling bounds the detailed simulation.  GPU-only.
	Sampling gpusim.Sampling
}

// DefaultVariant returns the target-default configuration at the given
// sampling level.
func DefaultVariant(s gpusim.Sampling) Variant {
	return Variant{Key: "default", Sampling: s}
}

// WithL1 returns a copy of the variant with the L1D size overridden.
func (v Variant) WithL1(key string, bytes int) Variant {
	v.Key = key
	v.L1Bytes = bytes
	v.L1Set = true
	return v
}

// WithScheduler returns a copy of the variant with the scheduler overridden.
func (v Variant) WithScheduler(key string, kind sched.Kind) Variant {
	v.Key = key
	v.Scheduler = kind
	return v
}

// RunStats is the backend-independent result of running one trace on one
// target under one variant.  The summary fields are populated for every
// target class; the GPU and FPGA payloads carry the full backend detail for
// figure projections that need stalls, opcode mixes or per-layer costs.
type RunStats struct {
	// Network and Target identify the run.
	Network string
	Target  string
	// Class is the target's device class.
	Class device.Class

	// Cycles and Seconds are the end-to-end execution cost.  Cycles is zero
	// for targets without a core clock domain (the FPGA dataflow model).
	Cycles  int64
	Seconds float64
	// Instructions is the total dynamic instruction count (GPU targets).
	Instructions int64
	// PeakWatts, AvgWatts and EnergyJoules come from the target's power
	// model.  GPU targets integrate per-kernel energy; the FPGA model follows
	// the paper's peak-power-times-time methodology.
	PeakWatts    float64
	AvgWatts     float64
	EnergyJoules float64
	// L2MissRatio is the overall L2 miss ratio (GPU targets).
	L2MissRatio float64

	// GPU holds the simulator statistics for GPU-class targets.
	GPU *gpusim.RunStats
	// FPGA holds the dataflow-model estimate for FPGA-class targets.
	FPGA *fpga.Result
}

// Target is one accelerator backend of the characterization pipeline.
type Target interface {
	// Name is the canonical registry key, e.g. "gp102" or "pynq".
	Name() string
	// Class is the device class (GPU or FPGA).
	Class() device.Class
	// Role describes the evaluation role, e.g. "Simulator", "Server",
	// "Edge" or "Embedded FPGA".
	Role() string
	// Description names the modeled hardware.
	Description() string
	// CacheKey canonicalizes a variant to the knobs that affect this
	// target's results, so equivalent variants share one cached run (the
	// FPGA model, for example, is insensitive to every GPU-only knob).
	CacheKey(v Variant) string
	// Run derives the target's statistics from a shared layer trace.
	Run(tr *Trace, v Variant) (*RunStats, error)
}

// gpuTarget simulates a trace on one GPU configuration via gpusim and derives
// power from the activity-based model.
type gpuTarget struct {
	name string
	role string
	dev  device.GPU
}

// NewGPU wraps a GPU device description as a simulation target.  The role
// labels the device's place in the evaluation ("Simulator", "Server", ...).
func NewGPU(name, role string, dev device.GPU) Target {
	return &gpuTarget{name: name, role: role, dev: dev}
}

// NewEdgeGPU wraps an embedded GPU as a target; it shares the gpusim backend
// but is classed as an edge device in the registry and sweep output.
func NewEdgeGPU(name string, dev device.GPU) Target {
	return &gpuTarget{name: name, role: "Edge", dev: dev}
}

func (g *gpuTarget) Name() string        { return g.name }
func (g *gpuTarget) Class() device.Class { return device.ClassGPU }
func (g *gpuTarget) Role() string        { return g.role }
func (g *gpuTarget) Description() string { return g.dev.Name }

// config resolves a variant to the simulator configuration.
func (g *gpuTarget) config(v Variant) gpusim.Config {
	cfg := gpusim.ConfigFor(g.dev).WithSampling(v.Sampling)
	if v.L1Set {
		cfg = cfg.WithL1Size(v.L1Bytes)
	}
	if v.Scheduler != "" {
		cfg = cfg.WithScheduler(v.Scheduler)
	}
	return cfg
}

// CacheKey canonicalizes the variant against the device defaults, so e.g. an
// explicit 64KB L1 override and the default configuration of a device whose
// L1D is 64KB resolve to the same run.  The key embeds the full device
// description (not just its name), so targets wrapping same-named but
// differently-parameterized devices never share runs.
func (g *gpuTarget) CacheKey(v Variant) string {
	l1 := g.dev.L1DBytes
	if v.L1Set {
		l1 = v.L1Bytes
	}
	kind := v.Scheduler
	if kind == "" {
		kind = sched.GTO
	}
	return fmt.Sprintf("dev=%+v|l1=%d|sched=%s|ctas=%d|iters=%d",
		g.dev, l1, kind, v.Sampling.MaxCTAs, v.Sampling.MaxLoopIters)
}

func (g *gpuTarget) Run(tr *Trace, v Variant) (*RunStats, error) {
	sim, err := gpusim.New(g.config(v))
	if err != nil {
		return nil, err
	}
	rs, err := sim.RunKernels(tr.Network, tr.Kernels)
	if err != nil {
		return nil, err
	}
	np := power.NewModel(g.dev).NetworkPower(rs)
	out := &RunStats{
		Network:      tr.Network,
		Target:       g.name,
		Class:        device.ClassGPU,
		Cycles:       rs.TotalCycles(),
		Seconds:      rs.TotalSeconds(),
		PeakWatts:    np.PeakWatts,
		AvgWatts:     np.AvgWatts,
		EnergyJoules: np.TotalEnergyJoules,
		GPU:          rs,
	}
	var l2, l2Miss int64
	for _, ks := range rs.Kernels {
		out.Instructions += ks.TotalThreadInstructions
		l2 += ks.L2.Accesses
		l2Miss += ks.L2.Misses + ks.L2.MergedMiss
	}
	if l2 > 0 {
		out.L2MissRatio = float64(l2Miss) / float64(l2)
	}
	return out, nil
}

// fpgaTarget estimates a trace's network on the HLS dataflow FPGA model.
type fpgaTarget struct {
	name  string
	model *fpga.Model
}

// NewFPGA wraps an FPGA model configuration as a target.
func NewFPGA(name string, cfg fpga.Config) (Target, error) {
	m, err := fpga.New(cfg)
	if err != nil {
		return nil, err
	}
	return &fpgaTarget{name: name, model: m}, nil
}

func (f *fpgaTarget) Name() string        { return f.name }
func (f *fpgaTarget) Class() device.Class { return device.ClassFPGA }
func (f *fpgaTarget) Role() string        { return "Embedded FPGA" }
func (f *fpgaTarget) Description() string { return f.model.Config().Board.Name }

// CacheKey ignores every GPU-only knob: the dataflow model has no L1, no warp
// scheduler and no sampling, so all variants share one run per network.
func (f *fpgaTarget) CacheKey(Variant) string { return "fpga" }

func (f *fpgaTarget) Run(tr *Trace, _ Variant) (*RunStats, error) {
	res, err := f.model.EstimateNetwork(tr.Net)
	if err != nil {
		return nil, err
	}
	return &RunStats{
		Network:      tr.Network,
		Target:       f.name,
		Class:        device.ClassFPGA,
		Seconds:      res.Seconds,
		PeakWatts:    res.PeakWatts,
		AvgWatts:     res.AvgWatts,
		EnergyJoules: res.EnergyJoules,
		FPGA:         res,
	}, nil
}
