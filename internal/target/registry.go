package target

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tango/internal/device"
	"tango/internal/fpga"
)

// Registry is a named collection of targets with case-insensitive aliases.
// Adding a device to the characterization pipeline is one Register call: every
// figure, sweep and command-line flag resolves targets through the registry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Target // canonical names and aliases, lowercased
	order  []string          // canonical names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Target)}
}

// Register adds a target under its canonical name plus any aliases.
// Names are case-insensitive; re-registering a taken name is an error.
func (r *Registry) Register(t Target, aliases ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string{t.Name()}, aliases...)
	for _, n := range names {
		key := strings.ToLower(strings.TrimSpace(n))
		if key == "" {
			return fmt.Errorf("target: empty name registering %q", t.Name())
		}
		if _, taken := r.byName[key]; taken {
			return fmt.Errorf("target: name %q already registered", key)
		}
	}
	for _, n := range names {
		r.byName[strings.ToLower(strings.TrimSpace(n))] = t
	}
	r.order = append(r.order, t.Name())
	return nil
}

// Lookup resolves a target by canonical name or alias, case-insensitively.
func (r *Registry) Lookup(name string) (Target, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("target: unknown target %q (known: %s)",
			name, strings.Join(r.order, ", "))
	}
	return t, nil
}

// Names returns the canonical target names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Targets returns the registered targets in registration order.
func (r *Registry) Targets() []Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Target, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[strings.ToLower(n)])
	}
	return out
}

// Aliases returns the sorted aliases of one canonical target name.
func (r *Registry) Aliases(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[strings.ToLower(name)]
	if !ok {
		return nil
	}
	var out []string
	for alias, tgt := range r.byName {
		if tgt == t && alias != strings.ToLower(t.Name()) {
			out = append(out, alias)
		}
	}
	sort.Strings(out)
	return out
}

// ForGPU resolves a GPU device description to a target: the builtin target
// modelling exactly that device when one exists (so its runs are shared with
// sweeps and other sessions), otherwise an ad-hoc target named after the
// device.  The match compares the whole device description, so a customized
// variant of a builtin device gets its own target (and, via CacheKey, its
// own runs) even if it keeps the builtin's name.
func ForGPU(dev device.GPU) Target {
	for _, t := range Builtin().Targets() {
		if g, ok := t.(*gpuTarget); ok && g.dev == dev {
			return t
		}
	}
	return NewGPU(dev.Name, dev.Role, dev)
}

// builtinOnce guards the lazily constructed builtin registry.
var (
	builtinOnce sync.Once
	builtin     *Registry
)

// Builtin returns the registry of the paper's evaluation platforms: the
// Pascal GP102 simulator configuration, the Kepler GK210 server GPU, the
// Tegra X1 edge GPU and the PynQ-Z1 embedded FPGA.
func Builtin() *Registry {
	builtinOnce.Do(func() {
		builtin = NewRegistry()
		mustRegister := func(t Target, err error, aliases ...string) {
			if err != nil {
				panic(err)
			}
			if err := builtin.Register(t, aliases...); err != nil {
				panic(err)
			}
		}
		mustRegister(NewGPU("gp102", "Simulator", device.PascalGP102()), nil, "pascal", "simulator")
		mustRegister(NewGPU("gk210", "Server", device.GK210()), nil, "k80", "server")
		mustRegister(NewEdgeGPU("tx1", device.TX1()), nil, "tegra", "mobile", "edge")
		pynq, err := NewFPGA("pynq", fpga.DefaultConfig())
		mustRegister(pynq, err, "fpga", "pynq-z1")
	})
	return builtin
}
