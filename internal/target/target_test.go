package target

import (
	"strings"
	"testing"

	"tango/internal/device"
	"tango/internal/fpga"
	"tango/internal/gpusim"
	"tango/internal/sched"
)

func TestBuiltinRegistry(t *testing.T) {
	reg := Builtin()
	names := reg.Names()
	want := []string{"gp102", "gk210", "tx1", "pynq"}
	if len(names) != len(want) {
		t.Fatalf("builtin targets = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("builtin target %d = %q, want %q", i, names[i], n)
		}
	}
	for alias, canonical := range map[string]string{
		"SIMULATOR": "gp102",
		"k80":       "gk210",
		"Edge":      "tx1",
		"fpga":      "pynq",
		" pynq-z1 ": "pynq",
	} {
		tgt, err := reg.Lookup(alias)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", alias, err)
		}
		if tgt.Name() != canonical {
			t.Errorf("Lookup(%q) = %q, want %q", alias, tgt.Name(), canonical)
		}
	}
	if _, err := reg.Lookup("a100"); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Errorf("unknown target should fail with the known list, got %v", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(NewGPU("gp102", "Simulator", device.PascalGP102())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewGPU("GP102", "Simulator", device.PascalGP102())); err == nil {
		t.Error("duplicate canonical name (case-insensitive) should be rejected")
	}
	if err := reg.Register(NewGPU("other", "Server", device.GK210()), "gp102"); err == nil {
		t.Error("alias colliding with a taken name should be rejected")
	}
}

func TestForGPUReusesBuiltinTargets(t *testing.T) {
	if got := ForGPU(device.PascalGP102()); got != mustLookup(t, "gp102") {
		t.Error("ForGPU(GP102) should return the builtin gp102 target")
	}
	if got := ForGPU(device.TX1()); got != mustLookup(t, "tx1") {
		t.Error("ForGPU(TX1) should return the builtin tx1 target")
	}
	custom := device.PascalGP102()
	custom.Name = "Custom GPU"
	if got := ForGPU(custom); got.Name() != "Custom GPU" {
		t.Errorf("ForGPU(custom) = %q, want ad-hoc target named after the device", got.Name())
	}
}

func mustLookup(t *testing.T, name string) Target {
	t.Helper()
	tgt, err := Builtin().Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestGPUCacheKeyCanonicalizes asserts that the default configuration and an
// explicit override matching the device default resolve to the same run key —
// the content-addressing that lets Figure 2's 64KB point reuse the default
// run on the GP102.
func TestGPUCacheKeyCanonicalizes(t *testing.T) {
	gp102 := mustLookup(t, "gp102")
	s := gpusim.FastSampling()
	def := DefaultVariant(s)
	l164 := DefaultVariant(s).WithL1("l1", 64<<10)
	if gp102.CacheKey(def) != gp102.CacheKey(l164) {
		t.Errorf("GP102 default (64KB L1) and explicit 64KB override should share a key:\n%s\n%s",
			gp102.CacheKey(def), gp102.CacheKey(l164))
	}
	nol1 := DefaultVariant(s).WithL1("nol1", 0)
	if gp102.CacheKey(def) == gp102.CacheKey(nol1) {
		t.Error("bypassed L1 must not share the default key")
	}
	lrr := DefaultVariant(s).WithScheduler("sched-lrr", sched.LRR)
	if gp102.CacheKey(def) == gp102.CacheKey(lrr) {
		t.Error("scheduler override must not share the default key")
	}
	if gp102.CacheKey(def) == gp102.CacheKey(DefaultVariant(gpusim.DefaultSampling())) {
		t.Error("sampling level must participate in the key")
	}
	// Distinct devices must never collide, even under identical variants.
	if gp102.CacheKey(def) == mustLookup(t, "tx1").CacheKey(def) {
		t.Error("targets with different devices must not share keys")
	}
}

// TestFPGACacheKeyCollapsesVariants asserts the FPGA model's insensitivity to
// GPU-only knobs is reflected in its cache key.
func TestFPGACacheKeyCollapsesVariants(t *testing.T) {
	pynq := mustLookup(t, "pynq")
	s := gpusim.FastSampling()
	a := pynq.CacheKey(DefaultVariant(s))
	b := pynq.CacheKey(DefaultVariant(gpusim.DefaultSampling()).WithL1("nol1", 0))
	if a != b {
		t.Errorf("FPGA cache keys should collapse all GPU-only variants: %q vs %q", a, b)
	}
}

// TestTargetsAgreeOnSharedTrace runs one trace on a GPU target and the FPGA
// target and sanity-checks both derivations.
func TestTargetsAgreeOnSharedTrace(t *testing.T) {
	tr, err := Extract("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Net == nil || len(tr.Kernels) == 0 {
		t.Fatal("trace should carry the built network and its kernels")
	}

	v := DefaultVariant(gpusim.FastSampling())
	gpu, err := mustLookup(t, "gp102").Run(tr, v)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Class != device.ClassGPU || gpu.GPU == nil || gpu.FPGA != nil {
		t.Errorf("GPU run should carry the simulator payload: %+v", gpu)
	}
	if gpu.Cycles <= 0 || gpu.Seconds <= 0 || gpu.Instructions <= 0 || gpu.PeakWatts <= 0 {
		t.Errorf("GPU summary fields should be positive: %+v", gpu)
	}
	if len(gpu.GPU.Kernels) != len(tr.Kernels) {
		t.Errorf("GPU run covers %d kernels, trace has %d", len(gpu.GPU.Kernels), len(tr.Kernels))
	}

	fp, err := mustLookup(t, "pynq").Run(tr, v)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Class != device.ClassFPGA || fp.FPGA == nil || fp.GPU != nil {
		t.Errorf("FPGA run should carry the dataflow payload: %+v", fp)
	}
	if fp.Cycles != 0 {
		t.Errorf("FPGA run has no core clock domain, got %d cycles", fp.Cycles)
	}
	if fp.Seconds <= 0 || fp.EnergyJoules <= 0 {
		t.Errorf("FPGA summary fields should be positive: %+v", fp)
	}
	// The paper's Figure 6 relationship: the FPGA draws far less peak power.
	if fp.PeakWatts >= gpu.PeakWatts {
		t.Errorf("PynQ peak power (%.1fW) should undercut the GP102's (%.1fW)", fp.PeakWatts, gpu.PeakWatts)
	}
}

func TestNewFPGARejectsBadConfig(t *testing.T) {
	cfg := fpga.DefaultConfig()
	cfg.DSPEfficiency = 2
	if _, err := NewFPGA("bad", cfg); err == nil {
		t.Error("invalid FPGA config should be rejected")
	}
}
