// Package cache models the on-chip data caches of the simulated GPU: the
// per-SM L1 data cache (configurable size, bypassable, as the paper's
// Figure 2 sweep requires) and the shared L2 cache, both set-associative with
// LRU replacement and a bounded number of MSHRs for outstanding misses.
package cache

import (
	"fmt"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity; zero disables (bypasses) the cache.
	SizeBytes int
	// LineBytes is the cache line (sector) size.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// MSHRs bounds the number of outstanding missed lines; zero means
	// unlimited.
	MSHRs int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeBytes < 0 {
		return fmt.Errorf("cache: negative size %d", c.SizeBytes)
	}
	if c.SizeBytes == 0 {
		return nil // bypass
	}
	if c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: line size and ways must be positive")
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Bypassed reports whether the cache is disabled.
func (c Config) Bypassed() bool { return c.SizeBytes == 0 }

// Sets returns the number of sets.
func (c Config) Sets() int {
	if c.Bypassed() {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// DefaultL1 returns the Pascal default 64KB L1 data cache configuration.
func DefaultL1(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineBytes: 128, Ways: 4, MSHRs: 32, HitLatency: 28}
}

// DefaultL2 returns a banked L2 slice configuration.
func DefaultL2(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineBytes: 128, Ways: 16, MSHRs: 128, HitLatency: 120}
}

// Outcome describes the result of a cache access.
type Outcome uint8

// Access outcomes.
const (
	// Hit means the line was present.
	Hit Outcome = iota
	// Miss means the line was absent and an MSHR was allocated.
	Miss
	// MissMerged means the line was absent but an MSHR for it already exists.
	MissMerged
	// ReservationFail means no MSHR was available; the access must be
	// retried (memory throttle).
	ReservationFail
	// Bypass means the cache is disabled and the access goes straight to the
	// next level.
	Bypass
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "miss-merged"
	case ReservationFail:
		return "reservation-fail"
	default:
		return "bypass"
	}
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses    int64
	Hits        int64
	Misses      int64
	MergedMiss  int64
	ResFails    int64
	Bypasses    int64
	Evictions   int64
	FillsArrive int64
}

// MissRatio returns misses / accesses (counting merged misses as misses).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.MergedMiss) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.MergedMiss += other.MergedMiss
	s.ResFails += other.ResFails
	s.Bypasses += other.Bypasses
	s.Evictions += other.Evictions
	s.FillsArrive += other.FillsArrive
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Cache is a set-associative cache with LRU replacement and MSHR tracking.
// It is a timing model: data values are not stored, only line presence.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64

	// mshrs maps pending line addresses to the number of merged requests.
	mshrs map[uint64]int

	stats Stats
}

// New constructs a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, mshrs: make(map[uint64]int)}
	if !cfg.Bypassed() {
		c.sets = make([][]line, cfg.Sets())
		for i := range c.sets {
			c.sets[i] = make([]line, cfg.Ways)
		}
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// lineAddr returns the line-aligned address.
func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineBytes)
}

// Access looks up the line containing addr.  Write accesses allocate like
// reads (the GPU L1/L2 are modelled write-allocate for simplicity of traffic
// accounting).  The outcome tells the caller whether the request hit, missed
// (allocating an MSHR), merged into an existing MSHR, or failed to reserve
// one.
func (c *Cache) Access(addr uint64, isWrite bool) Outcome {
	c.clock++
	if c.cfg.Bypassed() {
		c.stats.Bypasses++
		return Bypass
	}
	c.stats.Accesses++
	la := c.lineAddr(addr)
	setIdx := la % uint64(len(c.sets))
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lru = c.clock
			c.stats.Hits++
			return Hit
		}
	}
	// Miss path.
	if _, pending := c.mshrs[la]; pending {
		c.mshrs[la]++
		c.stats.MergedMiss++
		return MissMerged
	}
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		c.stats.ResFails++
		return ReservationFail
	}
	c.mshrs[la] = 1
	c.stats.Misses++
	return Miss
}

// Fill installs the line containing addr (a miss returning from the next
// level) and releases its MSHR.
func (c *Cache) Fill(addr uint64) {
	if c.cfg.Bypassed() {
		return
	}
	la := c.lineAddr(addr)
	delete(c.mshrs, la)
	c.stats.FillsArrive++
	setIdx := la % uint64(len(c.sets))
	set := c.sets[setIdx]
	// Already present (e.g. refetched) — just refresh.
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].lru = c.clock
			return
		}
	}
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{valid: true, tag: la, lru: c.clock}
}

// PendingMisses returns the number of occupied MSHRs.
func (c *Cache) PendingMisses() int { return len(c.mshrs) }

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	if c.cfg.Bypassed() {
		return false
	}
	la := c.lineAddr(addr)
	set := c.sets[la%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}
