package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultL1(64 << 10)
	if err := good.Validate(); err != nil {
		t.Errorf("default L1 config invalid: %v", err)
	}
	if good.Sets() != 128 {
		t.Errorf("64KB/128B/4-way should have 128 sets, got %d", good.Sets())
	}
	bypass := Config{SizeBytes: 0}
	if err := bypass.Validate(); err != nil {
		t.Errorf("bypass config should validate: %v", err)
	}
	if !bypass.Bypassed() || bypass.Sets() != 0 {
		t.Error("zero-size cache should be bypassed")
	}
	bad := []Config{
		{SizeBytes: -1},
		{SizeBytes: 1024, LineBytes: 0, Ways: 4},
		{SizeBytes: 1000, LineBytes: 128, Ways: 4}, // not divisible
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBypassedCache(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 0})
	for i := 0; i < 10; i++ {
		if out := c.Access(uint64(i*128), false); out != Bypass {
			t.Fatalf("bypassed cache returned %v", out)
		}
	}
	if c.Stats().Bypasses != 10 {
		t.Errorf("bypass count = %d, want 10", c.Stats().Bypasses)
	}
	c.Fill(0) // must not panic
	if c.Contains(0) {
		t.Error("bypassed cache should contain nothing")
	}
}

func TestMissFillHit(t *testing.T) {
	c := mustCache(t, DefaultL1(64<<10))
	if out := c.Access(0x1000, false); out != Miss {
		t.Fatalf("first access = %v, want miss", out)
	}
	c.Fill(0x1000)
	if out := c.Access(0x1000, false); out != Hit {
		t.Fatalf("post-fill access = %v, want hit", out)
	}
	// Same line, different word.
	if out := c.Access(0x1004, false); out != Hit {
		t.Fatalf("same-line access = %v, want hit", out)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRatio() <= 0.3 || st.MissRatio() >= 0.4 {
		t.Errorf("miss ratio = %v, want 1/3", st.MissRatio())
	}
}

func TestMissMerging(t *testing.T) {
	c := mustCache(t, DefaultL1(64<<10))
	if out := c.Access(0x2000, false); out != Miss {
		t.Fatalf("first access = %v", out)
	}
	if out := c.Access(0x2000, false); out != MissMerged {
		t.Fatalf("second access to pending line = %v, want merged", out)
	}
	if c.PendingMisses() != 1 {
		t.Errorf("pending misses = %d, want 1", c.PendingMisses())
	}
	c.Fill(0x2000)
	if c.PendingMisses() != 0 {
		t.Errorf("pending misses after fill = %d, want 0", c.PendingMisses())
	}
}

func TestMSHRExhaustion(t *testing.T) {
	cfg := DefaultL1(64 << 10)
	cfg.MSHRs = 2
	c := mustCache(t, cfg)
	if c.Access(0x0000, false) != Miss {
		t.Fatal("expected miss")
	}
	if c.Access(0x1000, false) != Miss {
		t.Fatal("expected miss")
	}
	if out := c.Access(0x2000, false); out != ReservationFail {
		t.Fatalf("third outstanding miss = %v, want reservation fail", out)
	}
	if c.Stats().ResFails != 1 {
		t.Errorf("reservation failures = %d, want 1", c.Stats().ResFails)
	}
	c.Fill(0x0000)
	if out := c.Access(0x2000, false); out != Miss {
		t.Fatalf("after fill, access = %v, want miss", out)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny direct-ish cache: 2 sets x 2 ways x 128B = 512B.
	cfg := Config{SizeBytes: 512, LineBytes: 128, Ways: 2, MSHRs: 8, HitLatency: 1}
	c := mustCache(t, cfg)
	// Three lines mapping to the same set (stride = 2 lines = 256B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	for _, addr := range []uint64{a, b} {
		if c.Access(addr, false) != Miss {
			t.Fatal("expected miss")
		}
		c.Fill(addr)
	}
	// Touch a so b becomes LRU.
	if c.Access(a, false) != Hit {
		t.Fatal("expected hit on a")
	}
	if c.Access(d, false) != Miss {
		t.Fatal("expected miss on d")
	}
	c.Fill(d)
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("a and d should be resident")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted as LRU")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestWriteAccessesCount(t *testing.T) {
	c := mustCache(t, DefaultL1(64<<10))
	if c.Access(0x100, true) != Miss {
		t.Fatal("expected write miss")
	}
	c.Fill(0x100)
	if c.Access(0x100, true) != Hit {
		t.Fatal("expected write hit")
	}
	if c.Stats().Accesses != 2 {
		t.Errorf("accesses = %d, want 2", c.Stats().Accesses)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4}
	b := Stats{Accesses: 5, Hits: 5}
	a.Add(b)
	if a.Accesses != 15 || a.Hits != 11 || a.Misses != 4 {
		t.Errorf("Add result %+v", a)
	}
	var zero Stats
	if zero.MissRatio() != 0 {
		t.Error("empty stats miss ratio should be 0")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Hit, Miss, MissMerged, ReservationFail, Bypass} {
		if o.String() == "" {
			t.Errorf("outcome %d has empty name", o)
		}
	}
}

func TestSmallCacheThrashesLargeCacheHolds(t *testing.T) {
	// The same working set must show a lower miss ratio in a larger cache —
	// the mechanism behind the paper's Figure 2 L1D sweep.
	working := 256 // lines
	run := func(sizeBytes int) float64 {
		c := mustCache(t, DefaultL1(sizeBytes))
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < working; i++ {
				addr := uint64(i * 128)
				if out := c.Access(addr, false); out == Miss || out == MissMerged {
					c.Fill(addr)
				}
			}
		}
		return c.Stats().MissRatio()
	}
	small := run(16 << 10) // 128 lines — cannot hold the working set
	large := run(64 << 10) // 512 lines — holds it easily
	if large >= small {
		t.Errorf("larger cache should miss less: small=%v large=%v", small, large)
	}
	if large > 0.3 {
		t.Errorf("64KB cache should mostly hit a 32KB working set, miss ratio %v", large)
	}
}

// Property: hits + misses + merged + failures == accesses.
func TestQuickAccessAccounting(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New(DefaultL1(16 << 10))
		if err != nil {
			return false
		}
		for _, a := range addrs {
			out := c.Access(uint64(a)*64, false)
			if out == Miss {
				c.Fill(uint64(a) * 64)
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses+st.MergedMiss+st.ResFails == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after Fill, the line is resident.
func TestQuickFillMakesResident(t *testing.T) {
	f := func(addr uint32) bool {
		c, err := New(DefaultL1(32 << 10))
		if err != nil {
			return false
		}
		a := uint64(addr)
		c.Access(a, false)
		c.Fill(a)
		return c.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
