package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// instantSleep records requested delays without sleeping.
func instantSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	b := Backoff{Attempts: 5, Initial: 10 * time.Millisecond, Max: 40 * time.Millisecond, sleep: instantSleep(&delays)}
	calls := 0
	err := Retry(context.Background(), b, func(context.Context) error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("Retry = %v after %d calls", err, calls)
	}
	// Exponential with cap: 10ms, 20ms, 40ms (capped).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 3, sleep: instantSleep(&delays)},
		func(context.Context) error { calls++; return boom })
	if calls != 3 || !errors.Is(err, boom) {
		t.Fatalf("Retry = %v after %d calls, want wrapped boom after 3", err, calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 5},
		func(context.Context) error { calls++; return Permanent(fatal) })
	if calls != 1 || !errors.Is(err, fatal) {
		t.Fatalf("Retry = %v after %d calls, want fatal after 1", err, calls)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Backoff{Attempts: 5}, func(context.Context) error { calls++; return errors.New("x") })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Retry = %v after %d calls", err, calls)
	}

	// Cancel during the backoff wait: the last attempt's error is kept.
	ctx2, cancel2 := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err = Retry(ctx2, Backoff{Attempts: 5, Initial: time.Hour, sleep: func(ctx context.Context, d time.Duration) error {
		cancel2()
		return context.Canceled
	}}, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("canceled-in-backoff Retry = %v, want wrapped boom", err)
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	b := Backoff{Attempts: 4, Initial: 100 * time.Millisecond, Jitter: 0.5, Seed: 11}.withDefaults()
	for n := 0; n < 3; n++ {
		d1, d2 := b.delay(n), b.delay(n)
		if d1 != d2 {
			t.Fatalf("jittered delay(%d) not deterministic: %v vs %v", n, d1, d2)
		}
		base := 100 * time.Millisecond << n
		lo, hi := base/2, base+base/2
		if d1 < lo || d1 > hi {
			t.Fatalf("delay(%d) = %v outside ±50%% of %v", n, d1, base)
		}
	}
}

func TestWithBudget(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 50*time.Millisecond)
	defer cancel()
	if Remaining(ctx, 0) <= 0 || Remaining(ctx, 0) > 50*time.Millisecond {
		t.Fatalf("Remaining = %v", Remaining(ctx, 0))
	}

	// A tighter existing deadline wins.
	tight, cancelTight := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelTight()
	ctx2, cancel2 := WithBudget(tight, time.Hour)
	defer cancel2()
	if Remaining(ctx2, 0) > 10*time.Millisecond {
		t.Fatalf("budget loosened an existing deadline: %v", Remaining(ctx2, 0))
	}

	// Zero budget: unchanged context, default remaining.
	ctx3, cancel3 := WithBudget(context.Background(), 0)
	defer cancel3()
	if ctx3 != context.Background() || Remaining(ctx3, time.Minute) != time.Minute {
		t.Fatal("zero budget must leave ctx unchanged")
	}

	// Expired deadline clamps to zero.
	past, cancelPast := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelPast()
	if Remaining(past, time.Minute) != 0 {
		t.Fatalf("expired Remaining = %v, want 0", Remaining(past, time.Minute))
	}
}
