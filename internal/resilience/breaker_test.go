package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker timing.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold, probes int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Probes: probes, Now: clk.now}), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, 1, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(boom)
	}
	// A success resets the streak.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(boom)
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v", st)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, 2, time.Second)
	b.Record(errors.New("boom")) // trips (threshold 1)
	if b.State() != BreakerOpen {
		t.Fatal("not open after threshold")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("not half-open after cooldown")
	}
	// Two probe slots; a third concurrent call is rejected.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("third concurrent probe allowed: %v", err)
	}
	b.Record(nil)
	b.Record(nil)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2 probe successes = %v", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Second)
	b.Record(errors.New("boom"))
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errors.New("still broken"))
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v", st)
	}
	// The fresh open period starts at the probe failure.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker allowed a call: %v", err)
	}
}

func TestBreakerForgiveReleasesProbeSlot(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Second)
	b.Record(errors.New("boom"))
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	// The probe was canceled client-side: no verdict, slot returned.
	b.Forgive()
	if err := b.Allow(); err != nil {
		t.Fatalf("forgiven probe slot not released: %v", err)
	}
	b.Record(nil)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v", st)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.Threshold != 5 || b.cfg.Cooldown != 2*time.Second || b.cfg.Probes != 1 || b.cfg.Now == nil {
		t.Fatalf("defaults = %+v", b.cfg)
	}
	states := []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen, BreakerState(99)}
	want := []string{"closed", "open", "half-open", "unknown"}
	for i, s := range states {
		if s.String() != want[i] {
			t.Fatalf("State(%d).String() = %q", i, s.String())
		}
	}
}
