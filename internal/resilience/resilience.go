// Package resilience is the fault-tolerance substrate of the suite: a
// deterministic fault-injection registry for chaos testing, bounded
// retry with capped exponential backoff, a circuit breaker, and context
// deadline-budget helpers.
//
// # Fault injection
//
// Code under test declares named injection points with Register and calls
// Fire (or FireLabeled) at the matching site.  With no plan enabled — the
// default — Fire is a single atomic load returning nil, cheap enough for
// hot paths.  A plan enabled via Enable (or EnableFromEnv, reading
// TANGO_FAULTS / TANGO_FAULT_SEED) attaches rules to points:
//
//	serve.batch.run=panic:0.02;serve.batch.run=latency:0.2:2ms;target.run=error:1:only=CifarNet
//
// Each rule is point=mode:rate followed by optional colon-separated
// arguments.  Modes are "error" (Fire returns a wrapped ErrInjected),
// "panic" (Fire panics — the caller's isolation is what is under test)
// and "latency" (Fire sleeps, then keeps evaluating later rules).  rate
// is the per-call firing probability in [0, 1]; decisions are derived
// from the plan seed and a per-rule call counter, never from the global
// RNG or the clock, so a chaos run replays identically for a given seed.
// A "latency" rule takes a duration argument ("2ms"); any rule may take
// "only=<substring>", restricting it to Fire calls whose label contains
// the substring (e.g. one sweep cell).
package resilience

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so callers
// and chaos harnesses can tell deliberate faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// Point names one fault-injection site.
type Point string

// PointInfo describes a registered injection point.
type PointInfo struct {
	Point       Point
	Description string
}

var (
	regMu      sync.Mutex
	registered = map[Point]string{}
)

// Register declares an injection point (typically from a package init or
// var initializer) and returns it, so call sites keep a typed handle.
// Re-registering a point overwrites its description.
func Register(p Point, description string) Point {
	regMu.Lock()
	registered[p] = description
	regMu.Unlock()
	return p
}

// Points lists the registered injection points in name order.
func Points() []PointInfo {
	regMu.Lock()
	out := make([]PointInfo, 0, len(registered))
	for p, d := range registered {
		out = append(out, PointInfo{Point: p, Description: d})
	}
	regMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// mode is what a firing rule does.
type mode int

const (
	modeError mode = iota
	modePanic
	modeLatency
)

func (m mode) String() string {
	switch m {
	case modeError:
		return "error"
	case modePanic:
		return "panic"
	case modeLatency:
		return "latency"
	}
	return "unknown"
}

// rule is one parsed injection rule.  calls is the per-rule deterministic
// decision counter.
type rule struct {
	point Point
	mode  mode
	rate  float64
	delay time.Duration
	only  string
	id    uint64
	calls atomic.Uint64
}

// plan is an enabled fault-injection configuration.
type plan struct {
	seed  uint64
	spec  string
	rules map[Point][]*rule
}

var active atomic.Pointer[plan]

// Enabled reports whether a fault-injection plan is active.
func Enabled() bool { return active.Load() != nil }

// Spec returns the active plan's spec string ("" when disabled).
func Spec() string {
	if pl := active.Load(); pl != nil {
		return pl.spec
	}
	return ""
}

// Enable parses a fault spec and installs it as the active plan.  Rules
// must name registered points; an unknown point is an error so chaos
// configurations fail loudly instead of silently injecting nothing.
func Enable(spec string, seed uint64) error {
	pl, err := parsePlan(spec, seed)
	if err != nil {
		return err
	}
	active.Store(pl)
	return nil
}

// Disable removes the active plan; Fire becomes a no-op again.
func Disable() { active.Store(nil) }

// EnvSpec and EnvSeed are the environment variables EnableFromEnv reads.
const (
	EnvSpec = "TANGO_FAULTS"
	EnvSeed = "TANGO_FAULT_SEED"
)

// EnableFromEnv installs the plan described by TANGO_FAULTS (seeded by
// TANGO_FAULT_SEED, default 1).  It reports whether a plan was enabled;
// an unset or empty TANGO_FAULTS leaves injection disabled.
func EnableFromEnv() (bool, error) {
	spec := strings.TrimSpace(os.Getenv(EnvSpec))
	if spec == "" {
		return false, nil
	}
	seed := uint64(1)
	if s := strings.TrimSpace(os.Getenv(EnvSeed)); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return false, fmt.Errorf("resilience: %s=%q: %v", EnvSeed, s, err)
		}
		seed = n
	}
	if err := Enable(spec, seed); err != nil {
		return false, err
	}
	return true, nil
}

// parsePlan parses "point=mode:rate[:dur][:only=substr][;...]".  Entries
// are separated by ';' or ','.
func parsePlan(spec string, seed uint64) (*plan, error) {
	pl := &plan{seed: seed, spec: spec, rules: map[Point][]*rule{}}
	var id uint64
	for _, ent := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, conf, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("resilience: rule %q: want point=mode:rate[...]", ent)
		}
		p := Point(strings.TrimSpace(name))
		regMu.Lock()
		_, known := registered[p]
		regMu.Unlock()
		if !known {
			return nil, fmt.Errorf("resilience: rule %q names unregistered point %q (known: %v)", ent, p, pointNames())
		}
		parts := strings.Split(conf, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("resilience: rule %q: want point=mode:rate[...]", ent)
		}
		r := &rule{point: p, id: id}
		id++
		switch strings.TrimSpace(parts[0]) {
		case "error":
			r.mode = modeError
		case "panic":
			r.mode = modePanic
		case "latency":
			r.mode = modeLatency
		default:
			return nil, fmt.Errorf("resilience: rule %q: unknown mode %q (want error, panic or latency)", ent, parts[0])
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("resilience: rule %q: rate %q must be in [0, 1]", ent, parts[1])
		}
		r.rate = rate
		for _, arg := range parts[2:] {
			arg = strings.TrimSpace(arg)
			switch {
			case strings.HasPrefix(arg, "only="):
				r.only = strings.TrimPrefix(arg, "only=")
			default:
				d, err := time.ParseDuration(arg)
				if err != nil {
					return nil, fmt.Errorf("resilience: rule %q: argument %q is neither a duration nor only=", ent, arg)
				}
				r.delay = d
			}
		}
		if r.mode == modeLatency && r.delay <= 0 {
			return nil, fmt.Errorf("resilience: rule %q: latency mode needs a positive duration argument", ent)
		}
		pl.rules[p] = append(pl.rules[p], r)
	}
	if len(pl.rules) == 0 {
		return nil, fmt.Errorf("resilience: fault spec %q contains no rules", spec)
	}
	return pl, nil
}

func pointNames() []string {
	var names []string
	for _, pi := range Points() {
		names = append(names, string(pi.Point))
	}
	return names
}

// Fire evaluates the active plan at an injection point.  It returns nil
// when injection is disabled or no rule fires; it returns a wrapped
// ErrInjected for an "error" rule, panics for a "panic" rule, and sleeps
// (then continues to later rules) for a "latency" rule.
func Fire(p Point) error { return FireLabeled(p, "") }

// FireLabeled is Fire with a site-specific label (e.g. the sweep cell
// "CifarNet/gp102/default") that rules can match with only=.
func FireLabeled(p Point, label string) error {
	pl := active.Load()
	if pl == nil {
		return nil
	}
	rules := pl.rules[p]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		if r.only != "" && !strings.Contains(label, r.only) {
			continue
		}
		n := r.calls.Add(1)
		if r.rate < 1 && !decide(pl.seed, r.id, n, r.rate) {
			continue
		}
		switch r.mode {
		case modeLatency:
			time.Sleep(r.delay)
		case modeError:
			if label != "" {
				return fmt.Errorf("%w: %s at %s (%s)", ErrInjected, modeError, p, label)
			}
			return fmt.Errorf("%w: %s at %s", ErrInjected, modeError, p)
		case modePanic:
			panic(fmt.Sprintf("resilience: injected panic at %s", p))
		}
	}
	return nil
}

// decide maps (seed, rule, call-ordinal) onto a uniform draw in [0, 1)
// via splitmix64, so a plan's firing pattern is a pure function of its
// seed and each rule's call sequence — reproducible run to run.
func decide(seed, ruleID, call uint64, rate float64) bool {
	x := splitmix64(seed ^ (ruleID+1)*0x9e3779b97f4a7c15 ^ call*0xbf58476d1ce4e5b9)
	return float64(x>>11)/float64(1<<53) < rate
}

// splitmix64 is the standard 64-bit finalizing mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
