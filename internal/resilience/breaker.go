package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is open:
// the protected resource has failed repeatedly and calls are being shed
// until the cooldown elapses.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed: healthy, all calls pass.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, calls are rejected until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: cooling down, a bounded number of probe calls are
	// let through to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker.  The zero value trips after 5
// consecutive failures, cools down for 2s, and closes again after 1
// successful probe.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// values below 1 select 5.
	Threshold int
	// Cooldown is how long the breaker stays open before probing; values
	// <= 0 select 2s.
	Cooldown time.Duration
	// Probes is how many consecutive probe successes close a half-open
	// breaker (and how many concurrent probes are admitted); values below
	// 1 select 1.
	Probes int
	// Now is the clock (tests inject a fake); nil selects time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Probes < 1 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker.  Callers pair each
// successful Allow with exactly one Record (verdict) or Forgive (no
// verdict — e.g. the caller was canceled before the protected call ran),
// so half-open probe accounting stays balanced.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	probing   int       // in-flight probes while half-open
	probeWins int       // consecutive probe successes while half-open
}

// NewBreaker returns a closed breaker with the given policy.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed.  It returns nil when the
// breaker is closed, admits up to Probes concurrent calls when the
// cooldown has elapsed (half-open), and returns ErrBreakerOpen otherwise.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = 0
		b.probeWins = 0
		fallthrough
	default: // half-open
		if b.probing >= b.cfg.Probes {
			return ErrBreakerOpen
		}
		b.probing++
		return nil
	}
}

// Record reports the outcome of an allowed call: nil resets the failure
// streak (and closes a half-open breaker once enough probes succeed);
// non-nil extends it (and re-opens a half-open breaker immediately).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if err != nil {
			b.trip()
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.Probes {
			b.state = BreakerClosed
			b.failures = 0
		}
	default:
		// Open: a straggler from before the trip; the verdict is stale.
	}
}

// Forgive releases an allowed call without a verdict: the call never
// reached the protected resource (client cancellation, shed by a later
// admission stage), so it must neither extend nor reset failure streaks —
// but a half-open probe slot must be returned.
func (b *Breaker) Forgive() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen && b.probing > 0 {
		b.probing--
	}
	b.mu.Unlock()
}

// trip opens the breaker (caller holds mu).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probing = 0
	b.probeWins = 0
}

// State returns the breaker's current state, advancing open to half-open
// when the cooldown has elapsed so observers see the same state Allow
// would act on.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
