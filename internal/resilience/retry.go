package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Backoff is a bounded-retry policy: capped exponential backoff with
// deterministic jitter.  The zero value retries 3 times starting at 10ms,
// doubling up to a 1s cap, with no jitter.
type Backoff struct {
	// Attempts is the total number of tries (first call included); values
	// below 1 select 3.
	Attempts int
	// Initial is the delay before the second attempt; values <= 0 select
	// 10ms.
	Initial time.Duration
	// Max caps the per-attempt delay; values <= 0 select 1s.
	Max time.Duration
	// Factor multiplies the delay between attempts; values <= 1 select 2.
	Factor float64
	// Jitter spreads each delay by ±Jitter fraction (0.2 = ±20%).  The
	// jitter sequence is derived from Seed, not the global RNG, so a
	// retry schedule replays identically for a given seed.
	Jitter float64
	// Seed keys the jitter sequence.
	Seed uint64
	// sleep is the test hook for the inter-attempt wait.
	sleep func(ctx context.Context, d time.Duration) error
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts < 1 {
		b.Attempts = 3
	}
	if b.Initial <= 0 {
		b.Initial = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.sleep == nil {
		b.sleep = sleepCtx
	}
	return b
}

// delay returns the wait before attempt n+1 (n is the 0-based attempt
// that just failed).
func (b Backoff) delay(n int) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < n; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		// u in [-1, 1), deterministic in (seed, attempt).
		u := float64(splitmix64(b.Seed^uint64(n)*0x9e3779b97f4a7c15)>>11)/float64(1<<52) - 1
		d *= 1 + b.Jitter*u
	}
	if d < 0 {
		d = 0
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Retry stops immediately instead of burning
// the remaining attempts (e.g. a validation failure that cannot succeed
// on retry).  A nil error stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retry runs fn until it succeeds, returns a Permanent error, exhausts
// the attempt budget, or ctx is done.  The error of the last attempt is
// returned (annotated with the attempt count when every attempt failed);
// ctx expiry during a backoff wait returns ctx's error.
func Retry(ctx context.Context, b Backoff, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	b = b.withDefaults()
	var last error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("resilience: retry canceled after %d attempts (%v): %w", attempt, err, last)
			}
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if attempt == b.Attempts-1 {
			break
		}
		if err := b.sleep(ctx, b.delay(attempt)); err != nil {
			return fmt.Errorf("resilience: retry canceled after %d attempts (%v): %w", attempt+1, err, last)
		}
	}
	if b.Attempts == 1 {
		return last
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", b.Attempts, last)
}

// sleepCtx waits d, returning early with ctx's error if ctx is done
// first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
