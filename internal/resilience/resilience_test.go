package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// testPoint registers a throwaway injection point for one test and
// removes the active plan afterward.
func testPoint(t *testing.T, name string) Point {
	t.Helper()
	p := Register(Point(name), "test point")
	t.Cleanup(func() {
		Disable()
		regMu.Lock()
		delete(registered, p)
		regMu.Unlock()
	})
	return p
}

func TestFireDisabledIsNoop(t *testing.T) {
	p := testPoint(t, "test.noop")
	Disable()
	if err := Fire(p); err != nil {
		t.Fatalf("Fire with no plan = %v, want nil", err)
	}
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
}

func TestInjectedErrorRate(t *testing.T) {
	p := testPoint(t, "test.err")
	if err := Enable(string(p)+"=error:0.25", 42); err != nil {
		t.Fatal(err)
	}
	fired := 0
	const calls = 4000
	for i := 0; i < calls; i++ {
		if err := Fire(p); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			fired++
		}
	}
	// Deterministic draw: the exact count is a pure function of the seed,
	// but assert only a generous band so the hash can be re-derived.
	if fired < calls/8 || fired > calls/2 {
		t.Fatalf("rate 0.25 fired %d/%d times", fired, calls)
	}
}

func TestInjectionDeterministicAcrossRuns(t *testing.T) {
	p := testPoint(t, "test.det")
	run := func() []bool {
		if err := Enable(string(p)+"=error:0.5", 7); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 256)
		for i := range out {
			out[i] = Fire(p) != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically-seeded runs", i)
		}
	}
}

func TestInjectedPanicAndRateOne(t *testing.T) {
	p := testPoint(t, "test.panic")
	if err := Enable(string(p)+"=panic:1", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("rate-1 panic rule did not panic")
		}
	}()
	_ = Fire(p)
}

func TestInjectedLatencyComposesWithError(t *testing.T) {
	p := testPoint(t, "test.lat")
	if err := Enable(string(p)+"=latency:1:20ms;"+string(p)+"=error:1", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := Fire(p)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency rule slept only %v", elapsed)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error rule after latency rule = %v", err)
	}
}

func TestOnlyLabelMatch(t *testing.T) {
	p := testPoint(t, "test.only")
	if err := Enable(string(p)+"=error:1:only=CifarNet", 1); err != nil {
		t.Fatal(err)
	}
	if err := FireLabeled(p, "GRU/gp102/default"); err != nil {
		t.Fatalf("non-matching label fired: %v", err)
	}
	if err := FireLabeled(p, "CifarNet/gp102/default"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching label did not fire: %v", err)
	}
	if !strings.Contains(Spec(), "only=CifarNet") {
		t.Fatalf("Spec() = %q", Spec())
	}
}

func TestEnableRejectsBadSpecs(t *testing.T) {
	p := testPoint(t, "test.bad")
	for _, spec := range []string{
		"nonsense",
		"unknown.point=error:1",
		string(p) + "=explode:1",
		string(p) + "=error:1.5",
		string(p) + "=latency:1",        // missing duration
		string(p) + "=error:1:bogusarg", // not a duration, not only=
		"",
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	p := testPoint(t, "test.env")
	t.Setenv(EnvSpec, string(p)+"=error:1")
	t.Setenv(EnvSeed, "9")
	on, err := EnableFromEnv()
	if err != nil || !on {
		t.Fatalf("EnableFromEnv = %v, %v", on, err)
	}
	if err := Fire(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-enabled rule did not fire: %v", err)
	}

	Disable()
	t.Setenv(EnvSpec, "")
	on, err = EnableFromEnv()
	if err != nil || on {
		t.Fatalf("empty %s enabled injection: %v, %v", EnvSpec, on, err)
	}

	t.Setenv(EnvSpec, string(p)+"=error:1")
	t.Setenv(EnvSeed, "not-a-number")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestPointsListsRegistrations(t *testing.T) {
	p := testPoint(t, "test.list")
	found := false
	for _, pi := range Points() {
		if pi.Point == p && pi.Description == "test point" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Points() does not list %s: %+v", p, Points())
	}
}
