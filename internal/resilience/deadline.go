package resilience

import (
	"context"
	"time"
)

// WithBudget bounds ctx to at most d from now.  An existing earlier
// deadline is kept (the tighter budget wins), so a server-wide request
// timeout composes with per-call client deadlines.  d <= 0 returns ctx
// unchanged with a no-op cancel, so the zero policy costs nothing.
func WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// Remaining returns the time left until ctx's deadline, or def when ctx
// has none.  A passed deadline returns zero, never a negative duration.
func Remaining(ctx context.Context, def time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return def
	}
	if left := time.Until(dl); left > 0 {
		return left
	}
	return 0
}
