package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(480, 1480).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Partitions: 0, LatencyCycles: 100, BytesPerRequest: 128, IssueIntervalCycles: 2},
		{Partitions: 8, LatencyCycles: 0, BytesPerRequest: 128, IssueIntervalCycles: 2},
		{Partitions: 8, LatencyCycles: 100, BytesPerRequest: 0, IssueIntervalCycles: 2},
		{Partitions: 8, LatencyCycles: 100, BytesPerRequest: 128, IssueIntervalCycles: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigBandwidthScaling(t *testing.T) {
	fast := DefaultConfig(480, 1480) // high-bandwidth server GPU
	slow := DefaultConfig(25.6, 998) // TX1-class bandwidth
	if fast.IssueIntervalCycles >= slow.IssueIntervalCycles {
		t.Errorf("higher bandwidth should mean shorter issue interval: fast=%d slow=%d",
			fast.IssueIntervalCycles, slow.IssueIntervalCycles)
	}
	degenerate := DefaultConfig(0, 0)
	if err := degenerate.Validate(); err != nil {
		t.Errorf("degenerate config should still validate: %v", err)
	}
}

func TestAccessLatency(t *testing.T) {
	cfg := Config{Partitions: 2, LatencyCycles: 100, BytesPerRequest: 128, IssueIntervalCycles: 4}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ready := d.Access(0, false, 10)
	if ready != 110 {
		t.Errorf("uncontended access ready at %d, want 110", ready)
	}
	st := d.Stats()
	if st.Requests != 1 || st.ReadRequests != 1 || st.BytesMoved != 128 {
		t.Errorf("stats %+v", st)
	}
}

func TestBandwidthContention(t *testing.T) {
	cfg := Config{Partitions: 1, LatencyCycles: 50, BytesPerRequest: 128, IssueIntervalCycles: 10}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Back-to-back requests at the same cycle must serialize by the issue
	// interval.
	r1 := d.Access(0, false, 0)
	r2 := d.Access(128, false, 0)
	r3 := d.Access(256, true, 0)
	if r1 != 50 || r2 != 60 || r3 != 70 {
		t.Errorf("ready times %d,%d,%d; want 50,60,70", r1, r2, r3)
	}
	if d.Stats().StallCycles != 10+20 {
		t.Errorf("stall cycles = %d, want 30", d.Stats().StallCycles)
	}
	if d.Stats().WriteRequests != 1 {
		t.Errorf("write requests = %d, want 1", d.Stats().WriteRequests)
	}
}

func TestPartitionInterleaving(t *testing.T) {
	cfg := Config{Partitions: 2, LatencyCycles: 50, BytesPerRequest: 128, IssueIntervalCycles: 10}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses in different partitions do not contend.
	r1 := d.Access(0, false, 0)
	r2 := d.Access(128, false, 0)
	if r1 != 50 || r2 != 50 {
		t.Errorf("independent partitions should not serialize: %d, %d", r1, r2)
	}
}

func TestStatsAddAndReset(t *testing.T) {
	a := Stats{Requests: 3, BytesMoved: 384}
	a.Add(Stats{Requests: 2, BytesMoved: 256, StallCycles: 7})
	if a.Requests != 5 || a.BytesMoved != 640 || a.StallCycles != 7 {
		t.Errorf("Add result %+v", a)
	}
	d, err := New(DefaultConfig(100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	d.Access(0, false, 0)
	d.ResetStats()
	if d.Stats().Requests != 0 {
		t.Error("ResetStats should clear counters")
	}
}

// Property: the ready time never precedes request time plus latency.
func TestQuickReadyAfterLatency(t *testing.T) {
	cfg := Config{Partitions: 4, LatencyCycles: 80, BytesPerRequest: 128, IssueIntervalCycles: 6}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	f := func(addr uint32, advance uint8) bool {
		now += int64(advance)
		ready := d.Access(uint64(addr), false, now)
		return ready >= now+int64(cfg.LatencyCycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
