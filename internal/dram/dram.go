// Package dram models the off-chip memory system of the simulated GPU as a
// set of memory partitions with a fixed access latency and a bandwidth limit
// expressed as a minimum issue interval between requests per partition.
package dram

import "fmt"

// Config describes the DRAM model.
type Config struct {
	// Partitions is the number of memory partitions (channels).
	Partitions int
	// LatencyCycles is the round-trip latency of one request in core cycles.
	LatencyCycles int
	// BytesPerRequest is the transfer granularity (one cache line).
	BytesPerRequest int
	// IssueIntervalCycles is the minimum spacing between requests serviced by
	// one partition, encoding the bandwidth limit.
	IssueIntervalCycles int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Partitions <= 0 {
		return fmt.Errorf("dram: partitions must be positive")
	}
	if c.LatencyCycles <= 0 || c.BytesPerRequest <= 0 || c.IssueIntervalCycles <= 0 {
		return fmt.Errorf("dram: latency, request size and issue interval must be positive")
	}
	return nil
}

// DefaultConfig returns a DRAM model derived from a device's bandwidth and
// core clock: the issue interval is chosen so that the aggregate bandwidth of
// all partitions matches bandwidthGBs at the given core clock.
func DefaultConfig(bandwidthGBs float64, coreClockMHz int) Config {
	cfg := Config{
		Partitions:      8,
		LatencyCycles:   350,
		BytesPerRequest: 128,
	}
	if bandwidthGBs <= 0 || coreClockMHz <= 0 {
		cfg.IssueIntervalCycles = 4
		return cfg
	}
	// bytes per core cycle the whole DRAM must sustain.
	bytesPerCycle := bandwidthGBs * 1e9 / (float64(coreClockMHz) * 1e6)
	perPartition := bytesPerCycle / float64(cfg.Partitions)
	interval := float64(cfg.BytesPerRequest) / perPartition
	if interval < 1 {
		interval = 1
	}
	if interval > 64 {
		interval = 64
	}
	cfg.IssueIntervalCycles = int(interval + 0.5)
	return cfg
}

// Stats aggregates DRAM activity.
type Stats struct {
	Requests      int64
	ReadRequests  int64
	WriteRequests int64
	StallCycles   int64
	BytesMoved    int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Requests += other.Requests
	s.ReadRequests += other.ReadRequests
	s.WriteRequests += other.WriteRequests
	s.StallCycles += other.StallCycles
	s.BytesMoved += other.BytesMoved
}

// DRAM services memory requests with per-partition bandwidth limits.
type DRAM struct {
	cfg Config
	// nextFree is the earliest cycle each partition can accept a request.
	nextFree []int64
	stats    Stats
}

// New constructs a DRAM model.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, nextFree: make([]int64, cfg.Partitions)}, nil
}

// Config returns the model configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns the accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats clears the statistics.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Access schedules one request for the line containing addr at time `now`
// (in cycles) and returns the cycle at which the data is available.  The
// partition is selected by address interleaving at line granularity.
func (d *DRAM) Access(addr uint64, isWrite bool, now int64) (ready int64) {
	part := int(addr/uint64(d.cfg.BytesPerRequest)) % d.cfg.Partitions
	start := now
	if d.nextFree[part] > start {
		d.stats.StallCycles += d.nextFree[part] - start
		start = d.nextFree[part]
	}
	d.nextFree[part] = start + int64(d.cfg.IssueIntervalCycles)

	d.stats.Requests++
	if isWrite {
		d.stats.WriteRequests++
	} else {
		d.stats.ReadRequests++
	}
	d.stats.BytesMoved += int64(d.cfg.BytesPerRequest)
	return start + int64(d.cfg.LatencyCycles)
}
