package tensor

// Fast-numerics GEMM tier: the opt-in counterpart to the bit-exact kernels
// in gemm.go / gemm_nn.go.  The reference kernels keep one accumulator per
// output element and separate multiply/add instructions so every blocking
// and worker count reproduces the scalar summation order bit for bit; that
// contract caps throughput well below machine peak.  The fast tier trades
// the bit-exact guarantee for speed: weight panels are packed once into the
// kernel-native layout, the amd64 microkernels use fused multiply-add with
// multiple independent accumulator chains, and an AVX-512 variant widens the
// register tile further.  Results differ from the reference only by
// float32 rounding (FMA keeps the intermediate product unrounded and wide
// tiles split the reduction), which callers bound with tolerance-based
// golden tests rather than bit equality.
//
// Tier selection is runtime CPUID/XGETBV detection with a testable override
// (SetFastTier) that can force any tier at or below the detected one, so CI
// exercises the AVX-512 -> FMA -> generic ladder on one machine.  The
// generic tier falls back to the portable order-preserving scalar kernel.

// SIMDTier identifies one rung of the fast-kernel ladder.  Higher tiers are
// strict supersets of the features below them.
type SIMDTier int

const (
	// TierGeneric is the portable Go fallback (also the only tier on
	// non-amd64 builds); it matches the reference summation order.
	TierGeneric SIMDTier = iota
	// TierFMA uses 256-bit fused-multiply-add kernels (requires AVX2+FMA
	// and OS YMM state support).
	TierFMA
	// TierAVX512 uses 512-bit fused-multiply-add kernels (requires
	// AVX-512 F/DQ/BW/VL and OS ZMM+opmask state support).
	TierAVX512
)

func (t SIMDTier) String() string {
	switch t {
	case TierFMA:
		return "fma"
	case TierAVX512:
		return "avx512"
	default:
		return "generic"
	}
}

// fastTier is the active tier consulted by every fast-path entry point.  It
// starts at the detected maximum and is only mutated by SetFastTier (tests).
var fastTier = fastTierDetected

// DetectedTier reports the best tier the running CPU and OS support.
func DetectedTier() SIMDTier { return fastTierDetected }

// FastTier reports the tier the fast kernels currently dispatch to.
func FastTier() SIMDTier { return fastTier }

// SetFastTier forces the fast kernels onto tier t, clamped to the detected
// maximum (forcing AVX-512 on a machine without it selects the best
// available tier instead of faulting).  It returns the tier actually
// applied.  This is the feature-override hook used by the tier-equivalence
// tests; production code never calls it.
func SetFastTier(t SIMDTier) SIMDTier {
	if t > fastTierDetected {
		t = fastTierDetected
	}
	if t < TierGeneric {
		t = TierGeneric
	}
	fastTier = t
	return fastTier
}

// PackedA holds an m x k weight matrix repacked once into the fast kernels'
// native layout: full nnMR-row panels store their rows depth-interleaved
// (panel element l*nnMR+r is a[row r][depth l]), so the microkernel's
// per-depth-step broadcasts read 16 consecutive bytes instead of gathering
// across four strided rows.  The original row-major slice is retained for
// remainder rows, narrow column tails and the generic tier.  A PackedA is
// immutable after PackA and safe for concurrent use.
type PackedA struct {
	panels []float32
	src    []float32
	m, k   int
}

// Rows returns m, the number of output rows the packed matrix produces.
func (p *PackedA) Rows() int { return p.m }

// Cols returns k, the shared (depth) dimension.
func (p *PackedA) Cols() int { return p.k }

// Bytes returns the storage the pack itself holds: the interleaved panel
// buffer.  The retained src slice aliases the caller's weight matrix and is
// accounted there, not here.
func (p *PackedA) Bytes() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.panels)) * 4
}

// PackA packs the row-major m x k matrix a for the fast GEMM kernels.  The
// returned PackedA aliases a (callers must not mutate a afterwards), plus
// one panel buffer allocated here: packing happens once per weight matrix,
// keeping the per-inference steady state allocation-free.
func PackA(a []float32, m, k int) *PackedA {
	if m <= 0 || k <= 0 {
		panic("tensor: PackA dims must be positive")
	}
	if len(a) < m*k {
		panic("tensor: PackA buffer too small")
	}
	p := &PackedA{src: a[:m*k], m: m, k: k}
	full := m / nnMR
	if full == 0 {
		return p
	}
	p.panels = make([]float32, full*nnMR*k)
	for pi := 0; pi < full; pi++ {
		base := pi * nnMR * k
		r := pi * nnMR
		for l := 0; l < k; l++ {
			p.panels[base+l*nnMR+0] = a[r*k+l]
			p.panels[base+l*nnMR+1] = a[(r+1)*k+l]
			p.panels[base+l*nnMR+2] = a[(r+2)*k+l]
			p.panels[base+l*nnMR+3] = a[(r+3)*k+l]
		}
	}
	return p
}

// fastVecCols returns the microkernel column tile width for tier t (0 when
// the tier has no vector kernel).
func fastVecCols(t SIMDTier) int {
	switch t {
	case TierFMA:
		return 16
	case TierAVX512:
		return 32
	default:
		return 0
	}
}

// GemmNNFast computes dst = A*B + bias like GemmNN, with A pre-packed and
// the active fast tier's kernels.  b is k x n row-major with row stride ldb
// (>= n); dst rows are also ldb apart.  Results agree with GemmNN within
// float32 rounding, not bit-exactly.
func GemmNNFast(dst []float32, pa *PackedA, b, bias []float32, n, ldb int) {
	checkGemmNNArgs(dst, pa.src, b, bias, pa.m, n, pa.k, ldb)
	gemmNNFastRows(dst, pa, b, bias, n, ldb, 0, pa.m, fastTier)
}

// GemmNNFastParallel is GemmNNFast with the row dimension split across up
// to workers goroutines.  Row panels are tile-aligned and each output
// element is produced by exactly one worker, so — unlike the batch-size-
// dependent column tails — the result is identical for any worker count.
func GemmNNFastParallel(dst []float32, pa *PackedA, b, bias []float32, n, ldb, workers int) {
	checkGemmNNArgs(dst, pa.src, b, bias, pa.m, n, pa.k, ldb)
	t := fastTier
	if serialRows(pa.m, int64(pa.m)*int64(n)*int64(pa.k), workers) {
		gemmNNFastRows(dst, pa, b, bias, n, ldb, 0, pa.m, t)
		return
	}
	forEachRowPanel(pa.m, workers, func(r0, r1 int) {
		gemmNNFastRows(dst, pa, b, bias, n, ldb, r0, r1, t)
	})
}

// gemmNNFastRows runs the blocked fast kernel over output rows [r0, r1),
// reusing the reference path's panel geometry (nnKC depth slabs, nnNC
// column panels) so the streamed b block stays L2-resident.  Full 4-row
// panels with wide column blocks go to the tier's FMA/AVX-512 kernel; on
// the AVX-512 tier a 16-column FMA block mops up before the scalar tail.
// Remainder rows and narrow tails use the order-preserving scalar kernel on
// the retained row-major weights.
func gemmNNFastRows(dst []float32, pa *PackedA, b, bias []float32, n, ldb, r0, r1 int, t SIMDTier) {
	k := pa.k
	for i := r0; i < r1; i++ {
		row := dst[i*ldb : i*ldb+n]
		if bias != nil {
			bi := bias[i]
			for j := range row {
				row[j] = bi
			}
		} else {
			for j := range row {
				row[j] = 0
			}
		}
	}
	vw := fastVecCols(t)
	for kb := 0; kb < k; kb += nnKC {
		kc := k - kb
		if kc > nnKC {
			kc = nnKC
		}
		for jb := 0; jb < n; jb += nnNC {
			nc := n - jb
			if nc > nnNC {
				nc = nnNC
			}
			i := r0
			if vw > 0 {
				for ; i+nnMR <= r1; i += nnMR {
					ncVec := nc &^ (vw - 1)
					ap := pa.panels[(i/nnMR)*nnMR*k+kb*nnMR:]
					if ncVec > 0 {
						if t == TierAVX512 {
							gemmNNAVX512Kernel(dst[i*ldb+jb:], ap, b[kb*ldb+jb:], kc, ncVec, ldb)
						} else {
							gemmNNFMAKernel(dst[i*ldb+jb:], ap, b[kb*ldb+jb:], kc, ncVec, ldb)
						}
					}
					if t == TierAVX512 && nc-ncVec >= 16 {
						gemmNNFMAKernel(dst[i*ldb+jb+ncVec:], ap, b[kb*ldb+jb+ncVec:], kc, 16, ldb)
						ncVec += 16
					}
					if ncVec < nc {
						gemmNNScalar(dst, pa.src, b, k, ldb, kb, kc, jb+ncVec, nc-ncVec, i, i+nnMR)
					}
				}
			}
			if i < r1 {
				gemmNNScalar(dst, pa.src, b, k, ldb, kb, kc, jb, nc, i, r1)
			}
		}
	}
}

// MatVecFast computes dst = W*x + bias like MatVecBias using the active
// tier's fused-multiply-add dot kernel with four independent accumulator
// chains per row.  W streams once from memory in its natural row-major
// layout (a mat-vec is bandwidth-bound, so panel packing buys nothing
// here).  Results agree with MatVecBias within float32 rounding.
func MatVecFast(dst, w, x, bias []float32, rows, cols int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	matVecFastRows(dst, w, x, bias, cols, 0, rows, fastTier)
}

// MatVecFastParallel is MatVecFast with rows split across up to workers
// goroutines.
func MatVecFastParallel(dst, w, x, bias []float32, rows, cols, workers int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	t := fastTier
	if serialRows(rows, int64(rows)*int64(cols), workers) {
		matVecFastRows(dst, w, x, bias, cols, 0, rows, t)
		return
	}
	forEachRowPanel(rows, workers, func(r0, r1 int) {
		matVecFastRows(dst, w, x, bias, cols, r0, r1, t)
	})
}

func matVecFastRows(dst, w, x, bias []float32, cols, r0, r1 int, t SIMDTier) {
	var nv int
	avx512 := false
	switch {
	// Prefer the ZMM dot only when its 64-wide step covers the row to
	// within 32 elements; otherwise the FMA variant leaves a shorter
	// scalar tail (cols&^31 vs cols&^63) and wins on narrow rows like
	// the 100-wide recurrent gates.
	case t == TierAVX512 && cols >= 64 && cols%64 < 32:
		nv, avx512 = cols&^63, true
	case t >= TierFMA && cols >= 32:
		nv = cols &^ 31
	default:
		matVecRows(dst, w, x, bias, cols, r0, r1)
		return
	}
	for i := r0; i < r1; i++ {
		row := w[i*cols : i*cols+cols]
		var s float32
		if avx512 {
			s = dotAVX512(row, x, nv)
		} else {
			s = dotFMA(row, x, nv)
		}
		for l := nv; l < cols; l++ {
			s += row[l] * x[l]
		}
		if bias != nil {
			s += bias[i]
		}
		dst[i] = s
	}
}
