package tensor

// Fast-numerics GEMM tier: the opt-in counterpart to the bit-exact kernels
// in gemm.go / gemm_nn.go.  The reference kernels keep one accumulator per
// output element and separate multiply/add instructions so every blocking
// and worker count reproduces the scalar summation order bit for bit; that
// contract caps throughput well below machine peak.  The fast tier trades
// the bit-exact guarantee for speed: weight panels are packed once into the
// kernel-native layout, the amd64 microkernels use fused multiply-add with
// multiple independent accumulator chains, and an AVX-512 variant widens the
// register tile further.  Results differ from the reference only by
// float32 rounding (FMA keeps the intermediate product unrounded and wide
// tiles split the reduction), which callers bound with tolerance-based
// golden tests rather than bit equality.
//
// Tier selection is runtime CPUID/XGETBV detection with a testable override
// (SetFastTier) that can force any tier at or below the detected one, so CI
// exercises the AVX-512 -> FMA -> generic ladder on one machine.  The
// generic tier falls back to the portable order-preserving scalar kernel.

// SIMDTier identifies one rung of the fast-kernel ladder.  Higher tiers are
// strict supersets of the features below them.
type SIMDTier int

const (
	// TierGeneric is the portable Go fallback (also the only tier on
	// non-amd64 builds); it matches the reference summation order.
	TierGeneric SIMDTier = iota
	// TierFMA uses 256-bit fused-multiply-add kernels (requires AVX2+FMA
	// and OS YMM state support).
	TierFMA
	// TierAVX512 uses 512-bit fused-multiply-add kernels (requires
	// AVX-512 F/DQ/BW/VL and OS ZMM+opmask state support).
	TierAVX512
)

func (t SIMDTier) String() string {
	switch t {
	case TierFMA:
		return "fma"
	case TierAVX512:
		return "avx512"
	default:
		return "generic"
	}
}

// fastTier is the active tier consulted by every fast-path entry point.  It
// starts at the detected maximum and is only mutated by SetFastTier (tests).
var fastTier = fastTierDetected

// DetectedTier reports the best tier the running CPU and OS support.
func DetectedTier() SIMDTier { return fastTierDetected }

// FastTier reports the tier the fast kernels currently dispatch to.
func FastTier() SIMDTier { return fastTier }

// SetFastTier forces the fast kernels onto tier t, clamped to the detected
// maximum (forcing AVX-512 on a machine without it selects the best
// available tier instead of faulting).  It returns the tier actually
// applied.  This is the feature-override hook used by the tier-equivalence
// tests; production code never calls it.
func SetFastTier(t SIMDTier) SIMDTier {
	if t > fastTierDetected {
		t = fastTierDetected
	}
	if t < TierGeneric {
		t = TierGeneric
	}
	fastTier = t
	return fastTier
}

// PackedA holds an m x k weight matrix repacked once into the fast kernels'
// native layout: full nnMR-row panels store their rows depth-interleaved
// (panel element l*nnMR+r is a[row r][depth l]), so the microkernel's
// per-depth-step broadcasts read 16 consecutive bytes instead of gathering
// across four strided rows.  The original row-major slice is retained for
// remainder rows, narrow column tails and the generic tier.  A PackedA is
// immutable after PackA and safe for concurrent use.
type PackedA struct {
	panels []float32
	src    []float32
	m, k   int
}

// Rows returns m, the number of output rows the packed matrix produces.
func (p *PackedA) Rows() int { return p.m }

// Cols returns k, the shared (depth) dimension.
func (p *PackedA) Cols() int { return p.k }

// Bytes returns the storage the pack itself holds: the interleaved panel
// buffer.  The retained src slice aliases the caller's weight matrix and is
// accounted there, not here.
func (p *PackedA) Bytes() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.panels)) * 4
}

// PackA packs the row-major m x k matrix a for the fast GEMM kernels.  The
// returned PackedA aliases a (callers must not mutate a afterwards), plus
// one panel buffer allocated here: packing happens once per weight matrix,
// keeping the per-inference steady state allocation-free.
func PackA(a []float32, m, k int) *PackedA {
	if m <= 0 || k <= 0 {
		panic("tensor: PackA dims must be positive")
	}
	if len(a) < m*k {
		panic("tensor: PackA buffer too small")
	}
	p := &PackedA{src: a[:m*k], m: m, k: k}
	full := m / nnMR
	if full == 0 {
		return p
	}
	p.panels = make([]float32, full*nnMR*k)
	for pi := 0; pi < full; pi++ {
		base := pi * nnMR * k
		r := pi * nnMR
		for l := 0; l < k; l++ {
			p.panels[base+l*nnMR+0] = a[r*k+l]
			p.panels[base+l*nnMR+1] = a[(r+1)*k+l]
			p.panels[base+l*nnMR+2] = a[(r+2)*k+l]
			p.panels[base+l*nnMR+3] = a[(r+3)*k+l]
		}
	}
	return p
}

// fastVecCols returns the microkernel column tile width for tier t (0 when
// the tier has no vector kernel).
func fastVecCols(t SIMDTier) int {
	switch t {
	case TierFMA:
		return 16
	case TierAVX512:
		return 32
	default:
		return 0
	}
}

// Fused-staging geometry: the panel grid GemmNNFastAccumPanel operates on.
// A fused producer (the engine's im2col panel packer) walks output columns
// in FusedNC panels and depth in FusedKC slabs, so one packed B panel is at
// most FusedPanelFloats floats and stays L2-resident while every weight row
// tile streams it.  The grid matches the staged path's nnKC/nnNC blocking
// exactly: for a single sample the fused path reproduces the staged fast
// path bit for bit.
const (
	// FusedKC is the depth slab of the fused fast GEMM (== nnKC).
	FusedKC = nnKC
	// FusedNC is the column panel of the fused fast GEMM (== nnNC).
	FusedNC = nnNC
	// FusedPanelFloats is the B panel buffer length fused callers provide.
	FusedPanelFloats = FusedKC * FusedNC
)

// GemmNNFast computes dst = A*B + bias like GemmNN, with A pre-packed and
// the active fast tier's kernels.  b is k x n row-major with row stride ldb
// (>= n); dst rows are also ldb apart.  Results agree with GemmNN within
// float32 rounding, not bit-exactly.
func GemmNNFast(dst []float32, pa *PackedA, b, bias []float32, n, ldb int) {
	checkGemmNNArgs(dst, pa.src, b, bias, pa.m, n, pa.k, ldb)
	gemmNNFastRows(dst, pa, b, bias, n, ldb, ldb, 0, pa.m, fastTier)
}

// GemmNNFastParallel is GemmNNFast with the row dimension split across up
// to workers goroutines.  Row panels are tile-aligned and each output
// element is produced by exactly one worker, so — unlike the batch-size-
// dependent column tails — the result is identical for any worker count.
func GemmNNFastParallel(dst []float32, pa *PackedA, b, bias []float32, n, ldb, workers int) {
	checkGemmNNArgs(dst, pa.src, b, bias, pa.m, n, pa.k, ldb)
	t := fastTier
	if serialRows(pa.m, int64(pa.m)*int64(n)*int64(pa.k), workers) {
		gemmNNFastRows(dst, pa, b, bias, n, ldb, ldb, 0, pa.m, t)
		return
	}
	forEachRowPanel(pa.m, workers, func(r0, r1 int) {
		gemmNNFastRows(dst, pa, b, bias, n, ldb, ldb, r0, r1, t)
	})
}

// GemmNNFastStrided is GemmNNFast with independent dst and b row strides:
// dst rows are ldd floats apart, b rows ldb floats apart (both >= n).  This
// is the 1x1/stride-1 convolution fast path — the input planes are consumed
// as B directly, with the result written straight into a strided NCHW
// output block, no staging at all.
func GemmNNFastStrided(dst []float32, pa *PackedA, b, bias []float32, n, ldd, ldb int) {
	checkGemmNNFastStrided(dst, pa, b, bias, n, ldd, ldb)
	gemmNNFastRows(dst, pa, b, bias, n, ldd, ldb, 0, pa.m, fastTier)
}

// GemmNNFastStridedParallel is GemmNNFastStrided with the row dimension
// split across up to workers goroutines (identical results for any count).
func GemmNNFastStridedParallel(dst []float32, pa *PackedA, b, bias []float32, n, ldd, ldb, workers int) {
	checkGemmNNFastStrided(dst, pa, b, bias, n, ldd, ldb)
	t := fastTier
	if serialRows(pa.m, int64(pa.m)*int64(n)*int64(pa.k), workers) {
		gemmNNFastRows(dst, pa, b, bias, n, ldd, ldb, 0, pa.m, t)
		return
	}
	forEachRowPanel(pa.m, workers, func(r0, r1 int) {
		gemmNNFastRows(dst, pa, b, bias, n, ldd, ldb, r0, r1, t)
	})
}

func checkGemmNNFastStrided(dst []float32, pa *PackedA, b, bias []float32, n, ldd, ldb int) {
	if n <= 0 {
		panic("tensor: gemmNN fast strided n must be positive")
	}
	if ldd < n || ldb < n {
		panic("tensor: gemmNN fast strided stride smaller than column count")
	}
	if len(dst) < (pa.m-1)*ldd+n || len(b) < (pa.k-1)*ldb+n {
		panic("tensor: gemmNN fast strided buffers too small")
	}
	if bias != nil && len(bias) < pa.m {
		panic("tensor: gemmNN fast strided bias too short")
	}
}

// GemmNNFastAccumPanel accumulates one fused B panel into a strided output
// block: dst[i*ldd + j] += sum_l pa[i][kb+l] * panel[l*nc + j] for every
// output row i and j in [0, nc), where panel holds the kc x nc B block
// covering depth rows [kb, kb+kc) in compact row-major layout (stride nc).
// When kb == 0 the touched dst columns are first seeded with bias (zero for
// nil), so walking kb over ascending FusedKC slabs computes the full
// product without ever materializing B.  kc must be at most FusedKC and nc
// at most FusedNC; the caller owns the panel grid, which must not depend on
// the worker fan-out (panels covering disjoint columns may run
// concurrently).  Per element the summation order equals the staged fast
// path's, so a fused single-sample convolution is bit-identical to the
// staged one.
func GemmNNFastAccumPanel(dst []float32, pa *PackedA, panel, bias []float32, kb, kc, nc, ldd int) {
	m, k := pa.m, pa.k
	if nc <= 0 || kc <= 0 || kb < 0 || kb+kc > k {
		panic("tensor: fused panel slab out of range")
	}
	if ldd < nc || len(dst) < (m-1)*ldd+nc || len(panel) < kc*nc {
		panic("tensor: fused panel buffers too small")
	}
	if bias != nil && len(bias) < m {
		panic("tensor: fused panel bias too short")
	}
	if kb == 0 {
		for i := 0; i < m; i++ {
			row := dst[i*ldd : i*ldd+nc]
			if bias != nil {
				bi := bias[i]
				for j := range row {
					row[j] = bi
				}
			} else {
				for j := range row {
					row[j] = 0
				}
			}
		}
	}
	t := fastTier
	vw := fastVecCols(t)
	// The panel is compact (row stride nc), so a sub-16 column tail can
	// still run the vector kernel: accumulate a full 16-wide tile into a
	// stack spill block, reading past the tail into the next panel row
	// (those lanes are independent and discarded), then copy only the live
	// columns back.  Needs slack in the panel's backing array for the
	// overread; the worker panel buffers always have it except when the
	// panel is exactly full — and a full panel has no tail.
	var spill [nnMR * 16]float32
	i := 0
	if vw > 0 {
		for ; i+nnMR <= m; i += nnMR {
			ncVec := nc &^ (vw - 1)
			ap := pa.panels[(i/nnMR)*nnMR*k+kb*nnMR:]
			if ncVec > 0 {
				if t == TierAVX512 {
					gemmNNAVX512Kernel(dst[i*ldd:], ap, panel, kc, ncVec, ldd, nc)
				} else {
					gemmNNFMAKernel(dst[i*ldd:], ap, panel, kc, ncVec, ldd, nc)
				}
			}
			if t == TierAVX512 && nc-ncVec >= 16 {
				gemmNNFMAKernel(dst[i*ldd+ncVec:], ap, panel[ncVec:], kc, 16, ldd, nc)
				ncVec += 16
			}
			if tail := nc - ncVec; tail > 0 {
				if ncVec+(kc-1)*nc+16 <= cap(panel) {
					for r := 0; r < nnMR; r++ {
						copy(spill[r*16:r*16+tail], dst[(i+r)*ldd+ncVec:])
					}
					gemmNNFMAKernel(spill[:], ap, panel[ncVec:ncVec+(kc-1)*nc+16], kc, 16, 16, nc)
					for r := 0; r < nnMR; r++ {
						copy(dst[(i+r)*ldd+ncVec:(i+r)*ldd+nc], spill[r*16:])
					}
				} else {
					gemmNNFastScalar(dst, pa.src, panel, k, ldd, nc, kb, kc, ncVec, tail, i, i+nnMR)
				}
			}
		}
	}
	if i < m {
		gemmNNFastScalar(dst, pa.src, panel, k, ldd, nc, kb, kc, 0, nc, i, m)
	}
}

// gemmNNFastRows runs the blocked fast kernel over output rows [r0, r1),
// reusing the reference path's panel geometry (nnKC depth slabs, nnNC
// column panels) so the streamed b block stays L2-resident.  dst rows are
// ldd floats apart, b rows ldb apart.  Full 4-row panels with wide column
// blocks go to the tier's FMA/AVX-512 kernel; on the AVX-512 tier a
// 16-column FMA block mops up before the scalar tail.  Remainder rows and
// narrow tails use the order-preserving scalar kernel on the retained
// row-major weights.
func gemmNNFastRows(dst []float32, pa *PackedA, b, bias []float32, n, ldd, ldb, r0, r1 int, t SIMDTier) {
	k := pa.k
	for i := r0; i < r1; i++ {
		row := dst[i*ldd : i*ldd+n]
		if bias != nil {
			bi := bias[i]
			for j := range row {
				row[j] = bi
			}
		} else {
			for j := range row {
				row[j] = 0
			}
		}
	}
	vw := fastVecCols(t)
	for kb := 0; kb < k; kb += nnKC {
		kc := k - kb
		if kc > nnKC {
			kc = nnKC
		}
		for jb := 0; jb < n; jb += nnNC {
			nc := n - jb
			if nc > nnNC {
				nc = nnNC
			}
			i := r0
			if vw > 0 {
				for ; i+nnMR <= r1; i += nnMR {
					ncVec := nc &^ (vw - 1)
					ap := pa.panels[(i/nnMR)*nnMR*k+kb*nnMR:]
					if ncVec > 0 {
						if t == TierAVX512 {
							gemmNNAVX512Kernel(dst[i*ldd+jb:], ap, b[kb*ldb+jb:], kc, ncVec, ldd, ldb)
						} else {
							gemmNNFMAKernel(dst[i*ldd+jb:], ap, b[kb*ldb+jb:], kc, ncVec, ldd, ldb)
						}
					}
					if t == TierAVX512 && nc-ncVec >= 16 {
						gemmNNFMAKernel(dst[i*ldd+jb+ncVec:], ap, b[kb*ldb+jb+ncVec:], kc, 16, ldd, ldb)
						ncVec += 16
					}
					if ncVec < nc {
						gemmNNFastScalar(dst, pa.src, b[kb*ldb:], k, ldd, ldb, kb, kc, jb+ncVec, nc-ncVec, i, i+nnMR)
					}
				}
			}
			if i < r1 {
				gemmNNFastScalar(dst, pa.src, b[kb*ldb:], k, ldd, ldb, kb, kc, jb, nc, i, r1)
			}
		}
	}
}

// gemmNNFastScalar is the portable tail kernel of the fast path with
// independent dst and b strides: dst[i*ldd+j] += sum_l a[i*k+kb+l] *
// b[l*ldb+j] for j in [jb, jb+nc), accumulating onto the bias-seeded
// partial sums resident in dst in the reference order (b is pre-offset to
// the slab's first depth row).  Four rows share each streamed b value, like
// gemmNNScalar.
func gemmNNFastScalar(dst, a, b []float32, k, ldd, ldb, kb, kc, jb, nc, r0, r1 int) {
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		a0 := a[i*k+kb : i*k+kb+kc]
		a1 := a[(i+1)*k+kb : (i+1)*k+kb+kc]
		a2 := a[(i+2)*k+kb : (i+2)*k+kb+kc]
		a3 := a[(i+3)*k+kb : (i+3)*k+kb+kc]
		for j := jb; j < jb+nc; j++ {
			s0 := dst[i*ldd+j]
			s1 := dst[(i+1)*ldd+j]
			s2 := dst[(i+2)*ldd+j]
			s3 := dst[(i+3)*ldd+j]
			bi := j
			for l := 0; l < kc; l++ {
				bv := b[bi]
				s0 += a0[l] * bv
				s1 += a1[l] * bv
				s2 += a2[l] * bv
				s3 += a3[l] * bv
				bi += ldb
			}
			dst[i*ldd+j] = s0
			dst[(i+1)*ldd+j] = s1
			dst[(i+2)*ldd+j] = s2
			dst[(i+3)*ldd+j] = s3
		}
	}
	for ; i < r1; i++ {
		ar := a[i*k+kb : i*k+kb+kc]
		for j := jb; j < jb+nc; j++ {
			s := dst[i*ldd+j]
			bi := j
			for _, av := range ar {
				s += av * b[bi]
				bi += ldb
			}
			dst[i*ldd+j] = s
		}
	}
}

// MatVecFast computes dst = W*x + bias like MatVecBias using the active
// tier's fused-multiply-add dot kernel with four independent accumulator
// chains per row.  W streams once from memory in its natural row-major
// layout (a mat-vec is bandwidth-bound, so panel packing buys nothing
// here).  Results agree with MatVecBias within float32 rounding.
func MatVecFast(dst, w, x, bias []float32, rows, cols int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	matVecFastRows(dst, w, x, bias, cols, 0, rows, fastTier)
}

// MatVecFastParallel is MatVecFast with rows split across up to workers
// goroutines.
func MatVecFastParallel(dst, w, x, bias []float32, rows, cols, workers int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	t := fastTier
	if serialRows(rows, int64(rows)*int64(cols), workers) {
		matVecFastRows(dst, w, x, bias, cols, 0, rows, t)
		return
	}
	forEachRowPanel(rows, workers, func(r0, r1 int) {
		matVecFastRows(dst, w, x, bias, cols, r0, r1, t)
	})
}

func matVecFastRows(dst, w, x, bias []float32, cols, r0, r1 int, t SIMDTier) {
	var nv int
	avx512 := false
	switch {
	// Prefer the ZMM dot only when its 64-wide step covers the row to
	// within 32 elements; otherwise the FMA variant leaves a shorter
	// scalar tail (cols&^31 vs cols&^63) and wins on narrow rows like
	// the 100-wide recurrent gates.
	case t == TierAVX512 && cols >= 64 && cols%64 < 32:
		nv, avx512 = cols&^63, true
	case t >= TierFMA && cols >= 32:
		nv = cols &^ 31
	default:
		matVecRows(dst, w, x, bias, cols, r0, r1)
		return
	}
	for i := r0; i < r1; i++ {
		row := w[i*cols : i*cols+cols]
		var s float32
		if avx512 {
			s = dotAVX512(row, x, nv)
		} else {
			s = dotFMA(row, x, nv)
		}
		for l := nv; l < cols; l++ {
			s += row[l] * x[l]
		}
		if bias != nil {
			s += bias[i]
		}
		dst[i] = s
	}
}
