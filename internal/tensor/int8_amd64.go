package tensor

// amd64 wiring for the int8 kernels (int8_amd64.s).  The kernels need AVX2
// (VPMADDUBSW/VPMADDWD); the FMA tier implies AVX2, so the int8 vector path
// follows the same override ladder as the float fast kernels — forcing
// TierGeneric exercises the portable fallback, which is bit-identical in
// integer space.

// gemmInt8Kernel computes acc[r][j] = sum_l w[r][l]*bp(l, j) for r in
// [0,4), j in [0,nc), over kc4*4 depth steps: w rows are ldw bytes apart
// (signed weights), bp is the PackColsU8 depth-4-interleaved offset-binary
// activation block, and acc rows are n int32s apart.  nc must be a positive
// multiple of 8; kc4 positive.  acc is overwritten, not accumulated.
//
//go:noescape
func gemmInt8Kernel(acc []int32, w []int8, bp []uint8, kc4, nc, ldw, n int)

// dotInt8Kernel returns sum_l w[l]*x[l] for signed weights against
// offset-binary activations; n must be a positive multiple of 32.
//
//go:noescape
func dotInt8Kernel(w []int8, x []uint8, n int) int32

// int8Vector reports whether the int8 vector kernels are usable under the
// active tier.
func int8Vector() bool { return fastTier >= TierFMA }
