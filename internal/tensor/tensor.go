// Package tensor provides the dense float32 tensors used by the Tango layer
// kernels.  Tensors are stored in row-major (C) order; convolutional feature
// maps use CHW layout with an implicit batch size of one, matching the
// single-image inference the paper's benchmark suite performs.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// ErrShape is returned when tensor shapes are incompatible for an operation.
var ErrShape = errors.New("tensor: incompatible shapes")

// New allocates a zero-filled tensor with the given shape.  It panics if any
// dimension is non-positive; shape errors at construction time are programmer
// errors, not runtime conditions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps an existing data slice with a shape.  The slice is not
// copied.  An error is returned if the element count does not match.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: invalid dimension %d", ErrShape, d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: shape %v needs %d elements, slice has %d", ErrShape, shape, n, len(data))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage.  Mutating the returned slice mutates
// the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.index(idx...)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero resets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape.  The new
// shape must describe the same number of elements.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: invalid dimension %d", ErrShape, d)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v to %v", ErrShape, t.shape, shape)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// MaxIndex returns the index of the largest element, breaking ties toward the
// lowest index.  It is used to extract the predicted class of a classifier.
func (t *Tensor) MaxIndex() int {
	best := 0
	bestV := float32(math.Inf(-1))
	for i, v := range t.data {
		if v > bestV {
			bestV = v
			best = i
		}
	}
	return best
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Max returns the largest element value.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element value.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsDiff returns the maximum absolute element-wise difference between a and
// b.  It returns an error when shapes differ.
func AbsDiff(a, b *Tensor) (float64, error) {
	if !SameShape(a, b) {
		return 0, fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape)
	}
	maxd := 0.0
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd, nil
}

// ApproxEqual reports whether a and b have the same shape and all elements
// differ by at most tol.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	d, err := AbsDiff(a, b)
	if err != nil {
		return false
	}
	return d <= tol
}

// String summarizes the tensor for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elements)", t.shape, len(t.data))
}

// RNG is a small deterministic pseudo-random generator (SplitMix64) used to
// synthesize reproducible weights and inputs without math/rand, so that the
// benchmark inputs are bit-identical across platforms and runs.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float32 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Normal32 returns an approximately normally distributed value with mean 0
// and the given standard deviation, using the sum of uniforms (Irwin-Hall).
func (r *RNG) Normal32(stddev float32) float32 {
	s := float32(0)
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return (s - 6) * stddev
}

// FillUniform fills t with uniform values in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*r.Float32()
	}
}

// FillNormal fills t with normal values of the given standard deviation.
func (t *Tensor) FillNormal(r *RNG, stddev float32) {
	for i := range t.data {
		t.data[i] = r.Normal32(stddev)
	}
}
