package tensor

import "testing"

func TestArenaReusesTensorsAcrossRuns(t *testing.T) {
	var a Arena
	t1 := a.Get3(2, 3, 4)
	t2 := a.Get1(7)
	if t1.Len() != 24 || t2.Len() != 7 {
		t.Fatalf("unexpected sizes %d/%d", t1.Len(), t2.Len())
	}
	t1.Fill(42)
	a.Reset()
	r1 := a.Get3(2, 3, 4)
	r2 := a.Get1(7)
	if r1 != t1 || r2 != t2 {
		t.Fatal("matching Get sequence after Reset must return the recorded tensors")
	}
	if r1.Data()[0] != 42 {
		t.Fatal("arena tensors must carry previous contents (callers overwrite)")
	}
	if a.Size() != 2 {
		t.Fatalf("arena holds %d tensors, want 2", a.Size())
	}
}

func TestArenaShapeMismatchReplaces(t *testing.T) {
	var a Arena
	t1 := a.Get3(2, 3, 4)
	a.Reset()
	r1 := a.Get3(2, 3, 5)
	if r1 == t1 {
		t.Fatal("shape mismatch must allocate a new tensor")
	}
	if r1.Dim(2) != 5 {
		t.Fatalf("got shape %v", r1.Shape())
	}
	a.Reset()
	if a.Get3(2, 3, 5) != r1 {
		t.Fatal("replacement tensor must be recorded for reuse")
	}
	// Rank mismatch at the same position.
	a.Reset()
	if got := a.Get1(30); got == r1 || got.Rank() != 1 {
		t.Fatalf("rank mismatch must allocate, got %v", got.Shape())
	}
}

func TestArenaGenericGet(t *testing.T) {
	var a Arena
	t1 := a.Get(2, 2, 2, 2)
	if t1.Rank() != 4 || t1.Len() != 16 {
		t.Fatalf("got %v", t1.Shape())
	}
	a.Reset()
	if a.Get(2, 2, 2, 2) != t1 {
		t.Fatal("generic Get must reuse on shape match")
	}
	if a.Bytes() != 64 {
		t.Fatalf("arena bytes = %d, want 64", a.Bytes())
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	var a Arena
	a.Get3(4, 8, 8)
	a.Get1(16)
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		a.Get3(4, 8, 8)
		a.Get1(16)
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena Get allocated %v times per run, want 0", allocs)
	}
}
