package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(3, 4, 5)
	if tt.Len() != 60 {
		t.Fatalf("Len() = %d, want 60", tt.Len())
	}
	if tt.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", tt.Rank())
	}
	if tt.Dim(0) != 3 || tt.Dim(1) != 4 || tt.Dim(2) != 5 {
		t.Fatalf("unexpected dims: %v", tt.Shape())
	}
	if tt.Bytes() != 240 {
		t.Fatalf("Bytes() = %d, want 240", tt.Bytes())
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with non-positive dim should panic")
		}
	}()
	New(3, 0)
}

func TestShapeIsCopied(t *testing.T) {
	tt := New(2, 3)
	s := tt.Shape()
	s[0] = 99
	if tt.Dim(0) != 2 {
		t.Error("mutating Shape() result must not affect tensor")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	v := float32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				tt.Set(v, i, j, k)
				v++
			}
		}
	}
	// Row-major layout: data index = (i*3+j)*4+k.
	if tt.Data()[(1*3+2)*4+3] != 23 {
		t.Errorf("row-major layout violated: got %v", tt.Data()[(1*3+2)*4+3])
	}
	if tt.At(1, 2, 3) != 23 {
		t.Errorf("At(1,2,3) = %v, want 23", tt.At(1, 2, 3))
	}
}

func TestIndexPanics(t *testing.T) {
	tt := New(2, 2)
	for _, fn := range []func(){
		func() { tt.At(2, 0) },
		func() { tt.At(0, -1) },
		func() { tt.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	tt, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	if _, err := FromSlice(data, 4, 2); !errors.Is(err, ErrShape) {
		t.Errorf("mismatched FromSlice should return ErrShape, got %v", err)
	}
	if _, err := FromSlice(data, -1, 6); !errors.Is(err, ErrShape) {
		t.Errorf("negative dim should return ErrShape, got %v", err)
	}
}

func TestFillAndZero(t *testing.T) {
	tt := New(4)
	tt.Fill(2.5)
	for _, v := range tt.Data() {
		if v != 2.5 {
			t.Fatalf("Fill failed: %v", tt.Data())
		}
	}
	tt.Zero()
	if tt.Sum() != 0 {
		t.Fatalf("Zero failed: %v", tt.Data())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(9, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
	if !SameShape(a, b) {
		t.Error("Clone must preserve shape")
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	a.Set(7, 1, 5)
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(2, 3) != 7 {
		t.Errorf("reshape should share storage: got %v", b.At(2, 3))
	}
	if _, err := a.Reshape(5, 5); !errors.Is(err, ErrShape) {
		t.Errorf("bad reshape should return ErrShape, got %v", err)
	}
	if _, err := a.Reshape(0, 12); !errors.Is(err, ErrShape) {
		t.Errorf("zero dim reshape should return ErrShape, got %v", err)
	}
}

func TestMaxIndex(t *testing.T) {
	tt, err := FromSlice([]float32{0.1, 0.9, 0.3, 0.9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.MaxIndex(); got != 1 {
		t.Errorf("MaxIndex() = %d, want 1 (ties break low)", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	tt, _ := FromSlice([]float32{-2, 5, 1}, 3)
	if tt.Max() != 5 {
		t.Errorf("Max() = %v, want 5", tt.Max())
	}
	if tt.Min() != -2 {
		t.Errorf("Min() = %v, want -2", tt.Min())
	}
	if tt.Sum() != 4 {
		t.Errorf("Sum() = %v, want 4", tt.Sum())
	}
}

func TestAbsDiffAndApproxEqual(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3}, 3)
	b, _ := FromSlice([]float32{1, 2.5, 3}, 3)
	d, err := AbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-6 {
		t.Errorf("AbsDiff = %v, want 0.5", d)
	}
	if !ApproxEqual(a, b, 0.5) {
		t.Error("ApproxEqual with tol 0.5 should hold")
	}
	if ApproxEqual(a, b, 0.1) {
		t.Error("ApproxEqual with tol 0.1 should fail")
	}
	c := New(4)
	if _, err := AbsDiff(a, c); !errors.Is(err, ErrShape) {
		t.Errorf("AbsDiff shape mismatch should return ErrShape, got %v", err)
	}
	if ApproxEqual(a, c, 10) {
		t.Error("ApproxEqual across shapes should be false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG with equal seeds must produce equal streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32() = %v out of [0,1)", v)
		}
	}
}

func TestFillUniformRange(t *testing.T) {
	tt := New(1000)
	tt.FillUniform(NewRNG(1), -1, 1)
	if tt.Min() < -1 || tt.Max() >= 1 {
		t.Errorf("uniform fill out of range: [%v, %v]", tt.Min(), tt.Max())
	}
	// The sample mean of 1000 uniforms in [-1,1) should be near zero.
	if m := tt.Sum() / 1000; math.Abs(m) > 0.1 {
		t.Errorf("uniform mean %v too far from 0", m)
	}
}

func TestFillNormalStats(t *testing.T) {
	tt := New(20000)
	tt.FillNormal(NewRNG(3), 0.5)
	mean := tt.Sum() / float64(tt.Len())
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	varSum := 0.0
	for _, v := range tt.Data() {
		varSum += float64(v) * float64(v)
	}
	sd := math.Sqrt(varSum / float64(tt.Len()))
	if math.Abs(sd-0.5) > 0.05 {
		t.Errorf("normal stddev %v too far from 0.5", sd)
	}
}

func TestStringFormat(t *testing.T) {
	tt := New(2, 3)
	if tt.String() != "Tensor[2 3](6 elements)" {
		t.Errorf("String() = %q", tt.String())
	}
}

// Property: Reshape preserves element count and storage identity.
func TestQuickReshapePreservesData(t *testing.T) {
	f := func(a, b uint8) bool {
		x := int(a%8) + 1
		y := int(b%8) + 1
		tt := New(x, y)
		tt.FillUniform(NewRNG(uint64(a)<<8|uint64(b)), 0, 1)
		r, err := tt.Reshape(y, x)
		if err != nil {
			return false
		}
		for i := range tt.Data() {
			if tt.Data()[i] != r.Data()[i] {
				return false
			}
		}
		return r.Len() == tt.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ApproxEqual is reflexive at any tolerance >= 0.
func TestQuickApproxEqualReflexive(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		tt := New(size)
		tt.FillNormal(NewRNG(seed), 1)
		return ApproxEqual(tt, tt, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxIndex always returns an index whose value equals Max().
func TestQuickMaxIndexConsistent(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		tt := New(size)
		tt.FillNormal(NewRNG(seed), 2)
		return tt.Data()[tt.MaxIndex()] == tt.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
