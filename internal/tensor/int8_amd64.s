// AVX2 int8 microkernels (see int8.go): u8 offset-binary activations
// against s8 weights via VPMADDUBSW + VPMADDWD, accumulating exactly in
// int32.  Weight quantization is capped at ±63, which keeps the paired
// VPMADDUBSW products inside int16 (255*63*2 = 32130 < 32767), so the
// kernels never saturate and match the portable fallback bit for bit.

#include "textflag.h"

// func gemmInt8Kernel(acc []int32, w []int8, bp []uint8, kc4, nc, ldw, n int)
//
// 4x8 int32 tile over kc4 four-deep blocks: acc[r][j] = sum of
// w[r][l]*bp(l, j).  w rows are ldw bytes apart; bp is the PackColsU8
// column-tile-major activation block — each 8-column tile stores its kc4
// 32-byte depth blocks contiguously, so the kernel streams bp strictly
// sequentially across the whole call; acc rows are n int32s apart.  nc must
// be a positive multiple of 8.  Callers pre-offset the slice bases.
TEXT ·gemmInt8Kernel(SB), NOSPLIT, $0-104
	MOVQ acc_base+0(FP), DI
	MOVQ w_base+24(FP), SI
	MOVQ bp_base+48(FP), BX
	MOVQ kc4+72(FP), CX
	MOVQ nc+80(FP), R8
	MOVQ ldw+88(FP), R9
	MOVQ n+96(FP), R10
	SHLQ $2, R10             // acc row stride == bp depth-block stride, bytes

	// Y14 = sixteen int16 ones for the VPMADDWD pair reduction.
	VPCMPEQW Y14, Y14, Y14
	VPSRLW   $15, Y14, Y14

	// w row pointers (advance via the shared depth offset in SI below).
	MOVQ SI, R12             // w0
	LEAQ (R12)(R9*1), R13    // w1
	LEAQ (R13)(R9*1), R14    // w2
	LEAQ (R14)(R9*1), R15    // w3

	XORQ AX, AX              // output column index
	MOVQ BX, DX              // bp streams sequentially across column tiles

i8col:
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

	XORQ SI, SI              // depth-block byte offset into the w rows
	MOVQ CX, R11             // depth-block counter

i8k:
	VMOVDQU      (DX), Y8    // 8 columns x 4 depth steps of u8 activations
	ADDQ         $32, DX     // next depth block of this tile
	VPBROADCASTD (R12)(SI*1), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y14, Y10, Y10
	VPADDD       Y10, Y0, Y0
	VPBROADCASTD (R13)(SI*1), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y14, Y10, Y10
	VPADDD       Y10, Y1, Y1
	VPBROADCASTD (R14)(SI*1), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y14, Y10, Y10
	VPADDD       Y10, Y2, Y2
	VPBROADCASTD (R15)(SI*1), Y9
	VPMADDUBSW   Y9, Y8, Y10
	VPMADDWD     Y14, Y10, Y10
	VPADDD       Y10, Y3, Y3
	ADDQ $4, SI
	DECQ R11
	JNE  i8k

	// ldw in R9 is dead after the row-pointer setup; reuse it for stores.
	LEAQ (DI)(AX*4), R9
	VMOVDQU Y0, (R9)
	ADDQ R10, R9
	VMOVDQU Y1, (R9)
	ADDQ R10, R9
	VMOVDQU Y2, (R9)
	ADDQ R10, R9
	VMOVDQU Y3, (R9)

	ADDQ $8, AX              // next 8-column block
	CMPQ AX, R8
	JLT  i8col

	VZEROUPPER
	RET

// func dotInt8Kernel(w []int8, x []uint8, n int) int32
//
// Contiguous s8 x offset-binary-u8 dot product; n must be a positive
// multiple of 32.
TEXT ·dotInt8Kernel(SB), NOSPLIT, $0-60
	MOVQ w_base+0(FP), SI
	MOVQ x_base+24(FP), DX
	MOVQ n+48(FP), CX

	VPCMPEQW Y14, Y14, Y14
	VPSRLW   $15, Y14, Y14
	VPXOR    Y0, Y0, Y0

i8dot:
	VMOVDQU    (DX), Y8      // activations (unsigned)
	VMOVDQU    (SI), Y9      // weights (signed)
	VPMADDUBSW Y9, Y8, Y10
	VPMADDWD   Y14, Y10, Y10
	VPADDD     Y10, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DX
	SUBQ $32, CX
	JNE  i8dot

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPHADDD      X0, X0, X0
	VPHADDD      X0, X0, X0
	VZEROUPPER
	MOVQ X0, AX
	MOVL AX, ret+56(FP)
	RET
