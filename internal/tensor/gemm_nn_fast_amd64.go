package tensor

// amd64 wiring for the fast-numerics kernels (gemm_nn_fma_amd64.s): runtime
// CPUID/XGETBV detection of the FMA and AVX-512 tiers.  Unlike the
// reference kernel's single AVX2 flag, detection here is a ladder so the
// override hook (SetFastTier) can walk the same binary through every rung.

// gemmNNFMAKernel is the AVX2+FMA 4x16 register-tile microkernel.  It
// accumulates dst[r][j] += sum_l ap[l*4+r]*b[l][j] for r in [0,4), j in
// [0,nc), l in [0,kc) with fused multiply-adds on 8 independent accumulator
// registers.  ap is the depth-interleaved packed A panel (PackA layout)
// advanced to the kernel's depth offset; dst rows are ldd floats apart and
// b rows ldb floats apart (separate strides let a fused im2col panel with
// its own compact stride accumulate into a strided NCHW output block).
// nc must be a positive multiple of 16; kc positive.  Callers pre-offset
// the slice bases.
//
//go:noescape
func gemmNNFMAKernel(dst, ap, b []float32, kc, nc, ldd, ldb int)

// gemmNNAVX512Kernel is the AVX-512 4x32 variant of gemmNNFMAKernel: the
// same packed-A layout feeding 8 ZMM accumulator chains.  nc must be a
// positive multiple of 32.
//
//go:noescape
func gemmNNAVX512Kernel(dst, ap, b []float32, kc, nc, ldd, ldb int)

// dotFMA returns the FMA dot product of a[:n] and b[:n] over four
// independent 8-lane accumulator chains.  n must be a positive multiple of
// 32.  The reduction order differs from the scalar loop (fast tier only).
//
//go:noescape
func dotFMA(a, b []float32, n int) float32

// dotAVX512 is dotFMA with four 16-lane ZMM chains; n must be a positive
// multiple of 64.
//
//go:noescape
func dotAVX512(a, b []float32, n int) float32

var fastTierDetected = detectFastTier()

// detectFastTier walks the CPUID/XGETBV ladder: FMA requires AVX2+FMA with
// OS YMM state; AVX-512 additionally requires the F/DQ/BW/VL server set and
// OS opmask+ZMM state (XCR0 bits 5-7).
func detectFastTier() SIMDTier {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return TierGeneric
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return TierGeneric
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return TierGeneric
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	if ebx7&avx2 == 0 {
		return TierGeneric
	}
	const avx512f, avx512dq, avx512bw, avx512vl = 1 << 16, 1 << 17, 1 << 30, 1 << 31
	const avx512Set = avx512f | avx512dq | avx512bw | avx512vl
	if xcr0&0xe6 == 0xe6 && ebx7&avx512Set == avx512Set {
		return TierAVX512
	}
	return TierFMA
}
