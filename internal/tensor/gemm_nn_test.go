package tensor

import (
	"math"
	"testing"
)

// refGemmNN is an independent scalar reference: one float32 accumulator per
// element, depth ascending, bias first — the contract both GemmNN paths must
// match bit for bit.
func refGemmNN(dst, a, b, bias []float32, m, n, k, ldb int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*ldb+j]
			}
			dst[i*ldb+j] = s
		}
	}
}

func TestGemmNNMatchesReference(t *testing.T) {
	r := NewRNG(42)
	shapes := []struct{ m, n, k, pad int }{
		{1, 1, 1, 0},
		{1, 8, 3, 0},
		{4, 8, 16, 0},
		{5, 9, 7, 3},      // remainder rows and columns
		{4, 32, 300, 0},   // depth panel boundary (nnKC=256)
		{13, 40, 257, 8},  // everything misaligned
		{8, 520, 33, 0},   // column panel boundary (nnNC=512)
		{3, 16, 512, 16},  // no full row tile
		{17, 1030, 70, 2}, // multiple column panels with tail
	}
	for _, sh := range shapes {
		ldb := sh.n + sh.pad
		a := make([]float32, sh.m*sh.k)
		b := make([]float32, sh.k*ldb)
		bias := make([]float32, sh.m)
		fillRand(r, a)
		fillRand(r, b)
		fillRand(r, bias)
		want := make([]float32, sh.m*ldb)
		got := make([]float32, sh.m*ldb)
		for _, useBias := range []bool{true, false} {
			bs := bias
			if !useBias {
				bs = nil
			}
			refGemmNN(want, a, b, bs, sh.m, sh.n, sh.k, ldb)
			GemmNN(got, a, b, bs, sh.m, sh.n, sh.k, ldb)
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.n; j++ {
					g, w := got[i*ldb+j], want[i*ldb+j]
					if math.Float32bits(g) != math.Float32bits(w) {
						t.Fatalf("m=%d n=%d k=%d ldb=%d bias=%v: dst[%d][%d] = %x, want %x",
							sh.m, sh.n, sh.k, ldb, useBias, i, j, math.Float32bits(g), math.Float32bits(w))
					}
				}
			}
		}
	}
}

// TestGemmNNScalarMatchesVector pins the scalar fallback against the vector
// microkernel (when present) on identical inputs: the two paths must agree
// bit for bit, which is what makes the AVX2 path safe to enable at runtime.
func TestGemmNNScalarMatchesVector(t *testing.T) {
	if !gemmNNVector {
		t.Skip("no vector kernel on this platform")
	}
	r := NewRNG(7)
	m, n, k, ldb := 9, 48, 130, 48
	a := make([]float32, m*k)
	b := make([]float32, k*ldb)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, b)
	fillRand(r, bias)
	vec := make([]float32, m*ldb)
	sc := make([]float32, m*ldb)
	GemmNN(vec, a, b, bias, m, n, k, ldb)
	// Scalar path over the full problem: bias-seed, then accumulate.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sc[i*ldb+j] = bias[i]
		}
	}
	gemmNNScalar(sc, a, b, k, ldb, 0, k, 0, n, 0, m)
	for i := range vec {
		if math.Float32bits(vec[i]) != math.Float32bits(sc[i]) {
			t.Fatalf("element %d: vector %x scalar %x", i, math.Float32bits(vec[i]), math.Float32bits(sc[i]))
		}
	}
}

// TestGemmNNAgainstGemm cross-checks the NN layout against the established
// NT kernel: transposing B must yield bit-identical results, since both
// kernels promise the same per-element summation order.
func TestGemmNNAgainstGemm(t *testing.T) {
	r := NewRNG(99)
	m, n, k := 12, 37, 95
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	bt := make([]float32, n*k)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, b)
	fillRand(r, bias)
	for l := 0; l < k; l++ {
		for j := 0; j < n; j++ {
			bt[j*k+l] = b[l*n+j]
		}
	}
	nn := make([]float32, m*n)
	nt := make([]float32, m*n)
	GemmNN(nn, a, b, bias, m, n, k, n)
	Gemm(nt, a, bt, bias, m, n, k)
	for i := range nn {
		if math.Float32bits(nn[i]) != math.Float32bits(nt[i]) {
			t.Fatalf("element %d: NN %x NT %x", i, math.Float32bits(nn[i]), math.Float32bits(nt[i]))
		}
	}
}

func TestGemmNNParallelMatchesSerial(t *testing.T) {
	r := NewRNG(5)
	m, n, k, ldb := 64, 96, 200, 104
	a := make([]float32, m*k)
	b := make([]float32, k*ldb)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, b)
	fillRand(r, bias)
	serial := make([]float32, m*ldb)
	GemmNN(serial, a, b, bias, m, n, k, ldb)
	for _, workers := range []int{2, 3, 7, 16} {
		par := make([]float32, m*ldb)
		GemmNNParallel(par, a, b, bias, m, n, k, ldb, workers)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Float32bits(par[i*ldb+j]) != math.Float32bits(serial[i*ldb+j]) {
					t.Fatalf("workers=%d: dst[%d][%d] differs", workers, i, j)
				}
			}
		}
	}
}

func TestGemmNNArgChecks(t *testing.T) {
	buf := make([]float32, 16)
	cases := []struct {
		name string
		call func()
	}{
		{"zero dims", func() { GemmNN(buf, buf, buf, nil, 0, 4, 4, 4) }},
		{"stride", func() { GemmNN(buf, buf, buf, nil, 2, 4, 2, 3) }},
		{"short dst", func() { GemmNN(buf[:3], buf, buf, nil, 2, 4, 2, 4) }},
		{"short bias", func() { GemmNN(buf, buf, buf, buf[:1], 2, 2, 2, 2) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.call()
		}()
	}
}

func BenchmarkGemmNN(b *testing.B) {
	// AlexNet conv2 per-group geometry at batch 8: the shape the batched
	// engine feeds the kernel.
	m, k, n := 128, 1200, 8*27*27
	r := NewRNG(3)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bb)
	fillRand(r, bias)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNN(dst, a, bb, bias, m, n, k, n)
	}
	b.ReportMetric(float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
}

func BenchmarkGemmNT(b *testing.B) {
	m, k, n := 128, 1200, 8*27*27
	r := NewRNG(3)
	a := make([]float32, m*k)
	bt := make([]float32, n*k)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bt)
	fillRand(r, bias)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(dst, a, bt, bias, m, n, k)
	}
	b.ReportMetric(float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
}
