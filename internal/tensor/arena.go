package tensor

// Arena is a shape-memoizing tensor allocator for steady-state inference.
// A network run performs the same sequence of output allocations every time,
// so the arena records the tensors it hands out in call order; after Reset,
// each Get that repeats the previous sequence returns the recorded tensor
// with zero heap allocations.  A shape mismatch at any position simply
// replaces the recorded tensor from that point on.
//
// Tensors returned by Get contain the data of the previous run (they are NOT
// zeroed); callers must fully overwrite every element.  All tensors handed
// out remain aliased to the arena: their contents are valid only until the
// next Reset/Get cycle reuses them.
//
// The zero value is ready to use.  An Arena is not safe for concurrent use;
// give each goroutine its own.
type Arena struct {
	tensors []*Tensor
	next    int
}

// Reset rewinds the arena so the next Get sequence reuses the recorded
// tensors from the start.
func (a *Arena) Reset() { a.next = 0 }

// Get1 returns a rank-1 tensor of length n, reusing the recorded tensor at
// the current sequence position when its shape matches.
func (a *Arena) Get1(n int) *Tensor {
	if a.next < len(a.tensors) {
		t := a.tensors[a.next]
		if len(t.shape) == 1 && t.shape[0] == n {
			a.next++
			return t
		}
	}
	return a.record(New(n))
}

// Get3 returns a rank-3 (CHW) tensor, reusing the recorded tensor at the
// current sequence position when its shape matches.
func (a *Arena) Get3(c, h, w int) *Tensor {
	if a.next < len(a.tensors) {
		t := a.tensors[a.next]
		if len(t.shape) == 3 && t.shape[0] == c && t.shape[1] == h && t.shape[2] == w {
			a.next++
			return t
		}
	}
	return a.record(New(c, h, w))
}

// Get2 returns a rank-2 tensor (e.g. a batch of vectors), reusing the
// recorded tensor at the current sequence position when its shape matches.
func (a *Arena) Get2(n, f int) *Tensor {
	if a.next < len(a.tensors) {
		t := a.tensors[a.next]
		if len(t.shape) == 2 && t.shape[0] == n && t.shape[1] == f {
			a.next++
			return t
		}
	}
	return a.record(New(n, f))
}

// Get4 returns a rank-4 (NCHW) tensor, reusing the recorded tensor at the
// current sequence position when its shape matches.
func (a *Arena) Get4(n, c, h, w int) *Tensor {
	if a.next < len(a.tensors) {
		t := a.tensors[a.next]
		if len(t.shape) == 4 && t.shape[0] == n && t.shape[1] == c && t.shape[2] == h && t.shape[3] == w {
			a.next++
			return t
		}
	}
	return a.record(New(n, c, h, w))
}

// Get returns a tensor of the given shape, reusing the recorded tensor at
// the current sequence position when its shape matches.  Prefer the
// fixed-arity variants (Get1/Get2/Get3/Get4) on hot paths: they keep the
// shape arguments off the heap.
func (a *Arena) Get(shape ...int) *Tensor {
	if a.next < len(a.tensors) {
		t := a.tensors[a.next]
		if len(t.shape) == len(shape) {
			match := true
			for i, d := range shape {
				if t.shape[i] != d {
					match = false
					break
				}
			}
			if match {
				a.next++
				return t
			}
		}
	}
	return a.record(New(shape...))
}

// record stores t at the current sequence position and advances.
func (a *Arena) record(t *Tensor) *Tensor {
	if a.next < len(a.tensors) {
		a.tensors[a.next] = t
	} else {
		a.tensors = append(a.tensors, t)
	}
	a.next++
	return t
}

// Size returns the number of tensors the arena currently holds.
func (a *Arena) Size() int { return len(a.tensors) }

// Bytes returns the total backing storage of all recorded tensors.
func (a *Arena) Bytes() int64 {
	var total int64
	for _, t := range a.tensors {
		total += t.Bytes()
	}
	return total
}
