package tensor

import "testing"

// Fast-tier counterparts of BenchmarkGemmNN: same AlexNet conv2 batch-8
// geometry so the reference-vs-fast GMAC/s ratio reads directly off the
// bench output.

func BenchmarkGemmNNPacked(b *testing.B) {
	m, k, n := 128, 1200, 8*27*27
	r := NewRNG(3)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bb)
	fillRand(r, bias)
	pa := PackA(a, m, k)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNNFast(dst, pa, bb, bias, n, n)
	}
	b.ReportMetric(float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
}

// BenchmarkGemmFusedPanels is the fused-staging counterpart of
// BenchmarkGemmNNPacked: the same product computed by walking FusedKC x
// FusedNC panels through GemmNNFastAccumPanel, with the panel fill (the
// fused analogue of patch packing) inside the timed region.  Comparing the
// two GMAC/s numbers shows the cost of panel staging relative to a staged
// B matrix — while BenchmarkIm2colStage (internal/nn) prices the staged
// buffer fill the fused path avoids.
func BenchmarkGemmFusedPanels(b *testing.B) {
	m, k, n := 128, 1200, 8*27*27
	r := NewRNG(3)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bb)
	fillRand(r, bias)
	pa := PackA(a, m, k)
	dst := make([]float32, m*n)
	panel := make([]float32, FusedPanelFloats)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p0 := 0; p0 < n; p0 += FusedNC {
			nc := n - p0
			if nc > FusedNC {
				nc = FusedNC
			}
			for kb := 0; kb < k; kb += FusedKC {
				kc := k - kb
				if kc > FusedKC {
					kc = FusedKC
				}
				for l := 0; l < kc; l++ {
					copy(panel[l*nc:(l+1)*nc], bb[(kb+l)*n+p0:(kb+l)*n+p0+nc])
				}
				GemmNNFastAccumPanel(dst[p0:], pa, panel[:kc*nc], bias, kb, kc, nc, n)
			}
		}
	}
	b.ReportMetric(float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
}

func BenchmarkGemmInt8(b *testing.B) {
	m, k, n := 128, 1200, 8*27*27
	r := NewRNG(3)
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bb)
	fillRand(r, bias)
	pw := PackInt8(a, m, k)
	bp := make([]uint8, Int8PackedLen(pw.KPad(), n))
	acc := make([]int32, m*n)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xScale := PackColsU8(bp, bb, k, n, n, pw.KPad())
		GemmInt8(dst, pw, bp, acc, bias, xScale, n, 1)
	}
	b.ReportMetric(float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
}
