package tensor_test

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/networks"
	"tango/internal/tensor"
)

// forceTier runs fn once per tier in [TierGeneric, detected], restoring the
// detected tier afterwards.  This is the CPUID-ladder walk the override hook
// exists for: on an AVX-512 machine it exercises AVX-512, FMA and generic
// kernels from one binary.
func forceTier(t *testing.T, fn func(t *testing.T, tier tensor.SIMDTier)) {
	t.Helper()
	defer tensor.SetFastTier(tensor.DetectedTier())
	for tier := tensor.TierGeneric; tier <= tensor.DetectedTier(); tier++ {
		applied := tensor.SetFastTier(tier)
		if applied != tier {
			t.Fatalf("SetFastTier(%v) applied %v", tier, applied)
		}
		t.Run(tier.String(), func(t *testing.T) { fn(t, tier) })
	}
}

func TestSetFastTierClamps(t *testing.T) {
	defer tensor.SetFastTier(tensor.DetectedTier())
	if got := tensor.SetFastTier(tensor.TierAVX512 + 1); got > tensor.DetectedTier() {
		t.Fatalf("SetFastTier above detected applied %v, detected %v", got, tensor.DetectedTier())
	}
	if got := tensor.SetFastTier(-1); got != tensor.TierGeneric {
		t.Fatalf("SetFastTier(-1) applied %v, want generic", got)
	}
	if got := tensor.SetFastTier(tensor.DetectedTier()); got != tensor.DetectedTier() {
		t.Fatalf("SetFastTier(detected) applied %v", got)
	}
	if tensor.FastTier() != tensor.DetectedTier() {
		t.Fatalf("FastTier %v after restore, want %v", tensor.FastTier(), tensor.DetectedTier())
	}
}

// gemmShape is one (m, n, k) GEMM geometry with the worker counts to try.
type gemmShape struct{ m, n, k int }

// suiteGemmShapes enumerates the conv and FC GEMM geometries of all seven
// suite networks: conv layers lower to (outC/groups) x (outH*outW) with
// depth (inC/groups)*kh*kw per group, FC layers to FCOut x 1 with the
// flattened input as depth, and batch FC to FCOut x batch.  Column counts
// are clamped to keep the test affordable while preserving the exact
// remainder behaviour (n mod the widest vector tile is kept).
func suiteGemmShapes(t *testing.T) []gemmShape {
	t.Helper()
	nets, err := networks.All()
	if err != nil {
		t.Fatalf("networks.All: %v", err)
	}
	seen := make(map[gemmShape]bool)
	var shapes []gemmShape
	add := func(m, n, k int) {
		const maxCols = 160
		if n > maxCols {
			n = maxCols + n%32
		}
		s := gemmShape{m, n, k}
		if !seen[s] {
			seen[s] = true
			shapes = append(shapes, s)
		}
	}
	for _, net := range nets {
		for i := range net.Layers {
			l := &net.Layers[i]
			switch l.Type {
			case networks.LayerConv:
				p := l.Conv
				g := p.Groups
				if g == 0 {
					g = 1
				}
				shape := l.OutShape
				add(p.OutChannels/g, shape[1]*shape[2], p.InChannels/g*p.KernelH*p.KernelW)
			case networks.LayerFC:
				in := 1
				ref := l.Inputs[0]
				if ref == networks.InputRef {
					for _, d := range net.InputShape {
						in *= d
					}
				} else {
					for _, d := range net.Layers[ref].OutShape {
						in *= d
					}
				}
				add(l.FCOut, 8, in) // batched FC geometry
			case networks.LayerLSTM, networks.LayerGRU:
				add(l.Hidden, 8, l.InSize) // batched gate geometry
				add(l.Hidden, 8, l.Hidden)
			}
		}
	}
	return shapes
}

// maxRelErr returns the largest |got-want| / max(|want|, floor) over the
// m x n outputs (row stride ldb).
func maxRelErr(got, want []float32, m, n, ldb int, floor float64) float64 {
	var worst float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g := float64(got[i*ldb+j])
			w := float64(want[i*ldb+j])
			den := math.Abs(w)
			if den < floor {
				den = floor
			}
			if e := math.Abs(g-w) / den; e > worst {
				worst = e
			}
		}
	}
	return worst
}

// TestGemmNNFastTiers checks every kernel tier against the bit-exact
// reference on every conv/FC geometry in the suite, with randomized
// contents, serial and parallel.
func TestGemmNNFastTiers(t *testing.T) {
	shapes := suiteGemmShapes(t)
	if len(shapes) < 10 {
		t.Fatalf("suite geometry enumeration found only %d shapes", len(shapes))
	}
	if testing.Short() && len(shapes) > 12 {
		shapes = shapes[:12]
	}
	rng := rand.New(rand.NewSource(7))
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		for _, s := range shapes {
			a := randSlice(rng, s.m*s.k)
			b := randSlice(rng, s.k*s.n)
			bias := randSlice(rng, s.m)
			ref := make([]float32, s.m*s.n)
			tensor.GemmNN(ref, a, b, bias, s.m, s.n, s.k, s.n)
			pa := tensor.PackA(a, s.m, s.k)
			got := make([]float32, s.m*s.n)
			for _, workers := range []int{1, 3} {
				for i := range got {
					got[i] = float32(math.NaN())
				}
				tensor.GemmNNFastParallel(got, pa, b, bias, s.n, s.n, workers)
				// Error floor and bound scale with the reduction length;
				// the additive term covers near-cancelling small-depth sums.
				floor := 1e-3 * math.Sqrt(float64(s.k))
				tol := 1e-4 + 2e-5*math.Sqrt(float64(s.k))
				if err := maxRelErr(got, ref, s.m, s.n, s.n, floor); err > tol {
					t.Fatalf("tier %v shape %dx%dx%d workers %d: max rel err %.3g > %.3g",
						tier, s.m, s.n, s.k, workers, err, tol)
				}
			}
		}
	})
}

// TestGemmNNFastParallelIdentical: unlike the batch-size-dependent column
// tails, worker count never changes fast-tier results — row panels are
// tile-aligned and each element is produced by exactly one worker.
func TestGemmNNFastParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n, k := 64, 529, 147
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	pa := tensor.PackA(a, m, k)
	serial := make([]float32, m*n)
	tensor.GemmNNFast(serial, pa, b, nil, n, n)
	par := make([]float32, m*n)
	for _, workers := range []int{2, 5, 8} {
		tensor.GemmNNFastParallel(par, pa, b, nil, n, n, workers)
		for i := range serial {
			if math.Float32bits(serial[i]) != math.Float32bits(par[i]) {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestMatVecFastTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][2]int{{10, 1024}, {4096, 9216}, {1000, 4096}, {128, 128}, {7, 33}, {5, 17}}
	if testing.Short() {
		shapes = shapes[:3]
	}
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		for _, s := range shapes {
			rows, cols := s[0], s[1]
			w := randSlice(rng, rows*cols)
			x := randSlice(rng, cols)
			bias := randSlice(rng, rows)
			ref := make([]float32, rows)
			tensor.MatVecBias(ref, w, x, bias, rows, cols)
			got := make([]float32, rows)
			for _, workers := range []int{1, 4} {
				tensor.MatVecFastParallel(got, w, x, bias, rows, cols, workers)
				floor := 1e-3 * math.Sqrt(float64(cols))
				tol := 2e-5 * math.Sqrt(float64(cols))
				if err := maxRelErr(got, ref, rows, 1, 1, floor); err > tol {
					t.Fatalf("tier %v %dx%d workers %d: max rel err %.3g > %.3g", tier, rows, cols, workers, err, tol)
				}
			}
		}
	})
}

// TestGemmInt8TierExact: the int8 kernels accumulate exactly in int32, so
// every tier and worker count must produce identical float output.
func TestGemmInt8TierExact(t *testing.T) {
	shapes := []gemmShape{{8, 64, 27}, {96, 121, 363}, {32, 9, 800}, {12, 8, 4096}, {5, 13, 70}}
	type result struct {
		out []float32
	}
	results := make(map[int][]result)
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		for si, s := range shapes {
			// Same seed per shape across tiers so inputs match.
			rs := rand.New(rand.NewSource(int64(100 + si)))
			w := randSlice(rs, s.m*s.k)
			b := randSlice(rs, s.k*s.n)
			bias := randSlice(rs, s.m)
			pw := tensor.PackInt8(w, s.m, s.k)
			bp := make([]uint8, tensor.Int8PackedLen(pw.KPad(), s.n))
			xScale := tensor.PackColsU8(bp, b, s.k, s.n, s.n, pw.KPad())
			acc := make([]int32, s.m*s.n)
			out := make([]float32, s.m*s.n)
			tensor.GemmInt8(out, pw, bp, acc, bias, xScale, s.n, 1)

			// Every worker count must match exactly.
			out4 := make([]float32, s.m*s.n)
			acc4 := make([]int32, s.m*s.n)
			tensor.GemmInt8(out4, pw, bp, acc4, bias, xScale, s.n, 4)
			for i := range out {
				if math.Float32bits(out[i]) != math.Float32bits(out4[i]) {
					t.Fatalf("shape %v workers diverge at %d", s, i)
				}
			}

			// And against the float reference the quantized result must be
			// close in a Frobenius sense.
			ref := make([]float32, s.m*s.n)
			tensor.GemmNN(ref, w, b, bias, s.m, s.n, s.k, s.n)
			var num, den float64
			for i := range ref {
				d := float64(out[i] - ref[i])
				num += d * d
				den += float64(ref[i]) * float64(ref[i])
			}
			if den > 0 && math.Sqrt(num/den) > 0.05 {
				t.Fatalf("tier %v shape %v: int8 relative Frobenius error %.3g", tier, s, math.Sqrt(num/den))
			}
			results[si] = append(results[si], result{out: out})
		}
	})
	// Cross-tier bit equality.
	for si, rs := range results {
		for ti := 1; ti < len(rs); ti++ {
			for i := range rs[0].out {
				if math.Float32bits(rs[0].out[i]) != math.Float32bits(rs[ti].out[i]) {
					t.Fatalf("shape %d: tier %d differs from tier 0 at element %d: %v vs %v",
						si, ti, i, rs[ti].out[i], rs[0].out[i])
				}
			}
		}
	}
}

func TestMatVecInt8TierExact(t *testing.T) {
	shapes := [][2]int{{10, 256}, {1000, 4096}, {33, 50}, {4, 31}}
	var outs [][]float32
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		var all []float32
		for si, s := range shapes {
			rs := rand.New(rand.NewSource(int64(200 + si)))
			rows, cols := s[0], s[1]
			w := randSlice(rs, rows*cols)
			x := randSlice(rs, cols)
			bias := randSlice(rs, rows)
			pw := tensor.PackInt8(w, rows, cols)
			xq := make([]uint8, pw.KPad())
			xScale := tensor.QuantizeU8(xq, x)
			out := make([]float32, rows)
			tensor.MatVecInt8(out, pw, xq, bias, xScale, 1)

			ref := make([]float32, rows)
			tensor.MatVecBias(ref, w, x, bias, rows, cols)
			var num, den float64
			for i := range ref {
				d := float64(out[i] - ref[i])
				num += d * d
				den += float64(ref[i]) * float64(ref[i])
			}
			if den > 0 && math.Sqrt(num/den) > 0.05 {
				t.Fatalf("tier %v shape %v: int8 matvec relative error %.3g", tier, s, math.Sqrt(num/den))
			}
			all = append(all, out...)
		}
		outs = append(outs, all)
	})
	for ti := 1; ti < len(outs); ti++ {
		for i := range outs[0] {
			if math.Float32bits(outs[0][i]) != math.Float32bits(outs[ti][i]) {
				t.Fatalf("tier %d int8 matvec differs from tier 0 at %d", ti, i)
			}
		}
	}
}

func TestPackAUnevenRows(t *testing.T) {
	// m not a multiple of the panel height exercises the remainder path.
	rng := rand.New(rand.NewSource(9))
	for _, m := range []int{1, 2, 3, 5, 7} {
		k, n := 65, 48
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		ref := make([]float32, m*n)
		tensor.GemmNN(ref, a, b, nil, m, n, k, n)
		got := make([]float32, m*n)
		tensor.GemmNNFast(got, tensor.PackA(a, m, k), b, nil, n, n)
		if err := maxRelErr(got, ref, m, n, n, 1e-3); err > 1e-4 {
			t.Fatalf("m=%d: max rel err %.3g", m, err)
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}
