package tensor

import "math"

// Symmetric int8 quantized kernels: the lowest rung of the fast-numerics
// tier.  Weights are quantized once per matrix with one scale per output
// row (per-channel), activations once per layer invocation with a single
// scale, products accumulate exactly in int32 and results dequantize to
// float32 at layer exit.
//
// Two representation choices serve the AVX2 microkernel while keeping every
// tier bit-identical in integer space:
//
//   - Weights quantize to [-63, 63] instead of the full int8 range: the
//     VPMADDUBSW step sums two adjacent u8*s8 products into an int16, and
//     255*63*2 = 32130 is the widest weight range that cannot saturate it.
//     The lost bit of weight precision is part of the tier's accuracy
//     contract (validated by the top-1 golden tests).
//   - Activations are stored offset-binary as u8 = q+128.  The kernel
//     accumulates sum((q+128)*w) and callers subtract the per-row
//     compensation 128*sum(w) (precomputed at pack time), recovering
//     sum(q*w) exactly in integer arithmetic.  The generic fallback
//     computes the same quantity the same way, so kernel and fallback agree
//     bit for bit and the tier override never changes int8 results.
//
// Depth dimensions are zero-padded to int8KPad: padded weights are zero, so
// padded positions contribute nothing regardless of the activation bytes.

const (
	// int8WeightMax is the symmetric weight quantization range (see above).
	int8WeightMax = 63
	// int8KPad is the depth padding unit: one full iteration of the widest
	// int8 kernel, so the vector kernels never need a scalar depth tail.
	int8KPad = 32
	// int8NR is the column tile of the int8 GEMM microkernel.
	int8NR = 8
)

// PackedInt8 holds an m x k weight matrix quantized and packed once for the
// int8 kernels: row-major int8 with rows padded to a multiple of int8KPad,
// one scale and one compensation term per output row.  Immutable after
// PackInt8 and safe for concurrent use.
type PackedInt8 struct {
	wq     []int8
	scales []float32
	comp   []int32
	m, k   int
	kPad   int
}

// Rows returns m, the number of output rows.
func (p *PackedInt8) Rows() int { return p.m }

// Cols returns k, the unpadded depth dimension.
func (p *PackedInt8) Cols() int { return p.k }

// KPad returns the padded depth stride; activation buffers fed to the int8
// kernels must be padded to this length.
func (p *PackedInt8) KPad() int { return p.kPad }

// Scale returns the weight quantization scale of output row i.
func (p *PackedInt8) Scale(i int) float32 { return p.scales[i] }

// Bytes returns the storage held by the quantized pack: int8 rows plus the
// per-row scale and compensation vectors.
func (p *PackedInt8) Bytes() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.wq)) + int64(len(p.scales))*4 + int64(len(p.comp))*4
}

// PackInt8 quantizes the row-major m x k float32 matrix a to the packed
// int8 layout with one symmetric scale per row.
func PackInt8(a []float32, m, k int) *PackedInt8 {
	if m <= 0 || k <= 0 {
		panic("tensor: PackInt8 dims must be positive")
	}
	if len(a) < m*k {
		panic("tensor: PackInt8 buffer too small")
	}
	kPad := (k + int8KPad - 1) &^ (int8KPad - 1)
	p := &PackedInt8{
		wq:     make([]int8, m*kPad),
		scales: make([]float32, m),
		comp:   make([]int32, m),
		m:      m, k: k, kPad: kPad,
	}
	for i := 0; i < m; i++ {
		row := a[i*k : i*k+k]
		var maxAbs float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / int8WeightMax
		if maxAbs == 0 {
			scale = 1
		}
		inv := 1 / scale
		var sum int32
		dst := p.wq[i*kPad:]
		for l, v := range row {
			q := quantRound(v*inv, int8WeightMax)
			dst[l] = int8(q)
			sum += q
		}
		p.scales[i] = scale
		p.comp[i] = 128 * sum
	}
	return p
}

// quantRound rounds v to the nearest integer (half away from zero) clamped
// to [-limit, limit].
func quantRound(v float32, limit int32) int32 {
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	q := int32(v)
	if q > limit {
		q = limit
	}
	if q < -limit {
		q = -limit
	}
	return q
}

// QuantizeU8 quantizes src symmetrically to offset-binary u8 (q+128) and
// returns the activation scale.  dst must have room for len(src) plus any
// padding the caller needs; padded bytes are left untouched (padded weight
// positions are zero, so their activation bytes never matter).
func QuantizeU8(dst []uint8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	scale := maxAbs / 127
	if maxAbs == 0 {
		scale = 1
	}
	inv := 1 / scale
	for i, v := range src {
		dst[i] = uint8(quantRound(v*inv, 127) + 128)
	}
	return scale
}

// Int8PackedLen returns the activation buffer size PackColsU8 needs for a
// kPad x n matrix: column tiles of int8NR are padded up so the kernel can
// stream whole tiles.
func Int8PackedLen(kPad, n int) int {
	return (n + int8NR - 1) / int8NR * int8NR * kPad
}

// int8BIndex returns the PackColsU8 offset of depth l, column j.
func int8BIndex(l, j, kPad int) int {
	return (j/int8NR)*kPad*int8NR + (l/4)*int8NR*4 + (j%int8NR)*4 + l%4
}

// PackColsU8 quantizes the l-major k x n float32 matrix b (row stride ldb)
// into the column-tile-major u8 block layout the int8 GEMM kernel consumes:
// tiles of int8NR columns store their depth-4-interleaved blocks
// contiguously, so the kernel's activation reads are fully sequential
// (dst[int8BIndex(l, j, kPad)] = q(b[l][j]) + 128).  Depth rows [k, kPad)
// and columns [n, tile end) are zeroed for determinism.  dst must hold
// Int8PackedLen(kPad, n) bytes; kPad must be a multiple of int8KPad
// covering k.  Returns the activation scale.
func PackColsU8(dst []uint8, b []float32, k, n, ldb, kPad int) float32 {
	var maxAbs float32
	for l := 0; l < k; l++ {
		row := b[l*ldb : l*ldb+n]
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	scale := maxAbs / 127
	if maxAbs == 0 {
		scale = 1
	}
	inv := 1 / scale
	zeroPad8(dst, k, n, kPad)
	for l := 0; l < k; l++ {
		row := b[l*ldb : l*ldb+n]
		base := (l/4)*int8NR*4 + l%4
		jb := 0
		for ; jb+int8NR <= n; jb += int8NR {
			tile := dst[(jb/int8NR)*kPad*int8NR+base:]
			for t, v := range row[jb : jb+int8NR] {
				tile[t*4] = uint8(roundHalfAway(v*inv) + 128)
			}
		}
		for j := jb; j < n; j++ {
			dst[(j/int8NR)*kPad*int8NR+base+(j%int8NR)*4] = uint8(roundHalfAway(row[j]*inv) + 128)
		}
	}
	return scale
}

// U8Scale returns the offset-binary activation quantization scale for data
// whose maximum absolute value is maxAbs, using exactly QuantizeU8's rule.
// Fused convolution computes maxAbs once per group from the input planes
// (a superset of every receptive-field patch, so the clamp-free rounding
// precondition of the panel quantizer holds) and shares the scale across
// panels.
func U8Scale(maxAbs float32) float32 {
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// BeginPanelU8 zeroes exactly the padded positions of a fused u8 activation
// panel covering nc columns with valid depth k (padded to kPad): call it
// once per panel before QuantizePanelU8 fills the valid slabs.
func BeginPanelU8(dst []uint8, k, nc, kPad int) {
	zeroPad8(dst, k, nc, kPad)
}

// QuantizePanelU8 writes a kc x nc float32 slab (row-major, stride nc,
// covering depth rows [kb, kb+kc) of the panel's columns) into the
// PackColsU8 tile layout with n = nc:
// dst[int8BIndex(kb+l, j, kPad)] = q(panel[l][j]) + 128.  inv is the
// reciprocal activation scale; |v|*inv must not exceed 127 (guaranteed when
// inv derives from a maxAbs that bounds every panel value, see U8Scale).
// Bytes produced are identical to PackColsU8 quantizing the same values
// with the same scale.
func QuantizePanelU8(dst []uint8, panel []float32, kb, kc, nc, kPad int, inv float32) {
	for li := 0; li < kc; li++ {
		l := kb + li
		row := panel[li*nc : li*nc+nc]
		base := (l/4)*int8NR*4 + l%4
		jb := 0
		for ; jb+int8NR <= nc; jb += int8NR {
			tile := dst[(jb/int8NR)*kPad*int8NR+base:]
			for t, v := range row[jb : jb+int8NR] {
				tile[t*4] = uint8(roundHalfAway(v*inv) + 128)
			}
		}
		for j := jb; j < nc; j++ {
			dst[(j/int8NR)*kPad*int8NR+base+(j%int8NR)*4] = uint8(roundHalfAway(row[j]*inv) + 128)
		}
	}
}

// GemmInt8Panel computes one fused column panel of the quantized GEMM:
// dst[i*ldd + j] = dequant(sum_l Wq[i][l] * bp[l][j]) + bias[i] for every
// weight row i and j in [0, nc).  bp holds the full-depth packed
// activations of the panel's nc columns (PackColsU8 / QuantizePanelU8
// layout with n = nc, quantized with xScale); acc is the int32 staging
// buffer (>= m*nc).  Unlike the float fused path there is no depth-slab
// accumulation — the int8 kernel consumes the whole padded depth in one
// pass — so one call finishes the panel.  Integer accumulation is exact:
// results are identical for any panel grid, tier or worker fan-out.
func GemmInt8Panel(dst []float32, pw *PackedInt8, bp []uint8, acc []int32, bias []float32, xScale float32, nc, ldd int) {
	m, kPad := pw.m, pw.kPad
	if nc <= 0 {
		panic("tensor: GemmInt8Panel nc must be positive")
	}
	if ldd < nc || len(dst) < (m-1)*ldd+nc || len(acc) < m*nc || len(bp) < Int8PackedLen(kPad, nc) {
		panic("tensor: GemmInt8Panel buffers too small")
	}
	if bias != nil && len(bias) < m {
		panic("tensor: GemmInt8Panel bias too short")
	}
	vec := int8Vector()
	i := 0
	if vec {
		ncVec := nc &^ (int8NR - 1)
		for ; i+nnMR <= m; i += nnMR {
			if ncVec > 0 {
				gemmInt8Kernel(acc[i*nc:], pw.wq[i*kPad:], bp, kPad/4, ncVec, kPad, nc)
			}
			if ncVec < nc {
				gemmInt8Scalar(acc, pw.wq, bp, kPad, nc, ncVec, nc-ncVec, i, i+nnMR)
			}
		}
	}
	if i < m {
		gemmInt8Scalar(acc, pw.wq, bp, kPad, nc, 0, nc, i, m)
	}
	for i := 0; i < m; i++ {
		f := pw.scales[i] * xScale
		c := pw.comp[i]
		var b0 float32
		if bias != nil {
			b0 = bias[i]
		}
		ai := acc[i*nc : i*nc+nc]
		di := dst[i*ldd : i*ldd+nc]
		for j, v := range ai {
			di[j] = float32(v-c)*f + b0
		}
	}
}

// roundHalfAway rounds to the nearest integer, halves away from zero,
// without the clamp (and the branches) of quantRound.  PackColsU8 inputs
// satisfy |v*inv| <= 127*(1+ulp), so the result always fits [-127, 127]
// and matches quantRound(v, 127) bit for bit.
func roundHalfAway(x float32) int32 {
	half := math.Float32frombits(0x3f000000 | math.Float32bits(x)&0x80000000)
	return int32(x + half)
}

// zeroPad8 zeroes exactly the padded positions of a PackColsU8 buffer: the
// depth rows [k, kPad) of every column tile plus any ragged columns of the
// last tile.  Valid positions are all overwritten by the quantize loop, so
// the buffer need not start out clean.
func zeroPad8(dst []uint8, k, n, kPad int) {
	tiles := (n + int8NR - 1) / int8NR
	kFloor := k &^ 3 // the partial depth block holds pad bytes too
	for t := 0; t < tiles; t++ {
		tail := dst[t*kPad*int8NR+kFloor*int8NR : (t+1)*kPad*int8NR]
		for i := range tail {
			tail[i] = 0
		}
	}
	if r := n % int8NR; r != 0 {
		last := dst[(tiles-1)*kPad*int8NR : tiles*kPad*int8NR]
		for i := range last {
			last[i] = 0
		}
	}
}

// GemmInt8 computes dst = dequant(Wq * Xq) + bias for the packed int8
// weight matrix pw (m x k) against the packed u8 activation matrix bp
// (PackColsU8 layout, kPad x n, quantized with xScale).  acc is the int32
// accumulator staging buffer (>= m*n); dst is m x n row-major.  bias has
// one element per row and may be nil.  The integer accumulation is exact,
// so results are identical across tiers and worker counts.
func GemmInt8(dst []float32, pw *PackedInt8, bp []uint8, acc []int32, bias []float32, xScale float32, n, workers int) {
	m, kPad := pw.m, pw.kPad
	if n <= 0 {
		panic("tensor: GemmInt8 n must be positive")
	}
	if len(dst) < m*n || len(acc) < m*n || len(bp) < Int8PackedLen(kPad, n) {
		panic("tensor: GemmInt8 buffers too small")
	}
	if bias != nil && len(bias) < m {
		panic("tensor: GemmInt8 bias too short")
	}
	vec := int8Vector()
	if serialRows(m, int64(m)*int64(n)*int64(kPad), workers) {
		gemmInt8Rows(dst, pw, bp, acc, bias, xScale, n, 0, m, vec)
		return
	}
	forEachRowPanel(m, workers, func(r0, r1 int) {
		gemmInt8Rows(dst, pw, bp, acc, bias, xScale, n, r0, r1, vec)
	})
}

func gemmInt8Rows(dst []float32, pw *PackedInt8, bp []uint8, acc []int32, bias []float32, xScale float32, n, r0, r1 int, vec bool) {
	kPad := pw.kPad
	i := r0
	if vec {
		ncVec := n &^ (int8NR - 1)
		for ; i+nnMR <= r1; i += nnMR {
			if ncVec > 0 {
				gemmInt8Kernel(acc[i*n:], pw.wq[i*kPad:], bp, kPad/4, ncVec, kPad, n)
			}
			if ncVec < n {
				gemmInt8Scalar(acc, pw.wq, bp, kPad, n, ncVec, n-ncVec, i, i+nnMR)
			}
		}
	}
	if i < r1 {
		gemmInt8Scalar(acc, pw.wq, bp, kPad, n, 0, n, i, r1)
	}
	for i := r0; i < r1; i++ {
		f := pw.scales[i] * xScale
		c := pw.comp[i]
		var b0 float32
		if bias != nil {
			b0 = bias[i]
		}
		ai := acc[i*n : i*n+n]
		di := dst[i*n : i*n+n]
		for j, v := range ai {
			di[j] = float32(v-c)*f + b0
		}
	}
}

// gemmInt8Scalar is the portable kernel: identical integer results to the
// vector kernel (sum of w * offset-binary activation bytes).
func gemmInt8Scalar(acc []int32, wq []int8, bp []uint8, kPad, n, jb, nc, r0, r1 int) {
	for i := r0; i < r1; i++ {
		row := wq[i*kPad : i*kPad+kPad]
		for j := jb; j < jb+nc; j++ {
			tile := bp[(j/int8NR)*kPad*int8NR+(j%int8NR)*4:]
			var s int32
			for l := 0; l < kPad; l += 4 {
				base := l * int8NR
				s += int32(row[l])*int32(tile[base]) +
					int32(row[l+1])*int32(tile[base+1]) +
					int32(row[l+2])*int32(tile[base+2]) +
					int32(row[l+3])*int32(tile[base+3])
			}
			acc[i*n+j] = s
		}
	}
}

// MatVecInt8 computes dst = dequant(Wq * xq) + bias for a quantized vector
// xq (QuantizeU8 offset-binary layout padded to pw.KPad() bytes, scale
// xScale).  Identical integer results across tiers and worker counts.
func MatVecInt8(dst []float32, pw *PackedInt8, xq []uint8, bias []float32, xScale float32, workers int) {
	m, kPad := pw.m, pw.kPad
	if len(dst) < m || len(xq) < kPad {
		panic("tensor: MatVecInt8 buffers too small")
	}
	if bias != nil && len(bias) < m {
		panic("tensor: MatVecInt8 bias too short")
	}
	vec := int8Vector()
	if serialRows(m, int64(m)*int64(kPad), workers) {
		matVecInt8Rows(dst, pw, xq, bias, xScale, 0, m, vec)
		return
	}
	forEachRowPanel(m, workers, func(r0, r1 int) {
		matVecInt8Rows(dst, pw, xq, bias, xScale, r0, r1, vec)
	})
}

func matVecInt8Rows(dst []float32, pw *PackedInt8, xq []uint8, bias []float32, xScale float32, r0, r1 int, vec bool) {
	kPad := pw.kPad
	for i := r0; i < r1; i++ {
		row := pw.wq[i*kPad : i*kPad+kPad]
		var s int32
		if vec {
			s = dotInt8Kernel(row, xq, kPad)
		} else {
			for l, wv := range row {
				s += int32(wv) * int32(xq[l])
			}
		}
		v := float32(s-pw.comp[i]) * pw.scales[i] * xScale
		if bias != nil {
			v += bias[i]
		}
		dst[i] = v
	}
}
