// Fast-numerics microkernels (see gemm_nn_fast.go): fused-multiply-add
// register tiles over the packed-A panel layout, in FMA (256-bit) and
// AVX-512 (512-bit) variants, plus the multi-chain dot kernels behind
// MatVecFast.
//
// Unlike gemm_nn_amd64.s these kernels deliberately break the bit-exact
// contract: VFMADD231PS keeps the product unrounded before the add, and the
// dot kernels split the reduction across independent accumulator chains.
// Callers opt in via the fast tier and validate with tolerance bounds.

#include "textflag.h"

// func gemmNNFMAKernel(dst, ap, b []float32, kc, nc, ldd, ldb int)
//
// 4x16 tile: dst[r][j] += sum_l ap[l*4+r]*b[l][j] for r in [0,4),
// j in [0,nc), l in [0,kc).  dst rows are ldd floats apart, b rows ldb
// floats apart (separate strides so a packed panel with its own stride can
// accumulate straight into a strided output block); ap is the
// depth-interleaved packed panel (4 consecutive floats per depth step).
// nc must be a positive multiple of 16; kc positive.  Eight YMM accumulator
// chains (two per row) hide the FMA latency.  Only the slice base pointers
// are used; callers pre-offset them.
TEXT ·gemmNNFMAKernel(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ ap_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ kc+72(FP), CX
	MOVQ nc+80(FP), R8
	MOVQ ldd+88(FP), R12
	MOVQ ldb+96(FP), R9
	SHLQ $2, R12             // dst row stride in bytes
	SHLQ $2, R9              // b row stride in bytes

	XORQ AX, AX              // column byte offset

fmacol:
	// Load the 4x16 accumulator block from dst (bias-seeded partial sums).
	LEAQ (DI)(AX*1), DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ R12, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3
	ADDQ R12, DX
	VMOVUPS (DX), Y4
	VMOVUPS 32(DX), Y5
	ADDQ R12, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7

	LEAQ (BX)(AX*1), DX      // b walking pointer for this column block
	MOVQ SI, R10             // packed-a walking pointer
	MOVQ CX, R11             // depth counter

fmak:
	VMOVUPS      (DX), Y8
	VMOVUPS      32(DX), Y9
	VBROADCASTSS (R10), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 4(R10), Y11
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(R10), Y12
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VBROADCASTSS 12(R10), Y13
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ $16, R10
	ADDQ R9, DX              // next b row
	DECQ R11
	JNE  fmak

	// Store the accumulator block back to dst.
	LEAQ (DI)(AX*1), DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y4, (DX)
	VMOVUPS Y5, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)

	ADDQ $64, AX             // next 16-column block
	SUBQ $16, R8
	JNE  fmacol

	VZEROUPPER
	RET

// func gemmNNAVX512Kernel(dst, ap, b []float32, kc, nc, ldd, ldb int)
//
// 4x32 tile: the AVX-512 widening of gemmNNFMAKernel with eight ZMM
// accumulator chains.  nc must be a positive multiple of 32.
TEXT ·gemmNNAVX512Kernel(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ ap_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ kc+72(FP), CX
	MOVQ nc+80(FP), R8
	MOVQ ldd+88(FP), R12
	MOVQ ldb+96(FP), R9
	SHLQ $2, R12             // dst row stride in bytes
	SHLQ $2, R9              // b row stride in bytes

	XORQ AX, AX              // column byte offset

zcol:
	LEAQ (DI)(AX*1), DX
	VMOVUPS (DX), Z0
	VMOVUPS 64(DX), Z1
	ADDQ R12, DX
	VMOVUPS (DX), Z2
	VMOVUPS 64(DX), Z3
	ADDQ R12, DX
	VMOVUPS (DX), Z4
	VMOVUPS 64(DX), Z5
	ADDQ R12, DX
	VMOVUPS (DX), Z6
	VMOVUPS 64(DX), Z7

	LEAQ (BX)(AX*1), DX      // b walking pointer for this column block
	MOVQ SI, R10             // packed-a walking pointer
	MOVQ CX, R11             // depth counter

zk:
	VMOVUPS      (DX), Z8
	VMOVUPS      64(DX), Z9
	VBROADCASTSS (R10), Z10
	VFMADD231PS  Z8, Z10, Z0
	VFMADD231PS  Z9, Z10, Z1
	VBROADCASTSS 4(R10), Z11
	VFMADD231PS  Z8, Z11, Z2
	VFMADD231PS  Z9, Z11, Z3
	VBROADCASTSS 8(R10), Z12
	VFMADD231PS  Z8, Z12, Z4
	VFMADD231PS  Z9, Z12, Z5
	VBROADCASTSS 12(R10), Z13
	VFMADD231PS  Z8, Z13, Z6
	VFMADD231PS  Z9, Z13, Z7
	ADDQ $16, R10
	ADDQ R9, DX              // next b row
	DECQ R11
	JNE  zk

	LEAQ (DI)(AX*1), DX
	VMOVUPS Z0, (DX)
	VMOVUPS Z1, 64(DX)
	ADDQ R12, DX
	VMOVUPS Z2, (DX)
	VMOVUPS Z3, 64(DX)
	ADDQ R12, DX
	VMOVUPS Z4, (DX)
	VMOVUPS Z5, 64(DX)
	ADDQ R12, DX
	VMOVUPS Z6, (DX)
	VMOVUPS Z7, 64(DX)

	ADDQ $128, AX            // next 32-column block
	SUBQ $32, R8
	JNE  zcol

	VZEROUPPER
	RET

// func dotFMA(a, b []float32, n int) float32
//
// Four independent 8-lane FMA accumulator chains; n must be a positive
// multiple of 32.  The tree reduction at the end differs from the scalar
// summation order by design.
TEXT ·dotFMA(SB), NOSPLIT, $0-60
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DX
	MOVQ n+48(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dotloop:
	VMOVUPS     (SI), Y4
	VMOVUPS     32(SI), Y5
	VMOVUPS     64(SI), Y6
	VMOVUPS     96(SI), Y7
	VFMADD231PS (DX), Y4, Y0
	VFMADD231PS 32(DX), Y5, Y1
	VFMADD231PS 64(DX), Y6, Y2
	VFMADD231PS 96(DX), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DX
	SUBQ $32, CX
	JNE  dotloop

	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+56(FP)
	RET

// func dotAVX512(a, b []float32, n int) float32
//
// Four independent 16-lane ZMM chains; n must be a positive multiple of 64.
TEXT ·dotAVX512(SB), NOSPLIT, $0-60
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DX
	MOVQ n+48(FP), CX
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3

zdotloop:
	VMOVUPS     (SI), Z4
	VMOVUPS     64(SI), Z5
	VMOVUPS     128(SI), Z6
	VMOVUPS     192(SI), Z7
	VFMADD231PS (DX), Z4, Z0
	VFMADD231PS 64(DX), Z5, Z1
	VFMADD231PS 128(DX), Z6, Z2
	VFMADD231PS 192(DX), Z7, Z3
	ADDQ $256, SI
	ADDQ $256, DX
	SUBQ $64, CX
	JNE  zdotloop

	VADDPS Z1, Z0, Z0
	VADDPS Z3, Z2, Z2
	VADDPS Z2, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+56(FP)
	RET
