package tensor

// amd64 wiring for the GemmNN vector microkernel: runtime AVX2 detection via
// CPUID/XGETBV so the same binary runs on pre-AVX2 hardware through the
// scalar path.  Both paths are bit-identical; the flag only selects speed.

// gemmNNKernel is the AVX2 4x8 register-tile microkernel (gemm_nn_amd64.s).
// nc must be a positive multiple of 8.
//
//go:noescape
func gemmNNKernel(dst, a, b []float32, kc, nc, ldb, lda int)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// gemmNNVector reports whether the vector microkernel is usable: the CPU
// supports AVX2 and the OS saves/restores the YMM state.
var gemmNNVector = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
