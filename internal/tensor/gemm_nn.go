package tensor

// This file implements the batched-inference GEMM: dst = A*B + bias where B
// is stored row-major (k x n), unlike Gemm whose second operand is the
// transposed bt (n x k).  The row-major ("NN") layout puts every output
// column of one depth step contiguously in memory, which is what lets the
// amd64 microkernel vectorize ACROSS output elements: eight neighbouring
// columns advance their accumulators in one vector multiply + one vector add
// per depth step.
//
// Determinism contract (identical to Gemm): every element dst[i*n+j] is
//
//	bias[i] + a[i][0]*b[0][j] + a[i][1]*b[1][j] + ... + a[i][k-1]*b[k-1][j]
//
// accumulated left to right in float32 with a single accumulator.  The
// vector kernel keeps one accumulator lane per element and uses separate
// IEEE-754 single-precision multiply and add instructions (never a fused
// multiply-add), so each lane performs exactly the scalar operation sequence
// and the result is bit-identical to the scalar reference for any blocking,
// any SIMD width and any worker count.  dst rows start at the bias value
// (zero for nil bias) and partial sums persist in dst between depth panels;
// float32 stores/loads are exact, so the round trip does not perturb the
// accumulation.

const (
	// nnKC is the depth panel: b rows touched per pass.
	nnKC = 256
	// nnNC is the column panel: with nnKC it bounds the L2-resident b block
	// (nnKC x nnNC floats = 512 KiB) that every row tile streams.
	nnNC = 512
	// nnMR is the row tile of the amd64 microkernel; row-panel splits align
	// to it so only the final panel runs remainder rows.
	nnMR = 4
	// nnNR is the column tile of the amd64 microkernel (one 8-float vector).
	nnNR = 8
)

// GemmNN computes dst = A*B + bias on row-major float32 buffers: A is m x k,
// b is k x n (row-major, NOT transposed) and dst is m x n.  bias has one
// element per output row and may be nil for zero.  dst is fully overwritten.
//
// ldb is the row stride of b and dst in floats; it must be >= n.  Staging
// buffers padded to a multiple of 8 columns keep the whole problem on the
// vector kernel.  Results are bit-identical to Gemm and to the scalar
// reference loops for any stride, blocking or worker count.
func GemmNN(dst, a, b, bias []float32, m, n, k, ldb int) {
	checkGemmNNArgs(dst, a, b, bias, m, n, k, ldb)
	gemmNNRows(dst, a, b, bias, n, k, ldb, 0, m)
}

// GemmNNParallel is GemmNN with the row dimension split into contiguous
// panels executed on up to workers goroutines.  Each output element is
// produced by exactly one worker with the serial summation order, so the
// result is bit-identical to GemmNN for any worker count.
func GemmNNParallel(dst, a, b, bias []float32, m, n, k, ldb, workers int) {
	checkGemmNNArgs(dst, a, b, bias, m, n, k, ldb)
	// Keep the closure out of the serial path: constructing it escapes into
	// par.ForEach and would break the engine's zero-alloc steady state.
	if serialRows(m, int64(m)*int64(n)*int64(k), workers) {
		gemmNNRows(dst, a, b, bias, n, k, ldb, 0, m)
		return
	}
	forEachRowPanel(m, workers, func(r0, r1 int) {
		gemmNNRows(dst, a, b, bias, n, k, ldb, r0, r1)
	})
}

func checkGemmNNArgs(dst, a, b, bias []float32, m, n, k, ldb int) {
	if m <= 0 || n <= 0 || k <= 0 {
		panic("tensor: gemmNN dims must be positive")
	}
	if ldb < n {
		panic("tensor: gemmNN stride smaller than column count")
	}
	if len(dst) < (m-1)*ldb+n || len(a) < m*k || len(b) < (k-1)*ldb+n {
		panic("tensor: gemmNN buffers too small")
	}
	if bias != nil && len(bias) < m {
		panic("tensor: gemmNN bias too short")
	}
}

// gemmNNRows runs the blocked kernel over output rows [r0, r1).  Rows are
// first seeded with their bias, then depth panels accumulate in ascending
// order; inside a panel, column panels bound the L2-resident b block.
func gemmNNRows(dst, a, b, bias []float32, n, k, ldb, r0, r1 int) {
	for i := r0; i < r1; i++ {
		row := dst[i*ldb : i*ldb+n]
		if bias != nil {
			bi := bias[i]
			for j := range row {
				row[j] = bi
			}
		} else {
			for j := range row {
				row[j] = 0
			}
		}
	}
	for kb := 0; kb < k; kb += nnKC {
		kc := k - kb
		if kc > nnKC {
			kc = nnKC
		}
		for jb := 0; jb < n; jb += nnNC {
			nc := n - jb
			if nc > nnNC {
				nc = nnNC
			}
			gemmNNPanel(dst, a, b, n, k, ldb, kb, kc, jb, nc, r0, r1)
		}
	}
}

// gemmNNPanel accumulates the (kb..kb+kc) depth slab over columns
// [jb, jb+nc) for rows [r0, r1), dispatching full register tiles to the
// vector microkernel and remainders to the scalar axpy loop.
func gemmNNPanel(dst, a, b []float32, n, k, ldb, kb, kc, jb, nc, r0, r1 int) {
	ncVec := nc &^ (nnNR - 1)
	i := r0
	if gemmNNVector {
		for ; i+nnMR <= r1; i += nnMR {
			if ncVec > 0 {
				gemmNNKernel(dst[i*ldb+jb:], a[i*k+kb:], b[kb*ldb+jb:], kc, ncVec, ldb, k)
			}
			if ncVec < nc {
				gemmNNScalar(dst, a, b, k, ldb, kb, kc, jb+ncVec, nc-ncVec, i, i+nnMR)
			}
		}
	}
	if i < r1 {
		gemmNNScalar(dst, a, b, k, ldb, kb, kc, jb, nc, i, r1)
	}
}

// gemmNNScalar is the portable kernel for remainder rows and narrow column
// tails: one dot product per output element over the strided b column, with
// four rows sharing each streamed b value (the matVecRows tiling, so a
// batch-of-1 fully-connected layer costs the same as the mat-vec path).
// Element (i, j) accumulates a[i][l]*b[l][j] for l ascending onto the
// bias-seeded partial sum resident in dst — the reference summation order.
func gemmNNScalar(dst, a, b []float32, k, ldb, kb, kc, jb, nc, r0, r1 int) {
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		a0 := a[i*k+kb : i*k+kb+kc]
		a1 := a[(i+1)*k+kb : (i+1)*k+kb+kc]
		a2 := a[(i+2)*k+kb : (i+2)*k+kb+kc]
		a3 := a[(i+3)*k+kb : (i+3)*k+kb+kc]
		for j := jb; j < jb+nc; j++ {
			s0 := dst[i*ldb+j]
			s1 := dst[(i+1)*ldb+j]
			s2 := dst[(i+2)*ldb+j]
			s3 := dst[(i+3)*ldb+j]
			bi := kb*ldb + j
			for l := 0; l < kc; l++ {
				bv := b[bi]
				s0 += a0[l] * bv
				s1 += a1[l] * bv
				s2 += a2[l] * bv
				s3 += a3[l] * bv
				bi += ldb
			}
			dst[i*ldb+j] = s0
			dst[(i+1)*ldb+j] = s1
			dst[(i+2)*ldb+j] = s2
			dst[(i+3)*ldb+j] = s3
		}
	}
	for ; i < r1; i++ {
		ar := a[i*k+kb : i*k+kb+kc]
		for j := jb; j < jb+nc; j++ {
			s := dst[i*ldb+j]
			bi := kb*ldb + j
			for _, av := range ar {
				s += av * b[bi]
				bi += ldb
			}
			dst[i*ldb+j] = s
		}
	}
}
