//go:build !amd64

package tensor

// Non-amd64 builds have no fast vector kernels: the detected tier is
// generic and the fast entry points run the portable order-preserving
// scalar path.  The stubs below are unreachable (fastVecCols returns 0 for
// TierGeneric and SetFastTier clamps to the detected maximum) but must
// exist for the package to compile.

var fastTierDetected = TierGeneric

func gemmNNFMAKernel(dst, ap, b []float32, kc, nc, ldd, ldb int) {
	panic("tensor: FMA kernel called on non-amd64 build")
}

func gemmNNAVX512Kernel(dst, ap, b []float32, kc, nc, ldd, ldb int) {
	panic("tensor: AVX-512 kernel called on non-amd64 build")
}

func dotFMA(a, b []float32, n int) float32 {
	panic("tensor: FMA dot kernel called on non-amd64 build")
}

func dotAVX512(a, b []float32, n int) float32 {
	panic("tensor: AVX-512 dot kernel called on non-amd64 build")
}
