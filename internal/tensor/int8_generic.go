//go:build !amd64

package tensor

// Non-amd64 builds run the portable int8 fallback, which produces the same
// int32 accumulations as the vector kernels bit for bit.

func int8Vector() bool { return false }

func gemmInt8Kernel(acc []int32, w []int8, bp []uint8, kc4, nc, ldw, n int) {
	panic("tensor: int8 kernel called on non-amd64 build")
}

func dotInt8Kernel(w []int8, x []uint8, n int) int32 {
	panic("tensor: int8 dot kernel called on non-amd64 build")
}
