package tensor

import (
	"fmt"
	"testing"
)

// naiveGemm is the scalar reference: one accumulator per element, reduction
// index ascending — the documented summation order of Gemm.
func naiveGemm(dst, a, bt, bias []float32, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for l := 0; l < k; l++ {
				s += a[i*k+l] * bt[j*k+l]
			}
			dst[i*n+j] = s
		}
	}
}

func fillRand(r *RNG, s []float32) {
	for i := range s {
		s[i] = r.Float32()*2 - 1
	}
}

func TestGemmMatchesNaiveBitExact(t *testing.T) {
	r := NewRNG(7)
	// Sizes crossing the register tile (4) and depth block (256) boundaries,
	// including degenerate dims.
	cases := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 255}, {8, 3, 256},
		{7, 11, 257}, {16, 30, 515}, {33, 2, 600}, {2, 64, 1},
	}
	for _, c := range cases {
		a := make([]float32, c.m*c.k)
		bt := make([]float32, c.n*c.k)
		bias := make([]float32, c.m)
		fillRand(r, a)
		fillRand(r, bt)
		fillRand(r, bias)
		want := make([]float32, c.m*c.n)
		naiveGemm(want, a, bt, bias, c.m, c.n, c.k)
		for _, useBias := range []bool{true, false} {
			b := bias
			if !useBias {
				b = nil
				naiveGemm(want, a, bt, nil, c.m, c.n, c.k)
			}
			got := make([]float32, c.m*c.n)
			// Poison to catch unwritten elements.
			for i := range got {
				got[i] = 12345
			}
			Gemm(got, a, bt, b, c.m, c.n, c.k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("gemm %dx%dx%d bias=%v: element %d = %g, want %g (bit-exact)",
						c.m, c.n, c.k, useBias, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmParallelBitIdentical(t *testing.T) {
	r := NewRNG(11)
	m, n, k := 37, 61, 301
	a := make([]float32, m*k)
	bt := make([]float32, n*k)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bt)
	fillRand(r, bias)
	serial := make([]float32, m*n)
	Gemm(serial, a, bt, bias, m, n, k)
	for _, workers := range []int{2, 3, 4, 7, 64} {
		got := make([]float32, m*n)
		GemmParallel(got, a, bt, bias, m, n, k, workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: element %d = %g, want %g (bit-identical)", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestMatVecBiasMatchesScalar(t *testing.T) {
	r := NewRNG(13)
	for _, c := range []struct{ rows, cols int }{{1, 1}, {3, 9}, {4, 16}, {7, 300}, {101, 33}} {
		w := make([]float32, c.rows*c.cols)
		x := make([]float32, c.cols)
		bias := make([]float32, c.rows)
		fillRand(r, w)
		fillRand(r, x)
		fillRand(r, bias)
		want := make([]float32, c.rows)
		for i := 0; i < c.rows; i++ {
			s := bias[i]
			for l := 0; l < c.cols; l++ {
				s += w[i*c.cols+l] * x[l]
			}
			want[i] = s
		}
		got := make([]float32, c.rows)
		MatVecBias(got, w, x, bias, c.rows, c.cols)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("matvec %dx%d: row %d = %g, want %g", c.rows, c.cols, i, got[i], want[i])
			}
		}
		par := make([]float32, c.rows)
		MatVecBiasParallel(par, w, x, bias, c.rows, c.cols, 4)
		for i := range want {
			if par[i] != want[i] {
				t.Fatalf("parallel matvec %dx%d: row %d = %g, want %g", c.rows, c.cols, i, par[i], want[i])
			}
		}
	}
}

func TestGemmPanicsOnBadArgs(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	buf := make([]float32, 16)
	expectPanic("zero dim", func() { Gemm(buf, buf, buf, nil, 0, 4, 4) })
	expectPanic("short dst", func() { Gemm(make([]float32, 3), buf, buf, nil, 2, 2, 2) })
	expectPanic("short bias", func() { Gemm(buf, buf, buf, make([]float32, 1), 4, 2, 2) })
	expectPanic("matvec zero dim", func() { MatVecBias(buf, buf, buf, nil, 0, 4) })
	expectPanic("matvec short x", func() { MatVecBias(buf, buf, make([]float32, 1), nil, 2, 4) })
}

func BenchmarkGemm(b *testing.B) {
	// AlexNet conv2 geometry (one group): 128 x 729 x 1200.
	m, n, k := 128, 729, 1200
	r := NewRNG(3)
	a := make([]float32, m*k)
	bt := make([]float32, n*k)
	bias := make([]float32, m)
	fillRand(r, a)
	fillRand(r, bt)
	fillRand(r, bias)
	dst := make([]float32, m*n)
	b.SetBytes(int64(m) * int64(n) * int64(k) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(dst, a, bt, bias, m, n, k)
	}
}

func ExampleGemm() {
	// C = A * Bᵀ with A = [[1 2]; [3 4]], B columns [5 6] and [7 8].
	a := []float32{1, 2, 3, 4}
	bt := []float32{5, 6, 7, 8}
	dst := make([]float32, 4)
	Gemm(dst, a, bt, nil, 2, 2, 2)
	fmt.Println(dst)
	// Output: [17 23 39 53]
}
