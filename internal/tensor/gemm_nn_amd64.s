// AVX2 microkernel for the batched-inference GEMM (see gemm_nn.go).
//
// Bit-exactness: each dst element owns one accumulator lane; every depth
// step performs VMULPS followed by VADDPS — two separately rounded IEEE-754
// single-precision operations, exactly like the scalar reference — never a
// fused multiply-add.  Lanes never interact, so the result is bit-identical
// to the scalar loop for any blocking.

#include "textflag.h"

// func gemmNNKernel(dst, a, b []float32, kc, nc, ldb, lda int)
//
// Computes dst[r][j] += sum_l a[r][l]*b[l][j] for r in [0,4), j in [0,nc),
// l in [0,kc).  dst rows are ldb floats apart, a rows lda floats apart, b
// rows ldb floats apart.  nc must be a positive multiple of 8; kc positive.
// Only the slice base pointers are used; callers pre-offset them.
TEXT ·gemmNNKernel(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ kc+72(FP), CX
	MOVQ nc+80(FP), R8
	MOVQ ldb+88(FP), R9
	MOVQ lda+96(FP), R10
	SHLQ $2, R9              // row strides in bytes
	SHLQ $2, R10

	// a row pointers (advance via the shared l offset in SI below).
	MOVQ SI, R12             // a0
	LEAQ (R12)(R10*1), R13   // a1
	LEAQ (R13)(R10*1), R14   // a2
	LEAQ (R14)(R10*1), R15   // a3

	XORQ AX, AX              // column byte offset

colloop:
	// Load the 4x8 accumulator block from dst (bias-seeded partial sums).
	LEAQ (DI)(AX*1), DX
	VMOVUPS (DX), Y0
	ADDQ R9, DX
	VMOVUPS (DX), Y1
	ADDQ R9, DX
	VMOVUPS (DX), Y2
	ADDQ R9, DX
	VMOVUPS (DX), Y3

	LEAQ (BX)(AX*1), DX      // b walking pointer for this column block
	XORQ SI, SI              // depth byte offset into the a rows
	MOVQ CX, R11             // depth counter

kloop:
	VBROADCASTSS (R12)(SI*1), Y4
	VBROADCASTSS (R13)(SI*1), Y5
	VBROADCASTSS (R14)(SI*1), Y6
	VBROADCASTSS (R15)(SI*1), Y7
	VMOVUPS      (DX), Y8
	VMULPS       Y8, Y4, Y4
	VADDPS       Y4, Y0, Y0
	VMULPS       Y8, Y5, Y5
	VADDPS       Y5, Y1, Y1
	VMULPS       Y8, Y6, Y6
	VADDPS       Y6, Y2, Y2
	VMULPS       Y8, Y7, Y7
	VADDPS       Y7, Y3, Y3
	ADDQ $4, SI
	ADDQ R9, DX              // next b row
	DECQ R11
	JNE  kloop

	// Store the accumulator block back to dst.
	LEAQ (DI)(AX*1), DX
	VMOVUPS Y0, (DX)
	ADDQ R9, DX
	VMOVUPS Y1, (DX)
	ADDQ R9, DX
	VMOVUPS Y2, (DX)
	ADDQ R9, DX
	VMOVUPS Y3, (DX)

	ADDQ $32, AX             // next 8-column block
	SUBQ $8, R8
	JNE  colloop

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
