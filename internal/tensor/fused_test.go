package tensor_test

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/tensor"
)

// Tests of the fused-staging kernel layer: the strided GEMM entry points
// (NCHW-destination writes), the B-panel accumulator, and the int8 panel
// quantizer that together let nn's fused convolution skip the staged
// l-major colT buffer.

// fillPanel copies the kc x nc slab of b covering depth rows [kb, kb+kc)
// and columns [p0, p0+nc) into compact row-major layout (stride nc).
func fillPanel(panel, b []float32, ldb, kb, kc, p0, nc int) {
	for l := 0; l < kc; l++ {
		copy(panel[l*nc:(l+1)*nc], b[(kb+l)*ldb+p0:(kb+l)*ldb+p0+nc])
	}
}

// runFusedPanels computes dst = a.b + bias through GemmNNFastAccumPanel,
// walking a (kcStep, ncStep) grid like nn's fused convolution.  slack adds
// spare capacity to the panel's backing array: with slack >= 16 the sub-16
// column tails run the vector spill path, with slack 0 they fall back to
// the scalar kernel.
func runFusedPanels(dst []float32, pa *tensor.PackedA, b, bias []float32, n, k, ncStep, kcStep, slack int) {
	buf := make([]float32, ncStep*kcStep+slack)
	for p0 := 0; p0 < n; p0 += ncStep {
		nc := ncStep
		if p0+nc > n {
			nc = n - p0
		}
		for kb := 0; kb < k; kb += kcStep {
			kc := kcStep
			if kb+kc > k {
				kc = k - kb
			}
			panel := buf[:kc*nc]
			fillPanel(panel, b, n, kb, kc, p0, nc)
			tensor.GemmNNFastAccumPanel(dst[p0:], pa, panel, bias, kb, kc, nc, n)
		}
	}
}

// TestGemmNNFastStridedBitwise: the strided entry point with compact
// strides must be bit-identical to GemmNNFast, and a padded destination
// stride must neither change the computed rows nor touch the gap columns.
func TestGemmNNFastStridedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, n, k := 10, 173, 65
	a := randSlice(rng, m*k)
	bias := randSlice(rng, m)
	ldb := n + 5
	bWide := randSlice(rng, k*ldb)
	b := make([]float32, k*n)
	for l := 0; l < k; l++ {
		copy(b[l*n:(l+1)*n], bWide[l*ldb:l*ldb+n])
	}
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		pa := tensor.PackA(a, m, k)
		want := make([]float32, m*n)
		tensor.GemmNNFast(want, pa, b, bias, n, n)

		compact := make([]float32, m*n)
		tensor.GemmNNFastStrided(compact, pa, b, bias, n, n, n)
		for i := range want {
			if math.Float32bits(compact[i]) != math.Float32bits(want[i]) {
				t.Fatalf("tier %v: compact strided element %d differs: %v vs %v",
					tier, i, compact[i], want[i])
			}
		}

		// Padded destination (NCHW plane stride) and strided B source.
		ldd := n + 13
		padded := make([]float32, m*ldd)
		for i := range padded {
			padded[i] = float32(math.NaN())
		}
		for _, workers := range []int{1, 4} {
			tensor.GemmNNFastStridedParallel(padded, pa, bWide, bias, n, ldd, ldb, workers)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if math.Float32bits(padded[i*ldd+j]) != math.Float32bits(want[i*n+j]) {
						t.Fatalf("tier %v workers %d: strided (%d,%d) differs: %v vs %v",
							tier, workers, i, j, padded[i*ldd+j], want[i*n+j])
					}
				}
				for j := n; j < ldd && i*ldd+j < len(padded); j++ {
					if !math.IsNaN(float64(padded[i*ldd+j])) {
						t.Fatalf("tier %v workers %d: gap column (%d,%d) overwritten", tier, workers, i, j)
					}
				}
			}
		}
	})
}

// TestGemmNNFastAccumPanelComposes: walking ascending depth slabs over
// column panels must reproduce the full product within the fast tier's
// tolerance on every tier, for panel grids with and without column/depth
// tails, with and without spill slack in the panel buffer.
func TestGemmNNFastAccumPanelComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := []gemmShape{{8, 173, 147}, {10, 169, 96}, {4, 31, 9}, {9, 512, 50}}
	grids := []struct{ nc, kc, slack int }{
		{512, 256, 16}, // production fused grid, single panel for small n
		{64, 32, 16},   // many panels, vector spill tails
		{48, 50, 0},    // unaligned grid, scalar tail fallback
	}
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		for _, s := range shapes {
			a := randSlice(rng, s.m*s.k)
			b := randSlice(rng, s.k*s.n)
			bias := randSlice(rng, s.m)
			ref := make([]float32, s.m*s.n)
			tensor.GemmNN(ref, a, b, bias, s.m, s.n, s.k, s.n)
			pa := tensor.PackA(a, s.m, s.k)
			floor := 1e-3 * math.Sqrt(float64(s.k))
			tol := 1e-4 + 2e-5*math.Sqrt(float64(s.k))
			for _, g := range grids {
				got := make([]float32, s.m*s.n)
				for i := range got {
					got[i] = float32(math.NaN())
				}
				runFusedPanels(got, pa, b, bias, s.n, s.k, g.nc, g.kc, g.slack)
				if err := maxRelErr(got, ref, s.m, s.n, s.n, floor); err > tol {
					t.Fatalf("tier %v shape %dx%dx%d grid (%d,%d,slack %d): max rel err %.3g > %.3g",
						tier, s.m, s.n, s.k, g.nc, g.kc, g.slack, err, tol)
				}
			}
		}
	})
}

// TestGemmNNFastAccumPanelGridInvariant: with spill slack available, the
// per-element summation order depends only on the depth-slab walk — full
// 4-row tiles feed every column through the same FMA chain whether it sits
// in the vector body or the spill tail.  Different column-panel widths over
// the same kc grid must therefore produce identical bytes (this is what
// makes the fused batched conv deterministic for any per-image panel grid).
func TestGemmNNFastAccumPanelGridInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, n, k := 8, 173, 96
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	bias := randSlice(rng, m)
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		pa := tensor.PackA(a, m, k)
		base := make([]float32, m*n)
		runFusedPanels(base, pa, b, bias, n, k, n, 32, 16)
		for _, nc := range []int{64, 48, 173} {
			got := make([]float32, m*n)
			runFusedPanels(got, pa, b, bias, n, k, nc, 32, 16)
			for i := range base {
				if math.Float32bits(got[i]) != math.Float32bits(base[i]) {
					t.Fatalf("tier %v nc=%d: element %d differs: %v vs %v",
						tier, nc, i, got[i], base[i])
				}
			}
		}
	})
}

// TestQuantizePanelU8MatchesPackCols: slab-wise panel quantization
// (BeginPanelU8 + ascending QuantizePanelU8 calls) must produce exactly the
// bytes of the one-shot PackColsU8 given the same activation scale.
func TestQuantizePanelU8MatchesPackCols(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, n, k := 6, 173, 37
	pw := tensor.PackInt8(randSlice(rng, m*k), m, k)
	kPad := pw.KPad()
	b := randSlice(rng, k*n)
	want := make([]uint8, tensor.Int8PackedLen(kPad, n))
	scale := tensor.PackColsU8(want, b, k, n, n, kPad)

	got := make([]uint8, tensor.Int8PackedLen(kPad, n))
	tensor.BeginPanelU8(got, k, n, kPad)
	inv := 1 / scale
	const kcStep = 16
	panel := make([]float32, kcStep*n)
	for kb := 0; kb < k; kb += kcStep {
		kc := kcStep
		if kb+kc > k {
			kc = k - kb
		}
		fillPanel(panel[:kc*n], b, n, kb, kc, 0, n)
		tensor.QuantizePanelU8(got, panel[:kc*n], kb, kc, n, kPad, inv)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packed byte %d differs: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestGemmInt8PanelMatchesGemmInt8: integer accumulation is exact, so the
// fused panel walk must reproduce the staged int8 GEMM bit for bit on every
// tier, for any panel grid sharing the activation scale.
func TestGemmInt8PanelMatchesGemmInt8(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, n, k := 10, 173, 37
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	bias := randSlice(rng, m)
	forceTier(t, func(t *testing.T, tier tensor.SIMDTier) {
		pw := tensor.PackInt8(a, m, k)
		kPad := pw.KPad()
		bp := make([]uint8, tensor.Int8PackedLen(kPad, n))
		scale := tensor.PackColsU8(bp, b, k, n, n, kPad)
		acc := make([]int32, m*(n+16))
		want := make([]float32, m*n)
		tensor.GemmInt8(want, pw, bp, acc, bias, scale, n, 1)

		inv := 1 / scale
		for _, ncStep := range []int{64, 48, 173} {
			got := make([]float32, m*n)
			u8p := make([]uint8, tensor.Int8PackedLen(kPad, ncStep))
			panel := make([]float32, 16*ncStep)
			for p0 := 0; p0 < n; p0 += ncStep {
				nc := ncStep
				if p0+nc > n {
					nc = n - p0
				}
				tensor.BeginPanelU8(u8p, k, nc, kPad)
				for kb := 0; kb < k; kb += 16 {
					kc := 16
					if kb+kc > k {
						kc = k - kb
					}
					fillPanel(panel[:kc*nc], b, n, kb, kc, p0, nc)
					tensor.QuantizePanelU8(u8p, panel[:kc*nc], kb, kc, nc, kPad, inv)
				}
				tensor.GemmInt8Panel(got[p0:], pw, u8p, acc, bias, scale, nc, n)
			}
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("tier %v nc=%d: element %d differs: %v vs %v",
						tier, ncStep, i, got[i], want[i])
				}
			}
		}
	})
}
