//go:build !amd64

package tensor

// Non-amd64 platforms run GemmNN entirely on the portable scalar kernel,
// which shares the summation order of the vector microkernel bit for bit.

const gemmNNVector = false

// gemmNNKernel is never called when gemmNNVector is false.
func gemmNNKernel(dst, a, b []float32, kc, nc, ldb, lda int) {
	panic("tensor: vector gemm kernel unavailable")
}
