package tensor

import (
	"fmt"

	"tango/internal/par"
)

// This file implements the float32 matrix kernels behind the native compute
// engine: a cache-blocked, register-tiled GEMM shared by the im2col
// convolution path, the fully-connected layers and the recurrent gate
// mat-vecs.
//
// Determinism contract: every output element dst[i*n+j] is computed as
//
//	bias[i] + a[i][0]*bt[j][0] + a[i][1]*bt[j][1] + ... + a[i][k-1]*bt[j][k-1]
//
// accumulated left to right in float32, exactly like a scalar dot product.
// Depth blocking processes l in ascending panels with a single persistent
// accumulator per element, and row tiling gives each element its own
// accumulator, so the summation order — and therefore the bit pattern of the
// result — is independent of the blocking parameters and of the worker
// count.  This is what lets the GEMM path be validated bit-exactly against
// the direct convolution reference, serially and in parallel.
const (
	// gemmMR is the register tile height: rows of A processed together so
	// one streamed element of B feeds four independent accumulators.
	gemmMR = 4
	// gemmKC is the depth blocking factor: the B panel touched by one pass,
	// n x gemmKC floats, stays L2-resident while every row tile streams it.
	gemmKC = 256
)

// Gemm computes dst = A * Bᵀ + bias on row-major float32 buffers:
// A is m x k, bt holds B transposed as n x k (so row j of bt is column j of
// B, contiguous in memory), and dst is m x n.  bias has one element per
// output row and may be nil for zero.  dst is fully overwritten.
//
// The im2col convolution lowering stores one receptive-field patch per bt
// row, which makes both operands of the inner dot product contiguous.
func Gemm(dst, a, bt, bias []float32, m, n, k int) {
	checkGemmArgs(dst, a, bt, bias, m, n, k)
	gemmRows(dst, a, bt, bias, n, k, 0, m)
}

// GemmParallel is Gemm with the row dimension split into contiguous panels
// executed on up to workers goroutines.  Each output element is produced by
// exactly one worker with the same summation order as the serial kernel, so
// the result is bit-identical to Gemm for any worker count.
func GemmParallel(dst, a, bt, bias []float32, m, n, k, workers int) {
	checkGemmArgs(dst, a, bt, bias, m, n, k)
	// The serial case must not touch the closure below: constructing it
	// heap-allocates (it escapes into par.ForEach), which would break the
	// engine's zero-alloc steady state.
	if serialRows(m, int64(m)*int64(n)*int64(k), workers) {
		gemmRows(dst, a, bt, bias, n, k, 0, m)
		return
	}
	forEachRowPanel(m, workers, func(r0, r1 int) {
		gemmRows(dst, a, bt, bias, n, k, r0, r1)
	})
}

// serialRows reports whether a row-panel problem should run serially:
// explicit single worker, too few rows to tile, or too little total work to
// amortize goroutine fan-out.
func serialRows(rows int, volume int64, workers int) bool {
	return workers <= 1 || rows < 2*gemmMR || volume < 1<<15
}

// forEachRowPanel splits rows into contiguous register-tile-aligned panels
// and runs fn(r0, r1) for each on up to workers goroutines.  Callers gate
// with serialRows first.  Panel boundaries never affect results: each output
// row belongs to exactly one panel.
func forEachRowPanel(rows, workers int, fn func(r0, r1 int)) {
	if workers > rows/gemmMR {
		workers = rows / gemmMR
	}
	chunk := (rows + workers - 1) / workers
	// Align panel boundaries to the register tile so only the last panel
	// runs the remainder rows.
	chunk = (chunk + gemmMR - 1) / gemmMR * gemmMR
	panels := (rows + chunk - 1) / chunk
	_ = par.ForEach(workers, panels, func(p int) error {
		r0 := p * chunk
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		fn(r0, r1)
		return nil
	})
}

func checkGemmArgs(dst, a, bt, bias []float32, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: gemm dims must be positive, got m=%d n=%d k=%d", m, n, k))
	}
	if len(dst) < m*n || len(a) < m*k || len(bt) < n*k {
		panic(fmt.Sprintf("tensor: gemm buffers too small: dst=%d a=%d bt=%d for m=%d n=%d k=%d",
			len(dst), len(a), len(bt), m, n, k))
	}
	if bias != nil && len(bias) < m {
		panic(fmt.Sprintf("tensor: gemm bias has %d elements, want %d", len(bias), m))
	}
}

// gemmRows runs the blocked kernel over output rows [r0, r1).  The depth
// loop is outermost so the bt panel (n x kc floats) is reused by every row
// tile while it is cache-hot; partial sums persist in dst between panels.
func gemmRows(dst, a, bt, bias []float32, n, k, r0, r1 int) {
	for kb := 0; kb < k; kb += gemmKC {
		kc := k - kb
		if kc > gemmKC {
			kc = gemmKC
		}
		first := kb == 0
		i := r0
		for ; i+gemmMR <= r1; i += gemmMR {
			a0 := a[i*k+kb : i*k+kb+kc]
			a1 := a[(i+1)*k+kb : (i+1)*k+kb+kc]
			a2 := a[(i+2)*k+kb : (i+2)*k+kb+kc]
			a3 := a[(i+3)*k+kb : (i+3)*k+kb+kc]
			d0 := dst[i*n : i*n+n]
			d1 := dst[(i+1)*n : (i+1)*n+n]
			d2 := dst[(i+2)*n : (i+2)*n+n]
			d3 := dst[(i+3)*n : (i+3)*n+n]
			var b0, b1, b2, b3 float32
			if bias != nil {
				b0, b1, b2, b3 = bias[i], bias[i+1], bias[i+2], bias[i+3]
			}
			for j := 0; j < n; j++ {
				c := bt[j*k+kb : j*k+kb+kc]
				a0 := a0[:len(c)]
				a1 := a1[:len(c)]
				a2 := a2[:len(c)]
				a3 := a3[:len(c)]
				var s0, s1, s2, s3 float32
				if first {
					s0, s1, s2, s3 = b0, b1, b2, b3
				} else {
					s0, s1, s2, s3 = d0[j], d1[j], d2[j], d3[j]
				}
				for l, cv := range c {
					s0 += a0[l] * cv
					s1 += a1[l] * cv
					s2 += a2[l] * cv
					s3 += a3[l] * cv
				}
				d0[j] = s0
				d1[j] = s1
				d2[j] = s2
				d3[j] = s3
			}
		}
		for ; i < r1; i++ {
			ar := a[i*k+kb : i*k+kb+kc]
			d := dst[i*n : i*n+n]
			var bi float32
			if bias != nil {
				bi = bias[i]
			}
			for j := 0; j < n; j++ {
				c := bt[j*k+kb : j*k+kb+kc]
				ar := ar[:len(c)]
				s := bi
				if !first {
					s = d[j]
				}
				for l, cv := range c {
					s += ar[l] * cv
				}
				d[j] = s
			}
		}
	}
}

// MatVecBias computes dst = W*x + bias for a rows x cols row-major matrix,
// with the register-tiled kernel: four matrix rows share each streamed
// element of x.  Each dst element accumulates its dot product left to right
// in float32 starting from its bias (zero when bias is nil), matching the
// scalar reference loop bit for bit.  dst is fully overwritten.
func MatVecBias(dst, w, x, bias []float32, rows, cols int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	matVecRows(dst, w, x, bias, cols, 0, rows)
}

// MatVecBiasParallel is MatVecBias with rows split across up to workers
// goroutines; the result is bit-identical to the serial kernel.
func MatVecBiasParallel(dst, w, x, bias []float32, rows, cols, workers int) {
	checkMatVecArgs(dst, w, x, bias, rows, cols)
	if serialRows(rows, int64(rows)*int64(cols), workers) {
		matVecRows(dst, w, x, bias, cols, 0, rows)
		return
	}
	forEachRowPanel(rows, workers, func(r0, r1 int) {
		matVecRows(dst, w, x, bias, cols, r0, r1)
	})
}

func checkMatVecArgs(dst, w, x, bias []float32, rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: matvec dims must be positive, got %dx%d", rows, cols))
	}
	if len(dst) < rows || len(w) < rows*cols || len(x) < cols {
		panic(fmt.Sprintf("tensor: matvec buffers too small: dst=%d w=%d x=%d for %dx%d",
			len(dst), len(w), len(x), rows, cols))
	}
	if bias != nil && len(bias) < rows {
		panic(fmt.Sprintf("tensor: matvec bias has %d elements, want %d", len(bias), rows))
	}
}

func matVecRows(dst, w, x, bias []float32, cols, r0, r1 int) {
	x = x[:cols]
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		w0 := w[i*cols : i*cols+cols]
		w1 := w[(i+1)*cols : (i+1)*cols+cols]
		w2 := w[(i+2)*cols : (i+2)*cols+cols]
		w3 := w[(i+3)*cols : (i+3)*cols+cols]
		w0 = w0[:len(x)]
		w1 = w1[:len(x)]
		w2 = w2[:len(x)]
		w3 = w3[:len(x)]
		var s0, s1, s2, s3 float32
		if bias != nil {
			s0, s1, s2, s3 = bias[i], bias[i+1], bias[i+2], bias[i+3]
		}
		for l, xv := range x {
			s0 += w0[l] * xv
			s1 += w1[l] * xv
			s2 += w2[l] * xv
			s3 += w3[l] * xv
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < r1; i++ {
		row := w[i*cols : i*cols+cols]
		row = row[:len(x)]
		var s float32
		if bias != nil {
			s = bias[i]
		}
		for l, xv := range x {
			s += row[l] * xv
		}
		dst[i] = s
	}
}
