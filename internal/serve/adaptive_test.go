package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// histWith builds a cumulative histogram whose samples all land in the
// bucket holding d, with the given count.
func histWith(d time.Duration, count uint64) []uint64 {
	h := make([]uint64, len(LatencyBuckets)+1)
	h[latencyBucket(d)] = count
	return h
}

func TestLatencyBucketBounds(t *testing.T) {
	if got := latencyBucket(0); got != 0 {
		t.Fatalf("bucket(0) = %d, want 0", got)
	}
	for i, ub := range LatencyBuckets {
		if got := latencyBucket(ub); got != i {
			t.Errorf("bucket(%v) = %d, want %d (bounds are inclusive)", ub, got, i)
		}
		if got := latencyBucket(ub + 1); got != i+1 {
			t.Errorf("bucket(%v+1ns) = %d, want %d", ub, got, i+1)
		}
	}
	last := LatencyBuckets[len(LatencyBuckets)-1]
	if got := latencyBucket(10 * last); got != len(LatencyBuckets) {
		t.Fatalf("bucket(huge) = %d, want +Inf slot %d", got, len(LatencyBuckets))
	}
}

func TestHistogramP99Delta(t *testing.T) {
	// 100 samples at 1ms, then 100 more at 100ms: the delta p99 must see
	// only the second hundred.
	prev := histWith(time.Millisecond, 100)
	cur := histWith(time.Millisecond, 100)
	cur[latencyBucket(100*time.Millisecond)] += 100
	if got := HistogramP99(cur, prev, 100); got != 100*time.Millisecond {
		t.Fatalf("delta p99 = %v, want 100ms", got)
	}
	// Full-history p99 over both hundreds still lands in the slow bucket
	// (rank 198 of 200).
	if got := HistogramP99(cur, nil, 200); got != 100*time.Millisecond {
		t.Fatalf("cumulative p99 = %v, want 100ms", got)
	}
	// 99 fast + 1 slow: rank ceil(0.99*100)=99 stays in the fast bucket.
	mixed := histWith(time.Millisecond, 99)
	mixed[latencyBucket(time.Second)] = 1
	if got := HistogramP99(mixed, nil, 100); got != time.Millisecond {
		t.Fatalf("99/1 p99 = %v, want 1ms", got)
	}
	// 9 fast + 1 slow: rank ceil(0.99*10)=10 reaches the slow bucket.
	small := histWith(time.Millisecond, 9)
	small[latencyBucket(time.Second)] = 1
	if got := HistogramP99(small, nil, 10); got != time.Second {
		t.Fatalf("9/1 p99 = %v, want 1s", got)
	}
	if got := HistogramP99(nil, nil, 0); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	// +Inf samples report pessimistically: twice the last finite bound.
	inf := make([]uint64, len(LatencyBuckets)+1)
	inf[len(LatencyBuckets)] = 10
	want := 2 * LatencyBuckets[len(LatencyBuckets)-1]
	if got := HistogramP99(inf, nil, 10); got != want {
		t.Fatalf("+Inf p99 = %v, want %v", got, want)
	}
}

func TestControllerStartsAtFloor(t *testing.T) {
	c := NewController(ControllerConfig{SLO: 100 * time.Millisecond, MaxBatch: 16})
	if got := c.Delay(); got != 0 {
		t.Fatalf("cold controller delay = %v, want 0 (floor)", got)
	}
	c = NewController(ControllerConfig{SLO: 100 * time.Millisecond, MaxBatch: 16, MinDelay: time.Millisecond})
	if got := c.Delay(); got != time.Millisecond {
		t.Fatalf("cold controller delay = %v, want 1ms floor", got)
	}
}

func TestControllerCeilingIsHalfSLO(t *testing.T) {
	// An explicit MaxDelay above SLO/2 is clamped: the window alone must
	// never spend more than half the latency budget.
	c := NewController(ControllerConfig{SLO: 10 * time.Millisecond, MaxBatch: 2, MaxDelay: time.Second})
	now := time.Unix(0, 0)
	hist := make([]uint64, len(LatencyBuckets)+1)
	c.Observe(now, 0, hist, 0) // arm the clock
	for i := 0; i < 50; i++ {
		now = now.Add(c.cfg.Interval)
		c.Observe(now, 100, hist, 0) // heavy pressure, no latency samples
	}
	if got, want := c.Delay(), 5*time.Millisecond; got != want {
		t.Fatalf("saturated window = %v, want SLO/2 = %v", got, want)
	}
}

func TestControllerGrowsUnderPressure(t *testing.T) {
	c := NewController(ControllerConfig{SLO: time.Second, MaxBatch: 16})
	now := time.Unix(0, 0)
	hist := histWith(time.Millisecond, 100) // p99 well under SLO
	c.Observe(now, 0, hist, 100)

	// Queue at half the max batch: grow.
	now = now.Add(c.cfg.Interval)
	d, changed := c.Observe(now, 8, hist, 100)
	if !changed || d != growStep {
		t.Fatalf("first grow: delay = %v changed=%v, want %v true", d, changed, growStep)
	}
	now = now.Add(c.cfg.Interval)
	d, _ = c.Observe(now, 8, hist, 100)
	if want := growStep*3/2 + growStep; d != want {
		t.Fatalf("second grow: delay = %v, want %v", d, want)
	}
	if d > c.cfg.MaxDelay {
		t.Fatalf("grew past ceiling: %v > %v", d, c.cfg.MaxDelay)
	}
}

func TestControllerHalvesOverSLO(t *testing.T) {
	c := NewController(ControllerConfig{SLO: 10 * time.Millisecond, MaxBatch: 16})
	now := time.Unix(0, 0)
	fast := histWith(time.Millisecond, 100)
	c.Observe(now, 0, fast, 100)

	// Pump the window to the ceiling under pressure.
	for i := 0; i < 20; i++ {
		now = now.Add(c.cfg.Interval)
		c.Observe(now, 16, fast, 100)
	}
	if c.Delay() != 5*time.Millisecond {
		t.Fatalf("setup: window = %v, want 5ms ceiling", c.Delay())
	}

	// New samples blow the SLO: the window halves even though the queue is
	// still deep (SLO violation outranks pressure).
	slow := append([]uint64(nil), fast...)
	slow[latencyBucket(50*time.Millisecond)] += 100
	now = now.Add(c.cfg.Interval)
	d, changed := c.Observe(now, 16, slow, 200)
	if !changed || d != 2500*time.Microsecond {
		t.Fatalf("over-SLO: delay = %v changed=%v, want 2.5ms true", d, changed)
	}
}

func TestControllerDecaysWhenIdle(t *testing.T) {
	c := NewController(ControllerConfig{SLO: time.Second, MaxBatch: 16, MinDelay: time.Millisecond})
	now := time.Unix(0, 0)
	hist := histWith(time.Millisecond, 10)
	c.Observe(now, 0, hist, 10)

	// Grow first.
	for i := 0; i < 30; i++ {
		now = now.Add(c.cfg.Interval)
		c.Observe(now, 16, hist, 10)
	}
	high := c.Delay()
	if high <= time.Millisecond {
		t.Fatalf("setup: window did not grow: %v", high)
	}

	// Light load: decay 0.75x per interval down to the floor.
	prev := high
	for i := 0; i < 100; i++ {
		now = now.Add(c.cfg.Interval)
		d, _ := c.Observe(now, 0, hist, 10)
		if d > prev {
			t.Fatalf("decay increased window: %v -> %v", prev, d)
		}
		prev = d
	}
	if prev != time.Millisecond {
		t.Fatalf("decayed window = %v, want 1ms floor", prev)
	}
}

func TestControllerRateLimited(t *testing.T) {
	c := NewController(ControllerConfig{SLO: time.Second, MaxBatch: 16, Interval: 10 * time.Millisecond})
	now := time.Unix(0, 0)
	hist := make([]uint64, len(LatencyBuckets)+1)
	c.Observe(now, 0, hist, 0)

	// Observations inside the interval change nothing, however loud the
	// pressure signal.
	for i := 0; i < 5; i++ {
		now = now.Add(time.Millisecond)
		if d, changed := c.Observe(now, 100, hist, 0); changed || d != 0 {
			t.Fatalf("intra-interval observe changed window: %v", d)
		}
	}
	// Crossing the interval applies the pending signal.
	now = now.Add(10 * time.Millisecond)
	if d, changed := c.Observe(now, 100, hist, 0); !changed || d != growStep {
		t.Fatalf("post-interval observe: delay = %v changed=%v, want %v true", d, changed, growStep)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		Submitted: 10, Completed: 8, Batches: 4,
		BatchSizeHist: []uint64{2, 1, 0, 1},
		LatencyHist:   histWith(time.Millisecond, 8),
		LatencySum:    8 * time.Millisecond,
		LatencyP99:    time.Millisecond, LatencySamples: 8,
	}
	b := Stats{
		Submitted: 6, Completed: 6, Batches: 2,
		BatchSizeHist: []uint64{0, 0, 2, 0},
		LatencyHist:   histWith(10*time.Millisecond, 6),
		LatencySum:    60 * time.Millisecond,
		LatencyP99:    10 * time.Millisecond, LatencySamples: 6,
		CurrentDelay: 3 * time.Millisecond,
	}
	m := Merge(a, b)
	if m.Submitted != 16 || m.Completed != 14 || m.Batches != 6 {
		t.Fatalf("counters: %+v", m)
	}
	if m.BatchSizeHist[0] != 2 || m.BatchSizeHist[2] != 2 {
		t.Fatalf("batch hist not summed: %v", m.BatchSizeHist)
	}
	if m.LatencyHist[latencyBucket(time.Millisecond)] != 8 ||
		m.LatencyHist[latencyBucket(10*time.Millisecond)] != 6 {
		t.Fatalf("latency hist not summed: %v", m.LatencyHist)
	}
	if m.LatencySum != 68*time.Millisecond {
		t.Fatalf("latency sum = %v", m.LatencySum)
	}
	if want := float64(14) / 6; m.MeanBatchSize != want {
		t.Fatalf("mean batch size = %v, want %v", m.MeanBatchSize, want)
	}
	// Live side (b) wins the unmergeable window percentiles and delay.
	if m.LatencyP99 != 10*time.Millisecond || m.LatencySamples != 6 {
		t.Fatalf("percentiles: p99=%v samples=%d", m.LatencyP99, m.LatencySamples)
	}
	if m.CurrentDelay != 3*time.Millisecond {
		t.Fatalf("current delay = %v", m.CurrentDelay)
	}
	// A dead live side keeps the old percentiles.
	m = Merge(a, Stats{})
	if m.LatencyP99 != time.Millisecond || m.LatencySamples != 8 {
		t.Fatalf("merge with empty: p99=%v samples=%d", m.LatencyP99, m.LatencySamples)
	}
}

// TestBatcherAdaptiveSLOCeiling checks the end-to-end wiring: a Batcher
// built with an SLO derives an adaptive window capped at min(MaxDelay,
// SLO/2) and starts at the floor.
func TestBatcherAdaptiveSLOCeiling(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 8, MaxDelay: time.Second, SLO: 20 * time.Millisecond},
		func(ins []int) ([]int, error) { return ins, nil })
	defer b.Close()
	if b.ctl == nil {
		t.Fatal("SLO did not enable the controller")
	}
	if got, want := b.ctl.cfg.MaxDelay, 10*time.Millisecond; got != want {
		t.Fatalf("adaptive ceiling = %v, want %v (SLO/2)", got, want)
	}
	if b.Delay() != 0 {
		t.Fatalf("adaptive window starts at %v, want 0", b.Delay())
	}
	if b.Stats().CurrentDelay != 0 {
		t.Fatalf("stats window = %v, want 0", b.Stats().CurrentDelay)
	}
}

// TestBatcherAdaptiveBeatsStaticSequential is the light-load half of the
// adaptive claim: sequential lone requests against a static batcher pay the
// full max-delay window every time, while the adaptive window stays at zero
// (no queue pressure, no SLO violation) and serves them immediately.
func TestBatcherAdaptiveBeatsStaticSequential(t *testing.T) {
	const n = 10
	run := func(ins []int) ([]int, error) { return ins, nil }

	static := NewBatcher(Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond}, run)
	defer static.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := static.Do(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	staticElapsed := time.Since(start)
	// Each lone request waits out the full static window: a hard floor.
	if staticElapsed < n*50*time.Millisecond {
		t.Fatalf("static elapsed %v, expected >= %v", staticElapsed, n*50*time.Millisecond)
	}

	adaptive := NewBatcher(Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, SLO: 40 * time.Millisecond}, run)
	defer adaptive.Close()
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := adaptive.Do(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	adaptiveElapsed := time.Since(start)
	if adaptiveElapsed*2 >= staticElapsed {
		t.Fatalf("adaptive %v not clearly faster than static %v at light load", adaptiveElapsed, staticElapsed)
	}
	if d := adaptive.Delay(); d != 0 {
		t.Fatalf("adaptive window = %v after light load, want 0", d)
	}
}

// TestBatcherAdaptiveGrowsUnderPressure checks the other half: a deep queue
// of concurrent requests pushes the adaptive window above zero (trading
// delay for batch fill) while the SLO keeps it bounded by SLO/2.
func TestBatcherAdaptiveGrowsUnderPressure(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 4, QueueDepth: 256, SLO: 5 * time.Second},
		func(ins []int) ([]int, error) {
			time.Sleep(3 * time.Millisecond)
			return ins, nil
		})
	defer b.Close()

	stop := make(chan struct{})
	var maxDelay atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := int64(b.Delay()); d > maxDelay.Load() {
				maxDelay.Store(d)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Do(context.Background(), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)

	if maxDelay.Load() == 0 {
		t.Fatal("adaptive window never grew under a 64-deep queue")
	}
	if got, ceil := time.Duration(maxDelay.Load()), 2500*time.Millisecond; got > ceil {
		t.Fatalf("window %v exceeded SLO/2 ceiling %v", got, ceil)
	}
	if mean := b.Stats().MeanBatchSize; mean <= 1 {
		t.Fatalf("mean batch size %v under pressure, want > 1", mean)
	}
}
