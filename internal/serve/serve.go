// Package serve implements the dynamic-batching request scheduler behind
// tango.Server: concurrent independent requests are coalesced into batches
// so the batched compute engine (ClassifyBatch / ForecastBatch) is what runs
// under load, not N single-sample passes.
//
// The core type is the generic Batcher.  Requests enter a bounded queue
// (backpressure: a full queue rejects immediately with ErrQueueFull rather
// than blocking the client); a single dispatcher goroutine forms batches
// under a max-batch-size / max-queue-delay policy and runs them through a
// caller-supplied batch function.  Closing a batcher drains every queued
// request before returning, so graceful shutdown loses nothing that was
// accepted.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/resilience"
)

// PointBatchRun is the fault-injection site fired at the top of every
// batch-function invocation (including bisection sub-batches): a chaos
// plan can make batch runs fail, stall or panic, and what is under test
// is that the batcher degrades per-sample instead of crashing or failing
// whole batches.
var PointBatchRun = resilience.Register("serve.batch.run", "before each batch-function run (incl. bisection sub-batches)")

// ErrQueueFull is returned by Do when the request queue is at capacity.
// It is a fast, non-blocking rejection: the caller can retry, shed load, or
// surface it as HTTP 429.
var ErrQueueFull = errors.New("serve: request queue full")

// ErrClosed is returned by Do once Close has begun: the batcher no longer
// accepts new requests (already-queued requests still complete).
var ErrClosed = errors.New("serve: batcher closed")

// Config sets the batching policy of a Batcher.
type Config struct {
	// MaxBatch is the largest batch the dispatcher forms.  A batch is
	// flushed as soon as it reaches MaxBatch requests.  Values below 1 use
	// DefaultMaxBatch.
	MaxBatch int
	// MaxDelay bounds how long the oldest request of a forming batch waits
	// for company.  Zero flushes as soon as the queue is momentarily empty
	// (greedy batching with no artificial delay).
	MaxDelay time.Duration
	// QueueDepth is the bounded queue capacity; submissions beyond it are
	// rejected with ErrQueueFull.  Values below 1 use DefaultQueueDepth.
	QueueDepth int
	// SLO, when positive, turns the fixed MaxDelay window into an adaptive
	// one: a per-batcher Controller tunes the window between zero and
	// min(MaxDelay, SLO/2) from observed queue depth and p99 latency so the
	// batcher meets the per-request p99 target at light load and still
	// fills batches under pressure.  Zero keeps the static MaxDelay window.
	SLO time.Duration
}

// Policy defaults, used when the corresponding Config field is unset.
const (
	DefaultMaxBatch   = 16
	DefaultQueueDepth = 256
)

// WithDefaults returns the config with unset fields filled in; it is the
// single source of the effective policy (NewBatcher applies it, and callers
// sizing prewarm work against the effective MaxBatch reuse it).
func (c Config) WithDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.SLO < 0 {
		c.SLO = 0
	}
	return c
}

// outcome is the terminal state of one request.
type outcome[Out any] struct {
	out Out
	err error
}

// request is one queued unit of work.
type request[In, Out any] struct {
	ctx context.Context
	in  In
	// done is buffered (capacity 1) so the dispatcher never blocks on a
	// caller that gave up waiting.
	done chan outcome[Out]
	enq  time.Time
}

// Batcher coalesces concurrent Do calls into batched invocations of a run
// function.  In is the per-request input, Out the per-request result; run
// must return exactly one Out per In, in order.
type Batcher[In, Out any] struct {
	cfg   Config
	run   func([]In) ([]Out, error)
	stats collector

	// delay is the batch window the dispatcher honours, in nanoseconds.
	// Static batchers pin it to cfg.MaxDelay; adaptive ones (cfg.SLO > 0)
	// have the controller retune it after every flush.  It is atomic only
	// so Stats/Delay can read it from other goroutines.
	delay atomic.Int64
	// ctl and ctlHist belong to the dispatcher goroutine alone: the
	// controller's state is unsynchronized, and ctlHist is its reusable
	// histogram-snapshot buffer.
	ctl     *Controller
	ctlHist []uint64

	// mu guards closed and orders Do's channel send against Close's
	// close(reqs): submissions hold it shared, Close exclusively.
	mu     sync.RWMutex
	closed bool
	reqs   chan request[In, Out]
	// done is closed when the dispatcher goroutine exits (queue fully
	// drained).
	done chan struct{}
}

// NewBatcher starts a batcher with the given policy over a batch run
// function.  The caller owns the returned batcher and must Close it to stop
// the dispatcher goroutine.
func NewBatcher[In, Out any](cfg Config, run func([]In) ([]Out, error)) *Batcher[In, Out] {
	cfg = cfg.WithDefaults()
	b := &Batcher[In, Out]{
		cfg:  cfg,
		run:  run,
		reqs: make(chan request[In, Out], cfg.QueueDepth),
		done: make(chan struct{}),
	}
	b.stats.init(cfg.MaxBatch)
	if cfg.SLO > 0 {
		b.ctl = NewController(ControllerConfig{
			SLO:      cfg.SLO,
			MaxBatch: cfg.MaxBatch,
			MaxDelay: cfg.MaxDelay,
		})
		b.ctlHist = make([]uint64, len(LatencyBuckets)+1)
		b.delay.Store(int64(b.ctl.Delay()))
	} else {
		b.delay.Store(int64(cfg.MaxDelay))
	}
	go b.dispatch()
	return b
}

// Config returns the batcher's effective (defaulted) policy.
func (b *Batcher[In, Out]) Config() Config { return b.cfg }

// QueueLen returns the number of requests currently waiting in the
// bounded queue; QueueCap returns the queue's capacity.  Together they
// give admission layers the occupancy signal for priority-based load
// shedding.
func (b *Batcher[In, Out]) QueueLen() int { return len(b.reqs) }

// QueueCap returns the bounded queue's capacity.
func (b *Batcher[In, Out]) QueueCap() int { return cap(b.reqs) }

// Delay returns the batch window currently in effect: cfg.MaxDelay for a
// static batcher, the adaptive controller's live window otherwise.
func (b *Batcher[In, Out]) Delay() time.Duration { return time.Duration(b.delay.Load()) }

// Do submits one request and blocks until its batch has run or ctx is done.
// A nil ctx is treated as context.Background().  It returns ErrQueueFull
// immediately when the queue is at capacity and ErrClosed after Close has
// begun.  The input is retained until the batch runs; callers must not
// mutate it before Do returns.
func (b *Batcher[In, Out]) Do(ctx context.Context, in In) (Out, error) {
	var zero Out
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast-fail pre-canceled requests: a dead request must not occupy a
	// bounded queue slot until batch formation gets around to dropping it.
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	r := request[In, Out]{
		ctx:  ctx,
		in:   in,
		done: make(chan outcome[Out], 1),
		enq:  time.Now(),
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.stats.rejectClosed()
		return zero, ErrClosed
	}
	// Count the submission BEFORE the request becomes visible to the
	// dispatcher: the channel send happens-before the dispatcher's receive,
	// so a Stats snapshot can never observe a request completed but not
	// submitted (Completed > Submitted).  A bounced send undoes the count
	// inside rejectFull.
	b.stats.submit()
	select {
	case b.reqs <- r:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.stats.rejectFull()
		return zero, ErrQueueFull
	}
	select {
	case o := <-r.done:
		return o.out, o.err
	case <-ctx.Done():
		// Both arms may be ready at once (deadline lands as the batch
		// completes); prefer the computed result over discarding it.
		select {
		case o := <-r.done:
			return o.out, o.err
		default:
		}
		// The dispatcher still runs or drops the queued request; its
		// result lands in the buffered done channel and is discarded.
		return zero, ctx.Err()
	}
}

// Close stops accepting requests, waits for every already-queued request to
// be served (graceful drain), and stops the dispatcher.  It is idempotent
// and safe to call concurrently with Do.
func (b *Batcher[In, Out]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.reqs)
	}
	b.mu.Unlock()
	<-b.done
}

// Stats returns a point-in-time snapshot of the batcher's counters.
func (b *Batcher[In, Out]) Stats() Stats {
	s := b.stats.snapshot()
	s.CurrentDelay = b.Delay()
	return s
}

// dispatch is the single scheduler goroutine: it blocks for the first
// request, greedily absorbs whatever else is already queued, then waits out
// the remaining delay budget for the batch to fill before flushing.
func (b *Batcher[In, Out]) dispatch() {
	defer close(b.done)
	var timer *time.Timer
	batch := make([]request[In, Out], 0, b.cfg.MaxBatch)
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		deadline := first.enq.Add(b.Delay())
	fill:
		for len(batch) < b.cfg.MaxBatch {
			// Take already-queued requests without waiting.
			select {
			case r, ok := <-b.reqs:
				if !ok {
					// Closed: flush what we have; the outer
					// receive will observe the close and exit.
					break fill
				}
				batch = append(batch, r)
				continue
			default:
			}
			wait := time.Until(deadline)
			if wait <= 0 {
				break
			}
			if timer == nil {
				timer = time.NewTimer(wait)
			} else {
				timer.Reset(wait)
			}
			select {
			case r, ok := <-b.reqs:
				if !timer.Stop() {
					<-timer.C
				}
				if !ok {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		b.flush(batch)
		// Zero the retained slots so the flushed batch's inputs,
		// contexts and channels are collectable while the queue idles.
		clear(batch)
	}
}

// runProtected invokes the batch function, containing a panic to a batch
// error: the compute runs on the lone dispatcher goroutine, so an escaped
// panic would kill the whole batcher (and server) instead of the one batch
// — the containment net/http gives a non-batched handler per request.  It
// also normalizes a result-count mismatch into an error, and gives the
// fault-injection plan its shot before the real run.
func (b *Batcher[In, Out]) runProtected(ins []In) (outs []Out, err error) {
	defer func() {
		if p := recover(); p != nil {
			outs, err = nil, fmt.Errorf("serve: batch function panicked: %v", p)
		}
	}()
	if err := resilience.Fire(PointBatchRun); err != nil {
		return nil, err
	}
	outs, err = b.run(ins)
	if err == nil && len(outs) != len(ins) {
		return nil, fmt.Errorf("serve: batch function returned %d results for %d inputs", len(outs), len(ins))
	}
	return outs, err
}

// runSegment runs one slice of a failed batch during bisection: a segment
// that succeeds resolves all its requests; a failed segment of more than
// one request is split in half and both halves rerun; a failed singleton
// takes the failure alone.  Sub-batches are bit-identical to any other
// batch split (batching never changes numerics), so requests that merely
// shared a batch with a poisoned sample still get exactly the answer a
// solo run would have produced.
func (b *Batcher[In, Out]) runSegment(ins []In) []outcome[Out] {
	outs, err := b.runProtected(ins)
	if err == nil {
		res := make([]outcome[Out], len(ins))
		for i := range outs {
			res[i] = outcome[Out]{out: outs[i]}
		}
		return res
	}
	if len(ins) == 1 {
		b.stats.isolate()
		return []outcome[Out]{{err: fmt.Errorf("serve: sample isolated by batch bisection: %w", err)}}
	}
	b.stats.bisect()
	mid := len(ins) / 2
	return append(b.runSegment(ins[:mid]), b.runSegment(ins[mid:])...)
}

// flush drops requests whose context expired while queued, runs the
// remaining batch, and delivers per-request outcomes.  A failed batch of
// more than one request falls back to bisection so a single bad request
// degrades only itself.
func (b *Batcher[In, Out]) flush(batch []request[In, Out]) {
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			// Count before unblocking the caller so a Stats snapshot
			// taken right after Do returns already reflects it.
			b.stats.cancel()
			r.done <- outcome[Out]{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	ins := make([]In, len(live))
	for i, r := range live {
		ins[i] = r.in
	}
	outs, err := b.runProtected(ins)
	var results []outcome[Out]
	switch {
	case err == nil:
		results = make([]outcome[Out], len(live))
		for i := range outs {
			results[i] = outcome[Out]{out: outs[i]}
		}
	case len(live) == 1:
		// Nothing to isolate: the lone request owns the failure.
		results = []outcome[Out]{{err: err}}
	default:
		// Degraded mode: bisect so only the poisoned sample(s) fail.
		b.stats.bisect()
		mid := len(live) / 2
		results = append(b.runSegment(ins[:mid]), b.runSegment(ins[mid:])...)
	}
	now := time.Now()
	lats := make([]time.Duration, len(live))
	for i, r := range live {
		lats[i] = now.Sub(r.enq)
	}
	// Record the batch before unblocking its callers: a Stats snapshot
	// taken the moment Do returns must already count this batch.
	b.stats.finishBatch(len(live), err != nil, lats)
	for i, r := range live {
		r.done <- results[i]
	}
	if b.ctl != nil {
		n := b.stats.latencyCum(b.ctlHist)
		if d, changed := b.ctl.Observe(time.Now(), len(b.reqs), b.ctlHist, n); changed {
			b.delay.Store(int64(d))
		}
	}
}
