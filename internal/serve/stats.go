package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the percentile window
// keeps.  Percentiles are computed over this sliding window, not the full
// history, so they track current load.
const latencyWindow = 4096

// Stats is a point-in-time snapshot of a batcher's counters.
type Stats struct {
	// Submitted counts requests accepted into the queue.
	Submitted uint64
	// Completed counts requests that received a result (including requests
	// that shared a failed batch run and received its error).
	Completed uint64
	// Canceled counts requests whose context expired while queued; they
	// were dropped at batch-formation time without running.
	Canceled uint64
	// RejectedQueueFull counts requests bounced with ErrQueueFull.
	RejectedQueueFull uint64
	// RejectedClosed counts requests bounced with ErrClosed.
	RejectedClosed uint64
	// Batches counts batches actually run; BatchErrors counts the subset
	// whose full-batch run function returned an error (before any
	// bisection fallback).
	Batches     uint64
	BatchErrors uint64
	// Bisections counts segment splits performed while isolating failed
	// batches; Isolated counts requests that still failed alone after
	// bisection (the truly poisoned samples).
	Bisections uint64
	Isolated   uint64
	// BatchSizeHist[i] counts batches of size i+1 (length = MaxBatch).
	BatchSizeHist []uint64
	// MeanBatchSize is the total number of batched requests divided by
	// Batches (0 when no batch has run).
	MeanBatchSize float64
	// LatencyP50 and LatencyP99 are percentiles of end-to-end request
	// latency (queue wait + batch compute) over the recent window.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
	// LatencySamples is the number of samples currently in the window.
	LatencySamples int
}

// collector accumulates counters under one mutex.  The hot paths take the
// lock once per request (submit/reject) or once per batch (finishBatch);
// contention is negligible next to millisecond-scale inference.
type collector struct {
	mu                sync.Mutex
	submitted         uint64
	completed         uint64
	canceled          uint64
	rejectedQueueFull uint64
	rejectedClosed    uint64
	batches           uint64
	batchErrors       uint64
	bisections        uint64
	isolated          uint64
	batchedRequests   uint64
	hist              []uint64
	lat               []time.Duration
	latNext           int
	latCount          int
}

func (c *collector) init(maxBatch int) {
	c.hist = make([]uint64, maxBatch)
	c.lat = make([]time.Duration, latencyWindow)
}

func (c *collector) submit() {
	c.mu.Lock()
	c.submitted++
	c.mu.Unlock()
}

// rejectFull records an ErrQueueFull bounce.  The caller counted the
// attempt via submit before trying the queue (so Submitted >= Completed
// holds at every instant); undo that here.
func (c *collector) rejectFull() {
	c.mu.Lock()
	c.submitted--
	c.rejectedQueueFull++
	c.mu.Unlock()
}

func (c *collector) rejectClosed() {
	c.mu.Lock()
	c.rejectedClosed++
	c.mu.Unlock()
}

func (c *collector) cancel() {
	c.mu.Lock()
	c.canceled++
	c.mu.Unlock()
}

// bisect records one segment split of a failed batch; isolate records one
// request that failed alone after bisection.
func (c *collector) bisect() {
	c.mu.Lock()
	c.bisections++
	c.mu.Unlock()
}

func (c *collector) isolate() {
	c.mu.Lock()
	c.isolated++
	c.mu.Unlock()
}

// finishBatch records one executed batch: its size, whether its run failed,
// and the end-to-end latency of every request it served.
func (c *collector) finishBatch(size int, failed bool, lats []time.Duration) {
	c.mu.Lock()
	c.batches++
	c.batchedRequests += uint64(size)
	c.completed += uint64(size)
	if failed {
		c.batchErrors++
	}
	if size >= 1 && size <= len(c.hist) {
		c.hist[size-1]++
	}
	for _, d := range lats {
		c.lat[c.latNext] = d
		c.latNext = (c.latNext + 1) % len(c.lat)
		if c.latCount < len(c.lat) {
			c.latCount++
		}
	}
	c.mu.Unlock()
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	s := Stats{
		Submitted:         c.submitted,
		Completed:         c.completed,
		Canceled:          c.canceled,
		RejectedQueueFull: c.rejectedQueueFull,
		RejectedClosed:    c.rejectedClosed,
		Batches:           c.batches,
		BatchErrors:       c.batchErrors,
		Bisections:        c.bisections,
		Isolated:          c.isolated,
		BatchSizeHist:     append([]uint64(nil), c.hist...),
		LatencySamples:    c.latCount,
	}
	if c.batches > 0 {
		s.MeanBatchSize = float64(c.batchedRequests) / float64(c.batches)
	}
	window := append([]time.Duration(nil), c.lat[:c.latCount]...)
	c.mu.Unlock()

	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.LatencyP50 = percentile(window, 0.50)
		s.LatencyP99 = percentile(window, 0.99)
	}
	return s
}

// percentile returns the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
