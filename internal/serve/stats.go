package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the percentile window
// keeps.  Percentiles are computed over this sliding window, not the full
// history, so they track current load.
const latencyWindow = 4096

// Stats is a point-in-time snapshot of a batcher's counters.
type Stats struct {
	// Submitted counts requests accepted into the queue.
	Submitted uint64
	// Completed counts requests that received a result (including requests
	// that shared a failed batch run and received its error).
	Completed uint64
	// Canceled counts requests whose context expired while queued; they
	// were dropped at batch-formation time without running.
	Canceled uint64
	// RejectedQueueFull counts requests bounced with ErrQueueFull.
	RejectedQueueFull uint64
	// RejectedClosed counts requests bounced with ErrClosed.
	RejectedClosed uint64
	// Batches counts batches actually run; BatchErrors counts the subset
	// whose full-batch run function returned an error (before any
	// bisection fallback).
	Batches     uint64
	BatchErrors uint64
	// Bisections counts segment splits performed while isolating failed
	// batches; Isolated counts requests that still failed alone after
	// bisection (the truly poisoned samples).
	Bisections uint64
	Isolated   uint64
	// BatchSizeHist[i] counts batches of size i+1 (length = MaxBatch).
	BatchSizeHist []uint64
	// MeanBatchSize is the total number of batched requests divided by
	// Batches (0 when no batch has run).
	MeanBatchSize float64
	// LatencyP50 and LatencyP99 are percentiles of end-to-end request
	// latency (queue wait + batch compute) over the recent window.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
	// LatencySamples is the number of samples currently in the window.
	LatencySamples int
	// LatencyHist counts every completed request's end-to-end latency by
	// bucket (upper bounds in LatencyBuckets plus a final +Inf slot).
	// Unlike the percentile window it is cumulative over the batcher's
	// lifetime, so Prometheus-style scrapes and the adaptive controller
	// can both recover rate-windowed percentiles from deltas.
	LatencyHist []uint64
	// LatencySum is the cumulative end-to-end latency across all completed
	// requests (the histogram's _sum series).
	LatencySum time.Duration
	// CurrentDelay is the batch window in effect when the snapshot was
	// taken: the configured MaxDelay for static batchers, the controller's
	// live window for adaptive ones.
	CurrentDelay time.Duration
}

// Merge returns the element-wise sum of two snapshots.  It is how a model
// lifecycle folds an evicted engine's final counters into its successor's
// live ones: counters and histograms add; the percentile window cannot be
// merged, so the snapshot with samples wins (preferring b, the live side).
func Merge(a, b Stats) Stats {
	m := Stats{
		Submitted:         a.Submitted + b.Submitted,
		Completed:         a.Completed + b.Completed,
		Canceled:          a.Canceled + b.Canceled,
		RejectedQueueFull: a.RejectedQueueFull + b.RejectedQueueFull,
		RejectedClosed:    a.RejectedClosed + b.RejectedClosed,
		Batches:           a.Batches + b.Batches,
		BatchErrors:       a.BatchErrors + b.BatchErrors,
		Bisections:        a.Bisections + b.Bisections,
		Isolated:          a.Isolated + b.Isolated,
		BatchSizeHist:     sumHist(a.BatchSizeHist, b.BatchSizeHist),
		LatencyHist:       sumHist(a.LatencyHist, b.LatencyHist),
		LatencySum:        a.LatencySum + b.LatencySum,
		LatencyP50:        a.LatencyP50,
		LatencyP99:        a.LatencyP99,
		LatencySamples:    a.LatencySamples,
		CurrentDelay:      b.CurrentDelay,
	}
	if b.LatencySamples > 0 {
		m.LatencyP50, m.LatencyP99, m.LatencySamples = b.LatencyP50, b.LatencyP99, b.LatencySamples
	}
	if m.Batches > 0 {
		// finishBatch advances Completed and the batched-request count in
		// lockstep, so Completed doubles as the batched total here.
		m.MeanBatchSize = float64(m.Completed) / float64(m.Batches)
	}
	return m
}

// sumHist adds two bucket-count slices, sized to the longer.
func sumHist(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		if i < len(a) {
			out[i] += a[i]
		}
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

// collector accumulates counters under one mutex.  The hot paths take the
// lock once per request (submit/reject) or once per batch (finishBatch);
// contention is negligible next to millisecond-scale inference.
type collector struct {
	mu                sync.Mutex
	submitted         uint64
	completed         uint64
	canceled          uint64
	rejectedQueueFull uint64
	rejectedClosed    uint64
	batches           uint64
	batchErrors       uint64
	bisections        uint64
	isolated          uint64
	batchedRequests   uint64
	hist              []uint64
	lat               []time.Duration
	latNext           int
	latCount          int
	latHist           []uint64
	latSum            time.Duration
}

func (c *collector) init(maxBatch int) {
	c.hist = make([]uint64, maxBatch)
	c.lat = make([]time.Duration, latencyWindow)
	c.latHist = make([]uint64, len(LatencyBuckets)+1)
}

func (c *collector) submit() {
	c.mu.Lock()
	c.submitted++
	c.mu.Unlock()
}

// rejectFull records an ErrQueueFull bounce.  The caller counted the
// attempt via submit before trying the queue (so Submitted >= Completed
// holds at every instant); undo that here.
func (c *collector) rejectFull() {
	c.mu.Lock()
	c.submitted--
	c.rejectedQueueFull++
	c.mu.Unlock()
}

func (c *collector) rejectClosed() {
	c.mu.Lock()
	c.rejectedClosed++
	c.mu.Unlock()
}

func (c *collector) cancel() {
	c.mu.Lock()
	c.canceled++
	c.mu.Unlock()
}

// bisect records one segment split of a failed batch; isolate records one
// request that failed alone after bisection.
func (c *collector) bisect() {
	c.mu.Lock()
	c.bisections++
	c.mu.Unlock()
}

func (c *collector) isolate() {
	c.mu.Lock()
	c.isolated++
	c.mu.Unlock()
}

// finishBatch records one executed batch: its size, whether its run failed,
// and the end-to-end latency of every request it served.
func (c *collector) finishBatch(size int, failed bool, lats []time.Duration) {
	c.mu.Lock()
	c.batches++
	c.batchedRequests += uint64(size)
	c.completed += uint64(size)
	if failed {
		c.batchErrors++
	}
	if size >= 1 && size <= len(c.hist) {
		c.hist[size-1]++
	}
	for _, d := range lats {
		c.lat[c.latNext] = d
		c.latNext = (c.latNext + 1) % len(c.lat)
		if c.latCount < len(c.lat) {
			c.latCount++
		}
		c.latHist[latencyBucket(d)]++
		c.latSum += d
	}
	c.mu.Unlock()
}

// latencyCum copies the cumulative latency histogram into dst (which must be
// len(LatencyBuckets)+1) and returns the total sample count.  It exists for
// the adaptive controller, which diffs successive snapshots; reusing the
// caller's buffer keeps the dispatcher loop allocation-free.
func (c *collector) latencyCum(dst []uint64) uint64 {
	c.mu.Lock()
	copy(dst, c.latHist)
	var n uint64
	for _, v := range c.latHist {
		n += v
	}
	c.mu.Unlock()
	return n
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	s := Stats{
		Submitted:         c.submitted,
		Completed:         c.completed,
		Canceled:          c.canceled,
		RejectedQueueFull: c.rejectedQueueFull,
		RejectedClosed:    c.rejectedClosed,
		Batches:           c.batches,
		BatchErrors:       c.batchErrors,
		Bisections:        c.bisections,
		Isolated:          c.isolated,
		BatchSizeHist:     append([]uint64(nil), c.hist...),
		LatencyHist:       append([]uint64(nil), c.latHist...),
		LatencySum:        c.latSum,
		LatencySamples:    c.latCount,
	}
	if c.batches > 0 {
		s.MeanBatchSize = float64(c.batchedRequests) / float64(c.batches)
	}
	window := append([]time.Duration(nil), c.lat[:c.latCount]...)
	c.mu.Unlock()

	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.LatencyP50 = percentile(window, 0.50)
		s.LatencyP99 = percentile(window, 0.99)
	}
	return s
}

// percentile returns the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
