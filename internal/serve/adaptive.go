package serve

import (
	"time"
)

// This file is the adaptive-batching control loop: a per-batcher Controller
// that tunes the batch window (the max-delay the dispatcher waits for a
// batch to fill) from two observed signals — queue depth and the recent p99
// latency recovered from the bucketed histogram — against a per-request p99
// SLO.  Under light load the window decays toward zero so lone requests are
// served at single-sample latency; under queue pressure it grows toward the
// ceiling so batches fill and throughput absorbs the load; whenever the
// observed p99 blows the SLO the window is halved regardless.
//
// The controller is deliberately pure state + arithmetic: Observe takes the
// clock as an argument, so unit tests drive it with a fake clock and the
// control law is deterministic.

// LatencyBuckets are the upper bounds of the request-latency histogram kept
// by every batcher, chosen so serving percentiles from hundreds of
// microseconds (batched LSTM) to seconds (overload) land in distinct
// buckets: p50/p99 recovered from bucket counts are accurate to one bucket
// step.  The histogram has one extra +Inf bucket beyond the last bound.
var LatencyBuckets = []time.Duration{
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// latencyBucket returns the histogram slot for one observed latency.
func latencyBucket(d time.Duration) int {
	for i, ub := range LatencyBuckets {
		if d <= ub {
			return i
		}
	}
	return len(LatencyBuckets) // +Inf
}

// HistogramP99 recovers the p99 upper bound from a delta of two cumulative
// bucket snapshots: the smallest bucket bound at or below which 99% of the
// n delta samples fall.  Samples in the +Inf bucket report twice the last
// finite bound (pessimistic, so an overloaded window still trips the SLO
// comparison).  n must be the delta sample count; zero returns 0.
func HistogramP99(cur, prev []uint64, n uint64) time.Duration {
	if n == 0 {
		return 0
	}
	rank := (n*99 + 99) / 100 // ceil(0.99 * n)
	var cum uint64
	for i := range cur {
		d := cur[i]
		if prev != nil {
			d -= prev[i]
		}
		cum += d
		if cum >= rank {
			if i < len(LatencyBuckets) {
				return LatencyBuckets[i]
			}
			return 2 * LatencyBuckets[len(LatencyBuckets)-1]
		}
	}
	return 2 * LatencyBuckets[len(LatencyBuckets)-1]
}

// ControllerConfig sets the adaptive window policy.
type ControllerConfig struct {
	// SLO is the per-request p99 latency target (queue wait + compute).
	SLO time.Duration
	// MaxBatch is the batch size the window is trying to fill; queue depth
	// is judged against it for the pressure signal.
	MaxBatch int
	// MinDelay is the window floor (default 0: greedy flush at light load).
	MinDelay time.Duration
	// MaxDelay is the window ceiling.  Zero derives SLO/2; any value is
	// clamped to SLO/2 so the window alone can never spend more than half
	// the latency budget.
	MaxDelay time.Duration
	// Interval rate-limits adjustments (default DefaultControlInterval):
	// observations closer together than this keep the current window, so
	// one slow batch cannot whipsaw the control loop.
	Interval time.Duration
}

// DefaultControlInterval is the default minimum time between window
// adjustments.
const DefaultControlInterval = 5 * time.Millisecond

// growStep is the additive kick applied when growing a zero window; without
// it a multiplicative-only law could never leave zero.
const growStep = 100 * time.Microsecond

// Controller tunes one batcher's window.  It is driven from the dispatcher
// goroutine only and holds no locks; tests drive Observe directly with a
// fake clock.
type Controller struct {
	cfg       ControllerConfig
	delay     time.Duration
	last      time.Time
	prevHist  []uint64
	prevCount uint64
}

// NewController returns a controller with the window at the floor: the
// first requests of a cold server are served greedily, and the window earns
// its way up only under observed pressure.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.MinDelay < 0 {
		cfg.MinDelay = 0
	}
	if ceiling := cfg.SLO / 2; cfg.MaxDelay <= 0 || cfg.MaxDelay > ceiling {
		cfg.MaxDelay = ceiling
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultControlInterval
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	return &Controller{cfg: cfg, delay: cfg.MinDelay}
}

// Delay returns the current batch window.
func (c *Controller) Delay() time.Duration { return c.delay }

// Observe feeds one post-flush observation: the clock, the queue depth at
// flush time, and the batcher's cumulative latency histogram (bucket counts
// plus total sample count).  It returns the window to use next and whether
// it changed.  The control law, applied at most once per Interval:
//
//   - observed p99 over the SLO: halve the window — the latency budget is
//     being spent, stop adding artificial delay;
//   - queue at or above half the max batch: grow the window 1.5x toward the
//     ceiling — there is enough concurrency to fill batches, trade delay
//     for throughput;
//   - otherwise: decay the window 0.75x toward the floor — light load, stop
//     taxing lone requests.
func (c *Controller) Observe(now time.Time, queueLen int, hist []uint64, count uint64) (time.Duration, bool) {
	if c.last.IsZero() {
		c.last = now
		c.snap(hist, count)
		return c.delay, false
	}
	if now.Sub(c.last) < c.cfg.Interval {
		return c.delay, false
	}
	n := count - c.prevCount
	p99 := HistogramP99(hist, c.prevHist, n)
	c.last = now
	c.snap(hist, count)

	old := c.delay
	switch {
	case n > 0 && p99 > c.cfg.SLO:
		c.delay /= 2
	case queueLen*2 >= c.cfg.MaxBatch:
		c.delay = c.delay*3/2 + growStep
	default:
		c.delay = c.delay * 3 / 4
	}
	if c.delay > c.cfg.MaxDelay {
		c.delay = c.cfg.MaxDelay
	}
	if c.delay < c.cfg.MinDelay {
		c.delay = c.cfg.MinDelay
	}
	return c.delay, c.delay != old
}

// snap stores the histogram snapshot the next Observe diffs against.
func (c *Controller) snap(hist []uint64, count uint64) {
	if cap(c.prevHist) < len(hist) {
		c.prevHist = make([]uint64, len(hist))
	}
	c.prevHist = c.prevHist[:len(hist)]
	copy(c.prevHist, hist)
	c.prevCount = count
}
