package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echo is a trivial batch function for scheduling tests.
func echo(ins []int) ([]int, error) {
	outs := make([]int, len(ins))
	for i, v := range ins {
		outs[i] = v * 2
	}
	return outs, nil
}

// gatedEcho returns an echo batch function that signals on entered for every
// batch and blocks until release is closed, so tests can hold a batch
// in flight while they arrange queue state.
func gatedEcho(entered chan<- struct{}, release <-chan struct{}) func([]int) ([]int, error) {
	return func(ins []int) ([]int, error) {
		entered <- struct{}{}
		<-release
		return echo(ins)
	}
}

// TestBatcherCoalesces holds the first batch in flight while N more requests
// queue up, then checks that the queued requests were served in larger
// batches, every result is correct, and the histogram accounts for every
// request.
func TestBatcherCoalesces(t *testing.T) {
	const n = 9
	// Buffered past any possible batch count so the gate never blocks a
	// flush on the test consuming its signal.
	entered := make(chan struct{}, 4*n)
	release := make(chan struct{})
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 64},
		gatedEcho(entered, release))
	defer b.Close()

	results := make(chan error, n+1)
	do := func(v int) {
		got, err := b.Do(context.Background(), v)
		if err == nil && got != 2*v {
			err = errors.New("wrong result")
		}
		results <- err
	}
	go do(100)
	<-entered // first batch (size 1) is in flight
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			do(v)
		}(i)
	}
	// Wait until all n are queued, then let batches run.
	for deadline := time.Now().Add(5 * time.Second); b.Stats().Submitted < n+1; {
		if time.Now().After(deadline) {
			t.Fatalf("requests never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < n+1; i++ {
		if err := <-results; err != nil {
			t.Fatalf("request failed: %v", err)
		}
	}

	st := b.Stats()
	if st.Completed != n+1 {
		t.Fatalf("completed %d, want %d", st.Completed, n+1)
	}
	var histTotal uint64
	for size, count := range st.BatchSizeHist {
		histTotal += uint64(size+1) * count
	}
	if histTotal != n+1 {
		t.Fatalf("histogram accounts for %d requests, want %d (hist %v)", histTotal, n+1, st.BatchSizeHist)
	}
	// 9 queued requests with MaxBatch 4 need at most 3 batches; together
	// with the size-1 opener the mean must exceed 1.
	if st.MeanBatchSize <= 1 {
		t.Fatalf("coalescing never engaged: mean batch %.2f (hist %v)", st.MeanBatchSize, st.BatchSizeHist)
	}
}

// TestTimeoutOnlyFlush checks the straggler path: one lone request must be
// flushed as a batch of 1 once MaxDelay expires, not wait for MaxBatch.
func TestTimeoutOnlyFlush(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond, QueueDepth: 8}, echo)
	defer b.Close()

	start := time.Now()
	got, err := b.Do(context.Background(), 21)
	if err != nil || got != 42 {
		t.Fatalf("Do = %d, %v; want 42, nil", got, err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("straggler waited %s; timeout flush did not fire", waited)
	}
	st := b.Stats()
	if st.Batches != 1 || st.BatchSizeHist[0] != 1 {
		t.Fatalf("want one batch of size 1, got %d batches, hist %v", st.Batches, st.BatchSizeHist)
	}
}

// TestQueueFullRejection fills the bounded queue behind an in-flight batch
// and checks the next submission is bounced immediately with ErrQueueFull.
func TestQueueFullRejection(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	b := NewBatcher(Config{MaxBatch: 1, MaxDelay: 0, QueueDepth: 2},
		gatedEcho(entered, release))
	defer b.Close()

	done := make(chan error, 3)
	go func() {
		_, err := b.Do(context.Background(), 1)
		done <- err
	}()
	<-entered // batch of 1 in flight; queue is empty again
	for i := 0; i < 2; i++ {
		go func(v int) {
			_, err := b.Do(context.Background(), v)
			done <- err
		}(i)
	}
	for deadline := time.Now().Add(5 * time.Second); b.Stats().Submitted < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Queue (depth 2) now holds 2 requests: the next one must bounce.
	if _, err := b.Do(context.Background(), 99); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Do error = %v, want ErrQueueFull", err)
	}
	if st := b.Stats(); st.RejectedQueueFull != 1 {
		t.Fatalf("RejectedQueueFull = %d, want 1", st.RejectedQueueFull)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("accepted request failed: %v", err)
		}
	}
}

// TestShutdownDrainsInFlight closes the batcher while a batch is running and
// more requests are queued: Close must block until every accepted request
// has been served, and later submissions must fail with ErrClosed.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	b := NewBatcher(Config{MaxBatch: 2, MaxDelay: 0, QueueDepth: 16},
		gatedEcho(entered, release))

	const queued = 5
	done := make(chan error, queued+1)
	do := func(v int) {
		got, err := b.Do(context.Background(), v)
		if err == nil && got != 2*v {
			err = errors.New("wrong result")
		}
		done <- err
	}
	go do(7)
	<-entered // opener in flight
	for i := 0; i < queued; i++ {
		go do(i)
	}
	for deadline := time.Now().Add(5 * time.Second); b.Stats().Submitted < queued+1; {
		if time.Now().After(deadline) {
			t.Fatalf("requests never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	go func() {
		for range entered { // drain gate signals for the remaining batches
		}
	}()
	close(release)
	<-closed
	close(entered)

	for i := 0; i < queued+1; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued request lost in shutdown: %v", err)
		}
	}
	if _, err := b.Do(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do error = %v, want ErrClosed", err)
	}
	if st := b.Stats(); st.Completed != queued+1 || st.RejectedClosed != 1 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestContextCanceledWhileQueued cancels a queued request before its batch
// forms: the dispatcher must drop it (never run it) and Do must return the
// context error.
func TestContextCanceledWhileQueued(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var served atomic.Int64
	b := NewBatcher(Config{MaxBatch: 1, MaxDelay: 0, QueueDepth: 8},
		func(ins []int) ([]int, error) {
			entered <- struct{}{}
			<-release
			served.Add(int64(len(ins)))
			return echo(ins)
		})
	defer b.Close()

	opener := make(chan error, 1)
	go func() {
		_, err := b.Do(context.Background(), 1)
		opener <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() {
		_, err := b.Do(ctx, 2)
		canceled <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); b.Stats().Submitted < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("request never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-canceled; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Do error = %v, want context.Canceled", err)
	}

	go func() {
		for range entered {
		}
	}()
	close(release)
	if err := <-opener; err != nil {
		t.Fatalf("opener failed: %v", err)
	}
	b.Close()
	close(entered)
	if n := served.Load(); n != 1 {
		t.Fatalf("served %d requests, want 1 (canceled request must be dropped)", n)
	}
	if st := b.Stats(); st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}
}

// TestPreCanceledContextFastFails checks a request whose context is already
// done never occupies a queue slot.
func TestPreCanceledContextFastFails(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: 0, QueueDepth: 8}, echo)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Do(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Do error = %v, want context.Canceled", err)
	}
	if st := b.Stats(); st.Submitted != 0 {
		t.Fatalf("pre-canceled request was queued: %+v", st)
	}
}

// TestBatchRunError propagates a failed batch run to every request that
// shared the batch.
func TestBatchRunError(t *testing.T) {
	boom := errors.New("boom")
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: 0, QueueDepth: 8},
		func(ins []int) ([]int, error) { return nil, boom })
	defer b.Close()

	if _, err := b.Do(context.Background(), 1); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	if st := b.Stats(); st.BatchErrors != 1 || st.Completed != 1 {
		t.Fatalf("stats after failed batch = %+v", st)
	}
}

// TestBatchRunPanicContained converts a panicking batch function into a
// per-batch error instead of killing the dispatcher (and with it every
// other queue).
func TestBatchRunPanicContained(t *testing.T) {
	calls := 0
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: 0, QueueDepth: 8},
		func(ins []int) ([]int, error) {
			calls++
			if calls == 1 {
				panic("kernel bug")
			}
			return echo(ins)
		})
	defer b.Close()

	if _, err := b.Do(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Do error = %v, want batch-panic error", err)
	}
	// The dispatcher must still be alive and serving.
	got, err := b.Do(context.Background(), 3)
	if err != nil || got != 6 {
		t.Fatalf("post-panic Do = %d, %v; want 6, nil", got, err)
	}
	if st := b.Stats(); st.BatchErrors != 1 || st.Completed != 2 {
		t.Fatalf("stats after contained panic = %+v", st)
	}
}

// TestConcurrentSubmitShutdownRace hammers Do from many goroutines while
// Close runs concurrently.  Run under -race this is the scheduler's
// submit-vs-shutdown ordering test: every call must either complete with a
// correct result or fail with ErrClosed/ErrQueueFull, and nothing may panic
// or deadlock.
func TestConcurrentSubmitShutdownRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		b := NewBatcher(Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond, QueueDepth: 32}, echo)
		var wg sync.WaitGroup
		var completed, rejected atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					got, err := b.Do(context.Background(), i)
					switch {
					case err == nil:
						if got != 2*i {
							t.Errorf("wrong result %d for %d", got, i)
							return
						}
						completed.Add(1)
					case errors.Is(err, ErrClosed), errors.Is(err, ErrQueueFull):
						rejected.Add(1)
					default:
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}(g)
		}
		// Close mid-flight; Do calls racing the close must observe a
		// clean rejection, never a send on a closed channel.
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		b.Close()
		wg.Wait()

		st := b.Stats()
		if st.Completed != uint64(completed.Load()) {
			t.Fatalf("round %d: stats completed %d, callers saw %d", round, st.Completed, completed.Load())
		}
		if completed.Load()+rejected.Load() != 8*50 {
			t.Fatalf("round %d: %d completed + %d rejected != 400", round, completed.Load(), rejected.Load())
		}
	}
}

// TestStatsPercentiles sanity-checks the latency window.
func TestStatsPercentiles(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: 0, QueueDepth: 8}, echo)
	defer b.Close()
	for i := 0; i < 32; i++ {
		if _, err := b.Do(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.LatencySamples != 32 {
		t.Fatalf("LatencySamples = %d, want 32", st.LatencySamples)
	}
	if st.LatencyP50 <= 0 || st.LatencyP99 < st.LatencyP50 {
		t.Fatalf("implausible percentiles: p50 %s, p99 %s", st.LatencyP50, st.LatencyP99)
	}
}

// TestConfigDefaults checks unset policy fields pick up the documented
// defaults.
func TestConfigDefaults(t *testing.T) {
	b := NewBatcher(Config{}, echo)
	defer b.Close()
	cfg := b.Config()
	if cfg.MaxBatch != DefaultMaxBatch || cfg.QueueDepth != DefaultQueueDepth || cfg.MaxDelay != 0 {
		t.Fatalf("defaulted config = %+v", cfg)
	}
}

// poisonEcho is an echo batch function that fails any segment containing
// the poisoned value, mimicking a shape-poisoned sample that slipped into
// a batch: the whole batch run errors, and only bisection can save the
// innocent requests.
func poisonEcho(poison int, runs *atomic.Int64) func([]int) ([]int, error) {
	return func(ins []int) ([]int, error) {
		runs.Add(1)
		for _, v := range ins {
			if v == poison {
				return nil, fmt.Errorf("poisoned sample %d", poison)
			}
		}
		return echo(ins)
	}
}

// TestBisectionIsolatesPoisonedSample is the regression test for the
// pre-bisection behavior where a failed batch run propagated its error to
// every request in the batch: a single poisoned sample must fail alone
// while the rest of the batch succeeds with bit-exact (here: exact)
// per-sample results.
func TestBisectionIsolatesPoisonedSample(t *testing.T) {
	const n = 8
	const poison = 5
	var runs atomic.Int64
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	inner := poisonEcho(poison, &runs)
	b := NewBatcher(Config{MaxBatch: n, MaxDelay: time.Second, QueueDepth: 2 * n},
		func(ins []int) ([]int, error) {
			entered <- struct{}{}
			<-release
			return inner(ins)
		})
	defer b.Close()

	var wg sync.WaitGroup
	outs := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.Do(context.Background(), i)
		}(i)
	}
	// Wait for the first batch run to begin, by which time every request
	// is either in the batch or queued; then open the gate.  The
	// channel stays open (buffered past any run count) because bisection
	// segments keep signaling it.
	<-entered
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if i == poison {
			if errs[i] == nil || !strings.Contains(errs[i].Error(), "poisoned sample") ||
				!strings.Contains(errs[i].Error(), "bisection") {
				t.Errorf("poisoned request error = %v, want isolated poisoned-sample error", errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("innocent request %d failed: %v", i, errs[i])
		} else if outs[i] != 2*i {
			t.Errorf("request %d = %d, want %d (must match a solo run exactly)", i, outs[i], 2*i)
		}
	}

	st := b.Stats()
	if st.Isolated != 1 {
		t.Errorf("Isolated = %d, want exactly the poisoned sample", st.Isolated)
	}
	if st.Bisections == 0 {
		t.Errorf("Bisections = 0, want > 0 after a failed multi-request batch")
	}
	if st.Completed != n {
		t.Errorf("Completed = %d, want %d (every request must get an outcome)", st.Completed, n)
	}
	// log2 bound: isolating 1 bad sample out of 8 costs at most
	// 1 (full) + 2*log2(8) segment runs.
	if r := runs.Load(); r > 7 {
		t.Errorf("bisection used %d runs for one poisoned sample in a batch of %d", r, n)
	}
}

// TestBisectionPanicIsolated: a sample that makes the batch function panic
// is contained and isolated exactly like an error, and the dispatcher
// keeps serving afterwards.
func TestBisectionPanicIsolated(t *testing.T) {
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	b := NewBatcher(Config{MaxBatch: 4, MaxDelay: time.Second, QueueDepth: 16},
		func(ins []int) ([]int, error) {
			entered <- struct{}{}
			<-release
			for _, v := range ins {
				if v == 2 {
					panic("poisoned kernel")
				}
			}
			return echo(ins)
		})
	defer b.Close()

	const n = 4
	var wg sync.WaitGroup
	outs := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.Do(context.Background(), i)
		}(i)
	}
	// Wait for the first batch run to begin, then open the gate.  The
	// channel stays open (buffered past any run count) because bisection
	// segments keep signaling it.
	<-entered
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if i == 2 {
			if errs[i] == nil || !strings.Contains(errs[i].Error(), "panicked") {
				t.Errorf("panicking request error = %v", errs[i])
			}
		} else if errs[i] != nil || outs[i] != 2*i {
			t.Errorf("request %d = %d, %v; want %d, nil", i, outs[i], errs[i], 2*i)
		}
	}
	if got, err := b.Do(context.Background(), 10); err != nil || got != 20 {
		t.Fatalf("post-bisection Do = %d, %v; want 20, nil", got, err)
	}
}
