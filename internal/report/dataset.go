package report

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Record is one (network, target, variant) cell of a characterization sweep:
// the backend-independent summary statistics of a single run.
type Record struct {
	Network string `json:"network"`
	Target  string `json:"target"`
	// Class is the target's device class, e.g. "GPU" or "FPGA".
	Class string `json:"class"`
	// Variant names the configuration point, e.g. "default" or "nol1".
	Variant string `json:"variant"`

	Cycles       int64   `json:"cycles,omitempty"`
	Seconds      float64 `json:"seconds"`
	Instructions int64   `json:"instructions,omitempty"`
	PeakWatts    float64 `json:"peak_watts"`
	AvgWatts     float64 `json:"avg_watts"`
	EnergyJoules float64 `json:"energy_joules"`
	L2MissRatio  float64 `json:"l2_miss_ratio,omitempty"`

	// Err is the cell's failure message in a partial sweep (empty for
	// successful cells): the cell identity columns are filled in, the
	// statistics are zero, and the error is carried in-band so a sweep with
	// one broken cell still yields a dataset covering every other cell.
	Err string `json:"error,omitempty"`

	// Numerics names the compute-engine numerics tier the cell ran under
	// ("reference", "fast" or "int8"); empty means reference.  It renders
	// as a trailing column so downstream consumers keyed on the leading
	// columns are unaffected.
	Numerics string `json:"numerics,omitempty"`
}

// Failed reports whether the record is a partial-sweep error cell.
func (r Record) Failed() bool { return r.Err != "" }

// Dataset is the deterministic result of a characterization sweep: one record
// per (network, target, variant) cell.  Figures and tables are projections of
// a dataset; the JSON and CSV encodings feed external tooling.
type Dataset struct {
	// Records holds the sweep cells in deterministic sweep order.
	Records []Record `json:"records"`
}

// Add appends a record.
func (d *Dataset) Add(r Record) { d.Records = append(d.Records, r) }

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Records) }

// Sort orders records by network, then target, then variant — a canonical
// order independent of how the sweep was scheduled.
func (d *Dataset) Sort() {
	sort.SliceStable(d.Records, func(i, j int) bool {
		a, b := d.Records[i], d.Records[j]
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Variant < b.Variant
	})
}

// Table projects the dataset onto a report table.
func (d *Dataset) Table(id, title string) *Table {
	t := &Table{
		ID:    id,
		Title: title,
		// The Error and Numerics columns stay last so downstream CSV
		// consumers keyed on the leading identity/statistics columns are
		// unaffected.
		Columns: []string{"Network", "Target", "Class", "Variant",
			"Cycles", "Seconds", "Instructions", "Peak (W)", "Avg (W)", "Energy (J)", "L2 miss", "Error", "Numerics"},
	}
	for _, r := range d.Records {
		cycles := "-"
		if r.Cycles > 0 {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		instr := "-"
		if r.Instructions > 0 {
			instr = fmt.Sprintf("%d", r.Instructions)
		}
		l2 := "-"
		if r.L2MissRatio > 0 {
			l2 = fmt.Sprintf("%.4f", r.L2MissRatio)
		}
		errCell := "-"
		if r.Err != "" {
			errCell = r.Err
		}
		numerics := r.Numerics
		if numerics == "" {
			numerics = "reference"
		}
		t.AddRow(r.Network, r.Target, r.Class, r.Variant,
			cycles, FormatFloat(r.Seconds), instr,
			FormatFloat(r.PeakWatts), FormatFloat(r.AvgWatts),
			FormatFloat(r.EnergyJoules), l2, errCell, numerics)
	}
	return t
}

// JSON renders the dataset as indented JSON.
func (d *Dataset) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// CSV renders the dataset as comma-separated values with a header row.
func (d *Dataset) CSV() string {
	return d.Table("", "").CSV()
}
