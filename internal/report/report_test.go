package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:      "fig0",
		Title:   "Example",
		Columns: []string{"Network", "Cycles"},
	}
	tab.AddRow("CifarNet", 12345)
	tab.AddRow("AlexNet", 6789.5)
	tab.AddNote("sampled run")
	s := tab.String()
	if !strings.Contains(s, "[fig0] Example") {
		t.Errorf("missing title: %q", s)
	}
	if !strings.Contains(s, "CifarNet") || !strings.Contains(s, "12345") {
		t.Errorf("missing row data: %q", s)
	}
	if !strings.Contains(s, "note: sampled run") {
		t.Errorf("missing note: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d: %q", len(lines), s)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{Columns: []string{"A", "LongColumn"}}
	tab.AddRow("xxxxxxxxxx", "y")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines[0]) == 0 || len(lines[1]) == 0 {
		t.Fatal("empty header lines")
	}
	// The separator row must be at least as wide as the widest cell.
	if len(lines[1]) < len("xxxxxxxxxx") {
		t.Errorf("separator too narrow: %q", lines[1])
	}
}

func TestCSV(t *testing.T) {
	tab := &Table{Columns: []string{"name", "value"}}
	tab.AddRow("plain", 1)
	tab.AddRow("with,comma", "quote\"inside")
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "\"with,comma\"") {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, "\"quote\"\"inside\"") {
		t.Errorf("quote cell not escaped: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		0.5:     "0.500",
		0.00001: "1.00e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatPercent(0.254) != "25.4%" {
		t.Errorf("FormatPercent wrong: %s", FormatPercent(0.254))
	}
}
