package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:      "fig0",
		Title:   "Example",
		Columns: []string{"Network", "Cycles"},
	}
	tab.AddRow("CifarNet", 12345)
	tab.AddRow("AlexNet", 6789.5)
	tab.AddNote("sampled run")
	s := tab.String()
	if !strings.Contains(s, "[fig0] Example") {
		t.Errorf("missing title: %q", s)
	}
	if !strings.Contains(s, "CifarNet") || !strings.Contains(s, "12345") {
		t.Errorf("missing row data: %q", s)
	}
	if !strings.Contains(s, "note: sampled run") {
		t.Errorf("missing note: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d: %q", len(lines), s)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{Columns: []string{"A", "LongColumn"}}
	tab.AddRow("xxxxxxxxxx", "y")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines[0]) == 0 || len(lines[1]) == 0 {
		t.Fatal("empty header lines")
	}
	// The separator row must be at least as wide as the widest cell.
	if len(lines[1]) < len("xxxxxxxxxx") {
		t.Errorf("separator too narrow: %q", lines[1])
	}
}

func TestCSV(t *testing.T) {
	tab := &Table{Columns: []string{"name", "value"}}
	tab.AddRow("plain", 1)
	tab.AddRow("with,comma", "quote\"inside")
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "\"with,comma\"") {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, "\"quote\"\"inside\"") {
		t.Errorf("quote cell not escaped: %q", csv)
	}
}

// TestEmptyTable asserts a table with no columns, rows or title renders
// without panicking in every format.
func TestEmptyTable(t *testing.T) {
	tab := &Table{}
	if s := tab.String(); s == "" {
		t.Error("empty table should still render the (empty) header block")
	}
	if csv := tab.CSV(); csv != "\n" {
		t.Errorf("empty table CSV should be a single empty line, got %q", csv)
	}
	enc, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), "columns") {
		t.Errorf("empty table JSON should carry the columns key: %s", enc)
	}

	titled := &Table{ID: "x", Title: "Only a title"}
	if s := titled.String(); !strings.Contains(s, "[x] Only a title") {
		t.Errorf("title-only table should render its title: %q", s)
	}
}

// TestMismatchedRowWidths asserts rows wider or narrower than the header
// render without panicking: extra cells print unpadded, missing cells leave
// their columns blank, and CSV emits exactly the cells each row has.
func TestMismatchedRowWidths(t *testing.T) {
	tab := &Table{Columns: []string{"A", "B"}}
	tab.AddRow("r1a")
	tab.AddRow("r2a", "r2b", "r2extra")
	s := tab.String()
	if !strings.Contains(s, "r1a") || !strings.Contains(s, "r2extra") {
		t.Errorf("all cells should render: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Header + separator + 2 rows.
	if len(lines) != 4 {
		t.Fatalf("unexpected line count %d: %q", len(lines), s)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "r1a\n") {
		t.Errorf("short row should emit only its own cells: %q", csv)
	}
	if !strings.Contains(csv, "r2a,r2b,r2extra") {
		t.Errorf("long row should keep its extra cell: %q", csv)
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "fig0", Title: "Example", Columns: []string{"A"}}
	tab.AddRow("x")
	tab.AddNote("n")
	enc, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "fig0"`, `"columns"`, `"rows"`, `"notes"`, `"x"`} {
		if !strings.Contains(string(enc), want) {
			t.Errorf("JSON missing %s:\n%s", want, enc)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		0.5:     "0.500",
		0.00001: "1.00e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatPercent(0.254) != "25.4%" {
		t.Errorf("FormatPercent wrong: %s", FormatPercent(0.254))
	}
}
