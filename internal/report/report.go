// Package report renders experiment results as aligned text tables and CSV,
// the formats the command-line tools and the benchmark harness print.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	// ID is the experiment identifier, e.g. "fig2" or "table3".
	ID string
	// Title describes the table, e.g. the paper figure it reproduces.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells; each row should have len(Columns) cells.
	Rows [][]string
	// Notes are free-form footnotes printed after the table.
	Notes []string
}

// AddRow appends a row, converting the values with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly: large values with thousands
// precision, small values with four significant decimals.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// FormatPercent renders a fraction as a percentage.
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		if t.ID != "" {
			fmt.Fprintf(&b, "[%s] %s\n", t.ID, t.Title)
		} else {
			fmt.Fprintf(&b, "%s\n", t.Title)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the table (columns, rows, notes) as indented JSON.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID      string     `json:"id,omitempty"`
		Title   string     `json:"title,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes}, "", "  ")
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(escapeCSV(cell))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func escapeCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
