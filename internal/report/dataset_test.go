package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleDataset() *Dataset {
	d := &Dataset{}
	d.Add(Record{Network: "GRU", Target: "gp102", Class: "GPU", Variant: "default",
		Cycles: 95449, Seconds: 6.45e-05, Instructions: 487938,
		PeakWatts: 54.9, AvgWatts: 54.9, EnergyJoules: 3.54e-03, L2MissRatio: 1})
	d.Add(Record{Network: "GRU", Target: "pynq", Class: "FPGA", Variant: "default",
		Seconds: 5.09e-04, PeakWatts: 4.06, AvgWatts: 2.92, EnergyJoules: 2.07e-03})
	return d
}

func TestDatasetTable(t *testing.T) {
	tab := sampleDataset().Table("sweep", "Sweep")
	if tab.ID != "sweep" || len(tab.Rows) != 2 {
		t.Fatalf("unexpected table: %+v", tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Errorf("row width %d != %d columns", len(row), len(tab.Columns))
		}
	}
	s := tab.String()
	// The FPGA record has no cycle/instruction/L2 figures: rendered as "-".
	if !strings.Contains(s, "-") || !strings.Contains(s, "pynq") {
		t.Errorf("FPGA row should render dashes for GPU-only columns:\n%s", s)
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := sampleDataset()
	enc, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Dataset
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 2 || back.Records[0] != d.Records[0] || back.Records[1] != d.Records[1] {
		t.Errorf("round trip mismatch: %+v", back.Records)
	}
	// GPU-only fields are omitted for the FPGA record.
	if strings.Count(string(enc), "cycles") != 1 {
		t.Errorf("zero cycles should be omitted from JSON:\n%s", enc)
	}
}

func TestDatasetCSV(t *testing.T) {
	csv := sampleDataset().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 records, got %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "Network,Target,Class,Variant") {
		t.Errorf("missing CSV header: %q", lines[0])
	}
}

func TestDatasetSort(t *testing.T) {
	d := &Dataset{}
	d.Add(Record{Network: "LSTM", Target: "tx1", Variant: "default"})
	d.Add(Record{Network: "GRU", Target: "tx1", Variant: "nol1"})
	d.Add(Record{Network: "GRU", Target: "gp102", Variant: "default"})
	d.Add(Record{Network: "GRU", Target: "tx1", Variant: "default"})
	d.Sort()
	var got []string
	for _, r := range d.Records {
		got = append(got, r.Network+"/"+r.Target+"/"+r.Variant)
	}
	want := []string{"GRU/gp102/default", "GRU/tx1/default", "GRU/tx1/nol1", "LSTM/tx1/default"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order %v, want %v", got, want)
		}
	}
}

// TestDatasetNumericsColumn checks the trailing numerics-tier column: an
// empty field renders as "reference" and the column stays last so consumers
// keyed on the leading columns are unaffected (same pattern as Err).
func TestDatasetNumericsColumn(t *testing.T) {
	d := &Dataset{}
	d.Add(Record{Network: "AlexNet", Target: "gp102", Class: "GPU", Variant: "default",
		Seconds: 1e-3, Numerics: "fast"})
	d.Add(Record{Network: "GRU", Target: "gp102", Class: "GPU", Variant: "default",
		Seconds: 1e-4})
	tab := d.Table("sweep", "Sweep")
	if got := tab.Columns[len(tab.Columns)-1]; got != "Numerics" {
		t.Fatalf("last column %q, want Numerics", got)
	}
	if got := tab.Rows[0][len(tab.Rows[0])-1]; got != "fast" {
		t.Errorf("fast-tier cell renders %q", got)
	}
	if got := tab.Rows[1][len(tab.Rows[1])-1]; got != "reference" {
		t.Errorf("default cell renders %q, want reference", got)
	}
	lines := strings.Split(strings.TrimSpace(d.CSV()), "\n")
	if !strings.HasSuffix(lines[1], ",fast") || !strings.HasSuffix(lines[2], ",reference") {
		t.Errorf("CSV rows should end with the numerics tier:\n%s", d.CSV())
	}
	enc, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Reference-tier records omit the field entirely, keeping old datasets
	// and new ones byte-comparable on unaffected records.
	if strings.Count(string(enc), "numerics") != 1 {
		t.Errorf("want exactly one numerics key in JSON:\n%s", enc)
	}
}

func TestEmptyDataset(t *testing.T) {
	var d Dataset
	if d.Len() != 0 {
		t.Fatal("empty dataset should have zero length")
	}
	if csv := d.CSV(); !strings.HasPrefix(csv, "Network,") {
		t.Errorf("empty dataset CSV should still carry the header: %q", csv)
	}
	enc, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), "records") {
		t.Errorf("empty dataset JSON should carry the records key: %s", enc)
	}
	if s := d.Table("sweep", "Empty").String(); !strings.Contains(s, "Network") {
		t.Errorf("empty dataset table should render its header: %q", s)
	}
}
