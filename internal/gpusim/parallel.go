package gpusim

import (
	"fmt"

	"tango/internal/kernel"
	"tango/internal/par"
)

// RunKernels simulates an explicit kernel list and returns per-kernel
// statistics in kernel order.
//
// Kernels are independent simulations — each gets its own SM, L1, L2 and
// DRAM state — so when the configuration's Parallelism is greater than one
// they are fanned out across that many worker goroutines.  Results are
// written into their kernel's slot and errors are reported first-in-launch-
// order, so the output is identical to a serial run regardless of worker
// scheduling.
func (s *Simulator) RunKernels(network string, kernels []*kernel.Kernel) (*RunStats, error) {
	stats := make([]*KernelStats, len(kernels))
	err := par.ForEach(s.cfg.Parallelism, len(kernels), func(i int) error {
		ks, err := s.RunKernel(kernels[i])
		if err != nil {
			return fmt.Errorf("gpusim: %s: %w", kernels[i].Name, err)
		}
		stats[i] = ks
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunStats{Network: network, Kernels: stats}, nil
}
