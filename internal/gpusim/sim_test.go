package gpusim_test

import (
	"reflect"
	"testing"

	"tango/internal/cache"
	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/isa"
	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/sched"
)

// fastSim returns a simulator with coarse sampling for quick tests.
func fastSim(t *testing.T, cfg gpusim.Config) *gpusim.Simulator {
	t.Helper()
	cfg = cfg.WithSampling(gpusim.FastSampling())
	sim, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func runNet(t *testing.T, sim *gpusim.Simulator, name string) *gpusim.RunStats {
	t.Helper()
	n, err := networks.New(name)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.RunNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestConfigValidateDefaults(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.ModeledSMs <= 0 || cfg.IssueWidth <= 0 {
		t.Error("defaults should be filled")
	}
	zero := gpusim.Config{}
	if err := zero.Validate(); err == nil {
		t.Error("zero config should fail (no device)")
	}
	bad := gpusim.DefaultConfig()
	bad.Scheduler = "bogus"
	if err := bad.Validate(); err == nil {
		t.Error("unknown scheduler should fail")
	}
	bad = gpusim.DefaultConfig()
	bad.L2 = cache.Config{}
	if err := bad.Validate(); err == nil {
		t.Error("bypassed L2 should fail")
	}
	bad = gpusim.DefaultConfig()
	bad.Sampling.MaxCTAs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sampling should fail")
	}
}

func TestConfigWithHelpers(t *testing.T) {
	cfg := gpusim.DefaultConfig().WithL1Size(0)
	if !cfg.L1D.Bypassed() {
		t.Error("WithL1Size(0) should bypass the L1")
	}
	cfg = gpusim.DefaultConfig().WithL1Size(128 << 10)
	if cfg.L1D.SizeBytes != 128<<10 {
		t.Errorf("L1 size = %d", cfg.L1D.SizeBytes)
	}
	cfg = gpusim.DefaultConfig().WithScheduler(sched.LRR)
	if cfg.Scheduler != sched.LRR {
		t.Error("WithScheduler did not apply")
	}
}

func TestStallReasonNames(t *testing.T) {
	if len(gpusim.StallReasons()) != int(gpusim.NumStallReasons) {
		t.Error("StallReasons() should enumerate every reason")
	}
	for _, r := range gpusim.StallReasons() {
		if r.String() == "" || r.String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
	if gpusim.StallMemoryThrottle.String() != "memory_throttle" {
		t.Error("unexpected stall name")
	}
}

func TestRunKernelBasicInvariants(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	sim := fastSim(t, gpusim.DefaultConfig())
	st, err := sim.RunKernel(ks[0]) // conv1
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 || st.Seconds <= 0 {
		t.Errorf("cycles=%d seconds=%v must be positive", st.Cycles, st.Seconds)
	}
	if st.SimCycles <= 0 || st.SimThreadInstructions <= 0 {
		t.Error("simulated portion must be non-empty")
	}
	if st.ScaleFactor < 1 {
		t.Errorf("scale factor %v must be >= 1", st.ScaleFactor)
	}
	if st.TotalThreadInstructions != ks[0].DynamicInstructions() {
		t.Error("total instruction accounting mismatch")
	}
	var opTotal int64
	for _, c := range st.OpCounts {
		opTotal += c
	}
	if opTotal != st.TotalThreadInstructions {
		t.Errorf("op counts sum %d, want %d", opTotal, st.TotalThreadInstructions)
	}
	var typeTotal int64
	for _, c := range st.TypeCounts {
		typeTotal += c
	}
	if typeTotal != st.TotalThreadInstructions {
		t.Errorf("type counts sum %d, want %d", typeTotal, st.TotalThreadInstructions)
	}
	if st.StallTotal() == 0 {
		t.Error("a convolution kernel should record stall cycles")
	}
	if st.Activity.IssuedInstructions <= 0 || st.Activity.RegReads <= 0 {
		t.Error("activity counters should be populated")
	}
	if st.L2.Accesses == 0 {
		t.Error("global memory traffic should reach the L2")
	}
	if st.IPC() <= 0 {
		t.Error("IPC should be positive")
	}
	if st.AllocatedRegsPerSM <= 0 || st.LiveRegsPerSM <= 0 {
		t.Error("register usage should be recorded")
	}
	if st.AllocatedRegsPerSM < st.LiveRegsPerSM {
		t.Error("allocated registers cannot be fewer than live registers")
	}
}

func TestRunKernelRejectsInvalidKernel(t *testing.T) {
	sim := fastSim(t, gpusim.DefaultConfig())
	if _, err := sim.RunKernel(&kernel.Kernel{Name: "empty"}); err == nil {
		t.Error("invalid kernel should fail")
	}
}

func TestRunNetworkAllBenchmarksSmallSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite simulation skipped in -short mode")
	}
	sim := fastSim(t, gpusim.DefaultConfig())
	for _, name := range []string{"GRU", "LSTM", "CifarNet"} {
		rs := runNet(t, sim, name)
		if rs.TotalCycles() <= 0 {
			t.Errorf("%s: no cycles", name)
		}
		if len(rs.Kernels) == 0 {
			t.Errorf("%s: no kernels", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	sim1 := fastSim(t, gpusim.DefaultConfig())
	sim2 := fastSim(t, gpusim.DefaultConfig())
	a := runNet(t, sim1, "CifarNet")
	b := runNet(t, sim2, "CifarNet")
	if a.TotalCycles() != b.TotalCycles() {
		t.Errorf("simulation must be deterministic: %d vs %d", a.TotalCycles(), b.TotalCycles())
	}
	for i := range a.Kernels {
		if a.Kernels[i].Cycles != b.Kernels[i].Cycles {
			t.Errorf("kernel %s cycles differ", a.Kernels[i].Kernel.Name)
		}
		if a.Kernels[i].Stalls != b.Kernels[i].Stalls {
			t.Errorf("kernel %s stalls differ", a.Kernels[i].Kernel.Name)
		}
	}
}

func TestConvolutionDominatesCifarNet(t *testing.T) {
	// Observation 1: convolution layers take the majority of CNN execution
	// time.
	sim := fastSim(t, gpusim.DefaultConfig())
	rs := runNet(t, sim, "CifarNet")
	byClass := rs.CyclesByClass()
	conv := byClass[networks.ClassConv]
	if conv*2 < rs.TotalCycles() {
		t.Errorf("conv cycles %d should exceed half of total %d", conv, rs.TotalCycles())
	}
}

func TestCacheSensitivityCNNvsRNN(t *testing.T) {
	// Observation 2: on-chip cache helps CNNs; RNN sensitivity beyond the
	// default L1 size is negligible.
	if testing.Short() {
		t.Skip("cache sweep skipped in -short mode")
	}
	run := func(name string, l1 int) int64 {
		sim := fastSim(t, gpusim.DefaultConfig().WithL1Size(l1))
		return runNet(t, sim, name).TotalCycles()
	}
	cifarNo := run("CifarNet", 0)
	cifar64 := run("CifarNet", 64<<10)
	if cifar64 >= cifarNo {
		t.Errorf("CifarNet with 64KB L1 (%d cycles) should beat no-L1 (%d)", cifar64, cifarNo)
	}
	gru64 := run("GRU", 64<<10)
	gru256 := run("GRU", 256<<10)
	diff := float64(gru64-gru256) / float64(gru64)
	if diff > 0.05 || diff < -0.05 {
		t.Errorf("GRU should be insensitive to L1 growth beyond 64KB, got %.1f%% change", diff*100)
	}
}

func TestSchedulerKindsAllRun(t *testing.T) {
	for _, k := range sched.Kinds() {
		sim := fastSim(t, gpusim.DefaultConfig().WithScheduler(k))
		rs := runNet(t, sim, "CifarNet")
		if rs.TotalCycles() <= 0 {
			t.Errorf("scheduler %s produced no cycles", k)
		}
	}
}

func TestBypassedL1RoutesTrafficToL2(t *testing.T) {
	simNo := fastSim(t, gpusim.DefaultConfig().WithL1Size(0))
	simWith := fastSim(t, gpusim.DefaultConfig())
	no := runNet(t, simNo, "CifarNet")
	with := runNet(t, simWith, "CifarNet")
	var l2No, l2With int64
	for _, k := range no.Kernels {
		l2No += k.L2.Accesses
	}
	for _, k := range with.Kernels {
		l2With += k.L2.Accesses
	}
	if l2No <= l2With {
		t.Errorf("bypassing L1 should increase L2 traffic: %d vs %d", l2No, l2With)
	}
	for _, k := range no.Kernels {
		if k.L1.Accesses != 0 {
			t.Errorf("%s: bypassed L1 should record no accesses", k.Kernel.Name)
		}
	}
}

func TestFCHasHigherL2MissRatioThanConv(t *testing.T) {
	// Observation 11: convolution layers have much better data locality than
	// fully-connected layers.  Compare under a bypassed L1 like Figure 14.
	sim := fastSim(t, gpusim.DefaultConfig().WithL1Size(0))
	rs := runNet(t, sim, "CifarNet")
	byClass := rs.L2ByClass()
	conv := byClass[networks.ClassConv]
	fc := byClass[networks.ClassFC]
	if conv.Accesses == 0 || fc.Accesses == 0 {
		t.Fatal("expected both conv and fc L2 traffic")
	}
	if fc.MissRatio() <= conv.MissRatio() {
		t.Errorf("FC L2 miss ratio (%.4f) should exceed conv (%.4f)", fc.MissRatio(), conv.MissRatio())
	}
}

func TestRNNvsCNNStallCharacter(t *testing.T) {
	// GRU/LSTM and the CNN layers should all report a breakdown over the
	// nvprof categories, with memory- and execution-dependency stalls present.
	sim := fastSim(t, gpusim.DefaultConfig())
	rs := runNet(t, sim, "LSTM")
	stalls := rs.StallsByClass()[networks.ClassRNN]
	var total int64
	for _, v := range stalls {
		total += v
	}
	if total == 0 {
		t.Fatal("LSTM should record stall cycles")
	}
	if stalls[gpusim.StallExecDependency]+stalls[gpusim.StallMemoryDependency] == 0 {
		t.Error("dependency stalls should be present for the LSTM layer")
	}
}

func TestExhaustiveSamplingOnTinyKernel(t *testing.T) {
	// The last FC layer of CifarNet is small enough to simulate exhaustively;
	// sampled and exhaustive runs must agree on total instruction counts and
	// report a scale factor of exactly 1 for the exhaustive case.
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	var fc2 *kernel.Kernel
	for _, k := range ks {
		if k.LayerName == "fc2" {
			fc2 = k
		}
	}
	if fc2 == nil {
		t.Fatal("fc2 kernel not found")
	}
	exCfg := gpusim.DefaultConfig().WithSampling(gpusim.Exhaustive())
	exSim, err := gpusim.New(exCfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exSim.RunKernel(fc2)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ScaleFactor != 1 {
		t.Errorf("exhaustive run scale factor = %v, want 1", ex.ScaleFactor)
	}
	if ex.SimThreadInstructions != ex.TotalThreadInstructions {
		t.Errorf("exhaustive run should simulate every instruction: %d vs %d",
			ex.SimThreadInstructions, ex.TotalThreadInstructions)
	}

	sampled, err := fastSim(t, gpusim.DefaultConfig()).RunKernel(fc2)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.TotalThreadInstructions != ex.TotalThreadInstructions {
		t.Error("sampling must not change the total dynamic instruction count")
	}
	if sampled.ScaleFactor < 1 {
		t.Error("sampled scale factor must be >= 1")
	}
}

func TestDifferentDevicesGiveDifferentTimes(t *testing.T) {
	// The same workload should be slower on the 2-SM TX1 than on the 28-SM
	// Pascal simulator configuration.
	pascal := fastSim(t, gpusim.ConfigFor(device.PascalGP102()))
	tx1 := fastSim(t, gpusim.ConfigFor(device.TX1()))
	a := runNet(t, pascal, "CifarNet")
	b := runNet(t, tx1, "CifarNet")
	if b.TotalSeconds() <= a.TotalSeconds() {
		t.Errorf("TX1 (%.6fs) should be slower than GP102 (%.6fs)", b.TotalSeconds(), a.TotalSeconds())
	}
}

func TestOpMixObservation7(t *testing.T) {
	// Observation 7: the top operations (add, mad, mul, shl, plus the load
	// family) dominate execution.
	sim := fastSim(t, gpusim.DefaultConfig())
	rs := runNet(t, sim, "CifarNet")
	ops := rs.OpTotals()
	var total int64
	for _, c := range ops {
		total += c
	}
	top := ops[isa.OpAdd] + ops[isa.OpMad] + ops[isa.OpMad24] + ops[isa.OpMul] + ops[isa.OpShl] + ops[isa.OpLd]
	if total == 0 {
		t.Fatal("no operations recorded")
	}
	if float64(top)/float64(total) < 0.5 {
		t.Errorf("top operations cover %.1f%%, want > 50%%", 100*float64(top)/float64(total))
	}
}

func TestActivityAddAndScale(t *testing.T) {
	a := gpusim.Activity{IssuedInstructions: 10, RegReads: 20, SPOps: 5}
	a.Add(gpusim.Activity{IssuedInstructions: 1, FPUOps: 2})
	if a.IssuedInstructions != 11 || a.FPUOps != 2 {
		t.Errorf("Add result %+v", a)
	}
	a.Scale(2)
	if a.IssuedInstructions != 22 || a.RegReads != 40 {
		t.Errorf("Scale result %+v", a)
	}
}

// bigBlockKernel returns a CifarNet conv kernel rewritten to launch 1024
// threads (32 warps) per block, large enough that even a single CTA uses a
// substantial fraction of an SM's warp capacity.
func bigBlockKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	k := *ks[0]
	k.Launch.Block = [3]int{1024, 1, 1}
	k.Launch.Grid = [3]int{8, 1, 1}
	return &k
}

func TestOccupancyNeverExceedsWarpCapacity(t *testing.T) {
	// Regression: residency used to take the max of the configured CTA limit
	// and the warp-capacity-derived limit, so a kernel with 32-warp blocks on
	// a device with a 48-warp SM kept 2 CTAs (64 warps) resident.
	cfg := gpusim.DefaultConfig()
	cfg.Device.MaxWarpsPerSM = 48
	sim := fastSim(t, cfg)
	st, err := sim.RunKernel(bigBlockKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxResidentWarpsPerSM > 48 {
		t.Errorf("resident warps per SM = %d, exceeds device capacity 48", st.MaxResidentWarpsPerSM)
	}
	if st.MaxResidentWarpsPerSM != 32 {
		t.Errorf("resident warps per SM = %d, want exactly one 32-warp CTA", st.MaxResidentWarpsPerSM)
	}
}

func TestOccupancyRaisesResidencyForSmallBlocks(t *testing.T) {
	// The small-block behaviour must survive the clamp: a kernel whose blocks
	// are far below warp capacity keeps more CTAs than the configured minimum
	// resident (as long as enough blocks exist to fill the SM).
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	var small *kernel.Kernel
	for _, k := range ks {
		if k.Launch.WarpsPerBlock() <= 4 && k.Launch.Blocks() >= 16 {
			small = k
			break
		}
	}
	if small == nil {
		t.Skip("no small-block kernel with enough blocks in CifarNet")
	}
	cfg := gpusim.DefaultConfig()
	sim := fastSim(t, cfg)
	st, err := sim.RunKernel(small)
	if err != nil {
		t.Fatal(err)
	}
	warpsPerCTA := small.Launch.WarpsPerBlock()
	if st.MaxResidentWarpsPerSM <= cfg.MaxCTAsPerSM*warpsPerCTA {
		t.Errorf("%s: resident warps %d should exceed the configured minimum %d CTAs x %d warps",
			small.Name, st.MaxResidentWarpsPerSM, cfg.MaxCTAsPerSM, warpsPerCTA)
	}
	if st.MaxResidentWarpsPerSM > cfg.Device.MaxWarpsPerSM {
		t.Errorf("%s: resident warps %d exceed device capacity %d",
			small.Name, st.MaxResidentWarpsPerSM, cfg.Device.MaxWarpsPerSM)
	}
}

func TestRunKernelsParallelMatchesSerial(t *testing.T) {
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	base := gpusim.DefaultConfig().WithSampling(gpusim.FastSampling())
	serialSim, err := gpusim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	parallelSim, err := gpusim.New(base.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialSim.RunKernels("CifarNet", ks)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelSim.RunKernels("CifarNet", ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Kernels) != len(parallel.Kernels) {
		t.Fatalf("kernel counts differ: %d vs %d", len(serial.Kernels), len(parallel.Kernels))
	}
	for i := range serial.Kernels {
		if !reflect.DeepEqual(serial.Kernels[i], parallel.Kernels[i]) {
			t.Errorf("kernel %s: parallel statistics differ from serial", ks[i].Name)
		}
	}
}

func TestRunKernelSteadyStateAllocations(t *testing.T) {
	// The cycle loop must not allocate per cycle or per memory access:
	// a conv kernel simulating tens of thousands of cycles should stay within
	// a setup-sized allocation budget (warps, caches, schedulers), orders of
	// magnitude below its cycle count.
	n, err := networks.NewCifarNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	k := ks[0]
	for _, tc := range []struct {
		name string
		cfg  gpusim.Config
	}{
		{"default-l1", gpusim.DefaultConfig()},
		{"bypassed-l1", gpusim.DefaultConfig().WithL1Size(0)},
	} {
		sim, err := gpusim.New(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := sim.RunKernel(k); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%s: %d sim cycles, %.0f allocs per run", tc.name, st.SimCycles, allocs)
		if st.SimCycles < 10_000 {
			t.Fatalf("%s: kernel too small (%d cycles) to exercise the steady state", tc.name, st.SimCycles)
		}
		if allocs > 4000 {
			t.Errorf("%s: %.0f allocations per run; the cycle loop is allocating in steady state", tc.name, allocs)
		}
	}
}
