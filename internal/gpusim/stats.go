package gpusim

import (
	"tango/internal/cache"
	"tango/internal/dram"
	"tango/internal/isa"
	"tango/internal/kernel"
)

// StallReason classifies why a warp could not issue in a cycle, following
// nvprof's issue-stall-reason categories (Figure 7 of the paper).
type StallReason uint8

// Stall reasons.
const (
	StallInstFetch StallReason = iota
	StallExecDependency
	StallMemoryDependency
	StallTexture
	StallSync
	StallOther
	StallPipeBusy
	StallConstMemDependency
	StallMemoryThrottle
	StallNotSelected
	// NumStallReasons is the number of defined stall reasons.
	NumStallReasons
)

var stallNames = [NumStallReasons]string{
	StallInstFetch:          "inst_fetch",
	StallExecDependency:     "exec_dependency",
	StallMemoryDependency:   "memory_dependency",
	StallTexture:            "texture",
	StallSync:               "sync",
	StallOther:              "other",
	StallPipeBusy:           "pipe_busy",
	StallConstMemDependency: "constant_memory_dependency",
	StallMemoryThrottle:     "memory_throttle",
	StallNotSelected:        "not_selected",
}

// String returns the nvprof-style stall reason name.
func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return "unknown"
}

// StallReasons lists all reasons in display order.
func StallReasons() []StallReason {
	out := make([]StallReason, NumStallReasons)
	for i := range out {
		out[i] = StallReason(i)
	}
	return out
}

// Activity counts the micro-architectural events the power model charges
// energy for.  Counts are scaled to the full kernel.
type Activity struct {
	// IssuedInstructions is the number of thread-level instructions executed.
	IssuedInstructions int64
	// RegReads and RegWrites are register-file operand accesses.
	RegReads  int64
	RegWrites int64
	// SPOps, FPUOps and SFUOps are executions per pipeline.
	SPOps  int64
	FPUOps int64
	SFUOps int64
	// SharedAccesses and ConstAccesses are on-chip SRAM accesses.
	SharedAccesses int64
	ConstAccesses  int64
	// InstFetches counts instruction-cache fetch groups.
	InstFetches int64
	// GlobalAccesses counts global-memory load/store warp transactions.
	GlobalAccesses int64
}

// Add accumulates other into a.
func (a *Activity) Add(other Activity) {
	a.IssuedInstructions += other.IssuedInstructions
	a.RegReads += other.RegReads
	a.RegWrites += other.RegWrites
	a.SPOps += other.SPOps
	a.FPUOps += other.FPUOps
	a.SFUOps += other.SFUOps
	a.SharedAccesses += other.SharedAccesses
	a.ConstAccesses += other.ConstAccesses
	a.InstFetches += other.InstFetches
	a.GlobalAccesses += other.GlobalAccesses
}

// Scale multiplies every counter by f.
func (a *Activity) Scale(f float64) {
	a.IssuedInstructions = int64(float64(a.IssuedInstructions) * f)
	a.RegReads = int64(float64(a.RegReads) * f)
	a.RegWrites = int64(float64(a.RegWrites) * f)
	a.SPOps = int64(float64(a.SPOps) * f)
	a.FPUOps = int64(float64(a.FPUOps) * f)
	a.SFUOps = int64(float64(a.SFUOps) * f)
	a.SharedAccesses = int64(float64(a.SharedAccesses) * f)
	a.ConstAccesses = int64(float64(a.ConstAccesses) * f)
	a.InstFetches = int64(float64(a.InstFetches) * f)
	a.GlobalAccesses = int64(float64(a.GlobalAccesses) * f)
}

// KernelStats is the result of simulating one kernel.
type KernelStats struct {
	// Kernel is the simulated kernel.
	Kernel *kernel.Kernel

	// Cycles is the estimated execution time of the full kernel in core
	// cycles on the configured device.
	Cycles int64
	// Seconds is Cycles divided by the device core clock.
	Seconds float64

	// SimCycles and SimThreadInstructions describe the detailed (sampled)
	// portion of the simulation.
	SimCycles             int64
	SimThreadInstructions int64
	// ScaleFactor is total dynamic thread instructions / simulated ones.
	ScaleFactor float64

	// TotalThreadInstructions is the full kernel's dynamic instruction count.
	TotalThreadInstructions int64

	// OpCounts and TypeCounts are exact dynamic counts for the full kernel,
	// derived analytically from the thread program.
	OpCounts   [isa.NumOpcodes]int64
	TypeCounts [isa.NumDTypes]int64

	// Stalls attributes issue-slot stall cycles to nvprof-style reasons
	// (sampled, not scaled; use for relative breakdowns).
	Stalls [NumStallReasons]int64

	// L1, L2 and DRAM are memory system statistics scaled to the full kernel.
	L1   cache.Stats
	L2   cache.Stats
	DRAM dram.Stats

	// Activity holds the power-model event counts scaled to the full kernel.
	Activity Activity

	// Occupancy and register usage.
	MaxResidentWarpsPerSM int
	AllocatedRegsPerSM    int // registers allocated per SM (allocated regs/thread x resident threads)
	LiveRegsPerSM         int // registers actually referenced per SM
}

// IPC returns simulated thread instructions per simulated cycle (per modeled
// SM aggregate).
func (ks *KernelStats) IPC() float64 {
	if ks.SimCycles == 0 {
		return 0
	}
	return float64(ks.SimThreadInstructions) / float64(ks.SimCycles)
}

// StallTotal returns the total attributed stall slots.
func (ks *KernelStats) StallTotal() int64 {
	var t int64
	for _, v := range ks.Stalls {
		t += v
	}
	return t
}

// RunStats aggregates the simulation of a whole network.
type RunStats struct {
	// Network is the benchmark name.
	Network string
	// Kernels holds per-kernel statistics in layer order.
	Kernels []*KernelStats
}

// TotalCycles sums the estimated cycles of all kernels.
func (r *RunStats) TotalCycles() int64 {
	var t int64
	for _, k := range r.Kernels {
		t += k.Cycles
	}
	return t
}

// TotalSeconds sums the estimated execution time of all kernels.
func (r *RunStats) TotalSeconds() float64 {
	var t float64
	for _, k := range r.Kernels {
		t += k.Seconds
	}
	return t
}

// CyclesByClass groups estimated cycles by the kernels' reporting class.
func (r *RunStats) CyclesByClass() map[string]int64 {
	out := make(map[string]int64)
	for _, k := range r.Kernels {
		out[k.Kernel.Class] += k.Cycles
	}
	return out
}

// OpTotals sums dynamic opcode counts across all kernels.
func (r *RunStats) OpTotals() [isa.NumOpcodes]int64 {
	var out [isa.NumOpcodes]int64
	for _, k := range r.Kernels {
		for op, c := range k.OpCounts {
			out[op] += c
		}
	}
	return out
}

// StallsByClass aggregates stall-reason counts by kernel class.
func (r *RunStats) StallsByClass() map[string][NumStallReasons]int64 {
	out := make(map[string][NumStallReasons]int64)
	for _, k := range r.Kernels {
		acc := out[k.Kernel.Class]
		for i, v := range k.Stalls {
			acc[i] += v
		}
		out[k.Kernel.Class] = acc
	}
	return out
}

// L2ByClass aggregates L2 statistics by kernel class.
func (r *RunStats) L2ByClass() map[string]cache.Stats {
	out := make(map[string]cache.Stats)
	for _, k := range r.Kernels {
		acc := out[k.Kernel.Class]
		acc.Add(k.L2)
		out[k.Kernel.Class] = acc
	}
	return out
}
