package gpusim

import (
	"fmt"

	"tango/internal/cache"
	"tango/internal/dram"
	"tango/internal/isa"
	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/sched"
)

// maxSimCycles is a safety bound on detailed simulation per kernel.
const maxSimCycles = 20_000_000

// warpSize is the SIMT width.
const warpSize = 32

// Simulator executes kernels on the configured GPU model.
type Simulator struct {
	cfg Config
}

// New constructs a simulator, validating and defaulting the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the validated configuration in use.
func (s *Simulator) Config() Config { return s.cfg }

// RunNetwork lowers every layer of the network and simulates each kernel in
// order, returning per-kernel statistics.
func (s *Simulator) RunNetwork(n *networks.Network) (*RunStats, error) {
	kernels, err := kernel.Generate(n)
	if err != nil {
		return nil, err
	}
	return s.RunKernels(n.Name, kernels)
}

// pendingFill is an L1 miss whose data has not yet returned; its MSHR stays
// allocated until the fill completes.
type pendingFill struct {
	addr  uint64
	ready int64
}

// maxOutstandingBypass bounds in-flight global requests per SM when the L1 is
// bypassed: the LSU and interconnect queues are finite even without MSHRs.
const maxOutstandingBypass = 48

// maxCoalescedLines bounds the distinct 128-byte lines one warp access can
// touch: one per lane.
const maxCoalescedLines = warpSize

// ctaSlot tracks the live-warp count of one resident CTA.
type ctaSlot struct {
	cta   int
	warps int
}

// smState is the per-SM simulation state.
type smState struct {
	id        int
	scheduler sched.Scheduler
	l1        *cache.Cache
	unitFree  [isa.NumFuncUnits]int64

	// warps holds the live warps in launch order, so warp IDs are strictly
	// increasing along the slice (the schedulers rely on that ordering).
	// Retired warps are compacted out at the start of the next cycle.
	warps      []*warp
	nextWarpID int
	live       int // live warps on this SM
	retired    int // warps retired since the last compaction

	// ctaLive holds per-CTA live-warp counts, maintained incrementally as
	// warps retire; a CTA's slot is removed when its last warp finishes,
	// freeing residency for the dispatcher.  len(ctaLive) is the number of
	// resident CTAs.
	ctaLive []ctaSlot

	fills []pendingFill
	// bypassInFlight holds the completion times of outstanding global
	// requests issued while the L1 is bypassed.
	bypassInFlight []int64

	// events is the min-heap of pending wake-up cycles consumed by the
	// fast-forward path.
	events eventHeap

	// Reusable per-cycle scratch buffers; the cycle loop performs no
	// steady-state allocations.
	cands   []sched.Candidate
	reasons []StallReason
	units   []isa.FuncUnit
	issued  []bool
	lineBuf []uint64
}

// ctaWarps returns the live warp count of the given resident CTA.
func (sm *smState) ctaWarps(ctaID int) int {
	for i := range sm.ctaLive {
		if sm.ctaLive[i].cta == ctaID {
			return sm.ctaLive[i].warps
		}
	}
	return 0
}

// retireWarp updates the live bookkeeping after w executed its last
// instruction.  The warp stays in sm.warps until the next compaction.
func (sm *smState) retireWarp(w *warp) {
	sm.live--
	sm.retired++
	for i := range sm.ctaLive {
		if sm.ctaLive[i].cta == w.ctaID {
			sm.ctaLive[i].warps--
			if sm.ctaLive[i].warps == 0 {
				sm.ctaLive = append(sm.ctaLive[:i], sm.ctaLive[i+1:]...)
			}
			break
		}
	}
}

// compactWarps removes retired warps in place, preserving launch order.
func (sm *smState) compactWarps() {
	kept := sm.warps[:0]
	for _, w := range sm.warps {
		if !w.done {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(sm.warps); i++ {
		sm.warps[i] = nil
	}
	sm.warps = kept
	sm.retired = 0
}

// drainFills installs lines whose data has arrived by cycle now and retires
// completed bypass requests.
func (sm *smState) drainFills(now int64) {
	kept := sm.fills[:0]
	for _, f := range sm.fills {
		if f.ready <= now {
			sm.l1.Fill(f.addr)
		} else {
			kept = append(kept, f)
		}
	}
	sm.fills = kept

	keptB := sm.bypassInFlight[:0]
	for _, r := range sm.bypassInFlight {
		if r > now {
			keptB = append(keptB, r)
		}
	}
	sm.bypassInFlight = keptB
}

// regionLayout assigns a base device address to each kernel buffer.
type regionLayout struct {
	base [isa.NumRegions]uint64
	size [isa.NumRegions]uint64
}

func layoutRegions(k *kernel.Kernel) regionLayout {
	var rl regionLayout
	align := func(v uint64) uint64 { return (v + 255) &^ 255 }
	cursor := uint64(4096)
	place := func(r isa.Region, size int64) {
		if size <= 0 {
			size = 256
		}
		rl.base[r] = cursor
		rl.size[r] = uint64(size)
		cursor = align(cursor + uint64(size))
	}
	place(isa.RegionInput, k.InputBytes)
	place(isa.RegionWeights, k.WeightBytes)
	place(isa.RegionBias, int64(k.Launch.CmemBytes))
	place(isa.RegionOutput, k.OutputBytes)
	place(isa.RegionScratch, 4096)
	return rl
}

// RunKernel simulates one kernel and returns scaled statistics.
func (s *Simulator) RunKernel(k *kernel.Kernel) (*KernelStats, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	fp := newFlatProgram(k.Program, cfg.Sampling)

	totalCTAs := k.Launch.Blocks()
	threadsPerBlock := k.Launch.ThreadsPerBlock()
	warpsPerCTA := k.Launch.WarpsPerBlock()

	// Occupancy-driven CTA residency: an SM keeps as many blocks resident as
	// its warp capacity allows, up to the hardware limit of 32 blocks, like
	// real hardware does — so kernels with small blocks keep many blocks
	// resident, and a kernel whose single block exceeds capacity still runs
	// one.  The configured MaxCTAsPerSM is the fallback residency for device
	// models that do not bound warps per SM.
	ctasPerSM := cfg.MaxCTAsPerSM
	if cfg.Device.MaxWarpsPerSM > 0 {
		ctasPerSM = cfg.Device.MaxWarpsPerSM / warpsPerCTA
	}
	if ctasPerSM > 32 {
		ctasPerSM = 32
	}
	if ctasPerSM < 1 {
		ctasPerSM = 1
	}

	sampledCTAs := totalCTAs
	if cfg.Sampling.MaxCTAs > 0 && sampledCTAs > cfg.Sampling.MaxCTAs {
		// Sample at least enough CTAs to populate the modeled SMs at the
		// kernel's natural residency.
		minSample := ctasPerSM * cfg.ModeledSMs
		sampledCTAs = cfg.Sampling.MaxCTAs
		if sampledCTAs < minSample {
			sampledCTAs = minSample
		}
		if sampledCTAs > totalCTAs {
			sampledCTAs = totalCTAs
		}
	}

	// Memory system shared across SMs.
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	rl := layoutRegions(k)

	// Modeled SMs.
	modeled := cfg.ModeledSMs
	if modeled > sampledCTAs {
		modeled = sampledCTAs
	}
	if modeled < 1 {
		modeled = 1
	}
	sms := make([]*smState, modeled)
	for i := range sms {
		sc, err := sched.New(cfg.Scheduler)
		if err != nil {
			return nil, err
		}
		l1, err := cache.New(cfg.L1D)
		if err != nil {
			return nil, err
		}
		sms[i] = &smState{
			id:        i,
			scheduler: sc,
			l1:        l1,
			lineBuf:   make([]uint64, 0, maxCoalescedLines),
		}
	}

	st := &KernelStats{Kernel: k}
	st.TotalThreadInstructions = k.DynamicInstructions()
	// Exact op/type mixes for the full kernel from the program template.
	ops := k.Program.OpCounts()
	types := k.Program.TypeCounts()
	threads := int64(k.Launch.TotalThreads())
	for i := range ops {
		st.OpCounts[i] = ops[i] * threads
	}
	for i := range types {
		st.TypeCounts[i] = types[i] * threads
	}

	// CTA dispatcher.  liveWarps counts live warps across all SMs so loop
	// termination needs no per-cycle rescan.
	nextCTA := 0
	liveWarps := 0
	launchCTA := func(sm *smState, now int64) {
		ctaID := nextCTA
		nextCTA++
		sm.ctaLive = append(sm.ctaLive, ctaSlot{cta: ctaID, warps: warpsPerCTA})
		remaining := threadsPerBlock
		for wi := 0; wi < warpsPerCTA; wi++ {
			lanes := warpSize
			if remaining < warpSize {
				lanes = remaining
			}
			remaining -= lanes
			w := newWarp(sm.nextWarpID, ctaID, lanes, k.Launch.Regs, &fp, now)
			sm.nextWarpID++
			sm.warps = append(sm.warps, w)
			sm.live++
			liveWarps++
			sm.events.push(w.fetchReady)
		}
	}
	// Initial assignment.
	for _, sm := range sms {
		for len(sm.ctaLive) < ctasPerSM && nextCTA < sampledCTAs {
			launchCTA(sm, 0)
		}
	}

	var now int64
	var simThreadInstr int64
	activity := Activity{}
	maxWarpsResident := 0

	// stallTemp accumulates this cycle's per-warp stall attribution so that
	// fast-forwarded cycles can replay it cheaply.
	var stallTemp [NumStallReasons]int64

	for liveWarps > 0 || nextCTA < sampledCTAs {
		if now > maxSimCycles {
			return nil, fmt.Errorf("gpusim: kernel %s exceeded %d simulated cycles", k.Name, maxSimCycles)
		}
		issuedAny := false
		for i := range stallTemp {
			stallTemp[i] = 0
		}

		for _, sm := range sms {
			sm.events.drainThrough(now)
			sm.drainFills(now)
			if sm.retired > 0 {
				sm.compactWarps()
			}
			// Launch new sampled CTAs into freed residency.
			for len(sm.ctaLive) < ctasPerSM && nextCTA < sampledCTAs {
				launchCTA(sm, now)
			}
			if sm.live > maxWarpsResident {
				maxWarpsResident = sm.live
			}

			// One classification pass per cycle feeds both the scheduler's
			// candidate list and the stall attribution below.  Candidates are
			// index-aligned with sm.warps, so a pick maps straight back to
			// its warp without a lookup.
			cands := sm.cands[:0]
			reasons := sm.reasons[:0]
			units := sm.units[:0]
			issued := sm.issued[:0]
			for _, w := range sm.warps {
				var ready bool
				var reason StallReason
				if w.blockedUntil > now {
					// Memoized block: nothing the warp waits on can change
					// before blockedUntil, so skip re-classification.
					reason = w.blockedReason
				} else {
					ready, reason, w.blockedUntil = s.classify(w, sm, now)
					w.blockedReason = reason
				}
				unit := isa.UnitNone
				if ready {
					unit = isa.UnitFor(w.current())
				}
				cands = append(cands, sched.Candidate{
					ID:    w.id,
					Ready: ready,
					Age:   w.launch,
					WaitingOnMemory: !ready && (reason == StallMemoryDependency ||
						reason == StallMemoryThrottle),
				})
				reasons = append(reasons, reason)
				units = append(units, unit)
				issued = append(issued, false)
			}
			sm.cands, sm.reasons, sm.units, sm.issued = cands, reasons, units, issued

			for slot := 0; slot < cfg.IssueWidth; slot++ {
				pick := sm.scheduler.Pick(cands, now)
				if pick < 0 {
					break
				}
				w := sm.warps[pick]
				unit := units[pick]
				if s.issue(w, sm, l2, mem, rl, now, &activity, st) {
					issuedAny = true
					issued[pick] = true
					simThreadInstr += int64(w.lanes)
					// The issue changed the warp's dependencies; force a
					// fresh classification next cycle.
					w.blockedUntil = 0
					if w.done {
						sm.retireWarp(w)
						liveWarps--
					}
					// The issue occupied its functional unit, so structural
					// hazards still serialize within the cycle: demote every
					// remaining candidate bound for the same unit, exactly
					// what per-slot reclassification used to report as
					// pipe-busy.
					for i := range cands {
						if cands[i].Ready && units[i] == unit {
							cands[i].Ready = false
							reasons[i] = StallPipeBusy
						}
					}
				} else {
					// Memory throttle: the warp cannot retry this cycle.
					reasons[pick] = StallMemoryThrottle
				}
				// The warp leaves this cycle's issue pool.  Marking it as
				// memory-waiting reproduces what per-slot reclassification
				// used to show the two-level scheduler: an issued warp
				// vanished from the candidate list (dropping out of the
				// active set), and a throttled warp reclassified as blocked
				// on memory.  GTO and LRR only read Ready.
				cands[pick].Ready = false
				cands[pick].WaitingOnMemory = true
			}

			// Per-warp stall attribution for this cycle, reusing the
			// classification above.
			for i := range cands {
				if issued[i] {
					continue
				}
				if cands[i].Ready {
					stallTemp[StallNotSelected]++
				} else {
					stallTemp[reasons[i]]++
				}
			}
		}

		if issuedAny {
			for i, v := range stallTemp {
				st.Stalls[i] += v
			}
			now++
			continue
		}

		// Nothing issued anywhere: fast-forward to the next pending event and
		// charge the skipped cycles with this cycle's stall attribution.
		next := nextEventTime(sms, now)
		skipped := next - now
		for i, v := range stallTemp {
			st.Stalls[i] += v * skipped
		}
		now = next
	}

	st.SimCycles = now
	if st.SimCycles == 0 {
		st.SimCycles = 1
	}
	st.SimThreadInstructions = simThreadInstr
	if simThreadInstr == 0 {
		simThreadInstr = 1
	}
	st.ScaleFactor = float64(st.TotalThreadInstructions) / float64(simThreadInstr)

	// Scale memory system and activity statistics to the full kernel.
	st.L2 = l2.Stats()
	st.DRAM = mem.Stats()
	for _, sm := range sms {
		st.L1.Add(sm.l1.Stats())
	}
	scaleCache := func(cs *cache.Stats, f float64) {
		cs.Accesses = int64(float64(cs.Accesses) * f)
		cs.Hits = int64(float64(cs.Hits) * f)
		cs.Misses = int64(float64(cs.Misses) * f)
		cs.MergedMiss = int64(float64(cs.MergedMiss) * f)
		cs.ResFails = int64(float64(cs.ResFails) * f)
		cs.Bypasses = int64(float64(cs.Bypasses) * f)
		cs.Evictions = int64(float64(cs.Evictions) * f)
		cs.FillsArrive = int64(float64(cs.FillsArrive) * f)
	}
	scaleCache(&st.L1, st.ScaleFactor)
	scaleCache(&st.L2, st.ScaleFactor)
	st.DRAM.Requests = int64(float64(st.DRAM.Requests) * st.ScaleFactor)
	st.DRAM.ReadRequests = int64(float64(st.DRAM.ReadRequests) * st.ScaleFactor)
	st.DRAM.WriteRequests = int64(float64(st.DRAM.WriteRequests) * st.ScaleFactor)
	st.DRAM.BytesMoved = int64(float64(st.DRAM.BytesMoved) * st.ScaleFactor)
	st.DRAM.StallCycles = int64(float64(st.DRAM.StallCycles) * st.ScaleFactor)
	activity.Scale(st.ScaleFactor)
	st.Activity = activity

	// Estimate full-kernel cycles from the simulated throughput: the device
	// runs min(SMs, CTAs) SMs in parallel at the observed per-SM rate.
	perSMThroughput := float64(st.SimThreadInstructions) / float64(st.SimCycles) / float64(len(sms))
	if perSMThroughput <= 0 {
		perSMThroughput = 1
	}
	utilSMs := cfg.Device.SMs
	if totalCTAs < utilSMs {
		utilSMs = totalCTAs
	}
	if utilSMs < 1 {
		utilSMs = 1
	}
	st.Cycles = int64(float64(st.TotalThreadInstructions) / (perSMThroughput * float64(utilSMs)))
	if st.Cycles < st.SimCycles && sampledCTAs == totalCTAs && cfg.Sampling.MaxLoopIters == 0 {
		// Exhaustive simulation of a small kernel: trust the simulated time.
		st.Cycles = st.SimCycles
	}
	if st.Cycles <= 0 {
		st.Cycles = 1
	}
	st.Seconds = float64(st.Cycles) / (float64(cfg.Device.CoreClockMHz) * 1e6)

	st.MaxResidentWarpsPerSM = maxWarpsResident
	residentThreads := maxWarpsResident * warpSize
	if residentThreads > 0 {
		st.AllocatedRegsPerSM = k.Launch.Regs * residentThreads
		st.LiveRegsPerSM = k.Program.MaxRegister() * residentThreads
	}
	return st, nil
}

// classify reports whether the warp can issue now and, when it cannot, the
// nvprof-style reason plus the cycle the blocking condition expires (zero
// when the condition is not time-bounded, e.g. a full MSHR file, and must be
// re-checked every cycle).
func (s *Simulator) classify(w *warp, sm *smState, now int64) (bool, StallReason, int64) {
	if w.done {
		return false, StallOther, 0
	}
	if w.syncUntil > now {
		return false, StallSync, w.syncUntil
	}
	if w.fetchReady > now {
		return false, StallInstFetch, w.fetchReady
	}
	ins := w.current()
	if blocked := w.srcBlock(ins, now); blocked >= 0 {
		until := w.regReady[blocked]
		switch {
		case w.regFromConst[blocked]:
			return false, StallConstMemDependency, until
		case w.regFromMem[blocked]:
			return false, StallMemoryDependency, until
		default:
			return false, StallExecDependency, until
		}
	}
	unit := isa.UnitFor(ins)
	if sm.unitFree[unit] > now {
		return false, StallPipeBusy, sm.unitFree[unit]
	}
	if ins.IsMem() && ins.Space == isa.SpaceGlobal {
		if sm.l1.Config().Bypassed() {
			// Without an L1, the finite LSU / interconnect queues throttle
			// further global accesses.
			if len(sm.bypassInFlight) >= maxOutstandingBypass {
				return false, StallMemoryThrottle, 0
			}
		} else if cfg := sm.l1.Config(); cfg.MSHRs > 0 && sm.l1.PendingMisses() >= cfg.MSHRs {
			// A full MSHR file throttles further global accesses.
			return false, StallMemoryThrottle, 0
		}
	}
	return true, StallOther, 0
}

// issue executes one instruction of the warp.  It returns false when the
// instruction could not complete (memory throttle) and must be retried.
// Every future effect (write-back, port release, barrier, fetch) is also
// pushed onto the SM's event heap so the fast-forward path can find it.
func (s *Simulator) issue(w *warp, sm *smState, l2 *cache.Cache, mem *dram.DRAM, rl regionLayout,
	now int64, act *Activity, st *KernelStats) bool {

	ins := w.current()
	unit := isa.UnitFor(ins)
	lanes := int64(w.lanes)
	portCycles := int64(isa.ThroughputCPI(ins))

	if ins.IsMem() && ins.Space == isa.SpaceGlobal {
		ready, transactions, ok := s.globalAccess(w, sm, l2, mem, rl, ins, now, st)
		if !ok {
			st.Stalls[StallMemoryThrottle]++
			return false
		}
		act.GlobalAccesses += int64(transactions)
		// The load/store port is occupied for one cycle per generated memory
		// transaction, so poorly coalesced accesses consume proportionally
		// more issue bandwidth.
		portCycles = int64(transactions)
		if portCycles < 1 {
			portCycles = 1
		}
		if ins.IsLoad() && ins.Dst != isa.NoReg {
			w.writeDst(ins, ready, true, false)
			sm.events.push(ready)
		}
	} else if ins.IsMem() && ins.Space == isa.SpaceShared {
		act.SharedAccesses += lanes
		if ins.IsLoad() && ins.Dst != isa.NoReg {
			w.writeDst(ins, now+24, true, false)
			sm.events.push(now + 24)
		}
	} else if ins.IsMem() && ins.Space == isa.SpaceConst {
		act.ConstAccesses++
		if ins.IsLoad() && ins.Dst != isa.NoReg {
			w.writeDst(ins, now+20, false, true)
			sm.events.push(now + 20)
		}
	} else if ins.Op == isa.OpBar {
		// Barrier: the warp waits for its CTA mates (approximated as a fixed
		// window proportional to the CTA's live warp count).
		w.syncUntil = now + int64(8*sm.ctaWarps(w.ctaID))
		sm.events.push(w.syncUntil)
	} else {
		latency := int64(isa.Latency(ins))
		if ins.Dst != isa.NoReg {
			w.writeDst(ins, now+latency, false, false)
			sm.events.push(now + latency)
		}
	}

	// Pipeline occupancy and activity accounting.
	sm.unitFree[unit] = now + portCycles
	sm.events.push(sm.unitFree[unit])
	act.IssuedInstructions += lanes
	act.RegReads += int64(ins.NSrcs) * lanes
	if ins.Dst != isa.NoReg {
		act.RegWrites += lanes
	}
	switch unit {
	case isa.UnitSP, isa.UnitCtrl, isa.UnitNone:
		act.SPOps += lanes
	case isa.UnitFPU:
		act.FPUOps += lanes
	case isa.UnitSFU:
		act.SFUOps += lanes
	}
	if w.pc == 0 {
		act.InstFetches++
	}

	w.advance(now)
	if !w.done && w.fetchReady > now {
		sm.events.push(w.fetchReady)
	}
	return true
}

// globalAccess models a global-memory warp transaction: coalescing, L1, L2
// and DRAM.  It returns the cycle at which the data is available, the number
// of memory transactions generated, and false if the L1 could not reserve an
// MSHR.
func (s *Simulator) globalAccess(w *warp, sm *smState, l2 *cache.Cache, mem *dram.DRAM, rl regionLayout,
	ins isa.Instruction, now int64, st *KernelStats) (ready int64, transactions int, ok bool) {

	// With the L1 bypassed the finite LSU / interconnect queues bound the
	// outstanding requests.  Classification checks this too, but an earlier
	// issue in the same cycle may have filled the queue since.
	if sm.l1.Config().Bypassed() && len(sm.bypassInFlight) >= maxOutstandingBypass {
		return 0, 0, false
	}

	pat := ins.Pattern
	base := rl.base[pat.Region]
	footprint := pat.Footprint
	if footprint == 0 {
		footprint = rl.size[pat.Region]
	}
	if footprint == 0 {
		footprint = 256
	}
	lineBytes := uint64(128)

	// Coalesce the lanes' addresses into unique 128-byte transactions using a
	// fixed-capacity scratch slice (at most one line per lane), visited in
	// lane order so the memory system sees a deterministic access sequence.
	lines := sm.lineBuf[:0]
	iter := int64(w.iterIndex())
	for lane := 0; lane < w.lanes; lane++ {
		off := int64(pat.Base) + int64(lane)*pat.ThreadStride + iter*pat.IterStride + int64(w.ctaID)*pat.BlockStride
		if off < 0 {
			off = -off
		}
		addr := base + uint64(off)%footprint
		line := addr / lineBytes
		seen := false
		for _, l := range lines {
			if l == line {
				seen = true
				break
			}
		}
		if !seen {
			lines = append(lines, line)
		}
	}
	sm.lineBuf = lines

	ready = now
	l1 := sm.l1
	for _, lineAddr := range lines {
		addr := lineAddr * lineBytes
		var lineReady int64
		if l1.Config().Bypassed() {
			lineReady = s.l2Access(l2, mem, addr, ins.IsStore(), now)
			sm.bypassInFlight = append(sm.bypassInFlight, lineReady)
			sm.events.push(lineReady)
		} else {
			switch l1.Access(addr, ins.IsStore()) {
			case cache.Hit:
				lineReady = now + int64(l1.Config().HitLatency)
			case cache.MissMerged:
				lineReady = now + int64(l1.Config().HitLatency) + 30
			case cache.ReservationFail:
				return 0, 0, false
			default: // Miss
				lineReady = s.l2Access(l2, mem, addr, ins.IsStore(), now)
				// The MSHR stays allocated until the fill returns.
				sm.fills = append(sm.fills, pendingFill{addr: addr, ready: lineReady})
				sm.events.push(lineReady)
			}
		}
		if lineReady > ready {
			ready = lineReady
		}
	}
	// Serialize additional transactions on the LSU port.
	ready += int64(2 * (len(lines) - 1))
	return ready, len(lines), true
}

// l2Access models an access that missed (or bypassed) the L1.
func (s *Simulator) l2Access(l2 *cache.Cache, mem *dram.DRAM, addr uint64, isWrite bool, now int64) int64 {
	switch l2.Access(addr, isWrite) {
	case cache.Hit:
		return now + int64(l2.Config().HitLatency)
	case cache.MissMerged:
		return now + int64(l2.Config().HitLatency) + int64(s.cfg.DRAM.LatencyCycles)/2
	case cache.ReservationFail:
		// Treat as a miss with an extra queueing penalty.
		ready := mem.Access(addr, isWrite, now+int64(l2.Config().HitLatency))
		return ready + 50
	default: // Miss
		ready := mem.Access(addr, isWrite, now+int64(l2.Config().HitLatency))
		l2.Fill(addr)
		return ready
	}
}

// nextEventTime returns the earliest cycle after now at which any SM has a
// pending event, consuming the per-SM min-heaps.  When no events are pending
// it returns now+1 so the cycle loop always makes progress.
func nextEventTime(sms []*smState, now int64) int64 {
	next := int64(-1)
	for _, sm := range sms {
		sm.events.drainThrough(now)
		if sm.events.len() == 0 {
			continue
		}
		if t := sm.events.peek(); next == -1 || t < next {
			next = t
		}
	}
	if next == -1 {
		return now + 1
	}
	return next
}
