package gpusim

import (
	"fmt"

	"tango/internal/cache"
	"tango/internal/dram"
	"tango/internal/isa"
	"tango/internal/kernel"
	"tango/internal/networks"
	"tango/internal/sched"
)

// maxSimCycles is a safety bound on detailed simulation per kernel.
const maxSimCycles = 20_000_000

// warpSize is the SIMT width.
const warpSize = 32

// Simulator executes kernels on the configured GPU model.
type Simulator struct {
	cfg Config
}

// New constructs a simulator, validating and defaulting the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the validated configuration in use.
func (s *Simulator) Config() Config { return s.cfg }

// RunNetwork lowers every layer of the network and simulates each kernel in
// order, returning per-kernel statistics.
func (s *Simulator) RunNetwork(n *networks.Network) (*RunStats, error) {
	kernels, err := kernel.Generate(n)
	if err != nil {
		return nil, err
	}
	return s.RunKernels(n.Name, kernels)
}

// RunKernels simulates an explicit kernel list.
func (s *Simulator) RunKernels(network string, kernels []*kernel.Kernel) (*RunStats, error) {
	rs := &RunStats{Network: network}
	for _, k := range kernels {
		ks, err := s.RunKernel(k)
		if err != nil {
			return nil, fmt.Errorf("gpusim: %s: %w", k.Name, err)
		}
		rs.Kernels = append(rs.Kernels, ks)
	}
	return rs, nil
}

// pendingFill is an L1 miss whose data has not yet returned; its MSHR stays
// allocated until the fill completes.
type pendingFill struct {
	addr  uint64
	ready int64
}

// maxOutstandingBypass bounds in-flight global requests per SM when the L1 is
// bypassed: the LSU and interconnect queues are finite even without MSHRs.
const maxOutstandingBypass = 48

// smState is the per-SM simulation state.
type smState struct {
	id        int
	scheduler sched.Scheduler
	l1        *cache.Cache
	unitFree  [isa.NumFuncUnits]int64
	warps     []*warp
	resident  int // resident CTAs
	fills     []pendingFill
	// bypassInFlight holds the completion times of outstanding global
	// requests issued while the L1 is bypassed.
	bypassInFlight []int64
}

// drainFills installs lines whose data has arrived by cycle now and retires
// completed bypass requests.
func (sm *smState) drainFills(now int64) {
	kept := sm.fills[:0]
	for _, f := range sm.fills {
		if f.ready <= now {
			sm.l1.Fill(f.addr)
		} else {
			kept = append(kept, f)
		}
	}
	sm.fills = kept

	keptB := sm.bypassInFlight[:0]
	for _, r := range sm.bypassInFlight {
		if r > now {
			keptB = append(keptB, r)
		}
	}
	sm.bypassInFlight = keptB
}

// regionLayout assigns a base device address to each kernel buffer.
type regionLayout struct {
	base [isa.NumRegions]uint64
	size [isa.NumRegions]uint64
}

func layoutRegions(k *kernel.Kernel) regionLayout {
	var rl regionLayout
	align := func(v uint64) uint64 { return (v + 255) &^ 255 }
	cursor := uint64(4096)
	place := func(r isa.Region, size int64) {
		if size <= 0 {
			size = 256
		}
		rl.base[r] = cursor
		rl.size[r] = uint64(size)
		cursor = align(cursor + uint64(size))
	}
	place(isa.RegionInput, k.InputBytes)
	place(isa.RegionWeights, k.WeightBytes)
	place(isa.RegionBias, int64(k.Launch.CmemBytes))
	place(isa.RegionOutput, k.OutputBytes)
	place(isa.RegionScratch, 4096)
	return rl
}

// RunKernel simulates one kernel and returns scaled statistics.
func (s *Simulator) RunKernel(k *kernel.Kernel) (*KernelStats, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	fp := newFlatProgram(k.Program, cfg.Sampling)

	totalCTAs := k.Launch.Blocks()
	threadsPerBlock := k.Launch.ThreadsPerBlock()
	warpsPerCTA := k.Launch.WarpsPerBlock()

	// Occupancy-driven CTA residency: kernels with small blocks keep more
	// blocks resident per SM, up to the hardware limit of 32 blocks or the
	// device's warp capacity, like real hardware does.
	ctasPerSM := cfg.MaxCTAsPerSM
	if hw := cfg.Device.MaxWarpsPerSM / warpsPerCTA; hw > ctasPerSM {
		ctasPerSM = hw
	}
	if ctasPerSM > 32 {
		ctasPerSM = 32
	}
	if ctasPerSM < 1 {
		ctasPerSM = 1
	}

	sampledCTAs := totalCTAs
	if cfg.Sampling.MaxCTAs > 0 && sampledCTAs > cfg.Sampling.MaxCTAs {
		// Sample at least enough CTAs to populate the modeled SMs at the
		// kernel's natural residency.
		minSample := ctasPerSM * cfg.ModeledSMs
		sampledCTAs = cfg.Sampling.MaxCTAs
		if sampledCTAs < minSample {
			sampledCTAs = minSample
		}
		if sampledCTAs > totalCTAs {
			sampledCTAs = totalCTAs
		}
	}

	// Memory system shared across SMs.
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	rl := layoutRegions(k)

	// Modeled SMs.
	modeled := cfg.ModeledSMs
	if modeled > sampledCTAs {
		modeled = sampledCTAs
	}
	if modeled < 1 {
		modeled = 1
	}
	sms := make([]*smState, modeled)
	for i := range sms {
		sc, err := sched.New(cfg.Scheduler)
		if err != nil {
			return nil, err
		}
		l1, err := cache.New(cfg.L1D)
		if err != nil {
			return nil, err
		}
		sms[i] = &smState{id: i, scheduler: sc, l1: l1}
	}

	st := &KernelStats{Kernel: k}
	st.TotalThreadInstructions = k.DynamicInstructions()
	// Exact op/type mixes for the full kernel from the program template.
	ops := k.Program.OpCounts()
	types := k.Program.TypeCounts()
	threads := int64(k.Launch.TotalThreads())
	for i := range ops {
		st.OpCounts[i] = ops[i] * threads
	}
	for i := range types {
		st.TypeCounts[i] = types[i] * threads
	}

	// CTA dispatcher.
	nextCTA := 0
	launchCTA := func(sm *smState, now int64) {
		ctaID := nextCTA
		nextCTA++
		sm.resident++
		remaining := threadsPerBlock
		for wi := 0; wi < warpsPerCTA; wi++ {
			lanes := warpSize
			if remaining < warpSize {
				lanes = remaining
			}
			remaining -= lanes
			w := newWarp(len(sm.warps), ctaID, lanes, k.Launch.Regs, &fp, now)
			sm.warps = append(sm.warps, w)
		}
	}
	// Initial assignment.
	for _, sm := range sms {
		for sm.resident < ctasPerSM && nextCTA < sampledCTAs {
			launchCTA(sm, 0)
		}
	}

	var now int64
	var simThreadInstr int64
	activity := Activity{}
	maxWarpsResident := 0

	allDone := func() bool {
		if nextCTA < sampledCTAs {
			return false
		}
		for _, sm := range sms {
			for _, w := range sm.warps {
				if !w.done {
					return false
				}
			}
		}
		return true
	}

	// stallTemp accumulates this cycle's per-warp stall attribution so that
	// fast-forwarded cycles can replay it cheaply.
	var stallTemp [NumStallReasons]int64
	candBuf := make([]sched.Candidate, 0, 64)

	for !allDone() {
		if now > maxSimCycles {
			return nil, fmt.Errorf("gpusim: kernel %s exceeded %d simulated cycles", k.Name, maxSimCycles)
		}
		issuedAny := false
		for i := range stallTemp {
			stallTemp[i] = 0
		}

		for _, sm := range sms {
			sm.drainFills(now)
			// Retire finished CTAs and launch new sampled CTAs.
			retireAndRefill(sm, &nextCTA, sampledCTAs, ctasPerSM, launchCTA, now)
			live := 0
			for _, w := range sm.warps {
				if !w.done {
					live++
				}
			}
			if live > maxWarpsResident {
				maxWarpsResident = live
			}

			issuedIDs := make(map[int]bool, cfg.IssueWidth)
			for slot := 0; slot < cfg.IssueWidth; slot++ {
				candBuf = candBuf[:0]
				for _, w := range sm.warps {
					if w.done || issuedIDs[w.id] {
						continue
					}
					ready, reason := s.classify(w, sm, now)
					candBuf = append(candBuf, sched.Candidate{
						ID:    w.id,
						Ready: ready,
						Age:   w.launch,
						WaitingOnMemory: !ready && (reason == StallMemoryDependency ||
							reason == StallMemoryThrottle),
					})
				}
				pick := sm.scheduler.Pick(candBuf, now)
				if pick < 0 {
					continue
				}
				wID := candBuf[pick].ID
				var picked *warp
				for _, w := range sm.warps {
					if w.id == wID {
						picked = w
						break
					}
				}
				if picked == nil {
					continue
				}
				ok := s.issue(picked, sm, l2, mem, rl, now, &activity, st)
				if ok {
					issuedAny = true
					issuedIDs[wID] = true
					simThreadInstr += int64(picked.lanes)
				}
			}

			// Per-warp stall attribution for this cycle.
			for _, w := range sm.warps {
				if w.done {
					continue
				}
				if issuedIDs[w.id] {
					continue
				}
				ready, reason := s.classify(w, sm, now)
				if ready {
					stallTemp[StallNotSelected]++
				} else {
					stallTemp[reason]++
				}
			}
		}

		if issuedAny {
			for i, v := range stallTemp {
				st.Stalls[i] += v
			}
			now++
			continue
		}

		// Nothing issued anywhere: fast-forward to the next event and charge
		// the skipped cycles with this cycle's stall attribution.
		next := s.nextEvent(sms, now)
		if next <= now {
			next = now + 1
		}
		skipped := next - now
		for i, v := range stallTemp {
			st.Stalls[i] += v * skipped
		}
		now = next
	}

	st.SimCycles = now
	if st.SimCycles == 0 {
		st.SimCycles = 1
	}
	st.SimThreadInstructions = simThreadInstr
	if simThreadInstr == 0 {
		simThreadInstr = 1
	}
	st.ScaleFactor = float64(st.TotalThreadInstructions) / float64(simThreadInstr)

	// Scale memory system and activity statistics to the full kernel.
	st.L2 = l2.Stats()
	st.DRAM = mem.Stats()
	for _, sm := range sms {
		st.L1.Add(sm.l1.Stats())
	}
	scaleCache := func(cs *cache.Stats, f float64) {
		cs.Accesses = int64(float64(cs.Accesses) * f)
		cs.Hits = int64(float64(cs.Hits) * f)
		cs.Misses = int64(float64(cs.Misses) * f)
		cs.MergedMiss = int64(float64(cs.MergedMiss) * f)
		cs.ResFails = int64(float64(cs.ResFails) * f)
		cs.Bypasses = int64(float64(cs.Bypasses) * f)
		cs.Evictions = int64(float64(cs.Evictions) * f)
		cs.FillsArrive = int64(float64(cs.FillsArrive) * f)
	}
	scaleCache(&st.L1, st.ScaleFactor)
	scaleCache(&st.L2, st.ScaleFactor)
	st.DRAM.Requests = int64(float64(st.DRAM.Requests) * st.ScaleFactor)
	st.DRAM.ReadRequests = int64(float64(st.DRAM.ReadRequests) * st.ScaleFactor)
	st.DRAM.WriteRequests = int64(float64(st.DRAM.WriteRequests) * st.ScaleFactor)
	st.DRAM.BytesMoved = int64(float64(st.DRAM.BytesMoved) * st.ScaleFactor)
	st.DRAM.StallCycles = int64(float64(st.DRAM.StallCycles) * st.ScaleFactor)
	activity.Scale(st.ScaleFactor)
	st.Activity = activity

	// Estimate full-kernel cycles from the simulated throughput: the device
	// runs min(SMs, CTAs) SMs in parallel at the observed per-SM rate.
	perSMThroughput := float64(st.SimThreadInstructions) / float64(st.SimCycles) / float64(len(sms))
	if perSMThroughput <= 0 {
		perSMThroughput = 1
	}
	utilSMs := cfg.Device.SMs
	if totalCTAs < utilSMs {
		utilSMs = totalCTAs
	}
	if utilSMs < 1 {
		utilSMs = 1
	}
	st.Cycles = int64(float64(st.TotalThreadInstructions) / (perSMThroughput * float64(utilSMs)))
	if st.Cycles < st.SimCycles && sampledCTAs == totalCTAs && cfg.Sampling.MaxLoopIters == 0 {
		// Exhaustive simulation of a small kernel: trust the simulated time.
		st.Cycles = st.SimCycles
	}
	if st.Cycles <= 0 {
		st.Cycles = 1
	}
	st.Seconds = float64(st.Cycles) / (float64(cfg.Device.CoreClockMHz) * 1e6)

	st.MaxResidentWarpsPerSM = maxWarpsResident
	residentThreads := maxWarpsResident * warpSize
	if residentThreads > 0 {
		st.AllocatedRegsPerSM = k.Launch.Regs * residentThreads
		st.LiveRegsPerSM = k.Program.MaxRegister() * residentThreads
	}
	return st, nil
}

// retireAndRefill removes finished CTAs' bookkeeping and launches new sampled
// CTAs while capacity is available.
func retireAndRefill(sm *smState, nextCTA *int, sampledCTAs, maxPerSM int, launch func(*smState, int64), now int64) {
	// Count live CTAs.
	liveCTAs := map[int]bool{}
	for _, w := range sm.warps {
		if !w.done {
			liveCTAs[w.ctaID] = true
		}
	}
	sm.resident = len(liveCTAs)
	for sm.resident < maxPerSM && *nextCTA < sampledCTAs {
		launch(sm, now)
	}
}

// classify reports whether the warp can issue now and, when it cannot, the
// nvprof-style reason.
func (s *Simulator) classify(w *warp, sm *smState, now int64) (bool, StallReason) {
	if w.done {
		return false, StallOther
	}
	if w.syncUntil > now {
		return false, StallSync
	}
	if w.fetchReady > now {
		return false, StallInstFetch
	}
	ins := w.current()
	if blocked := w.srcBlock(ins, now); blocked >= 0 {
		switch {
		case w.regFromConst[blocked]:
			return false, StallConstMemDependency
		case w.regFromMem[blocked]:
			return false, StallMemoryDependency
		default:
			return false, StallExecDependency
		}
	}
	unit := isa.UnitFor(ins)
	if sm.unitFree[unit] > now {
		return false, StallPipeBusy
	}
	if ins.IsMem() && ins.Space == isa.SpaceGlobal {
		if sm.l1.Config().Bypassed() {
			// Without an L1, the finite LSU / interconnect queues throttle
			// further global accesses.
			if len(sm.bypassInFlight) >= maxOutstandingBypass {
				return false, StallMemoryThrottle
			}
		} else if cfg := sm.l1.Config(); cfg.MSHRs > 0 && sm.l1.PendingMisses() >= cfg.MSHRs {
			// A full MSHR file throttles further global accesses.
			return false, StallMemoryThrottle
		}
	}
	return true, StallOther
}

// issue executes one instruction of the warp.  It returns false when the
// instruction could not complete (memory throttle) and must be retried.
func (s *Simulator) issue(w *warp, sm *smState, l2 *cache.Cache, mem *dram.DRAM, rl regionLayout,
	now int64, act *Activity, st *KernelStats) bool {

	ins := w.current()
	unit := isa.UnitFor(ins)
	lanes := int64(w.lanes)
	portCycles := int64(isa.ThroughputCPI(ins))

	if ins.IsMem() && ins.Space == isa.SpaceGlobal {
		ready, transactions, ok := s.globalAccess(w, sm, l2, mem, rl, ins, now, st)
		if !ok {
			st.Stalls[StallMemoryThrottle]++
			return false
		}
		act.GlobalAccesses += int64(transactions)
		// The load/store port is occupied for one cycle per generated memory
		// transaction, so poorly coalesced accesses consume proportionally
		// more issue bandwidth.
		portCycles = int64(transactions)
		if portCycles < 1 {
			portCycles = 1
		}
		if ins.IsLoad() {
			w.writeDst(ins, ready, true, false)
		}
	} else if ins.IsMem() && ins.Space == isa.SpaceShared {
		act.SharedAccesses += lanes
		if ins.IsLoad() {
			w.writeDst(ins, now+24, true, false)
		}
	} else if ins.IsMem() && ins.Space == isa.SpaceConst {
		act.ConstAccesses++
		if ins.IsLoad() {
			w.writeDst(ins, now+20, false, true)
		}
	} else if ins.Op == isa.OpBar {
		// Barrier: the warp waits for its CTA mates (approximated as a fixed
		// window proportional to the CTA's warp count).
		w.syncUntil = now + int64(8*len(sm.warps))
	} else {
		latency := int64(isa.Latency(ins))
		w.writeDst(ins, now+latency, false, false)
	}

	// Pipeline occupancy and activity accounting.
	sm.unitFree[unit] = now + portCycles
	act.IssuedInstructions += lanes
	act.RegReads += int64(ins.NSrcs) * lanes
	if ins.Dst != isa.NoReg {
		act.RegWrites += lanes
	}
	switch unit {
	case isa.UnitSP, isa.UnitCtrl, isa.UnitNone:
		act.SPOps += lanes
	case isa.UnitFPU:
		act.FPUOps += lanes
	case isa.UnitSFU:
		act.SFUOps += lanes
	}
	if w.pc == 0 {
		act.InstFetches++
	}

	w.advance(now)
	return true
}

// globalAccess models a global-memory warp transaction: coalescing, L1, L2
// and DRAM.  It returns the cycle at which the data is available, the number
// of memory transactions generated, and false if the L1 could not reserve an
// MSHR.
func (s *Simulator) globalAccess(w *warp, sm *smState, l2 *cache.Cache, mem *dram.DRAM, rl regionLayout,
	ins isa.Instruction, now int64, st *KernelStats) (ready int64, transactions int, ok bool) {

	pat := ins.Pattern
	base := rl.base[pat.Region]
	footprint := pat.Footprint
	if footprint == 0 {
		footprint = rl.size[pat.Region]
	}
	if footprint == 0 {
		footprint = 256
	}
	lineBytes := uint64(128)

	// Coalesce the lanes' addresses into unique 128-byte transactions.
	lines := make(map[uint64]struct{}, 4)
	iter := int64(w.iterIndex())
	for lane := 0; lane < w.lanes; lane++ {
		off := int64(pat.Base) + int64(lane)*pat.ThreadStride + iter*pat.IterStride + int64(w.ctaID)*pat.BlockStride
		if off < 0 {
			off = -off
		}
		addr := base + uint64(off)%footprint
		lines[addr/lineBytes] = struct{}{}
	}

	ready = now
	l1 := sm.l1
	for lineAddr := range lines {
		addr := lineAddr * lineBytes
		var lineReady int64
		if l1.Config().Bypassed() {
			lineReady = s.l2Access(l2, mem, addr, ins.IsStore(), now)
			sm.bypassInFlight = append(sm.bypassInFlight, lineReady)
		} else {
			switch l1.Access(addr, ins.IsStore()) {
			case cache.Hit:
				lineReady = now + int64(l1.Config().HitLatency)
			case cache.MissMerged:
				lineReady = now + int64(l1.Config().HitLatency) + 30
			case cache.ReservationFail:
				return 0, 0, false
			default: // Miss
				lineReady = s.l2Access(l2, mem, addr, ins.IsStore(), now)
				// The MSHR stays allocated until the fill returns.
				sm.fills = append(sm.fills, pendingFill{addr: addr, ready: lineReady})
			}
		}
		if lineReady > ready {
			ready = lineReady
		}
	}
	// Serialize additional transactions on the LSU port.
	ready += int64(2 * (len(lines) - 1))
	return ready, len(lines), true
}

// l2Access models an access that missed (or bypassed) the L1.
func (s *Simulator) l2Access(l2 *cache.Cache, mem *dram.DRAM, addr uint64, isWrite bool, now int64) int64 {
	switch l2.Access(addr, isWrite) {
	case cache.Hit:
		return now + int64(l2.Config().HitLatency)
	case cache.MissMerged:
		return now + int64(l2.Config().HitLatency) + int64(s.cfg.DRAM.LatencyCycles)/2
	case cache.ReservationFail:
		// Treat as a miss with an extra queueing penalty.
		ready := mem.Access(addr, isWrite, now+int64(l2.Config().HitLatency))
		return ready + 50
	default: // Miss
		ready := mem.Access(addr, isWrite, now+int64(l2.Config().HitLatency))
		l2.Fill(addr)
		return ready
	}
}

// nextEvent returns the earliest cycle at which any warp could become ready.
func (s *Simulator) nextEvent(sms []*smState, now int64) int64 {
	next := int64(-1)
	consider := func(t int64) {
		if t > now && (next == -1 || t < next) {
			next = t
		}
	}
	for _, sm := range sms {
		for _, f := range sm.fills {
			consider(f.ready)
		}
		for _, r := range sm.bypassInFlight {
			consider(r)
		}
		for _, w := range sm.warps {
			if w.done {
				continue
			}
			consider(w.syncUntil)
			consider(w.fetchReady)
			ins := w.current()
			for s := 0; s < int(ins.NSrcs); s++ {
				r := ins.Srcs[s]
				if r != isa.NoReg && int(r) < len(w.regReady) {
					consider(w.regReady[r])
				}
			}
			consider(sm.unitFree[isa.UnitFor(ins)])
		}
	}
	if next == -1 {
		return now + 1
	}
	return next
}
