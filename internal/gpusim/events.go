package gpusim

// eventHeap is a min-heap of pending wake-up cycles for one SM.  Every time a
// future event is scheduled (a register write-back, a cache fill, a pipeline
// port or barrier release, an instruction fetch), its cycle is pushed; the
// fast-forward path peeks the earliest pending cycle instead of rescanning
// all fills, warps and functional units.  Entries are drained lazily: times
// that have already passed are popped in bulk at the start of each cycle, so
// the heap only ever holds future events.
//
// The heap is hand-rolled over a plain []int64 (rather than container/heap)
// so pushes do not box values into interfaces and the simulator's cycle loop
// stays allocation-free in steady state.
type eventHeap struct {
	t []int64
}

// push schedules a wake-up at cycle c.
func (h *eventHeap) push(c int64) {
	h.t = append(h.t, c)
	// Sift up.
	i := len(h.t) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.t[parent] <= h.t[i] {
			break
		}
		h.t[parent], h.t[i] = h.t[i], h.t[parent]
		i = parent
	}
}

// pop removes and returns the earliest pending cycle.  It must not be called
// on an empty heap.
func (h *eventHeap) pop() int64 {
	top := h.t[0]
	last := len(h.t) - 1
	h.t[0] = h.t[last]
	h.t = h.t[:last]
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		min := left
		if right := left + 1; right < last && h.t[right] < h.t[left] {
			min = right
		}
		if h.t[i] <= h.t[min] {
			break
		}
		h.t[i], h.t[min] = h.t[min], h.t[i]
		i = min
	}
	return top
}

// peek returns the earliest pending cycle without removing it.  It must not
// be called on an empty heap.
func (h *eventHeap) peek() int64 { return h.t[0] }

// len returns the number of pending events.
func (h *eventHeap) len() int { return len(h.t) }

// drainThrough discards every event at or before cycle now.
func (h *eventHeap) drainThrough(now int64) {
	for len(h.t) > 0 && h.t[0] <= now {
		h.pop()
	}
}
