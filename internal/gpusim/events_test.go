package gpusim

import "testing"

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	in := []int64{42, 7, 19, 7, 100, 3, 55, 3, 3, 88, 1, 64}
	for _, v := range in {
		h.push(v)
	}
	if h.len() != len(in) {
		t.Fatalf("len = %d, want %d", h.len(), len(in))
	}
	prev := int64(-1)
	for h.len() > 0 {
		if top := h.peek(); top < prev {
			t.Fatalf("peek %d after %d: heap out of order", top, prev)
		}
		v := h.pop()
		if v < prev {
			t.Fatalf("pop %d after %d: heap out of order", v, prev)
		}
		prev = v
	}
}

func TestEventHeapDrainThrough(t *testing.T) {
	var h eventHeap
	for _, v := range []int64{5, 1, 9, 3, 7, 3} {
		h.push(v)
	}
	h.drainThrough(3)
	if h.len() != 3 {
		t.Fatalf("after drainThrough(3): len = %d, want 3 (5, 7, 9)", h.len())
	}
	if h.peek() != 5 {
		t.Fatalf("after drainThrough(3): peek = %d, want 5", h.peek())
	}
	h.drainThrough(100)
	if h.len() != 0 {
		t.Fatalf("drainThrough past all events should empty the heap, len = %d", h.len())
	}
	// Draining an empty heap is a no-op.
	h.drainThrough(100)
	if h.len() != 0 {
		t.Fatal("draining an empty heap should be safe")
	}
}
