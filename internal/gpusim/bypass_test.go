package gpusim_test

import (
	"testing"

	"tango/internal/gpusim"
	"tango/internal/kernel"
	"tango/internal/networks"
)

// fc6Kernel returns AlexNet's first fully-connected kernel, the suite's most
// memory-intensive streaming workload.
func fc6Kernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	n, err := networks.NewAlexNet()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if k.LayerName == "fc6" {
			return k
		}
	}
	t.Fatal("fc6 kernel not found")
	return nil
}

func TestBypassedL1ThrottlesStreamingKernels(t *testing.T) {
	// Without an L1 the finite LSU/interconnect queues must throttle the
	// streaming fully-connected kernel: memory_throttle stalls appear and the
	// warps spend most of their time waiting on memory.
	cfg := gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()).WithL1Size(0)
	sim, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunKernel(fc6Kernel(t))
	if err != nil {
		t.Fatal(err)
	}
	memStalls := st.Stalls[gpusim.StallMemoryThrottle] + st.Stalls[gpusim.StallMemoryDependency]
	if memStalls == 0 {
		t.Error("streaming FC kernel without L1 should stall on memory")
	}
	if st.L1.Accesses != 0 {
		t.Error("bypassed L1 must not record accesses")
	}
	if st.L2.Accesses == 0 {
		t.Error("bypassed L1 must route traffic to the L2")
	}
}

func TestFCInsensitiveToL1Sizing(t *testing.T) {
	// The streaming FC kernel has no reuse, so growing the L1 from the
	// default to 4x should change its time very little — this is the flat
	// portion of the Figure 2 curves.
	run := func(l1 int) int64 {
		cfg := gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()).WithL1Size(l1)
		sim, err := gpusim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunKernel(fc6Kernel(t))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base := run(64 << 10)
	big := run(256 << 10)
	diff := float64(base-big) / float64(base)
	if diff > 0.25 || diff < -0.25 {
		t.Errorf("fc6 should be nearly insensitive to L1 size, got %.1f%% change", diff*100)
	}
}
