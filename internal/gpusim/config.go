// Package gpusim is a cycle-approximate GPU architecture simulator in the
// spirit of GPGPU-Sim: it executes the kernels produced by package kernel on
// a configurable number of streaming multiprocessors with warp schedulers,
// a scoreboard, per-SM L1 data caches, a shared L2 and a DRAM model, and
// reports cycles, stall-cycle breakdowns, cache statistics and activity
// counters for the power model.
//
// Full cycle simulation of every thread of the large CNNs is intractable, so
// the simulator samples: it executes a bounded number of thread blocks and a
// bounded number of iterations of each inner loop in detail and scales the
// resulting statistics to the full kernel (see Sampling).
package gpusim

import (
	"fmt"

	"tango/internal/cache"
	"tango/internal/device"
	"tango/internal/dram"
	"tango/internal/sched"
)

// Sampling bounds the detailed simulation per kernel.
type Sampling struct {
	// MaxCTAs is the maximum number of thread blocks simulated in detail per
	// kernel (0 = all blocks).
	MaxCTAs int
	// MaxLoopIters is the maximum number of iterations of each program loop
	// simulated in detail (0 = all iterations).
	MaxLoopIters int
}

// DefaultSampling is the characterization-grade sampling level.
func DefaultSampling() Sampling { return Sampling{MaxCTAs: 4, MaxLoopIters: 32} }

// FastSampling is a coarser level for quick runs and unit tests.
func FastSampling() Sampling { return Sampling{MaxCTAs: 2, MaxLoopIters: 8} }

// Exhaustive disables sampling entirely.
func Exhaustive() Sampling { return Sampling{} }

// Config describes one simulation setup.
type Config struct {
	// Device is the simulated GPU (clock, SM count, cache sizes, bandwidth).
	Device device.GPU
	// ModeledSMs is the number of SMs simulated in detail; statistics are
	// scaled to the device's full SM count.  Zero selects a default.
	ModeledSMs int
	// MaxCTAsPerSM is the number of thread blocks kept resident per modeled
	// SM when the device does not bound warps per SM.  Devices that set
	// MaxWarpsPerSM instead derive residency from their warp capacity (up to
	// the hardware limit of 32 blocks), matching real occupancy behaviour.
	MaxCTAsPerSM int
	// IssueWidth is the number of instructions each SM may issue per cycle.
	IssueWidth int
	// Scheduler selects the warp scheduler (gto, lrr, tlv).
	Scheduler sched.Kind
	// L1D is the per-SM L1 data cache; a zero SizeBytes bypasses it.
	L1D cache.Config
	// L2 is the shared L2 cache.
	L2 cache.Config
	// DRAM is the memory system model.
	DRAM dram.Config
	// Sampling bounds detailed execution.
	Sampling Sampling
	// Parallelism is the number of worker goroutines RunKernels uses to
	// simulate independent kernels concurrently.  Zero or one selects serial
	// execution.  Results are identical to a serial run in either case.
	Parallelism int
}

// DefaultConfig returns the paper's simulator setup: the Pascal GP102
// configuration with its default 64KB L1D and the GTO scheduler.
func DefaultConfig() Config {
	return ConfigFor(device.PascalGP102())
}

// ConfigFor returns a simulation config for an arbitrary GPU device.
func ConfigFor(dev device.GPU) Config {
	return Config{
		Device:       dev,
		ModeledSMs:   2,
		MaxCTAsPerSM: 2,
		IssueWidth:   2,
		Scheduler:    sched.GTO,
		L1D:          cache.DefaultL1(dev.L1DBytes),
		L2:           cache.DefaultL2(dev.L2Bytes),
		DRAM:         dram.DefaultConfig(dev.MemBandwidthGBs, dev.CoreClockMHz),
		Sampling:     DefaultSampling(),
	}
}

// WithL1Size returns a copy of the config with the L1 data cache resized;
// size zero bypasses the L1 entirely (the paper's "No L1" configuration).
func (c Config) WithL1Size(bytes int) Config {
	c.L1D = cache.DefaultL1(bytes)
	if bytes == 0 {
		c.L1D = cache.Config{SizeBytes: 0}
	}
	return c
}

// WithScheduler returns a copy of the config using the given warp scheduler.
func (c Config) WithScheduler(kind sched.Kind) Config {
	c.Scheduler = kind
	return c
}

// WithSampling returns a copy of the config with the given sampling level.
func (c Config) WithSampling(s Sampling) Config {
	c.Sampling = s
	return c
}

// WithParallelism returns a copy of the config that simulates independent
// kernels on n worker goroutines (n <= 1 selects serial execution).
func (c Config) WithParallelism(n int) Config {
	c.Parallelism = n
	return c
}

// Validate checks the configuration and fills defaults for zero fields.
func (c *Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if c.ModeledSMs <= 0 {
		c.ModeledSMs = 2
	}
	if c.ModeledSMs > c.Device.SMs {
		c.ModeledSMs = c.Device.SMs
	}
	if c.MaxCTAsPerSM <= 0 {
		c.MaxCTAsPerSM = 2
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 2
	}
	if c.Scheduler == "" {
		c.Scheduler = sched.GTO
	}
	if _, err := sched.New(c.Scheduler); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("gpusim: L1D: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("gpusim: L2: %w", err)
	}
	if c.L2.Bypassed() {
		return fmt.Errorf("gpusim: L2 cache cannot be bypassed")
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("gpusim: DRAM: %w", err)
	}
	if c.Sampling.MaxCTAs < 0 || c.Sampling.MaxLoopIters < 0 {
		return fmt.Errorf("gpusim: sampling bounds must be non-negative")
	}
	if c.Parallelism < 0 {
		c.Parallelism = 0
	}
	return nil
}
