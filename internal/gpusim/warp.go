package gpusim

import (
	"tango/internal/isa"
	"tango/internal/kernel"
)

// sampledLoop is a program loop with its (possibly reduced) simulated trip
// count.
type sampledLoop struct {
	body     []isa.Instruction
	simTrip  int
	fullTrip int
}

// flatProgram is the per-thread program with sampling applied.
type flatProgram struct {
	prologue []isa.Instruction
	loops    []sampledLoop
	epilogue []isa.Instruction
}

// newFlatProgram applies the sampling bounds to a kernel program.
func newFlatProgram(p kernel.Program, s Sampling) flatProgram {
	fp := flatProgram{prologue: p.Prologue, epilogue: p.Epilogue}
	for _, l := range p.Loops {
		trip := l.Trip
		if s.MaxLoopIters > 0 && trip > s.MaxLoopIters {
			trip = s.MaxLoopIters
		}
		fp.loops = append(fp.loops, sampledLoop{body: l.Body, simTrip: trip, fullTrip: l.Trip})
	}
	return fp
}

// simInstructionsPerThread returns the sampled dynamic instruction count per
// thread.
func (fp flatProgram) simInstructionsPerThread() int64 {
	n := int64(len(fp.prologue)) + int64(len(fp.epilogue))
	for _, l := range fp.loops {
		n += int64(len(l.body)) * int64(l.simTrip)
	}
	return n
}

// segment indices: 0 = prologue, 1..len(loops) = loops, len(loops)+1 = epilogue.
func (fp flatProgram) numSegments() int { return len(fp.loops) + 2 }

// segmentInstrs returns the instruction slice of a segment.
func (fp flatProgram) segmentInstrs(seg int) []isa.Instruction {
	switch {
	case seg == 0:
		return fp.prologue
	case seg <= len(fp.loops):
		return fp.loops[seg-1].body
	default:
		return fp.epilogue
	}
}

// segmentTrips returns the number of iterations of a segment.
func (fp flatProgram) segmentTrips(seg int) int {
	if seg >= 1 && seg <= len(fp.loops) {
		return fp.loops[seg-1].simTrip
	}
	return 1
}

// warp is the execution state of one 32-thread warp.
type warp struct {
	id     int
	ctaID  int
	lanes  int
	launch int64

	prog *flatProgram
	seg  int
	pc   int
	iter int
	done bool

	// Scoreboard: per-register readiness and the producer kind used for stall
	// attribution.
	regReady     []int64
	regFromMem   []bool
	regFromConst []bool

	// syncUntil blocks the warp at a barrier until the given cycle.
	syncUntil int64
	// fetchReady models the instruction-fetch delay at segment boundaries.
	fetchReady int64

	// blockedUntil and blockedReason memoize the last classification: while
	// a warp is blocked on a time-bounded condition (sync, fetch, register
	// dependency, busy pipe) none of its inputs can change before that cycle,
	// so re-classification is skipped until it expires.  Zero means the warp
	// must be (re-)classified.
	blockedUntil  int64
	blockedReason StallReason
}

// newWarp creates a warp positioned at the start of the program.
func newWarp(id, ctaID, lanes, regs int, prog *flatProgram, now int64) *warp {
	w := &warp{
		id:           id,
		ctaID:        ctaID,
		lanes:        lanes,
		launch:       now,
		prog:         prog,
		regReady:     make([]int64, regs+1),
		regFromMem:   make([]bool, regs+1),
		regFromConst: make([]bool, regs+1),
		fetchReady:   now + 2,
	}
	w.skipEmptySegments()
	return w
}

// skipEmptySegments advances past segments with no instructions or zero trip
// counts.
func (w *warp) skipEmptySegments() {
	for !w.done {
		instrs := w.prog.segmentInstrs(w.seg)
		trips := w.prog.segmentTrips(w.seg)
		if len(instrs) > 0 && trips > 0 {
			return
		}
		w.nextSegment()
	}
}

// current returns the instruction at the warp's program counter.
func (w *warp) current() isa.Instruction {
	return w.prog.segmentInstrs(w.seg)[w.pc]
}

// iterIndex returns the loop iteration index used for address generation.
func (w *warp) iterIndex() int {
	if w.seg >= 1 && w.seg <= len(w.prog.loops) {
		return w.iter
	}
	return 0
}

// nextSegment moves to the following segment.
func (w *warp) nextSegment() {
	w.seg++
	w.pc = 0
	w.iter = 0
	if w.seg >= w.prog.numSegments() {
		w.done = true
	}
}

// advance moves the program counter past the current instruction.
func (w *warp) advance(now int64) {
	w.pc++
	instrs := w.prog.segmentInstrs(w.seg)
	if w.pc < len(instrs) {
		return
	}
	w.pc = 0
	w.iter++
	if w.iter < w.prog.segmentTrips(w.seg) {
		return
	}
	w.nextSegment()
	w.skipEmptySegments()
	if !w.done {
		// New segment: model a short instruction-fetch delay.
		w.fetchReady = now + 2
	}
}

// srcBlock returns the register blocking issue, or -1 if all sources are
// ready at cycle now.
func (w *warp) srcBlock(ins isa.Instruction, now int64) int {
	for s := 0; s < int(ins.NSrcs); s++ {
		r := ins.Srcs[s]
		if r == isa.NoReg {
			continue
		}
		if int(r) < len(w.regReady) && w.regReady[r] > now {
			return int(r)
		}
	}
	return -1
}

// writeDst records the destination register's ready time and producer kind.
func (w *warp) writeDst(ins isa.Instruction, ready int64, fromMem, fromConst bool) {
	if ins.Dst == isa.NoReg || int(ins.Dst) >= len(w.regReady) {
		return
	}
	w.regReady[ins.Dst] = ready
	w.regFromMem[ins.Dst] = fromMem
	w.regFromConst[ins.Dst] = fromConst
}
