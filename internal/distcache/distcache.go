// Package distcache is the persistent tier of the characterization run
// cache: an on-disk, content-addressed store of (target, network, variant)
// run results, shared by every process pointed at the same directory.
//
// Records are versioned JSON files named by the SHA-256 of the composite
// run key (Target.Name + network + Target.CacheKey(variant)), sharded into
// 256 two-hex-digit subdirectories.  Writes are atomic — encode to a
// temporary file in the destination directory, then rename — so concurrent
// processes sharing one cache directory never observe partial records; the
// last writer wins with byte-identical content, because runs are
// deterministic.  Every defect on the read path (missing file, truncated or
// corrupt JSON, stale format version, mismatched key or trace shape) is
// treated as a miss and the cell is recomputed: the cache can lose data,
// but it can never serve wrong data.
//
// The same encoded record doubles as the wire format of the distributed
// sweep protocol (see internal/coord): a worker returns Encode's bytes over
// HTTP and the coordinator feeds them through Decode against its own trace,
// so remote results enter the coordinator's cache tiers exactly like local
// ones.
package distcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tango/internal/cache"
	"tango/internal/device"
	"tango/internal/dram"
	"tango/internal/fpga"
	"tango/internal/gpusim"
	"tango/internal/isa"
	"tango/internal/target"
)

// FormatVersion tags the record schema.  Bump it whenever the encoded
// shape changes incompatibly; readers treat any other version as a miss,
// so stale records are recomputed rather than misread.
const FormatVersion = 1

// Stats counts the cache's disk traffic.
type Stats struct {
	// Hits and Misses count Load outcomes.  A rejected record (corrupt,
	// stale, mismatched) counts as a miss.
	Hits, Misses int64
	// Writes counts successful Store calls; Errors counts failed ones plus
	// records rejected on the read path for reasons other than absence.
	Writes, Errors int64
	// Evictions counts records removed by the disk-tier size bound.
	Evictions int64
}

// Cache is one on-disk cache directory.  All methods are safe for
// concurrent use by any number of goroutines and processes.
type Cache struct {
	dir string

	// maxBytes bounds the total size of record files (0 = unbounded) and
	// usage tracks it approximately: seeded by one directory scan, advanced
	// by Store, and re-measured exactly on every eviction pass (so drift
	// from overwrites or concurrent processes is self-correcting).
	maxBytes atomic.Int64
	usage    atomic.Int64
	seeded   atomic.Bool
	evictMu  sync.Mutex

	hits, misses, writes, errs, evictions atomic.Int64
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("distcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// SetMaxBytes bounds the total size of the cache's record files; 0 (the
// default) leaves the disk tier unbounded.  When a Store pushes the cache
// over the bound, the oldest records by modification time are deleted
// until usage drops to 90% of the bound, so steady-state sweeps churn the
// tail instead of evicting on every write.  An existing over-bound
// directory is trimmed on the next Store.
func (c *Cache) SetMaxBytes(n int64) {
	if n < 0 {
		n = 0
	}
	c.maxBytes.Store(n)
}

// MaxBytes returns the configured disk-tier bound (0 = unbounded).
func (c *Cache) MaxBytes() int64 { return c.maxBytes.Load() }

// EvictionCount returns the number of records removed by the size bound.
// target.Store discovers it through an optional interface so StoreStats
// can report disk evictions without depending on this package.
func (c *Cache) EvictionCount() int64 { return c.evictions.Load() }

// Stats returns a snapshot of the cache's traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Writes:    c.writes.Load(),
		Errors:    c.errs.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Path returns the record file a key maps to: <dir>/<hh>/<sha256(key)>.json.
func (c *Cache) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, name[:2], name+".json")
}

// Load reads the cached run of key and rebinds it to the trace.  Any
// failure — absent, truncated, corrupt, stale schema, or a record whose
// key or kernel list does not match — is a miss.
func (c *Cache) Load(key string, tr *target.Trace) (*target.RunStats, bool) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	rs, err := Decode(data, key, tr)
	if err != nil {
		c.misses.Add(1)
		c.errs.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return rs, true
}

// Store writes the run under key atomically: the record is encoded to a
// temporary file in the destination shard directory and renamed into
// place, so a concurrent Load sees either the old record or the complete
// new one, never a partial write.
func (c *Cache) Store(key string, rs *target.RunStats) error {
	data, err := Encode(key, rs)
	if err != nil {
		c.errs.Add(1)
		return err
	}
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.errs.Add(1)
		return fmt.Errorf("distcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		c.errs.Add(1)
		return fmt.Errorf("distcache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
		return fmt.Errorf("distcache: %w", werr)
	}
	c.writes.Add(1)
	c.noteWrite(int64(len(data)))
	return nil
}

// noteWrite advances the usage estimate and runs an eviction pass when the
// bound is exceeded.  The estimate ignores overwrites (the replaced file's
// size stays counted until the next pass re-measures), which only makes
// eviction run sooner, never later.
func (c *Cache) noteWrite(n int64) {
	max := c.maxBytes.Load()
	if max <= 0 {
		return
	}
	if !c.seeded.Load() {
		c.evictMu.Lock()
		if !c.seeded.Load() {
			_, total := c.scanRecords()
			c.usage.Store(total)
			c.seeded.Store(true)
		}
		c.evictMu.Unlock()
	}
	if c.usage.Add(n) > max {
		c.evict(max)
	}
}

// recordFile is one on-disk record seen by an eviction scan.
type recordFile struct {
	path  string
	size  int64
	mtime int64
}

// scanRecords walks the shard directories and returns every record file
// with its size and modification time, plus the total size.  Temporary
// files mid-rename are skipped; they are transient and tiny.
func (c *Cache) scanRecords() ([]recordFile, int64) {
	var files []recordFile
	var total int64
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		files = append(files, recordFile{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
		return nil
	})
	return files, total
}

// evict deletes the oldest records until usage is at most 90% of max.  One
// pass runs at a time; concurrent writers that arrive while a pass holds
// the lock re-check the freshly measured usage and return.
func (c *Cache) evict(max int64) {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	files, total := c.scanRecords()
	c.usage.Store(total)
	target := max - max/10
	if total <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= target {
			break
		}
		if err := os.Remove(f.path); err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				c.errs.Add(1)
			}
			continue
		}
		total -= f.size
		c.evictions.Add(1)
	}
	c.usage.Store(total)
}

// record is the on-disk / on-wire schema.  The header pins everything a
// reader must agree on before trusting the payload: the format version,
// the enum dimensions the fixed-size counter arrays depend on, and the
// full composite key (hashing the key to a filename is lossy, so the key
// is repeated in-band and verified on decode).
type record struct {
	Format       int     `json:"format"`
	Key          string  `json:"key"`
	NumOpcodes   int     `json:"num_opcodes"`
	NumDTypes    int     `json:"num_dtypes"`
	NumStalls    int     `json:"num_stalls"`
	Network      string  `json:"network"`
	Target       string  `json:"target"`
	Class        string  `json:"class"`
	Cycles       int64   `json:"cycles"`
	Seconds      float64 `json:"seconds"`
	Instructions int64   `json:"instructions"`
	PeakWatts    float64 `json:"peak_watts"`
	AvgWatts     float64 `json:"avg_watts"`
	EnergyJoules float64 `json:"energy_joules"`
	L2MissRatio  float64 `json:"l2_miss_ratio"`

	GPU  []kernelRecord `json:"gpu,omitempty"`
	FPGA *fpga.Result   `json:"fpga,omitempty"`
}

// kernelRecord mirrors gpusim.KernelStats minus the *kernel.Kernel
// pointer: thread programs are deterministic per network, so records
// carry only the layer identity and the decoder rebinds each entry to the
// matching kernel of the caller's trace.
type kernelRecord struct {
	Layer string `json:"layer"`
	Class string `json:"class"`

	Cycles                  int64   `json:"cycles"`
	Seconds                 float64 `json:"seconds"`
	SimCycles               int64   `json:"sim_cycles"`
	SimThreadInstructions   int64   `json:"sim_thread_instructions"`
	ScaleFactor             float64 `json:"scale_factor"`
	TotalThreadInstructions int64   `json:"total_thread_instructions"`

	OpCounts   []int64 `json:"op_counts"`
	TypeCounts []int64 `json:"type_counts"`
	Stalls     []int64 `json:"stalls"`

	L1       cache.Stats     `json:"l1"`
	L2       cache.Stats     `json:"l2"`
	DRAM     dram.Stats      `json:"dram"`
	Activity gpusim.Activity `json:"activity"`

	MaxResidentWarpsPerSM int `json:"max_resident_warps_per_sm"`
	AllocatedRegsPerSM    int `json:"allocated_regs_per_sm"`
	LiveRegsPerSM         int `json:"live_regs_per_sm"`
}

// Encode serializes one run under its composite key into the versioned
// record format shared by the disk cache and the worker wire protocol.
func Encode(key string, rs *target.RunStats) ([]byte, error) {
	if rs == nil {
		return nil, errors.New("distcache: nil RunStats")
	}
	r := record{
		Format:       FormatVersion,
		Key:          key,
		NumOpcodes:   int(isa.NumOpcodes),
		NumDTypes:    int(isa.NumDTypes),
		NumStalls:    int(gpusim.NumStallReasons),
		Network:      rs.Network,
		Target:       rs.Target,
		Class:        rs.Class.String(),
		Cycles:       rs.Cycles,
		Seconds:      rs.Seconds,
		Instructions: rs.Instructions,
		PeakWatts:    rs.PeakWatts,
		AvgWatts:     rs.AvgWatts,
		EnergyJoules: rs.EnergyJoules,
		L2MissRatio:  rs.L2MissRatio,
		FPGA:         rs.FPGA,
	}
	if rs.GPU != nil {
		r.GPU = make([]kernelRecord, len(rs.GPU.Kernels))
		for i, ks := range rs.GPU.Kernels {
			kr := kernelRecord{
				Cycles:                  ks.Cycles,
				Seconds:                 ks.Seconds,
				SimCycles:               ks.SimCycles,
				SimThreadInstructions:   ks.SimThreadInstructions,
				ScaleFactor:             ks.ScaleFactor,
				TotalThreadInstructions: ks.TotalThreadInstructions,
				OpCounts:                ks.OpCounts[:],
				TypeCounts:              ks.TypeCounts[:],
				Stalls:                  ks.Stalls[:],
				L1:                      ks.L1,
				L2:                      ks.L2,
				DRAM:                    ks.DRAM,
				Activity:                ks.Activity,
				MaxResidentWarpsPerSM:   ks.MaxResidentWarpsPerSM,
				AllocatedRegsPerSM:      ks.AllocatedRegsPerSM,
				LiveRegsPerSM:           ks.LiveRegsPerSM,
			}
			if ks.Kernel != nil {
				kr.Layer = ks.Kernel.LayerName
				kr.Class = ks.Kernel.Class
			}
			r.GPU[i] = kr
		}
	}
	return json.Marshal(&r)
}

// Decode parses an encoded record, verifies it against the expected key
// and the trace it must describe, and rebinds the per-kernel statistics to
// the trace's kernels.  Any mismatch is an error; callers treat it as a
// cache miss.
func Decode(data []byte, key string, tr *target.Trace) (*target.RunStats, error) {
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("distcache: corrupt record: %w", err)
	}
	if r.Format != FormatVersion {
		return nil, fmt.Errorf("distcache: record format %d, want %d", r.Format, FormatVersion)
	}
	if r.NumOpcodes != int(isa.NumOpcodes) || r.NumDTypes != int(isa.NumDTypes) || r.NumStalls != int(gpusim.NumStallReasons) {
		return nil, fmt.Errorf("distcache: record enum dimensions (%d,%d,%d) do not match this build (%d,%d,%d)",
			r.NumOpcodes, r.NumDTypes, r.NumStalls, isa.NumOpcodes, isa.NumDTypes, gpusim.NumStallReasons)
	}
	if r.Key != key {
		return nil, fmt.Errorf("distcache: record key %q does not match %q", r.Key, key)
	}
	if tr == nil {
		return nil, errors.New("distcache: nil trace")
	}
	if r.Network != tr.Network {
		return nil, fmt.Errorf("distcache: record network %q does not match trace %q", r.Network, tr.Network)
	}
	class := device.ClassGPU
	if r.Class == device.ClassFPGA.String() {
		class = device.ClassFPGA
	} else if r.Class != device.ClassGPU.String() {
		return nil, fmt.Errorf("distcache: unknown device class %q", r.Class)
	}
	rs := &target.RunStats{
		Network:      r.Network,
		Target:       r.Target,
		Class:        class,
		Cycles:       r.Cycles,
		Seconds:      r.Seconds,
		Instructions: r.Instructions,
		PeakWatts:    r.PeakWatts,
		AvgWatts:     r.AvgWatts,
		EnergyJoules: r.EnergyJoules,
		L2MissRatio:  r.L2MissRatio,
		FPGA:         r.FPGA,
	}
	if r.GPU != nil {
		if len(r.GPU) != len(tr.Kernels) {
			return nil, fmt.Errorf("distcache: record has %d kernels, trace has %d", len(r.GPU), len(tr.Kernels))
		}
		run := &gpusim.RunStats{Network: r.Network, Kernels: make([]*gpusim.KernelStats, len(r.GPU))}
		for i := range r.GPU {
			kr := &r.GPU[i]
			if kr.Layer != tr.Kernels[i].LayerName {
				return nil, fmt.Errorf("distcache: record kernel %d is %q, trace has %q", i, kr.Layer, tr.Kernels[i].LayerName)
			}
			if len(kr.OpCounts) != int(isa.NumOpcodes) || len(kr.TypeCounts) != int(isa.NumDTypes) || len(kr.Stalls) != int(gpusim.NumStallReasons) {
				return nil, fmt.Errorf("distcache: record kernel %d has malformed counter arrays", i)
			}
			ks := &gpusim.KernelStats{
				Kernel:                  tr.Kernels[i],
				Cycles:                  kr.Cycles,
				Seconds:                 kr.Seconds,
				SimCycles:               kr.SimCycles,
				SimThreadInstructions:   kr.SimThreadInstructions,
				ScaleFactor:             kr.ScaleFactor,
				TotalThreadInstructions: kr.TotalThreadInstructions,
				L1:                      kr.L1,
				L2:                      kr.L2,
				DRAM:                    kr.DRAM,
				Activity:                kr.Activity,
				MaxResidentWarpsPerSM:   kr.MaxResidentWarpsPerSM,
				AllocatedRegsPerSM:      kr.AllocatedRegsPerSM,
				LiveRegsPerSM:           kr.LiveRegsPerSM,
			}
			copy(ks.OpCounts[:], kr.OpCounts)
			copy(ks.TypeCounts[:], kr.TypeCounts)
			copy(ks.Stalls[:], kr.Stalls)
			run.Kernels[i] = ks
		}
		rs.GPU = run
	}
	return rs, nil
}
