package distcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tango/internal/cache"
	"tango/internal/device"
	"tango/internal/dram"
	"tango/internal/fpga"
	"tango/internal/gpusim"
	"tango/internal/target"
)

// testTrace extracts a real (small) network trace once per test binary.
var (
	traceOnce sync.Once
	trace     *target.Trace
	traceErr  error
)

func testTrace(t *testing.T) *target.Trace {
	t.Helper()
	traceOnce.Do(func() { trace, traceErr = target.Extract("GRU") })
	if traceErr != nil {
		t.Fatalf("extract trace: %v", traceErr)
	}
	return trace
}

// gpuStats fabricates a fully-populated GPU run over the trace's kernels,
// with distinct values in every field so a lossy round trip cannot hide.
func gpuStats(tr *target.Trace) *target.RunStats {
	run := &gpusim.RunStats{Network: tr.Network}
	for i, k := range tr.Kernels {
		ks := &gpusim.KernelStats{
			Kernel:                  k,
			Cycles:                  int64(1000 + i),
			Seconds:                 0.001 * float64(i+1),
			SimCycles:               int64(500 + i),
			SimThreadInstructions:   int64(900 + i),
			ScaleFactor:             1.5 + float64(i),
			TotalThreadInstructions: int64(9000 + i),
			L1:                      cache.Stats{Accesses: int64(10 + i), Hits: int64(7 + i), Misses: 3},
			L2:                      cache.Stats{Accesses: int64(20 + i), Misses: 5, MergedMiss: 1},
			DRAM:                    dram.Stats{Requests: int64(6 + i), BytesMoved: int64(1 << (10 + i%4))},
			Activity:                gpusim.Activity{IssuedInstructions: int64(77 + i), RegReads: 3, RegWrites: 2},
			MaxResidentWarpsPerSM:   16 + i,
			AllocatedRegsPerSM:      2048,
			LiveRegsPerSM:           1024,
		}
		for j := range ks.OpCounts {
			ks.OpCounts[j] = int64(i + j)
		}
		for j := range ks.TypeCounts {
			ks.TypeCounts[j] = int64(2*i + j)
		}
		for j := range ks.Stalls {
			ks.Stalls[j] = int64(3*i + j)
		}
		run.Kernels = append(run.Kernels, ks)
	}
	return &target.RunStats{
		Network:      tr.Network,
		Target:       "fake-gpu",
		Class:        device.ClassGPU,
		Cycles:       123456,
		Seconds:      0.789,
		Instructions: 424242,
		PeakWatts:    98.5,
		AvgWatts:     55.25,
		EnergyJoules: 43.3,
		L2MissRatio:  0.123,
		GPU:          run,
	}
}

func fpgaStats(tr *target.Trace) *target.RunStats {
	return &target.RunStats{
		Network:      tr.Network,
		Target:       "fake-fpga",
		Class:        device.ClassFPGA,
		Seconds:      1.5,
		PeakWatts:    2.5,
		AvgWatts:     2.5,
		EnergyJoules: 3.75,
		FPGA: &fpga.Result{
			Network: tr.Network,
			Layers: []fpga.LayerCost{
				{Layer: "conv1", Class: "CONV", Ops: 1000, WorkingSetBytes: 4096, Partitions: 2, Seconds: 0.5},
				{Layer: "fc1", Class: "FC", Ops: 500, WorkingSetBytes: 2048, Partitions: 1, Seconds: 1.0},
			},
			Seconds:         1.5,
			PeakWatts:       2.5,
			AvgWatts:        2.5,
			EnergyJoules:    3.75,
			TotalPartitions: 3,
		},
	}
}

// TestRoundTripGPU: a stored GPU run loads back deep-equal, with every
// kernel rebound to the caller's trace (pointer identity, not a copy).
func TestRoundTripGPU(t *testing.T) {
	tr := testTrace(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := gpuStats(tr)
	const key = "fake-gpu\x00GRU\x00cfg"
	if err := c.Store(key, rs); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(key, tr)
	if !ok {
		t.Fatal("Load missed a just-stored record")
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("round trip mutated the run:\ngot  %+v\nwant %+v", got, rs)
	}
	for i, ks := range got.GPU.Kernels {
		if ks.Kernel != tr.Kernels[i] {
			t.Fatalf("kernel %d not rebound to the trace's kernel pointer", i)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Writes != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRoundTripFPGA: the FPGA payload (no kernel pointers) round-trips
// deep-equal too.
func TestRoundTripFPGA(t *testing.T) {
	tr := testTrace(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := fpgaStats(tr)
	const key = "fake-fpga\x00GRU\x00fpga"
	if err := c.Store(key, rs); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(key, tr)
	if !ok {
		t.Fatal("Load missed a just-stored record")
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("round trip mutated the run:\ngot  %+v\nwant %+v", got, rs)
	}
}

// TestDefectiveRecordsAreMisses: corruption, truncation and stale format
// versions are all recomputed (miss), never trusted.
func TestDefectiveRecordsAreMisses(t *testing.T) {
	tr := testTrace(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "fake-gpu\x00GRU\x00cfg"
	rs := gpuStats(tr)
	if err := c.Store(key, rs); err != nil {
		t.Fatal(err)
	}
	path := c.Path(key)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"corrupt", []byte("{not json at all")},
		{"truncated", valid[:len(valid)/2]},
		{"empty", nil},
	}
	for _, tc := range cases {
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Load(key, tr); ok {
			t.Fatalf("%s record must be a miss", tc.name)
		}
	}

	// Stale format version: rewrite the valid record with a bumped tag.
	var m map[string]any
	if err := json.Unmarshal(valid, &m); err != nil {
		t.Fatal(err)
	}
	m["format"] = FormatVersion + 1
	stale, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key, tr); ok {
		t.Fatal("stale-version record must be a miss")
	}
	if st := c.Stats(); st.Errors < 4 {
		t.Fatalf("defective records must count as errors, stats = %+v", st)
	}

	// Restoring the valid bytes restores the hit.
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key, tr); !ok {
		t.Fatal("restored record should hit")
	}
}

// TestDecodeVerifiesIdentity: a record keyed or shaped differently from
// what the caller asked for is rejected, even if it parses.
func TestDecodeVerifiesIdentity(t *testing.T) {
	tr := testTrace(t)
	rs := gpuStats(tr)
	const key = "fake-gpu\x00GRU\x00cfg"
	data, err := Encode(key, rs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, "some-other-key", tr); err == nil || !strings.Contains(err.Error(), "key") {
		t.Fatalf("mismatched key must fail decode, got %v", err)
	}
	other := &target.Trace{Network: "AlexNet", Kernels: tr.Kernels}
	if _, err := Decode(data, key, other); err == nil {
		t.Fatal("mismatched network must fail decode")
	}
	short := &target.Trace{Network: tr.Network, Kernels: tr.Kernels[:1]}
	if _, err := Decode(data, key, short); err == nil {
		t.Fatal("mismatched kernel count must fail decode")
	}
}

// TestConcurrentSharedDirectory: many writers and readers over two Cache
// handles on one directory (two "processes").  Rename-on-write means a
// reader sees either nothing or a complete record — a hit that decodes to
// anything but the full run, or a leftover temp file, is a failure.
func TestConcurrentSharedDirectory(t *testing.T) {
	tr := testTrace(t)
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs := gpuStats(tr)
	const key = "fake-gpu\x00GRU\x00cfg"

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		w := a
		if i%2 == 1 {
			w = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := w.Store(key, rs); err != nil {
					errs <- "store: " + err.Error()
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		r := b
		if i%2 == 1 {
			r = a
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				got, ok := r.Load(key, tr)
				if !ok {
					continue // not yet written: fine
				}
				if !reflect.DeepEqual(got, rs) {
					errs <- "load observed a partial or mangled record"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// No temp files may survive; the shard dir holds exactly the record.
	var files []string
	if err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			files = append(files, filepath.Base(p))
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || strings.HasPrefix(files[0], ".tmp-") {
		t.Fatalf("cache dir should hold exactly the record, got %v", files)
	}
}

// TestEvictOldestFirst: with a byte bound set, Store trims the oldest
// records (by modification time) down to 90% of the bound, never touching
// the newest ones, and counts each removal.
func TestEvictOldestFirst(t *testing.T) {
	tr := testTrace(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := gpuStats(tr)
	key := func(i int) string { return fmt.Sprintf("fake-gpu\x00GRU\x00cfg-%d", i) }
	base := time.Now().Add(-time.Hour)
	const n = 6
	for i := 0; i < n; i++ {
		if err := c.Store(key(i), rs); err != nil {
			t.Fatal(err)
		}
		// Pin distinct, ascending mtimes: filesystem timestamp granularity
		// must not blur the age order the test asserts on.
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.Path(key(i)), when, when); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(c.Path(key(0)))
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()

	// Bound to 4 records: the next store (record 7, newest) must trim the
	// total to <= 90% of the bound, deleting the oldest records only.
	c.SetMaxBytes(4 * size)
	if err := c.Store(key(n), rs); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Evictions < 3 {
		t.Fatalf("expected at least 3 evictions, got %d", stats.Evictions)
	}
	_, total := c.scanRecords()
	if total > 4*size {
		t.Fatalf("cache still holds %d bytes, bound %d", total, 4*size)
	}
	if _, ok := c.Load(key(n), tr); !ok {
		t.Fatal("newest record was evicted")
	}
	if _, ok := c.Load(key(0), tr); ok {
		t.Fatal("oldest record survived eviction")
	}
	// Survivors must be a suffix of the age order: no newer record may be
	// evicted while an older one remains.
	oldestSurvivor := n
	for i := 1; i < n; i++ {
		if _, err := os.Stat(c.Path(key(i))); err == nil {
			oldestSurvivor = i
			break
		}
	}
	for i := oldestSurvivor; i < n; i++ {
		if _, err := os.Stat(c.Path(key(i))); err != nil {
			t.Fatalf("record %d evicted while older record %d survived", i, oldestSurvivor)
		}
	}
}

// TestNoEvictionUnbounded: the default (and an explicit zero bound) never
// evicts.
func TestNoEvictionUnbounded(t *testing.T) {
	tr := testTrace(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(0)
	rs := gpuStats(tr)
	for i := 0; i < 5; i++ {
		if err := c.Store(fmt.Sprintf("fake-gpu\x00GRU\x00u-%d", i), rs); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted %d records", st.Evictions)
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.Load(fmt.Sprintf("fake-gpu\x00GRU\x00u-%d", i), tr); !ok {
			t.Fatalf("record %d missing from unbounded cache", i)
		}
	}
}
