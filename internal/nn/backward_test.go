package nn

import (
	"math"
	"testing"

	"tango/internal/tensor"
)

// numericalGrad estimates d(loss)/d(x[i]) by central finite differences.
func numericalGrad(eval func() float64, x *tensor.Tensor, i int) float64 {
	const eps = 1e-3
	orig := x.Data()[i]
	x.Data()[i] = orig + eps
	plus := eval()
	x.Data()[i] = orig - eps
	minus := eval()
	x.Data()[i] = orig
	return (plus - minus) / (2 * eps)
}

func TestFullyConnectedBackwardGradientCheck(t *testing.T) {
	r := tensor.NewRNG(11)
	const in, out = 6, 4
	x := tensor.New(in)
	x.FillNormal(r, 1)
	w := tensor.New(out * in)
	w.FillNormal(r, 0.5)
	b := tensor.New(out)
	b.FillNormal(r, 0.1)
	target := 2

	loss := func() float64 {
		y, err := FullyConnected(x, w, b, out)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := SoftmaxCrossEntropy(y, target)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	y, err := FullyConnected(x, w, b, out)
	if err != nil {
		t.Fatal(err)
	}
	_, gradLogits, err := SoftmaxCrossEntropy(y, target)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FullyConnectedBackward(x, w, gradLogits, out)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < in; i++ {
		want := numericalGrad(loss, x, i)
		got := float64(g.Input.Data()[i])
		if math.Abs(want-got) > 1e-2 {
			t.Errorf("dL/dx[%d] = %v, finite difference %v", i, got, want)
		}
	}
	for i := 0; i < out*in; i += 5 {
		want := numericalGrad(loss, w, i)
		got := float64(g.Weights.Data()[i])
		if math.Abs(want-got) > 1e-2 {
			t.Errorf("dL/dw[%d] = %v, finite difference %v", i, got, want)
		}
	}
	for i := 0; i < out; i++ {
		want := numericalGrad(loss, b, i)
		got := float64(g.Bias.Data()[i])
		if math.Abs(want-got) > 1e-2 {
			t.Errorf("dL/db[%d] = %v, finite difference %v", i, got, want)
		}
	}
}

func TestConv2DBackwardGradientCheck(t *testing.T) {
	r := tensor.NewRNG(13)
	p := ConvParams{InChannels: 2, OutChannels: 3, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := tensor.New(2, 4, 4)
	x.FillNormal(r, 1)
	w := tensor.New(p.WeightCount())
	w.FillNormal(r, 0.3)
	b := tensor.New(p.OutChannels)
	b.FillNormal(r, 0.1)

	// Scalar loss: sum of squares of the conv output.
	loss := func() float64 {
		y, err := Conv2D(x, w, b, p)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}

	y, err := Conv2D(x, w, b, p)
	if err != nil {
		t.Fatal(err)
	}
	// dL/dy = y for the sum-of-squares loss.
	g, err := Conv2DBackward(x, w, y, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, i := range []int{0, 7, 13, 31} {
		want := numericalGrad(loss, x, i)
		got := float64(g.Input.Data()[i])
		if math.Abs(want-got) > 0.05*math.Max(1, math.Abs(want)) {
			t.Errorf("dL/dx[%d] = %v, finite difference %v", i, got, want)
		}
	}
	for _, i := range []int{0, 5, 17, 26} {
		want := numericalGrad(loss, w, i)
		got := float64(g.Weights.Data()[i])
		if math.Abs(want-got) > 0.05*math.Max(1, math.Abs(want)) {
			t.Errorf("dL/dw[%d] = %v, finite difference %v", i, got, want)
		}
	}
	for i := 0; i < p.OutChannels; i++ {
		want := numericalGrad(loss, b, i)
		got := float64(g.Bias.Data()[i])
		if math.Abs(want-got) > 0.05*math.Max(1, math.Abs(want)) {
			t.Errorf("dL/db[%d] = %v, finite difference %v", i, got, want)
		}
	}
}

func TestBackwardShapeErrors(t *testing.T) {
	if _, err := FullyConnectedBackward(tensor.New(4), tensor.New(8), tensor.New(3), 2); err == nil {
		t.Error("mismatched gradient length should fail")
	}
	if _, err := FullyConnectedBackward(tensor.New(4), tensor.New(7), tensor.New(2), 2); err == nil {
		t.Error("mismatched weight length should fail")
	}
	p := ConvParams{InChannels: 1, OutChannels: 1, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}
	if _, err := Conv2DBackward(tensor.New(1, 4, 4), tensor.New(9), tensor.New(1, 3, 3), p); err == nil {
		t.Error("wrong gradient shape should fail")
	}
	if _, err := ReLUBackward(tensor.New(3), tensor.New(4)); err == nil {
		t.Error("relu backward shape mismatch should fail")
	}
	if _, err := Pool2DBackward(tensor.New(1, 4, 4), tensor.New(1, 3, 3),
		PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}); err == nil {
		t.Error("wrong pool gradient shape should fail")
	}
	if _, _, err := SoftmaxCrossEntropy(tensor.New(3), 5); err == nil {
		t.Error("target out of range should fail")
	}
	if err := SGDStep(tensor.New(3), tensor.New(4), 0.1); err == nil {
		t.Error("sgd shape mismatch should fail")
	}
}

func TestReLUBackward(t *testing.T) {
	in := mustTensor(t, []float32{-1, 2, -3, 4}, 4)
	g := mustTensor(t, []float32{10, 10, 10, 10}, 4)
	out, err := ReLUBackward(in, g)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 10, 0, 10}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("grad[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	in := mustTensor(t, []float32{
		1, 5,
		3, 2,
	}, 1, 2, 2)
	g := mustTensor(t, []float32{7}, 1, 1, 1)
	out, err := Pool2DBackward(in, g, PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 7, 0, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("grad[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestAvgPoolBackwardDistributes(t *testing.T) {
	in := tensor.New(1, 2, 2)
	g := mustTensor(t, []float32{8}, 1, 1, 1)
	out, err := Pool2DBackward(in, g, PoolParams{Kind: AvgPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != 2 {
			t.Errorf("grad[%d] = %v, want 2", i, v)
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	logits := mustTensor(t, []float32{1, 2, 3}, 3)
	loss, grad, err := SoftmaxCrossEntropy(logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("loss %v should be positive", loss)
	}
	// Gradient sums to zero and is negative only at the target.
	sum := 0.0
	for i, v := range grad.Data() {
		sum += float64(v)
		if i == 2 && v >= 0 {
			t.Error("target gradient should be negative")
		}
		if i != 2 && v <= 0 {
			t.Error("non-target gradients should be positive")
		}
	}
	if math.Abs(sum) > 1e-5 {
		t.Errorf("gradient sums to %v, want 0", sum)
	}
}

// TestTrainingLoopLearnsToyTask exercises the full future-work extension: a
// small conv + fc network trained with SGD on a two-class toy problem should
// drive its training loss down and classify the patterns correctly.
func TestTrainingLoopLearnsToyTask(t *testing.T) {
	r := tensor.NewRNG(29)
	conv := ConvParams{InChannels: 1, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	convW := tensor.New(conv.WeightCount())
	convW.FillNormal(r, 0.4)
	convB := tensor.New(conv.OutChannels)
	const classes = 2
	fcIn := 4 * 6 * 6
	fcW := tensor.New(classes * fcIn)
	fcW.FillNormal(r, 0.2)
	fcB := tensor.New(classes)

	// Two synthetic 6x6 patterns: class 0 bright on the left, class 1 bright
	// on the right, plus noise.
	sample := func(class int, seed uint64) *tensor.Tensor {
		rr := tensor.NewRNG(seed)
		img := tensor.New(1, 6, 6)
		img.FillNormal(rr, 0.1)
		for y := 0; y < 6; y++ {
			for x := 0; x < 3; x++ {
				if class == 0 {
					img.Set(img.At(0, y, x)+1, 0, y, x)
				} else {
					img.Set(img.At(0, y, x+3)+1, 0, y, x+3)
				}
			}
		}
		return img
	}

	forward := func(img *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor, error) {
		c, err := Conv2D(img, convW, convB, conv)
		if err != nil {
			return nil, nil, nil, err
		}
		a := ReLU(c)
		logits, err := FullyConnected(a, fcW, fcB, classes)
		return c, a, logits, err
	}

	const lr = 0.05
	var firstLoss, lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		var epochLoss float64
		for i := 0; i < 8; i++ {
			class := i % 2
			img := sample(class, uint64(epoch*100+i))
			convOut, act, logits, err := forward(img)
			if err != nil {
				t.Fatal(err)
			}
			loss, gradLogits, err := SoftmaxCrossEntropy(logits, class)
			if err != nil {
				t.Fatal(err)
			}
			epochLoss += loss

			fcGrad, err := FullyConnectedBackward(act, fcW, gradLogits, classes)
			if err != nil {
				t.Fatal(err)
			}
			gradAct, err := fcGrad.Input.Reshape(4, 6, 6)
			if err != nil {
				t.Fatal(err)
			}
			gradConvOut, err := ReLUBackward(convOut, gradAct)
			if err != nil {
				t.Fatal(err)
			}
			convGrad, err := Conv2DBackward(img, convW, gradConvOut, conv)
			if err != nil {
				t.Fatal(err)
			}
			for _, upd := range []struct{ p, g *tensor.Tensor }{
				{fcW, fcGrad.Weights}, {fcB, fcGrad.Bias},
				{convW, convGrad.Weights}, {convB, convGrad.Bias},
			} {
				if err := SGDStep(upd.p, upd.g, lr); err != nil {
					t.Fatal(err)
				}
			}
		}
		if epoch == 0 {
			firstLoss = epochLoss
		}
		lastLoss = epochLoss
	}
	if lastLoss >= firstLoss*0.5 {
		t.Errorf("training did not reduce the loss: first %v, last %v", firstLoss, lastLoss)
	}
	// Both patterns must now classify correctly.
	for class := 0; class < classes; class++ {
		_, _, logits, err := forward(sample(class, 999))
		if err != nil {
			t.Fatal(err)
		}
		if logits.MaxIndex() != class {
			t.Errorf("trained network misclassifies pattern %d (logits %v)", class, logits.Data())
		}
	}
}
