package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// ReLU applies max(0, x) element-wise and returns a new tensor.  The paper's
// Observation 8 notes that ReLU's zeroing is one reason integer pipelines see
// heavy use even in floating-point networks.
func ReLU(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	reluInto(out.Data(), input.Data())
	return out
}

// reluInto writes max(0, in[i]) into o; both have equal length.
func reluInto(o, in []float32) {
	for i, v := range in {
		if v > 0 {
			o[i] = v
		} else {
			o[i] = 0
		}
	}
}

// ReLUInPlace applies max(0, x) in place, matching the fused behaviour of the
// conv+relu kernels.
func ReLUInPlace(t *tensor.Tensor) {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	for i, v := range input.Data() {
		out.Data()[i] = float32(1.0 / (1.0 + math.Exp(-float64(v))))
	}
	return out
}

// Tanh applies the hyperbolic tangent element-wise.
func Tanh(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	for i, v := range input.Data() {
		out.Data()[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// checkEltwiseArgs validates an element-wise binary op.
func checkEltwiseArgs(op string, a, b *tensor.Tensor) error {
	if a == nil || b == nil {
		return fmt.Errorf("nn: eltwise %s: %w: nil input", op, tensor.ErrShape)
	}
	if !tensor.SameShape(a, b) {
		return fmt.Errorf("%w: eltwise %s %v vs %v", tensor.ErrShape, op, a.Shape(), b.Shape())
	}
	return nil
}

// EltwiseAdd returns a + b element-wise; the tensors must share a shape.
// ResNet shortcut connections use it.
func EltwiseAdd(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return (*Scratch)(nil).EltwiseAdd(a, b)
}

// eltwiseAddInto writes a[i] + b[i] into o; all have equal length.
func eltwiseAddInto(o, a, b []float32) {
	for i := range a {
		o[i] = a[i] + b[i]
	}
}

// EltwiseMul returns a * b element-wise; the tensors must share a shape.
// The LSTM and GRU gate equations use it.
func EltwiseMul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkEltwiseArgs("mul", a, b); err != nil {
		return nil, err
	}
	out := tensor.New(a.Shape()...)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := range ad {
		od[i] = ad[i] * bd[i]
	}
	return out, nil
}
