package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// ReLU applies max(0, x) element-wise and returns a new tensor.  The paper's
// Observation 8 notes that ReLU's zeroing is one reason integer pipelines see
// heavy use even in floating-point networks.
func ReLU(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	in := input.Data()
	o := out.Data()
	for i, v := range in {
		if v > 0 {
			o[i] = v
		}
	}
	return out
}

// ReLUInPlace applies max(0, x) in place, matching the fused behaviour of the
// conv+relu kernels.
func ReLUInPlace(t *tensor.Tensor) {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	for i, v := range input.Data() {
		out.Data()[i] = float32(1.0 / (1.0 + math.Exp(-float64(v))))
	}
	return out
}

// Tanh applies the hyperbolic tangent element-wise.
func Tanh(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	for i, v := range input.Data() {
		out.Data()[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// EltwiseAdd returns a + b element-wise; the tensors must share a shape.
// ResNet shortcut connections use it.
func EltwiseAdd(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if !tensor.SameShape(a, b) {
		return nil, fmt.Errorf("%w: eltwise add %v vs %v", tensor.ErrShape, a.Shape(), b.Shape())
	}
	out := tensor.New(a.Shape()...)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := range ad {
		od[i] = ad[i] + bd[i]
	}
	return out, nil
}

// EltwiseMul returns a * b element-wise; the tensors must share a shape.
// The LSTM and GRU gate equations use it.
func EltwiseMul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if !tensor.SameShape(a, b) {
		return nil, fmt.Errorf("%w: eltwise mul %v vs %v", tensor.ErrShape, a.Shape(), b.Shape())
	}
	out := tensor.New(a.Shape()...)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := range ad {
		od[i] = ad[i] * bd[i]
	}
	return out, nil
}
