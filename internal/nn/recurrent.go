package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// LSTMWeights holds the gate parameters of one LSTM layer.  Each W* matrix
// has shape (hidden x input) and each U* matrix (hidden x hidden); biases
// have length hidden.  The gate order follows the paper's description: input,
// forget and output gates plus the candidate cell update.
type LSTMWeights struct {
	Hidden int
	Input  int

	Wi, Wf, Wo, Wc *tensor.Tensor
	Ui, Uf, Uo, Uc *tensor.Tensor
	Bi, Bf, Bo, Bc *tensor.Tensor
}

// Validate checks all weight shapes.
func (w *LSTMWeights) Validate() error {
	if w.Hidden <= 0 || w.Input <= 0 {
		return fmt.Errorf("nn: lstm dims must be positive, got hidden=%d input=%d", w.Hidden, w.Input)
	}
	check := func(name string, t *tensor.Tensor, want int) error {
		if t == nil {
			return fmt.Errorf("nn: lstm weight %s is nil", name)
		}
		if t.Len() != want {
			return fmt.Errorf("nn: lstm weight %s has %d elements, want %d", name, t.Len(), want)
		}
		return nil
	}
	hi := w.Hidden * w.Input
	hh := w.Hidden * w.Hidden
	for _, c := range []struct {
		name string
		t    *tensor.Tensor
		want int
	}{
		{"Wi", w.Wi, hi}, {"Wf", w.Wf, hi}, {"Wo", w.Wo, hi}, {"Wc", w.Wc, hi},
		{"Ui", w.Ui, hh}, {"Uf", w.Uf, hh}, {"Uo", w.Uo, hh}, {"Uc", w.Uc, hh},
		{"Bi", w.Bi, w.Hidden}, {"Bf", w.Bf, w.Hidden}, {"Bo", w.Bo, w.Hidden}, {"Bc", w.Bc, w.Hidden},
	} {
		if err := check(c.name, c.t, c.want); err != nil {
			return err
		}
	}
	return nil
}

// LSTMState is the recurrent state carried between time steps.
type LSTMState struct {
	H *tensor.Tensor // hidden state, length hidden
	C *tensor.Tensor // cell state, length hidden
}

// NewLSTMState returns a zero-initialized state for the given hidden size.
func NewLSTMState(hidden int) LSTMState {
	return LSTMState{H: tensor.New(hidden), C: tensor.New(hidden)}
}

// LSTMCell advances the LSTM by one time step with input x (length Input) and
// returns the new state.
//
//	i = sigmoid(Wi*x + Ui*h + bi)
//	f = sigmoid(Wf*x + Uf*h + bf)
//	o = sigmoid(Wo*x + Uo*h + bo)
//	g = tanh(Wc*x + Uc*h + bc)
//	c' = f.*c + i.*g
//	h' = o .* tanh(c')
func LSTMCell(w *LSTMWeights, st LSTMState, x *tensor.Tensor) (LSTMState, error) {
	if err := w.Validate(); err != nil {
		return LSTMState{}, err
	}
	if x.Len() != w.Input {
		return LSTMState{}, fmt.Errorf("nn: lstm input has %d elements, want %d", x.Len(), w.Input)
	}
	if st.H == nil || st.C == nil || st.H.Len() != w.Hidden || st.C.Len() != w.Hidden {
		return LSTMState{}, fmt.Errorf("nn: lstm state must have hidden size %d", w.Hidden)
	}
	gate := func(wx, uh, b *tensor.Tensor) (*tensor.Tensor, error) {
		xw, err := MatVec(wx, x, w.Hidden, w.Input)
		if err != nil {
			return nil, err
		}
		hw, err := MatVec(uh, st.H, w.Hidden, w.Hidden)
		if err != nil {
			return nil, err
		}
		sum, err := EltwiseAdd(xw, hw)
		if err != nil {
			return nil, err
		}
		return EltwiseAdd(sum, b)
	}
	pi, err := gate(w.Wi, w.Ui, w.Bi)
	if err != nil {
		return LSTMState{}, err
	}
	pf, err := gate(w.Wf, w.Uf, w.Bf)
	if err != nil {
		return LSTMState{}, err
	}
	po, err := gate(w.Wo, w.Uo, w.Bo)
	if err != nil {
		return LSTMState{}, err
	}
	pc, err := gate(w.Wc, w.Uc, w.Bc)
	if err != nil {
		return LSTMState{}, err
	}
	i := Sigmoid(pi)
	f := Sigmoid(pf)
	o := Sigmoid(po)
	g := Tanh(pc)

	fc, err := EltwiseMul(f, st.C)
	if err != nil {
		return LSTMState{}, err
	}
	ig, err := EltwiseMul(i, g)
	if err != nil {
		return LSTMState{}, err
	}
	newC, err := EltwiseAdd(fc, ig)
	if err != nil {
		return LSTMState{}, err
	}
	newH, err := EltwiseMul(o, Tanh(newC))
	if err != nil {
		return LSTMState{}, err
	}
	return LSTMState{H: newH, C: newC}, nil
}

// GRUWeights holds the gate parameters of one GRU layer.  Gate order: reset,
// update, candidate.
type GRUWeights struct {
	Hidden int
	Input  int

	Wr, Wz, Wh *tensor.Tensor // (hidden x input)
	Ur, Uz, Uh *tensor.Tensor // (hidden x hidden)
	Br, Bz, Bh *tensor.Tensor // (hidden)
}

// Validate checks all weight shapes.
func (w *GRUWeights) Validate() error {
	if w.Hidden <= 0 || w.Input <= 0 {
		return fmt.Errorf("nn: gru dims must be positive, got hidden=%d input=%d", w.Hidden, w.Input)
	}
	hi := w.Hidden * w.Input
	hh := w.Hidden * w.Hidden
	for _, c := range []struct {
		name string
		t    *tensor.Tensor
		want int
	}{
		{"Wr", w.Wr, hi}, {"Wz", w.Wz, hi}, {"Wh", w.Wh, hi},
		{"Ur", w.Ur, hh}, {"Uz", w.Uz, hh}, {"Uh", w.Uh, hh},
		{"Br", w.Br, w.Hidden}, {"Bz", w.Bz, w.Hidden}, {"Bh", w.Bh, w.Hidden},
	} {
		if c.t == nil {
			return fmt.Errorf("nn: gru weight %s is nil", c.name)
		}
		if c.t.Len() != c.want {
			return fmt.Errorf("nn: gru weight %s has %d elements, want %d", c.name, c.t.Len(), c.want)
		}
	}
	return nil
}

// GRUCell advances the GRU by one time step with input x and hidden state h,
// returning the new hidden state.
//
//	r = sigmoid(Wr*x + Ur*h + br)
//	z = sigmoid(Wz*x + Uz*h + bz)
//	n = tanh(Wh*x + Uh*(r.*h) + bh)
//	h' = (1-z).*n + z.*h
func GRUCell(w *GRUWeights, h *tensor.Tensor, x *tensor.Tensor) (*tensor.Tensor, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if x.Len() != w.Input {
		return nil, fmt.Errorf("nn: gru input has %d elements, want %d", x.Len(), w.Input)
	}
	if h == nil || h.Len() != w.Hidden {
		return nil, fmt.Errorf("nn: gru state must have hidden size %d", w.Hidden)
	}
	lin := func(wx, uh, b *tensor.Tensor, hv *tensor.Tensor) (*tensor.Tensor, error) {
		xw, err := MatVec(wx, x, w.Hidden, w.Input)
		if err != nil {
			return nil, err
		}
		hw, err := MatVec(uh, hv, w.Hidden, w.Hidden)
		if err != nil {
			return nil, err
		}
		sum, err := EltwiseAdd(xw, hw)
		if err != nil {
			return nil, err
		}
		return EltwiseAdd(sum, b)
	}
	pr, err := lin(w.Wr, w.Ur, w.Br, h)
	if err != nil {
		return nil, err
	}
	pz, err := lin(w.Wz, w.Uz, w.Bz, h)
	if err != nil {
		return nil, err
	}
	r := Sigmoid(pr)
	z := Sigmoid(pz)

	rh, err := EltwiseMul(r, h)
	if err != nil {
		return nil, err
	}
	pn, err := lin(w.Wh, w.Uh, w.Bh, rh)
	if err != nil {
		return nil, err
	}
	n := Tanh(pn)

	out := tensor.New(w.Hidden)
	for i := 0; i < w.Hidden; i++ {
		zi := z.Data()[i]
		out.Data()[i] = (1-zi)*n.Data()[i] + zi*h.Data()[i]
	}
	return out, nil
}
