// Package nn implements the fundamental mathematical layer computations of
// the Tango benchmark suite: convolution, pooling, fully-connected, local
// response normalization, batch normalization, scale, element-wise addition,
// activation functions, softmax, SqueezeNet fire modules, and the LSTM and
// GRU recurrent cells.
//
// Each function corresponds to one CUDA/OpenCL kernel in the original
// benchmark suite.  Inputs use CHW layout (channels, height, width) with an
// implicit batch size of one, matching the single-image inference the paper
// evaluates.
package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// ConvParams describes a 2-D convolution layer.
type ConvParams struct {
	// InChannels and OutChannels are the feature-map depths.
	InChannels  int
	OutChannels int
	// KernelH and KernelW are the filter sizes.
	KernelH int
	KernelW int
	// StrideH and StrideW are the filter step sizes.
	StrideH int
	StrideW int
	// PadH and PadW are the zero-padding amounts on each side.
	PadH int
	PadW int
	// Groups splits input and output channels into independent groups
	// (AlexNet-style grouped convolution).  Zero means one group.
	Groups int
}

// Validate checks the parameters for internal consistency.
func (p ConvParams) Validate() error {
	if p.InChannels <= 0 || p.OutChannels <= 0 {
		return fmt.Errorf("nn: conv channels must be positive, got in=%d out=%d", p.InChannels, p.OutChannels)
	}
	if p.KernelH <= 0 || p.KernelW <= 0 {
		return fmt.Errorf("nn: conv kernel must be positive, got %dx%d", p.KernelH, p.KernelW)
	}
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("nn: conv stride must be positive, got %dx%d", p.StrideH, p.StrideW)
	}
	if p.PadH < 0 || p.PadW < 0 {
		return fmt.Errorf("nn: conv padding must be non-negative, got %dx%d", p.PadH, p.PadW)
	}
	g := p.Groups
	if g == 0 {
		g = 1
	}
	if p.InChannels%g != 0 || p.OutChannels%g != 0 {
		return fmt.Errorf("nn: conv groups %d must divide channels in=%d out=%d", g, p.InChannels, p.OutChannels)
	}
	return nil
}

// groups returns the effective group count.
func (p ConvParams) groups() int {
	if p.Groups <= 0 {
		return 1
	}
	return p.Groups
}

// OutputDims returns the output height and width for an input of inH x inW.
func (p ConvParams) OutputDims(inH, inW int) (outH, outW int) {
	outH = (inH+2*p.PadH-p.KernelH)/p.StrideH + 1
	outW = (inW+2*p.PadW-p.KernelW)/p.StrideW + 1
	return outH, outW
}

// WeightCount returns the number of filter weights.
func (p ConvParams) WeightCount() int {
	return p.OutChannels * (p.InChannels / p.groups()) * p.KernelH * p.KernelW
}

// MACs returns the number of multiply-accumulate operations for an input of
// inH x inW, the dominant cost the paper's Observation 1 attributes to
// convolution layers.
func (p ConvParams) MACs(inH, inW int) int64 {
	outH, outW := p.OutputDims(inH, inW)
	perOutput := int64(p.InChannels/p.groups()) * int64(p.KernelH) * int64(p.KernelW)
	return int64(p.OutChannels) * int64(outH) * int64(outW) * perOutput
}

// checkConvArgs validates a convolution call and returns the input and
// output geometry.
func checkConvArgs(input *tensor.Tensor, weights, bias *tensor.Tensor, p ConvParams) (inH, inW, outH, outW int, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	if input == nil || weights == nil {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv: %w: nil input or weights", tensor.ErrShape)
	}
	if input.Rank() != 3 {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv input must be CHW, got shape %v", input.Shape())
	}
	inC := input.Dim(0)
	inH, inW = input.Dim(1), input.Dim(2)
	if inC != p.InChannels {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv expects %d input channels, got %d", p.InChannels, inC)
	}
	if weights.Len() != p.WeightCount() {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv expects %d weights, got %d", p.WeightCount(), weights.Len())
	}
	if bias != nil && bias.Len() != p.OutChannels {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv expects %d biases, got %d", p.OutChannels, bias.Len())
	}
	outH, outW = p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("nn: conv output dims %dx%d are not positive for input %dx%d", outH, outW, inH, inW)
	}
	return inH, inW, outH, outW, nil
}

// Conv2D performs a 2-D convolution of input (CHW) with weights
// (outC x inC/groups x kh x kw) and a per-output-channel bias.  It returns a
// new CHW tensor.  One output element corresponds to one simulated GPU
// thread, mirroring the paper's one-thread-per-neuron mapping.
//
// The computation is lowered to im2col plus the blocked GEMM kernel in
// package tensor; results are bit-identical to the direct reference loop in
// Conv2DDirect (see the summation-order contract on tensor.Gemm).  Use a
// Scratch to amortize the im2col and output buffers across runs.
func Conv2D(input *tensor.Tensor, weights, bias *tensor.Tensor, p ConvParams) (*tensor.Tensor, error) {
	return (*Scratch)(nil).Conv2D(input, weights, bias, p)
}

// Conv2DDirect is the reference implementation of Conv2D: a direct 7-deep
// loop nest that accumulates each output element with a scalar sum over
// (channel, ky, kx) in ascending order.  The GEMM path is validated
// bit-exactly against it.
func Conv2DDirect(input *tensor.Tensor, weights, bias *tensor.Tensor, p ConvParams) (*tensor.Tensor, error) {
	_, _, outH, outW, err := checkConvArgs(input, weights, bias, p)
	if err != nil {
		return nil, err
	}
	out := tensor.New(p.OutChannels, outH, outW)
	conv2DDirectInto(out, input, weights, bias, p)
	return out, nil
}

// conv2DDirectInto runs the direct loop nest, fully overwriting dst.
// Arguments must be pre-validated.
func conv2DDirectInto(dst, input, weights, bias *tensor.Tensor, p ConvParams) {
	inH, inW := input.Dim(1), input.Dim(2)
	outH, outW := dst.Dim(1), dst.Dim(2)
	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	in := input.Data()
	w := weights.Data()
	o := dst.Data()

	for oc := 0; oc < p.OutChannels; oc++ {
		group := oc / outCPerGroup
		icBase := group * inCPerGroup
		b := float32(0)
		if bias != nil {
			b = bias.Data()[oc]
		}
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := b
				for ic := 0; ic < inCPerGroup; ic++ {
					for ky := 0; ky < p.KernelH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < p.KernelW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= inW {
								continue
							}
							iv := in[((icBase+ic)*inH+iy)*inW+ix]
							wv := w[((oc*inCPerGroup+ic)*p.KernelH+ky)*p.KernelW+kx]
							sum += iv * wv
						}
					}
				}
				o[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
}

// im2col gathers one receptive-field patch per output pixel into col, laid
// out patch-major: col[(oy*outW+ox)*k + l] where l runs over (channel, ky,
// kx) of the group's input channels [icBase, icBase+icCount).  Out-of-image
// (padding) positions are written as zero.  The patch-major layout makes
// both operands of the GEMM inner dot product contiguous.
func im2col(col, in []float32, inH, inW, icBase, icCount int, p ConvParams, outH, outW int) {
	k := icCount * p.KernelH * p.KernelW
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*p.StrideH - p.PadH
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*p.StrideW - p.PadW
			patch := col[(oy*outW+ox)*k : (oy*outW+ox)*k+k]
			idx := 0
			for ic := 0; ic < icCount; ic++ {
				plane := in[(icBase+ic)*inH*inW : (icBase+ic+1)*inH*inW]
				for ky := 0; ky < p.KernelH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= inH {
						for kx := 0; kx < p.KernelW; kx++ {
							patch[idx] = 0
							idx++
						}
						continue
					}
					row := plane[iy*inW : (iy+1)*inW]
					ix := ix0
					for kx := 0; kx < p.KernelW; kx++ {
						if ix < 0 || ix >= inW {
							patch[idx] = 0
						} else {
							patch[idx] = row[ix]
						}
						idx++
						ix++
					}
				}
			}
		}
	}
}

// im2col1x1 handles the 1x1 stride-1 unpadded case: the patch matrix is the
// transpose of the group's input channel block.
func im2col1x1(col, in []float32, hw, icBase, icCount int) {
	for j := 0; j < hw; j++ {
		patch := col[j*icCount : (j+1)*icCount]
		for ic := range patch {
			patch[ic] = in[(icBase+ic)*hw+j]
		}
	}
}
