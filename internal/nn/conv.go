// Package nn implements the fundamental mathematical layer computations of
// the Tango benchmark suite: convolution, pooling, fully-connected, local
// response normalization, batch normalization, scale, element-wise addition,
// activation functions, softmax, SqueezeNet fire modules, and the LSTM and
// GRU recurrent cells.
//
// Each function corresponds to one CUDA/OpenCL kernel in the original
// benchmark suite.  Inputs use CHW layout (channels, height, width) with an
// implicit batch size of one, matching the single-image inference the paper
// evaluates.
package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// ConvParams describes a 2-D convolution layer.
type ConvParams struct {
	// InChannels and OutChannels are the feature-map depths.
	InChannels  int
	OutChannels int
	// KernelH and KernelW are the filter sizes.
	KernelH int
	KernelW int
	// StrideH and StrideW are the filter step sizes.
	StrideH int
	StrideW int
	// PadH and PadW are the zero-padding amounts on each side.
	PadH int
	PadW int
	// Groups splits input and output channels into independent groups
	// (AlexNet-style grouped convolution).  Zero means one group.
	Groups int
}

// Validate checks the parameters for internal consistency.
func (p ConvParams) Validate() error {
	if p.InChannels <= 0 || p.OutChannels <= 0 {
		return fmt.Errorf("nn: conv channels must be positive, got in=%d out=%d", p.InChannels, p.OutChannels)
	}
	if p.KernelH <= 0 || p.KernelW <= 0 {
		return fmt.Errorf("nn: conv kernel must be positive, got %dx%d", p.KernelH, p.KernelW)
	}
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("nn: conv stride must be positive, got %dx%d", p.StrideH, p.StrideW)
	}
	if p.PadH < 0 || p.PadW < 0 {
		return fmt.Errorf("nn: conv padding must be non-negative, got %dx%d", p.PadH, p.PadW)
	}
	g := p.Groups
	if g == 0 {
		g = 1
	}
	if p.InChannels%g != 0 || p.OutChannels%g != 0 {
		return fmt.Errorf("nn: conv groups %d must divide channels in=%d out=%d", g, p.InChannels, p.OutChannels)
	}
	return nil
}

// groups returns the effective group count.
func (p ConvParams) groups() int {
	if p.Groups <= 0 {
		return 1
	}
	return p.Groups
}

// OutputDims returns the output height and width for an input of inH x inW.
func (p ConvParams) OutputDims(inH, inW int) (outH, outW int) {
	outH = (inH+2*p.PadH-p.KernelH)/p.StrideH + 1
	outW = (inW+2*p.PadW-p.KernelW)/p.StrideW + 1
	return outH, outW
}

// WeightCount returns the number of filter weights.
func (p ConvParams) WeightCount() int {
	return p.OutChannels * (p.InChannels / p.groups()) * p.KernelH * p.KernelW
}

// MACs returns the number of multiply-accumulate operations for an input of
// inH x inW, the dominant cost the paper's Observation 1 attributes to
// convolution layers.
func (p ConvParams) MACs(inH, inW int) int64 {
	outH, outW := p.OutputDims(inH, inW)
	perOutput := int64(p.InChannels/p.groups()) * int64(p.KernelH) * int64(p.KernelW)
	return int64(p.OutChannels) * int64(outH) * int64(outW) * perOutput
}

// Conv2D performs a 2-D convolution of input (CHW) with weights
// (outC x inC/groups x kh x kw) and a per-output-channel bias.  It returns a
// new CHW tensor.  One output element corresponds to one simulated GPU
// thread, mirroring the paper's one-thread-per-neuron mapping.
func Conv2D(input *tensor.Tensor, weights, bias *tensor.Tensor, p ConvParams) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input.Rank() != 3 {
		return nil, fmt.Errorf("nn: conv input must be CHW, got shape %v", input.Shape())
	}
	inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2)
	if inC != p.InChannels {
		return nil, fmt.Errorf("nn: conv expects %d input channels, got %d", p.InChannels, inC)
	}
	if weights.Len() != p.WeightCount() {
		return nil, fmt.Errorf("nn: conv expects %d weights, got %d", p.WeightCount(), weights.Len())
	}
	if bias != nil && bias.Len() != p.OutChannels {
		return nil, fmt.Errorf("nn: conv expects %d biases, got %d", p.OutChannels, bias.Len())
	}
	outH, outW := p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: conv output dims %dx%d are not positive for input %dx%d", outH, outW, inH, inW)
	}

	out := tensor.New(p.OutChannels, outH, outW)
	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	in := input.Data()
	w := weights.Data()
	o := out.Data()

	for oc := 0; oc < p.OutChannels; oc++ {
		group := oc / outCPerGroup
		icBase := group * inCPerGroup
		b := float32(0)
		if bias != nil {
			b = bias.Data()[oc]
		}
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := b
				for ic := 0; ic < inCPerGroup; ic++ {
					for ky := 0; ky < p.KernelH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < p.KernelW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= inW {
								continue
							}
							iv := in[((icBase+ic)*inH+iy)*inW+ix]
							wv := w[((oc*inCPerGroup+ic)*p.KernelH+ky)*p.KernelW+kx]
							sum += iv * wv
						}
					}
				}
				o[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return out, nil
}
