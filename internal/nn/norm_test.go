package nn

import (
	"math"
	"testing"

	"tango/internal/tensor"
)

func TestDefaultLRN(t *testing.T) {
	p := DefaultLRN()
	if p.LocalSize != 5 || p.Beta != 0.75 || p.K != 2 {
		t.Errorf("unexpected default LRN params: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default LRN params invalid: %v", err)
	}
}

func TestLRNValidate(t *testing.T) {
	bad := []LRNParams{
		{LocalSize: 0, Alpha: 1, Beta: 1, K: 1},
		{LocalSize: 5, Alpha: -1, Beta: 1, K: 1},
		{LocalSize: 5, Alpha: 1, Beta: -1, K: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid LRN params accepted", i)
		}
	}
}

func TestLRNSingleChannel(t *testing.T) {
	// One channel, n=1: out = in / (k + alpha*in^2)^beta.
	in := mustTensor(t, []float32{2}, 1, 1, 1)
	p := LRNParams{LocalSize: 1, Alpha: 1, Beta: 1, K: 1}
	out, err := LRN(in, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / (1.0 + 1.0*4.0)
	if math.Abs(float64(out.Data()[0])-want) > 1e-6 {
		t.Errorf("LRN = %v, want %v", out.Data()[0], want)
	}
}

func TestLRNDampensLargeActivations(t *testing.T) {
	in := tensor.New(8, 4, 4)
	in.Fill(10)
	out, err := LRN(in, DefaultLRN())
	if err != nil {
		t.Fatal(err)
	}
	if out.Max() >= in.Max() {
		t.Errorf("LRN should dampen activations: max %v >= %v", out.Max(), in.Max())
	}
	if out.Min() <= 0 {
		t.Errorf("LRN of positive input should stay positive, min %v", out.Min())
	}
}

func TestLRNErrors(t *testing.T) {
	if _, err := LRN(tensor.New(4), DefaultLRN()); err == nil {
		t.Error("non-CHW input should fail")
	}
	if _, err := LRN(tensor.New(1, 2, 2), LRNParams{LocalSize: 0}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestBatchNormKnown(t *testing.T) {
	in := mustTensor(t, []float32{1, 2, 3, 4}, 1, 2, 2)
	mean := mustTensor(t, []float32{2.5}, 1)
	variance := mustTensor(t, []float32{1.25}, 1)
	out, err := BatchNorm(in, BatchNormParams{Mean: mean, Variance: variance, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized output should have roughly zero mean and unit variance.
	if math.Abs(out.Sum()) > 1e-4 {
		t.Errorf("batchnorm mean %v, want ~0", out.Sum()/4)
	}
	varSum := 0.0
	for _, v := range out.Data() {
		varSum += float64(v) * float64(v)
	}
	if math.Abs(varSum/4-1) > 1e-3 {
		t.Errorf("batchnorm variance %v, want ~1", varSum/4)
	}
}

func TestBatchNormErrors(t *testing.T) {
	in := tensor.New(2, 2, 2)
	if _, err := BatchNorm(in, BatchNormParams{}); err == nil {
		t.Error("missing stats should fail")
	}
	if _, err := BatchNorm(in, BatchNormParams{Mean: tensor.New(1), Variance: tensor.New(2)}); err == nil {
		t.Error("stat length mismatch should fail")
	}
	if _, err := BatchNorm(tensor.New(4), BatchNormParams{Mean: tensor.New(1), Variance: tensor.New(1)}); err == nil {
		t.Error("non-CHW input should fail")
	}
}

func TestScaleKnown(t *testing.T) {
	in := mustTensor(t, []float32{1, 2, 3, 4}, 2, 1, 2)
	gamma := mustTensor(t, []float32{2, 10}, 2)
	beta := mustTensor(t, []float32{1, 0}, 2)
	out, err := Scale(in, gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 5, 30, 40}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestScaleWithoutBeta(t *testing.T) {
	in := mustTensor(t, []float32{1, 2}, 1, 1, 2)
	gamma := mustTensor(t, []float32{3}, 1)
	out, err := Scale(in, gamma, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 3 || out.Data()[1] != 6 {
		t.Errorf("scale without beta = %v", out.Data())
	}
}

func TestScaleErrors(t *testing.T) {
	in := tensor.New(2, 2, 2)
	if _, err := Scale(in, tensor.New(1), nil); err == nil {
		t.Error("gamma length mismatch should fail")
	}
	if _, err := Scale(in, tensor.New(2), tensor.New(3)); err == nil {
		t.Error("beta length mismatch should fail")
	}
	if _, err := Scale(tensor.New(4), tensor.New(2), nil); err == nil {
		t.Error("non-CHW input should fail")
	}
}
