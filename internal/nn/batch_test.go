package nn

import (
	"errors"
	"math"
	"testing"

	"tango/internal/tensor"
)

// sampleOf copies sample i of a batched tensor into a fresh tensor with the
// per-sample shape.
func sampleOf(t *testing.T, batch *tensor.Tensor, i int) *tensor.Tensor {
	t.Helper()
	n := batch.Dim(0)
	sample := batch.Len() / n
	shape := batch.Shape()[1:]
	out := tensor.New(shape...)
	copy(out.Data(), batch.Data()[i*sample:(i+1)*sample])
	return out
}

// requireSameBits fails unless sample i of batch is bit-identical to want.
func requireSameBits(t *testing.T, op string, batch *tensor.Tensor, i int, want *tensor.Tensor) {
	t.Helper()
	n := batch.Dim(0)
	sample := batch.Len() / n
	got := batch.Data()[i*sample : (i+1)*sample]
	if sample != want.Len() {
		t.Fatalf("%s: sample %d has %d elements, want %d", op, i, sample, want.Len())
	}
	for j, v := range got {
		if math.Float32bits(v) != math.Float32bits(want.Data()[j]) {
			t.Fatalf("%s: sample %d element %d: batch %x single %x",
				op, i, j, math.Float32bits(v), math.Float32bits(want.Data()[j]))
		}
	}
}

func randBatch(r *tensor.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillUniform(r, -1, 1)
	return t
}

func TestConv2DBatchMatchesSingle(t *testing.T) {
	r := tensor.NewRNG(11)
	cases := []struct {
		name string
		p    ConvParams
		n    int
		inH  int
		inW  int
	}{
		{"3x3 pad1", ConvParams{InChannels: 3, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 4, 9, 9},
		{"5x5 stride2 grouped", ConvParams{InChannels: 4, OutChannels: 8, KernelH: 5, KernelW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2, Groups: 2}, 3, 13, 11},
		{"1x1", ConvParams{InChannels: 6, OutChannels: 10, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}, 5, 7, 7},
		{"4x4 stride3 nopad", ConvParams{InChannels: 2, OutChannels: 7, KernelH: 4, KernelW: 4, StrideH: 3, StrideW: 3}, 2, 14, 17},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := randBatch(r, c.p.WeightCount())
			b := randBatch(r, c.p.OutChannels)
			in := randBatch(r, c.n, c.p.InChannels, c.inH, c.inW)
			s := NewScratch()
			out, err := s.Conv2DBatch(in, w, b, c.p)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < c.n; i++ {
				single, err := NewScratch().Conv2D(sampleOf(t, in, i), w, b, c.p)
				if err != nil {
					t.Fatal(err)
				}
				requireSameBits(t, c.name, out, i, single)
			}
		})
	}
}

func TestFullyConnectedBatchMatchesSingle(t *testing.T) {
	r := tensor.NewRNG(12)
	for _, n := range []int{1, 3, 8, 9} {
		inF, outF := 37, 21
		w := randBatch(r, outF*inF)
		b := randBatch(r, outF)
		in := randBatch(r, n, inF)
		out, err := NewScratch().FullyConnectedBatch(in, w, b, outF)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			single, err := NewScratch().FullyConnected(sampleOf(t, in, i), w, b, outF)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "fc", out, i, single)
		}
	}
}

func TestElementwiseBatchOpsMatchSingle(t *testing.T) {
	r := tensor.NewRNG(13)
	const n, c, h, w = 3, 6, 5, 7
	in := randBatch(r, n, c, h, w)
	s := NewScratch()

	t.Run("pool", func(t *testing.T) {
		for _, p := range []PoolParams{
			{Kind: MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true},
			{Kind: AvgPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		} {
			out, err := s.Pool2DBatch(in, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				single, err := Pool2D(sampleOf(t, in, i), p)
				if err != nil {
					t.Fatal(err)
				}
				requireSameBits(t, "pool", out, i, single)
			}
		}
	})
	t.Run("lrn", func(t *testing.T) {
		p := DefaultLRN()
		out, err := s.LRNBatch(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			single, err := LRN(sampleOf(t, in, i), p)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "lrn", out, i, single)
		}
	})
	t.Run("batchnorm+scale", func(t *testing.T) {
		mean := randBatch(r, c)
		variance := tensor.New(c)
		variance.FillUniform(r, 0.1, 2)
		p := BatchNormParams{Mean: mean, Variance: variance}
		out, err := s.BatchNormBatch(in, p)
		if err != nil {
			t.Fatal(err)
		}
		gamma := randBatch(r, c)
		beta := randBatch(r, c)
		scaled, err := s.ScaleBatch(out, gamma, beta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			bn, err := BatchNorm(sampleOf(t, in, i), p)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "batchnorm", out, i, bn)
			sc, err := Scale(bn, gamma, beta)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "scale", scaled, i, sc)
		}
	})
	t.Run("relu+eltwise+concat+globalpool", func(t *testing.T) {
		other := randBatch(r, n, c, h, w)
		relu, err := s.ReLUBatch(in)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.EltwiseAddBatch(in, other)
		if err != nil {
			t.Fatal(err)
		}
		cat, err := s.ConcatChannelsBatch(in, other)
		if err != nil {
			t.Fatal(err)
		}
		gap, err := s.GlobalAvgPoolBatch(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			si, so := sampleOf(t, in, i), sampleOf(t, other, i)
			requireSameBits(t, "relu", relu, i, ReLU(si))
			es, err := EltwiseAdd(si, so)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "eltwise", sum, i, es)
			cs, err := ConcatChannels(si, so)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "concat", cat, i, cs)
			gs, err := GlobalAvgPool(si)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "globalpool", gap, i, gs)
		}
	})
	t.Run("softmax", func(t *testing.T) {
		vec := randBatch(r, n, 9)
		out, err := s.SoftmaxBatch(vec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			single, err := Softmax(sampleOf(t, vec, i))
			if err != nil {
				t.Fatal(err)
			}
			requireSameBits(t, "softmax", out, i, single)
		}
	})
}

func TestRecurrentSeqBatchMatchesSingle(t *testing.T) {
	r := tensor.NewRNG(14)
	const hidden, inSize, steps, n = 16, 4, 5, 3
	seq := randBatch(r, steps, n, inSize)

	t.Run("lstm", func(t *testing.T) {
		w := makeLSTMWeights(r, hidden, inSize)
		out, err := NewScratch().LSTMSeqBatch(w, seq.Data(), n, steps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s := NewScratch()
			st := LSTMState{H: tensor.New(hidden), C: tensor.New(hidden)}
			for step := 0; step < steps; step++ {
				x := tensor.New(inSize)
				copy(x.Data(), seq.Data()[(step*n+i)*inSize:(step*n+i+1)*inSize])
				if err := s.LSTMStep(w, st, x); err != nil {
					t.Fatal(err)
				}
			}
			requireSameBits(t, "lstm", out, i, st.H)
		}
	})
	t.Run("gru", func(t *testing.T) {
		w := makeGRUWeights(r, hidden, inSize)
		out, err := NewScratch().GRUSeqBatch(w, seq.Data(), n, steps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s := NewScratch()
			h := tensor.New(hidden)
			for step := 0; step < steps; step++ {
				x := tensor.New(inSize)
				copy(x.Data(), seq.Data()[(step*n+i)*inSize:(step*n+i+1)*inSize])
				if err := s.GRUStep(w, h, x); err != nil {
					t.Fatal(err)
				}
			}
			requireSameBits(t, "gru", out, i, h)
		}
	})
}

func makeLSTMWeights(r *tensor.RNG, hidden, in int) *LSTMWeights {
	mk := func(n int) *tensor.Tensor { return randBatch(r, n) }
	return &LSTMWeights{
		Hidden: hidden, Input: in,
		Wi: mk(hidden * in), Wf: mk(hidden * in), Wo: mk(hidden * in), Wc: mk(hidden * in),
		Ui: mk(hidden * hidden), Uf: mk(hidden * hidden), Uo: mk(hidden * hidden), Uc: mk(hidden * hidden),
		Bi: mk(hidden), Bf: mk(hidden), Bo: mk(hidden), Bc: mk(hidden),
	}
}

func makeGRUWeights(r *tensor.RNG, hidden, in int) *GRUWeights {
	mk := func(n int) *tensor.Tensor { return randBatch(r, n) }
	return &GRUWeights{
		Hidden: hidden, Input: in,
		Wr: mk(hidden * in), Wz: mk(hidden * in), Wh: mk(hidden * in),
		Ur: mk(hidden * hidden), Uz: mk(hidden * hidden), Uh: mk(hidden * hidden),
		Br: mk(hidden), Bz: mk(hidden), Bh: mk(hidden),
	}
}

func TestBatchOpErrors(t *testing.T) {
	s := NewScratch()
	p := ConvParams{InChannels: 3, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}
	w := tensor.New(p.WeightCount())
	if _, err := s.Conv2DBatch(nil, w, nil, p); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("nil batch input: got %v, want ErrShape", err)
	}
	if _, err := s.Conv2DBatch(tensor.New(3, 8, 8), w, nil, p); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("rank-3 batch input: got %v, want ErrShape", err)
	}
	if _, err := s.Conv2DBatch(tensor.New(2, 5, 8, 8), w, nil, p); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("channel mismatch: got %v, want ErrShape", err)
	}
	if _, err := s.FullyConnectedBatch(tensor.New(4), w, nil, 4); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("rank-1 fc batch input: got %v, want ErrShape", err)
	}
	lw := &LSTMWeights{Hidden: 4, Input: 2}
	if _, err := s.LSTMSeqBatch(lw, make([]float32, 7), 2, 2); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("bad lstm seq buffer: got %v, want ErrShape", err)
	}
	if _, err := s.GRUSeqBatch(&GRUWeights{Hidden: 4, Input: 2}, nil, 0, 2); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("zero gru batch: got %v, want ErrShape", err)
	}
}
