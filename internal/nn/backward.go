package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// This file provides the back-propagation counterparts of the suite's forward
// kernels.  The paper ships inference-only kernels and lists training-phase
// back-propagation as planned future work (Section II-C); these functions
// implement that extension for the layer types the small networks need:
// fully-connected, convolution, ReLU, pooling and a softmax cross-entropy
// head, plus a plain SGD update.

// FCGradients holds the gradients of a fully-connected layer.
type FCGradients struct {
	// Input is dL/dInput with the flattened input's length.
	Input *tensor.Tensor
	// Weights is dL/dW with outFeatures x inFeatures elements.
	Weights *tensor.Tensor
	// Bias is dL/dB with outFeatures elements.
	Bias *tensor.Tensor
}

// FullyConnectedBackward computes the gradients of FullyConnected given the
// layer input, its weights and the gradient of the loss with respect to the
// layer output.
func FullyConnectedBackward(input, weights, gradOut *tensor.Tensor, outFeatures int) (*FCGradients, error) {
	inFeatures := input.Len()
	if outFeatures <= 0 || gradOut.Len() != outFeatures {
		return nil, fmt.Errorf("nn: fc backward expects %d output gradients, got %d", outFeatures, gradOut.Len())
	}
	if weights.Len() != outFeatures*inFeatures {
		return nil, fmt.Errorf("nn: fc backward expects %d weights, got %d", outFeatures*inFeatures, weights.Len())
	}
	g := &FCGradients{
		Input:   tensor.New(inFeatures),
		Weights: tensor.New(outFeatures * inFeatures),
		Bias:    tensor.New(outFeatures),
	}
	x := input.Data()
	w := weights.Data()
	go_ := gradOut.Data()
	for of := 0; of < outFeatures; of++ {
		gOut := go_[of]
		g.Bias.Data()[of] = gOut
		row := w[of*inFeatures : (of+1)*inFeatures]
		gRow := g.Weights.Data()[of*inFeatures : (of+1)*inFeatures]
		for i := 0; i < inFeatures; i++ {
			gRow[i] = gOut * x[i]
			g.Input.Data()[i] += gOut * row[i]
		}
	}
	return g, nil
}

// ConvGradients holds the gradients of a convolution layer.
type ConvGradients struct {
	// Input is dL/dInput in CHW layout.
	Input *tensor.Tensor
	// Weights is dL/dW with the same layout as the forward weights.
	Weights *tensor.Tensor
	// Bias is dL/dB with one element per output channel.
	Bias *tensor.Tensor
}

// Conv2DBackward computes the gradients of Conv2D given the layer input, its
// weights, the convolution parameters and the gradient of the loss with
// respect to the layer output (CHW, matching the forward output shape).
func Conv2DBackward(input, weights, gradOut *tensor.Tensor, p ConvParams) (*ConvGradients, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input.Rank() != 3 || gradOut.Rank() != 3 {
		return nil, fmt.Errorf("nn: conv backward needs CHW tensors")
	}
	inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2)
	if inC != p.InChannels {
		return nil, fmt.Errorf("nn: conv backward expects %d input channels, got %d", p.InChannels, inC)
	}
	outH, outW := p.OutputDims(inH, inW)
	if gradOut.Dim(0) != p.OutChannels || gradOut.Dim(1) != outH || gradOut.Dim(2) != outW {
		return nil, fmt.Errorf("nn: conv backward expects output gradient %dx%dx%d, got %v",
			p.OutChannels, outH, outW, gradOut.Shape())
	}
	if weights.Len() != p.WeightCount() {
		return nil, fmt.Errorf("nn: conv backward expects %d weights, got %d", p.WeightCount(), weights.Len())
	}
	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups

	g := &ConvGradients{
		Input:   tensor.New(inC, inH, inW),
		Weights: tensor.New(weights.Len()),
		Bias:    tensor.New(p.OutChannels),
	}
	in := input.Data()
	w := weights.Data()
	gOut := gradOut.Data()

	for oc := 0; oc < p.OutChannels; oc++ {
		group := oc / outCPerGroup
		icBase := group * inCPerGroup
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				gv := gOut[(oc*outH+oy)*outW+ox]
				if gv == 0 {
					continue
				}
				g.Bias.Data()[oc] += gv
				for ic := 0; ic < inCPerGroup; ic++ {
					for ky := 0; ky < p.KernelH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < p.KernelW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= inW {
								continue
							}
							inIdx := ((icBase+ic)*inH+iy)*inW + ix
							wIdx := ((oc*inCPerGroup+ic)*p.KernelH+ky)*p.KernelW + kx
							g.Weights.Data()[wIdx] += gv * in[inIdx]
							g.Input.Data()[inIdx] += gv * w[wIdx]
						}
					}
				}
			}
		}
	}
	return g, nil
}

// ReLUBackward propagates the output gradient through a ReLU: gradients flow
// only where the forward input was positive.
func ReLUBackward(input, gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if !tensor.SameShape(input, gradOut) {
		return nil, fmt.Errorf("%w: relu backward %v vs %v", tensor.ErrShape, input.Shape(), gradOut.Shape())
	}
	out := tensor.New(input.Shape()...)
	in := input.Data()
	g := gradOut.Data()
	for i := range in {
		if in[i] > 0 {
			out.Data()[i] = g[i]
		}
	}
	return out, nil
}

// Pool2DBackward propagates the output gradient through a pooling layer.  For
// max pooling the gradient routes to the window's arg-max element; for
// average pooling it is distributed uniformly over the window.
func Pool2DBackward(input, gradOut *tensor.Tensor, p PoolParams) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input.Rank() != 3 || gradOut.Rank() != 3 {
		return nil, fmt.Errorf("nn: pool backward needs CHW tensors")
	}
	c, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2)
	outH, outW := p.OutputDims(inH, inW)
	if gradOut.Dim(0) != c || gradOut.Dim(1) != outH || gradOut.Dim(2) != outW {
		return nil, fmt.Errorf("nn: pool backward expects gradient %dx%dx%d, got %v", c, outH, outW, gradOut.Shape())
	}
	grad := tensor.New(c, inH, inW)
	in := input.Data()
	g := gradOut.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				gv := g[(ch*outH+oy)*outW+ox]
				// Collect the valid window positions.
				window := make([]int, 0, p.KernelH*p.KernelW)
				bestIdx := -1
				bestVal := float32(math.Inf(-1))
				for ky := 0; ky < p.KernelH; ky++ {
					iy := oy*p.StrideH - p.PadH + ky
					if iy < 0 || iy >= inH {
						continue
					}
					for kx := 0; kx < p.KernelW; kx++ {
						ix := ox*p.StrideW - p.PadW + kx
						if ix < 0 || ix >= inW {
							continue
						}
						idx := (ch*inH+iy)*inW + ix
						window = append(window, idx)
						if in[idx] > bestVal {
							bestVal = in[idx]
							bestIdx = idx
						}
					}
				}
				if len(window) == 0 {
					continue
				}
				if p.Kind == MaxPool {
					grad.Data()[bestIdx] += gv
				} else {
					share := gv / float32(len(window))
					for _, idx := range window {
						grad.Data()[idx] += share
					}
				}
			}
		}
	}
	return grad, nil
}

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against a
// target class and the gradient of the loss with respect to the logits
// (softmax(logits) - onehot(target)).
func SoftmaxCrossEntropy(logits *tensor.Tensor, target int) (float64, *tensor.Tensor, error) {
	n := logits.Len()
	if target < 0 || target >= n {
		return 0, nil, fmt.Errorf("nn: target class %d out of range [0,%d)", target, n)
	}
	probs, err := Softmax(logits)
	if err != nil {
		return 0, nil, err
	}
	p := float64(probs.Data()[target])
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(p)
	grad := probs.Clone()
	grad.Data()[target] -= 1
	return loss, grad, nil
}

// SGDStep applies an in-place stochastic-gradient-descent update:
// param -= lr * grad.
func SGDStep(param, grad *tensor.Tensor, lr float32) error {
	if !tensor.SameShape(param, grad) {
		return fmt.Errorf("%w: sgd %v vs %v", tensor.ErrShape, param.Shape(), grad.Shape())
	}
	p := param.Data()
	g := grad.Data()
	for i := range p {
		p[i] -= lr * g[i]
	}
	return nil
}
