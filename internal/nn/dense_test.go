package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tango/internal/tensor"
)

func TestFullyConnectedKnown(t *testing.T) {
	x := mustTensor(t, []float32{1, 2, 3}, 3)
	// W = [[1,0,0],[0,1,0],[1,1,1],[2,0,1]]  b = [0, 10, 0, 1]
	w := mustTensor(t, []float32{
		1, 0, 0,
		0, 1, 0,
		1, 1, 1,
		2, 0, 1,
	}, 12)
	b := mustTensor(t, []float32{0, 10, 0, 1}, 4)
	out, err := FullyConnected(x, w, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 12, 6, 6}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestFullyConnectedFlattensInput(t *testing.T) {
	x := tensor.New(2, 2, 2)
	x.Fill(1)
	w := tensor.New(8)
	w.Fill(1)
	out, err := FullyConnected(x, w, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 8 {
		t.Errorf("fc over CHW input = %v, want 8", out.Data()[0])
	}
}

func TestFullyConnectedErrors(t *testing.T) {
	x := tensor.New(3)
	w := tensor.New(7)
	if _, err := FullyConnected(x, w, nil, 2); err == nil {
		t.Error("weight size mismatch should fail")
	}
	w2 := tensor.New(6)
	bad := tensor.New(3)
	if _, err := FullyConnected(x, w2, bad, 2); err == nil {
		t.Error("bias size mismatch should fail")
	}
	if _, err := FullyConnected(x, w2, nil, 0); err == nil {
		t.Error("non-positive output features should fail")
	}
}

func TestMatVecKnown(t *testing.T) {
	w := mustTensor(t, []float32{1, 2, 3, 4, 5, 6}, 6)
	x := mustTensor(t, []float32{1, 1, 1}, 3)
	out, err := MatVec(w, x, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 6 || out.Data()[1] != 15 {
		t.Errorf("matvec = %v, want [6 15]", out.Data())
	}
}

func TestMatVecErrors(t *testing.T) {
	w := tensor.New(6)
	x := tensor.New(4)
	if _, err := MatVec(w, x, 2, 3); err == nil {
		t.Error("vector length mismatch should fail")
	}
	if _, err := MatVec(w, tensor.New(3), 3, 3); err == nil {
		t.Error("matrix size mismatch should fail")
	}
	if _, err := MatVec(w, tensor.New(3), 0, 3); err == nil {
		t.Error("non-positive dims should fail")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	in := mustTensor(t, []float32{1, 2, 3, 4}, 4)
	out, err := Softmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Sum()-1) > 1e-5 {
		t.Errorf("softmax must sum to 1, got %v", out.Sum())
	}
	// Monotone: larger input -> larger probability.
	for i := 1; i < out.Len(); i++ {
		if out.Data()[i] <= out.Data()[i-1] {
			t.Errorf("softmax not monotone at %d: %v", i, out.Data())
		}
	}
	if out.MaxIndex() != 3 {
		t.Errorf("softmax argmax = %d, want 3", out.MaxIndex())
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	in := mustTensor(t, []float32{1000, 1001, 1002}, 3)
	out, err := Softmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out.Sum()) || math.IsInf(out.Sum(), 0) {
		t.Fatalf("softmax of large inputs produced %v", out.Data())
	}
	if math.Abs(out.Sum()-1) > 1e-5 {
		t.Errorf("softmax must sum to 1, got %v", out.Sum())
	}
}

// Property: softmax output always sums to 1 and is non-negative.
func TestQuickSoftmaxDistribution(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		in := tensor.New(size)
		in.FillNormal(tensor.NewRNG(seed), 5)
		out, err := Softmax(in)
		if err != nil {
			return false
		}
		if out.Min() < 0 {
			return false
		}
		return math.Abs(out.Sum()-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FullyConnected with an identity weight matrix reproduces its
// input.
func TestQuickFCIdentity(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%16) + 1
		x := tensor.New(size)
		x.FillNormal(tensor.NewRNG(seed), 1)
		w := tensor.New(size * size)
		for i := 0; i < size; i++ {
			w.Data()[i*size+i] = 1
		}
		out, err := FullyConnected(x, w, nil, size)
		if err != nil {
			return false
		}
		return tensor.ApproxEqual(x, out, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
