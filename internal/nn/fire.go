package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// ConcatChannels concatenates CHW tensors along the channel dimension.  All
// inputs must share spatial dimensions.  SqueezeNet's fire modules use it to
// join the 1x1 and 3x3 expand outputs.
func ConcatChannels(parts ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("nn: concat requires at least one tensor")
	}
	h, w := 0, 0
	totalC := 0
	for i, p := range parts {
		if p.Rank() != 3 {
			return nil, fmt.Errorf("nn: concat input %d must be CHW, got shape %v", i, p.Shape())
		}
		if i == 0 {
			h, w = p.Dim(1), p.Dim(2)
		} else if p.Dim(1) != h || p.Dim(2) != w {
			return nil, fmt.Errorf("%w: concat spatial dims %dx%d vs %dx%d",
				tensor.ErrShape, p.Dim(1), p.Dim(2), h, w)
		}
		totalC += p.Dim(0)
	}
	out := tensor.New(totalC, h, w)
	off := 0
	for _, p := range parts {
		n := p.Len()
		copy(out.Data()[off:off+n], p.Data())
		off += n
	}
	return out, nil
}

// FireWeights holds the three convolutions of a SqueezeNet fire module.
type FireWeights struct {
	// SqueezeW/SqueezeB implement the 1x1 squeeze convolution.
	SqueezeW, SqueezeB *tensor.Tensor
	// Expand1W/Expand1B implement the 1x1 expand convolution.
	Expand1W, Expand1B *tensor.Tensor
	// Expand3W/Expand3B implement the 3x3 expand convolution (pad 1).
	Expand3W, Expand3B *tensor.Tensor
}

// FireParams describes the channel counts of a fire module.
type FireParams struct {
	InChannels   int
	SqueezeOut   int
	Expand1x1Out int
	Expand3x3Out int
}

// OutChannels returns the total output depth of the module.
func (p FireParams) OutChannels() int { return p.Expand1x1Out + p.Expand3x3Out }

// Fire runs a SqueezeNet fire module: squeeze 1x1 conv + ReLU, then parallel
// expand 1x1 and expand 3x3 convolutions + ReLU, concatenated along channels.
func Fire(input *tensor.Tensor, p FireParams, w FireWeights) (*tensor.Tensor, error) {
	sq, err := Conv2D(input, w.SqueezeW, w.SqueezeB, ConvParams{
		InChannels: p.InChannels, OutChannels: p.SqueezeOut,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire squeeze: %w", err)
	}
	ReLUInPlace(sq)

	e1, err := Conv2D(sq, w.Expand1W, w.Expand1B, ConvParams{
		InChannels: p.SqueezeOut, OutChannels: p.Expand1x1Out,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire expand1x1: %w", err)
	}
	ReLUInPlace(e1)

	e3, err := Conv2D(sq, w.Expand3W, w.Expand3B, ConvParams{
		InChannels: p.SqueezeOut, OutChannels: p.Expand3x3Out,
		KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire expand3x3: %w", err)
	}
	ReLUInPlace(e3)

	return ConcatChannels(e1, e3)
}
