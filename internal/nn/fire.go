package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// checkConcatArgs validates channel concatenation inputs and returns the
// output geometry.
func checkConcatArgs(parts []*tensor.Tensor) (totalC, h, w int, err error) {
	if len(parts) == 0 {
		return 0, 0, 0, fmt.Errorf("nn: concat requires at least one tensor")
	}
	for i, p := range parts {
		if p == nil || p.Rank() != 3 {
			return 0, 0, 0, fmt.Errorf("nn: concat input %d must be CHW, got shape %v", i, shapeOf(p))
		}
		if i == 0 {
			h, w = p.Dim(1), p.Dim(2)
		} else if p.Dim(1) != h || p.Dim(2) != w {
			return 0, 0, 0, fmt.Errorf("%w: concat spatial dims %dx%d vs %dx%d",
				tensor.ErrShape, p.Dim(1), p.Dim(2), h, w)
		}
		totalC += p.Dim(0)
	}
	return totalC, h, w, nil
}

// ConcatChannels concatenates CHW tensors along the channel dimension.  All
// inputs must share spatial dimensions.  SqueezeNet's fire modules use it to
// join the 1x1 and 3x3 expand outputs.
func ConcatChannels(parts ...*tensor.Tensor) (*tensor.Tensor, error) {
	return (*Scratch)(nil).ConcatChannels(parts...)
}

// concatChannelsInto copies the parts into dst, fully overwriting it.
func concatChannelsInto(dst *tensor.Tensor, parts []*tensor.Tensor) {
	off := 0
	for _, p := range parts {
		n := p.Len()
		copy(dst.Data()[off:off+n], p.Data())
		off += n
	}
}

// FireWeights holds the three convolutions of a SqueezeNet fire module.
type FireWeights struct {
	// SqueezeW/SqueezeB implement the 1x1 squeeze convolution.
	SqueezeW, SqueezeB *tensor.Tensor
	// Expand1W/Expand1B implement the 1x1 expand convolution.
	Expand1W, Expand1B *tensor.Tensor
	// Expand3W/Expand3B implement the 3x3 expand convolution (pad 1).
	Expand3W, Expand3B *tensor.Tensor
}

// FireParams describes the channel counts of a fire module.
type FireParams struct {
	InChannels   int
	SqueezeOut   int
	Expand1x1Out int
	Expand3x3Out int
}

// OutChannels returns the total output depth of the module.
func (p FireParams) OutChannels() int { return p.Expand1x1Out + p.Expand3x3Out }

// Fire runs a SqueezeNet fire module: squeeze 1x1 conv + ReLU, then parallel
// expand 1x1 and expand 3x3 convolutions + ReLU, concatenated along channels.
// It is the allocation-per-call form of Scratch.Fire.
func Fire(input *tensor.Tensor, p FireParams, w FireWeights) (*tensor.Tensor, error) {
	return (*Scratch)(nil).Fire(input, p, w)
}
