package nn

import (
	"testing"

	"tango/internal/tensor"
)

func TestConcatChannels(t *testing.T) {
	a := mustTensor(t, []float32{1, 2, 3, 4}, 1, 2, 2)
	b := mustTensor(t, []float32{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2)
	out, err := ConcatChannels(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 2 || out.Dim(2) != 2 {
		t.Fatalf("concat shape %v, want [3 2 2]", out.Shape())
	}
	if out.At(0, 0, 0) != 1 || out.At(1, 0, 0) != 5 || out.At(2, 1, 1) != 12 {
		t.Errorf("concat values wrong: %v", out.Data())
	}
}

func TestConcatChannelsErrors(t *testing.T) {
	if _, err := ConcatChannels(); err == nil {
		t.Error("empty concat should fail")
	}
	a := tensor.New(1, 2, 2)
	b := tensor.New(1, 3, 3)
	if _, err := ConcatChannels(a, b); err == nil {
		t.Error("mismatched spatial dims should fail")
	}
	if _, err := ConcatChannels(a, tensor.New(4)); err == nil {
		t.Error("non-CHW input should fail")
	}
}

// fireWeightsFor builds deterministic fire-module weights for tests.
func fireWeightsFor(p FireParams, seed uint64) FireWeights {
	r := tensor.NewRNG(seed)
	mk := func(n int) *tensor.Tensor {
		t := tensor.New(n)
		t.FillNormal(r, 0.2)
		return t
	}
	return FireWeights{
		SqueezeW: mk(p.SqueezeOut * p.InChannels),
		SqueezeB: mk(p.SqueezeOut),
		Expand1W: mk(p.Expand1x1Out * p.SqueezeOut),
		Expand1B: mk(p.Expand1x1Out),
		Expand3W: mk(p.Expand3x3Out * p.SqueezeOut * 9),
		Expand3B: mk(p.Expand3x3Out),
	}
}

func TestFireModuleShape(t *testing.T) {
	// SqueezeNet fire2: 96 -> squeeze 16 -> expand 64+64 = 128 channels.
	p := FireParams{InChannels: 8, SqueezeOut: 4, Expand1x1Out: 6, Expand3x3Out: 6}
	in := tensor.New(8, 5, 5)
	in.FillUniform(tensor.NewRNG(1), 0, 1)
	out, err := Fire(in, p, fireWeightsFor(p, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != p.OutChannels() || out.Dim(1) != 5 || out.Dim(2) != 5 {
		t.Errorf("fire output shape %v, want [%d 5 5]", out.Shape(), p.OutChannels())
	}
	// All outputs pass through ReLU, so they must be non-negative.
	if out.Min() < 0 {
		t.Errorf("fire output should be non-negative after ReLU, min %v", out.Min())
	}
}

func TestFireOutChannels(t *testing.T) {
	p := FireParams{InChannels: 96, SqueezeOut: 16, Expand1x1Out: 64, Expand3x3Out: 64}
	if p.OutChannels() != 128 {
		t.Errorf("OutChannels = %d, want 128", p.OutChannels())
	}
}

func TestFireWeightErrors(t *testing.T) {
	p := FireParams{InChannels: 8, SqueezeOut: 4, Expand1x1Out: 6, Expand3x3Out: 6}
	in := tensor.New(8, 5, 5)
	w := fireWeightsFor(p, 2)
	w.SqueezeW = tensor.New(3)
	if _, err := Fire(in, p, w); err == nil {
		t.Error("wrong squeeze weight size should fail")
	}
	w = fireWeightsFor(p, 2)
	w.Expand3W = tensor.New(3)
	if _, err := Fire(in, p, w); err == nil {
		t.Error("wrong expand3 weight size should fail")
	}
}
