package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// This file implements the native inference compute engine: Scratch-based
// variants of every forward kernel that reuse buffers across runs and lower
// the heavy layers (convolution, fully-connected, recurrent gates) onto the
// blocked GEMM/mat-vec kernels in package tensor.
//
// Every engine kernel is bit-identical to its reference counterpart
// (Conv2DDirect, the scalar MatVec, LSTMCell, GRUCell): the blocked kernels
// preserve the reference summation order — one float32 accumulator per
// output element, reduction index ascending — for any blocking and any
// worker count.  See the determinism contract on tensor.Gemm.

// Scratch is the per-goroutine state of the compute engine: a
// shape-memoizing output arena, the im2col staging buffer, recurrent gate
// buffers and the worker count for row-panel parallelism.  After the first
// run on a given network, repeated runs perform near-zero heap allocations.
//
// All tensors returned by Scratch methods alias the arena: their contents
// are valid until the next BeginRun on the same Scratch.  A Scratch is not
// safe for concurrent use; give each goroutine its own.  All methods accept
// a nil *Scratch, which falls back to freshly allocated outputs (still using
// the blocked kernels).
type Scratch struct {
	workers  int
	direct   bool
	numerics Numerics
	arena    tensor.Arena
	col      []float32
	vecs     [][]float32
	bbufs    [][]float32
	u8bufs   [][]uint8
	accbs    [][]int32
	fpanels  [][]float32
	f64buf   []float64
	qscales  []float32
	outs     []*tensor.Tensor
	preds    []int
}

// NewScratch returns an empty single-worker Scratch.
func NewScratch() *Scratch { return &Scratch{workers: 1} }

// SetWorkers sets the number of goroutines used for GEMM row panels; values
// below 1 select serial execution.  Results are bit-identical for any
// worker count.
func (s *Scratch) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the effective worker count (1 for a nil Scratch).
func (s *Scratch) Workers() int {
	if s == nil || s.workers < 1 {
		return 1
	}
	return s.workers
}

// SetDirect switches the Scratch to the direct reference kernels (the naive
// convolution loop nest and scalar dot products).  It exists to validate the
// engine: results must be bit-identical either way.
func (s *Scratch) SetDirect(direct bool) { s.direct = direct }

// Direct reports whether the Scratch uses the reference kernels.
func (s *Scratch) Direct() bool { return s != nil && s.direct }

// BeginRun rewinds the arena so this run reuses the previous run's buffers.
// Call it once at the start of every network execution.
func (s *Scratch) BeginRun() {
	if s != nil {
		s.arena.Reset()
	}
}

// ArenaBytes reports the backing storage held by the output arena.
func (s *Scratch) ArenaBytes() int64 {
	if s == nil {
		return 0
	}
	return s.arena.Bytes()
}

// Bytes reports the Scratch's total resident footprint: the output arena
// plus every reusable staging buffer (im2col, recurrent gate vectors, batch
// buffers, int8 activation and accumulator buffers).  It is the
// memory-accounting surface behind per-model resident-bytes reporting.
func (s *Scratch) Bytes() int64 {
	if s == nil {
		return 0
	}
	n := s.arena.Bytes() + int64(cap(s.col))*4
	for _, v := range s.vecs {
		n += int64(cap(v)) * 4
	}
	for _, v := range s.bbufs {
		n += int64(cap(v)) * 4
	}
	for _, v := range s.u8bufs {
		n += int64(cap(v))
	}
	for _, v := range s.accbs {
		n += int64(cap(v)) * 4
	}
	for _, v := range s.fpanels {
		n += int64(cap(v)) * 4
	}
	n += int64(cap(s.f64buf)) * 8
	n += int64(cap(s.qscales)) * 4
	return n
}

// out1 returns a rank-1 output tensor (arena-backed when s is non-nil).
func (s *Scratch) out1(n int) *tensor.Tensor {
	if s == nil {
		return tensor.New(n)
	}
	return s.arena.Get1(n)
}

// out3 returns a CHW output tensor (arena-backed when s is non-nil).
func (s *Scratch) out3(c, h, w int) *tensor.Tensor {
	if s == nil {
		return tensor.New(c, h, w)
	}
	return s.arena.Get3(c, h, w)
}

// outLike returns an output tensor with t's shape.
func (s *Scratch) outLike(t *tensor.Tensor) *tensor.Tensor {
	switch t.Rank() {
	case 1:
		return s.out1(t.Dim(0))
	case 2:
		return s.out2(t.Dim(0), t.Dim(1))
	case 3:
		return s.out3(t.Dim(0), t.Dim(1), t.Dim(2))
	case 4:
		return s.out4(t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3))
	default:
		if s == nil {
			return tensor.New(t.Shape()...)
		}
		return s.arena.Get(t.Shape()...)
	}
}

// buffer returns a float32 staging buffer of length n, reused across calls.
func (s *Scratch) buffer(n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	if cap(s.col) < n {
		s.col = make([]float32, n)
	}
	return s.col[:n]
}

// vec returns the recurrent gate buffer for the given slot, sized to n.
func (s *Scratch) vec(slot, n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	for len(s.vecs) <= slot {
		s.vecs = append(s.vecs, nil)
	}
	if cap(s.vecs[slot]) < n {
		s.vecs[slot] = make([]float32, n)
	}
	return s.vecs[slot][:n]
}

// Arena1 returns an arena-backed rank-1 tensor of length n (freshly
// allocated for a nil Scratch).  Its contents are undefined: callers must
// overwrite every element.
func (s *Scratch) Arena1(n int) *tensor.Tensor { return s.out1(n) }

// LayerOutputs returns a reusable slice for per-layer output tensors.  The
// caller must overwrite every element.
func (s *Scratch) LayerOutputs(n int) []*tensor.Tensor {
	if s == nil {
		return make([]*tensor.Tensor, n)
	}
	if cap(s.outs) < n {
		s.outs = make([]*tensor.Tensor, n)
	}
	s.outs = s.outs[:n]
	return s.outs
}

// Ints returns a reusable int slice of length n (per-sample predictions of a
// batched run).  The caller must overwrite every element; contents are valid
// until the next call on the same Scratch.
func (s *Scratch) Ints(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	if cap(s.preds) < n {
		s.preds = make([]int, n)
	}
	s.preds = s.preds[:n]
	return s.preds
}

// Conv2D is the engine convolution: im2col into the scratch staging buffer,
// then one blocked GEMM per channel group, with output rows fanned across
// the worker pool.  Results are bit-identical to Conv2DDirect.
func (s *Scratch) Conv2D(input, weights, bias *tensor.Tensor, p ConvParams) (*tensor.Tensor, error) {
	inH, inW, outH, outW, err := checkConvArgs(input, weights, bias, p)
	if err != nil {
		return nil, err
	}
	out := s.out3(p.OutChannels, outH, outW)
	if s.Direct() {
		conv2DDirectInto(out, input, weights, bias, p)
		return out, nil
	}

	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	n := outH * outW
	k := inCPerGroup * p.KernelH * p.KernelW
	col := s.buffer(n * k)
	in := input.Data()
	w := weights.Data()
	o := out.Data()
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	oneByOne := p.KernelH == 1 && p.KernelW == 1 &&
		p.StrideH == 1 && p.StrideW == 1 && p.PadH == 0 && p.PadW == 0
	workers := s.Workers()

	for g := 0; g < groups; g++ {
		icBase := g * inCPerGroup
		if oneByOne {
			im2col1x1(col, in, n, icBase, inCPerGroup)
		} else {
			im2col(col, in, inH, inW, icBase, inCPerGroup, p, outH, outW)
		}
		oc0 := g * outCPerGroup
		var gb []float32
		if biasData != nil {
			gb = biasData[oc0 : oc0+outCPerGroup]
		}
		tensor.GemmParallel(
			o[oc0*n:(oc0+outCPerGroup)*n],
			w[oc0*k:(oc0+outCPerGroup)*k],
			col, gb, outCPerGroup, n, k, workers)
	}
	return out, nil
}

// FullyConnected is the engine fully-connected layer, running on the
// register-tiled mat-vec kernel with row-panel parallelism.
func (s *Scratch) FullyConnected(input, weights, bias *tensor.Tensor, outFeatures int) (*tensor.Tensor, error) {
	inFeatures, err := checkFullyConnectedArgs(input, weights, bias, outFeatures)
	if err != nil {
		return nil, err
	}
	out := s.out1(outFeatures)
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	if s.Direct() {
		scalarMatVec(out.Data(), weights.Data(), input.Data(), biasData, outFeatures, inFeatures)
		return out, nil
	}
	tensor.MatVecBiasParallel(out.Data(), weights.Data(), input.Data(), biasData,
		outFeatures, inFeatures, s.Workers())
	return out, nil
}

// Pool2D is the engine pooling layer.
func (s *Scratch) Pool2D(input *tensor.Tensor, p PoolParams) (*tensor.Tensor, error) {
	c, _, _, outH, outW, err := checkPoolArgs(input, p)
	if err != nil {
		return nil, err
	}
	out := s.out3(c, outH, outW)
	pool2DInto(out, input, p)
	return out, nil
}

// GlobalAvgPool is the engine global average pooling layer.
func (s *Scratch) GlobalAvgPool(input *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkGlobalPoolArgs(input); err != nil {
		return nil, err
	}
	out := s.out1(input.Dim(0))
	globalAvgPoolInto(out, input)
	return out, nil
}

// LRN is the engine local response normalization layer.
func (s *Scratch) LRN(input *tensor.Tensor, p LRNParams) (*tensor.Tensor, error) {
	if err := checkLRNArgs(input, p); err != nil {
		return nil, err
	}
	out := s.out3(input.Dim(0), input.Dim(1), input.Dim(2))
	if s.lrnFastEligible(p) {
		lrnCoreFast(out.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2), p,
			s.lrnSums(input.Dim(1)*input.Dim(2)))
		return out, nil
	}
	lrnInto(out, input, p)
	return out, nil
}

// BatchNorm is the engine batch normalization layer.
func (s *Scratch) BatchNorm(input *tensor.Tensor, p BatchNormParams) (*tensor.Tensor, error) {
	if err := checkBatchNormArgs(input, p); err != nil {
		return nil, err
	}
	out := s.out3(input.Dim(0), input.Dim(1), input.Dim(2))
	batchNormInto(out, input, p)
	return out, nil
}

// Scale is the engine per-channel affine layer.
func (s *Scratch) Scale(input, gamma, beta *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkScaleArgs(input, gamma, beta); err != nil {
		return nil, err
	}
	out := s.out3(input.Dim(0), input.Dim(1), input.Dim(2))
	scaleInto(out, input, gamma, beta)
	return out, nil
}

// ReLU is the engine out-of-place ReLU.
func (s *Scratch) ReLU(input *tensor.Tensor) (*tensor.Tensor, error) {
	if input == nil {
		return nil, fmt.Errorf("nn: relu: %w: nil input", tensor.ErrShape)
	}
	out := s.outLike(input)
	reluInto(out.Data(), input.Data())
	return out, nil
}

// EltwiseAdd is the engine element-wise addition.
func (s *Scratch) EltwiseAdd(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkEltwiseArgs("add", a, b); err != nil {
		return nil, err
	}
	out := s.outLike(a)
	eltwiseAddInto(out.Data(), a.Data(), b.Data())
	return out, nil
}

// ConcatChannels is the engine channel concatenation.
func (s *Scratch) ConcatChannels(parts ...*tensor.Tensor) (*tensor.Tensor, error) {
	totalC, h, w, err := checkConcatArgs(parts)
	if err != nil {
		return nil, err
	}
	out := s.out3(totalC, h, w)
	concatChannelsInto(out, parts)
	return out, nil
}

// Softmax is the engine softmax.
func (s *Scratch) Softmax(input *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkSoftmaxArgs(input); err != nil {
		return nil, err
	}
	out := s.outLike(input)
	softmaxInto(out.Data(), input.Data())
	return out, nil
}

// Fire is the engine SqueezeNet fire module.
func (s *Scratch) Fire(input *tensor.Tensor, p FireParams, w FireWeights) (*tensor.Tensor, error) {
	sq, err := s.Conv2D(input, w.SqueezeW, w.SqueezeB, ConvParams{
		InChannels: p.InChannels, OutChannels: p.SqueezeOut,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire squeeze: %w", err)
	}
	ReLUInPlace(sq)
	e1, err := s.Conv2D(sq, w.Expand1W, w.Expand1B, ConvParams{
		InChannels: p.SqueezeOut, OutChannels: p.Expand1x1Out,
		KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire expand1x1: %w", err)
	}
	ReLUInPlace(e1)
	e3, err := s.Conv2D(sq, w.Expand3W, w.Expand3B, ConvParams{
		InChannels: p.SqueezeOut, OutChannels: p.Expand3x3Out,
		KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("fire expand3x3: %w", err)
	}
	ReLUInPlace(e3)
	return s.ConcatChannels(e1, e3)
}

// sigmoidInPlace applies the logistic function to every element of v using
// the exact expression of the reference Sigmoid kernel.
func sigmoidInPlace(v []float32) {
	for i, x := range v {
		v[i] = float32(1.0 / (1.0 + math.Exp(-float64(x))))
	}
}

// tanhInPlace applies the hyperbolic tangent to every element of v using the
// exact expression of the reference Tanh kernel.
func tanhInPlace(v []float32) {
	for i, x := range v {
		v[i] = float32(math.Tanh(float64(x)))
	}
}

// gatePre computes pre = (Wx*x + Uh*h) + b with the blocked mat-vec kernel,
// preserving the reference addition order of the naive gate computation
// (MatVec + MatVec, EltwiseAdd, EltwiseAdd bias).  Under a fast numerics
// tier the products run on the multi-chain mat-vec kernel instead (recurrent
// gates have no int8 lowering, so both fast tiers take the float path).
func (s *Scratch) gatePre(pre, tmp []float32, wx, uh, b *tensor.Tensor, x, h []float32, hidden, in, workers int) {
	if s.Numerics() != NumericsReference {
		tensor.MatVecFastParallel(pre, wx.Data(), x, nil, hidden, in, workers)
		tensor.MatVecFastParallel(tmp, uh.Data(), h, nil, hidden, hidden, workers)
	} else {
		tensor.MatVecBiasParallel(pre, wx.Data(), x, nil, hidden, in, workers)
		tensor.MatVecBiasParallel(tmp, uh.Data(), h, nil, hidden, hidden, workers)
	}
	bd := b.Data()
	for i := range pre {
		pre[i] = (pre[i] + tmp[i]) + bd[i]
	}
}

// LSTMStep advances st in place by one time step with input x, using the
// scratch gate buffers.  The weights must have been validated by the caller
// (once per sequence); results are bit-identical to LSTMCell.
func (s *Scratch) LSTMStep(w *LSTMWeights, st LSTMState, x *tensor.Tensor) error {
	if w == nil {
		return fmt.Errorf("nn: lstm step: nil weights")
	}
	if x == nil || x.Len() != w.Input {
		return fmt.Errorf("nn: lstm input has %d elements, want %d", tensorLen(x), w.Input)
	}
	if st.H == nil || st.C == nil || st.H.Len() != w.Hidden || st.C.Len() != w.Hidden {
		return fmt.Errorf("nn: lstm state must have hidden size %d", w.Hidden)
	}
	if s == nil || s.direct {
		next, err := LSTMCell(w, st, x)
		if err != nil {
			return err
		}
		copy(st.H.Data(), next.H.Data())
		copy(st.C.Data(), next.C.Data())
		return nil
	}

	hidden := w.Hidden
	pi := s.vec(0, hidden)
	pf := s.vec(1, hidden)
	po := s.vec(2, hidden)
	pc := s.vec(3, hidden)
	tmp := s.vec(4, hidden)
	xd, hd := x.Data(), st.H.Data()
	workers := s.Workers()

	s.gatePre(pi, tmp, w.Wi, w.Ui, w.Bi, xd, hd, hidden, w.Input, workers)
	s.gatePre(pf, tmp, w.Wf, w.Uf, w.Bf, xd, hd, hidden, w.Input, workers)
	s.gatePre(po, tmp, w.Wo, w.Uo, w.Bo, xd, hd, hidden, w.Input, workers)
	s.gatePre(pc, tmp, w.Wc, w.Uc, w.Bc, xd, hd, hidden, w.Input, workers)
	sigmoidInPlace(pi)
	sigmoidInPlace(pf)
	sigmoidInPlace(po)
	tanhInPlace(pc)

	cd := st.C.Data()
	for i := 0; i < hidden; i++ {
		fc := pf[i] * cd[i]
		ig := pi[i] * pc[i]
		cd[i] = fc + ig
	}
	for i := 0; i < hidden; i++ {
		hd[i] = po[i] * float32(math.Tanh(float64(cd[i])))
	}
	return nil
}

// GRUStep advances the hidden state h in place by one time step with input
// x, using the scratch gate buffers.  The weights must have been validated
// by the caller; results are bit-identical to GRUCell.
func (s *Scratch) GRUStep(w *GRUWeights, h *tensor.Tensor, x *tensor.Tensor) error {
	if w == nil {
		return fmt.Errorf("nn: gru step: nil weights")
	}
	if x == nil || x.Len() != w.Input {
		return fmt.Errorf("nn: gru input has %d elements, want %d", tensorLen(x), w.Input)
	}
	if h == nil || h.Len() != w.Hidden {
		return fmt.Errorf("nn: gru state must have hidden size %d", w.Hidden)
	}
	if s == nil || s.direct {
		next, err := GRUCell(w, h, x)
		if err != nil {
			return err
		}
		copy(h.Data(), next.Data())
		return nil
	}

	hidden := w.Hidden
	r := s.vec(0, hidden)
	z := s.vec(1, hidden)
	n := s.vec(2, hidden)
	rh := s.vec(3, hidden)
	tmp := s.vec(4, hidden)
	xd, hd := x.Data(), h.Data()
	workers := s.Workers()

	s.gatePre(r, tmp, w.Wr, w.Ur, w.Br, xd, hd, hidden, w.Input, workers)
	s.gatePre(z, tmp, w.Wz, w.Uz, w.Bz, xd, hd, hidden, w.Input, workers)
	sigmoidInPlace(r)
	sigmoidInPlace(z)
	for i := 0; i < hidden; i++ {
		rh[i] = r[i] * hd[i]
	}
	s.gatePre(n, tmp, w.Wh, w.Uh, w.Bh, xd, rh, hidden, w.Input, workers)
	tanhInPlace(n)
	for i := 0; i < hidden; i++ {
		zi := z[i]
		hd[i] = (1-zi)*n[i] + zi*hd[i]
	}
	return nil
}

// tensorLen reports a possibly-nil tensor's length for error messages.
func tensorLen(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Len()
}
