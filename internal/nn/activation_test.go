package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tango/internal/tensor"
)

func TestReLU(t *testing.T) {
	in := mustTensor(t, []float32{-2, -0.5, 0, 0.5, 3}, 5)
	out := ReLU(in)
	want := []float32{0, 0, 0, 0.5, 3}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
	// Original untouched.
	if in.Data()[0] != -2 {
		t.Error("ReLU must not modify its input")
	}
}

func TestReLUInPlace(t *testing.T) {
	in := mustTensor(t, []float32{-1, 2, -3}, 3)
	ReLUInPlace(in)
	if in.Data()[0] != 0 || in.Data()[1] != 2 || in.Data()[2] != 0 {
		t.Errorf("ReLUInPlace result %v", in.Data())
	}
}

func TestSigmoidKnown(t *testing.T) {
	in := mustTensor(t, []float32{0, 100, -100}, 3)
	out := Sigmoid(in)
	if math.Abs(float64(out.Data()[0])-0.5) > 1e-6 {
		t.Errorf("sigmoid(0) = %v, want 0.5", out.Data()[0])
	}
	if out.Data()[1] < 0.999 || out.Data()[2] > 0.001 {
		t.Errorf("sigmoid saturation wrong: %v", out.Data())
	}
}

func TestTanhKnown(t *testing.T) {
	in := mustTensor(t, []float32{0, 1}, 2)
	out := Tanh(in)
	if out.Data()[0] != 0 {
		t.Errorf("tanh(0) = %v, want 0", out.Data()[0])
	}
	if math.Abs(float64(out.Data()[1])-math.Tanh(1)) > 1e-6 {
		t.Errorf("tanh(1) = %v", out.Data()[1])
	}
}

func TestEltwiseAddMul(t *testing.T) {
	a := mustTensor(t, []float32{1, 2, 3}, 3)
	b := mustTensor(t, []float32{10, 20, 30}, 3)
	sum, err := EltwiseAdd(a, b)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := EltwiseMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if sum.Data()[i] != a.Data()[i]+b.Data()[i] {
			t.Errorf("add[%d] wrong", i)
		}
		if prod.Data()[i] != a.Data()[i]*b.Data()[i] {
			t.Errorf("mul[%d] wrong", i)
		}
	}
	c := tensor.New(4)
	if _, err := EltwiseAdd(a, c); err == nil {
		t.Error("shape mismatch add should fail")
	}
	if _, err := EltwiseMul(a, c); err == nil {
		t.Error("shape mismatch mul should fail")
	}
}

// Property: ReLU output is always non-negative and idempotent.
func TestQuickReLUIdempotent(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		in := tensor.New(size)
		in.FillNormal(tensor.NewRNG(seed), 2)
		once := ReLU(in)
		twice := ReLU(once)
		if once.Min() < 0 {
			return false
		}
		return tensor.ApproxEqual(once, twice, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: sigmoid output lies in (0, 1) and is monotone.
func TestQuickSigmoidRange(t *testing.T) {
	f := func(seed uint64) bool {
		in := tensor.New(32)
		in.FillNormal(tensor.NewRNG(seed), 4)
		out := Sigmoid(in)
		for i, v := range out.Data() {
			if v < 0 || v > 1 {
				return false
			}
			// Monotonicity check against a shifted copy.
			shifted := float32(1.0 / (1.0 + math.Exp(-float64(in.Data()[i])-1)))
			if shifted < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: EltwiseAdd is commutative.
func TestQuickEltwiseAddCommutative(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		r := tensor.NewRNG(seed)
		a := tensor.New(size)
		b := tensor.New(size)
		a.FillNormal(r, 1)
		b.FillNormal(r, 1)
		ab, err1 := EltwiseAdd(a, b)
		ba, err2 := EltwiseAdd(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return tensor.ApproxEqual(ab, ba, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
