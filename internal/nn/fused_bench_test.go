package nn

import (
	"testing"

	"tango/internal/tensor"
)

// Staging benchmarks for the fused batched convolution work: the staged
// im2col lowering the fused path eliminates, serial and parallel, on the
// AlexNet conv2 batch-8 geometry (one group: 48 input channels, 5x5 taps,
// 27x27 output) — the same shape as the GEMM micro-benchmarks in
// internal/tensor, so staging cost reads directly against GEMM cost.

func im2colBenchGeometry() (p ConvParams, in []float32, nImg, inH, inW, outH, outW int) {
	p = ConvParams{
		InChannels: 48, OutChannels: 128,
		KernelH: 5, KernelW: 5,
		StrideH: 1, StrideW: 1,
		PadH: 2, PadW: 2,
	}
	nImg, inH, inW, outH, outW = 8, 27, 27, 27, 27
	t := tensor.New(nImg * p.InChannels * inH * inW)
	t.FillUniform(tensor.NewRNG(7), 0, 1)
	in = t.Data()
	return
}

func benchmarkIm2colStage(b *testing.B, workers int) {
	p, in, nImg, inH, inW, outH, outW := im2colBenchGeometry()
	k := p.InChannels * p.KernelH * p.KernelW
	colT := make([]float32, k*nImg*outH*outW)
	sampleStride := p.InChannels * inH * inW
	b.ReportAllocs()
	b.SetBytes(int64(len(colT)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2colTBatchPar(colT, in, nImg, sampleStride, inH, inW, 0, p.InChannels, p, outH, outW, workers)
	}
}

// BenchmarkIm2colStage measures the staged batched im2col lowering — the
// buffer fill the fused path never performs (it streams the same values in
// FusedKC x FusedNC panels instead).
func BenchmarkIm2colStage(b *testing.B)     { benchmarkIm2colStage(b, 1) }
func BenchmarkIm2colStagePar4(b *testing.B) { benchmarkIm2colStage(b, 4) }
