package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// LRNParams describes AlexNet-style local response normalization across
// channels.
type LRNParams struct {
	// LocalSize is the number of channels the normalization window spans.
	LocalSize int
	Alpha     float64
	Beta      float64
	K         float64
}

// DefaultLRN returns the AlexNet reference parameters (n=5, alpha=1e-4,
// beta=0.75, k=2).
func DefaultLRN() LRNParams {
	return LRNParams{LocalSize: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Validate checks the parameters for internal consistency.
func (p LRNParams) Validate() error {
	if p.LocalSize <= 0 {
		return fmt.Errorf("nn: lrn local size must be positive, got %d", p.LocalSize)
	}
	if p.Beta < 0 || p.Alpha < 0 {
		return fmt.Errorf("nn: lrn alpha/beta must be non-negative, got %v/%v", p.Alpha, p.Beta)
	}
	return nil
}

// LRN applies local response normalization across channels of a CHW input:
// out[c] = in[c] / (k + alpha/n * sum_{c'} in[c']^2)^beta.
func LRN(input *tensor.Tensor, p LRNParams) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input.Rank() != 3 {
		return nil, fmt.Errorf("nn: lrn input must be CHW, got shape %v", input.Shape())
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	out := tensor.New(c, h, w)
	in := input.Data()
	o := out.Data()
	half := p.LocalSize / 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < c; ch++ {
				sum := 0.0
				lo := ch - half
				if lo < 0 {
					lo = 0
				}
				hi := ch + half
				if hi >= c {
					hi = c - 1
				}
				for cc := lo; cc <= hi; cc++ {
					v := float64(in[(cc*h+y)*w+x])
					sum += v * v
				}
				denom := math.Pow(p.K+p.Alpha/float64(p.LocalSize)*sum, p.Beta)
				o[(ch*h+y)*w+x] = float32(float64(in[(ch*h+y)*w+x]) / denom)
			}
		}
	}
	return out, nil
}

// BatchNormParams carries the per-channel statistics of an inference-time
// batch normalization layer (ResNet uses BatchNorm followed by Scale).
type BatchNormParams struct {
	Mean     *tensor.Tensor // length C
	Variance *tensor.Tensor // length C
	Epsilon  float64
}

// BatchNorm normalizes each channel of a CHW input with the stored mean and
// variance: out = (in - mean) / sqrt(var + eps).
func BatchNorm(input *tensor.Tensor, p BatchNormParams) (*tensor.Tensor, error) {
	if input.Rank() != 3 {
		return nil, fmt.Errorf("nn: batchnorm input must be CHW, got shape %v", input.Shape())
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	if p.Mean == nil || p.Variance == nil {
		return nil, fmt.Errorf("nn: batchnorm requires mean and variance")
	}
	if p.Mean.Len() != c || p.Variance.Len() != c {
		return nil, fmt.Errorf("nn: batchnorm stats length %d/%d, want %d", p.Mean.Len(), p.Variance.Len(), c)
	}
	eps := p.Epsilon
	if eps == 0 {
		eps = 1e-5
	}
	out := tensor.New(c, h, w)
	in := input.Data()
	o := out.Data()
	for ch := 0; ch < c; ch++ {
		mean := p.Mean.Data()[ch]
		inv := float32(1.0 / math.Sqrt(float64(p.Variance.Data()[ch])+eps))
		for i := 0; i < h*w; i++ {
			o[ch*h*w+i] = (in[ch*h*w+i] - mean) * inv
		}
	}
	return out, nil
}

// Scale applies the per-channel affine transform out = in*gamma + beta that
// Caffe models pair with BatchNorm.
func Scale(input *tensor.Tensor, gamma, beta *tensor.Tensor) (*tensor.Tensor, error) {
	if input.Rank() != 3 {
		return nil, fmt.Errorf("nn: scale input must be CHW, got shape %v", input.Shape())
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	if gamma == nil || gamma.Len() != c {
		return nil, fmt.Errorf("nn: scale expects %d gammas", c)
	}
	if beta != nil && beta.Len() != c {
		return nil, fmt.Errorf("nn: scale expects %d betas, got %d", c, beta.Len())
	}
	out := tensor.New(c, h, w)
	in := input.Data()
	o := out.Data()
	for ch := 0; ch < c; ch++ {
		g := gamma.Data()[ch]
		b := float32(0)
		if beta != nil {
			b = beta.Data()[ch]
		}
		for i := 0; i < h*w; i++ {
			o[ch*h*w+i] = in[ch*h*w+i]*g + b
		}
	}
	return out, nil
}
