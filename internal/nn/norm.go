package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// LRNParams describes AlexNet-style local response normalization across
// channels.
type LRNParams struct {
	// LocalSize is the number of channels the normalization window spans.
	LocalSize int
	Alpha     float64
	Beta      float64
	K         float64
}

// DefaultLRN returns the AlexNet reference parameters (n=5, alpha=1e-4,
// beta=0.75, k=2).
func DefaultLRN() LRNParams {
	return LRNParams{LocalSize: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Validate checks the parameters for internal consistency.
func (p LRNParams) Validate() error {
	if p.LocalSize <= 0 {
		return fmt.Errorf("nn: lrn local size must be positive, got %d", p.LocalSize)
	}
	if p.Beta < 0 || p.Alpha < 0 {
		return fmt.Errorf("nn: lrn alpha/beta must be non-negative, got %v/%v", p.Alpha, p.Beta)
	}
	return nil
}

// checkLRNArgs validates an LRN call.
func checkLRNArgs(input *tensor.Tensor, p LRNParams) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if input == nil || input.Rank() != 3 {
		return fmt.Errorf("nn: lrn input must be CHW, got shape %v", shapeOf(input))
	}
	return nil
}

// LRN applies local response normalization across channels of a CHW input:
// out[c] = in[c] / (k + alpha/n * sum_{c'} in[c']^2)^beta.
func LRN(input *tensor.Tensor, p LRNParams) (*tensor.Tensor, error) {
	return (*Scratch)(nil).LRN(input, p)
}

// lrnInto runs the LRN kernel, fully overwriting dst.  The channel loop is
// outermost so output writes stream contiguously; the per-element arithmetic
// (fresh float64 window sum, math.Pow denominator) is unchanged from the
// reference loop order, so results are bit-identical.
func lrnInto(dst, input *tensor.Tensor, p LRNParams) {
	lrnCore(dst.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2), p)
}

// lrnCore normalizes one CHW sample given as flat slices.
func lrnCore(o, in []float32, c, h, w int, p LRNParams) {
	half := p.LocalSize / 2
	scale := p.Alpha / float64(p.LocalSize)
	for ch := 0; ch < c; ch++ {
		lo := ch - half
		if lo < 0 {
			lo = 0
		}
		hi := ch + half
		if hi >= c {
			hi = c - 1
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sum := 0.0
				for cc := lo; cc <= hi; cc++ {
					v := float64(in[(cc*h+y)*w+x])
					sum += v * v
				}
				denom := math.Pow(p.K+scale*sum, p.Beta)
				o[(ch*h+y)*w+x] = float32(float64(in[(ch*h+y)*w+x]) / denom)
			}
		}
	}
}

// lrnFastEligible reports whether the fast-numerics LRN variant applies:
// the tier is non-reference and beta is exactly 3/4, the AlexNet/GoogLeNet
// exponent, for which x^-beta has a closed form in hardware square roots.
func (s *Scratch) lrnFastEligible(p LRNParams) bool {
	return s.Numerics() != NumericsReference && p.Beta == 0.75
}

// lrnSums returns the rolling window-sum buffer of the fast LRN kernel
// (one float64 per pixel, allocated once and reused).
func (s *Scratch) lrnSums(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	if cap(s.f64buf) < n {
		s.f64buf = make([]float64, n)
	}
	return s.f64buf[:n]
}

// lrnCoreFast is lrnCore for the fast tier with beta = 3/4.  Two departures
// from the reference kernel, both inside the fast tier's tolerance
// contract (which is the only tier that ever runs this):
//
//   - The per-pixel channel-window sum rolls instead of being recomputed:
//     sums holds one float64 running sum per pixel and each channel step
//     adds the square entering the window and subtracts the one leaving it.
//     Squares of float32 values are exact in float64 (24-bit mantissas), so
//     the only reassociation error is the additions' rounding drift.
//   - The denominator d^0.75 = sqrt(d*sqrt(d)) uses two hardware square
//     roots instead of math.Pow, and the division becomes a multiply by the
//     reciprocal.
func lrnCoreFast(o, in []float32, c, h, w int, p LRNParams, sums []float64) {
	half := p.LocalSize / 2
	scale := p.Alpha / float64(p.LocalSize)
	hw := h * w
	for i := range sums {
		sums[i] = 0
	}
	for cc := 0; cc <= half && cc < c; cc++ {
		plane := in[cc*hw : (cc+1)*hw]
		for i, v := range plane {
			sums[i] += float64(v) * float64(v)
		}
	}
	for ch := 0; ch < c; ch++ {
		src := in[ch*hw : (ch+1)*hw]
		dst := o[ch*hw : (ch+1)*hw]
		for i, v := range src {
			d := p.K + scale*sums[i]
			dst[i] = float32(float64(v) / math.Sqrt(d*math.Sqrt(d)))
		}
		if add := ch + half + 1; add < c {
			plane := in[add*hw : (add+1)*hw]
			for i, v := range plane {
				sums[i] += float64(v) * float64(v)
			}
		}
		if sub := ch - half; sub >= 0 {
			plane := in[sub*hw : (sub+1)*hw]
			for i, v := range plane {
				sums[i] -= float64(v) * float64(v)
			}
		}
	}
}

// BatchNormParams carries the per-channel statistics of an inference-time
// batch normalization layer (ResNet uses BatchNorm followed by Scale).
type BatchNormParams struct {
	Mean     *tensor.Tensor // length C
	Variance *tensor.Tensor // length C
	Epsilon  float64
}

// checkBatchNormArgs validates a BatchNorm call.
func checkBatchNormArgs(input *tensor.Tensor, p BatchNormParams) error {
	if input == nil || input.Rank() != 3 {
		return fmt.Errorf("nn: batchnorm input must be CHW, got shape %v", shapeOf(input))
	}
	c := input.Dim(0)
	if p.Mean == nil || p.Variance == nil {
		return fmt.Errorf("nn: batchnorm requires mean and variance")
	}
	if p.Mean.Len() != c || p.Variance.Len() != c {
		return fmt.Errorf("nn: batchnorm stats length %d/%d, want %d", p.Mean.Len(), p.Variance.Len(), c)
	}
	return nil
}

// BatchNorm normalizes each channel of a CHW input with the stored mean and
// variance: out = (in - mean) / sqrt(var + eps).
func BatchNorm(input *tensor.Tensor, p BatchNormParams) (*tensor.Tensor, error) {
	return (*Scratch)(nil).BatchNorm(input, p)
}

// batchNormInto runs the batch normalization kernel, fully overwriting dst.
func batchNormInto(dst, input *tensor.Tensor, p BatchNormParams) {
	batchNormCore(dst.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2), p)
}

// batchNormCore normalizes one CHW sample given as flat slices.
func batchNormCore(o, in []float32, c, h, w int, p BatchNormParams) {
	eps := p.Epsilon
	if eps == 0 {
		eps = 1e-5
	}
	for ch := 0; ch < c; ch++ {
		mean := p.Mean.Data()[ch]
		inv := float32(1.0 / math.Sqrt(float64(p.Variance.Data()[ch])+eps))
		for i := 0; i < h*w; i++ {
			o[ch*h*w+i] = (in[ch*h*w+i] - mean) * inv
		}
	}
}

// checkScaleArgs validates a Scale call.
func checkScaleArgs(input, gamma, beta *tensor.Tensor) error {
	if input == nil || input.Rank() != 3 {
		return fmt.Errorf("nn: scale input must be CHW, got shape %v", shapeOf(input))
	}
	c := input.Dim(0)
	if gamma == nil || gamma.Len() != c {
		return fmt.Errorf("nn: scale expects %d gammas", c)
	}
	if beta != nil && beta.Len() != c {
		return fmt.Errorf("nn: scale expects %d betas, got %d", c, beta.Len())
	}
	return nil
}

// Scale applies the per-channel affine transform out = in*gamma + beta that
// Caffe models pair with BatchNorm.
func Scale(input *tensor.Tensor, gamma, beta *tensor.Tensor) (*tensor.Tensor, error) {
	return (*Scratch)(nil).Scale(input, gamma, beta)
}

// scaleInto runs the per-channel affine kernel, fully overwriting dst.
func scaleInto(dst, input, gamma, beta *tensor.Tensor) {
	scaleCore(dst.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2), gamma, beta)
}

// scaleCore applies the per-channel affine transform to one CHW sample given
// as flat slices.
func scaleCore(o, in []float32, c, h, w int, gamma, beta *tensor.Tensor) {
	for ch := 0; ch < c; ch++ {
		g := gamma.Data()[ch]
		b := float32(0)
		if beta != nil {
			b = beta.Data()[ch]
		}
		for i := 0; i < h*w; i++ {
			o[ch*h*w+i] = in[ch*h*w+i]*g + b
		}
	}
}
