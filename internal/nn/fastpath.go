package nn

import (
	"fmt"

	"tango/internal/tensor"
)

// This file implements the opt-in fast-numerics tier of the compute engine.
// The default engine is bit-exact: it preserves the reference summation
// order of every kernel.  The fast tier trades that guarantee for
// throughput under a tolerance-based accuracy contract (validated by golden
// top-1 tests at the networks layer):
//
//   - NumericsFast lowers the heavy layers onto the prepacked FMA/AVX-512
//     GEMM kernels in package tensor: multiple independent accumulator
//     chains per output, so sums are reassociated but stay float32.
//   - NumericsInt8 additionally quantizes convolution and fully-connected
//     layers to symmetric per-channel int8 weights with per-layer activation
//     scales, accumulating exactly in int32 and dequantizing at layer exit.
//     Layers without an int8 lowering (recurrent gates, normalization, ...)
//     run the NumericsFast float path.
//
// Weight panels are packed once per network (see the Packed* containers and
// the networks.Plan packing); steady-state inference performs no packing or
// heap allocation.  Results of the fast tier are identical for any worker
// count — row panels are tile-aligned — but, unlike the reference tier, may
// differ between batched and single-sample execution (column tails depend
// on the GEMM width).

// Numerics selects the arithmetic contract of a Scratch.
type Numerics uint8

const (
	// NumericsReference is the default bit-exact engine.
	NumericsReference Numerics = iota
	// NumericsFast selects the reassociated-float32 FMA/AVX-512 tier.
	NumericsFast
	// NumericsInt8 selects the quantized tier (conv/FC layers int8, the
	// rest as NumericsFast).
	NumericsInt8
)

// String returns the canonical flag spelling of the mode.
func (m Numerics) String() string {
	switch m {
	case NumericsFast:
		return "fast"
	case NumericsInt8:
		return "int8"
	default:
		return "reference"
	}
}

// ParseNumerics parses a mode name as spelled by String, accepting the
// common aliases "ref" and "fastmath".
func ParseNumerics(name string) (Numerics, error) {
	switch name {
	case "", "reference", "ref":
		return NumericsReference, nil
	case "fast", "fastmath":
		return NumericsFast, nil
	case "int8":
		return NumericsInt8, nil
	}
	return NumericsReference, fmt.Errorf("nn: unknown numerics mode %q (want reference, fast or int8)", name)
}

// SetNumerics selects the arithmetic tier for subsequent engine calls.
func (s *Scratch) SetNumerics(m Numerics) {
	if s != nil {
		s.numerics = m
	}
}

// Numerics returns the active arithmetic tier (NumericsReference for a nil
// Scratch or when the direct reference kernels are forced).
func (s *Scratch) Numerics() Numerics {
	if s == nil || s.direct {
		return NumericsReference
	}
	return s.numerics
}

// u8buf returns the quantized-activation staging buffer for the given slot.
func (s *Scratch) u8buf(slot, n int) []uint8 {
	if s == nil {
		return make([]uint8, n)
	}
	for len(s.u8bufs) <= slot {
		s.u8bufs = append(s.u8bufs, nil)
	}
	if cap(s.u8bufs[slot]) < n {
		s.u8bufs[slot] = make([]uint8, n)
	}
	return s.u8bufs[slot][:n]
}

// accbuf returns the int32 accumulator staging buffer of the int8 GEMM for
// the given slot (one slot per worker on the fused parallel path).
func (s *Scratch) accbuf(slot, n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	for len(s.accbs) <= slot {
		s.accbs = append(s.accbs, nil)
	}
	if cap(s.accbs[slot]) < n {
		s.accbs[slot] = make([]int32, n)
	}
	return s.accbs[slot][:n]
}

// ConvPack holds a convolution layer's weights packed for the fast tier:
// one pack per channel group (fast float panels, int8 panels, or both,
// depending on the mode it was built for).  Immutable and safe for
// concurrent use by any number of Scratches.
type ConvPack struct {
	f []*tensor.PackedA
	q []*tensor.PackedInt8
}

// FCPack holds a fully-connected layer's weights packed for the fast tier.
type FCPack struct {
	f *tensor.PackedA
	q *tensor.PackedInt8
}

// GatePack holds one recurrent gate's input and recurrent weight matrices
// packed for the batched fast GEMM (the single-sample fast path reads the
// raw weights through the multi-chain mat-vec kernel and needs no packing).
type GatePack struct {
	wx, uh *tensor.PackedA
}

// RNNPack holds packed gates of a recurrent cell, in cell order (LSTM:
// i, f, o, c; GRU: r, z, h).
type RNNPack struct {
	gates []GatePack
}

// Bytes returns the storage held by the pack's panel buffers.
func (pk *ConvPack) Bytes() int64 {
	if pk == nil {
		return 0
	}
	var n int64
	for _, p := range pk.f {
		n += p.Bytes()
	}
	for _, p := range pk.q {
		n += p.Bytes()
	}
	return n
}

// Bytes returns the storage held by the pack's panel buffers.
func (pk *FCPack) Bytes() int64 {
	if pk == nil {
		return 0
	}
	return pk.f.Bytes() + pk.q.Bytes()
}

// Bytes returns the storage held by the pack's panel buffers.
func (pk *RNNPack) Bytes() int64 {
	if pk == nil {
		return 0
	}
	var n int64
	for _, g := range pk.gates {
		n += g.wx.Bytes() + g.uh.Bytes()
	}
	return n
}

// PackConv packs conv weights (outC x inC/groups x kh x kw) for the given
// mode.  Returns nil for NumericsReference.
func PackConv(weights *tensor.Tensor, p ConvParams, mode Numerics) *ConvPack {
	if mode == NumericsReference || weights == nil {
		return nil
	}
	groups := p.groups()
	outCPerGroup := p.OutChannels / groups
	k := (p.InChannels / groups) * p.KernelH * p.KernelW
	w := weights.Data()
	pk := &ConvPack{}
	for g := 0; g < groups; g++ {
		block := w[g*outCPerGroup*k : (g+1)*outCPerGroup*k]
		if mode == NumericsInt8 {
			pk.q = append(pk.q, tensor.PackInt8(block, outCPerGroup, k))
		} else {
			pk.f = append(pk.f, tensor.PackA(block, outCPerGroup, k))
		}
	}
	return pk
}

// PackFC packs fully-connected weights (outF x inF) for the given mode.
// Returns nil for NumericsReference.
func PackFC(weights *tensor.Tensor, outF, inF int, mode Numerics) *FCPack {
	if mode == NumericsReference || weights == nil {
		return nil
	}
	if mode == NumericsInt8 {
		return &FCPack{q: tensor.PackInt8(weights.Data(), outF, inF)}
	}
	return &FCPack{f: tensor.PackA(weights.Data(), outF, inF)}
}

// PackLSTM packs the gate matrices of an LSTM cell for the batched fast
// GEMM.  Int8 mode packs the same float panels: recurrent cells run the
// NumericsFast path under either fast tier.  Returns nil for
// NumericsReference.
func PackLSTM(w *LSTMWeights, mode Numerics) *RNNPack {
	if mode == NumericsReference || w == nil {
		return nil
	}
	packGate := func(wx, uh *tensor.Tensor) GatePack {
		return GatePack{
			wx: tensor.PackA(wx.Data(), w.Hidden, w.Input),
			uh: tensor.PackA(uh.Data(), w.Hidden, w.Hidden),
		}
	}
	return &RNNPack{gates: []GatePack{
		packGate(w.Wi, w.Ui), packGate(w.Wf, w.Uf),
		packGate(w.Wo, w.Uo), packGate(w.Wc, w.Uc),
	}}
}

// PackGRU packs the gate matrices of a GRU cell for the batched fast GEMM.
// Returns nil for NumericsReference.
func PackGRU(w *GRUWeights, mode Numerics) *RNNPack {
	if mode == NumericsReference || w == nil {
		return nil
	}
	packGate := func(wx, uh *tensor.Tensor) GatePack {
		return GatePack{
			wx: tensor.PackA(wx.Data(), w.Hidden, w.Input),
			uh: tensor.PackA(uh.Data(), w.Hidden, w.Hidden),
		}
	}
	return &RNNPack{gates: []GatePack{
		packGate(w.Wr, w.Ur), packGate(w.Wz, w.Uz), packGate(w.Wh, w.Uh),
	}}
}

// Conv2DPacked is Conv2D with an optional fast-tier weight pack.  It runs
// the tier selected by SetNumerics when the matching pack is available and
// falls back to the bit-exact engine otherwise.
func (s *Scratch) Conv2DPacked(input, weights, bias *tensor.Tensor, p ConvParams, pk *ConvPack) (*tensor.Tensor, error) {
	mode := s.Numerics()
	if mode == NumericsReference || pk == nil {
		return s.Conv2D(input, weights, bias, p)
	}
	if mode == NumericsInt8 && pk.q != nil {
		return s.conv2DInt8(input, weights, bias, p, pk)
	}
	if pk.f != nil {
		return s.conv2DFast(input, weights, bias, p, pk)
	}
	return s.Conv2D(input, weights, bias, p)
}

// conv2DFast is the single-sample fast convolution on the fused staging
// path (fastfused.go): patches stream straight into GEMM panels and the
// product lands in the CHW output block, with no staged colT matrix.  The
// single-sample panel grid matches the staged fast path's column blocking,
// so results are bit-identical to the pre-fusion tier.
func (s *Scratch) conv2DFast(input, weights, bias *tensor.Tensor, p ConvParams, pk *ConvPack) (*tensor.Tensor, error) {
	inH, inW, outH, outW, err := checkConvArgs(input, weights, bias, p)
	if err != nil {
		return nil, err
	}
	out := s.out3(p.OutChannels, outH, outW)
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	s.convFused(out.Data(), input.Data(), biasData, pk, p, 1, input.Len(), inH, inW, outH, outW, false)
	return out, nil
}

// conv2DInt8 is the single-sample quantized convolution: the l-major patch
// matrix is quantized per layer (per group for grouped convolutions) and
// multiplied against the int8 weight panels with exact int32 accumulation.
func (s *Scratch) conv2DInt8(input, weights, bias *tensor.Tensor, p ConvParams, pk *ConvPack) (*tensor.Tensor, error) {
	inH, inW, outH, outW, err := checkConvArgs(input, weights, bias, p)
	if err != nil {
		return nil, err
	}
	out := s.out3(p.OutChannels, outH, outW)
	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	n := outH * outW
	k := inCPerGroup * p.KernelH * p.KernelW
	kPad := pk.q[0].KPad()
	colT := s.buffer(k * n)
	bp := s.u8buf(0, tensor.Int8PackedLen(kPad, n))
	acc := s.accbuf(0, outCPerGroup*n)
	in := input.Data()
	o := out.Data()
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	workers := s.Workers()
	for g := 0; g < groups; g++ {
		im2colTBatch(colT, in, 1, input.Len(), inH, inW, g*inCPerGroup, inCPerGroup, p, outH, outW)
		xs := tensor.PackColsU8(bp, colT, k, n, n, kPad)
		oc0 := g * outCPerGroup
		var gb []float32
		if biasData != nil {
			gb = biasData[oc0 : oc0+outCPerGroup]
		}
		tensor.GemmInt8(o[oc0*n:(oc0+outCPerGroup)*n], pk.q[g], bp, acc, gb, xs, n, workers)
	}
	return out, nil
}

// Conv2DBatchPacked is Conv2DBatch with an optional fast-tier weight pack.
func (s *Scratch) Conv2DBatchPacked(input, weights, bias *tensor.Tensor, p ConvParams, pk *ConvPack) (*tensor.Tensor, error) {
	mode := s.Numerics()
	if mode == NumericsReference || pk == nil || (pk.f == nil && pk.q == nil) {
		return s.Conv2DBatch(input, weights, bias, p)
	}
	nImg, _, inH, inW, err := checkBatchInput("conv", input, p.InChannels)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if weights == nil || weights.Len() != p.WeightCount() {
		return nil, fmt.Errorf("nn: conv: %w: expects %d weights, got %d",
			tensor.ErrShape, p.WeightCount(), tensorLen(weights))
	}
	if bias != nil && bias.Len() != p.OutChannels {
		return nil, fmt.Errorf("nn: conv: %w: expects %d biases, got %d",
			tensor.ErrShape, p.OutChannels, bias.Len())
	}
	outH, outW := p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: conv output dims %dx%d are not positive for input %dx%d",
			outH, outW, inH, inW)
	}

	int8Path := mode == NumericsInt8 && pk.q != nil
	if !int8Path && pk.f == nil {
		return s.Conv2DBatch(input, weights, bias, p)
	}
	out := s.out4(nImg, p.OutChannels, outH, outW)
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	s.convFused(out.Data(), input.Data(), biasData, pk, p,
		nImg, input.Len()/nImg, inH, inW, outH, outW, int8Path)
	return out, nil
}

// FullyConnectedPacked is FullyConnected with an optional fast-tier weight
// pack.  The fast float path reads the raw weights (a mat-vec is
// memory-bound, packing buys nothing); the int8 path needs pk.
func (s *Scratch) FullyConnectedPacked(input, weights, bias *tensor.Tensor, outFeatures int, pk *FCPack) (*tensor.Tensor, error) {
	mode := s.Numerics()
	if mode == NumericsReference {
		return s.FullyConnected(input, weights, bias, outFeatures)
	}
	inFeatures, err := checkFullyConnectedArgs(input, weights, bias, outFeatures)
	if err != nil {
		return nil, err
	}
	out := s.out1(outFeatures)
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	if mode == NumericsInt8 && pk != nil && pk.q != nil {
		kPad := pk.q.KPad()
		xq := s.u8buf(0, kPad)
		xs := tensor.QuantizeU8(xq[:inFeatures], input.Data())
		tensor.MatVecInt8(out.Data(), pk.q, xq, biasData, xs, s.Workers())
		return out, nil
	}
	tensor.MatVecFastParallel(out.Data(), weights.Data(), input.Data(), biasData,
		outFeatures, inFeatures, s.Workers())
	return out, nil
}

// FullyConnectedBatchPacked is FullyConnectedBatch with an optional
// fast-tier weight pack.
func (s *Scratch) FullyConnectedBatchPacked(input, weights, bias *tensor.Tensor, outFeatures int, pk *FCPack) (*tensor.Tensor, error) {
	mode := s.Numerics()
	if mode == NumericsReference || pk == nil || (pk.f == nil && pk.q == nil) {
		return s.FullyConnectedBatch(input, weights, bias, outFeatures)
	}
	if input == nil || input.Rank() < 2 {
		return nil, fmt.Errorf("nn: fc: %w: batch input must have a leading batch dimension, got %v",
			tensor.ErrShape, shapeOf(input))
	}
	nImg := input.Dim(0)
	inF := input.Len() / nImg
	if outFeatures <= 0 {
		return nil, fmt.Errorf("nn: fc output features must be positive, got %d", outFeatures)
	}
	if weights == nil || weights.Len() != outFeatures*inF {
		return nil, fmt.Errorf("nn: fc expects %d weights (%dx%d), got %d",
			outFeatures*inF, outFeatures, inF, tensorLen(weights))
	}
	if bias != nil && bias.Len() != outFeatures {
		return nil, fmt.Errorf("nn: fc expects %d biases, got %d", outFeatures, bias.Len())
	}

	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	workers := s.Workers()
	if mode == NumericsInt8 && pk.q != nil {
		xT := s.batchBuf(0, inF*nImg)
		transposeToColumnsPar(xT, input.Data(), nImg, inF, workers)
		yT := s.batchBuf(1, outFeatures*nImg)
		kPad := pk.q.KPad()
		bp := s.u8buf(0, tensor.Int8PackedLen(kPad, nImg))
		acc := s.accbuf(0, outFeatures*nImg)
		xs := tensor.PackColsU8(bp, xT, inF, nImg, nImg, kPad)
		tensor.GemmInt8(yT, pk.q, bp, acc, biasData, xs, nImg, workers)
		out := s.out2(nImg, outFeatures)
		transposeToRowsPar(out.Data(), yT, nImg, outFeatures, nImg, workers)
		return out, nil
	}
	if pk.f != nil {
		// Fast float tier: pad the GEMM columns up to the 16-wide FMA tile
		// so a small batch (3, 8) runs the vector microkernel instead of
		// falling into the scalar column tail.  Pad lanes are zero and are
		// never read back.
		ncol := (nImg + 15) &^ 15
		xT := s.batchBuf(0, inF*ncol)
		transposeToColumnsPad(xT, input.Data(), nImg, inF, ncol, workers)
		yT := s.batchBuf(1, outFeatures*ncol)
		tensor.GemmNNFastParallel(yT, pk.f, xT, biasData, ncol, ncol, workers)
		out := s.out2(nImg, outFeatures)
		transposeToRowsPar(out.Data(), yT, nImg, outFeatures, ncol, workers)
		return out, nil
	}
	xT := s.batchBuf(0, inF*nImg)
	transposeToColumnsPar(xT, input.Data(), nImg, inF, workers)
	yT := s.batchBuf(1, outFeatures*nImg)
	tensor.GemmNNParallel(yT, weights.Data(), xT, biasData, outFeatures, nImg, inF, nImg, workers)
	out := s.out2(nImg, outFeatures)
	transposeToRowsPar(out.Data(), yT, nImg, outFeatures, nImg, workers)
	return out, nil
}

// gatePreBatchFast is gatePreBatch on the prepacked fast GEMM.
func (s *Scratch) gatePreBatchFast(pre, tmp []float32, g GatePack, b *tensor.Tensor, xT, hT []float32, hidden, n, workers int) {
	tensor.GemmNNFastParallel(pre, g.wx, xT, nil, n, n, workers)
	tensor.GemmNNFastParallel(tmp, g.uh, hT, nil, n, n, workers)
	bd := b.Data()
	for hr := 0; hr < hidden; hr++ {
		bv := bd[hr]
		prow := pre[hr*n : (hr+1)*n]
		trow := tmp[hr*n : (hr+1)*n]
		for i := range prow {
			prow[i] = (prow[i] + trow[i]) + bv
		}
	}
}
