package nn

import (
	"tango/internal/par"
	"tango/internal/tensor"
)

// This file implements the fused-staging convolution of the fast-numerics
// tier: instead of materializing the full l-major im2col matrix (k x
// N*outH*outW floats) and then running the packed GEMM over it, receptive-
// field patches stream directly from the padded input into L2-resident
// column panels that the GEMM microkernels consume in place, and the
// product lands straight in the NCHW output block (dst rows outH*outW
// floats apart via the two-stride kernels).  The staged colT buffer and
// the channel-major un-interleave copy of the old batched path are both
// gone.
//
// Geometry and determinism: each (group, image) output block is covered by
// a fixed grid of tensor.FusedNC-column panels; a panel is finished by
// walking depth in tensor.FusedKC slabs (pack slab, accumulate slab).  The
// grid depends only on the layer shape — never on the worker count — and
// panels cover disjoint output columns, so any fan-out of panels across
// workers produces identical bytes.  For a single sample the grid equals
// the staged fast path's column blocking, making the fused result
// bit-identical to the staged one; for a batch the grid is per-image
// (panels never straddle image boundaries), which differs from the old
// staged batch blocking only in float32 low bits (the tier's tolerance
// contract).
//
// The int8 tier quantizes per panel: float patch slabs are packed exactly
// as above, quantized into the kernel's u8 tile layout panel by panel, and
// one exact-int32 panel GEMM dequantizes straight into the output block.
// The activation scale is per (group, image), computed from that image's
// group input planes — a superset of every patch value, so the clamp-free
// quantizer stays in range, the scale is independent of the panel grid and
// worker count, and batching never coarsens a sample's quantization step
// (a batch-wide scale would let one large-magnitude image cost every other
// image resolution).

// convFused runs the fused fast-tier convolution over nImg samples laid
// out sample-major in `in` (samples sampleStride floats apart), writing
// NCHW output planes into o.  pk must carry the pack matching int8Path.
func (s *Scratch) convFused(o, in, biasData []float32, pk *ConvPack, p ConvParams, nImg, sampleStride, inH, inW, outH, outW int, int8Path bool) {
	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	n1 := outH * outW
	outSample := p.OutChannels * n1
	workers := s.Workers()
	oneByOne := !int8Path && p.KernelH == 1 && p.KernelW == 1 &&
		p.StrideH == 1 && p.StrideW == 1 && p.PadH == 0 && p.PadW == 0
	nPanels := (n1 + tensor.FusedNC - 1) / tensor.FusedNC
	tasks := nImg * nPanels
	ncMax := n1
	if ncMax > tensor.FusedNC {
		ncMax = tensor.FusedNC
	}
	var u8len, accLen int
	if int8Path {
		u8len = tensor.Int8PackedLen(pk.q[0].KPad(), ncMax)
		accLen = outCPerGroup * ncMax
	}

	for g := 0; g < groups; g++ {
		oc0 := g * outCPerGroup
		icBase := g * inCPerGroup
		var gb []float32
		if biasData != nil {
			gb = biasData[oc0 : oc0+outCPerGroup]
		}
		if oneByOne {
			// 1x1/stride-1: the group's input planes ARE the B matrix
			// (k rows of n1 contiguous floats) — no patch extraction, no
			// panel packing, the GEMM streams the input in place.
			pa := pk.f[g]
			for img := 0; img < nImg; img++ {
				tensor.GemmNNFastStridedParallel(
					o[img*outSample+oc0*n1:], pa,
					in[img*sampleStride+icBase*n1:], gb, n1, n1, n1, workers)
			}
			continue
		}
		var scales []float32
		if int8Path {
			scales = s.qscaleBuf(nImg)
			for img := 0; img < nImg; img++ {
				maxAbs := maxAbsStrided(in[img*sampleStride:], 1, 0, icBase*inH*inW, inCPerGroup*inH*inW)
				scales[img] = tensor.U8Scale(maxAbs)
			}
		}
		w := workers
		if w > tasks {
			w = tasks
		}
		if w <= 1 {
			// Serial path: no closures (they would escape and break the
			// engine's zero-alloc steady state).
			panel := s.panelBuf(0)
			if int8Path {
				pq := pk.q[g]
				u8p := s.u8buf(0, u8len)
				acc := s.accbuf(0, accLen)
				for t := 0; t < tasks; t++ {
					img, pi := t/nPanels, t%nPanels
					p0 := pi * tensor.FusedNC
					pw := n1 - p0
					if pw > tensor.FusedNC {
						pw = tensor.FusedNC
					}
					scale := scales[img]
					fusedConvPanelInt8(o[img*outSample+oc0*n1+p0:], in[img*sampleStride:],
						pq, gb, p, inH, inW, icBase, outH, outW, n1, p0, pw,
						panel, u8p, acc, 1/scale, scale)
				}
			} else {
				pa := pk.f[g]
				for t := 0; t < tasks; t++ {
					img, pi := t/nPanels, t%nPanels
					p0 := pi * tensor.FusedNC
					pw := n1 - p0
					if pw > tensor.FusedNC {
						pw = tensor.FusedNC
					}
					fusedConvPanel(o[img*outSample+oc0*n1+p0:], in[img*sampleStride:],
						pa, gb, p, inH, inW, icBase, outH, outW, n1, p0, pw, panel)
				}
			}
			continue
		}
		s.convFusedGroupPar(o, in, gb, pk, g, p, sampleStride, inH, inW, icBase,
			outH, outW, n1, outSample, oc0, nPanels, tasks, w, u8len, accLen,
			scales, int8Path)
	}
}

// convFusedGroupPar fans one group's (image, panel) tasks over the worker
// pool.  It lives in its own function so the closure below never forces the
// serial path's locals to the heap (convFused must stay closure-free for
// the zero-alloc steady state).  Worker wi owns tasks wi, wi+w, ... — a
// fixed assignment over the fixed panel grid, so the bytes written are
// identical for any worker count.
func (s *Scratch) convFusedGroupPar(o, in, gb []float32, pk *ConvPack, g int, p ConvParams, sampleStride, inH, inW, icBase, outH, outW, n1, outSample, oc0, nPanels, tasks, w, u8len, accLen int, scales []float32, int8Path bool) {
	// Pre-grow the per-worker buffers before fanning out: the slot helpers
	// may append/resize, which must not race.
	for wi := 0; wi < w; wi++ {
		s.panelBuf(wi)
		if int8Path {
			s.u8buf(wi, u8len)
			s.accbuf(wi, accLen)
		}
	}
	pq, pa := (*tensor.PackedInt8)(nil), (*tensor.PackedA)(nil)
	if int8Path {
		pq = pk.q[g]
	} else {
		pa = pk.f[g]
	}
	_ = par.ForEach(w, w, func(wi int) error {
		panel := s.panelBuf(wi)
		var u8p []uint8
		var acc []int32
		if int8Path {
			u8p = s.u8buf(wi, u8len)
			acc = s.accbuf(wi, accLen)
		}
		for t := wi; t < tasks; t += w {
			img, pi := t/nPanels, t%nPanels
			p0 := pi * tensor.FusedNC
			pw := n1 - p0
			if pw > tensor.FusedNC {
				pw = tensor.FusedNC
			}
			dst := o[img*outSample+oc0*n1+p0:]
			sample := in[img*sampleStride:]
			if int8Path {
				scale := scales[img]
				fusedConvPanelInt8(dst, sample, pq, gb, p, inH, inW, icBase,
					outH, outW, n1, p0, pw, panel, u8p, acc, 1/scale, scale)
			} else {
				fusedConvPanel(dst, sample, pa, gb, p, inH, inW, icBase,
					outH, outW, n1, p0, pw, panel)
			}
		}
		return nil
	})
}

// fusedConvPanel finishes one float column panel: for each FusedKC depth
// slab it packs the receptive-field patch block into panel and accumulates
// it onto the strided output block (bias-seeded at the first slab).
func fusedConvPanel(dst, sample []float32, pa *tensor.PackedA, gb []float32, p ConvParams, inH, inW, icBase, outH, outW, n1, p0, pw int, panel []float32) {
	k := pa.Cols()
	for kb := 0; kb < k; kb += tensor.FusedKC {
		kc := k - kb
		if kc > tensor.FusedKC {
			kc = tensor.FusedKC
		}
		packConvPanel(panel, sample, inH, inW, icBase, p, outH, outW, kb, kc, p0, pw)
		tensor.GemmNNFastAccumPanel(dst, pa, panel[:kc*pw], gb, kb, kc, pw, n1)
	}
}

// fusedConvPanelInt8 finishes one quantized column panel: float patch slabs
// are packed and quantized into the u8 tile layout (full padded depth, one
// panel), then a single exact-int32 panel GEMM dequantizes into the output.
func fusedConvPanelInt8(dst, sample []float32, pq *tensor.PackedInt8, gb []float32, p ConvParams, inH, inW, icBase, outH, outW, n1, p0, pw int, panel []float32, u8p []uint8, acc []int32, inv, scale float32) {
	k := pq.Cols()
	kPad := pq.KPad()
	tensor.BeginPanelU8(u8p, k, pw, kPad)
	for kb := 0; kb < k; kb += tensor.FusedKC {
		kc := k - kb
		if kc > tensor.FusedKC {
			kc = tensor.FusedKC
		}
		packConvPanel(panel, sample, inH, inW, icBase, p, outH, outW, kb, kc, p0, pw)
		tensor.QuantizePanelU8(u8p, panel[:kc*pw], kb, kc, pw, kPad, inv)
	}
	tensor.GemmInt8Panel(dst, pq, u8p, acc, gb, scale, pw, n1)
}

// packConvPanel streams the receptive-field patch block covering depth rows
// [kb, kb+kc) and output pixels [p0, p0+pw) of one sample into a compact
// kc x pw row-major panel.  Depth row l maps to kernel tap (ic, ky, kx)
// exactly as in the staged im2col, and padding positions are zero, so the
// panel holds the same values the staged colT would — just never all of
// them at once.
func packConvPanel(panel, sample []float32, inH, inW, icBase int, p ConvParams, outH, outW, kb, kc, p0, pw int) {
	khw := p.KernelH * p.KernelW
	for li := 0; li < kc; li++ {
		l := kb + li
		ic := l / khw
		rem := l - ic*khw
		ky := rem / p.KernelW
		kx := rem - ky*p.KernelW
		plane := sample[(icBase+ic)*inH*inW : (icBase+ic+1)*inH*inW]
		packPatchRow(panel[li*pw:li*pw+pw], plane, inH, inW, p, outH, outW, ky, kx, p0)
	}
}

// packPatchRow fills row with the input values kernel tap (ky, kx) sees at
// output pixels [p0, p0+len(row)) of one plane; out-of-image taps are zero.
// Each output row splits into three branch-free phases — left zero pad,
// in-image span (a copy for stride 1), right zero pad.
func packPatchRow(row, plane []float32, inH, inW int, p ConvParams, outH, outW, ky, kx, p0 int) {
	pw := len(row)
	idx := 0
	oy := p0 / outW
	ox := p0 - oy*outW
	for idx < pw {
		cnt := outW - ox
		if cnt > pw-idx {
			cnt = pw - idx
		}
		seg := row[idx : idx+cnt]
		iy := oy*p.StrideH - p.PadH + ky
		if iy < 0 || iy >= inH {
			for t := range seg {
				seg[t] = 0
			}
		} else {
			rowIn := plane[iy*inW : (iy+1)*inW]
			ix0 := ox*p.StrideW - p.PadW + kx
			// t in [0,cnt) reads ix0 + t*StrideW; clamp to the in-image
			// sub-span [t0, t1).
			t0 := 0
			if ix0 < 0 {
				t0 = (-ix0 + p.StrideW - 1) / p.StrideW
			}
			t1 := cnt
			if ix0+(cnt-1)*p.StrideW >= inW {
				t1 = (inW - ix0 + p.StrideW - 1) / p.StrideW
			}
			if t1 < t0 {
				t1 = t0
			}
			if t0 > cnt {
				t0 = cnt
			}
			if t1 > cnt {
				t1 = cnt
			}
			for t := 0; t < t0; t++ {
				seg[t] = 0
			}
			if t1 == t0 {
				// no in-image span
			} else if p.StrideW == 1 {
				copy(seg[t0:t1], rowIn[ix0+t0:])
			} else {
				ix := ix0 + t0*p.StrideW
				for t := t0; t < t1; t++ {
					seg[t] = rowIn[ix]
					ix += p.StrideW
				}
			}
			for t := t1; t < cnt; t++ {
				seg[t] = 0
			}
		}
		idx += cnt
		oy++
		ox = 0
	}
}

// maxAbsStrided returns the maximum absolute value over the same off/length
// window of nImg sample-major blocks.
func maxAbsStrided(in []float32, nImg, sampleStride, off, length int) float32 {
	var m float32
	for img := 0; img < nImg; img++ {
		seg := in[img*sampleStride+off : img*sampleStride+off+length]
		for _, v := range seg {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
	}
	return m
}

// qscaleBuf returns the per-image activation-scale buffer of the fused int8
// path (allocated once and reused).
func (s *Scratch) qscaleBuf(n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	if cap(s.qscales) < n {
		s.qscales = make([]float32, n)
	}
	return s.qscales[:n]
}

// panelBuf returns the fused-GEMM B panel buffer for the given worker slot
// (tensor.FusedPanelFloats floats, allocated once and reused).
func (s *Scratch) panelBuf(slot int) []float32 {
	if s == nil {
		return make([]float32, tensor.FusedPanelFloats)
	}
	for len(s.fpanels) <= slot {
		s.fpanels = append(s.fpanels, nil)
	}
	if s.fpanels[slot] == nil {
		s.fpanels[slot] = make([]float32, tensor.FusedPanelFloats)
	}
	return s.fpanels[slot]
}
