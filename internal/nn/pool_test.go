package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tango/internal/tensor"
)

func TestPoolParamsValidate(t *testing.T) {
	good := PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []PoolParams{
		{KernelH: 0, KernelW: 2, StrideH: 2, StrideW: 2},
		{KernelH: 2, KernelW: 2, StrideH: 0, StrideW: 2},
		{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2, PadH: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPoolKindString(t *testing.T) {
	if MaxPool.String() != "max" || AvgPool.String() != "avg" {
		t.Error("unexpected pool kind names")
	}
}

func TestMaxPoolKnown(t *testing.T) {
	in := mustTensor(t, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := Pool2D(in, PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestAvgPoolKnown(t *testing.T) {
	in := mustTensor(t, []float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	out, err := Pool2D(in, PoolParams{Kind: AvgPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || math.Abs(float64(out.Data()[0]-2.5)) > 1e-6 {
		t.Errorf("avg pool = %v, want [2.5]", out.Data())
	}
}

func TestPoolCeilMode(t *testing.T) {
	// Ceil and floor modes differ when (in - k) is not a multiple of the
	// stride: for a 14-wide input with k=3, s=2, floor gives (14-3)/2+1 = 6
	// while Caffe-style ceil gives ceil(11/2)+1 = 7.
	p := PoolParams{Kind: MaxPool, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, CeilMode: true}
	h, w := p.OutputDims(14, 14)
	if h != 7 || w != 7 {
		t.Errorf("ceil mode dims = %dx%d, want 7x7", h, w)
	}
	p.CeilMode = false
	h, w = p.OutputDims(14, 14)
	if h != 6 || w != 6 {
		t.Errorf("floor mode dims = %dx%d, want 6x6", h, w)
	}
}

func TestPoolErrors(t *testing.T) {
	flat := tensor.New(8)
	if _, err := Pool2D(flat, PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}); err == nil {
		t.Error("non-CHW input should fail")
	}
	small := tensor.New(1, 1, 1)
	if _, err := Pool2D(small, PoolParams{Kind: MaxPool, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("window larger than unpadded input should fail")
	}
	if _, err := Pool2D(small, PoolParams{Kind: MaxPool, KernelH: 0, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := mustTensor(t, []float32{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 2, 2, 2)
	out, err := GlobalAvgPool(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("global pool output length %d, want 2", out.Len())
	}
	if math.Abs(float64(out.Data()[0]-2.5)) > 1e-6 || out.Data()[1] != 10 {
		t.Errorf("global pool = %v", out.Data())
	}
	if _, err := GlobalAvgPool(tensor.New(4)); err == nil {
		t.Error("non-CHW input should fail")
	}
}

// Property: max pooling never produces a value larger than the input maximum
// or smaller than the input minimum.
func TestQuickMaxPoolBounds(t *testing.T) {
	f := func(seed uint64) bool {
		in := tensor.New(2, 6, 6)
		in.FillNormal(tensor.NewRNG(seed), 3)
		out, err := Pool2D(in, PoolParams{Kind: MaxPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
		if err != nil {
			return false
		}
		return out.Max() <= in.Max() && out.Min() >= in.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: average pooling preserves the global mean when the window tiles
// the input exactly.
func TestQuickAvgPoolMeanPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		in := tensor.New(1, 4, 4)
		in.FillUniform(tensor.NewRNG(seed), -1, 1)
		out, err := Pool2D(in, PoolParams{Kind: AvgPool, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2})
		if err != nil {
			return false
		}
		return math.Abs(in.Sum()/float64(in.Len())-out.Sum()/float64(out.Len())) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
