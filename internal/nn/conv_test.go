package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tango/internal/tensor"
)

func mustTensor(t *testing.T, data []float32, shape ...int) *tensor.Tensor {
	t.Helper()
	tt, err := tensor.FromSlice(data, shape...)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestConvParamsValidate(t *testing.T) {
	good := ConvParams{InChannels: 3, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []ConvParams{
		{InChannels: 0, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1},
		{InChannels: 3, OutChannels: 8, KernelH: 0, KernelW: 3, StrideH: 1, StrideW: 1},
		{InChannels: 3, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 0, StrideW: 1},
		{InChannels: 3, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: -1},
		{InChannels: 3, OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, Groups: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestConvOutputDims(t *testing.T) {
	cases := []struct {
		p            ConvParams
		inH, inW     int
		wantH, wantW int
	}{
		// AlexNet conv1: 227x227, k=11, s=4 -> 55x55.
		{ConvParams{InChannels: 3, OutChannels: 96, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}, 227, 227, 55, 55},
		// VGG conv: 224x224, k=3, s=1, p=1 -> 224x224.
		{ConvParams{InChannels: 3, OutChannels: 64, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 224, 224, 224, 224},
		// ResNet conv1: 224x224, k=7, s=2, p=3 -> 112x112.
		{ConvParams{InChannels: 3, OutChannels: 64, KernelH: 7, KernelW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}, 224, 224, 112, 112},
		// SqueezeNet conv1: 227x227, k=7, s=2 -> 111x111.
		{ConvParams{InChannels: 3, OutChannels: 96, KernelH: 7, KernelW: 7, StrideH: 2, StrideW: 2}, 227, 227, 111, 111},
	}
	for i, c := range cases {
		h, w := c.p.OutputDims(c.inH, c.inW)
		if h != c.wantH || w != c.wantW {
			t.Errorf("case %d: OutputDims = %dx%d, want %dx%d", i, h, w, c.wantH, c.wantW)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel with weight 1 must reproduce the input.
	in := mustTensor(t, []float32{1, 2, 3, 4}, 1, 2, 2)
	w := mustTensor(t, []float32{1}, 1)
	out, err := Conv2D(in, w, nil, ConvParams{InChannels: 1, OutChannels: 1, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ApproxEqual(in, out, 1e-6) {
		t.Errorf("identity conv mismatch: %v", out.Data())
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1 channel 3x3 input, 2x2 kernel of ones, stride 1, no pad.
	in := mustTensor(t, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := mustTensor(t, []float32{1, 1, 1, 1}, 4)
	out, err := Conv2D(in, w, nil, ConvParams{InChannels: 1, OutChannels: 1, KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if math.Abs(float64(out.Data()[i]-v)) > 1e-5 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	in := mustTensor(t, []float32{1, 1, 1, 1}, 1, 2, 2)
	w := mustTensor(t, []float32{0}, 1)
	b := mustTensor(t, []float32{5}, 1)
	out, err := Conv2D(in, w, b, ConvParams{InChannels: 1, OutChannels: 1, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if v != 5 {
			t.Errorf("bias not applied: %v", out.Data())
			break
		}
	}
}

func TestConv2DPadding(t *testing.T) {
	// With pad=1 and a 3x3 kernel of ones on a single-pixel input, the output
	// keeps the input size and the center equals the pixel value.
	in := mustTensor(t, []float32{2}, 1, 1, 1)
	w := mustTensor(t, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 9)
	out, err := Conv2D(in, w, nil, ConvParams{InChannels: 1, OutChannels: 1, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(1) != 1 || out.Dim(2) != 1 {
		t.Fatalf("padded conv output shape %v, want 1x1x1", out.Shape())
	}
	if out.At(0, 0, 0) != 2 {
		t.Errorf("padded conv value %v, want 2", out.At(0, 0, 0))
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels summed by a 1x1 kernel of ones.
	in := mustTensor(t, []float32{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 2, 2, 2)
	w := mustTensor(t, []float32{1, 1}, 2)
	out, err := Conv2D(in, w, nil, ConvParams{InChannels: 2, OutChannels: 1, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 44}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestConv2DGroups(t *testing.T) {
	// Grouped conv with 2 groups: each output channel sees only its half of
	// the input channels.
	in := mustTensor(t, []float32{
		1, 1, 1, 1, // ch0
		2, 2, 2, 2, // ch1
	}, 2, 2, 2)
	w := mustTensor(t, []float32{1, 1}, 2) // one 1x1 weight per output channel
	out, err := Conv2D(in, w, nil, ConvParams{InChannels: 2, OutChannels: 2, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 1 || out.At(1, 0, 0) != 2 {
		t.Errorf("grouped conv mismatch: %v", out.Data())
	}
}

func TestConv2DErrors(t *testing.T) {
	in := tensor.New(3, 8, 8)
	w := tensor.New(10)
	if _, err := Conv2D(in, w, nil, ConvParams{InChannels: 3, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("wrong weight count should fail")
	}
	w2 := tensor.New(4 * 3 * 3 * 3)
	badBias := tensor.New(3)
	if _, err := Conv2D(in, w2, badBias, ConvParams{InChannels: 3, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("wrong bias count should fail")
	}
	if _, err := Conv2D(in, w2, nil, ConvParams{InChannels: 5, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("channel mismatch should fail")
	}
	flat := tensor.New(8)
	if _, err := Conv2D(flat, w2, nil, ConvParams{InChannels: 3, OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("non-CHW input should fail")
	}
	big := tensor.New(3, 2, 2)
	w3 := tensor.New(4 * 3 * 5 * 5)
	if _, err := Conv2D(big, w3, nil, ConvParams{InChannels: 3, OutChannels: 4, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1}); err == nil {
		t.Error("kernel larger than input without padding should fail")
	}
}

func TestConvMACs(t *testing.T) {
	// AlexNet conv1: 96*55*55*3*11*11 = 105,415,200 MACs.
	p := ConvParams{InChannels: 3, OutChannels: 96, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}
	if got := p.MACs(227, 227); got != 105415200 {
		t.Errorf("MACs = %d, want 105415200", got)
	}
}

// Property: convolution is linear in the input — conv(a*x) == a*conv(x).
func TestQuickConvLinearity(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		r := tensor.NewRNG(seed)
		scale := float32(scaleRaw%7) + 1
		in := tensor.New(2, 5, 5)
		in.FillNormal(r, 1)
		w := tensor.New(3 * 2 * 3 * 3)
		w.FillNormal(r, 0.5)
		p := ConvParams{InChannels: 2, OutChannels: 3, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		out1, err := Conv2D(in, w, nil, p)
		if err != nil {
			return false
		}
		scaled := in.Clone()
		for i := range scaled.Data() {
			scaled.Data()[i] *= scale
		}
		out2, err := Conv2D(scaled, w, nil, p)
		if err != nil {
			return false
		}
		for i := range out1.Data() {
			if math.Abs(float64(out1.Data()[i]*scale-out2.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
