package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// PoolKind selects the pooling reduction.
type PoolKind uint8

// Pooling reductions used by the benchmark networks.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// String returns the pooling kind name.
func (k PoolKind) String() string {
	if k == MaxPool {
		return "max"
	}
	return "avg"
}

// PoolParams describes a spatial pooling layer.
type PoolParams struct {
	Kind    PoolKind
	KernelH int
	KernelW int
	StrideH int
	StrideW int
	PadH    int
	PadW    int
	// CeilMode selects Caffe-style ceiling output size computation, which
	// AlexNet and SqueezeNet reference models use (e.g. 55 -> 27 with k=3,s=2).
	CeilMode bool
}

// Validate checks the parameters for internal consistency.
func (p PoolParams) Validate() error {
	if p.KernelH <= 0 || p.KernelW <= 0 {
		return fmt.Errorf("nn: pool kernel must be positive, got %dx%d", p.KernelH, p.KernelW)
	}
	if p.StrideH <= 0 || p.StrideW <= 0 {
		return fmt.Errorf("nn: pool stride must be positive, got %dx%d", p.StrideH, p.StrideW)
	}
	if p.PadH < 0 || p.PadW < 0 {
		return fmt.Errorf("nn: pool padding must be non-negative, got %dx%d", p.PadH, p.PadW)
	}
	return nil
}

// OutputDims returns the output spatial size for an inH x inW input.
func (p PoolParams) OutputDims(inH, inW int) (outH, outW int) {
	num := func(in, pad, k, s int) int {
		if p.CeilMode {
			return int(math.Ceil(float64(in+2*pad-k)/float64(s))) + 1
		}
		return (in+2*pad-k)/s + 1
	}
	return num(inH, p.PadH, p.KernelH, p.StrideH), num(inW, p.PadW, p.KernelW, p.StrideW)
}

// checkPoolArgs validates a pooling call and returns the geometry.
func checkPoolArgs(input *tensor.Tensor, p PoolParams) (c, inH, inW, outH, outW int, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if input == nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("nn: pool: %w: nil input", tensor.ErrShape)
	}
	if input.Rank() != 3 {
		return 0, 0, 0, 0, 0, fmt.Errorf("nn: pool input must be CHW, got shape %v", input.Shape())
	}
	c, inH, inW = input.Dim(0), input.Dim(1), input.Dim(2)
	outH, outW = p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("nn: pool output dims %dx%d are not positive for input %dx%d", outH, outW, inH, inW)
	}
	return c, inH, inW, outH, outW, nil
}

// Pool2D applies max or average pooling to a CHW input.
func Pool2D(input *tensor.Tensor, p PoolParams) (*tensor.Tensor, error) {
	return (*Scratch)(nil).Pool2D(input, p)
}

// pool2DInto runs the pooling kernel, fully overwriting dst.  Arguments must
// be pre-validated.
func pool2DInto(dst, input *tensor.Tensor, p PoolParams) {
	pool2DCore(dst.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2),
		dst.Dim(1), dst.Dim(2), p)
}

// pool2DCore pools one CHW sample given as flat slices; the batched engine
// calls it once per image of an NCHW batch.
func pool2DCore(o, in []float32, c, inH, inW, outH, outW int, p PoolParams) {
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float32
				if p.Kind == MaxPool {
					acc = float32(math.Inf(-1))
				}
				count := 0
				for ky := 0; ky < p.KernelH; ky++ {
					iy := oy*p.StrideH - p.PadH + ky
					if iy < 0 || iy >= inH {
						continue
					}
					for kx := 0; kx < p.KernelW; kx++ {
						ix := ox*p.StrideW - p.PadW + kx
						if ix < 0 || ix >= inW {
							continue
						}
						v := in[(ch*inH+iy)*inW+ix]
						if p.Kind == MaxPool {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						count++
					}
				}
				if p.Kind == AvgPool {
					if count > 0 {
						acc /= float32(count)
					}
				} else if count == 0 {
					acc = 0
				}
				o[(ch*outH+oy)*outW+ox] = acc
			}
		}
	}
}

// checkGlobalPoolArgs validates a global pooling input.
func checkGlobalPoolArgs(input *tensor.Tensor) error {
	if input == nil || input.Rank() != 3 {
		return fmt.Errorf("nn: global pool input must be CHW, got %v", shapeOf(input))
	}
	return nil
}

// GlobalAvgPool reduces each channel of a CHW input to its spatial mean,
// returning a rank-1 tensor of length C.  SqueezeNet's final layer uses it.
func GlobalAvgPool(input *tensor.Tensor) (*tensor.Tensor, error) {
	return (*Scratch)(nil).GlobalAvgPool(input)
}

// globalAvgPoolInto runs the global average pooling kernel, fully
// overwriting dst.
func globalAvgPoolInto(dst, input *tensor.Tensor) {
	globalAvgPoolCore(dst.Data(), input.Data(), input.Dim(0), input.Dim(1), input.Dim(2))
}

// globalAvgPoolCore reduces one CHW sample given as flat slices.
func globalAvgPoolCore(o, in []float32, c, h, w int) {
	area := float32(h * w)
	for ch := 0; ch < c; ch++ {
		sum := float32(0)
		for i := 0; i < h*w; i++ {
			sum += in[ch*h*w+i]
		}
		o[ch] = sum / area
	}
}

// shapeOf formats a possibly-nil tensor's shape for error messages.
func shapeOf(t *tensor.Tensor) []int {
	if t == nil {
		return nil
	}
	return t.Shape()
}
