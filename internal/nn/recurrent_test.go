package nn

import (
	"math"
	"testing"

	"tango/internal/tensor"
)

// newLSTMWeights builds deterministic small LSTM weights for tests.
func newLSTMWeights(hidden, input int, seed uint64) *LSTMWeights {
	r := tensor.NewRNG(seed)
	mk := func(n int) *tensor.Tensor {
		t := tensor.New(n)
		t.FillNormal(r, 0.3)
		return t
	}
	return &LSTMWeights{
		Hidden: hidden, Input: input,
		Wi: mk(hidden * input), Wf: mk(hidden * input), Wo: mk(hidden * input), Wc: mk(hidden * input),
		Ui: mk(hidden * hidden), Uf: mk(hidden * hidden), Uo: mk(hidden * hidden), Uc: mk(hidden * hidden),
		Bi: mk(hidden), Bf: mk(hidden), Bo: mk(hidden), Bc: mk(hidden),
	}
}

// newGRUWeights builds deterministic small GRU weights for tests.
func newGRUWeights(hidden, input int, seed uint64) *GRUWeights {
	r := tensor.NewRNG(seed)
	mk := func(n int) *tensor.Tensor {
		t := tensor.New(n)
		t.FillNormal(r, 0.3)
		return t
	}
	return &GRUWeights{
		Hidden: hidden, Input: input,
		Wr: mk(hidden * input), Wz: mk(hidden * input), Wh: mk(hidden * input),
		Ur: mk(hidden * hidden), Uz: mk(hidden * hidden), Uh: mk(hidden * hidden),
		Br: mk(hidden), Bz: mk(hidden), Bh: mk(hidden),
	}
}

func TestLSTMWeightsValidate(t *testing.T) {
	w := newLSTMWeights(4, 2, 1)
	if err := w.Validate(); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	w.Wi = tensor.New(3)
	if err := w.Validate(); err == nil {
		t.Error("wrong Wi size should fail")
	}
	w.Wi = nil
	if err := w.Validate(); err == nil {
		t.Error("nil weight should fail")
	}
	bad := &LSTMWeights{Hidden: 0, Input: 2}
	if err := bad.Validate(); err == nil {
		t.Error("non-positive hidden should fail")
	}
}

func TestGRUWeightsValidate(t *testing.T) {
	w := newGRUWeights(4, 2, 1)
	if err := w.Validate(); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	w.Uh = tensor.New(3)
	if err := w.Validate(); err == nil {
		t.Error("wrong Uh size should fail")
	}
	w.Uh = nil
	if err := w.Validate(); err == nil {
		t.Error("nil weight should fail")
	}
}

func TestLSTMCellStateBounds(t *testing.T) {
	w := newLSTMWeights(8, 2, 7)
	st := NewLSTMState(8)
	x := tensor.New(2)
	x.Fill(0.5)
	for step := 0; step < 5; step++ {
		var err error
		st, err = LSTMCell(w, st, x)
		if err != nil {
			t.Fatal(err)
		}
		// Hidden state is o .* tanh(c), so it must stay within (-1, 1).
		if st.H.Max() >= 1 || st.H.Min() <= -1 {
			t.Fatalf("step %d: hidden state out of (-1,1): [%v, %v]", step, st.H.Min(), st.H.Max())
		}
	}
}

func TestLSTMCellZeroWeightsGiveZeroState(t *testing.T) {
	w := &LSTMWeights{Hidden: 4, Input: 2}
	mkz := func(n int) *tensor.Tensor { return tensor.New(n) }
	w.Wi, w.Wf, w.Wo, w.Wc = mkz(8), mkz(8), mkz(8), mkz(8)
	w.Ui, w.Uf, w.Uo, w.Uc = mkz(16), mkz(16), mkz(16), mkz(16)
	w.Bi, w.Bf, w.Bo, w.Bc = mkz(4), mkz(4), mkz(4), mkz(4)
	st, err := LSTMCell(w, NewLSTMState(4), tensor.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// With all-zero weights: gates = 0.5, candidate = 0, c' = 0, h' = 0.
	if math.Abs(float64(st.C.Max())) > 1e-6 || math.Abs(float64(st.H.Max())) > 1e-6 {
		t.Errorf("zero-weight LSTM state should stay zero: h=%v c=%v", st.H.Data(), st.C.Data())
	}
}

func TestLSTMCellErrors(t *testing.T) {
	w := newLSTMWeights(4, 2, 3)
	if _, err := LSTMCell(w, NewLSTMState(4), tensor.New(3)); err == nil {
		t.Error("wrong input length should fail")
	}
	if _, err := LSTMCell(w, NewLSTMState(3), tensor.New(2)); err == nil {
		t.Error("wrong state size should fail")
	}
	if _, err := LSTMCell(w, LSTMState{}, tensor.New(2)); err == nil {
		t.Error("nil state should fail")
	}
}

func TestLSTMCellDeterministic(t *testing.T) {
	w := newLSTMWeights(6, 2, 11)
	x := tensor.New(2)
	x.Fill(0.3)
	a, err := LSTMCell(w, NewLSTMState(6), x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LSTMCell(w, NewLSTMState(6), x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ApproxEqual(a.H, b.H, 0) || !tensor.ApproxEqual(a.C, b.C, 0) {
		t.Error("LSTM cell must be deterministic")
	}
}

func TestGRUCellBoundsAndDeterminism(t *testing.T) {
	w := newGRUWeights(8, 2, 5)
	h := tensor.New(8)
	x := tensor.New(2)
	x.Fill(1)
	var err error
	for step := 0; step < 5; step++ {
		h, err = GRUCell(w, h, x)
		if err != nil {
			t.Fatal(err)
		}
		// GRU hidden state is a convex combination of tanh outputs and the
		// previous state, so it stays in (-1, 1) when started at zero.
		if h.Max() >= 1 || h.Min() <= -1 {
			t.Fatalf("step %d: hidden state out of (-1,1): [%v, %v]", step, h.Min(), h.Max())
		}
	}
	h2 := tensor.New(8)
	for step := 0; step < 5; step++ {
		h2, err = GRUCell(w, h2, x)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !tensor.ApproxEqual(h, h2, 0) {
		t.Error("GRU cell must be deterministic")
	}
}

func TestGRUCellUpdateGateInterpolation(t *testing.T) {
	// With Wh/Uh/Bh zero the candidate is zero, so h' = z .* h; starting from
	// h=1 the state must shrink toward zero but keep its sign.
	w := newGRUWeights(4, 2, 9)
	w.Wh = tensor.New(4 * 2)
	w.Uh = tensor.New(4 * 4)
	w.Bh = tensor.New(4)
	h := tensor.New(4)
	h.Fill(1)
	x := tensor.New(2)
	out, err := GRUCell(w, h, x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v <= 0 || v >= 1 {
			t.Errorf("element %d: %v should be in (0,1)", i, v)
		}
	}
}

func TestGRUCellErrors(t *testing.T) {
	w := newGRUWeights(4, 2, 3)
	if _, err := GRUCell(w, tensor.New(4), tensor.New(3)); err == nil {
		t.Error("wrong input length should fail")
	}
	if _, err := GRUCell(w, tensor.New(3), tensor.New(2)); err == nil {
		t.Error("wrong state size should fail")
	}
	if _, err := GRUCell(w, nil, tensor.New(2)); err == nil {
		t.Error("nil state should fail")
	}
}
